// Quickstart: build a small SDN, admit one NFV-enabled multicast
// request with the paper's 2K-approximation, install the resulting
// pseudo-multicast tree on the controller and replay a packet to prove
// every destination receives service-chained traffic.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nfvmcast"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 50-switch GT-ITM-style random network; 10% of switches carry
	// NFV servers (picked inside NewNetwork).
	topo, err := nfvmcast.WaxmanDegree(50, nfvmcast.DefaultAvgDegree, 0.14, 42)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	nw, err := nfvmcast.NewNetwork(topo, nfvmcast.DefaultNetworkConfig(), rng)
	if err != nil {
		return err
	}
	fmt.Printf("network: %d switches, %d links, servers at %v\n",
		nw.NumNodes(), nw.NumEdges(), nw.Servers())

	// One multicast group: source 0, five receivers, 100 Mbps, and a
	// service chain every packet must traverse first.
	req := &nfvmcast.Request{
		ID:            1,
		Source:        0,
		Destinations:  []nfvmcast.NodeID{7, 13, 21, 34, 48},
		BandwidthMbps: 100,
		Chain:         nfvmcast.MustChain(nfvmcast.NAT, nfvmcast.Firewall, nfvmcast.IDS),
	}
	fmt.Printf("request: %d -> %v, %.0f Mbps, chain %v (%.0f MHz)\n",
		req.Source, req.Destinations, req.BandwidthMbps, req.Chain, req.ComputeDemandMHz())

	// Solve with Appro_Multi (K = 3 servers max).
	sol, err := nfvmcast.ApproMulti(nw, req, nfvmcast.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Printf("solution: cost %.2f, service chain on server(s) %v, %d directed hops\n",
		sol.OperationalCost, sol.Servers, sol.Tree.NumHops())

	// Commit the resources and compile the tree into flow tables.
	if err := nw.Allocate(nfvmcast.AllocationFor(req, sol.Tree)); err != nil {
		return err
	}
	ctrl := nfvmcast.NewController(nw)
	if err := ctrl.Install(req, sol.Tree); err != nil {
		return err
	}
	fmt.Printf("controller: %d forwarding rules installed\n", ctrl.TotalRules())

	// Replay a packet over the installed rules: every destination must
	// receive a copy that passed the service chain.
	delivery, err := ctrl.InjectPacket(req.ID)
	if err != nil {
		return err
	}
	fmt.Printf("packet replay: delivered to %v in %d hops\n",
		delivery.Delivered, delivery.HopCount)
	if err := ctrl.VerifyDelivery(req.ID); err != nil {
		return err
	}
	fmt.Println("all destinations received service-chained traffic ✔")
	return nil
}
