// GEANT demo: NFV-enabled conferencing on the real pan-European
// research network.
//
// Research institutions schedule multi-site video conferences over
// GÉANT. Every conference is a multicast group whose traffic must pass
// a <Firewall, Proxy> chain hosted on one of the nine NFV server PoPs.
// This example admits a day's worth of conference requests with
// Online_CP, prints where service chains get placed (by city), and
// verifies every admitted conference end to end through the SDN
// controller's packet replay.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"nfvmcast"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	topo := nfvmcast.GEANT()
	rng := rand.New(rand.NewSource(2017))
	nw, err := nfvmcast.NewNetwork(topo, nfvmcast.DefaultNetworkConfig(), rng)
	if err != nil {
		return err
	}
	city := func(v nfvmcast.NodeID) string { return topo.NodeNames[v] }
	serverCities := make([]string, 0, len(nw.Servers()))
	for _, v := range nw.Servers() {
		serverCities = append(serverCities, city(v))
	}
	fmt.Printf("GÉANT: %d PoPs, %d links; NFV servers in %v\n\n",
		nw.NumNodes(), nw.NumEdges(), serverCities)

	// Online_CP behind the admission engine: Admit both decides and
	// allocates; the controller then just installs the returned tree.
	planner, err := nfvmcast.NewCPPlanner(nfvmcast.DefaultCostModel(nw.NumNodes()))
	if err != nil {
		return err
	}
	cp := nfvmcast.NewEngine(nw, planner)
	defer cp.Close()
	ctrl := nfvmcast.NewController(nw)

	gen, err := nfvmcast.NewGenerator(nw.NumNodes(), nfvmcast.OnlineGeneratorConfig(), 99)
	if err != nil {
		return err
	}

	placements := make(map[string]int)
	verified := 0
	const conferences = 150
	for i := 0; i < conferences; i++ {
		req, gerr := gen.Next()
		if gerr != nil {
			return gerr
		}
		sol, aerr := cp.Admit(req)
		if aerr != nil {
			if nfvmcast.IsRejection(aerr) {
				continue
			}
			return aerr
		}
		placements[city(sol.Servers[0])]++
		if err := ctrl.Install(req, sol.Tree); err != nil {
			return err
		}
		if err := ctrl.VerifyDelivery(req.ID); err != nil {
			return fmt.Errorf("conference %d failed verification: %w", req.ID, err)
		}
		verified++
	}

	fmt.Printf("admitted %d / %d conferences (%d rejected), all %d verified by packet replay\n\n",
		cp.AdmittedCount(), conferences, cp.RejectedCount(), verified)

	fmt.Println("service-chain placements by PoP:")
	type pc struct {
		city  string
		count int
	}
	var byCity []pc
	for c, n := range placements {
		byCity = append(byCity, pc{c, n})
	}
	sort.Slice(byCity, func(i, j int) bool {
		if byCity[i].count != byCity[j].count {
			return byCity[i].count > byCity[j].count
		}
		return byCity[i].city < byCity[j].city
	})
	for _, p := range byCity {
		fmt.Printf("  %-12s %3d conferences\n", p.city, p.count)
	}

	fmt.Printf("\ncontroller holds %d forwarding rules across %d PoPs\n",
		ctrl.TotalRules(), nw.NumNodes())
	var maxUtil float64
	var hot nfvmcast.EdgeID
	for e := 0; e < nw.NumEdges(); e++ {
		if u := nw.LinkUtilization(e); u > maxUtil {
			maxUtil, hot = u, e
		}
	}
	he := nw.Graph().Edge(hot)
	fmt.Printf("hottest link: %s—%s at %.0f%% utilisation\n",
		city(he.U), city(he.V), 100*maxUtil)
	return nil
}
