// Failover: link failure and self-healing session recovery.
//
// An operator runs live multicast sessions admitted by Online_CP. A
// backbone link fails. The engine's recovery subsystem — enabled with
// WithRecovery — identifies the affected sessions inside the same
// Update that injected the failure, re-routes each around the failure
// (local repair, with the VM placement pinned, accepted while the new
// tree costs at most γ× the old one), falls back to a full re-plan
// where re-routing is too expensive or infeasible, and sheds what the
// degraded network cannot host. The controller then reconciles flow
// rules from the recovery report and verifies every repaired session
// by packet replay.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"nfvmcast"
)

const (
	networkSize = 80
	sessions    = 120
	seed        = 19
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	topo, err := nfvmcast.WaxmanDegree(networkSize, nfvmcast.DefaultAvgDegree, 0.14, seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	nw, err := nfvmcast.NewNetwork(topo, nfvmcast.DefaultNetworkConfig(), rng)
	if err != nil {
		return err
	}
	// Admission runs through the engine; failure injection goes through
	// its Update hatch so it never races a commit, and the recovery
	// policy makes Update repair affected sessions before returning.
	planner, err := nfvmcast.NewCPPlanner(nfvmcast.DefaultCostModel(networkSize))
	if err != nil {
		return err
	}
	policy := nfvmcast.DefaultRecoveryPolicy()
	metrics := nfvmcast.NewMetricsRegistry()
	ring := nfvmcast.NewRingSink(8)
	cp := nfvmcast.NewEngine(nw, planner,
		nfvmcast.WithMetrics(nfvmcast.NewAdmissionObs(metrics, planner.Name(),
			nfvmcast.AdmissionObsOptions{Events: ring})),
		nfvmcast.WithRecovery(policy),
	)
	defer cp.Close()
	ctrl := nfvmcast.NewController(nw)

	// Phase 1: admit sessions and install their flow rules.
	gen, err := nfvmcast.NewGenerator(networkSize, nfvmcast.OnlineGeneratorConfig(), seed+2)
	if err != nil {
		return err
	}
	live := make(map[int]*nfvmcast.Solution)
	for i := 0; i < sessions; i++ {
		req, gerr := gen.Next()
		if gerr != nil {
			return gerr
		}
		sol, aerr := cp.Admit(req)
		if aerr != nil {
			if nfvmcast.IsRejection(aerr) {
				continue
			}
			return aerr
		}
		if err := ctrl.Install(req, sol.Tree); err != nil {
			return err
		}
		live[req.ID] = sol
	}
	fmt.Printf("steady state: %d live sessions, %d flow rules\n", len(live), ctrl.TotalRules())

	// Phase 2: fail the busiest link that is not a cut edge (losing a
	// bridge partitions the network and nothing can be re-routed).
	// Recovery runs inside this Update: when it returns, every
	// affected session has been repaired or shed.
	isBridge := make(map[nfvmcast.EdgeID]bool)
	for _, e := range nfvmcast.Bridges(nw.Graph()) {
		isBridge[e] = true
	}
	var hot nfvmcast.EdgeID = -1
	var hotUtil float64
	for e := 0; e < nw.NumEdges(); e++ {
		if u := nw.LinkUtilization(e); u > hotUtil && !isBridge[e] {
			hot, hotUtil = e, u
		}
	}
	if hot == -1 {
		return fmt.Errorf("every link is a bridge; nothing sensible to fail")
	}
	he := nw.Graph().Edge(hot)
	if err := cp.Update(func(nw *nfvmcast.Network) error {
		return nw.SetLinkUp(hot, false)
	}); err != nil {
		return err
	}
	fmt.Printf("\n*** link %d (%d—%d, %.0f%% utilised) FAILED ***\n\n", hot, he.U, he.V, 100*hotUtil)

	// Phase 3: reconcile flow rules from the recovery report. Repaired
	// sessions keep their identity but carry a new tree; shed sessions
	// are gone with ErrDegraded.
	rep := cp.LastRecovery()
	if rep == nil {
		return fmt.Errorf("recovery did not run")
	}
	for _, out := range rep.Outcomes {
		if err := ctrl.Uninstall(out.RequestID); err != nil {
			return err
		}
		if out.Mode == nfvmcast.RecoveryModeShed {
			if !errors.Is(out.Err, nfvmcast.ErrDegraded) {
				return fmt.Errorf("shed session %d missing ErrDegraded: %v", out.RequestID, out.Err)
			}
			delete(live, out.RequestID)
			fmt.Printf("  session %d shed (no residual capacity)\n", out.RequestID)
			continue
		}
		// The γ bound is the local-repair acceptance rule: a re-routed
		// tree may cost at most Gamma times the damaged one.
		if out.Mode == nfvmcast.RecoveryModeLocal && out.NewCost > policy.Gamma*out.OldCost {
			return fmt.Errorf("local repair of %d broke the cost bound: %.1f > %.1f×%.1f",
				out.RequestID, out.NewCost, policy.Gamma, out.OldCost)
		}
		sol := out.Solution
		if err := ctrl.Install(sol.Request, sol.Tree); err != nil {
			return err
		}
		if err := ctrl.VerifyDelivery(out.RequestID); err != nil {
			return fmt.Errorf("repaired session %d broken: %w", out.RequestID, err)
		}
		live[out.RequestID] = sol
		fmt.Printf("  session %d repaired (%s, cost %.1f -> %.1f)\n",
			out.RequestID, out.Mode, out.OldCost, out.NewCost)
	}
	fmt.Printf("recovery: %d re-routed locally, %d re-planned, %d shed (repairs verified by packet replay)\n",
		rep.Local, rep.Replanned, rep.Shed)
	fmt.Printf("post-failure: %d live sessions, %d flow rules\n", len(live), ctrl.TotalRules())

	// Phase 4: repair the link. The restore bumps the structure version
	// too; with no session touching a failed resource the recovery pass
	// is an empty no-op.
	if err := cp.Update(func(nw *nfvmcast.Network) error {
		return nw.SetLinkUp(hot, true)
	}); err != nil {
		return err
	}
	fmt.Printf("\nlink repaired; %d links down\n", len(nw.DownLinks()))

	// Closing audit from the observability layer: lifecycle totals and
	// the tail of the admission-event stream (the repair_attempted /
	// repaired / shed events of phase 2 appear alongside the two
	// failure_injected markers).
	counters := metrics.CounterValues()
	fmt.Printf("\nmetrics: admitted=%d repairs=%d shed=%d failures_injected=%d\n",
		counters[`nfv_admitted_total{policy="Online_CP"}`],
		counters[`nfv_repairs_attempted_total{policy="Online_CP"}`],
		counters[`nfv_shed_total{policy="Online_CP"}`],
		counters[`nfv_failures_injected_total{policy="Online_CP"}`])
	fmt.Printf("last %d of %d admission events:\n", len(ring.Events()), ring.Total())
	for _, ev := range ring.Events() {
		fmt.Printf("  #%d %s", ev.Seq, ev.Type)
		if ev.Request != 0 {
			fmt.Printf(" request=%d", ev.Request)
		}
		if ev.Reason != "" {
			fmt.Printf(" (%s)", ev.Reason)
		}
		fmt.Println()
	}
	return nil
}
