// Failover: link failure, impact analysis, and session recovery.
//
// An operator runs live multicast sessions admitted by Online_CP.
// A backbone link fails. The controller identifies the affected
// sessions, tears down their state (departure frees their resources),
// re-plans each on the degraded network, and re-installs the survivors
// — demonstrating the failure-injection and departure extensions of
// this library end to end.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nfvmcast"
)

const (
	networkSize = 80
	sessions    = 120
	seed        = 19
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	topo, err := nfvmcast.WaxmanDegree(networkSize, nfvmcast.DefaultAvgDegree, 0.14, seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	nw, err := nfvmcast.NewNetwork(topo, nfvmcast.DefaultNetworkConfig(), rng)
	if err != nil {
		return err
	}
	// Admission runs through the engine; failure injection and repair
	// go through its Update hatch so they never race a commit. The
	// engine reports into a metrics registry, and the last events of
	// the admission stream are kept in a ring for the closing audit.
	planner, err := nfvmcast.NewCPPlanner(nfvmcast.DefaultCostModel(networkSize))
	if err != nil {
		return err
	}
	metrics := nfvmcast.NewMetricsRegistry()
	ring := nfvmcast.NewRingSink(8)
	cp := nfvmcast.NewEngine(nw, planner, nfvmcast.EngineOptions{
		Obs: nfvmcast.NewAdmissionObs(metrics, planner.Name(),
			nfvmcast.AdmissionObsOptions{Events: ring}),
	})
	defer cp.Close()
	ctrl := nfvmcast.NewController(nw)

	// Phase 1: admit sessions and install their flow rules.
	gen, err := nfvmcast.NewGenerator(networkSize, nfvmcast.OnlineGeneratorConfig(), seed+2)
	if err != nil {
		return err
	}
	live := make(map[int]*nfvmcast.Solution)
	for i := 0; i < sessions; i++ {
		req, gerr := gen.Next()
		if gerr != nil {
			return gerr
		}
		sol, aerr := cp.Admit(req)
		if aerr != nil {
			if nfvmcast.IsRejection(aerr) {
				continue
			}
			return aerr
		}
		if err := ctrl.Install(req, sol.Tree); err != nil {
			return err
		}
		live[req.ID] = sol
	}
	fmt.Printf("steady state: %d live sessions, %d flow rules\n", len(live), ctrl.TotalRules())

	// Phase 2: fail the busiest link that is not a cut edge (losing a
	// bridge partitions the network and nothing can be re-routed).
	isBridge := make(map[nfvmcast.EdgeID]bool)
	for _, e := range nfvmcast.Bridges(nw.Graph()) {
		isBridge[e] = true
	}
	var hot nfvmcast.EdgeID = -1
	var hotUtil float64
	for e := 0; e < nw.NumEdges(); e++ {
		if u := nw.LinkUtilization(e); u > hotUtil && !isBridge[e] {
			hot, hotUtil = e, u
		}
	}
	if hot == -1 {
		return fmt.Errorf("every link is a bridge; nothing sensible to fail")
	}
	he := nw.Graph().Edge(hot)
	if err := cp.Update(func(nw *nfvmcast.Network) error {
		return nw.SetLinkUp(hot, false)
	}); err != nil {
		return err
	}
	fmt.Printf("\n*** link %d (%d—%d, %.0f%% utilised) FAILED ***\n\n", hot, he.U, he.V, 100*hotUtil)

	// Phase 3: find affected sessions, tear them down, re-plan.
	var affected []*nfvmcast.Solution
	for id, sol := range live {
		if nw.AffectedBy(nfvmcast.AllocationFor(sol.Request, sol.Tree)) {
			affected = append(affected, sol)
			if _, err := cp.Depart(id); err != nil {
				return err
			}
			if err := ctrl.Uninstall(id); err != nil {
				return err
			}
			delete(live, id)
		}
	}
	fmt.Printf("%d sessions crossed the failed link; torn down and re-planning...\n", len(affected))

	recovered, dropped := 0, 0
	for _, old := range affected {
		req := old.Request.Clone()
		req.ID += 100000 // new session identity on re-admission
		sol, aerr := cp.Admit(req)
		if aerr != nil {
			dropped++
			continue
		}
		if err := ctrl.Install(req, sol.Tree); err != nil {
			return err
		}
		if err := ctrl.VerifyDelivery(req.ID); err != nil {
			return fmt.Errorf("recovered session %d broken: %w", req.ID, err)
		}
		live[req.ID] = sol
		recovered++
	}
	fmt.Printf("recovery: %d sessions re-routed (verified by packet replay), %d dropped\n",
		recovered, dropped)
	fmt.Printf("post-failure: %d live sessions, %d flow rules\n", len(live), ctrl.TotalRules())

	// Phase 4: repair.
	if err := cp.Update(func(nw *nfvmcast.Network) error {
		return nw.SetLinkUp(hot, true)
	}); err != nil {
		return err
	}
	fmt.Printf("\nlink repaired; %d links down\n", len(nw.DownLinks()))

	// Closing audit from the observability layer: lifecycle totals and
	// the tail of the admission-event stream (the failure injections of
	// phases 2 and 4 appear as failure_injected events).
	counters := metrics.CounterValues()
	fmt.Printf("\nmetrics: admitted=%d departed=%d failures_injected=%d\n",
		counters[`nfv_admitted_total{policy="Online_CP"}`],
		counters[`nfv_departed_total{policy="Online_CP"}`],
		counters[`nfv_failures_injected_total{policy="Online_CP"}`])
	fmt.Printf("last %d of %d admission events:\n", len(ring.Events()), ring.Total())
	for _, ev := range ring.Events() {
		fmt.Printf("  #%d %s", ev.Seq, ev.Type)
		if ev.Request != 0 {
			fmt.Printf(" request=%d", ev.Request)
		}
		if ev.Reason != "" {
			fmt.Printf(" (%s)", ev.Reason)
		}
		fmt.Println()
	}
	return nil
}
