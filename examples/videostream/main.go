// Videostream: online admission of live-streaming multicast groups.
//
// A streaming provider receives channel-setup requests one by one —
// each a multicast group (origin server → viewer edge sites) whose
// traffic must pass <NAT, Firewall> before distribution. The provider
// cannot see future requests and wants to admit as many channels as
// possible, so it runs the paper's Online_CP admission algorithm and
// compares it against shortest-path heuristics on replicas of the
// same network receiving the identical arrival sequence.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nfvmcast"
)

const (
	networkSize = 100
	channels    = 400
	seed        = 7
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// buildNetwork returns one replica of the provider's backbone; equal
// seeds yield identical replicas so the three policies face the same
// conditions.
func buildNetwork() (*nfvmcast.Network, error) {
	topo, err := nfvmcast.WaxmanDegree(networkSize, nfvmcast.DefaultAvgDegree, 0.14, seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	return nfvmcast.NewNetwork(topo, nfvmcast.DefaultNetworkConfig(), rng)
}

// channelRequest models one live channel: a random origin, 3-10 viewer
// sites, 80-250 Mbps mezzanine bitrate, NAT+Firewall chain.
func channelRequest(id int, rng *rand.Rand) *nfvmcast.Request {
	perm := rng.Perm(networkSize)
	viewers := 3 + rng.Intn(8)
	dests := make([]nfvmcast.NodeID, viewers)
	copy(dests, perm[1:1+viewers])
	return &nfvmcast.Request{
		ID:            id,
		Source:        perm[0],
		Destinations:  dests,
		BandwidthMbps: 80 + rng.Float64()*170,
		Chain:         nfvmcast.MustChain(nfvmcast.NAT, nfvmcast.Firewall),
	}
}

func run() error {
	nwCP, err := buildNetwork()
	if err != nil {
		return err
	}
	nwSP, err := buildNetwork()
	if err != nil {
		return err
	}
	nwStatic, err := buildNetwork()
	if err != nil {
		return err
	}
	// Each policy runs behind an admission engine owning its replica.
	// Sequential mode (zero workers) keeps decisions identical to the
	// direct admitters; a provider ingesting concurrent channel-setup
	// calls would add nfvmcast.WithWorkers(n) instead.
	cpPlanner, err := nfvmcast.NewCPPlanner(nfvmcast.DefaultCostModel(networkSize))
	if err != nil {
		return err
	}
	cp := nfvmcast.NewEngine(nwCP, cpPlanner)
	defer cp.Close()
	sp := nfvmcast.NewEngine(nwSP, nfvmcast.NewSPPlanner())
	defer sp.Close()
	static := nfvmcast.NewEngine(nwStatic, nfvmcast.NewSPStaticPlanner())
	defer static.Close()

	rng := rand.New(rand.NewSource(seed + 2))
	fmt.Printf("admitting %d channel requests on a %d-switch backbone\n\n",
		channels, networkSize)
	fmt.Printf("%-10s %12s %14s %16s\n", "arrivals", "Online_CP", "SP(adaptive)", "SP(static)")
	for k := 1; k <= channels; k++ {
		req := channelRequest(k, rng)
		// Each policy decides independently on its own replica.
		if _, err := cp.Admit(req.Clone()); err != nil && !nfvmcast.IsRejection(err) {
			return err
		}
		if _, err := sp.Admit(req.Clone()); err != nil && !nfvmcast.IsRejection(err) {
			return err
		}
		if _, err := static.Admit(req.Clone()); err != nil && !nfvmcast.IsRejection(err) {
			return err
		}
		if k%50 == 0 {
			fmt.Printf("%-10d %12d %14d %16d\n",
				k, cp.AdmittedCount(), sp.AdmittedCount(), static.AdmittedCount())
		}
	}

	fmt.Printf("\nfinal: Online_CP served %d channels; adaptive SP %d; static SP %d\n",
		cp.AdmittedCount(), sp.AdmittedCount(), static.AdmittedCount())
	fmt.Printf("Online_CP carried %.1f%% more channels than static shortest-path routing\n",
		100*(float64(cp.AdmittedCount())/float64(static.AdmittedCount())-1))
	return nil
}
