// Datacenter: offline cost optimisation for system-monitoring fan-out.
//
// A data-centre operator replicates monitoring streams (metrics,
// security events) from aggregation points to many collector racks.
// Every stream must pass an <IDS, LoadBalancer> chain before delivery.
// The operator pays per resource (paper §III.C Case 1) and wants the
// cheapest pseudo-multicast tree per stream. This example sweeps the
// server budget K and shows the cost/running-time trade-off of
// Appro_Multi against the single-server baseline on a transit-stub
// fabric (pods attached to a spine — the GT-ITM hierarchy).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"nfvmcast"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An 8-ary fat-tree fabric (16 cores + 8 pods of 8 switches) with
	// one NFV server at an aggregation switch of every pod.
	topo, err := nfvmcast.FatTree(8, 11)
	if err != nil {
		return err
	}
	servers, err := nfvmcast.FatTreeServers(8)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(12))
	nw, err := nfvmcast.NewNetworkWithServers(topo, nfvmcast.DefaultNetworkConfig(), servers, rng)
	if err != nil {
		return err
	}
	fmt.Printf("fabric: %d switches, %d links, NFV servers at %v\n\n",
		nw.NumNodes(), nw.NumEdges(), nw.Servers())

	// 60 monitoring streams: aggregation point -> 8-20 collector racks.
	streams := make([]*nfvmcast.Request, 0, 60)
	wrng := rand.New(rand.NewSource(13))
	for id := 1; id <= 60; id++ {
		perm := wrng.Perm(nw.NumNodes())
		racks := 8 + wrng.Intn(13)
		dests := make([]nfvmcast.NodeID, racks)
		copy(dests, perm[1:1+racks])
		streams = append(streams, &nfvmcast.Request{
			ID:            id,
			Source:        perm[0],
			Destinations:  dests,
			BandwidthMbps: 50 + wrng.Float64()*100,
			Chain:         nfvmcast.MustChain(nfvmcast.IDS, nfvmcast.LoadBalancer),
		})
	}

	// Baseline: one server per stream (Zhang et al.).
	var baseCost float64
	for _, req := range streams {
		sol, err := nfvmcast.AlgOneServer(nw, req, false)
		if err != nil {
			return err
		}
		baseCost += sol.OperationalCost
	}
	fmt.Printf("%-14s %16s %14s %12s\n", "algorithm", "total cost", "vs baseline", "time")

	fmt.Printf("%-14s %16.2f %14s %12s\n", "One_Server", baseCost, "-", "-")

	// Appro_Multi with growing server budgets.
	for k := 1; k <= 3; k++ {
		start := time.Now()
		var cost float64
		multiServer := 0
		for _, req := range streams {
			sol, err := nfvmcast.ApproMulti(nw, req, nfvmcast.Options{K: k})
			if err != nil {
				return err
			}
			cost += sol.OperationalCost
			if len(sol.Servers) > 1 {
				multiServer++
			}
		}
		fmt.Printf("%-14s %16.2f %13.2f%% %12v   (%d streams on >1 server)\n",
			fmt.Sprintf("Appro_Multi K=%d", k), cost,
			100*cost/baseCost, time.Since(start).Round(time.Millisecond), multiServer)
	}

	fmt.Println("\nlower is better; K>1 lets hot pods be served by their local NFV server")
	return nil
}
