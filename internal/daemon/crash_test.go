package daemon

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"nfvmcast/internal/testutil"
)

// Crash injection against a real nfvmcastd process. The test binary
// re-executes itself as the daemon child (TestCrashDaemonChild below),
// the parent drives admissions over HTTP and SIGKILLs the child at a
// seeded random point mid-workload. The durability contract under
// test: every operation the child ACKED before the kill is in the
// recovered state — acked admissions are live (unless an acked release
// ended them), acked releases stay released — and recovery itself is
// deterministic (two boots from the same disk image agree bit-exactly
// on every shard fingerprint).

const (
	crashChildEnv = "NFVMCAST_CRASH_CHILD"
	crashAddrEnv  = "NFVMCAST_CRASH_ADDRFILE"
	crashWALEnv   = "NFVMCAST_CRASH_WALDIR"
	crashTopoEnv  = "NFVMCAST_CRASH_TOPOLOGY"
	crashNodesEnv = "NFVMCAST_CRASH_NODES"
	crashSeedEnv  = "NFVMCAST_CRASH_SEED"
	crashShardEnv = "NFVMCAST_CRASH_SHARDS"
)

// TestCrashDaemonChild is not a test: it is the daemon process the
// crash harness SIGKILLs. It only runs re-executed with the child
// environment set, serves until killed, and never exits voluntarily.
func TestCrashDaemonChild(t *testing.T) {
	if os.Getenv(crashChildEnv) == "" {
		t.Skip("crash-harness child entry point")
	}
	nodes, _ := strconv.Atoi(os.Getenv(crashNodesEnv))
	seed, _ := strconv.ParseInt(os.Getenv(crashSeedEnv), 10, 64)
	shards, _ := strconv.Atoi(os.Getenv(crashShardEnv))
	srv, err := New(Config{
		Topology:      os.Getenv(crashTopoEnv),
		Nodes:         nodes,
		Seed:          seed,
		Policy:        "SP",
		Shards:        shards,
		WALDir:        os.Getenv(crashWALEnv),
		SegmentBytes:  8 << 10, // rotate often so kills land across segments
		SnapshotEvery: 16,
		NoSync:        true, // SIGKILL does not lose OS-buffered writes
	})
	if err != nil {
		t.Fatalf("child boot: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Publish the address atomically: write-then-rename so the parent
	// never reads a half-written file.
	addrFile := os.Getenv(crashAddrEnv)
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatal(err)
	}
	_ = srv.Serve(ln) // until SIGKILL
}

// spawnChild starts the daemon child and waits for its address.
func spawnChild(t *testing.T, walDir, topo string, nodes int, seed int64, shards int) (*exec.Cmd, string) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashDaemonChild")
	cmd.Env = append(os.Environ(),
		crashChildEnv+"=1",
		crashAddrEnv+"="+addrFile,
		crashWALEnv+"="+walDir,
		crashTopoEnv+"="+topo,
		crashNodesEnv+"="+strconv.Itoa(nodes),
		crashSeedEnv+"="+strconv.FormatInt(seed, 10),
		crashShardEnv+"="+strconv.Itoa(shards),
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(testutil.WatchdogFor(t))
	for {
		data, err := os.ReadFile(addrFile)
		if err == nil && len(data) > 0 {
			return cmd, "http://" + strings.TrimSpace(string(data))
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatal("child never published its address")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ackLog tracks operations the child acknowledged, keyed by request
// ID. Only 200-acked operations enter it — an ack the parent never saw
// may or may not have been logged, and the contract says nothing about
// it.
type ackLog struct {
	mu       sync.Mutex
	admitted map[int]bool // acked submits
	released map[int]bool // acked releases
}

func (a *ackLog) admit(id int)   { a.mu.Lock(); a.admitted[id] = true; a.mu.Unlock() }
func (a *ackLog) release(id int) { a.mu.Lock(); a.released[id] = true; a.mu.Unlock() }

// liveAcked returns acked-admitted IDs with no acked release.
func (a *ackLog) liveAcked() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []int
	for id := range a.admitted {
		if !a.released[id] {
			out = append(out, id)
		}
	}
	return out
}

func TestCrashInjectionSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	cases := []struct {
		name   string
		topo   string
		nodes  int
		shards int
		seed   int64
	}{
		{"geant/shards=1", "geant", 0, 1, 101},
		{"geant/shards=4", "geant", 0, 4, 102},
		{"waxman/shards=1", "waxman", 50, 1, 103},
		{"waxman/shards=4", "waxman", 50, 4, 104},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			walDir := filepath.Join(t.TempDir(), "wal")
			cmd, base := spawnChild(t, walDir, tc.topo, tc.nodes, tc.seed, tc.shards)
			childDead := false
			defer func() {
				if !childDead {
					_ = cmd.Process.Kill()
					_ = cmd.Wait()
				}
			}()

			rng := rand.New(rand.NewSource(tc.seed))
			acks := &ackLog{admitted: make(map[int]bool), released: make(map[int]bool)}
			client := &http.Client{Timeout: testutil.WatchdogFor(t)}

			// Serial phase: a seeded random number of acked operations
			// before the kill, so each case dies at a different log
			// position (including mid-segment and just-past-snapshot).
			preKill := 20 + rng.Intn(40)
			nextID := 1
			for ops := 0; ops < preKill; {
				if nextID > 2000 {
					t.Fatalf("only %d of %d ops acked after 2000 attempts — substrate exhausted?", ops, preKill)
				}
				if live := acks.liveAcked(); len(live) > 3 && rng.Intn(100) < 30 {
					id := live[rng.Intn(len(live))]
					resp, err := client.Post(base+"/v1/release", "application/json",
						strings.NewReader(fmt.Sprintf(`{"id":%d}`, id)))
					if err != nil {
						t.Fatalf("release during pre-kill phase: %v", err)
					}
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						acks.release(id)
						ops++
					}
					continue
				}
				id := nextID
				nextID++
				resp, err := client.Post(base+"/v1/submit", "application/json",
					strings.NewReader(submitBody(fmt.Sprintf("tenant-%d", rng.Intn(6)), id)))
				if err != nil {
					t.Fatalf("submit during pre-kill phase: %v", err)
				}
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					acks.admit(id)
					ops++
				}
			}

			// Kill phase: SIGKILL lands while concurrent submissions are
			// in flight, so the child dies mid-commit for some of them.
			// In-flight acks are collected right up to the kill.
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < 4; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for id := 1000 + w*1000; ; id++ {
						select {
						case <-stop:
							return
						default:
						}
						resp, err := http.Post(base+"/v1/submit", "application/json",
							strings.NewReader(submitBody(fmt.Sprintf("tenant-%d", id%6), id)))
						if err != nil {
							return // connection died with the child
						}
						code := resp.StatusCode
						resp.Body.Close()
						if code == http.StatusOK {
							acks.admit(id)
						}
					}
				}()
			}
			time.Sleep(time.Duration(1+rng.Intn(40)) * time.Millisecond)
			if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
			_ = cmd.Wait()
			childDead = true
			close(stop)
			wg.Wait()

			// Recovery: boot in-process from the child's WAL. The torn
			// tail (a record half-written at the kill) must be tolerated,
			// and every acked operation must be in the recovered state.
			srv, err := New(Config{
				Topology: tc.topo, Nodes: tc.nodes, Seed: tc.seed, Policy: "SP",
				Shards: tc.shards, WALDir: walDir,
				SegmentBytes: 8 << 10, SnapshotEvery: 16, NoSync: true,
			})
			if err != nil {
				t.Fatalf("recovery boot: %v", err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				if err := srv.Shutdown(ctx); err != nil {
					t.Errorf("shutdown: %v", err)
				}
			}()

			recovered := make(map[int]bool)
			for _, id := range shardIDs(tc.shards) {
				for _, sol := range srv.Router().Engine(id).Lives() {
					recovered[sol.Request.ID] = true
				}
			}
			for _, id := range acks.liveAcked() {
				if !recovered[id] {
					t.Errorf("session %d was acked before the kill but is not in the recovered state", id)
				}
			}
			acks.mu.Lock()
			for id := range acks.released {
				if recovered[id] {
					t.Errorf("session %d had an acked release but is live after recovery", id)
				}
			}
			ackCount := len(acks.admitted) + len(acks.released)
			acks.mu.Unlock()
			var lsnSum uint64
			for _, b := range srv.Boot() {
				lsnSum += b.LastLSN
			}
			// Every acked op wrote >= 1 record before its ack.
			if lsnSum < uint64(ackCount) {
				t.Errorf("recovered %d records total for %d acked operations — acked state was lost", lsnSum, ackCount)
			}

			// Determinism: an independent boot from a copy of the same
			// disk image must land on identical shard fingerprints.
			walCopy := filepath.Join(t.TempDir(), "walcopy")
			copyTreeDir(t, walDir, walCopy)
			srv2, err := New(Config{
				Topology: tc.topo, Nodes: tc.nodes, Seed: tc.seed, Policy: "SP",
				Shards: tc.shards, WALDir: walCopy,
				SegmentBytes: 8 << 10, SnapshotEvery: 16, NoSync: true,
			})
			if err != nil {
				t.Fatalf("second recovery boot: %v", err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				_ = srv2.Shutdown(ctx)
			}()
			b1, b2 := srv.Boot(), srv2.Boot()
			if len(b1) != len(b2) {
				t.Fatalf("boot stats differ in length: %d vs %d", len(b1), len(b2))
			}
			for i := range b1 {
				if b1[i].Fingerprint != b2[i].Fingerprint || b1[i].LastLSN != b2[i].LastLSN {
					t.Errorf("shard %s: replay not deterministic:\n  %+v\n  %+v", b1[i].Shard, b1[i], b2[i])
				}
			}
		})
	}
}

// copyTreeDir copies a directory tree (regular files only).
func copyTreeDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			copyTreeDir(t, filepath.Join(src, e.Name()), filepath.Join(dst, e.Name()))
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
