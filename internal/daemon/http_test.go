package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nfvmcast/internal/core"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/testutil"
	"nfvmcast/internal/topology"
)

var update = flag.Bool("update", false, "rewrite golden files")

// startServer boots a daemon on a random localhost port and returns
// its base URL. Cleanup drains it.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, "http://" + ln.Addr().String()
}

func doJSON(t *testing.T, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequestWithContext(testutil.Context(t), method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// testRequest renders a deterministic admissible request as wire JSON.
func submitBody(tenant string, id int) string {
	return fmt.Sprintf(`{"tenant":%q,"request":{"id":%d,"source":3,"dests":[7,12,19],"bw":40,"chain":["NAT","Firewall"]}}`,
		tenant, id)
}

// TestConformanceGolden drives the full API over a real listener and
// pins every exchange — method, path, request body, status, salient
// headers, response body — against a golden transcript. The daemon is
// fully deterministic (fixed seed, SP policy, serial requests), so the
// transcript is byte-stable; regenerate with -update.
func TestConformanceGolden(t *testing.T) {
	_, base := startServer(t, Config{
		Topology: "geant",
		Seed:     42,
		Policy:   "SP",
		Shards:   2,
		WALDir:   filepath.Join(t.TempDir(), "wal"),
		NoSync:   true,
	})

	type exchange struct {
		method, path, body string
	}
	script := []exchange{
		{"POST", "/v1/submit", submitBody("acme", 1)},
		{"POST", "/v1/submit", submitBody("globex", 2)},
		{"POST", "/v1/apply", `{"shard":"s0","mutations":[{"kind":"link-state","id":4,"up":false}]}`},
		{"POST", "/v1/apply", `{"all":true,"mutations":[{"kind":"link-capacity","id":2,"cap":20000}]}`},
		{"POST", "/v1/release", `{"id":1}`},
		{"GET", "/v1/report", ""},
		// Error surface: malformed body, unknown fields, missing payload,
		// unknown session, bad scope, bad mutation kind, wrong method.
		{"POST", "/v1/submit", `{"tenant": "acme", "request": nope}`},
		{"POST", "/v1/submit", `{"tenant":"acme","bogus":1}`},
		{"POST", "/v1/submit", `{"tenant":"acme"}`},
		{"POST", "/v1/release", `{"id":999}`},
		{"POST", "/v1/apply", `{"mutations":[{"kind":"link-state","id":0,"up":true}]}`},
		{"POST", "/v1/apply", `{"shard":"s0","mutations":[{"kind":"warp_core","id":0}]}`},
		{"POST", "/v1/apply", `{"shard":"s9","mutations":[{"kind":"link-state","id":0,"up":true}]}`},
		{"GET", "/v1/submit", ""},
		{"POST", "/v1/report", ""},
	}

	var transcript bytes.Buffer
	for _, ex := range script {
		resp, data := doJSON(t, ex.method, base+ex.path, ex.body)
		fmt.Fprintf(&transcript, ">>> %s %s\n", ex.method, ex.path)
		if ex.body != "" {
			fmt.Fprintf(&transcript, "%s\n", ex.body)
		}
		fmt.Fprintf(&transcript, "<<< %d\n", resp.StatusCode)
		for _, h := range []string{"Content-Type", "Retry-After", "Allow"} {
			if v := resp.Header.Get(h); v != "" {
				fmt.Fprintf(&transcript, "%s: %s\n", h, v)
			}
		}
		transcript.Write(data)
		transcript.WriteString("\n")
	}

	golden := filepath.Join("testdata", "conformance.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, transcript.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden transcript missing (run with -update): %v", err)
	}
	if !bytes.Equal(transcript.Bytes(), want) {
		t.Fatalf("transcript diverged from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, transcript.Bytes(), want)
	}
}

// blockingPlanner parks every plan until its context expires — the
// deterministic way to hold an admission slot or trip a deadline.
type blockingPlanner struct {
	entered chan struct{} // one tick per plan that started
	release chan struct{} // closed to let plans fail fast
}

func (p *blockingPlanner) Name() string { return "blocking" }

func (p *blockingPlanner) Plan(nw *sdn.Network, req *multicast.Request) (*core.Solution, error) {
	return p.PlanContext(context.Background(), nw, req, nil)
}

func (p *blockingPlanner) PlanContext(ctx context.Context, nw *sdn.Network, req *multicast.Request, _ *core.PlanArena) (*core.Solution, error) {
	select {
	case p.entered <- struct{}{}:
	default:
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.release:
		return nil, fmt.Errorf("blocking planner released")
	}
}

func blockingConfig(p *blockingPlanner, queueDepth int, timeout time.Duration) Config {
	return Config{
		Topology:       "geant",
		Seed:           42,
		Shards:         1,
		QueueDepth:     queueDepth,
		RequestTimeout: timeout,
		testBuild: func(id string) (*sdn.Network, core.Planner, error) {
			topo := topology.GEANT()
			nw, err := sdn.NewNetwork(topo, sdn.DefaultConfig(), rand.New(rand.NewSource(42)))
			return nw, p, err
		},
	}
}

// TestSubmitDeadline: a plan that outlives the server-side deadline
// answers 504 with the deadline code — not 409, not a hang.
func TestSubmitDeadline(t *testing.T) {
	p := &blockingPlanner{entered: make(chan struct{}, 8), release: make(chan struct{})}
	defer close(p.release)
	_, base := startServer(t, blockingConfig(p, 4, 100*time.Millisecond))

	resp, data := doJSON(t, "POST", base+"/v1/submit", submitBody("acme", 1))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, data)
	}
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != CodeDeadline {
		t.Fatalf("code = %q, want %q", e.Code, CodeDeadline)
	}
}

// TestSubmitBackpressure: with the admission queue full, submit
// answers 429 + Retry-After immediately instead of queueing without
// bound.
func TestSubmitBackpressure(t *testing.T) {
	p := &blockingPlanner{entered: make(chan struct{}, 8), release: make(chan struct{})}
	_, base := startServer(t, blockingConfig(p, 1, 5*time.Second))

	// Fill the single slot with a request parked in planning. Plain
	// http.Post: the goroutine may outlive the assertion phase and must
	// not touch t.
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		resp, err := http.Post(base+"/v1/submit", "application/json",
			strings.NewReader(submitBody("acme", 1)))
		if err == nil {
			resp.Body.Close()
		}
	}()
	select {
	case <-p.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("first submission never reached the planner")
	}

	resp, data := doJSON(t, "POST", base+"/v1/submit", submitBody("acme", 2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != CodeOverloaded {
		t.Fatalf("code = %q, want %q", e.Code, CodeOverloaded)
	}
	close(p.release)
	<-parked
}

// TestDrainingRefusesSubmit: once Shutdown has begun, new submissions
// get the draining verdict (handler-level; the listener closes
// separately).
func TestDrainingRefusesSubmit(t *testing.T) {
	srv, err := New(Config{Topology: "geant", Seed: 42, Policy: "SP"})
	if err != nil {
		t.Fatal(err)
	}
	handler := srv.Handler()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("POST", "/v1/submit", strings.NewReader(submitBody("acme", 1)))
	rec := newRecorder()
	handler.ServeHTTP(rec, req)
	if rec.status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.status)
	}
	var e ErrorResponse
	if err := json.Unmarshal(rec.body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != CodeDraining {
		t.Fatalf("code = %q, want %q", e.Code, CodeDraining)
	}
}

// recorder is a minimal ResponseWriter (avoids httptest to keep the
// hot path identical to the real mux handlers).
type recorder struct {
	header http.Header
	body   bytes.Buffer
	status int
}

func newRecorder() *recorder { return &recorder{header: make(http.Header), status: 200} }

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }
func (r *recorder) WriteHeader(code int)        { r.status = code }

// TestRestartRecoversSessions: sessions admitted over HTTP survive a
// daemon restart — the second boot replays the WAL, re-adopts the
// sessions, and serves their release.
func TestRestartRecoversSessions(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	cfg := Config{
		Topology: "geant", Seed: 7, Policy: "SP", Shards: 2,
		WALDir: walDir, NoSync: true,
	}

	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	for i := 1; i <= 5; i++ {
		resp, data := doJSON(t, "POST", base+"/v1/submit", submitBody(fmt.Sprintf("tenant-%d", i%3), i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, data)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Second life: boot from the same WAL, then release a recovered
	// session over the API.
	srv2, base2 := startServer(t, cfg)
	var adopted int
	for _, b := range srv2.Boot() {
		adopted += b.Adopted
	}
	if adopted != 5 {
		t.Fatalf("recovered %d sessions, want 5 (boot %+v)", adopted, srv2.Boot())
	}
	resp, data := doJSON(t, "POST", base2+"/v1/release", `{"id":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("release recovered session: %d %s", resp.StatusCode, data)
	}
	// Manifest guard: a different substrate must be refused.
	bad := cfg
	bad.Seed = 8
	if _, err := New(bad); err == nil {
		t.Fatal("boot with mismatched seed over an existing WAL dir succeeded")
	}
}

// TestMetricsSurface: the obs endpoints ride along on the daemon mux.
func TestMetricsSurface(t *testing.T) {
	_, base := startServer(t, Config{Topology: "geant", Seed: 42, Policy: "SP"})
	for _, path := range []string{"/healthz", "/metrics", "/metrics.json"} {
		resp, data := doJSON(t, "GET", base+path, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %s", path, resp.StatusCode, data)
		}
	}
}
