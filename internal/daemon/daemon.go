// Package daemon runs the admission pipeline as a long-lived service:
// a shard router over journaled engines, an HTTP/JSON control surface
// (submit / release / apply / report), and crash recovery at boot.
//
// Durability is the write-ahead log of internal/wal — one log
// directory per shard under Config.WALDir ("shard-<id>/"). Boot opens
// every log, replays it into a freshly-built engine (same seeded
// substrate, so replay is bit-exact), re-adopts recovered sessions
// into the router's owner map, and only then binds the listener. A
// MANIFEST.json stamped with the substrate configuration guards
// restarts: recovering a log against a different topology or seed is
// refused instead of silently diverging.
//
// The admission queue is bounded: when Config.QueueDepth requests are
// already in flight, submit answers 429 with a Retry-After hint
// instead of queueing without bound. Every request runs under a
// server-side deadline (Config.RequestTimeout). SIGTERM handling is
// the caller's (see cmd/nfvmcastd): Server.Shutdown drains in-flight
// requests, takes a final snapshot per shard and closes the logs.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"nfvmcast/internal/core"
	"nfvmcast/internal/engine"
	"nfvmcast/internal/obs"
	recov "nfvmcast/internal/recover"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/shard"
	"nfvmcast/internal/topology"
	"nfvmcast/internal/wal"
)

// Config describes one daemon deployment.
type Config struct {
	// Topology names the substrate ("geant", "as1755", "as4755",
	// "waxman", "fattree"); Nodes sizes the synthetic ones. Seed feeds
	// topology synthesis and capacity placement — together these name
	// the exact network every shard runs, and recovery rebuilds.
	Topology string `json:"topology"`
	Nodes    int    `json:"nodes,omitempty"`
	Seed     int64  `json:"seed"`
	// Policy is the admission planner, resolved by name from the
	// planner registry (core.Planners lists the accepted names).
	Policy string `json:"policy"`
	// Shards is the shard count (default 1). Workers/BatchWindow tune
	// each shard's engine.
	Shards      int `json:"shards,omitempty"`
	Workers     int `json:"workers,omitempty"`
	BatchWindow int `json:"batchWindow,omitempty"`
	// WALDir roots the per-shard log directories. Empty runs the
	// daemon in-memory (no durability, no recovery).
	WALDir string `json:"walDir,omitempty"`
	// SegmentBytes / SnapshotEvery / NoSync pass through to wal.Options.
	SegmentBytes  int64 `json:"segmentBytes,omitempty"`
	SnapshotEvery int   `json:"snapshotEvery,omitempty"`
	NoSync        bool  `json:"noSync,omitempty"`
	// QueueDepth bounds concurrently-admitted submissions; submissions
	// beyond it are answered 429 + Retry-After. Default 64.
	QueueDepth int `json:"queueDepth,omitempty"`
	// RequestTimeout is the server-side deadline per request.
	// Default 10s.
	RequestTimeout time.Duration `json:"-"`

	// testBuild overrides the per-shard substrate/planner factory —
	// conformance tests inject planners with scripted behaviour
	// (blocking, slow) to exercise deadline and backpressure paths
	// deterministically.
	testBuild func(id string) (*sdn.Network, core.Planner, error)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Topology == "" {
		out.Topology = "geant"
	}
	if out.Policy == "" {
		out.Policy = "Online_CP"
	}
	if out.Shards <= 0 {
		out.Shards = 1
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = 64
	}
	if out.RequestTimeout <= 0 {
		out.RequestTimeout = 10 * time.Second
	}
	return out
}

// buildNetwork constructs the seeded substrate named by cfg.
func buildNetwork(cfg *Config) (*sdn.Network, error) {
	var (
		topo *topology.Topology
		err  error
	)
	switch cfg.Topology {
	case "geant":
		topo = topology.GEANT()
	case "as1755":
		topo = topology.AS1755()
	case "as4755":
		topo = topology.AS4755()
	case "waxman":
		n := cfg.Nodes
		if n == 0 {
			n = 100
		}
		topo, err = topology.WaxmanDegree(n, topology.DefaultAvgDegree, 0.14, cfg.Seed)
	case "fattree":
		topo, err = topology.FatTree(4, cfg.Seed)
	default:
		err = fmt.Errorf("daemon: unknown topology %q", cfg.Topology)
	}
	if err != nil {
		return nil, err
	}
	return sdn.NewNetwork(topo, sdn.DefaultConfig(), rand.New(rand.NewSource(cfg.Seed)))
}

func buildPlanner(cfg *Config, n int) (core.Planner, error) {
	p, err := core.NewPlanner(cfg.Policy, core.PlannerOptions{Nodes: n})
	if err != nil {
		return nil, fmt.Errorf("daemon: unknown policy %q", cfg.Policy)
	}
	return p, nil
}

// BootStats reports what recovery did per shard at New time.
type BootStats struct {
	Shard       string `json:"shard"`
	LastLSN     uint64 `json:"lastLSN"`
	Records     int    `json:"records"`
	SnapshotLSN uint64 `json:"snapshotLSN,omitempty"`
	Adopted     int    `json:"adopted"`
	TornTail    bool   `json:"tornTail,omitempty"`
	Fingerprint string `json:"fingerprint"`
}

// Server is one running daemon: the router, its logs, and the HTTP
// control surface.
type Server struct {
	cfg      Config
	router   *shard.Router
	logs     map[string]*wal.Log // shard ID -> log (nil map without WALDir)
	registry *obs.Registry
	boot     []BootStats

	queue    chan struct{} // admission-slot semaphore
	draining chan struct{} // closed at Shutdown: submit answers 503
	drainOne sync.Once

	mu      sync.Mutex // guards httpSrv and snapshot maintenance
	httpSrv *http.Server
}

// shardIDs names the shards "s0".."s<n-1>".
func shardIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("s%d", i)
	}
	return ids
}

// New boots a daemon: builds (or recovers) every shard and leaves the
// server ready for Handler/Serve. With Config.WALDir set, boot is the
// crash-recovery path — logs are opened, replayed into fresh engines,
// and the recovered sessions re-adopted — and a manifest stamp guards
// against recovering logs onto a different substrate.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.WALDir != "" {
		if err := checkManifest(cfg); err != nil {
			return nil, err
		}
	}
	registry := obs.NewRegistry()
	s := &Server{
		cfg:      cfg,
		logs:     make(map[string]*wal.Log),
		registry: registry,
		queue:    make(chan struct{}, cfg.QueueDepth),
		draining: make(chan struct{}),
	}
	pol := recov.DefaultPolicy()
	build := func(id string) (*sdn.Network, core.Planner, error) {
		nw, err := buildNetwork(&cfg)
		if err != nil {
			return nil, nil, err
		}
		planner, err := buildPlanner(&cfg, nw.NumNodes())
		if err != nil {
			return nil, nil, err
		}
		return nw, planner, nil
	}
	if cfg.testBuild != nil {
		build = cfg.testBuild
	}
	opts := shard.Options{
		Shards:      shardIDs(cfg.Shards),
		Build:       build,
		Workers:     cfg.Workers,
		BatchWindow: cfg.BatchWindow,
		Recovery:    &pol,
		Registry:    registry,
	}
	if cfg.WALDir != "" {
		opts.Journal = func(id string) (engine.Journal, error) {
			l, err := wal.Open(filepath.Join(cfg.WALDir, "shard-"+id), wal.Options{
				SegmentBytes:  cfg.SegmentBytes,
				SnapshotEvery: cfg.SnapshotEvery,
				NoSync:        cfg.NoSync,
				Obs:           obs.NewWALObs(registry, id),
			})
			if err != nil {
				return nil, err
			}
			s.logs[id] = l
			return l.Journal(), nil
		}
	}
	router, err := shard.New(opts)
	if err != nil {
		s.closeLogs()
		return nil, err
	}
	s.router = router

	for _, id := range shardIDs(cfg.Shards) {
		l, ok := s.logs[id]
		if !ok {
			continue
		}
		eng := router.Engine(id)
		stats, rerr := l.Recover(eng)
		if rerr != nil {
			router.Close()
			s.closeLogs()
			return nil, fmt.Errorf("daemon: recover shard %s: %w", id, rerr)
		}
		adopted, aerr := router.AdoptSessions(id)
		if aerr != nil {
			router.Close()
			s.closeLogs()
			return nil, fmt.Errorf("daemon: adopt shard %s: %w", id, aerr)
		}
		fp, ferr := wal.Fingerprint(eng)
		if ferr != nil {
			router.Close()
			s.closeLogs()
			return nil, fmt.Errorf("daemon: fingerprint shard %s: %w", id, ferr)
		}
		s.boot = append(s.boot, BootStats{
			Shard:       id,
			LastLSN:     stats.LastLSN,
			Records:     stats.Records,
			SnapshotLSN: stats.SnapshotLSN,
			Adopted:     adopted,
			TornTail:    stats.TailError != nil,
			Fingerprint: fp,
		})
	}
	if cfg.WALDir != "" {
		if err := writeManifest(cfg); err != nil {
			router.Close()
			s.closeLogs()
			return nil, err
		}
	}
	return s, nil
}

// Boot reports what recovery did per shard (empty without a WAL).
func (s *Server) Boot() []BootStats { return append([]BootStats(nil), s.boot...) }

// Router exposes the underlying shard router (tests, embedding).
func (s *Server) Router() *shard.Router { return s.router }

// maintain runs snapshot upkeep: any shard past its snapshot cadence
// gets one. Called opportunistically after state-changing requests.
func (s *Server) maintain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, l := range s.logs {
		if l.ShouldSnapshot() {
			_, _ = l.Snapshot(s.router.Engine(id)) // failure surfaces on the next barrier
		}
	}
}

// Serve accepts connections on ln until Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.httpSrv = srv
	s.mu.Unlock()
	err := srv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the daemon: new submissions are refused, in-flight
// requests finish (bounded by ctx), each shard takes a final snapshot,
// and the router and logs close. Safe to call once; subsequent calls
// return the first outcome.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.drainOne.Do(func() {
		close(s.draining)
		s.mu.Lock()
		srv := s.httpSrv
		s.mu.Unlock()
		if srv != nil {
			err = srv.Shutdown(ctx)
		}
		for id, l := range s.logs {
			if _, serr := l.Snapshot(s.router.Engine(id)); serr != nil && err == nil {
				err = fmt.Errorf("daemon: final snapshot shard %s: %w", id, serr)
			}
		}
		s.router.Close()
		if cerr := s.closeLogs(); cerr != nil && err == nil {
			err = cerr
		}
	})
	return err
}

func (s *Server) closeLogs() error {
	var first error
	for _, l := range s.logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// manifestName stamps the WAL root with the substrate configuration.
const manifestName = "MANIFEST.json"

type manifest struct {
	Version  int    `json:"version"`
	Topology string `json:"topology"`
	Nodes    int    `json:"nodes,omitempty"`
	Seed     int64  `json:"seed"`
	Policy   string `json:"policy"`
	Shards   int    `json:"shards"`
}

func manifestFor(cfg Config) manifest {
	return manifest{
		Version:  1,
		Topology: cfg.Topology,
		Nodes:    cfg.Nodes,
		Seed:     cfg.Seed,
		Policy:   cfg.Policy,
		Shards:   cfg.Shards,
	}
}

// checkManifest refuses to recover logs written by a differently-
// configured deployment: replay against the wrong substrate would not
// fail cleanly, it would diverge.
func checkManifest(cfg Config) error {
	data, err := os.ReadFile(filepath.Join(cfg.WALDir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil // fresh deployment
	}
	if err != nil {
		return fmt.Errorf("daemon: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("daemon: parse manifest: %w", err)
	}
	if want := manifestFor(cfg); m != want {
		return fmt.Errorf("daemon: WAL dir %s was written by a different deployment (%+v, this config %+v)",
			cfg.WALDir, m, want)
	}
	return nil
}

func writeManifest(cfg Config) error {
	data, err := json.MarshalIndent(manifestFor(cfg), "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(cfg.WALDir, manifestName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("daemon: write manifest: %w", err)
	}
	return os.Rename(tmp, path)
}
