package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"nfvmcast/internal/core"
	"nfvmcast/internal/engine"
	"nfvmcast/internal/obs"
	"nfvmcast/internal/shard"
	"nfvmcast/internal/wal"
)

// The wire vocabulary is the WAL record schema (wal.RequestRecord,
// wal.SolutionRecord, wal.MutationRecord): what the daemon serves is
// exactly what it logs and replays. Errors are a JSON envelope with a
// stable machine-readable code.

// SubmitRequest asks for admission of one request on behalf of a
// tenant.
type SubmitRequest struct {
	Tenant  string             `json:"tenant"`
	Request *wal.RequestRecord `json:"request"`
}

// SubmitResponse acknowledges a durable admission.
type SubmitResponse struct {
	ID       int                 `json:"id"`
	Shard    string              `json:"shard"`
	Solution *wal.SolutionRecord `json:"solution"`
}

// ReleaseRequest ends a session by request ID.
type ReleaseRequest struct {
	ID int `json:"id"`
}

// ReleaseResponse returns the released session's last solution.
type ReleaseResponse struct {
	ID       int                 `json:"id"`
	Solution *wal.SolutionRecord `json:"solution"`
}

// ApplyRequest applies a maintenance batch. Exactly one of Tenant,
// Shard, or All selects the scope.
type ApplyRequest struct {
	Tenant    string               `json:"tenant,omitempty"`
	Shard     string               `json:"shard,omitempty"`
	All       bool                 `json:"all,omitempty"`
	Mutations []wal.MutationRecord `json:"mutations"`
}

// ApplyResponse acknowledges a durable maintenance batch.
type ApplyResponse struct {
	Applied int `json:"applied"`
}

// ReportResponse is the fleet report plus daemon-level durability
// state.
type ReportResponse struct {
	Report shard.Report  `json:"report"`
	WAL    []WALReport   `json:"wal,omitempty"`
	Boot   []BootStats   `json:"boot,omitempty"`
	Uptime time.Duration `json:"-"`
}

// WALReport is one shard's log position.
type WALReport struct {
	Shard   string `json:"shard"`
	LastLSN uint64 `json:"lastLSN"`
}

// ErrorResponse is the JSON envelope for every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Machine-readable error codes (ErrorResponse.Code).
const (
	CodeMalformed      = "malformed"
	CodeRejected       = "rejected"
	CodeDurability     = "durability"
	CodeDeadline       = "deadline"
	CodeOverloaded     = "overloaded"
	CodeDraining       = "draining"
	CodeUnknownSession = "unknown_session"
	CodeUnknownShard   = "unknown_shard"
	CodeInternal       = "internal"
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code})
}

// writeAdmitError maps an admission/maintenance error to its status.
func writeAdmitError(w http.ResponseWriter, err error) {
	var malformed *engine.MalformedMutationError
	switch {
	case core.IsRejection(err):
		// A policy rejection is a well-formed answer, not a fault: the
		// substrate cannot hold the request under the admission policy.
		writeError(w, http.StatusConflict, CodeRejected, err.Error())
	case errors.Is(err, engine.ErrDurability):
		writeError(w, http.StatusServiceUnavailable, CodeDurability, err.Error())
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusGatewayTimeout, CodeDeadline, err.Error())
	case errors.Is(err, shard.ErrUnknownSession):
		writeError(w, http.StatusNotFound, CodeUnknownSession, err.Error())
	case errors.Is(err, shard.ErrUnknownShard):
		writeError(w, http.StatusNotFound, CodeUnknownShard, err.Error())
	case errors.As(err, &malformed):
		writeError(w, http.StatusBadRequest, CodeMalformed, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
	}
}

// decodeBody strictly decodes the request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, CodeMalformed, "body: "+err.Error())
		return false
	}
	return true
}

// Handler returns the daemon's HTTP surface:
//
//	POST /v1/submit   admission (bounded queue, per-request deadline)
//	POST /v1/release  session departure
//	POST /v1/apply    maintenance batch (tenant / shard / fleet scope)
//	GET  /v1/report   fleet report + WAL positions
//
// plus the observability surface of internal/obs (/metrics,
// /metrics.json, /healthz, /debug/pprof/).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/submit", s.handleSubmit)
	mux.HandleFunc("/v1/release", s.handleRelease)
	mux.HandleFunc("/v1/apply", s.handleApply)
	mux.HandleFunc("/v1/report", s.handleReport)
	mux.Handle("/", obs.Handler(func() *obs.Registry { return s.registry }, nil))
	return mux
}

// acquire takes an admission slot without blocking. A full queue is
// backpressure: the caller is told to retry, not parked on the socket.
func (s *Server) acquire(w http.ResponseWriter) bool {
	select {
	case <-s.draining:
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "daemon is draining")
		return false
	default:
	}
	select {
	case s.queue <- struct{}{}:
		return true
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, CodeOverloaded,
			"admission queue full")
		return false
	}
}

func (s *Server) release() { <-s.queue }

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, CodeMalformed, "POST only")
		return false
	}
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	if !s.acquire(w) {
		return
	}
	defer s.release()
	var body SubmitRequest
	if !decodeBody(w, r, &body) {
		return
	}
	if body.Request == nil {
		writeError(w, http.StatusBadRequest, CodeMalformed, "missing request payload")
		return
	}
	req, err := body.Request.Decode()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeMalformed, err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	sol, err := s.router.AdmitContext(ctx, body.Tenant, req)
	if err != nil {
		// Prefer the deadline verdict when the context expired mid-plan:
		// some engine paths wrap the cause beyond errors.Is reach.
		if ctx.Err() != nil && !core.IsRejection(err) {
			writeError(w, http.StatusGatewayTimeout, CodeDeadline, ctx.Err().Error())
			return
		}
		writeAdmitError(w, err)
		return
	}
	s.maintain()
	shardID, _ := s.router.ShardFor(body.Tenant)
	writeJSON(w, http.StatusOK, SubmitResponse{
		ID:       req.ID,
		Shard:    shardID,
		Solution: wal.EncodeSolution(sol),
	})
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var body ReleaseRequest
	if !decodeBody(w, r, &body) {
		return
	}
	sol, err := s.router.Release(body.ID)
	if err != nil {
		writeAdmitError(w, err)
		return
	}
	s.maintain()
	writeJSON(w, http.StatusOK, ReleaseResponse{
		ID:       body.ID,
		Solution: wal.EncodeSolution(sol),
	})
}

func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var body ApplyRequest
	if !decodeBody(w, r, &body) {
		return
	}
	scopes := 0
	if body.Tenant != "" {
		scopes++
	}
	if body.Shard != "" {
		scopes++
	}
	if body.All {
		scopes++
	}
	if scopes != 1 {
		writeError(w, http.StatusBadRequest, CodeMalformed,
			"exactly one of tenant, shard, all must select the scope")
		return
	}
	if len(body.Mutations) == 0 {
		writeError(w, http.StatusBadRequest, CodeMalformed, "empty mutation batch")
		return
	}
	muts, err := wal.DecodeMutations(body.Mutations)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeMalformed, err.Error())
		return
	}
	switch {
	case body.Tenant != "":
		err = s.router.Apply(body.Tenant, muts...)
	case body.Shard != "":
		err = s.router.ApplyShard(body.Shard, muts...)
	default:
		err = s.router.ApplyAll(muts...)
	}
	if err != nil {
		writeAdmitError(w, err)
		return
	}
	s.maintain()
	writeJSON(w, http.StatusOK, ApplyResponse{Applied: len(muts)})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, CodeMalformed, "GET only")
		return
	}
	resp := ReportResponse{Report: s.router.Report(), Boot: s.boot}
	for _, id := range shardIDs(s.cfg.Shards) {
		if l, ok := s.logs[id]; ok {
			resp.WAL = append(resp.WAL, WALReport{Shard: id, LastLSN: l.LastLSN()})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
