package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"nfvmcast/internal/graph"
)

// The Rocketfuel ISP maps used by the paper (AS1755 "Ebone" and AS4755
// "VSNL") cannot be redistributed here, so we build deterministic
// synthetic graphs at the published PoP-level scale: same node and link
// counts, geography-biased short links as measured ISP PoP meshes have.
// The experiment series depend only on size and density (DESIGN.md §5).
const (
	as1755Nodes = 87
	as1755Links = 161
	as1755Seed  = 1755

	as4755Nodes = 41
	as4755Links = 68
	as4755Seed  = 4755
)

// AS1755 returns the synthetic Ebone (Europe) ISP topology:
// 87 PoPs / 161 links.
func AS1755() *Topology { return mustSyntheticISP("AS1755", as1755Nodes, as1755Links, as1755Seed) }

// AS4755 returns the synthetic VSNL (India) ISP topology:
// 41 PoPs / 68 links.
func AS4755() *Topology { return mustSyntheticISP("AS4755", as4755Nodes, as4755Links, as4755Seed) }

func mustSyntheticISP(name string, nodes, links int, seed int64) *Topology {
	t, err := SyntheticISP(name, nodes, links, seed)
	if err != nil {
		// Construction with the fixed built-in parameters cannot fail;
		// reaching this is a programming error.
		panic(err)
	}
	return t
}

// SyntheticISP builds a deterministic connected ISP-like PoP graph
// with exactly the requested node and link counts: a geography-biased
// random spanning tree plus the shortest remaining candidate links
// (with light randomisation) until the link budget is met.
func SyntheticISP(name string, nodes, links int, seed int64) (*Topology, error) {
	if nodes < 2 {
		return nil, ErrTooSmall
	}
	if links < nodes-1 || links > nodes*(nodes-1)/2 {
		return nil, fmt.Errorf("topology: %q needs links in [%d,%d], got %d",
			name, nodes-1, nodes*(nodes-1)/2, links)
	}
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, nodes)
	ys := make([]float64, nodes)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	dist := func(u, v int) float64 {
		return math.Hypot(xs[u]-xs[v], ys[u]-ys[v])
	}

	g := graph.New(nodes)
	used := make(map[[2]int]bool, links)
	addEdge := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		used[[2]int{u, v}] = true
		g.MustAddEdge(u, v, dist(u, v))
	}

	// Random-order nearest-attachment spanning tree: node i attaches
	// to the nearest already-placed node, which yields the low-stretch
	// backbone shape of measured PoP maps.
	order := rng.Perm(nodes)
	for i := 1; i < nodes; i++ {
		v := order[i]
		best, bestD := order[0], math.Inf(1)
		for j := 0; j < i; j++ {
			if d := dist(v, order[j]); d < bestD {
				best, bestD = order[j], d
			}
		}
		addEdge(v, best)
	}

	// Remaining budget: prefer short candidate links with a random
	// tie-break so meshes stay local but not planar-perfect.
	type cand struct {
		u, v int
		key  float64
	}
	cands := make([]cand, 0, nodes*(nodes-1)/2-len(used))
	for u := 0; u < nodes; u++ {
		for v := u + 1; v < nodes; v++ {
			if used[[2]int{u, v}] {
				continue
			}
			cands = append(cands, cand{u: u, v: v, key: dist(u, v) * (0.5 + rng.Float64())})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].key < cands[j].key })
	for i := 0; g.NumEdges() < links && i < len(cands); i++ {
		addEdge(cands[i].u, cands[i].v)
	}

	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("%s-pop%02d", name, i)
	}
	t := &Topology{
		Name:      name,
		Graph:     g,
		NodeNames: names,
		Servers:   defaultServers(nodes),
	}
	return t, t.Validate()
}
