package topology

import (
	"fmt"
	"math"
	"math/rand"

	"nfvmcast/internal/graph"
)

// WaxmanParams configures the Waxman random-graph model used by GT-ITM
// for flat random topologies: nodes are scattered uniformly on the unit
// square and each pair (u,v) is linked with probability
//
//	P(u,v) = Alpha * exp(-d(u,v) / (Beta * L))
//
// where d is Euclidean distance and L the maximum possible distance.
type WaxmanParams struct {
	// Alpha scales the overall edge probability (0 < Alpha <= 1).
	Alpha float64
	// Beta controls the relative likelihood of long links (0 < Beta <= 1).
	Beta float64
}

// DefaultWaxman is the parameterisation used for the paper's random
// networks: moderately dense graphs with average degree around 4-6 at
// n=50..250, matching GT-ITM defaults.
func DefaultWaxman() WaxmanParams { return WaxmanParams{Alpha: 0.4, Beta: 0.14} }

// DefaultAvgDegree is the target average degree for evaluation
// networks: GT-ITM flat random graphs at the paper's scale have sparse
// meshes of roughly this degree.
const DefaultAvgDegree = 4.0

// WaxmanDegree generates a connected Waxman topology over n nodes
// whose expected average degree is avgDegree regardless of n: the raw
// Waxman acceptance probabilities are rescaled so the expected edge
// count is n*avgDegree/2. This mirrors how GT-ITM configurations are
// tuned per network size. Deterministic per seed.
func WaxmanDegree(n int, avgDegree float64, beta float64, seed int64) (*Topology, error) {
	if n < 2 {
		return nil, ErrTooSmall
	}
	if avgDegree <= 0 || avgDegree > float64(n-1) {
		return nil, fmt.Errorf("topology: invalid target degree %v for n=%d", avgDegree, n)
	}
	if beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("topology: invalid waxman beta %v", beta)
	}
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	dist := func(u, v graph.NodeID) float64 {
		return math.Hypot(xs[u]-xs[v], ys[u]-ys[v])
	}
	const maxDist = math.Sqrt2
	// Rescale acceptance so the expected edge count hits the target.
	var rawSum float64
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			rawSum += math.Exp(-dist(u, v) / (beta * maxDist))
		}
	}
	targetEdges := float64(n) * avgDegree / 2
	scale := targetEdges / rawSum
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := scale * math.Exp(-dist(u, v)/(beta*maxDist))
			if p > 1 {
				p = 1
			}
			if rng.Float64() < p {
				g.MustAddEdge(u, v, dist(u, v))
			}
		}
	}
	connectComponents(g, rng, dist)
	t := &Topology{
		Name:    fmt.Sprintf("waxman-%d", n),
		Graph:   g,
		Servers: defaultServers(n),
	}
	return t, t.Validate()
}

// Waxman generates a connected Waxman random topology over n nodes
// with the given parameters and seed. Determinism: identical inputs
// produce identical topologies.
func Waxman(n int, p WaxmanParams, seed int64) (*Topology, error) {
	if n < 2 {
		return nil, ErrTooSmall
	}
	if p.Alpha <= 0 || p.Alpha > 1 || p.Beta <= 0 || p.Beta > 1 {
		return nil, fmt.Errorf("topology: invalid waxman params %+v", p)
	}
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	dist := func(u, v graph.NodeID) float64 {
		dx, dy := xs[u]-xs[v], ys[u]-ys[v]
		return math.Hypot(dx, dy)
	}
	const maxDist = math.Sqrt2 // diagonal of the unit square
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := dist(u, v)
			if rng.Float64() < p.Alpha*math.Exp(-d/(p.Beta*maxDist)) {
				g.MustAddEdge(u, v, d)
			}
		}
	}
	connectComponents(g, rng, dist)
	t := &Topology{
		Name:    fmt.Sprintf("waxman-%d", n),
		Graph:   g,
		Servers: defaultServers(n),
	}
	return t, t.Validate()
}
