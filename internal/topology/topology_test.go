package topology

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"nfvmcast/internal/graph"
)

func TestWaxmanBasics(t *testing.T) {
	topo, err := Waxman(60, DefaultWaxman(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumNodes() != 60 {
		t.Fatalf("nodes = %d, want 60", topo.NumNodes())
	}
	if !graph.IsConnected(topo.Graph) {
		t.Fatal("waxman topology not connected")
	}
	if topo.Servers != 6 {
		t.Fatalf("servers = %d, want 6 (10%%)", topo.Servers)
	}
}

func TestWaxmanDeterminism(t *testing.T) {
	a, err := Waxman(40, DefaultWaxman(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Waxman(40, DefaultWaxman(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	ae, be := a.Graph.Edges(), b.Graph.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ae[i], be[i])
		}
	}
	c, err := Waxman(40, DefaultWaxman(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEdges() == a.NumEdges() {
		same := true
		ce := c.Graph.Edges()
		for i := range ae {
			if ae[i] != ce[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical topologies")
		}
	}
}

func TestWaxmanValidation(t *testing.T) {
	if _, err := Waxman(1, DefaultWaxman(), 1); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("Waxman(1) = %v, want ErrTooSmall", err)
	}
	if _, err := Waxman(10, WaxmanParams{Alpha: 0, Beta: 0.5}, 1); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	if _, err := Waxman(10, WaxmanParams{Alpha: 0.5, Beta: 1.5}, 1); err == nil {
		t.Fatal("beta>1 accepted")
	}
}

func TestWaxmanDegreeTargets(t *testing.T) {
	for _, n := range []int{50, 100, 250} {
		topo, err := WaxmanDegree(n, DefaultAvgDegree, 0.14, 42)
		if err != nil {
			t.Fatal(err)
		}
		avg := 2 * float64(topo.NumEdges()) / float64(n)
		// connectComponents may add a few extra edges; allow slack.
		if avg < DefaultAvgDegree*0.6 || avg > DefaultAvgDegree*1.6 {
			t.Fatalf("n=%d: avg degree %.2f too far from target %v", n, avg, DefaultAvgDegree)
		}
		if !graph.IsConnected(topo.Graph) {
			t.Fatalf("n=%d: disconnected", n)
		}
	}
}

func TestWaxmanDegreeValidation(t *testing.T) {
	if _, err := WaxmanDegree(1, 4, 0.14, 1); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("WaxmanDegree(1) = %v, want ErrTooSmall", err)
	}
	if _, err := WaxmanDegree(10, 0, 0.14, 1); err == nil {
		t.Fatal("degree 0 accepted")
	}
	if _, err := WaxmanDegree(10, 100, 0.14, 1); err == nil {
		t.Fatal("degree > n-1 accepted")
	}
	if _, err := WaxmanDegree(10, 4, 0, 1); err == nil {
		t.Fatal("beta 0 accepted")
	}
}

func TestTransitStub(t *testing.T) {
	p := DefaultTransitStub(100)
	topo, err := TransitStub(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := p.TransitNodes * (1 + p.StubsPerTransit*p.StubSize)
	if topo.NumNodes() != want {
		t.Fatalf("nodes = %d, want %d", topo.NumNodes(), want)
	}
	if !graph.IsConnected(topo.Graph) {
		t.Fatal("transit-stub disconnected")
	}
}

func TestTransitStubValidation(t *testing.T) {
	if _, err := TransitStub(TransitStubParams{TransitNodes: 1}, 1); err == nil {
		t.Fatal("1 transit node accepted")
	}
	if _, err := TransitStub(TransitStubParams{
		TransitNodes: 3, StubsPerTransit: 1, StubSize: 2, IntraEdgeProb: 2,
	}, 1); err == nil {
		t.Fatal("probability > 1 accepted")
	}
}

func TestGEANT(t *testing.T) {
	topo := GEANT()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.NumNodes() != 40 {
		t.Fatalf("GEANT nodes = %d, want 40", topo.NumNodes())
	}
	if topo.NumEdges() != 66 {
		t.Fatalf("GEANT links = %d, want 66", topo.NumEdges())
	}
	if topo.Servers != 9 {
		t.Fatalf("GEANT servers = %d, want 9", topo.Servers)
	}
	if len(topo.NodeNames) != 40 {
		t.Fatalf("GEANT names = %d, want 40", len(topo.NodeNames))
	}
	seen := make(map[string]bool)
	for _, name := range topo.NodeNames {
		if name == "" || seen[name] {
			t.Fatalf("bad or duplicate node name %q", name)
		}
		seen[name] = true
	}
}

func TestRocketfuelScales(t *testing.T) {
	tests := []struct {
		topo  *Topology
		nodes int
		links int
	}{
		{AS1755(), 87, 161},
		{AS4755(), 41, 68},
	}
	for _, tt := range tests {
		if err := tt.topo.Validate(); err != nil {
			t.Fatalf("%s: %v", tt.topo.Name, err)
		}
		if tt.topo.NumNodes() != tt.nodes {
			t.Fatalf("%s nodes = %d, want %d", tt.topo.Name, tt.topo.NumNodes(), tt.nodes)
		}
		if tt.topo.NumEdges() != tt.links {
			t.Fatalf("%s links = %d, want %d", tt.topo.Name, tt.topo.NumEdges(), tt.links)
		}
	}
}

func TestRocketfuelDeterminism(t *testing.T) {
	a, b := AS1755(), AS1755()
	ae, be := a.Graph.Edges(), b.Graph.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("AS1755 not deterministic at edge %d", i)
		}
	}
}

func TestSyntheticISPValidation(t *testing.T) {
	if _, err := SyntheticISP("x", 1, 0, 1); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("1-node ISP = %v, want ErrTooSmall", err)
	}
	if _, err := SyntheticISP("x", 10, 8, 1); err == nil {
		t.Fatal("links < n-1 accepted")
	}
	if _, err := SyntheticISP("x", 10, 50, 1); err == nil {
		t.Fatal("links > complete accepted")
	}
}

func TestPickServersDeterministicAndDistinct(t *testing.T) {
	topo := GEANT()
	a := topo.PickServers(rand.New(rand.NewSource(5)))
	b := topo.PickServers(rand.New(rand.NewSource(5)))
	if len(a) != topo.Servers {
		t.Fatalf("picked %d servers, want %d", len(a), topo.Servers)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PickServers not deterministic for equal rng state")
		}
	}
	seen := make(map[graph.NodeID]bool)
	for _, v := range a {
		if v < 0 || v >= topo.NumNodes() || seen[v] {
			t.Fatalf("bad or duplicate server %d", v)
		}
		seen[v] = true
	}
}

func TestValidateRejectsBadTopologies(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	// Disconnected.
	topo := &Topology{Name: "bad", Graph: g, Servers: 1}
	if err := topo.Validate(); !errors.Is(err, graph.ErrDisconnected) {
		t.Fatalf("disconnected accepted: %v", err)
	}
	// Bad server count.
	g2 := graph.New(2)
	g2.MustAddEdge(0, 1, 1)
	topo2 := &Topology{Name: "bad2", Graph: g2, Servers: 0}
	if err := topo2.Validate(); err == nil {
		t.Fatal("0 servers accepted")
	}
	topo2.Servers = 5
	if err := topo2.Validate(); err == nil {
		t.Fatal("too many servers accepted")
	}
	// Name count mismatch.
	topo3 := &Topology{Name: "bad3", Graph: g2, Servers: 1, NodeNames: []string{"a"}}
	if err := topo3.Validate(); err == nil {
		t.Fatal("name count mismatch accepted")
	}
}

func TestPropertyWaxmanAlwaysConnected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(80)
		deg := 2 + 2*rng.Float64()
		if deg > float64(n-1) {
			deg = float64(n - 1)
		}
		topo, err := WaxmanDegree(n, deg, 0.05+0.3*rng.Float64(), seed)
		if err != nil {
			return false
		}
		return graph.IsConnected(topo.Graph) && topo.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySyntheticISPExactCounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		maxLinks := n * (n - 1) / 2
		links := n - 1 + rng.Intn(maxLinks-(n-1)+1)
		topo, err := SyntheticISP("t", n, links, seed)
		if err != nil {
			return false
		}
		return topo.NumNodes() == n && topo.NumEdges() == links &&
			graph.IsConnected(topo.Graph)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
