package topology

import (
	"testing"

	"nfvmcast/internal/graph"
)

func TestFatTreeStructure(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		topo, err := FatTree(k, 0)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		half := k / 2
		wantNodes := half*half + k*k
		if topo.NumNodes() != wantNodes {
			t.Fatalf("k=%d: nodes = %d, want %d", k, topo.NumNodes(), wantNodes)
		}
		// Links: per pod (k/2)^2 mesh + (k/2)^2 uplinks.
		wantEdges := k * (half*half + half*half)
		if topo.NumEdges() != wantEdges {
			t.Fatalf("k=%d: edges = %d, want %d", k, topo.NumEdges(), wantEdges)
		}
		if !graph.IsConnected(topo.Graph) {
			t.Fatalf("k=%d: disconnected", k)
		}
		if topo.Servers != k {
			t.Fatalf("k=%d: servers = %d, want %d", k, topo.Servers, k)
		}
		// A fat-tree has no bridges for k >= 4 (full redundancy).
		if k >= 4 {
			if bridges := graph.Bridges(topo.Graph); len(bridges) != 0 {
				t.Fatalf("k=%d: unexpected bridges %v", k, bridges)
			}
		}
	}
}

func TestFatTreeValidation(t *testing.T) {
	for _, k := range []int{0, 1, 3, -2} {
		if _, err := FatTree(k, 0); err == nil {
			t.Fatalf("k=%d accepted", k)
		}
		if _, err := FatTreeServers(k); err == nil {
			t.Fatalf("servers for k=%d accepted", k)
		}
	}
}

func TestFatTreeServersArePodLocalAggs(t *testing.T) {
	const k = 4
	topo, err := FatTree(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	servers, err := FatTreeServers(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != k {
		t.Fatalf("%d servers, want %d", len(servers), k)
	}
	seen := make(map[graph.NodeID]bool)
	for i, v := range servers {
		if v < 0 || v >= topo.NumNodes() || seen[v] {
			t.Fatalf("bad or duplicate server %d", v)
		}
		seen[v] = true
		wantName := "agg0"
		if got := topo.NodeNames[v]; len(got) < 4 || got[len(got)-4:] != wantName {
			t.Fatalf("server %d is %q, want a pod-local %s", i, got, wantName)
		}
	}
}

func TestFatTreeDiameter(t *testing.T) {
	// Any two edge switches are at most 4 hops apart (edge-agg-core-
	// agg-edge).
	topo, err := FatTree(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := graph.Dijkstra(topo.Graph, topo.NumNodes()-1) // an edge switch
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < topo.NumNodes(); v++ {
		if sp.Dist[v] > 4 {
			t.Fatalf("distance to %d is %v, want <= 4", v, sp.Dist[v])
		}
	}
}
