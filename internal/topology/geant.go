package topology

import "nfvmcast/internal/graph"

// geantNodes are the 40 GÉANT points of presence (2017-era map,
// transcribed approximately from the public topology poster — see
// DESIGN.md §5). Index in this slice is the node ID.
var geantNodes = []string{
	"Amsterdam",  // 0
	"Athens",     // 1
	"Belgrade",   // 2
	"Bratislava", // 3
	"Brussels",   // 4
	"Bucharest",  // 5
	"Budapest",   // 6
	"Chisinau",   // 7
	"Copenhagen", // 8
	"Dublin",     // 9
	"Frankfurt",  // 10
	"Geneva",     // 11
	"Hamburg",    // 12
	"Helsinki",   // 13
	"Kaunas",     // 14
	"Lisbon",     // 15
	"Ljubljana",  // 16
	"London",     // 17
	"Luxembourg", // 18
	"Madrid",     // 19
	"Malta",      // 20
	"Marseille",  // 21
	"Milan",      // 22
	"Nicosia",    // 23
	"Oslo",       // 24
	"Paris",      // 25
	"Podgorica",  // 26
	"Prague",     // 27
	"Riga",       // 28
	"Rome",       // 29
	"Sofia",      // 30
	"Stockholm",  // 31
	"Tallinn",    // 32
	"Tirana",     // 33
	"Vienna",     // 34
	"Vilnius",    // 35
	"Warsaw",     // 36
	"Zagreb",     // 37
	"Zurich",     // 38
	"Tartu",      // 39
}

// geantLinks is the GÉANT backbone link list over geantNodes indices.
// Link lengths are uniform: the evaluation's costs come from per-link
// unit prices assigned by the SDN layer, not from geography.
var geantLinks = [][2]int{
	{0, 17}, {0, 4}, {0, 10}, {0, 12}, {0, 8}, {0, 9}, // Amsterdam
	{17, 25}, {17, 9}, {17, 10}, {17, 15}, // London
	{25, 11}, {25, 19}, {25, 4}, {25, 21}, // Paris
	{4, 18},                                          // Brussels–Luxembourg
	{18, 10},                                         // Luxembourg–Frankfurt
	{10, 11}, {10, 27}, {10, 12}, {10, 34}, {10, 36}, // Frankfurt
	{12, 8},          // Hamburg–Copenhagen
	{8, 24}, {8, 31}, // Copenhagen–Oslo/Stockholm
	{24, 31},           // Oslo–Stockholm
	{31, 13},           // Stockholm–Helsinki
	{13, 32},           // Helsinki–Tallinn
	{32, 28}, {32, 39}, // Tallinn–Riga/Tartu
	{39, 28},                             // Tartu–Riga
	{28, 14},                             // Riga–Kaunas
	{14, 35},                             // Kaunas–Vilnius
	{35, 36},                             // Vilnius–Warsaw
	{36, 27},                             // Warsaw–Prague
	{27, 34},                             // Prague–Vienna
	{34, 3}, {34, 6}, {34, 37}, {34, 22}, // Vienna
	{3, 6},                  // Bratislava–Budapest
	{6, 37}, {6, 2}, {6, 5}, // Budapest
	{37, 16}, {37, 2}, // Zagreb–Ljubljana/Belgrade
	{16, 22},                               // Ljubljana–Milan
	{22, 11}, {22, 38}, {22, 21}, {22, 29}, // Milan
	{11, 38},                     // Geneva–Zurich
	{21, 19}, {21, 20}, {21, 23}, // Marseille–Madrid/Malta/Nicosia
	{19, 15},          // Madrid–Lisbon
	{29, 20}, {29, 1}, // Rome–Malta/Athens
	{1, 30}, {1, 23}, {1, 33}, // Athens–Sofia/Nicosia/Tirana
	{30, 5}, {30, 2}, // Sofia–Bucharest/Belgrade
	{5, 7},   // Bucharest–Chisinau
	{7, 30},  // Chisinau–Sofia (secondary homing)
	{2, 26},  // Belgrade–Podgorica
	{26, 33}, // Podgorica–Tirana
}

// geantServers is the number of server-attached switches in GÉANT,
// matching the consolidated-middlebox setup of [7] (paper §VI.A).
const geantServers = 9

// GEANT returns the embedded GÉANT topology: 40 PoPs, 66 links,
// 9 recommended server locations.
func GEANT() *Topology {
	g := graph.New(len(geantNodes))
	for _, l := range geantLinks {
		g.MustAddEdge(l[0], l[1], 1)
	}
	names := make([]string, len(geantNodes))
	copy(names, geantNodes)
	return &Topology{
		Name:      "GEANT",
		Graph:     g,
		NodeNames: names,
		Servers:   geantServers,
	}
}
