// Package topology builds the network topologies used by the paper's
// evaluation: GT-ITM-style random graphs (Waxman and transit-stub
// models), the real GÉANT pan-European research network, and
// Rocketfuel-scale ISP graphs (AS1755, AS4755). All generators are
// deterministic given a seed so that experiments are reproducible.
package topology

import (
	"errors"
	"fmt"
	"math/rand"

	"nfvmcast/internal/graph"
)

// ErrTooSmall is returned when a generator is asked for a degenerate
// topology (fewer than 2 nodes).
var ErrTooSmall = errors.New("topology: need at least 2 nodes")

// Topology is a named network structure: an undirected graph whose
// edge weights are link lengths (abstract distance units; the SDN
// layer assigns capacities and usage costs separately), optional node
// names, and a recommended number of NFV servers.
type Topology struct {
	// Name identifies the topology (e.g. "waxman-100", "GEANT").
	Name string
	// Graph is the link structure. Edge weights are link lengths.
	Graph *graph.Graph
	// NodeNames optionally labels nodes; empty for synthetic graphs.
	NodeNames []string
	// Servers is the recommended number of server-attached switches:
	// 10% of the network size for random topologies (paper §VI.A),
	// 9 for GÉANT (as in [7]), and 10% for the ISP topologies.
	Servers int
}

// NumNodes reports the node count.
func (t *Topology) NumNodes() int { return t.Graph.NumNodes() }

// NumEdges reports the link count.
func (t *Topology) NumEdges() int { return t.Graph.NumEdges() }

// Validate checks the structural invariants every topology must
// satisfy before the SDN layer will accept it.
func (t *Topology) Validate() error {
	if t.Graph == nil || t.Graph.NumNodes() < 2 {
		return ErrTooSmall
	}
	if !graph.IsConnected(t.Graph) {
		return fmt.Errorf("topology %q: %w", t.Name, graph.ErrDisconnected)
	}
	if t.Servers < 1 || t.Servers > t.Graph.NumNodes() {
		return fmt.Errorf("topology %q: invalid server count %d for %d nodes",
			t.Name, t.Servers, t.Graph.NumNodes())
	}
	if len(t.NodeNames) != 0 && len(t.NodeNames) != t.Graph.NumNodes() {
		return fmt.Errorf("topology %q: %d names for %d nodes",
			t.Name, len(t.NodeNames), t.Graph.NumNodes())
	}
	return nil
}

// PickServers deterministically selects the switch nodes that carry
// servers: a uniform random sample of t.Servers distinct nodes drawn
// with the supplied rng (the paper co-locates servers with random
// switches).
func (t *Topology) PickServers(rng *rand.Rand) []graph.NodeID {
	n := t.Graph.NumNodes()
	perm := rng.Perm(n)
	k := t.Servers
	if k > n {
		k = n
	}
	out := make([]graph.NodeID, k)
	copy(out, perm[:k])
	return out
}

// serverShare is the fraction of switches with attached servers used
// for synthetic and ISP topologies (paper §VI.A: 10%).
const serverShare = 0.10

// defaultServers returns max(1, round(share*n)).
func defaultServers(n int) int {
	s := int(float64(n)*serverShare + 0.5)
	if s < 1 {
		s = 1
	}
	return s
}

// connectComponents stitches a possibly-disconnected random graph into
// a connected one by linking consecutive components with an edge
// between random members, using the generator's own rng. Edge weight
// is the Euclidean distance when coordinates are available, else 1.
func connectComponents(g *graph.Graph, rng *rand.Rand, dist func(u, v graph.NodeID) float64) {
	labels, count := graph.ConnectedComponents(g)
	if count <= 1 {
		return
	}
	members := make([][]graph.NodeID, count)
	for v, c := range labels {
		members[c] = append(members[c], v)
	}
	for c := 1; c < count; c++ {
		u := members[0][rng.Intn(len(members[0]))]
		v := members[c][rng.Intn(len(members[c]))]
		w := 1.0
		if dist != nil {
			w = dist(u, v)
		}
		g.MustAddEdge(u, v, w)
		members[0] = append(members[0], members[c]...)
	}
}
