package topology

import (
	"fmt"

	"nfvmcast/internal/graph"
)

// FatTree generates a k-ary fat-tree — the canonical data-centre
// fabric (Al-Fares et al., SIGCOMM 2008) behind the paper's "system
// monitoring in data centers" motivation. For even k >= 2 it builds
//
//	(k/2)^2 core switches,
//	k pods of k/2 aggregation + k/2 edge switches each,
//
// with every edge switch linked to every aggregation switch of its
// pod, and aggregation switch j of every pod linked to core switches
// [j*k/2, (j+1)*k/2). Hosts are not modelled: multicast endpoints
// attach at edge switches. Node order: cores, then per pod
// aggregation then edge. NFV servers are recommended at one
// aggregation switch per pod (k servers).
func FatTree(k int, seed int64) (*Topology, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree arity %d must be even and >= 2", k)
	}
	half := k / 2
	cores := half * half
	perPod := k // half aggregation + half edge
	total := cores + k*perPod
	g := graph.New(total)

	coreID := func(i int) graph.NodeID { return i }
	aggID := func(pod, j int) graph.NodeID { return cores + pod*perPod + j }
	edgeID := func(pod, j int) graph.NodeID { return cores + pod*perPod + half + j }

	names := make([]string, total)
	for i := 0; i < cores; i++ {
		names[coreID(i)] = fmt.Sprintf("core%02d", i)
	}
	for pod := 0; pod < k; pod++ {
		for j := 0; j < half; j++ {
			names[aggID(pod, j)] = fmt.Sprintf("pod%02d-agg%d", pod, j)
			names[edgeID(pod, j)] = fmt.Sprintf("pod%02d-edge%d", pod, j)
		}
	}

	for pod := 0; pod < k; pod++ {
		// Pod mesh: every edge switch to every aggregation switch.
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				g.MustAddEdge(edgeID(pod, e), aggID(pod, a), 1)
			}
		}
		// Uplinks: aggregation j to its core group.
		for a := 0; a < half; a++ {
			for c := a * half; c < (a+1)*half; c++ {
				g.MustAddEdge(aggID(pod, a), coreID(c), 1)
			}
		}
	}

	_ = seed // structure is fully determined by k; kept for API symmetry
	t := &Topology{
		Name:      fmt.Sprintf("fattree-%d", k),
		Graph:     g,
		NodeNames: names,
		Servers:   k, // one NFV pod-local server per pod (at agg 0)
	}
	return t, t.Validate()
}

// FatTreeServers returns the recommended server placement for a
// fat-tree built by FatTree(k): aggregation switch 0 of every pod,
// giving each pod a local NFV site.
func FatTreeServers(k int) ([]graph.NodeID, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree arity %d must be even and >= 2", k)
	}
	half := k / 2
	cores := half * half
	out := make([]graph.NodeID, 0, k)
	for pod := 0; pod < k; pod++ {
		out = append(out, cores+pod*k)
	}
	return out, nil
}
