package topology

import (
	"fmt"
	"math/rand"

	"nfvmcast/internal/graph"
)

// TransitStubParams configures the two-level GT-ITM transit-stub
// hierarchy: a transit backbone of TransitNodes routers, each of which
// anchors StubsPerTransit stub domains of StubSize nodes.
type TransitStubParams struct {
	// TransitNodes is the size of the transit (backbone) domain.
	TransitNodes int
	// StubsPerTransit is the number of stub domains per transit node.
	StubsPerTransit int
	// StubSize is the number of nodes in each stub domain.
	StubSize int
	// IntraEdgeProb is the probability of an extra intra-domain edge
	// beyond the ring that guarantees connectivity.
	IntraEdgeProb float64
}

// DefaultTransitStub sizes a hierarchy of roughly n nodes.
func DefaultTransitStub(n int) TransitStubParams {
	t := 4
	spt := 2
	ss := (n - t) / (t * spt)
	if ss < 1 {
		ss = 1
	}
	return TransitStubParams{
		TransitNodes:    t,
		StubsPerTransit: spt,
		StubSize:        ss,
		IntraEdgeProb:   0.3,
	}
}

// TransitStub generates a connected two-level transit-stub topology
// with the given parameters and seed. Total node count is
// TransitNodes * (1 + StubsPerTransit*StubSize).
func TransitStub(p TransitStubParams, seed int64) (*Topology, error) {
	if p.TransitNodes < 2 || p.StubsPerTransit < 1 || p.StubSize < 1 {
		return nil, fmt.Errorf("topology: invalid transit-stub params %+v", p)
	}
	if p.IntraEdgeProb < 0 || p.IntraEdgeProb > 1 {
		return nil, fmt.Errorf("topology: invalid intra-edge probability %v", p.IntraEdgeProb)
	}
	rng := rand.New(rand.NewSource(seed))
	total := p.TransitNodes * (1 + p.StubsPerTransit*p.StubSize)
	g := graph.New(total)

	// Transit domain: a ring plus random chords. Transit links are
	// long-haul (weight 2), stub links short-haul (weight 1).
	const (
		transitWeight = 2.0
		stubWeight    = 1.0
	)
	transit := make([]graph.NodeID, p.TransitNodes)
	for i := range transit {
		transit[i] = i
	}
	for i := 0; i < p.TransitNodes; i++ {
		g.MustAddEdge(transit[i], transit[(i+1)%p.TransitNodes], transitWeight)
	}
	for i := 0; i < p.TransitNodes; i++ {
		for j := i + 2; j < p.TransitNodes; j++ {
			if (i != 0 || j != p.TransitNodes-1) && rng.Float64() < p.IntraEdgeProb {
				g.MustAddEdge(transit[i], transit[j], transitWeight)
			}
		}
	}

	// Stub domains: each a ring (or single node) homed on its transit
	// router, plus random chords.
	next := p.TransitNodes
	for _, tr := range transit {
		for s := 0; s < p.StubsPerTransit; s++ {
			stub := make([]graph.NodeID, p.StubSize)
			for i := range stub {
				stub[i] = next
				next++
			}
			for i := 0; i < p.StubSize && p.StubSize > 1; i++ {
				if i+1 < p.StubSize {
					g.MustAddEdge(stub[i], stub[i+1], stubWeight)
				}
			}
			for i := 0; i < p.StubSize; i++ {
				for j := i + 2; j < p.StubSize; j++ {
					if rng.Float64() < p.IntraEdgeProb {
						g.MustAddEdge(stub[i], stub[j], stubWeight)
					}
				}
			}
			// Home link from a random stub node to the transit router.
			g.MustAddEdge(stub[rng.Intn(p.StubSize)], tr, stubWeight)
		}
	}

	t := &Topology{
		Name:    fmt.Sprintf("transit-stub-%d", total),
		Graph:   g,
		Servers: defaultServers(total),
	}
	return t, t.Validate()
}
