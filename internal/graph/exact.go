package graph

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrTooManyTerminals bounds the Dreyfus–Wagner exact solver, whose
// running time grows as 3^t.
var ErrTooManyTerminals = errors.New("graph: too many terminals for exact Steiner")

// maxExactTerminals caps the exponential exact computation at a size
// that stays fast enough for tests and small instances.
const maxExactTerminals = 12

// SteinerExact computes an exact minimum Steiner tree (not just its
// weight) by running the Dreyfus–Wagner dynamic program with choice
// tracking and reconstructing the tree from the recorded merge/extend
// decisions. Exponential in the terminal count; intended for small
// instances and ground-truth comparisons.
func SteinerExact(g *Graph, terminals []NodeID) (*SteinerTree, error) {
	terms := dedupNodes(terminals)
	out := &SteinerTree{Terminals: terms}
	if len(terms) <= 1 {
		return out, nil
	}
	weight, dw, err := dreyfusWagner(g, terms)
	if err != nil {
		return nil, err
	}
	edges, err := dw.reconstruct()
	if err != nil {
		return nil, err
	}
	// The union of reconstruction paths can contain redundant edges
	// only when zero-weight ties exist; an MST + prune pass (KMB
	// steps 4-5 on an exact edge set) canonicalises without changing
	// the weight.
	tree, err := spanAndPrune(g, edges, terms)
	if err != nil {
		return nil, err
	}
	out.EdgeIDs = tree
	for _, e := range tree {
		out.Weight += g.Weight(e)
	}
	if out.Weight > weight+1e-6 {
		return nil, fmt.Errorf("graph: internal: reconstructed weight %v exceeds optimum %v",
			out.Weight, weight)
	}
	return out, nil
}

// spanAndPrune reduces an edge union to a tree spanning the terminals:
// spanning forest of the union, then iterative removal of non-terminal
// leaves.
func spanAndPrune(g *Graph, union []EdgeID, terms []NodeID) ([]EdgeID, error) {
	sub := New(g.NumNodes())
	back := make([]EdgeID, 0, len(union))
	sortInts(union)
	for _, e := range union {
		he := g.Edge(e)
		sub.MustAddEdge(he.U, he.V, he.W)
		back = append(back, e)
	}
	forest, err := KruskalMST(sub)
	if err != nil && err != ErrDisconnected {
		return nil, err
	}
	isTerm := make(map[NodeID]struct{}, len(terms))
	for _, t := range terms {
		isTerm[t] = struct{}{}
	}
	deg := make(map[NodeID]int)
	alive := make(map[EdgeID]bool, len(forest.EdgeIDs))
	incident := make(map[NodeID][]EdgeID)
	for _, id := range forest.EdgeIDs {
		he := back[id]
		alive[he] = true
		e := g.Edge(he)
		deg[e.U]++
		deg[e.V]++
		incident[e.U] = append(incident[e.U], he)
		incident[e.V] = append(incident[e.V], he)
	}
	var queue []NodeID
	for v, d := range deg {
		if d == 1 {
			if _, ok := isTerm[v]; !ok {
				queue = append(queue, v)
			}
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, he := range incident[v] {
			if !alive[he] {
				continue
			}
			alive[he] = false
			e := g.Edge(he)
			other := e.U
			if other == v {
				other = e.V
			}
			deg[v]--
			deg[other]--
			if deg[other] == 1 {
				if _, ok := isTerm[other]; !ok {
					queue = append(queue, other)
				}
			}
		}
	}
	var out []EdgeID
	for he, ok := range alive {
		if ok {
			out = append(out, he)
		}
	}
	sortInts(out)
	return out, nil
}

// SteinerExactWeight computes the exact minimum Steiner tree weight
// spanning terminals using the Dreyfus–Wagner dynamic program
// (O(3^t·n + 2^t·n^2) after n Dijkstra runs). It exists to verify the
// KMB 2-approximation and the paper's 2K bound empirically on small
// instances; production code should use SteinerKMB.
func SteinerExactWeight(g *Graph, terminals []NodeID) (float64, error) {
	terms := dedupNodes(terminals)
	if len(terms) <= 1 {
		for _, t := range terms {
			if t < 0 || t >= g.NumNodes() {
				return 0, fmt.Errorf("%w: terminal %d with n=%d",
					ErrNodeOutOfRange, t, g.NumNodes())
			}
		}
		return 0, nil
	}
	weight, _, err := dreyfusWagner(g, terms)
	return weight, err
}

// dwChoice records how dp[mask][v] was achieved, for reconstruction.
type dwChoice struct {
	kind byte   // 0 unset, 'l' leaf path, 'm' merge, 'e' extend
	sub  int    // merge: one half of the mask
	u    NodeID // extend: the relay node
}

// dwState carries the DP tables needed to reconstruct a tree.
type dwState struct {
	g       *Graph
	terms   []NodeID
	sps     []*ShortestPaths // one per graph node (metric closure)
	dp      [][]float64
	choices [][]dwChoice
	full    int
}

// dreyfusWagner runs the DP over masks of terms[0..t-2] rooted at
// terms[t-1] and returns the optimal weight plus the state for
// reconstruction.
func dreyfusWagner(g *Graph, terms []NodeID) (float64, *dwState, error) {
	for _, t := range terms {
		if t < 0 || t >= g.NumNodes() {
			return 0, nil, fmt.Errorf("%w: terminal %d with n=%d",
				ErrNodeOutOfRange, t, g.NumNodes())
		}
	}
	t := len(terms)
	if t > maxExactTerminals {
		return 0, nil, fmt.Errorf("%w: %d > %d", ErrTooManyTerminals, t, maxExactTerminals)
	}
	n := g.NumNodes()

	// All-pairs shortest paths via one Dijkstra per node (paths kept
	// for reconstruction).
	sps := make([]*ShortestPaths, n)
	for v := 0; v < n; v++ {
		sp, err := Dijkstra(g, v)
		if err != nil {
			return 0, nil, err
		}
		sps[v] = sp
	}
	for i := 0; i < t; i++ {
		for j := i + 1; j < t; j++ {
			if sps[terms[i]].Dist[terms[j]] >= Infinity {
				return 0, nil, fmt.Errorf("graph: terminals %d and %d: %w",
					terms[i], terms[j], ErrDisconnected)
			}
		}
	}

	full := (1 << (t - 1)) - 1
	dp := make([][]float64, full+1)
	choices := make([][]dwChoice, full+1)
	for mask := 0; mask <= full; mask++ {
		dp[mask] = make([]float64, n)
		choices[mask] = make([]dwChoice, n)
		for v := range dp[mask] {
			dp[mask][v] = Infinity
		}
	}
	for i := 0; i < t-1; i++ {
		ti := terms[i]
		for v := 0; v < n; v++ {
			dp[1<<i][v] = sps[ti].Dist[v]
			choices[1<<i][v] = dwChoice{kind: 'l'}
		}
	}
	for mask := 1; mask <= full; mask++ {
		if bits.OnesCount(uint(mask)) < 2 {
			continue
		}
		// Merge: split mask into two non-empty halves joined at v.
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			if sub < mask-sub {
				continue // each {sub, mask^sub} pair once
			}
			rest := mask ^ sub
			for v := 0; v < n; v++ {
				if c := dp[sub][v] + dp[rest][v]; c < dp[mask][v] {
					dp[mask][v] = c
					choices[mask][v] = dwChoice{kind: 'm', sub: sub}
				}
			}
		}
		// Extend: connect the partial tree at u to v by a shortest
		// path. One round of all-pairs relaxation is exact because the
		// distances form a metric closure; strict improvement keeps
		// reconstruction acyclic under zero-weight ties.
		for v := 0; v < n; v++ {
			dv := sps[v].Dist
			for u := 0; u < n; u++ {
				if c := dp[mask][u] + dv[u]; c < dp[mask][v]-1e-15 {
					dp[mask][v] = c
					choices[mask][v] = dwChoice{kind: 'e', u: u}
				}
			}
		}
	}
	st := &dwState{g: g, terms: terms, sps: sps, dp: dp, choices: choices, full: full}
	return dp[full][terms[t-1]], st, nil
}

// reconstruct walks the recorded choices from (full, root) and returns
// the union of host edges of an optimal tree.
func (st *dwState) reconstruct() ([]EdgeID, error) {
	union := make(map[EdgeID]struct{})
	addPath := func(from, to NodeID) error {
		_, edges, ok := st.sps[from].PathTo(to)
		if !ok {
			return ErrDisconnected
		}
		for _, e := range edges {
			union[e] = struct{}{}
		}
		return nil
	}
	type item struct {
		mask int
		v    NodeID
	}
	t := len(st.terms)
	stack := []item{{mask: st.full, v: st.terms[t-1]}}
	// Generous budget: every pop either descends to a strictly smaller
	// mask or follows a strictly-improving extend chain.
	budget := (st.full + 2) * st.g.NumNodes() * 4
	for len(stack) > 0 {
		if budget--; budget < 0 {
			return nil, fmt.Errorf("graph: internal: reconstruction did not terminate")
		}
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ch := st.choices[it.mask][it.v]
		switch ch.kind {
		case 'l':
			// Singleton mask: shortest path terminal -> v.
			i := bits.TrailingZeros(uint(it.mask))
			if err := addPath(st.terms[i], it.v); err != nil {
				return nil, err
			}
		case 'm':
			stack = append(stack, item{mask: ch.sub, v: it.v})
			stack = append(stack, item{mask: it.mask ^ ch.sub, v: it.v})
		case 'e':
			if err := addPath(ch.u, it.v); err != nil {
				return nil, err
			}
			stack = append(stack, item{mask: it.mask, v: ch.u})
		default:
			return nil, fmt.Errorf("graph: internal: no choice for mask %b node %d",
				it.mask, it.v)
		}
	}
	out := make([]EdgeID, 0, len(union))
	for e := range union {
		out = append(out, e)
	}
	sortInts(out)
	return out, nil
}
