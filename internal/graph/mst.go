package graph

import (
	"errors"
	"sort"
)

// ErrDisconnected is returned by spanning-tree routines when the graph
// (restricted to the relevant nodes) is not connected.
var ErrDisconnected = errors.New("graph: disconnected")

// MST holds a minimum spanning tree as a set of edge IDs of the host
// graph plus the total weight.
type MST struct {
	EdgeIDs []EdgeID
	Weight  float64
}

// KruskalMST computes a minimum spanning forest of g and returns it as
// an MST. When g is connected the result is a spanning tree; when it is
// not, ErrDisconnected is returned alongside the forest so callers that
// tolerate forests can still use it.
func KruskalMST(g *Graph) (*MST, error) {
	m := g.NumEdges()
	order := make([]EdgeID, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return g.Weight(order[i]) < g.Weight(order[j])
	})
	dsu := NewDisjointSet(g.NumNodes())
	out := &MST{}
	for _, id := range order {
		e := g.Edge(id)
		if dsu.Union(e.U, e.V) {
			out.EdgeIDs = append(out.EdgeIDs, id)
			out.Weight += e.W
		}
	}
	if g.NumNodes() > 0 && dsu.Count() != 1 {
		return out, ErrDisconnected
	}
	return out, nil
}

// PrimMST computes a minimum spanning tree of g starting from node 0
// using a binary heap. Returns ErrDisconnected when g is not connected
// (the partial tree covering node 0's component is still returned).
func PrimMST(g *Graph) (*MST, error) {
	n := g.NumNodes()
	out := &MST{}
	if n == 0 {
		return out, nil
	}
	inTree := make([]bool, n)
	bestEdge := make([]EdgeID, n)
	for i := range bestEdge {
		bestEdge[i] = -1
	}
	h := newIndexedHeap(n)
	h.PushOrDecrease(0, 0)
	covered := 0
	for h.Len() > 0 {
		v, _ := h.Pop()
		if inTree[v] {
			continue
		}
		inTree[v] = true
		covered++
		if e := bestEdge[v]; e != -1 {
			out.EdgeIDs = append(out.EdgeIDs, e)
			out.Weight += g.Weight(e)
		}
		g.VisitNeighbors(v, func(to NodeID, id EdgeID, w float64) bool {
			if !inTree[to] && h.PushOrDecrease(to, w) {
				bestEdge[to] = id
			}
			return true
		})
	}
	if covered != n {
		return out, ErrDisconnected
	}
	return out, nil
}
