package graph

import (
	"errors"
	"sort"
)

// ErrDisconnected is returned by spanning-tree routines when the graph
// (restricted to the relevant nodes) is not connected.
var ErrDisconnected = errors.New("graph: disconnected")

// MST holds a minimum spanning tree as a set of edge IDs of the host
// graph plus the total weight.
type MST struct {
	EdgeIDs []EdgeID
	Weight  float64
}

// KruskalMST computes a minimum spanning forest of g and returns it as
// an MST. When g is connected the result is a spanning tree; when it is
// not, ErrDisconnected is returned alongside the forest so callers that
// tolerate forests can still use it.
func KruskalMST(g *Graph) (*MST, error) {
	var ws MSTWorkspace
	out := &MST{}
	err := ws.Kruskal(g, out)
	return out, err
}

// PrimMST computes a minimum spanning tree of g starting from node 0
// using a binary heap. Returns ErrDisconnected when g is not connected
// (the partial tree covering node 0's component is still returned).
func PrimMST(g *Graph) (*MST, error) {
	var ws MSTWorkspace
	out := &MST{}
	err := ws.Prim(g, out)
	return out, err
}

// MSTWorkspace owns the transient state of Prim and Kruskal runs so
// repeated spanning-tree computations (one or two per Steiner candidate
// on the planner hot path) reuse one allocation set. The zero value is
// ready to use; a workspace is not safe for concurrent use. Results are
// identical to PrimMST/KruskalMST — the workspace only changes where
// the scratch lives.
type MSTWorkspace struct {
	inTree   []bool
	bestEdge []EdgeID
	heap     indexedHeap
	order    []EdgeID
	dsu      DisjointSet
}

// Kruskal computes a minimum spanning forest of g into out (out.EdgeIDs
// is truncated and reused). Error behaviour matches KruskalMST.
func (ws *MSTWorkspace) Kruskal(g *Graph, out *MST) error {
	m := g.NumEdges()
	if cap(ws.order) < m {
		ws.order = make([]EdgeID, m)
	}
	order := ws.order[:m]
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return g.Weight(order[i]) < g.Weight(order[j])
	})
	ws.dsu.Reset(g.NumNodes())
	out.EdgeIDs = out.EdgeIDs[:0]
	out.Weight = 0
	for _, id := range order {
		e := g.Edge(id)
		if ws.dsu.Union(e.U, e.V) {
			out.EdgeIDs = append(out.EdgeIDs, id)
			out.Weight += e.W
		}
	}
	if g.NumNodes() > 0 && ws.dsu.Count() != 1 {
		return ErrDisconnected
	}
	return nil
}

// Prim computes a minimum spanning tree of g starting from node 0 into
// out (out.EdgeIDs is truncated and reused). Error behaviour matches
// PrimMST.
func (ws *MSTWorkspace) Prim(g *Graph, out *MST) error {
	n := g.NumNodes()
	out.EdgeIDs = out.EdgeIDs[:0]
	out.Weight = 0
	if n == 0 {
		return nil
	}
	if cap(ws.inTree) < n {
		ws.inTree = make([]bool, n)
		ws.bestEdge = make([]EdgeID, n)
	}
	inTree := ws.inTree[:n]
	bestEdge := ws.bestEdge[:n]
	for i := 0; i < n; i++ {
		inTree[i] = false
		bestEdge[i] = -1
	}
	h := &ws.heap
	h.reset(n)
	h.PushOrDecrease(0, 0)
	covered := 0
	for h.Len() > 0 {
		v, _ := h.Pop()
		if inTree[v] {
			continue
		}
		inTree[v] = true
		covered++
		if e := bestEdge[v]; e != -1 {
			out.EdgeIDs = append(out.EdgeIDs, e)
			out.Weight += g.Weight(e)
		}
		g.VisitNeighbors(v, func(to NodeID, id EdgeID, w float64) bool {
			if !inTree[to] && h.PushOrDecrease(to, w) {
				bestEdge[to] = id
			}
			return true
		})
	}
	if covered != n {
		return ErrDisconnected
	}
	return nil
}
