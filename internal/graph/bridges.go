package graph

// Bridges finds all bridge edges (cut edges) of g in O(n + m) using
// Tarjan's low-link algorithm, implemented iteratively so deep graphs
// cannot overflow the stack. An edge is a bridge when removing it
// increases the number of connected components; parallel edges between
// the same pair are never bridges. The result is sorted by edge ID.
func Bridges(g *Graph) []EdgeID {
	n := g.NumNodes()
	disc := make([]int, n) // discovery time, 0 = unvisited
	low := make([]int, n)  // low-link value
	parentEdge := make([]EdgeID, n)
	for i := range parentEdge {
		parentEdge[i] = -1
	}
	timer := 0
	var bridges []EdgeID

	type frame struct {
		v    NodeID
		next int // next adjacency index to explore
	}
	// Count parallel edges per unordered pair lazily: an edge (u,v) is
	// only a bridge when it is the unique u-v edge on the tree path,
	// which the skip-one-parent-edge rule handles (we skip the exact
	// parent edge ID, so a second parallel edge still relaxes low[]).
	for start := 0; start < n; start++ {
		if disc[start] != 0 {
			continue
		}
		timer++
		disc[start] = timer
		low[start] = timer
		stack := []frame{{v: start}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			ns := g.adj[f.v]
			if f.next < len(ns) {
				h := ns[f.next]
				f.next++
				if h.id == parentEdge[f.v] {
					continue
				}
				if disc[h.to] != 0 {
					if disc[h.to] < low[f.v] {
						low[f.v] = disc[h.to]
					}
					continue
				}
				timer++
				disc[h.to] = timer
				low[h.to] = timer
				parentEdge[h.to] = h.id
				stack = append(stack, frame{v: h.to})
				continue
			}
			// Post-order: propagate low-link to the parent.
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := stack[len(stack)-1].v
				if low[f.v] < low[p] {
					low[p] = low[f.v]
				}
				if low[f.v] > disc[p] {
					bridges = append(bridges, parentEdge[f.v])
				}
			}
		}
	}
	sortInts(bridges)
	return bridges
}

// IsBridge reports whether edge e is a bridge of g. For repeated
// queries call Bridges once and index the result.
func IsBridge(g *Graph, e EdgeID) bool {
	if e < 0 || e >= g.NumEdges() {
		return false
	}
	for _, b := range Bridges(g) {
		if b == e {
			return true
		}
	}
	return false
}

// sortInts is a tiny insertion sort for the small slices used here.
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
