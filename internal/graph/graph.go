// Package graph provides the weighted-graph substrate used throughout
// nfvmcast: adjacency-list graphs, shortest paths, minimum spanning
// trees, the Kou–Markowsky–Berman Steiner-tree approximation, rooted
// trees with lowest-common-ancestor queries, and the supporting data
// structures (indexed binary heap, union–find).
//
// Graphs are undirected and weighted. Nodes are dense integers in
// [0, N). Edge weights live in a single slice indexed by edge ID so
// that algorithms which re-weight a graph between runs (the online
// admission algorithms re-price every link per request) can do so in
// O(1) per edge without rebuilding adjacency.
package graph

import (
	"errors"
	"fmt"
	"math"
)

// NodeID identifies a node in a Graph. Valid IDs are 0 <= id < NumNodes.
type NodeID = int

// EdgeID identifies an edge in a Graph. Valid IDs are 0 <= id < NumEdges.
type EdgeID = int

// Infinity is the distance reported for unreachable nodes.
const Infinity = math.MaxFloat64

var (
	// ErrNodeOutOfRange is returned when a node ID is outside [0, N).
	ErrNodeOutOfRange = errors.New("graph: node out of range")
	// ErrNegativeWeight is returned when an edge weight is negative.
	ErrNegativeWeight = errors.New("graph: negative edge weight")
)

// Edge is an undirected edge between U and V with weight W.
type Edge struct {
	U, V NodeID
	W    float64
}

// halfEdge is one directed arc of an undirected edge as stored in the
// adjacency list. The weight is looked up through the edge ID so that
// SetWeight is visible to every traversal immediately.
type halfEdge struct {
	to NodeID
	id EdgeID
}

// Graph is an undirected weighted graph over a fixed node set.
// The zero value is not usable; construct with New.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]halfEdge
}

// New returns an empty graph over n nodes (0..n-1).
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{
		n:   n,
		adj: make([][]halfEdge, n),
	}
}

// Clone returns a deep copy of g. Mutating the clone (including edge
// weights) does not affect g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		n:     g.n,
		edges: make([]Edge, len(g.edges)),
		adj:   make([][]halfEdge, g.n),
	}
	copy(c.edges, g.edges)
	for v, hs := range g.adj {
		c.adj[v] = make([]halfEdge, len(hs))
		copy(c.adj[v], hs)
	}
	return c
}

// CopyInto overwrites dst with a deep copy of g, reusing dst's edge
// and adjacency storage where capacities allow. After the call dst is
// independent of g (mutating either does not affect the other) and
// identical to what Clone would return. It exists for snapshot loops
// (the admission engine re-clones the network per planning slot) that
// would otherwise reallocate the whole adjacency structure per copy.
func (g *Graph) CopyInto(dst *Graph) {
	dst.n = g.n
	if cap(dst.edges) < len(g.edges) {
		dst.edges = make([]Edge, len(g.edges))
	} else {
		dst.edges = dst.edges[:len(g.edges)]
	}
	copy(dst.edges, g.edges)
	if cap(dst.adj) < g.n {
		dst.adj = make([][]halfEdge, g.n)
	} else {
		dst.adj = dst.adj[:g.n]
	}
	for v := range g.adj {
		src := g.adj[v]
		if cap(dst.adj[v]) < len(src) {
			dst.adj[v] = make([]halfEdge, len(src))
		} else {
			dst.adj[v] = dst.adj[v][:len(src)]
		}
		copy(dst.adj[v], src)
	}
}

// WeightClone returns a copy of g that owns its edge array (so
// SetWeight on the clone is invisible to g) but shares g's adjacency
// structure. Both graphs must stay structurally frozen afterwards:
// adding nodes or edges to either would write into the shared
// adjacency backing. The planner caches use it to patch a handful of
// re-priced weights onto a cached work graph without copying the
// adjacency lists — the dominant share of a graph clone.
func (g *Graph) WeightClone() *Graph {
	return &Graph{
		n:     g.n,
		edges: append([]Edge(nil), g.edges...),
		adj:   g.adj,
	}
}

// Reset empties g and re-sizes it to n nodes with no edges, reusing
// the adjacency arenas of previous construction rounds. It exists for
// scratch graphs that are rebuilt per evaluation round (Steiner
// closures, pruning subgraphs) so the rebuild is allocation-free once
// the arenas have grown to workload size.
func (g *Graph) Reset(n int) {
	if n < 0 {
		n = 0
	}
	g.edges = g.edges[:0]
	if cap(g.adj) < n {
		g.adj = make([][]halfEdge, n)
	} else {
		g.adj = g.adj[:n]
	}
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
	g.n = n
}

// NumNodes reports the number of nodes in g.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges reports the number of undirected edges in g.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode appends a fresh node and returns its ID.
func (g *Graph) AddNode() NodeID {
	g.adj = append(g.adj, nil)
	g.n++
	return g.n - 1
}

// AddEdge inserts an undirected edge {u, v} with weight w and returns
// its edge ID. Parallel edges and self-loops are permitted (self-loops
// are never useful to the algorithms here but are not an error).
func (g *Graph) AddEdge(u, v NodeID, w float64) (EdgeID, error) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, fmt.Errorf("%w: {%d,%d} with n=%d", ErrNodeOutOfRange, u, v, g.n)
	}
	if w < 0 {
		return 0, fmt.Errorf("%w: {%d,%d} w=%v", ErrNegativeWeight, u, v, w)
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, W: w})
	g.adj[u] = append(g.adj[u], halfEdge{to: v, id: id})
	if u != v {
		g.adj[v] = append(g.adj[v], halfEdge{to: u, id: id})
	}
	return id, nil
}

// MustAddEdge is AddEdge for statically-valid construction code; it
// panics on error and is intended for package-internal builders and
// tests where node IDs are known constants.
func (g *Graph) MustAddEdge(u, v NodeID, w float64) EdgeID {
	id, err := g.AddEdge(u, v, w)
	if err != nil {
		panic(err)
	}
	return id
}

// Edge returns the endpoints and weight of edge id.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Weight returns the weight of edge id.
func (g *Graph) Weight(id EdgeID) float64 { return g.edges[id].W }

// SetWeight overwrites the weight of edge id. Negative weights are
// rejected because every algorithm in this package assumes
// non-negative metrics.
func (g *Graph) SetWeight(id EdgeID, w float64) error {
	if id < 0 || id >= len(g.edges) {
		return fmt.Errorf("graph: edge %d out of range (m=%d)", id, len(g.edges))
	}
	if w < 0 {
		return fmt.Errorf("%w: edge %d w=%v", ErrNegativeWeight, id, w)
	}
	g.edges[id].W = w
	return nil
}

// Degree reports the number of incident half-edges at v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// Neighbor is one adjacency entry: the node reached and the edge used.
type Neighbor struct {
	Node   NodeID
	EdgeID EdgeID
	Weight float64
}

// Neighbors returns the adjacency of v as (node, edge, weight) triples.
// The returned slice is freshly allocated.
func (g *Graph) Neighbors(v NodeID) []Neighbor {
	hs := g.adj[v]
	out := make([]Neighbor, len(hs))
	for i, h := range hs {
		out[i] = Neighbor{Node: h.to, EdgeID: h.id, Weight: g.edges[h.id].W}
	}
	return out
}

// VisitNeighbors calls fn for every neighbor of v without allocating.
// If fn returns false, iteration stops early.
func (g *Graph) VisitNeighbors(v NodeID, fn func(to NodeID, id EdgeID, w float64) bool) {
	for _, h := range g.adj[v] {
		if !fn(h.to, h.id, g.edges[h.id].W) {
			return
		}
	}
}

// HasEdgeBetween reports whether at least one edge joins u and v.
func (g *Graph) HasEdgeBetween(u, v NodeID) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	// Scan the smaller adjacency list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, h := range g.adj[u] {
		if h.to == v {
			return true
		}
	}
	return false
}

// EdgeBetween returns the ID of the minimum-weight edge joining u and v
// and true, or (0, false) when none exists.
func (g *Graph) EdgeBetween(u, v NodeID) (EdgeID, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, false
	}
	best, found := 0, false
	for _, h := range g.adj[u] {
		if h.to != v {
			continue
		}
		if !found || g.edges[h.id].W < g.edges[best].W {
			best, found = h.id, true
		}
	}
	return best, found
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for i := range g.edges {
		s += g.edges[i].W
	}
	return s
}
