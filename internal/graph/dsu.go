package graph

// DisjointSet is a union–find structure with path compression and
// union by rank, used by Kruskal's MST and connectivity checks.
type DisjointSet struct {
	parent []int
	rank   []byte
	sets   int
}

// NewDisjointSet returns n singleton sets {0}, {1}, ..., {n-1}.
func NewDisjointSet(n int) *DisjointSet {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &DisjointSet{parent: p, rank: make([]byte, n), sets: n}
}

// Reset re-initialises d to n singleton sets, reusing the arenas when
// they are large enough.
func (d *DisjointSet) Reset(n int) {
	if cap(d.parent) < n {
		d.parent = make([]int, n)
		d.rank = make([]byte, n)
	} else {
		d.parent = d.parent[:n]
		d.rank = d.rank[:n]
	}
	for i := 0; i < n; i++ {
		d.parent[i] = i
		d.rank[i] = 0
	}
	d.sets = n
}

// Find returns the representative of x's set.
func (d *DisjointSet) Find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether they
// were previously distinct.
func (d *DisjointSet) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.rank[rx] < d.rank[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = rx
	if d.rank[rx] == d.rank[ry] {
		d.rank[rx]++
	}
	d.sets--
	return true
}

// Connected reports whether x and y are in the same set.
func (d *DisjointSet) Connected(x, y int) bool { return d.Find(x) == d.Find(y) }

// Count reports the number of disjoint sets.
func (d *DisjointSet) Count() int { return d.sets }
