package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildSampleTree returns a rooted tree over 7 nodes:
//
//	    0
//	   / \
//	  1   2
//	 / \   \
//	3   4   5
//	         \
//	          6
func buildSampleTree(t *testing.T) (*Graph, *RootedTree) {
	t.Helper()
	g := New(7)
	ids := []EdgeID{
		g.MustAddEdge(0, 1, 1),
		g.MustAddEdge(0, 2, 2),
		g.MustAddEdge(1, 3, 1),
		g.MustAddEdge(1, 4, 3),
		g.MustAddEdge(2, 5, 1),
		g.MustAddEdge(5, 6, 2),
	}
	rt, err := NewRootedTree(g, ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g, rt
}

func TestRootedTreeBasics(t *testing.T) {
	_, rt := buildSampleTree(t)
	if rt.Root() != 0 {
		t.Fatalf("Root = %d, want 0", rt.Root())
	}
	if rt.Parent(0) != -1 {
		t.Fatalf("Parent(root) = %d, want -1", rt.Parent(0))
	}
	if rt.Parent(6) != 5 || rt.Parent(5) != 2 {
		t.Fatalf("parents of 6,5 = %d,%d, want 5,2", rt.Parent(6), rt.Parent(5))
	}
	if rt.Depth(6) != 3 || rt.Depth(0) != 0 {
		t.Fatalf("depths = %d,%d, want 3,0", rt.Depth(6), rt.Depth(0))
	}
	if rt.DistToRoot(6) != 5 { // 2+1+2
		t.Fatalf("DistToRoot(6) = %v, want 5", rt.DistToRoot(6))
	}
	if !rt.InTree(3) {
		t.Fatal("InTree(3) should be true")
	}
	if rt.InTree(-1) || rt.InTree(99) {
		t.Fatal("InTree out-of-range should be false")
	}
	if got := len(rt.Nodes()); got != 7 {
		t.Fatalf("len(Nodes) = %d, want 7", got)
	}
}

func TestRootedTreeLCA(t *testing.T) {
	_, rt := buildSampleTree(t)
	tests := []struct {
		u, v, want NodeID
	}{
		{3, 4, 1},
		{3, 6, 0},
		{5, 6, 5},
		{1, 1, 1},
		{0, 6, 0},
		{4, 1, 1},
	}
	for _, tt := range tests {
		got, err := rt.LCA(tt.u, tt.v)
		if err != nil {
			t.Fatalf("LCA(%d,%d): %v", tt.u, tt.v, err)
		}
		if got != tt.want {
			t.Fatalf("LCA(%d,%d) = %d, want %d", tt.u, tt.v, got, tt.want)
		}
	}
}

func TestRootedTreeLCAAll(t *testing.T) {
	_, rt := buildSampleTree(t)
	got, err := rt.LCAAll(3, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("LCAAll(3,4,6) = %d, want 0", got)
	}
	got, err = rt.LCAAll(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("LCAAll(3,4) = %d, want 1", got)
	}
	if _, err := rt.LCAAll(); err == nil {
		t.Fatal("LCAAll() should error on empty input")
	}
}

func TestRootedTreePathBetween(t *testing.T) {
	_, rt := buildSampleTree(t)
	nodes, edges, err := rt.PathBetween(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{3, 1, 0, 2, 5, 6}
	if len(nodes) != len(want) {
		t.Fatalf("path = %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("path = %v, want %v", nodes, want)
		}
	}
	if len(edges) != len(nodes)-1 {
		t.Fatalf("edges = %d, want %d", len(edges), len(nodes)-1)
	}
	wgt, err := rt.PathWeight(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if wgt != 7 { // 1+1+2+1+2
		t.Fatalf("PathWeight(3,6) = %v, want 7", wgt)
	}
}

func TestRootedTreeSubtreeNodes(t *testing.T) {
	_, rt := buildSampleTree(t)
	sub := rt.SubtreeNodes(2)
	want := map[NodeID]bool{2: true, 5: true, 6: true}
	if len(sub) != len(want) {
		t.Fatalf("SubtreeNodes(2) = %v, want %v", sub, want)
	}
	for _, v := range sub {
		if !want[v] {
			t.Fatalf("SubtreeNodes(2) = %v contains unexpected %d", sub, v)
		}
	}
}

func TestRootedTreeRejectsCycle(t *testing.T) {
	g := New(3)
	ids := []EdgeID{
		g.MustAddEdge(0, 1, 1),
		g.MustAddEdge(1, 2, 1),
		g.MustAddEdge(2, 0, 1),
	}
	if _, err := NewRootedTree(g, ids, 0); !errors.Is(err, ErrNotATree) {
		t.Fatalf("cycle accepted: %v", err)
	}
}

func TestRootedTreeRejectsDisconnected(t *testing.T) {
	g := New(4)
	ids := []EdgeID{
		g.MustAddEdge(0, 1, 1),
		g.MustAddEdge(2, 3, 1),
	}
	if _, err := NewRootedTree(g, ids, 0); !errors.Is(err, ErrNotATree) {
		t.Fatalf("disconnected edge set accepted: %v", err)
	}
}

func TestRootedTreeSingleNode(t *testing.T) {
	g := New(3)
	rt, err := NewRootedTree(g, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rt.InTree(1) || rt.InTree(0) {
		t.Fatal("single-node tree membership wrong")
	}
	lca, err := rt.LCA(1, 1)
	if err != nil || lca != 1 {
		t.Fatalf("LCA(1,1) = %d,%v, want 1,nil", lca, err)
	}
}

func TestRootedTreeBadRoot(t *testing.T) {
	g := New(2)
	if _, err := NewRootedTree(g, nil, 5); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("bad root accepted: %v", err)
	}
}

// TestPropertyTreePathsConsistent builds random trees and checks that
// PathWeight equals the sum of edge weights along PathBetween, and
// that the LCA lies on the path.
func TestPropertyTreePathsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New(n)
		ids := make([]EdgeID, 0, n-1)
		for v := 1; v < n; v++ {
			ids = append(ids, g.MustAddEdge(rng.Intn(v), v, rng.Float64()*5))
		}
		rt, err := NewRootedTree(g, ids, 0)
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			u, v := rng.Intn(n), rng.Intn(n)
			nodes, edges, err := rt.PathBetween(u, v)
			if err != nil {
				return false
			}
			var sum float64
			for _, e := range edges {
				sum += g.Weight(e)
			}
			w, err := rt.PathWeight(u, v)
			if err != nil || math.Abs(w-sum) > 1e-9 {
				return false
			}
			a, err := rt.LCA(u, v)
			if err != nil {
				return false
			}
			found := false
			for _, nd := range nodes {
				if nd == a {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTraversalConnectivity(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(3, 4, 1)
	if IsConnected(g) {
		t.Fatal("disconnected graph reported connected")
	}
	labels, count := ConnectedComponents(g)
	if count != 2 {
		t.Fatalf("components = %d, want 2", count)
	}
	if labels[0] != labels[2] || labels[0] == labels[3] {
		t.Fatalf("labels = %v, want {0,1,2} together and {3,4} separate", labels)
	}
	if !SameComponent(g, 0, 1, 2) {
		t.Fatal("SameComponent(0,1,2) should be true")
	}
	if SameComponent(g, 0, 3) {
		t.Fatal("SameComponent(0,3) should be false")
	}
	if !SameComponent(g, 0) || !SameComponent(g) {
		t.Fatal("SameComponent with <2 nodes should be vacuously true")
	}
	order := BFSOrder(g, 0)
	if len(order) != 3 || order[0] != 0 {
		t.Fatalf("BFSOrder(0) = %v, want 3 nodes starting at 0", order)
	}
	if BFSOrder(g, 99) != nil {
		t.Fatal("BFSOrder(out of range) should be nil")
	}
}

func TestIsConnectedTrivial(t *testing.T) {
	if !IsConnected(New(0)) || !IsConnected(New(1)) {
		t.Fatal("graphs with <=1 node are vacuously connected")
	}
}

func TestRootedTreeParentEdge(t *testing.T) {
	g, rt := buildSampleTree(t)
	if rt.ParentEdge(0) != -1 {
		t.Fatalf("root parent edge = %d, want -1", rt.ParentEdge(0))
	}
	e := rt.ParentEdge(6)
	he := g.Edge(e)
	if !((he.U == 5 && he.V == 6) || (he.U == 6 && he.V == 5)) {
		t.Fatalf("ParentEdge(6) = edge {%d,%d}, want {5,6}", he.U, he.V)
	}
}

func TestRootedTreePathWeightOutside(t *testing.T) {
	_, rt := buildSampleTree(t)
	if _, err := rt.PathWeight(0, 99); err == nil {
		t.Fatal("out-of-tree PathWeight accepted")
	}
}

func TestSubtreeNodesOutside(t *testing.T) {
	_, rt := buildSampleTree(t)
	if got := rt.SubtreeNodes(99); got != nil {
		t.Fatalf("SubtreeNodes(out of tree) = %v, want nil", got)
	}
}
