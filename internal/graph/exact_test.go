package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSteinerExactTrivial(t *testing.T) {
	g := lineGraph(4)
	w, err := SteinerExactWeight(g, []NodeID{2})
	if err != nil || w != 0 {
		t.Fatalf("single terminal = (%v, %v), want (0, nil)", w, err)
	}
	w, err = SteinerExactWeight(g, []NodeID{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if w != 3 {
		t.Fatalf("two-terminal weight = %v, want 3 (shortest path)", w)
	}
}

func TestSteinerExactFindsSteinerPoint(t *testing.T) {
	// Hub with three terminals: spokes (1 each) beat the pairwise
	// perimeter (1.9 each); the exact solver must find 3, where the
	// KMB approximation legitimately returns 3.8.
	g := New(4)
	g.MustAddEdge(3, 0, 1)
	g.MustAddEdge(3, 1, 1)
	g.MustAddEdge(3, 2, 1)
	g.MustAddEdge(0, 1, 1.9)
	g.MustAddEdge(1, 2, 1.9)
	g.MustAddEdge(0, 2, 1.9)
	w, err := SteinerExactWeight(g, []NodeID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-3) > 1e-9 {
		t.Fatalf("exact weight = %v, want 3", w)
	}
	st, err := SteinerKMB(g, []NodeID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Weight < w-1e-9 {
		t.Fatalf("KMB %v beat the exact optimum %v", st.Weight, w)
	}
}

func TestSteinerExactErrors(t *testing.T) {
	g := lineGraph(3)
	if _, err := SteinerExactWeight(g, []NodeID{0, 9}); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("bad terminal = %v, want ErrNodeOutOfRange", err)
	}
	big := make([]NodeID, maxExactTerminals+1)
	gBig := New(maxExactTerminals + 1)
	for i := range big {
		big[i] = i
		if i > 0 {
			gBig.MustAddEdge(i-1, i, 1)
		}
	}
	if _, err := SteinerExactWeight(gBig, big); !errors.Is(err, ErrTooManyTerminals) {
		t.Fatalf("too many terminals = %v, want ErrTooManyTerminals", err)
	}
	dis := New(4)
	dis.MustAddEdge(0, 1, 1)
	dis.MustAddEdge(2, 3, 1)
	if _, err := SteinerExactWeight(dis, []NodeID{0, 3}); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("disconnected = %v, want ErrDisconnected", err)
	}
}

// TestPropertyExactMatchesBruteForceOnTrees: on a tree the minimum
// Steiner tree is the union of pairwise paths, computable directly.
func TestPropertyExactMatchesBruteForceOnTrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		g := New(n)
		ids := make([]EdgeID, 0, n-1)
		for v := 1; v < n; v++ {
			ids = append(ids, g.MustAddEdge(rng.Intn(v), v, 0.5+rng.Float64()*4))
		}
		nt := 2 + rng.Intn(min(4, n-1))
		terms := rng.Perm(n)[:nt]
		// Union of tree paths between terminals = minimal subtree.
		rt, err := NewRootedTree(g, ids, terms[0])
		if err != nil {
			return false
		}
		used := make(map[EdgeID]struct{})
		for _, term := range terms[1:] {
			_, edges, err := rt.PathBetween(terms[0], term)
			if err != nil {
				return false
			}
			for _, e := range edges {
				used[e] = struct{}{}
			}
		}
		var want float64
		for e := range used {
			want += g.Weight(e)
		}
		got, err := SteinerExactWeight(g, terms)
		if err != nil {
			return false
		}
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyKMBWithinTwiceExact empirically verifies the KMB
// guarantee weight(KMB) <= 2(1 - 1/l)·OPT on random graphs.
func TestPropertyKMBWithinTwiceExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(16)
		g := randomConnectedGraph(rng, n, rng.Intn(25))
		nt := 2 + rng.Intn(min(5, n-1))
		terms := rng.Perm(n)[:nt]
		opt, err := SteinerExactWeight(g, terms)
		if err != nil {
			return false
		}
		st, err := SteinerKMB(g, terms)
		if err != nil {
			return false
		}
		bound := 2 * (1 - 1/float64(nt)) * opt
		return st.Weight >= opt-1e-9 && st.Weight <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSteinerExactReconstruction(t *testing.T) {
	// Hub instance: the exact tree must be the three spokes.
	g := New(4)
	g.MustAddEdge(3, 0, 1)
	g.MustAddEdge(3, 1, 1)
	g.MustAddEdge(3, 2, 1)
	g.MustAddEdge(0, 1, 2.5)
	g.MustAddEdge(1, 2, 2.5)
	g.MustAddEdge(0, 2, 2.5)
	tree, err := SteinerExact(g, []NodeID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tree.Weight-3) > 1e-9 {
		t.Fatalf("weight = %v, want 3", tree.Weight)
	}
	if len(tree.EdgeIDs) != 3 {
		t.Fatalf("edges = %v, want the 3 spokes", tree.EdgeIDs)
	}
	checkSteinerTree(t, g, tree, []NodeID{0, 1, 2})
}

func TestSteinerExactTrivialCases(t *testing.T) {
	g := lineGraph(4)
	tree, err := SteinerExact(g, []NodeID{1})
	if err != nil || len(tree.EdgeIDs) != 0 {
		t.Fatalf("single terminal = (%+v, %v)", tree, err)
	}
	if _, err := SteinerExact(g, []NodeID{0, 9}); err == nil {
		t.Fatal("bad terminal accepted")
	}
}

// TestPropertySteinerExactTreeMatchesWeight reconstructs trees on
// random graphs and checks (a) structural validity, (b) the tree's
// weight equals the DP optimum, (c) KMB never beats it.
func TestPropertySteinerExactTreeMatchesWeight(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(14)
		g := randomConnectedGraph(rng, n, rng.Intn(20))
		nt := 2 + rng.Intn(min(5, n-1))
		terms := rng.Perm(n)[:nt]
		opt, err := SteinerExactWeight(g, terms)
		if err != nil {
			return false
		}
		tree, err := SteinerExact(g, terms)
		if err != nil {
			return false
		}
		if math.Abs(tree.Weight-opt) > 1e-6 {
			return false
		}
		// Structural checks.
		dsu := NewDisjointSet(n)
		for _, id := range tree.EdgeIDs {
			e := g.Edge(id)
			if !dsu.Union(e.U, e.V) {
				return false
			}
		}
		for _, term := range terms[1:] {
			if !dsu.Connected(terms[0], term) {
				return false
			}
		}
		kmb, err := SteinerKMB(g, terms)
		if err != nil {
			return false
		}
		return kmb.Weight >= opt-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
