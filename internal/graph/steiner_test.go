package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// checkSteinerTree verifies the structural invariants of a Steiner
// tree: acyclic, connected over its node set, spans all terminals, and
// every leaf is a terminal.
func checkSteinerTree(t *testing.T, g *Graph, st *SteinerTree, terminals []NodeID) {
	t.Helper()
	dsu := NewDisjointSet(g.NumNodes())
	deg := make(map[NodeID]int)
	for _, id := range st.EdgeIDs {
		e := g.Edge(id)
		if !dsu.Union(e.U, e.V) {
			t.Fatalf("steiner tree has a cycle through edge %d {%d,%d}", id, e.U, e.V)
		}
		deg[e.U]++
		deg[e.V]++
	}
	root := terminals[0]
	for _, term := range terminals[1:] {
		if !dsu.Connected(root, term) {
			t.Fatalf("terminals %d and %d not connected in steiner tree", root, term)
		}
	}
	isTerm := make(map[NodeID]struct{}, len(terminals))
	for _, term := range terminals {
		isTerm[term] = struct{}{}
	}
	for v, d := range deg {
		if d == 1 {
			if _, ok := isTerm[v]; !ok {
				t.Fatalf("non-terminal leaf %d in steiner tree", v)
			}
		}
	}
}

func TestSteinerSingleTerminal(t *testing.T) {
	g := lineGraph(4)
	st, err := SteinerKMB(g, []NodeID{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.EdgeIDs) != 0 || st.Weight != 0 {
		t.Fatalf("single-terminal tree = %+v, want empty", st)
	}
	nodes := st.Nodes(g)
	if len(nodes) != 1 || nodes[0] != 2 {
		t.Fatalf("Nodes = %v, want [2]", nodes)
	}
}

func TestSteinerTwoTerminalsIsShortestPath(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 3, 5)
	g.MustAddEdge(3, 2, 5)
	st, err := SteinerKMB(g, []NodeID{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Weight != 2 {
		t.Fatalf("weight = %v, want 2 (shortest path)", st.Weight)
	}
	checkSteinerTree(t, g, st, []NodeID{0, 2})
}

func TestSteinerStar(t *testing.T) {
	// Star: center 0, leaves 1..4, all weight 1. Terminals = leaves.
	g := New(5)
	for v := 1; v < 5; v++ {
		g.MustAddEdge(0, v, 1)
	}
	st, err := SteinerKMB(g, []NodeID{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Weight != 4 {
		t.Fatalf("weight = %v, want 4", st.Weight)
	}
	checkSteinerTree(t, g, st, []NodeID{1, 2, 3, 4})
}

func TestSteinerDuplicateTerminals(t *testing.T) {
	g := lineGraph(3)
	st, err := SteinerKMB(g, []NodeID{0, 2, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Weight != 2 {
		t.Fatalf("weight = %v, want 2", st.Weight)
	}
	if len(st.Terminals) != 2 {
		t.Fatalf("deduped terminals = %v, want 2 entries", st.Terminals)
	}
}

func TestSteinerDisconnectedTerminals(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	if _, err := SteinerKMB(g, []NodeID{0, 3}); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("SteinerKMB across components = %v, want ErrDisconnected", err)
	}
}

func TestSteinerTerminalOutOfRange(t *testing.T) {
	g := lineGraph(3)
	if _, err := SteinerKMB(g, []NodeID{0, 9}); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("SteinerKMB(bad terminal) = %v, want ErrNodeOutOfRange", err)
	}
}

func TestSteinerBenefitsFromSteinerPoint(t *testing.T) {
	// Three terminals around a hub: pairwise shortest paths run
	// through the hub (2 < 2.5), so KMB's expansion contains the
	// spokes and the pruned tree uses the Steiner point.
	g := New(4)
	g.MustAddEdge(3, 0, 1)
	g.MustAddEdge(3, 1, 1)
	g.MustAddEdge(3, 2, 1)
	g.MustAddEdge(0, 1, 2.5)
	g.MustAddEdge(1, 2, 2.5)
	g.MustAddEdge(0, 2, 2.5)
	st, err := SteinerKMB(g, []NodeID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Weight > 3+1e-9 {
		t.Fatalf("weight = %v, want 3 (via steiner point)", st.Weight)
	}
	checkSteinerTree(t, g, st, []NodeID{0, 1, 2})
}

func TestPropertySteinerInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 4+rng.Intn(25), rng.Intn(50))
		n := g.NumNodes()
		nt := 2 + rng.Intn(min(6, n-1))
		perm := rng.Perm(n)
		terminals := perm[:nt]
		st, err := SteinerKMB(g, terminals)
		if err != nil {
			return false
		}
		// Structural invariants.
		dsu := NewDisjointSet(n)
		for _, id := range st.EdgeIDs {
			e := g.Edge(id)
			if !dsu.Union(e.U, e.V) {
				return false
			}
		}
		for _, term := range terminals[1:] {
			if !dsu.Connected(terminals[0], term) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySteinerApproximationBound checks the KMB guarantee
// against a lower bound: the optimal Steiner tree costs at least half
// the metric-closure MST, so the KMB output (<= closure MST) is within
// 2x of optimum; here we verify the computable relation
// weight(KMB) <= weight(closure MST).
func TestPropertySteinerApproximationBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 4+rng.Intn(20), rng.Intn(40))
		n := g.NumNodes()
		nt := 2 + rng.Intn(min(5, n-1))
		terminals := rng.Perm(n)[:nt]
		st, err := SteinerKMB(g, terminals)
		if err != nil {
			return false
		}
		// Closure MST weight.
		closure := New(nt)
		for i := 0; i < nt; i++ {
			sp, err := Dijkstra(g, terminals[i])
			if err != nil {
				return false
			}
			for j := i + 1; j < nt; j++ {
				closure.MustAddEdge(i, j, sp.Dist[terminals[j]])
			}
		}
		mst, err := PrimMST(closure)
		if err != nil {
			return false
		}
		return st.Weight <= mst.Weight+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSteinerNodesIncludesSteinerPoints(t *testing.T) {
	g := New(4)
	g.MustAddEdge(3, 0, 1)
	g.MustAddEdge(3, 1, 1)
	g.MustAddEdge(3, 2, 1)
	g.MustAddEdge(0, 1, 2.5)
	g.MustAddEdge(1, 2, 2.5)
	g.MustAddEdge(0, 2, 2.5)
	st, err := SteinerKMB(g, []NodeID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	nodes := st.Nodes(g)
	found := false
	for _, v := range nodes {
		if v == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("Nodes() = %v missing steiner point 3", nodes)
	}
}
