package graph

import (
	"math/rand"
	"testing"
)

// FuzzSteinerKMB drives the Steiner pipeline with arbitrary seeds and
// sizes, asserting the structural invariants on every input (the seed
// corpus runs in normal `go test`; `go test -fuzz=FuzzSteinerKMB`
// explores further).
func FuzzSteinerKMB(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(3), uint8(15))
	f.Add(int64(42), uint8(30), uint8(6), uint8(50))
	f.Add(int64(-7), uint8(4), uint8(2), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, termsRaw, extraRaw uint8) {
		n := 2 + int(nRaw)%40
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, n, int(extraRaw)%60)
		nt := 1 + int(termsRaw)%min(8, n)
		terminals := rng.Perm(n)[:nt]
		st, err := SteinerKMB(g, terminals)
		if err != nil {
			t.Fatalf("connected graph rejected: %v", err)
		}
		// Acyclic + spans all terminals.
		dsu := NewDisjointSet(n)
		for _, id := range st.EdgeIDs {
			e := g.Edge(id)
			if !dsu.Union(e.U, e.V) {
				t.Fatalf("cycle in steiner tree (seed=%d n=%d)", seed, n)
			}
		}
		for _, term := range terminals[1:] {
			if !dsu.Connected(terminals[0], term) {
				t.Fatalf("terminal %d disconnected (seed=%d n=%d)", term, seed, n)
			}
		}
		if st.Weight < 0 {
			t.Fatalf("negative weight %v", st.Weight)
		}
	})
}

// FuzzDijkstra checks distance sanity under arbitrary graphs.
func FuzzDijkstra(f *testing.F) {
	f.Add(int64(3), uint8(12), uint8(20))
	f.Add(int64(99), uint8(35), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, extraRaw uint8) {
		n := 2 + int(nRaw)%50
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, n, int(extraRaw)%80)
		src := rng.Intn(n)
		sp, err := Dijkstra(g, src)
		if err != nil {
			t.Fatal(err)
		}
		if sp.Dist[src] != 0 {
			t.Fatalf("Dist[src] = %v", sp.Dist[src])
		}
		// Edge relaxation: no edge may shortcut the distances.
		for _, e := range g.Edges() {
			if sp.Dist[e.V] > sp.Dist[e.U]+e.W+1e-9 ||
				sp.Dist[e.U] > sp.Dist[e.V]+e.W+1e-9 {
				t.Fatalf("edge {%d,%d} violates relaxation", e.U, e.V)
			}
		}
	})
}
