package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBridgesLine(t *testing.T) {
	g := lineGraph(5)
	bridges := Bridges(g)
	if len(bridges) != 4 {
		t.Fatalf("line graph bridges = %v, want all 4 edges", bridges)
	}
}

func TestBridgesCycle(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.MustAddEdge(i, (i+1)%4, 1)
	}
	if bridges := Bridges(g); len(bridges) != 0 {
		t.Fatalf("cycle has bridges: %v", bridges)
	}
}

func TestBridgesBarbell(t *testing.T) {
	// Two triangles joined by one edge: only the joint is a bridge.
	g := New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 0, 1)
	joint := g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(4, 5, 1)
	g.MustAddEdge(5, 3, 1)
	bridges := Bridges(g)
	if len(bridges) != 1 || bridges[0] != joint {
		t.Fatalf("bridges = %v, want [%d]", bridges, joint)
	}
	if !IsBridge(g, joint) {
		t.Fatal("IsBridge(joint) = false")
	}
	if IsBridge(g, 0) {
		t.Fatal("triangle edge reported as bridge")
	}
	if IsBridge(g, -1) || IsBridge(g, 99) {
		t.Fatal("out-of-range edge reported as bridge")
	}
}

func TestBridgesParallelEdges(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 1, 2)
	if bridges := Bridges(g); len(bridges) != 0 {
		t.Fatalf("parallel pair has bridges: %v", bridges)
	}
	single := New(2)
	e := single.MustAddEdge(0, 1, 1)
	if bridges := Bridges(single); len(bridges) != 1 || bridges[0] != e {
		t.Fatalf("single edge not a bridge: %v", bridges)
	}
}

func TestBridgesDisconnected(t *testing.T) {
	g := New(5)
	a := g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(4, 2, 1)
	bridges := Bridges(g)
	if len(bridges) != 1 || bridges[0] != a {
		t.Fatalf("bridges = %v, want [%d]", bridges, a)
	}
}

// TestPropertyBridgesMatchBruteForce compares Tarjan against the
// definition: e is a bridge iff removing it disconnects its endpoints.
func TestPropertyBridgesMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 2+rng.Intn(25), rng.Intn(30))
		fast := make(map[EdgeID]bool)
		for _, e := range Bridges(g) {
			fast[e] = true
		}
		for id := 0; id < g.NumEdges(); id++ {
			e := g.Edge(id)
			// Rebuild without edge id.
			reduced := New(g.NumNodes())
			for j := 0; j < g.NumEdges(); j++ {
				if j == id {
					continue
				}
				oe := g.Edge(j)
				reduced.MustAddEdge(oe.U, oe.V, oe.W)
			}
			sp, err := Dijkstra(reduced, e.U)
			if err != nil {
				return false
			}
			slow := !sp.Reachable(e.V)
			if slow != fast[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
