package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// lineGraph returns 0-1-2-...-(n-1) with unit weights.
func lineGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	return g
}

func TestDijkstraLine(t *testing.T) {
	g := lineGraph(5)
	sp, err := Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if sp.Dist[v] != float64(v) {
			t.Fatalf("Dist[%d] = %v, want %d", v, sp.Dist[v], v)
		}
	}
	nodes, edges, ok := sp.PathTo(4)
	if !ok {
		t.Fatal("PathTo(4) not ok")
	}
	if len(nodes) != 5 || len(edges) != 4 {
		t.Fatalf("path sizes = (%d nodes, %d edges), want (5, 4)", len(nodes), len(edges))
	}
	for i, v := range nodes {
		if v != i {
			t.Fatalf("nodes[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestDijkstraPrefersCheaperLongerPath(t *testing.T) {
	// 0-1 direct weight 10; 0-2-1 weight 2+3=5.
	g := New(3)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(0, 2, 2)
	g.MustAddEdge(2, 1, 3)
	sp, err := Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Dist[1] != 5 {
		t.Fatalf("Dist[1] = %v, want 5", sp.Dist[1])
	}
	nodes, _, _ := sp.PathTo(1)
	want := []NodeID{0, 2, 1}
	if len(nodes) != len(want) {
		t.Fatalf("path = %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("path = %v, want %v", nodes, want)
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	// 2, 3 isolated from 0.
	g.MustAddEdge(2, 3, 1)
	sp, err := Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Reachable(2) {
		t.Fatal("node 2 should be unreachable")
	}
	if sp.Dist[2] != Infinity {
		t.Fatalf("Dist[2] = %v, want Infinity", sp.Dist[2])
	}
	if _, _, ok := sp.PathTo(3); ok {
		t.Fatal("PathTo(3) should report not ok")
	}
}

func TestDijkstraBadSource(t *testing.T) {
	g := lineGraph(3)
	if _, err := Dijkstra(g, 7); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("Dijkstra(bad source) = %v, want ErrNodeOutOfRange", err)
	}
	if _, err := Dijkstra(g, -1); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("Dijkstra(-1) = %v, want ErrNodeOutOfRange", err)
	}
}

func TestDijkstraSourcePath(t *testing.T) {
	g := lineGraph(3)
	sp, _ := Dijkstra(g, 1)
	nodes, edges, ok := sp.PathTo(1)
	if !ok || len(nodes) != 1 || len(edges) != 0 {
		t.Fatalf("PathTo(source) = (%v, %v, %v), want single node", nodes, edges, ok)
	}
	if sp.Parent(1) != -1 {
		t.Fatalf("Parent(source) = %d, want -1", sp.Parent(1))
	}
}

func TestDijkstraZeroWeightEdges(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 0)
	g.MustAddEdge(1, 2, 0)
	sp, _ := Dijkstra(g, 0)
	if sp.Dist[2] != 0 {
		t.Fatalf("Dist[2] = %v, want 0", sp.Dist[2])
	}
}

func TestPropertyDijkstraMatchesBellmanFord(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 2+rng.Intn(25), rng.Intn(40))
		src := rng.Intn(g.NumNodes())
		sp, err := Dijkstra(g, src)
		if err != nil {
			return false
		}
		bf, err := BellmanFord(g, src)
		if err != nil {
			return false
		}
		for v := range bf {
			if math.Abs(sp.Dist[v]-bf[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 3+rng.Intn(15), rng.Intn(20))
		n := g.NumNodes()
		dist := make([][]float64, n)
		for v := 0; v < n; v++ {
			sp, err := Dijkstra(g, v)
			if err != nil {
				return false
			}
			dist[v] = sp.Dist
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				for c := 0; c < n; c++ {
					if dist[a][b] > dist[a][c]+dist[c][b]+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPathLengthEqualsDistance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 2+rng.Intn(25), rng.Intn(40))
		src := rng.Intn(g.NumNodes())
		sp, err := Dijkstra(g, src)
		if err != nil {
			return false
		}
		for v := 0; v < g.NumNodes(); v++ {
			nodes, edges, ok := sp.PathTo(v)
			if !ok {
				return false // connected graph: everything reachable
			}
			if nodes[0] != src || nodes[len(nodes)-1] != v {
				return false
			}
			var sum float64
			for i, e := range edges {
				he := g.Edge(e)
				// Each edge must join consecutive path nodes.
				a, b := nodes[i], nodes[i+1]
				if !((he.U == a && he.V == b) || (he.V == a && he.U == b)) {
					return false
				}
				sum += he.W
			}
			if math.Abs(sum-sp.Dist[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBellmanFordBadSource(t *testing.T) {
	g := lineGraph(3)
	if _, err := BellmanFord(g, 9); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("BellmanFord(bad source) = %v, want ErrNodeOutOfRange", err)
	}
}
