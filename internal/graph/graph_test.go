package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmptyGraph(t *testing.T) {
	g := New(5)
	if got := g.NumNodes(); got != 5 {
		t.Fatalf("NumNodes() = %d, want 5", got)
	}
	if got := g.NumEdges(); got != 0 {
		t.Fatalf("NumEdges() = %d, want 0", got)
	}
	if g.TotalWeight() != 0 {
		t.Fatalf("TotalWeight() = %v, want 0", g.TotalWeight())
	}
}

func TestNewNegativeClampedToZero(t *testing.T) {
	g := New(-3)
	if got := g.NumNodes(); got != 0 {
		t.Fatalf("NumNodes() = %d, want 0", got)
	}
}

func TestAddNode(t *testing.T) {
	g := New(2)
	id := g.AddNode()
	if id != 2 {
		t.Fatalf("AddNode() = %d, want 2", id)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes() = %d, want 3", g.NumNodes())
	}
	if _, err := g.AddEdge(0, id, 1); err != nil {
		t.Fatalf("AddEdge to fresh node: %v", err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	tests := []struct {
		name    string
		u, v    NodeID
		w       float64
		wantErr error
	}{
		{name: "u out of range", u: -1, v: 0, w: 1, wantErr: ErrNodeOutOfRange},
		{name: "v out of range", u: 0, v: 3, w: 1, wantErr: ErrNodeOutOfRange},
		{name: "negative weight", u: 0, v: 1, w: -0.5, wantErr: ErrNegativeWeight},
		{name: "valid", u: 0, v: 1, w: 2.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := g.AddEdge(tt.u, tt.v, tt.w)
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("AddEdge(%d,%d,%v) = %v, want nil", tt.u, tt.v, tt.w, err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("AddEdge(%d,%d,%v) = %v, want %v", tt.u, tt.v, tt.w, err, tt.wantErr)
			}
		})
	}
}

func TestEdgeAccessors(t *testing.T) {
	g := New(4)
	id := g.MustAddEdge(1, 3, 2.5)
	e := g.Edge(id)
	if e.U != 1 || e.V != 3 || e.W != 2.5 {
		t.Fatalf("Edge(%d) = %+v, want {1 3 2.5}", id, e)
	}
	if got := g.Weight(id); got != 2.5 {
		t.Fatalf("Weight(%d) = %v, want 2.5", id, got)
	}
	if got := g.Degree(1); got != 1 {
		t.Fatalf("Degree(1) = %d, want 1", got)
	}
	if got := g.Degree(0); got != 0 {
		t.Fatalf("Degree(0) = %d, want 0", got)
	}
}

func TestSetWeight(t *testing.T) {
	g := New(2)
	id := g.MustAddEdge(0, 1, 5)
	if err := g.SetWeight(id, 1.5); err != nil {
		t.Fatalf("SetWeight: %v", err)
	}
	if got := g.Weight(id); got != 1.5 {
		t.Fatalf("Weight after SetWeight = %v, want 1.5", got)
	}
	if err := g.SetWeight(id, -1); !errors.Is(err, ErrNegativeWeight) {
		t.Fatalf("SetWeight(-1) = %v, want ErrNegativeWeight", err)
	}
	if err := g.SetWeight(99, 1); err == nil {
		t.Fatal("SetWeight(out-of-range) = nil, want error")
	}
	// Weight changes must be visible through adjacency.
	g.VisitNeighbors(0, func(_ NodeID, _ EdgeID, w float64) bool {
		if w != 1.5 {
			t.Fatalf("neighbor weight = %v, want 1.5", w)
		}
		return true
	})
}

func TestNeighbors(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 2)
	ns := g.Neighbors(0)
	if len(ns) != 2 {
		t.Fatalf("len(Neighbors(0)) = %d, want 2", len(ns))
	}
	seen := map[NodeID]float64{}
	for _, n := range ns {
		seen[n.Node] = n.Weight
	}
	if seen[1] != 1 || seen[2] != 2 {
		t.Fatalf("Neighbors(0) = %v, want nodes 1(w=1) and 2(w=2)", ns)
	}
}

func TestVisitNeighborsEarlyStop(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	count := 0
	g.VisitNeighbors(0, func(NodeID, EdgeID, float64) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early-stop visited %d neighbors, want 1", count)
	}
}

func TestHasEdgeBetween(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	if !g.HasEdgeBetween(0, 1) || !g.HasEdgeBetween(1, 0) {
		t.Fatal("HasEdgeBetween(0,1) should hold both ways")
	}
	if g.HasEdgeBetween(0, 2) {
		t.Fatal("HasEdgeBetween(0,2) should be false")
	}
	if g.HasEdgeBetween(-1, 2) || g.HasEdgeBetween(0, 9) {
		t.Fatal("out-of-range HasEdgeBetween should be false")
	}
}

func TestEdgeBetweenPicksMinWeightParallel(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 5)
	want := g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(0, 1, 7)
	id, ok := g.EdgeBetween(0, 1)
	if !ok || id != want {
		t.Fatalf("EdgeBetween = (%d,%v), want (%d,true)", id, ok, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	id := g.MustAddEdge(0, 1, 1)
	c := g.Clone()
	if err := c.SetWeight(id, 9); err != nil {
		t.Fatalf("SetWeight on clone: %v", err)
	}
	if g.Weight(id) != 1 {
		t.Fatalf("original weight changed to %v after clone edit", g.Weight(id))
	}
	c.AddNode()
	if g.NumNodes() != 3 {
		t.Fatalf("original node count changed to %d after clone edit", g.NumNodes())
	}
}

func TestSelfLoopDoesNotDuplicateAdjacency(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 0, 1)
	if got := g.Degree(0); got != 1 {
		t.Fatalf("Degree(0) with self-loop = %d, want 1", got)
	}
}

func TestEdgesReturnsCopy(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 1)
	es := g.Edges()
	es[0].W = 99
	if g.Weight(0) != 1 {
		t.Fatal("mutating Edges() result affected the graph")
	}
}

// randomConnectedGraph builds a connected random graph for property
// tests: a random spanning tree plus extra random edges.
func randomConnectedGraph(rng *rand.Rand, n, extra int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		g.MustAddEdge(u, v, rng.Float64()*10)
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, rng.Float64()*10)
		}
	}
	return g
}

func TestPropertyTotalWeightMatchesEdgeSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 2+rng.Intn(20), rng.Intn(30))
		var sum float64
		for _, e := range g.Edges() {
			sum += e.W
		}
		return sum == g.TotalWeight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDegreeSumTwiceEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 2+rng.Intn(20), rng.Intn(30))
		sum := 0
		for v := 0; v < g.NumNodes(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMustAddEdgePanics(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddEdge with bad nodes should panic")
		}
	}()
	g.MustAddEdge(0, 9, 1)
}

func TestEdgeBetweenOutOfRange(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 1)
	if _, ok := g.EdgeBetween(-1, 0); ok {
		t.Fatal("negative node accepted")
	}
	if _, ok := g.EdgeBetween(0, 5); ok {
		t.Fatal("out-of-range node accepted")
	}
}

func TestIndexedHeapContains(t *testing.T) {
	h := newIndexedHeap(3)
	if h.Contains(1) {
		t.Fatal("empty heap contains node")
	}
	h.PushOrDecrease(1, 5)
	if !h.Contains(1) {
		t.Fatal("pushed node missing")
	}
	// Pushing a HIGHER priority is a no-op.
	if h.PushOrDecrease(1, 9) {
		t.Fatal("increase reported as change")
	}
	v, p := h.Pop()
	if v != 1 || p != 5 {
		t.Fatalf("Pop = (%d, %v), want (1, 5)", v, p)
	}
	if h.Contains(1) {
		t.Fatal("popped node still contained")
	}
}
