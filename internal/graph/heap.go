package graph

// indexedHeap is a binary min-heap keyed by float64 priorities with
// decrease-key support, specialised for Dijkstra over dense integer
// node IDs. It avoids container/heap's interface indirection on the
// hottest path in the repository (every request admission runs many
// Dijkstra calls).
type indexedHeap struct {
	items []NodeID  // heap order
	prio  []float64 // priority per node ID
	pos   []int     // position of node in items, -1 if absent
}

// newIndexedHeap returns an empty heap able to hold node IDs in [0, n).
func newIndexedHeap(n int) *indexedHeap {
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	return &indexedHeap{
		items: make([]NodeID, 0, n),
		prio:  make([]float64, n),
		pos:   pos,
	}
}

// reset prepares the heap for a fresh run over node IDs in [0, n),
// reusing the existing arenas when they are large enough. Abandoned
// entries from an aborted previous run are cleared.
func (h *indexedHeap) reset(n int) {
	for _, v := range h.items {
		h.pos[v] = -1
	}
	h.items = h.items[:0]
	if len(h.prio) < n {
		h.prio = make([]float64, n)
		h.pos = make([]int, n)
		for i := range h.pos {
			h.pos[i] = -1
		}
	}
}

// Len reports the number of queued nodes.
func (h *indexedHeap) Len() int { return len(h.items) }

// Contains reports whether v is currently queued.
func (h *indexedHeap) Contains(v NodeID) bool { return h.pos[v] >= 0 }

// PushOrDecrease inserts v with priority p, or lowers v's priority to p
// when v is already queued with a higher priority. It reports whether
// the heap changed.
func (h *indexedHeap) PushOrDecrease(v NodeID, p float64) bool {
	if i := h.pos[v]; i >= 0 {
		if p >= h.prio[v] {
			return false
		}
		h.prio[v] = p
		h.up(i)
		return true
	}
	h.prio[v] = p
	h.pos[v] = len(h.items)
	h.items = append(h.items, v)
	h.up(len(h.items) - 1)
	return true
}

// Pop removes and returns the node with the minimum priority.
func (h *indexedHeap) Pop() (NodeID, float64) {
	v := h.items[0]
	p := h.prio[v]
	last := len(h.items) - 1
	h.swap(0, last)
	h.items = h.items[:last]
	h.pos[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v, p
}

func (h *indexedHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i]] = i
	h.pos[h.items[j]] = j
}

func (h *indexedHeap) less(i, j int) bool {
	return h.prio[h.items[i]] < h.prio[h.items[j]]
}

func (h *indexedHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *indexedHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
