package graph

import (
	"errors"
	"fmt"
)

// ErrNotATree is returned when a supplied edge set does not form a tree
// containing the requested root.
var ErrNotATree = errors.New("graph: edge set is not a tree")

// RootedTree is a rooted view over a tree-shaped subset of a host
// graph's edges, supporting parent/depth queries, weighted distances to
// the root, lowest common ancestors (binary lifting), and tree paths.
// Node IDs are those of the host graph; nodes outside the tree are
// reported via InTree.
type RootedTree struct {
	root       NodeID
	host       *Graph
	inTree     []bool
	parentNode []NodeID
	parentEdge []EdgeID
	depth      []int
	distRoot   []float64 // weighted distance to root
	up         [][]NodeID
	order      []NodeID // preorder
}

// NewRootedTree roots the tree formed by edgeIDs (edges of host) at
// root. The edge set must be acyclic and connected and must contain
// root (an isolated root with zero edges is also valid).
func NewRootedTree(host *Graph, edgeIDs []EdgeID, root NodeID) (*RootedTree, error) {
	n := host.NumNodes()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("%w: root %d with n=%d", ErrNodeOutOfRange, root, n)
	}
	adj := make(map[NodeID][]halfEdge)
	nodeSet := map[NodeID]struct{}{root: {}}
	for _, id := range edgeIDs {
		e := host.Edge(id)
		adj[e.U] = append(adj[e.U], halfEdge{to: e.V, id: id})
		adj[e.V] = append(adj[e.V], halfEdge{to: e.U, id: id})
		nodeSet[e.U] = struct{}{}
		nodeSet[e.V] = struct{}{}
	}
	t := &RootedTree{
		root:       root,
		host:       host,
		inTree:     make([]bool, n),
		parentNode: make([]NodeID, n),
		parentEdge: make([]EdgeID, n),
		depth:      make([]int, n),
		distRoot:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		t.parentNode[i] = -1
		t.parentEdge[i] = -1
	}
	// Iterative DFS from the root.
	stack := []NodeID{root}
	t.inTree[root] = true
	visitedEdges := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t.order = append(t.order, v)
		for _, h := range adj[v] {
			if h.id == t.parentEdge[v] {
				continue
			}
			if t.inTree[h.to] {
				return nil, fmt.Errorf("%w: cycle through node %d", ErrNotATree, h.to)
			}
			t.inTree[h.to] = true
			t.parentNode[h.to] = v
			t.parentEdge[h.to] = h.id
			t.depth[h.to] = t.depth[v] + 1
			t.distRoot[h.to] = t.distRoot[v] + host.Weight(h.id)
			visitedEdges++
			stack = append(stack, h.to)
		}
	}
	if visitedEdges != len(edgeIDs) {
		return nil, fmt.Errorf("%w: %d edges unreachable from root %d",
			ErrNotATree, len(edgeIDs)-visitedEdges, root)
	}
	if len(t.order) != len(nodeSet) {
		return nil, fmt.Errorf("%w: disconnected from root %d", ErrNotATree, root)
	}
	t.buildLifting()
	return t, nil
}

func (t *RootedTree) buildLifting() {
	levels := 1
	for 1<<levels < len(t.order)+1 {
		levels++
	}
	t.up = make([][]NodeID, levels)
	n := len(t.parentNode)
	t.up[0] = make([]NodeID, n)
	copy(t.up[0], t.parentNode)
	for k := 1; k < levels; k++ {
		t.up[k] = make([]NodeID, n)
		for v := 0; v < n; v++ {
			mid := t.up[k-1][v]
			if mid == -1 {
				t.up[k][v] = -1
			} else {
				t.up[k][v] = t.up[k-1][mid]
			}
		}
	}
}

// Root returns the root node.
func (t *RootedTree) Root() NodeID { return t.root }

// InTree reports whether v belongs to the tree.
func (t *RootedTree) InTree(v NodeID) bool {
	return v >= 0 && v < len(t.inTree) && t.inTree[v]
}

// Nodes returns the tree's nodes in preorder.
func (t *RootedTree) Nodes() []NodeID {
	out := make([]NodeID, len(t.order))
	copy(out, t.order)
	return out
}

// Parent returns v's parent, or -1 for the root.
func (t *RootedTree) Parent(v NodeID) NodeID { return t.parentNode[v] }

// ParentEdge returns the host edge joining v to its parent, or -1.
func (t *RootedTree) ParentEdge(v NodeID) EdgeID { return t.parentEdge[v] }

// Depth returns v's hop depth below the root.
func (t *RootedTree) Depth(v NodeID) int { return t.depth[v] }

// DistToRoot returns the weighted length of the tree path root→v.
func (t *RootedTree) DistToRoot(v NodeID) float64 { return t.distRoot[v] }

// LCA returns the lowest common ancestor of u and v. Both nodes must be
// in the tree.
func (t *RootedTree) LCA(u, v NodeID) (NodeID, error) {
	if !t.InTree(u) || !t.InTree(v) {
		return 0, fmt.Errorf("%w: LCA(%d,%d) outside tree", ErrNodeOutOfRange, u, v)
	}
	if t.depth[u] < t.depth[v] {
		u, v = v, u
	}
	diff := t.depth[u] - t.depth[v]
	for k := 0; diff > 0; k++ {
		if diff&1 == 1 {
			u = t.up[k][u]
		}
		diff >>= 1
	}
	if u == v {
		return u, nil
	}
	for k := len(t.up) - 1; k >= 0; k-- {
		if t.up[k][u] != t.up[k][v] {
			u = t.up[k][u]
			v = t.up[k][v]
		}
	}
	return t.parentNode[u], nil
}

// LCAAll folds LCA over a node list: LCA(x1, x2, ..., xm) as defined in
// the paper's Algorithm 2, step 10. The list must be non-empty.
func (t *RootedTree) LCAAll(nodes ...NodeID) (NodeID, error) {
	if len(nodes) == 0 {
		return 0, errors.New("graph: LCAAll of empty node list")
	}
	acc := nodes[0]
	if !t.InTree(acc) {
		return 0, fmt.Errorf("%w: LCAAll node %d outside tree", ErrNodeOutOfRange, acc)
	}
	for _, v := range nodes[1:] {
		a, err := t.LCA(acc, v)
		if err != nil {
			return 0, err
		}
		acc = a
	}
	return acc, nil
}

// PathBetween returns the unique tree path u→v as node and edge
// sequences (nodes includes both endpoints).
func (t *RootedTree) PathBetween(u, v NodeID) (nodes []NodeID, edges []EdgeID, err error) {
	a, err := t.LCA(u, v)
	if err != nil {
		return nil, nil, err
	}
	// u up to LCA.
	for at := u; at != a; at = t.parentNode[at] {
		nodes = append(nodes, at)
		edges = append(edges, t.parentEdge[at])
	}
	nodes = append(nodes, a)
	// LCA down to v: collect then reverse.
	var down []NodeID
	var downE []EdgeID
	for at := v; at != a; at = t.parentNode[at] {
		down = append(down, at)
		downE = append(downE, t.parentEdge[at])
	}
	for i := len(down) - 1; i >= 0; i-- {
		nodes = append(nodes, down[i])
		edges = append(edges, downE[i])
	}
	return nodes, edges, nil
}

// PathWeight returns the weighted length of the unique tree path u→v.
func (t *RootedTree) PathWeight(u, v NodeID) (float64, error) {
	a, err := t.LCA(u, v)
	if err != nil {
		return 0, err
	}
	return t.distRoot[u] + t.distRoot[v] - 2*t.distRoot[a], nil
}

// SubtreeNodes returns all nodes in the subtree rooted at v (including
// v itself), in preorder.
func (t *RootedTree) SubtreeNodes(v NodeID) []NodeID {
	if !t.InTree(v) {
		return nil
	}
	// children lists are not stored; derive via parent pointers over
	// the preorder, which visits every descendant after v... preorder
	// from a stack DFS does not guarantee contiguity, so walk parents.
	var out []NodeID
	for _, u := range t.order {
		if t.isAncestor(v, u) {
			out = append(out, u)
		}
	}
	return out
}

// isAncestor reports whether a is an ancestor of v (or equal to it).
func (t *RootedTree) isAncestor(a, v NodeID) bool {
	if t.depth[v] < t.depth[a] {
		return false
	}
	diff := t.depth[v] - t.depth[a]
	for k := 0; diff > 0; k++ {
		if diff&1 == 1 {
			v = t.up[k][v]
		}
		diff >>= 1
	}
	return v == a
}
