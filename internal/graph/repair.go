package graph

import "fmt"

// Dynamic shortest-path repair (Ramalingam–Reps style). When a few
// edge weights of a graph change, a shortest-path tree computed before
// the change is mostly still correct: only the subtrees hanging below
// changed tree edges can have stale labels, plus any node a decreased
// edge now offers a shorter path to. RepairInto exploits that: it
// invalidates exactly the subtrees below changed tree edges, re-seeds
// the frontier from the valid boundary, and runs the standard Dijkstra
// loop over the (usually tiny) damaged region — falling back to a full
// DijkstraInto when the damage exceeds the caller's bound, where a
// fresh run is cheaper than a repair.
//
// Result identity: a valid node keeps its label, which is the hop-wise
// float sum along a tree path whose weights did not change — exactly
// the sum a fresh Dijkstra would re-accumulate. Re-labelled nodes get
// dist(parent) + w, again the fresh run's arithmetic. So whenever the
// new graph has unique shortest paths (the continuous random weights
// of this repository's work graphs make ties measure-zero), the
// repaired tree is bit-identical to a fresh DijkstraInto — distances,
// parents and depths. Under exact ties the distances still match
// bit-for-bit but the parent choice may differ; callers that need
// byte-identical trees under ties must rebuild.

// repairScratch owns the transient state of RepairInto: child lists of
// the old tree (array-linked), the invalidation stamp set and the
// damage worklist. It lives inside DijkstraWorkspace so repair reuses
// the same arena lifecycle as DijkstraInto.
type repairScratch struct {
	childHead []int32 // per node: first child in the old tree, -1 none
	childNext []int32 // per node: next sibling
	gen       uint32
	invGen    []uint32 // per node: generation last invalidated
	invalid   []NodeID // invalidated nodes, in discovery order
}

func (s *repairScratch) ensure(n int) {
	if cap(s.childHead) < n {
		s.childHead = make([]int32, n)
		s.childNext = make([]int32, n)
		s.invGen = make([]uint32, n)
	} else {
		s.childHead = s.childHead[:n]
		s.childNext = s.childNext[:n]
		s.invGen = s.invGen[:n]
	}
}

func (s *repairScratch) nextGen() uint32 {
	s.gen++
	if s.gen == 0 {
		for i := range s.invGen {
			s.invGen[i] = 0
		}
		s.gen = 1
	}
	return s.gen
}

// RepairInto recomputes single-source shortest paths on g into sp,
// starting from old — a tree previously computed on the same graph
// structure whose weights have since changed on exactly the edges
// listed in changed (increases and decreases both; listing an
// unchanged edge is harmless, omitting a changed one is a correctness
// bug). maxDamage bounds the repair: when more than that many nodes
// need re-labelling, RepairInto abandons the repair and runs a full
// DijkstraInto, reporting repaired=false. sp must not alias old; old
// is never written.
func (ws *DijkstraWorkspace) RepairInto(
	g *Graph, old *ShortestPaths, changed []EdgeID, maxDamage int, sp *ShortestPaths,
) (repaired bool, err error) {
	n := g.NumNodes()
	if old == nil || len(old.Dist) != n {
		return false, ws.DijkstraInto(g, pickSource(old), sp)
	}
	src := old.Source
	if src < 0 || src >= n {
		return false, fmt.Errorf("%w: source %d with n=%d", ErrNodeOutOfRange, src, n)
	}
	for _, e := range changed {
		if e < 0 || e >= g.NumEdges() {
			return false, fmt.Errorf("graph: repair: edge %d out of range (m=%d)", e, g.NumEdges())
		}
	}

	// Start from the old tree verbatim.
	sp.Source = src
	sp.Dist = growFloats(sp.Dist, n)
	sp.parentNode = growInts(sp.parentNode, n)
	sp.parentEdge = growInts(sp.parentEdge, n)
	sp.depth = growInt32s(sp.depth, n)
	copy(sp.Dist, old.Dist)
	copy(sp.parentNode, old.parentNode)
	copy(sp.parentEdge, old.parentEdge)
	copy(sp.depth, old.depth)

	// Child lists of the old tree, array-linked.
	rs := &ws.repair
	rs.ensure(n)
	for v := 0; v < n; v++ {
		rs.childHead[v] = -1
	}
	for v := 0; v < n; v++ {
		if p := old.parentNode[v]; p >= 0 {
			rs.childNext[v] = rs.childHead[p]
			rs.childHead[p] = int32(v)
		}
	}

	// Invalidate the subtrees hanging below changed tree edges. A tree
	// edge is the parentEdge of exactly one endpoint — that endpoint
	// roots an invalid subtree.
	gen := rs.nextGen()
	rs.invalid = rs.invalid[:0]
	mark := func(v NodeID) bool {
		if rs.invGen[v] == gen {
			return true
		}
		rs.invGen[v] = gen
		rs.invalid = append(rs.invalid, v)
		return len(rs.invalid) <= maxDamage
	}
	for _, e := range changed {
		ed := g.Edge(e)
		for _, v := range [2]NodeID{ed.U, ed.V} {
			if old.parentEdge[v] != e || rs.invGen[v] == gen {
				continue
			}
			if !mark(v) {
				return false, ws.DijkstraInto(g, src, sp)
			}
		}
	}
	for i := 0; i < len(rs.invalid); i++ { // worklist DFS over old-tree children
		for c := rs.childHead[rs.invalid[i]]; c != -1; c = rs.childNext[c] {
			if !mark(NodeID(c)) {
				return false, ws.DijkstraInto(g, src, sp)
			}
		}
	}
	if len(rs.invalid) == 0 && len(changed) == 0 {
		return true, nil
	}
	for _, v := range rs.invalid {
		sp.Dist[v] = Infinity
		sp.parentNode[v] = -1
		sp.parentEdge[v] = -1
		sp.depth[v] = -1
	}

	// Seed the frontier: valid-boundary relaxations into the invalid
	// region, plus the changed edges themselves between valid
	// endpoints (a decrease may open a shorter path to a valid node;
	// an increase on a non-tree edge never changes a valid label).
	h := &ws.heap
	h.reset(n)
	relax := func(from, to NodeID, id EdgeID, w float64) {
		if nd := sp.Dist[from] + w; nd < sp.Dist[to] {
			sp.Dist[to] = nd
			sp.parentNode[to] = from
			sp.parentEdge[to] = id
			sp.depth[to] = sp.depth[from] + 1
			h.PushOrDecrease(to, nd)
		}
	}
	for _, x := range rs.invalid {
		g.VisitNeighbors(x, func(to NodeID, id EdgeID, w float64) bool {
			if rs.invGen[to] != gen {
				relax(to, x, id, w)
			}
			return true
		})
	}
	for _, e := range changed {
		ed := g.Edge(e)
		if rs.invGen[ed.U] == gen || rs.invGen[ed.V] == gen {
			continue // covered by the boundary scan / main loop
		}
		relax(ed.U, ed.V, e, ed.W)
		relax(ed.V, ed.U, e, ed.W)
	}

	// Standard Dijkstra over the seeded frontier. Labels of valid
	// nodes are achievable upper bounds, so the loop only ever lowers
	// them along real paths; re-insertion after a pop (the indexed
	// heap permits it) handles the rare cascade where a valid label
	// improves after a dependent node was already popped.
	for h.Len() > 0 {
		u, du := h.Pop()
		if du > sp.Dist[u] {
			continue
		}
		g.VisitNeighbors(u, func(to NodeID, id EdgeID, w float64) bool {
			relax(u, to, id, w)
			return true
		})
	}
	return true, nil
}

// pickSource tolerates a nil old tree in the fallback path.
func pickSource(old *ShortestPaths) NodeID {
	if old == nil {
		return -1
	}
	return old.Source
}
