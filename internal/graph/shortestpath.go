package graph

import "fmt"

// ShortestPaths holds the result of a single-source shortest-path
// computation: per-node distances, the predecessor arcs of a
// shortest-path tree rooted at Source, and per-node tree depths (hop
// counts) so path extraction can preallocate exactly.
type ShortestPaths struct {
	Source     NodeID
	Dist       []float64 // Dist[v] == Infinity when v is unreachable
	parentNode []NodeID  // -1 at the source and at unreachable nodes
	parentEdge []EdgeID  // -1 likewise
	depth      []int32   // hops from the source; -1 at unreachable nodes
}

// Dijkstra computes single-source shortest paths from src over the
// current edge weights. All weights must be non-negative (enforced at
// insertion time).
func Dijkstra(g *Graph, src NodeID) (*ShortestPaths, error) {
	var ws DijkstraWorkspace
	sp := new(ShortestPaths)
	if err := ws.DijkstraInto(g, src, sp); err != nil {
		return nil, err
	}
	return sp, nil
}

// DijkstraWorkspace owns the transient state of a Dijkstra run (the
// indexed heap arena) so repeated searches reuse one allocation set.
// The zero value is ready to use. A workspace is not safe for
// concurrent use; give each goroutine its own.
type DijkstraWorkspace struct {
	heap   indexedHeap
	repair repairScratch // RepairInto's child lists and stamp sets
}

// DijkstraInto computes single-source shortest paths from src into sp,
// reusing both sp's result arrays and the workspace's heap arena.
// The filled sp is independent of the workspace afterwards: back-to-back
// DijkstraInto calls on different roots (into different sp targets)
// produce results identical to fresh Dijkstra calls.
func (ws *DijkstraWorkspace) DijkstraInto(g *Graph, src NodeID, sp *ShortestPaths) error {
	if src < 0 || src >= g.NumNodes() {
		return fmt.Errorf("%w: source %d with n=%d", ErrNodeOutOfRange, src, g.NumNodes())
	}
	n := g.NumNodes()
	sp.Source = src
	sp.Dist = growFloats(sp.Dist, n)
	sp.parentNode = growInts(sp.parentNode, n)
	sp.parentEdge = growInts(sp.parentEdge, n)
	sp.depth = growInt32s(sp.depth, n)
	for i := 0; i < n; i++ {
		sp.Dist[i] = Infinity
		sp.parentNode[i] = -1
		sp.parentEdge[i] = -1
		sp.depth[i] = -1
	}
	sp.Dist[src] = 0
	sp.depth[src] = 0
	h := &ws.heap
	h.reset(n)
	h.PushOrDecrease(src, 0)
	for h.Len() > 0 {
		u, du := h.Pop()
		if du > sp.Dist[u] {
			continue
		}
		g.VisitNeighbors(u, func(to NodeID, id EdgeID, w float64) bool {
			if nd := du + w; nd < sp.Dist[to] {
				sp.Dist[to] = nd
				sp.parentNode[to] = u
				sp.parentEdge[to] = id
				sp.depth[to] = sp.depth[u] + 1
				h.PushOrDecrease(to, nd)
			}
			return true
		})
	}
	return nil
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// Reachable reports whether v was reached from the source.
func (sp *ShortestPaths) Reachable(v NodeID) bool { return sp.Dist[v] < Infinity }

// Parent returns the predecessor node of v in the shortest-path tree,
// or -1 for the source and unreachable nodes.
func (sp *ShortestPaths) Parent(v NodeID) NodeID { return sp.parentNode[v] }

// Depth returns the hop count of the tree path source→v, or -1 when v
// is unreachable.
func (sp *ShortestPaths) Depth(v NodeID) int { return int(sp.depth[v]) }

// PathTo returns the node sequence of a shortest path from the source
// to v (inclusive of both endpoints) together with the edge IDs used,
// or ok=false when v is unreachable. len(edges) == len(nodes)-1. The
// tracked depth sizes both slices exactly — no append growth.
func (sp *ShortestPaths) PathTo(v NodeID) (nodes []NodeID, edges []EdgeID, ok bool) {
	if v < 0 || v >= len(sp.Dist) || !sp.Reachable(v) {
		return nil, nil, false
	}
	d := int(sp.depth[v])
	nodes = make([]NodeID, d+1)
	edges = make([]EdgeID, d)
	at := v
	for i := d; i > 0; i-- {
		nodes[i] = at
		edges[i-1] = sp.parentEdge[at]
		at = sp.parentNode[at]
	}
	nodes[0] = at
	return nodes, edges, true
}

// VisitPathEdges calls fn with every edge on the shortest path
// source→v, walking from v back to the source, and reports whether v
// is reachable. If fn returns false, the walk stops early. It performs
// no allocation — the union-building steps of Steiner construction use
// it where only the edge set matters.
func (sp *ShortestPaths) VisitPathEdges(v NodeID, fn func(EdgeID) bool) bool {
	if v < 0 || v >= len(sp.Dist) || !sp.Reachable(v) {
		return false
	}
	for at := v; sp.parentEdge[at] != -1; at = sp.parentNode[at] {
		if !fn(sp.parentEdge[at]) {
			return true
		}
	}
	return true
}

// BellmanFord computes single-source shortest-path distances by edge
// relaxation. It is O(n·m) and exists as an independent oracle for
// property-testing Dijkstra; production code should use Dijkstra.
func BellmanFord(g *Graph, src NodeID) ([]float64, error) {
	if src < 0 || src >= g.NumNodes() {
		return nil, fmt.Errorf("%w: source %d with n=%d", ErrNodeOutOfRange, src, g.NumNodes())
	}
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[src] = 0
	for iter := 0; iter < n-1; iter++ {
		changed := false
		for id := 0; id < g.NumEdges(); id++ {
			e := g.Edge(id)
			if dist[e.U] < Infinity && dist[e.U]+e.W < dist[e.V] {
				dist[e.V] = dist[e.U] + e.W
				changed = true
			}
			if dist[e.V] < Infinity && dist[e.V]+e.W < dist[e.U] {
				dist[e.U] = dist[e.V] + e.W
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist, nil
}
