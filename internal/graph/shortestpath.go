package graph

import "fmt"

// ShortestPaths holds the result of a single-source shortest-path
// computation: per-node distances and the predecessor arcs of a
// shortest-path tree rooted at Source.
type ShortestPaths struct {
	Source     NodeID
	Dist       []float64 // Dist[v] == Infinity when v is unreachable
	parentNode []NodeID  // -1 at the source and at unreachable nodes
	parentEdge []EdgeID  // -1 likewise
}

// Dijkstra computes single-source shortest paths from src over the
// current edge weights. All weights must be non-negative (enforced at
// insertion time).
func Dijkstra(g *Graph, src NodeID) (*ShortestPaths, error) {
	if src < 0 || src >= g.NumNodes() {
		return nil, fmt.Errorf("%w: source %d with n=%d", ErrNodeOutOfRange, src, g.NumNodes())
	}
	n := g.NumNodes()
	sp := &ShortestPaths{
		Source:     src,
		Dist:       make([]float64, n),
		parentNode: make([]NodeID, n),
		parentEdge: make([]EdgeID, n),
	}
	for i := 0; i < n; i++ {
		sp.Dist[i] = Infinity
		sp.parentNode[i] = -1
		sp.parentEdge[i] = -1
	}
	sp.Dist[src] = 0
	h := newIndexedHeap(n)
	h.PushOrDecrease(src, 0)
	for h.Len() > 0 {
		u, du := h.Pop()
		if du > sp.Dist[u] {
			continue
		}
		g.VisitNeighbors(u, func(to NodeID, id EdgeID, w float64) bool {
			if nd := du + w; nd < sp.Dist[to] {
				sp.Dist[to] = nd
				sp.parentNode[to] = u
				sp.parentEdge[to] = id
				h.PushOrDecrease(to, nd)
			}
			return true
		})
	}
	return sp, nil
}

// Reachable reports whether v was reached from the source.
func (sp *ShortestPaths) Reachable(v NodeID) bool { return sp.Dist[v] < Infinity }

// Parent returns the predecessor node of v in the shortest-path tree,
// or -1 for the source and unreachable nodes.
func (sp *ShortestPaths) Parent(v NodeID) NodeID { return sp.parentNode[v] }

// PathTo returns the node sequence of a shortest path from the source
// to v (inclusive of both endpoints) together with the edge IDs used,
// or ok=false when v is unreachable. len(edges) == len(nodes)-1.
func (sp *ShortestPaths) PathTo(v NodeID) (nodes []NodeID, edges []EdgeID, ok bool) {
	if v < 0 || v >= len(sp.Dist) || !sp.Reachable(v) {
		return nil, nil, false
	}
	for at := v; at != -1; at = sp.parentNode[at] {
		nodes = append(nodes, at)
		if e := sp.parentEdge[at]; e != -1 {
			edges = append(edges, e)
		}
	}
	reverseNodes(nodes)
	reverseEdges(edges)
	return nodes, edges, true
}

func reverseNodes(s []NodeID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func reverseEdges(s []EdgeID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// BellmanFord computes single-source shortest-path distances by edge
// relaxation. It is O(n·m) and exists as an independent oracle for
// property-testing Dijkstra; production code should use Dijkstra.
func BellmanFord(g *Graph, src NodeID) ([]float64, error) {
	if src < 0 || src >= g.NumNodes() {
		return nil, fmt.Errorf("%w: source %d with n=%d", ErrNodeOutOfRange, src, g.NumNodes())
	}
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[src] = 0
	for iter := 0; iter < n-1; iter++ {
		changed := false
		for id := 0; id < g.NumEdges(); id++ {
			e := g.Edge(id)
			if dist[e.U] < Infinity && dist[e.U]+e.W < dist[e.V] {
				dist[e.V] = dist[e.U] + e.W
				changed = true
			}
			if dist[e.V] < Infinity && dist[e.V]+e.W < dist[e.U] {
				dist[e.U] = dist[e.V] + e.W
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist, nil
}
