package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMSTSquareWithDiagonal(t *testing.T) {
	// Square 0-1-2-3 with unit sides and a heavy diagonal.
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 0, 4)
	g.MustAddEdge(0, 2, 5)
	for name, f := range map[string]func(*Graph) (*MST, error){
		"kruskal": KruskalMST,
		"prim":    PrimMST,
	} {
		mst, err := f(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if mst.Weight != 3 {
			t.Fatalf("%s weight = %v, want 3", name, mst.Weight)
		}
		if len(mst.EdgeIDs) != 3 {
			t.Fatalf("%s edges = %d, want 3", name, len(mst.EdgeIDs))
		}
	}
}

func TestMSTDisconnected(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	if _, err := KruskalMST(g); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("Kruskal on disconnected = %v, want ErrDisconnected", err)
	}
	if _, err := PrimMST(g); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("Prim on disconnected = %v, want ErrDisconnected", err)
	}
}

func TestMSTEmptyAndSingle(t *testing.T) {
	for _, n := range []int{0, 1} {
		g := New(n)
		mst, err := PrimMST(g)
		if err != nil {
			t.Fatalf("Prim(n=%d): %v", n, err)
		}
		if mst.Weight != 0 || len(mst.EdgeIDs) != 0 {
			t.Fatalf("Prim(n=%d) = %+v, want empty", n, mst)
		}
	}
}

func TestMSTParallelEdgesUsesCheapest(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 5)
	cheap := g.MustAddEdge(0, 1, 1)
	mst, err := KruskalMST(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(mst.EdgeIDs) != 1 || mst.EdgeIDs[0] != cheap {
		t.Fatalf("MST edges = %v, want [%d]", mst.EdgeIDs, cheap)
	}
}

func TestPropertyPrimEqualsKruskal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 2+rng.Intn(30), rng.Intn(60))
		k, kerr := KruskalMST(g)
		p, perr := PrimMST(g)
		if kerr != nil || perr != nil {
			return false
		}
		return math.Abs(k.Weight-p.Weight) < 1e-9 &&
			len(k.EdgeIDs) == g.NumNodes()-1 &&
			len(p.EdgeIDs) == g.NumNodes()-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMSTIsSpanningAcyclic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 2+rng.Intn(30), rng.Intn(60))
		mst, err := PrimMST(g)
		if err != nil {
			return false
		}
		dsu := NewDisjointSet(g.NumNodes())
		for _, id := range mst.EdgeIDs {
			e := g.Edge(id)
			if !dsu.Union(e.U, e.V) {
				return false // cycle
			}
		}
		return dsu.Count() == 1 // spanning
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDisjointSetBasics(t *testing.T) {
	d := NewDisjointSet(5)
	if d.Count() != 5 {
		t.Fatalf("Count = %d, want 5", d.Count())
	}
	if !d.Union(0, 1) {
		t.Fatal("first Union(0,1) should merge")
	}
	if d.Union(0, 1) {
		t.Fatal("second Union(0,1) should be a no-op")
	}
	if !d.Connected(0, 1) {
		t.Fatal("0 and 1 should be connected")
	}
	if d.Connected(0, 2) {
		t.Fatal("0 and 2 should not be connected")
	}
	d.Union(2, 3)
	d.Union(1, 3)
	if !d.Connected(0, 2) {
		t.Fatal("0 and 2 should be connected after transitive unions")
	}
	if d.Count() != 2 {
		t.Fatalf("Count = %d, want 2", d.Count())
	}
}

func TestPropertyDSUTransitivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		d := NewDisjointSet(n)
		// Apply random unions, then check against a naive labeling.
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i
		}
		relabel := func(from, to int) {
			for i := range labels {
				if labels[i] == from {
					labels[i] = to
				}
			}
		}
		for i := 0; i < n; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			d.Union(a, b)
			relabel(labels[a], labels[b])
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if d.Connected(a, b) != (labels[a] == labels[b]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
