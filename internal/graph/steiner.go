package graph

import (
	"fmt"
	"sort"
)

// SteinerTree is an approximate minimum Steiner tree over a host
// graph: a set of host edge IDs forming a tree that spans Terminals.
type SteinerTree struct {
	Terminals []NodeID
	EdgeIDs   []EdgeID
	Weight    float64
}

// Nodes returns the sorted-unique node set touched by the tree.
// A single-terminal tree returns just that terminal.
func (t *SteinerTree) Nodes(g *Graph) []NodeID {
	seen := make(map[NodeID]struct{}, 2*len(t.EdgeIDs)+len(t.Terminals))
	var out []NodeID
	add := func(v NodeID) {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	for _, term := range t.Terminals {
		add(term)
	}
	for _, id := range t.EdgeIDs {
		e := g.Edge(id)
		add(e.U)
		add(e.V)
	}
	return out
}

// SteinerScratch owns every transient structure of a KMB run — the
// Dijkstra workspace and per-terminal trees of step (1), the metric
// closure and MST arenas of steps (2) and (4), and the slice-backed
// union/pruning scratch of steps (3)–(5) — so repeated Steiner
// evaluations (one per candidate server on the planner hot path) reuse
// one allocation set instead of rebuilding maps per call.
//
// The zero value is ready to use. A scratch is not safe for concurrent
// use: give each worker goroutine its own (see core's plan arenas).
// Results are bit-identical to scratch-free runs — the scratch only
// changes where intermediate state lives, never what is computed.
type SteinerScratch struct {
	ws  DijkstraWorkspace
	sps []*ShortestPaths // step-1 trees when the caller supplies none

	terms    []NodeID // deduped terminal scratch (copied into the result)
	dedupSPs []*ShortestPaths
	nodeGen  []uint32 // node stamp: terminal dedup, then step-4 compact IDs
	nodeOf   []int32  // host node -> compact subgraph ID, valid when stamped
	gen      uint32

	closure    Graph // step-2 metric closure over the terminals
	mst        MSTWorkspace
	closureMST MST

	edgeGen []uint32 // step-3 union dedup stamp, indexed by host edge
	union   []EdgeID

	revNode []NodeID // step-4 compact subgraph over the union
	sub     Graph
	hostOf  []EdgeID
	subMST  MST

	isTerm   []bool   // step-5 pruning, indexed by compact node ID
	deg      []int32  // likewise
	incident [][]int32 // compact node -> incident sub-edge IDs
	alive    []bool   // indexed by sub-edge ID
	queue    []int32  // compact node IDs pending prune
}

// ensure sizes the stamp arrays for a host graph with n nodes and m
// edges. Fresh arrays are zero-stamped, which never matches a live
// generation (gen starts at 1).
func (s *SteinerScratch) ensure(n, m int) {
	if cap(s.nodeGen) < n {
		s.nodeGen = make([]uint32, n)
		s.nodeOf = make([]int32, n)
	} else {
		s.nodeGen = s.nodeGen[:n]
		s.nodeOf = s.nodeOf[:n]
	}
	if cap(s.edgeGen) < m {
		s.edgeGen = make([]uint32, m)
	} else {
		s.edgeGen = s.edgeGen[:m]
	}
}

// nextGen advances the scratch generation, invalidating every node and
// edge stamp in O(1). On the (astronomically rare) uint32 wrap the
// stamp arrays are cleared so stale stamps cannot alias a live
// generation.
func (s *SteinerScratch) nextGen() uint32 {
	s.gen++
	if s.gen == 0 {
		for i := range s.nodeGen {
			s.nodeGen[i] = 0
		}
		for i := range s.edgeGen {
			s.edgeGen[i] = 0
		}
		s.gen = 1
	}
	return s.gen
}

// SteinerKMB computes a Steiner tree spanning terminals using the
// Kou–Markowsky–Berman algorithm (Acta Informatica 15, 1981), whose
// output costs at most 2·(1 − 1/ℓ) times the optimum for ℓ terminals.
// This is the approximation the paper invokes for both Appro_Multi and
// Online_CP.
//
// Steps: (1) metric closure over the terminals via one Dijkstra per
// terminal, (2) MST of the closure, (3) expand closure edges to host
// shortest paths, (4) MST of the expansion, (5) prune non-terminal
// leaves. Returns ErrDisconnected when some terminal pair is not
// connected in g.
func SteinerKMB(g *Graph, terminals []NodeID) (*SteinerTree, error) {
	return SteinerKMBScratch(g, terminals, new(SteinerScratch))
}

// SteinerKMBScratch is SteinerKMB with caller-owned scratch, for hot
// paths that run many KMB instances back to back.
func SteinerKMBScratch(g *Graph, terminals []NodeID, scratch *SteinerScratch) (*SteinerTree, error) {
	return steinerKMB(g, terminals, nil, scratch)
}

// SteinerKMBWithSPs is SteinerKMB with step (1) supplied by the caller:
// sps[i] must be the shortest-path tree of g rooted at terminals[i]
// (sps is parallel to terminals; duplicate terminals are deduplicated
// in lockstep). Callers that evaluate many terminal sets sharing most
// roots — the online planner tries every candidate server against the
// same {source} ∪ destinations — compute each root's Dijkstra once and
// reuse it across all calls, cutting the per-call Dijkstra count to
// zero. The result is identical to SteinerKMB on the same terminals.
func SteinerKMBWithSPs(
	g *Graph, terminals []NodeID, sps []*ShortestPaths, scratch *SteinerScratch,
) (*SteinerTree, error) {
	if len(sps) != len(terminals) {
		return nil, fmt.Errorf("graph: %d terminals with %d shortest-path trees",
			len(terminals), len(sps))
	}
	if scratch == nil {
		scratch = new(SteinerScratch)
	}
	return steinerKMB(g, terminals, sps, scratch)
}

// steinerKMB is the shared KMB pipeline. sps, when non-nil, supplies
// the per-terminal shortest-path trees (parallel to terminals);
// otherwise they are computed into the scratch.
func steinerKMB(g *Graph, terminals []NodeID, sps []*ShortestPaths, s *SteinerScratch) (*SteinerTree, error) {
	n, m := g.NumNodes(), g.NumEdges()
	for _, t := range terminals {
		if t < 0 || t >= n {
			return nil, fmt.Errorf("%w: terminal %d with n=%d", ErrNodeOutOfRange, t, n)
		}
	}
	s.ensure(n, m)
	gen := s.nextGen()

	// Dedup terminals preserving first-occurrence order, carrying the
	// supplied shortest-path trees along in lockstep.
	s.terms = s.terms[:0]
	s.dedupSPs = s.dedupSPs[:0]
	for i, v := range terminals {
		if s.nodeGen[v] == gen {
			continue
		}
		s.nodeGen[v] = gen
		s.terms = append(s.terms, v)
		if sps != nil {
			sp := sps[i]
			if sp == nil || sp.Source != v {
				return nil, fmt.Errorf("graph: shortest-path tree %d is not rooted at terminal %d", i, v)
			}
			s.dedupSPs = append(s.dedupSPs, sp)
		}
	}
	terms := s.terms
	out := &SteinerTree{Terminals: append([]NodeID(nil), terms...)}
	if len(terms) <= 1 {
		return out, nil
	}

	// (1) Shortest paths from every terminal (unless supplied).
	var termSPs []*ShortestPaths
	if sps != nil {
		termSPs = s.dedupSPs
	} else {
		for len(s.sps) < len(terms) {
			s.sps = append(s.sps, new(ShortestPaths))
		}
		for i, t := range terms {
			if err := s.ws.DijkstraInto(g, t, s.sps[i]); err != nil {
				return nil, err
			}
		}
		termSPs = s.sps[:len(terms)]
	}

	// (2) MST of the metric closure (complete graph over terminals).
	s.closure.Reset(len(terms))
	for i := 0; i < len(terms); i++ {
		for j := i + 1; j < len(terms); j++ {
			d := termSPs[i].Dist[terms[j]]
			if d >= Infinity {
				return nil, fmt.Errorf("graph: terminals %d and %d: %w", terms[i], terms[j], ErrDisconnected)
			}
			s.closure.MustAddEdge(i, j, d)
		}
	}
	if err := s.mst.Prim(&s.closure, &s.closureMST); err != nil {
		return nil, err
	}

	// (3) Expand each closure MST edge into its host shortest path,
	// collecting the union of host edges (stamp-deduplicated).
	s.union = s.union[:0]
	for _, cid := range s.closureMST.EdgeIDs {
		ce := s.closure.Edge(cid)
		ok := termSPs[ce.U].VisitPathEdges(terms[ce.V], func(he EdgeID) bool {
			if s.edgeGen[he] != gen {
				s.edgeGen[he] = gen
				s.union = append(s.union, he)
			}
			return true
		})
		if !ok {
			return nil, ErrDisconnected
		}
	}

	// (4) MST of the expansion subgraph. Build a compact subgraph over
	// the touched nodes to keep Prim linear in the subgraph size.
	// Iterate the union in sorted order so equal-weight MST
	// tie-breaking is deterministic. A fresh generation invalidates the
	// terminal-dedup node stamps so the array can be reused for the
	// compact-ID assignment.
	sort.Ints(s.union)
	gen = s.nextGen()
	s.revNode = s.revNode[:0]
	s.hostOf = s.hostOf[:0]
	localID := func(v NodeID) int32 {
		if s.nodeGen[v] == gen {
			return s.nodeOf[v]
		}
		id := int32(len(s.revNode))
		s.nodeGen[v] = gen
		s.nodeOf[v] = id
		s.revNode = append(s.revNode, v)
		return id
	}
	// First pass assigns compact IDs in edge order (matching the lazy
	// AddNode order of the map-based construction), then the subgraph
	// is built in one shot over the final node count.
	for _, he := range s.union {
		e := g.Edge(he)
		localID(e.U)
		localID(e.V)
	}
	s.sub.Reset(len(s.revNode))
	for _, he := range s.union {
		e := g.Edge(he)
		s.sub.MustAddEdge(int(s.nodeOf[e.U]), int(s.nodeOf[e.V]), e.W)
		s.hostOf = append(s.hostOf, he)
	}
	if err := s.mst.Prim(&s.sub, &s.subMST); err != nil {
		return nil, err
	}

	// (5) Prune non-terminal leaves iteratively, on the compact IDs.
	nl := len(s.revNode)
	if cap(s.isTerm) < nl {
		s.isTerm = make([]bool, nl)
		s.deg = make([]int32, nl)
	}
	isTerm := s.isTerm[:nl]
	deg := s.deg[:nl]
	for i := 0; i < nl; i++ {
		isTerm[i] = false
		deg[i] = 0
	}
	for _, t := range terms {
		isTerm[s.nodeOf[t]] = true
	}
	if cap(s.incident) < nl {
		s.incident = append(s.incident[:cap(s.incident)], make([][]int32, nl-cap(s.incident))...)
	}
	incident := s.incident[:nl]
	for i := 0; i < nl; i++ {
		incident[i] = incident[i][:0]
	}
	if cap(s.alive) < len(s.hostOf) {
		s.alive = make([]bool, len(s.hostOf))
	}
	alive := s.alive[:len(s.hostOf)]
	for i := range alive {
		alive[i] = false
	}
	for _, sid := range s.subMST.EdgeIDs {
		alive[sid] = true
		e := s.sub.Edge(sid)
		deg[e.U]++
		deg[e.V]++
		incident[e.U] = append(incident[e.U], int32(sid))
		incident[e.V] = append(incident[e.V], int32(sid))
	}
	s.queue = s.queue[:0]
	for v := 0; v < nl; v++ {
		if deg[v] == 1 && !isTerm[v] {
			s.queue = append(s.queue, int32(v))
		}
	}
	for len(s.queue) > 0 {
		v := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		for _, sid := range incident[v] {
			if !alive[sid] {
				continue
			}
			alive[sid] = false
			e := s.sub.Edge(int(sid))
			other := int32(e.U)
			if other == v {
				other = int32(e.V)
			}
			deg[v]--
			deg[other]--
			if deg[other] == 1 && !isTerm[other] {
				s.queue = append(s.queue, other)
			}
		}
	}
	// Emit edges in sorted host-ID order so downstream float
	// accumulations (tree weights, costs) are bit-deterministic across
	// runs. hostOf is already host-sorted (built from the sorted union),
	// so ascending sub-edge order is ascending host order.
	for sid, ok := range alive {
		if ok {
			out.EdgeIDs = append(out.EdgeIDs, s.hostOf[sid])
		}
	}
	for _, he := range out.EdgeIDs {
		out.Weight += g.Weight(he)
	}
	return out, nil
}

// dedupNodes returns the input nodes with duplicates removed,
// preserving first-occurrence order.
func dedupNodes(in []NodeID) []NodeID {
	seen := make(map[NodeID]struct{}, len(in))
	out := make([]NodeID, 0, len(in))
	for _, v := range in {
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
