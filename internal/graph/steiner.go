package graph

import (
	"fmt"
	"sort"
)

// SteinerTree is an approximate minimum Steiner tree over a host
// graph: a set of host edge IDs forming a tree that spans Terminals.
type SteinerTree struct {
	Terminals []NodeID
	EdgeIDs   []EdgeID
	Weight    float64
}

// Nodes returns the sorted-unique node set touched by the tree.
// A single-terminal tree returns just that terminal.
func (t *SteinerTree) Nodes(g *Graph) []NodeID {
	seen := make(map[NodeID]struct{}, 2*len(t.EdgeIDs)+len(t.Terminals))
	var out []NodeID
	add := func(v NodeID) {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	for _, term := range t.Terminals {
		add(term)
	}
	for _, id := range t.EdgeIDs {
		e := g.Edge(id)
		add(e.U)
		add(e.V)
	}
	return out
}

// SteinerKMB computes a Steiner tree spanning terminals using the
// Kou–Markowsky–Berman algorithm (Acta Informatica 15, 1981), whose
// output costs at most 2·(1 − 1/ℓ) times the optimum for ℓ terminals.
// This is the approximation the paper invokes for both Appro_Multi and
// Online_CP.
//
// Steps: (1) metric closure over the terminals via one Dijkstra per
// terminal, (2) MST of the closure, (3) expand closure edges to host
// shortest paths, (4) MST of the expansion, (5) prune non-terminal
// leaves. Returns ErrDisconnected when some terminal pair is not
// connected in g.
func SteinerKMB(g *Graph, terminals []NodeID) (*SteinerTree, error) {
	terms := dedupNodes(terminals)
	for _, t := range terms {
		if t < 0 || t >= g.NumNodes() {
			return nil, fmt.Errorf("%w: terminal %d with n=%d", ErrNodeOutOfRange, t, g.NumNodes())
		}
	}
	out := &SteinerTree{Terminals: terms}
	if len(terms) <= 1 {
		return out, nil
	}

	// (1) Shortest paths from every terminal.
	sps := make([]*ShortestPaths, len(terms))
	for i, t := range terms {
		sp, err := Dijkstra(g, t)
		if err != nil {
			return nil, err
		}
		sps[i] = sp
	}

	// (2) MST of the metric closure (complete graph over terminals).
	closure := New(len(terms))
	for i := 0; i < len(terms); i++ {
		for j := i + 1; j < len(terms); j++ {
			d := sps[i].Dist[terms[j]]
			if d >= Infinity {
				return nil, fmt.Errorf("graph: terminals %d and %d: %w", terms[i], terms[j], ErrDisconnected)
			}
			closure.MustAddEdge(i, j, d)
		}
	}
	closureMST, err := PrimMST(closure)
	if err != nil {
		return nil, err
	}

	// (3) Expand each closure MST edge into its host shortest path,
	// collecting the union of host edges.
	inUnion := make(map[EdgeID]struct{})
	for _, cid := range closureMST.EdgeIDs {
		ce := closure.Edge(cid)
		_, hostEdges, ok := sps[ce.U].PathTo(terms[ce.V])
		if !ok {
			return nil, ErrDisconnected
		}
		for _, he := range hostEdges {
			inUnion[he] = struct{}{}
		}
	}

	// (4) MST of the expansion subgraph. Build a compact subgraph over
	// the touched nodes to keep Prim linear in the subgraph size.
	// Iterate the union in sorted order so equal-weight MST
	// tie-breaking is deterministic.
	unionList := make([]EdgeID, 0, len(inUnion))
	for he := range inUnion {
		unionList = append(unionList, he)
	}
	sort.Ints(unionList)
	nodeOf := make(map[NodeID]int)
	var revNode []NodeID
	localID := func(v NodeID) int {
		if id, ok := nodeOf[v]; ok {
			return id
		}
		id := len(revNode)
		nodeOf[v] = id
		revNode = append(revNode, v)
		return id
	}
	sub := New(0)
	hostOf := make([]EdgeID, 0, len(unionList))
	for _, he := range unionList {
		e := g.Edge(he)
		u, v := localID(e.U), localID(e.V)
		for sub.NumNodes() < len(revNode) {
			sub.AddNode()
		}
		sub.MustAddEdge(u, v, e.W)
		hostOf = append(hostOf, he)
	}
	subMST, err := PrimMST(sub)
	if err != nil {
		return nil, err
	}

	// (5) Prune non-terminal leaves iteratively.
	isTerm := make(map[NodeID]struct{}, len(terms))
	for _, t := range terms {
		isTerm[t] = struct{}{}
	}
	deg := make(map[NodeID]int)
	alive := make(map[EdgeID]bool, len(subMST.EdgeIDs))
	incident := make(map[NodeID][]EdgeID)
	for _, sid := range subMST.EdgeIDs {
		he := hostOf[sid]
		alive[he] = true
		e := g.Edge(he)
		deg[e.U]++
		deg[e.V]++
		incident[e.U] = append(incident[e.U], he)
		incident[e.V] = append(incident[e.V], he)
	}
	var queue []NodeID
	for v, d := range deg {
		if d == 1 {
			if _, ok := isTerm[v]; !ok {
				queue = append(queue, v)
			}
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, he := range incident[v] {
			if !alive[he] {
				continue
			}
			alive[he] = false
			e := g.Edge(he)
			other := e.U
			if other == v {
				other = e.V
			}
			deg[v]--
			deg[other]--
			if deg[other] == 1 {
				if _, ok := isTerm[other]; !ok {
					queue = append(queue, other)
				}
			}
		}
	}
	// Emit edges in sorted order so downstream float accumulations
	// (tree weights, costs) are bit-deterministic across runs.
	for he, ok := range alive {
		if ok {
			out.EdgeIDs = append(out.EdgeIDs, he)
		}
	}
	sort.Ints(out.EdgeIDs)
	for _, he := range out.EdgeIDs {
		out.Weight += g.Weight(he)
	}
	return out, nil
}

// dedupNodes returns the input nodes with duplicates removed,
// preserving first-occurrence order.
func dedupNodes(in []NodeID) []NodeID {
	seen := make(map[NodeID]struct{}, len(in))
	out := make([]NodeID, 0, len(in))
	for _, v := range in {
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
