package graph

// BFSOrder returns the nodes reachable from src in breadth-first order.
func BFSOrder(g *Graph, src NodeID) []NodeID {
	if src < 0 || src >= g.NumNodes() {
		return nil
	}
	visited := make([]bool, g.NumNodes())
	visited[src] = true
	queue := []NodeID{src}
	var order []NodeID
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		g.VisitNeighbors(v, func(to NodeID, _ EdgeID, _ float64) bool {
			if !visited[to] {
				visited[to] = true
				queue = append(queue, to)
			}
			return true
		})
	}
	return order
}

// ConnectedComponents labels every node with a component index in
// [0, #components) and returns the labels plus the component count.
func ConnectedComponents(g *Graph) (labels []int, count int) {
	n := g.NumNodes()
	labels = make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	for v := 0; v < n; v++ {
		if labels[v] != -1 {
			continue
		}
		stack := []NodeID{v}
		labels[v] = count
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			g.VisitNeighbors(u, func(to NodeID, _ EdgeID, _ float64) bool {
				if labels[to] == -1 {
					labels[to] = count
					stack = append(stack, to)
				}
				return true
			})
		}
		count++
	}
	return labels, count
}

// IsConnected reports whether g is connected (vacuously true for n<=1).
func IsConnected(g *Graph) bool {
	if g.NumNodes() <= 1 {
		return true
	}
	return len(BFSOrder(g, 0)) == g.NumNodes()
}

// SameComponent reports whether all of the given nodes lie in one
// connected component of g. Vacuously true for fewer than two nodes.
func SameComponent(g *Graph, nodes ...NodeID) bool {
	if len(nodes) < 2 {
		return true
	}
	labels, _ := ConnectedComponents(g)
	want := labels[nodes[0]]
	for _, v := range nodes[1:] {
		if labels[v] != want {
			return false
		}
	}
	return true
}
