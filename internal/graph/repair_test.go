package graph

import (
	"math"
	"math/rand"
	"testing"
)

// The random graphs come from graph_test.go's randomConnectedGraph:
// continuous random weights make shortest-path ties measure-zero,
// matching the re-priced work graphs RepairInto is built for.

func sameShortestPaths(t *testing.T, got, want *ShortestPaths, n int) {
	t.Helper()
	if got.Source != want.Source {
		t.Fatalf("source %d != %d", got.Source, want.Source)
	}
	for v := 0; v < n; v++ {
		if math.Float64bits(got.Dist[v]) != math.Float64bits(want.Dist[v]) {
			t.Fatalf("Dist[%d] = %v, want %v (bit compare)", v, got.Dist[v], want.Dist[v])
		}
		if got.parentNode[v] != want.parentNode[v] {
			t.Fatalf("parent[%d] = %d, want %d", v, got.parentNode[v], want.parentNode[v])
		}
		if got.parentEdge[v] != want.parentEdge[v] {
			t.Fatalf("parentEdge[%d] = %d, want %d", v, got.parentEdge[v], want.parentEdge[v])
		}
		if got.depth[v] != want.depth[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, got.depth[v], want.depth[v])
		}
	}
}

// TestRepairIntoMatchesFresh is the randomized repaired-vs-fresh
// oracle: perturb a few weights, repair the old tree, and demand the
// result be bit-identical to a cold Dijkstra on the new weights.
func TestRepairIntoMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var ws DijkstraWorkspace
	for trial := 0; trial < 300; trial++ {
		n := 8 + rng.Intn(60)
		g := randomConnectedGraph(rng, n, n/2)
		src := rng.Intn(n)

		var old ShortestPaths
		if err := ws.DijkstraInto(g, src, &old); err != nil {
			t.Fatal(err)
		}

		// Perturb 1..6 random edges: mix of increases and decreases.
		k := 1 + rng.Intn(6)
		changed := make([]EdgeID, 0, k)
		for i := 0; i < k; i++ {
			e := rng.Intn(g.NumEdges())
			var w float64
			if rng.Intn(2) == 0 {
				w = g.Weight(e) * (1.5 + rng.Float64())
			} else {
				w = g.Weight(e) * (0.1 + 0.5*rng.Float64())
			}
			if err := g.SetWeight(e, w); err != nil {
				t.Fatal(err)
			}
			changed = append(changed, e)
		}

		var repairedSP, fresh ShortestPaths
		repaired, err := ws.RepairInto(g, &old, changed, n, &repairedSP)
		if err != nil {
			t.Fatal(err)
		}
		if err := ws.DijkstraInto(g, src, &fresh); err != nil {
			t.Fatal(err)
		}
		_ = repaired // both the repaired and fallback paths must agree
		sameShortestPaths(t, &repairedSP, &fresh, n)
	}
}

// TestRepairIntoListingUnchangedEdges verifies that over-reporting the
// change set (listing edges whose weight did not move) is harmless.
func TestRepairIntoListingUnchangedEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ws DijkstraWorkspace
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(30)
		g := randomConnectedGraph(rng, n, n)
		src := rng.Intn(n)
		var old ShortestPaths
		if err := ws.DijkstraInto(g, src, &old); err != nil {
			t.Fatal(err)
		}
		e := rng.Intn(g.NumEdges())
		if err := g.SetWeight(e, g.Weight(e)*3); err != nil {
			t.Fatal(err)
		}
		// Report the changed edge plus a handful of untouched ones.
		changed := []EdgeID{e}
		for i := 0; i < 4; i++ {
			changed = append(changed, rng.Intn(g.NumEdges()))
		}
		var got, want ShortestPaths
		if _, err := ws.RepairInto(g, &old, changed, n, &got); err != nil {
			t.Fatal(err)
		}
		if err := ws.DijkstraInto(g, src, &want); err != nil {
			t.Fatal(err)
		}
		sameShortestPaths(t, &got, &want, n)
	}
}

func TestRepairIntoNoChanges(t *testing.T) {
	g := lineGraph(6)
	var ws DijkstraWorkspace
	var old, got ShortestPaths
	if err := ws.DijkstraInto(g, 0, &old); err != nil {
		t.Fatal(err)
	}
	repaired, err := ws.RepairInto(g, &old, nil, 6, &got)
	if err != nil {
		t.Fatal(err)
	}
	if !repaired {
		t.Fatal("no-op repair reported repaired=false")
	}
	sameShortestPaths(t, &got, &old, 6)
}

func TestRepairIntoDamageFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomConnectedGraph(rng, 40, 30)
	var ws DijkstraWorkspace
	var old ShortestPaths
	if err := ws.DijkstraInto(g, 0, &old); err != nil {
		t.Fatal(err)
	}
	// Make a near-root tree edge much heavier: large damage region.
	var rootEdge EdgeID = -1
	for v := 0; v < 40; v++ {
		if old.parentNode[v] == 0 {
			rootEdge = old.parentEdge[v]
			break
		}
	}
	if rootEdge < 0 {
		t.Fatal("no tree edge at the root")
	}
	if err := g.SetWeight(rootEdge, g.Weight(rootEdge)*100); err != nil {
		t.Fatal(err)
	}
	var got, want ShortestPaths
	repaired, err := ws.RepairInto(g, &old, []EdgeID{rootEdge}, 0, &got)
	if err != nil {
		t.Fatal(err)
	}
	if repaired {
		t.Fatal("maxDamage=0 still reported repaired=true")
	}
	if err := ws.DijkstraInto(g, 0, &want); err != nil {
		t.Fatal(err)
	}
	sameShortestPaths(t, &got, &want, 40)
}

func TestRepairIntoNilOldFallsBack(t *testing.T) {
	g := lineGraph(5)
	var ws DijkstraWorkspace
	var got ShortestPaths
	if _, err := ws.RepairInto(g, nil, nil, 5, &got); err == nil {
		t.Fatal("nil old must error (no source to fall back to)")
	}
	// A stale old (wrong size) falls back to a fresh run on old.Source.
	small := lineGraph(3)
	var old ShortestPaths
	if err := ws.DijkstraInto(small, 0, &old); err != nil {
		t.Fatal(err)
	}
	repaired, err := ws.RepairInto(g, &old, nil, 5, &got)
	if err != nil {
		t.Fatal(err)
	}
	if repaired {
		t.Fatal("size-mismatched old reported repaired=true")
	}
	var want ShortestPaths
	if err := ws.DijkstraInto(g, 0, &want); err != nil {
		t.Fatal(err)
	}
	sameShortestPaths(t, &got, &want, 5)
}

func TestRepairIntoEdgeOutOfRange(t *testing.T) {
	g := lineGraph(4)
	var ws DijkstraWorkspace
	var old, got ShortestPaths
	if err := ws.DijkstraInto(g, 0, &old); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.RepairInto(g, &old, []EdgeID{99}, 4, &got); err == nil {
		t.Fatal("out-of-range changed edge accepted")
	}
}
