package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestDijkstraIntoMatchesFresh runs one workspace across many roots of
// many random graphs and checks each result is identical to a fresh
// Dijkstra — the workspace must leak no state between runs.
func TestDijkstraIntoMatchesFresh(t *testing.T) {
	var ws DijkstraWorkspace
	sp := new(ShortestPaths)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 2+rng.Intn(40), rng.Intn(60))
		// Occasionally isolate a node so unreachable handling is
		// exercised through the reused workspace too.
		if seed%4 == 0 {
			g.AddNode()
		}
		for root := 0; root < g.NumNodes(); root++ {
			if err := ws.DijkstraInto(g, root, sp); err != nil {
				t.Fatalf("seed %d root %d: DijkstraInto: %v", seed, root, err)
			}
			want, err := Dijkstra(g, root)
			if err != nil {
				t.Fatalf("seed %d root %d: Dijkstra: %v", seed, root, err)
			}
			if !reflect.DeepEqual(sp.Dist, want.Dist) {
				t.Fatalf("seed %d root %d: Dist mismatch", seed, root)
			}
			for v := 0; v < g.NumNodes(); v++ {
				gotN, gotE, gotOK := sp.PathTo(v)
				wantN, wantE, wantOK := want.PathTo(v)
				if gotOK != wantOK || !reflect.DeepEqual(gotN, wantN) || !reflect.DeepEqual(gotE, wantE) {
					t.Fatalf("seed %d root %d target %d: PathTo mismatch:\n got %v %v %v\nwant %v %v %v",
						seed, root, v, gotN, gotE, gotOK, wantN, wantE, wantOK)
				}
				if sp.Depth(v) != want.Depth(v) {
					t.Fatalf("seed %d root %d target %d: Depth %d != %d",
						seed, root, v, sp.Depth(v), want.Depth(v))
				}
			}
		}
	}
}

// TestVisitPathEdgesMatchesPathTo checks the allocation-free edge walk
// yields PathTo's edges in reverse (target → source) order.
func TestVisitPathEdgesMatchesPathTo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomConnectedGraph(rng, 30, 40)
	sp, err := Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		var walked []EdgeID
		ok := sp.VisitPathEdges(v, func(e EdgeID) bool {
			walked = append(walked, e)
			return true
		})
		_, edges, wantOK := sp.PathTo(v)
		if ok != wantOK {
			t.Fatalf("target %d: ok %v != %v", v, ok, wantOK)
		}
		for i, j := 0, len(walked)-1; i < j; i, j = i+1, j-1 {
			walked[i], walked[j] = walked[j], walked[i]
		}
		if len(walked) != len(edges) {
			t.Fatalf("target %d: %d edges walked, want %d", v, len(walked), len(edges))
		}
		for i := range walked {
			if walked[i] != edges[i] {
				t.Fatalf("target %d: edge %d: %d != %d", v, i, walked[i], edges[i])
			}
		}
	}
}

// TestSteinerKMBWithSPsMatchesSteinerKMB feeds precomputed per-terminal
// shortest paths (the planner's sharing pattern) through one reused
// scratch and checks every tree is byte-identical to the scratch-free
// SteinerKMB — including with duplicated terminals, whose trees must
// dedup in lockstep.
func TestSteinerKMBWithSPsMatchesSteinerKMB(t *testing.T) {
	scratch := new(SteinerScratch)
	var ws DijkstraWorkspace
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		g := randomConnectedGraph(rng, n, rng.Intn(70))
		// Precompute one tree per node, as the planner shares them.
		sps := make([]*ShortestPaths, n)
		for v := 0; v < n; v++ {
			sps[v] = new(ShortestPaths)
			if err := ws.DijkstraInto(g, v, sps[v]); err != nil {
				t.Fatal(err)
			}
		}
		for trial := 0; trial < 10; trial++ {
			k := 1 + rng.Intn(6)
			terms := make([]NodeID, k)
			termSPs := make([]*ShortestPaths, k)
			for i := range terms {
				terms[i] = rng.Intn(n)
				termSPs[i] = sps[terms[i]]
			}
			if trial%3 == 0 && k > 1 { // force a duplicate
				terms[k-1] = terms[0]
				termSPs[k-1] = termSPs[0]
			}
			got, err := SteinerKMBWithSPs(g, terms, termSPs, scratch)
			if err != nil {
				t.Fatalf("seed %d trial %d: WithSPs: %v", seed, trial, err)
			}
			want, err := SteinerKMB(g, terms)
			if err != nil {
				t.Fatalf("seed %d trial %d: SteinerKMB: %v", seed, trial, err)
			}
			if !reflect.DeepEqual(got.Terminals, want.Terminals) {
				t.Fatalf("seed %d trial %d: terminals %v != %v", seed, trial, got.Terminals, want.Terminals)
			}
			if len(got.EdgeIDs) != len(want.EdgeIDs) || got.Weight != want.Weight {
				t.Fatalf("seed %d trial %d: tree mismatch: %v (w=%v) != %v (w=%v)",
					seed, trial, got.EdgeIDs, got.Weight, want.EdgeIDs, want.Weight)
			}
			for i := range got.EdgeIDs {
				if got.EdgeIDs[i] != want.EdgeIDs[i] {
					t.Fatalf("seed %d trial %d: edge %d: %d != %d",
						seed, trial, i, got.EdgeIDs[i], want.EdgeIDs[i])
				}
			}
		}
	}
}

// TestSteinerKMBWithSPsValidation covers the argument contract: length
// mismatch and wrong-root trees must be rejected.
func TestSteinerKMBWithSPsValidation(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	sp0, _ := Dijkstra(g, 0)
	if _, err := SteinerKMBWithSPs(g, []NodeID{0, 2}, []*ShortestPaths{sp0}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := SteinerKMBWithSPs(g, []NodeID{0, 2}, []*ShortestPaths{sp0, sp0}, nil); err == nil {
		t.Fatal("wrong-root tree accepted")
	}
	sp2, _ := Dijkstra(g, 2)
	tree, err := SteinerKMBWithSPs(g, []NodeID{0, 2}, []*ShortestPaths{sp0, sp2}, nil)
	if err != nil || len(tree.EdgeIDs) != 2 {
		t.Fatalf("valid call failed: %v %v", tree, err)
	}
}

// TestSteinerScratchReuseAcrossGraphs runs one scratch across graphs of
// different sizes to shake out stale-capacity bugs (a larger graph
// followed by a smaller one and vice versa).
func TestSteinerScratchReuseAcrossGraphs(t *testing.T) {
	scratch := new(SteinerScratch)
	sizes := []int{40, 8, 60, 5, 25}
	for i, n := range sizes {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		g := randomConnectedGraph(rng, n, n)
		terms := []NodeID{0, n / 2, n - 1}
		got, err := SteinerKMBScratch(g, terms, scratch)
		if err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		want, err := SteinerKMB(g, terms)
		if err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		if !reflect.DeepEqual(got.EdgeIDs, want.EdgeIDs) || got.Weight != want.Weight {
			t.Fatalf("size %d: %v != %v", n, got.EdgeIDs, want.EdgeIDs)
		}
	}
}
