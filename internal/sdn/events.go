package sdn

import "nfvmcast/internal/graph"

// Resource-change notifications. Every failure-state transition
// (SetLinkUp, SetServerUp) appends one ResourceEvent to the network's
// pending buffer, stamped with the MutationVersion the transition
// produced. A single consumer — the admission engine's writer, which
// owns all mutations — drains the buffer after each maintenance update
// and uses the events to decide whether a recovery pass is due and
// which resources it concerns. The buffer is part of the mutable
// residual state: like every mutator it must only be touched by the
// goroutine that owns the network, and clones (read-only planning
// snapshots) start with an empty buffer so a snapshot can never steal
// the owner's notifications.

// ResourceKind distinguishes link from server events.
type ResourceKind uint8

// The two resource kinds of the substrate.
const (
	LinkResource ResourceKind = iota
	ServerResource
)

// String names the kind for event logs.
func (k ResourceKind) String() string {
	if k == LinkResource {
		return "link"
	}
	return "server"
}

// ResourceEvent records one failure-state transition: resource ID
// (an edge ID for links, a node ID for servers), the new state, and
// the MutationVersion stamped when the transition was applied — the
// key that orders events against allocations and lets a consumer tell
// which residual state a notification belongs to.
type ResourceEvent struct {
	// MutationVersion is the network's mutation counter immediately
	// after this transition was applied.
	MutationVersion uint64
	// Kind says whether ID is an edge or a node.
	Kind ResourceKind
	// ID is the failed/restored resource (graph.EdgeID or
	// graph.NodeID, both ints).
	ID int
	// Up is the new state: false = failed, true = restored.
	Up bool
}

// recordResourceEvent appends a transition to the pending buffer.
// Callers bump mutVer first so the stamp names the post-transition
// state.
func (nw *Network) recordResourceEvent(kind ResourceKind, id int, up bool) {
	nw.pending = append(nw.pending, ResourceEvent{
		MutationVersion: nw.mutVer,
		Kind:            kind,
		ID:              id,
		Up:              up,
	})
}

// DrainResourceEvents returns the failure-state transitions recorded
// since the last drain, in application order, and clears the buffer.
// Like every mutator it must be called from the goroutine that owns
// the network (the engine drains inside its writer).
func (nw *Network) DrainResourceEvents() []ResourceEvent {
	out := nw.pending
	nw.pending = nil
	return out
}

// PendingResourceEvents reports how many transitions await draining.
func (nw *Network) PendingResourceEvents() int { return len(nw.pending) }

// DownServers returns the failed servers, sorted ascending (the
// server-side mirror of DownLinks).
func (nw *Network) DownServers() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(nw.srvDown))
	for v := range nw.srvDown {
		out = append(out, v)
	}
	sortInts(out)
	return out
}
