package sdn

import (
	"testing"

	"nfvmcast/internal/graph"
)

func TestMutationBatchBumpsOnce(t *testing.T) {
	nw := testNet(t, 50, 11)
	srv := nw.Servers()[0]
	alloc := func(mbps, mhz float64) Allocation {
		return Allocation{
			Links:   map[graph.EdgeID]float64{0: mbps},
			Servers: map[graph.NodeID]float64{srv: mhz},
		}
	}

	before := nw.MutationVersion()
	freeLink, freeSrv := nw.ResidualBandwidth(0), nw.ResidualCompute(srv)
	nw.BeginMutationBatch()
	if !nw.InMutationBatch() {
		t.Fatalf("InMutationBatch = false inside a batch")
	}
	for i := 0; i < 5; i++ {
		if err := nw.Allocate(alloc(1, 1)); err != nil {
			t.Fatalf("Allocate %d: %v", i, err)
		}
	}
	if err := nw.Release(alloc(1, 1)); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := nw.SetBandwidthCap(1, nw.BandwidthCap(1)+50); err != nil {
		t.Fatalf("SetBandwidthCap: %v", err)
	}
	if got := nw.MutationVersion(); got != before {
		t.Fatalf("MutationVersion moved mid-batch: %d -> %d", before, got)
	}
	nw.EndMutationBatch()
	if nw.InMutationBatch() {
		t.Fatalf("InMutationBatch = true after the batch closed")
	}
	if got := nw.MutationVersion(); got != before+1 {
		t.Fatalf("MutationVersion after batch = %d, want %d (exactly one bump)", got, before+1)
	}

	// Residual effects of everything inside the batch are intact.
	if got := nw.ResidualBandwidth(0); got != freeLink-4 {
		t.Fatalf("link 0 residual = %v, want %v", got, freeLink-4)
	}
	if got := nw.ResidualCompute(srv); got != freeSrv-4 {
		t.Fatalf("server %d residual = %v, want %v", srv, got, freeSrv-4)
	}
}

func TestMutationBatchEmptyDoesNotBump(t *testing.T) {
	nw := testNet(t, 50, 11)
	before := nw.MutationVersion()
	nw.BeginMutationBatch()
	nw.EndMutationBatch()
	if got := nw.MutationVersion(); got != before {
		t.Fatalf("empty batch bumped MutationVersion: %d -> %d", before, got)
	}
}

func TestMutationBatchNesting(t *testing.T) {
	nw := testNet(t, 50, 11)
	a := Allocation{Links: map[graph.EdgeID]float64{0: 1}}
	before := nw.MutationVersion()

	nw.BeginMutationBatch()
	nw.BeginMutationBatch()
	if err := nw.Allocate(a); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	nw.EndMutationBatch() // inner close: still batched
	if got := nw.MutationVersion(); got != before {
		t.Fatalf("inner EndMutationBatch bumped: %d -> %d", before, got)
	}
	if err := nw.Allocate(a); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	nw.EndMutationBatch()
	if got := nw.MutationVersion(); got != before+1 {
		t.Fatalf("nested batch bumps = %d, want 1", got-before)
	}

	// Unpaired End outside any batch is a tolerated no-op.
	nw.EndMutationBatch()
	if got := nw.MutationVersion(); got != before+1 {
		t.Fatalf("stray EndMutationBatch bumped: %d", got)
	}

	// After the batch, mutations bump immediately again.
	if err := nw.Allocate(a); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if got := nw.MutationVersion(); got != before+2 {
		t.Fatalf("post-batch Allocate: version %d, want %d", got, before+2)
	}
}

func TestMutationBatchFailureBumpsStructureImmediately(t *testing.T) {
	// Failure injection bumps StructureVersion unconditionally even
	// inside a batch: only the residual MutationVersion is amortized,
	// structure changes are never deferred.
	nw := testNet(t, 50, 11)
	sBefore, mBefore := nw.StructureVersion(), nw.MutationVersion()
	nw.BeginMutationBatch()
	if err := nw.SetLinkUp(0, false); err != nil {
		t.Fatalf("SetLinkUp: %v", err)
	}
	if got := nw.StructureVersion(); got != sBefore+1 {
		t.Fatalf("StructureVersion inside batch = %d, want %d", got, sBefore+1)
	}
	if got := nw.MutationVersion(); got != mBefore {
		t.Fatalf("MutationVersion moved mid-batch: %d", got)
	}
	nw.EndMutationBatch()
	if got := nw.MutationVersion(); got != mBefore+1 {
		t.Fatalf("MutationVersion after batch = %d, want %d", got, mBefore+1)
	}
}

func TestMutationBatchCloneStartsUnbatched(t *testing.T) {
	nw := testNet(t, 50, 11)
	a := Allocation{Links: map[graph.EdgeID]float64{0: 1}}

	nw.BeginMutationBatch()
	cp := nw.Clone()
	nw.EndMutationBatch()
	if cp.InMutationBatch() {
		t.Fatalf("clone reports an open batch")
	}
	before := cp.MutationVersion()
	if err := cp.Allocate(a); err != nil {
		t.Fatalf("Allocate on clone: %v", err)
	}
	if got := cp.MutationVersion(); got != before+1 {
		t.Fatalf("clone Allocate bump = %d, want %d", got, before+1)
	}
}
