package sdn

import (
	"sort"
	"testing"

	"nfvmcast/internal/graph"
)

// collectChanges drains the journal window (from, current] into sorted,
// deduplicated link and server ID sets.
func collectChanges(t *testing.T, nw *Network, from uint64) (links, servers []int32, ok bool) {
	t.Helper()
	links, servers, ok = nw.ResidualChangesSince(from, nil, nil)
	if !ok {
		return nil, nil, false
	}
	sortDedup := func(s []int32) []int32 {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		out := s[:0]
		for i, v := range s {
			if i == 0 || v != s[i-1] {
				out = append(out, v)
			}
		}
		return out
	}
	return sortDedup(links), sortDedup(servers), true
}

func TestResidualChangesSingleAllocation(t *testing.T) {
	nw := testNet(t, 40, 7)
	srv := nw.Servers()[0]
	a := Allocation{
		Links:   map[graph.EdgeID]float64{0: 10, 3: 10, 5: 10},
		Servers: map[graph.NodeID]float64{srv: 100},
	}
	from := nw.MutationVersion()
	if err := nw.Allocate(a); err != nil {
		t.Fatal(err)
	}
	links, servers, ok := collectChanges(t, nw, from)
	if !ok {
		t.Fatal("window within history answered ok=false")
	}
	wantLinks := []int32{0, 3, 5}
	wantSrvs := []int32{int32(srv)}
	if len(links) != len(wantLinks) || len(servers) != len(wantSrvs) {
		t.Fatalf("changes = %v/%v, want %v/%v", links, servers, wantLinks, wantSrvs)
	}
	for i, e := range wantLinks {
		if links[i] != e {
			t.Fatalf("links = %v, want %v", links, wantLinks)
		}
	}
	if servers[0] != wantSrvs[0] {
		t.Fatalf("servers = %v, want %v", servers, wantSrvs)
	}

	// Releasing reports the same set.
	from = nw.MutationVersion()
	if err := nw.Release(a); err != nil {
		t.Fatal(err)
	}
	links, servers, ok = collectChanges(t, nw, from)
	if !ok || len(links) != 3 || len(servers) != 1 {
		t.Fatalf("release changes = %v/%v ok=%v", links, servers, ok)
	}
}

func TestResidualChangesEmptyWindow(t *testing.T) {
	nw := testNet(t, 20, 9)
	links, servers, ok := nw.ResidualChangesSince(nw.MutationVersion(), nil, nil)
	if !ok || links != nil || servers != nil {
		t.Fatalf("empty window: links=%v servers=%v ok=%v", links, servers, ok)
	}
	// A from ahead of the current version is a caller bug; refuse.
	if _, _, ok := nw.ResidualChangesSince(nw.MutationVersion()+1, nil, nil); ok {
		t.Fatal("future from answered ok=true")
	}
}

func TestResidualChangesBatchIsOneEpoch(t *testing.T) {
	nw := testNet(t, 40, 11)
	srv := nw.Servers()[1]
	from := nw.MutationVersion()
	nw.BeginMutationBatch()
	if err := nw.Allocate(Allocation{Links: map[graph.EdgeID]float64{1: 5}}); err != nil {
		t.Fatal(err)
	}
	if err := nw.Allocate(Allocation{
		Links:   map[graph.EdgeID]float64{1: 5, 2: 5},
		Servers: map[graph.NodeID]float64{srv: 50},
	}); err != nil {
		t.Fatal(err)
	}
	nw.EndMutationBatch()
	if got := nw.MutationVersion() - from; got != 1 {
		t.Fatalf("batch bumped %d versions, want 1", got)
	}
	links, servers, ok := collectChanges(t, nw, from)
	if !ok {
		t.Fatal("batch window answered ok=false")
	}
	if len(links) != 2 || links[0] != 1 || links[1] != 2 {
		t.Fatalf("batch links = %v, want [1 2]", links)
	}
	if len(servers) != 1 || servers[0] != int32(srv) {
		t.Fatalf("batch servers = %v, want [%d]", servers, srv)
	}
}

func TestResidualChangesResizeAndFailure(t *testing.T) {
	nw := testNet(t, 40, 13)
	srv := nw.Servers()[0]
	from := nw.MutationVersion()
	if err := nw.SetBandwidthCap(4, nw.BandwidthCap(4)*2); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetComputeCap(srv, nw.ComputeCap(srv)/2); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLinkUp(6, false); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetServerUp(srv, false); err != nil {
		t.Fatal(err)
	}
	links, servers, ok := collectChanges(t, nw, from)
	if !ok {
		t.Fatal("resize/failure window answered ok=false")
	}
	if len(links) != 2 || links[0] != 4 || links[1] != 6 {
		t.Fatalf("links = %v, want [4 6]", links)
	}
	if len(servers) != 1 || servers[0] != int32(srv) {
		t.Fatalf("servers = %v, want [%d]", servers, srv)
	}
}

func TestResidualChangesRestoreIsFull(t *testing.T) {
	nw := testNet(t, 30, 17)
	snap := nw.Snapshot()
	if err := nw.Allocate(Allocation{Links: map[graph.EdgeID]float64{0: 1}}); err != nil {
		t.Fatal(err)
	}
	from := nw.MutationVersion()
	if err := nw.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := nw.ResidualChangesSince(from, nil, nil); ok {
		t.Fatal("window across Restore answered ok=true")
	}
	// But a window after the restore works again.
	from = nw.MutationVersion()
	if err := nw.Allocate(Allocation{Links: map[graph.EdgeID]float64{2: 1}}); err != nil {
		t.Fatal(err)
	}
	links, _, ok := collectChanges(t, nw, from)
	if !ok || len(links) != 1 || links[0] != 2 {
		t.Fatalf("post-restore window: links=%v ok=%v", links, ok)
	}
}

func TestResidualChangesHistoryEviction(t *testing.T) {
	nw := testNet(t, 30, 19)
	base := nw.MutationVersion()
	for i := 0; i < residualLogEntries+8; i++ {
		e := i % nw.NumEdges()
		if err := nw.Allocate(Allocation{Links: map[graph.EdgeID]float64{e: 0.001}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := nw.ResidualChangesSince(base, nil, nil); ok {
		t.Fatal("window beyond retained history answered ok=true")
	}
	// The most recent window still resolves.
	links, _, ok := nw.ResidualChangesSince(nw.MutationVersion()-uint64(residualLogEntries), nil, nil)
	if !ok {
		t.Fatal("window exactly at capacity answered ok=false")
	}
	if len(links) != residualLogEntries {
		t.Fatalf("len(links) = %d, want %d", len(links), residualLogEntries)
	}
}

func TestResidualChangesRingIDOverflow(t *testing.T) {
	nw := testNet(t, 50, 23)
	m := nw.NumEdges()
	// Each epoch touches many links so the ID arena wraps long before
	// the entry ring does.
	links := make(map[graph.EdgeID]float64, 128)
	for round := 0; round < 80; round++ {
		clear(links)
		for j := 0; j < 128; j++ {
			links[(round*37+j)%m] = 0.0001
		}
		if err := nw.Allocate(Allocation{Links: links}); err != nil {
			t.Fatal(err)
		}
	}
	// Recent windows must stay exact even with the arena wrapping.
	from := nw.MutationVersion() - 3
	got, _, ok := nw.ResidualChangesSince(from, nil, nil)
	if !ok {
		t.Fatal("3-epoch window answered ok=false after arena wrap")
	}
	perEpoch := 128
	if m < perEpoch {
		perEpoch = m // the 128 keys collide mod m
	}
	if len(got) != 3*perEpoch {
		t.Fatalf("len(links) = %d, want %d", len(got), 3*perEpoch)
	}
	seen := map[int32]bool{}
	for _, id := range got {
		seen[id] = true
	}
	for round := 77; round < 80; round++ {
		for j := 0; j < 128; j++ {
			if id := int32((round*37 + j) % m); !seen[id] {
				t.Fatalf("round %d link %d missing from window", round, id)
			}
		}
	}
}

func TestResidualChangesCloneIndependence(t *testing.T) {
	nw := testNet(t, 30, 29)
	if err := nw.Allocate(Allocation{Links: map[graph.EdgeID]float64{0: 1}}); err != nil {
		t.Fatal(err)
	}
	from := nw.MutationVersion() - 1
	cp := nw.Clone()

	// The clone carries the history...
	links, _, ok := cp.ResidualChangesSince(from, nil, nil)
	if !ok || len(links) != 1 || links[0] != 0 {
		t.Fatalf("clone window: links=%v ok=%v", links, ok)
	}
	// ...and diverging the original does not leak into it.
	if err := nw.Allocate(Allocation{Links: map[graph.EdgeID]float64{5: 1}}); err != nil {
		t.Fatal(err)
	}
	links, _, ok = cp.ResidualChangesSince(from, nil, nil)
	if !ok || len(links) != 1 || links[0] != 0 {
		t.Fatalf("clone window after original mutated: links=%v ok=%v", links, ok)
	}

	// CloneInto reuses storage and matches Clone.
	var dst Network
	nw.CloneInto(&dst)
	links, _, ok = dst.ResidualChangesSince(from, nil, nil)
	if !ok || len(links) != 2 {
		t.Fatalf("CloneInto window: links=%v ok=%v", links, ok)
	}
	// Re-cloning after further mutation refreshes the destination.
	if err := nw.SetLinkUp(7, false); err != nil {
		t.Fatal(err)
	}
	nw.CloneInto(&dst)
	links, _, ok = dst.ResidualChangesSince(nw.MutationVersion()-1, nil, nil)
	if !ok || len(links) != 1 || links[0] != 7 {
		t.Fatalf("CloneInto refresh window: links=%v ok=%v", links, ok)
	}
}

func TestCloneIntoMatchesClone(t *testing.T) {
	nw := testNet(t, 40, 31)
	srv := nw.Servers()[0]
	if err := nw.Allocate(Allocation{
		Links:   map[graph.EdgeID]float64{0: 10, 1: 20},
		Servers: map[graph.NodeID]float64{srv: 100},
	}); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLinkUp(3, false); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetServerUp(nw.Servers()[1], false); err != nil {
		t.Fatal(err)
	}

	want := nw.Clone()
	var got Network
	nw.CloneInto(&got)
	// Run it twice: the second pass exercises the storage-reuse paths.
	nw.CloneInto(&got)

	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape: got %d/%d, want %d/%d",
			got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	if got.MutationVersion() != want.MutationVersion() ||
		got.StructureVersion() != want.StructureVersion() {
		t.Fatal("version mismatch")
	}
	for e := 0; e < want.NumEdges(); e++ {
		if got.ResidualBandwidth(e) != want.ResidualBandwidth(e) ||
			got.BandwidthCap(e) != want.BandwidthCap(e) ||
			got.LinkUnitCost(e) != want.LinkUnitCost(e) ||
			got.LinkUp(e) != want.LinkUp(e) {
			t.Fatalf("link %d state mismatch", e)
		}
		if got.Graph().Edge(e) != want.Graph().Edge(e) {
			t.Fatalf("edge %d mismatch", e)
		}
	}
	ws, gs := want.Servers(), got.Servers()
	if len(ws) != len(gs) {
		t.Fatalf("servers: got %d, want %d", len(gs), len(ws))
	}
	for i, v := range ws {
		if gs[i] != v {
			t.Fatalf("server list mismatch at %d", i)
		}
		if got.ResidualCompute(v) != want.ResidualCompute(v) ||
			got.ComputeCap(v) != want.ComputeCap(v) ||
			got.ServerUnitCost(v) != want.ServerUnitCost(v) ||
			got.ServerUp(v) != want.ServerUp(v) {
			t.Fatalf("server %d state mismatch", v)
		}
	}

	// Independence: mutating the copy must not touch the source.
	beforeFree := nw.ResidualBandwidth(0)
	if err := got.Allocate(Allocation{Links: map[graph.EdgeID]float64{0: 5}}); err != nil {
		t.Fatal(err)
	}
	if nw.ResidualBandwidth(0) != beforeFree {
		t.Fatal("CloneInto destination shares residual storage with source")
	}
}

func TestVisitServers(t *testing.T) {
	nw := testNet(t, 50, 37)
	var got []graph.NodeID
	nw.VisitServers(func(v graph.NodeID) bool {
		got = append(got, v)
		return true
	})
	want := nw.Servers()
	if len(got) != len(want) {
		t.Fatalf("visited %d servers, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order mismatch at %d: %d != %d", i, got[i], want[i])
		}
	}
	n := 0
	nw.VisitServers(func(graph.NodeID) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d, want 1", n)
	}
}
