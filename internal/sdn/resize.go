package sdn

import (
	"fmt"
	"math"

	"nfvmcast/internal/graph"
)

// Capacity right-sizing. Operators resize link bandwidth and server
// computing capacity while sessions are live (diurnal scale-down of
// leased transport, maintenance re-provisioning), so the setters below
// must preserve the allocation bookkeeping: the currently allocated
// share (capacity minus residual) is a floor no resize may cut into —
// shrinking below it would make live sessions release more than the
// link could ever have held. Both setters bump MutationVersion (the
// residual state changed) but not StructureVersion: which links and
// servers exist is unchanged, so structure-keyed caches stay valid
// while residual-keyed ones are invalidated, exactly matching what a
// resize perturbs.

// ErrCapacityBelowAllocation is returned when a resize would shrink a
// resource below what live sessions already hold on it.
var ErrCapacityBelowAllocation = fmt.Errorf("sdn: new capacity below current allocation")

// SetBandwidthCap resizes link e to capMbps, keeping its allocated
// share intact: the residual becomes capMbps minus the bandwidth live
// sessions hold on e. capMbps must be positive, finite and at least
// that allocated share.
func (nw *Network) SetBandwidthCap(e graph.EdgeID, capMbps float64) error {
	if e < 0 || e >= len(nw.linkCap) {
		return fmt.Errorf("sdn: edge %d out of range (m=%d)", e, len(nw.linkCap))
	}
	if math.IsNaN(capMbps) || math.IsInf(capMbps, 0) || capMbps <= 0 {
		return fmt.Errorf("sdn: invalid bandwidth capacity %v for link %d", capMbps, e)
	}
	allocated := nw.linkCap[e] - nw.linkFree[e]
	if capMbps < allocated-1e-6 {
		return fmt.Errorf("%w: link %d holds %.1f Mbps, new capacity %.1f Mbps",
			ErrCapacityBelowAllocation, e, allocated, capMbps)
	}
	nw.linkCap[e] = capMbps
	nw.linkFree[e] = math.Max(capMbps-allocated, 0)
	nw.markLinkChanged(e)
	nw.bumpMutation()
	return nil
}

// SetComputeCap resizes the server at v to capMHz, keeping its
// allocated share intact (see SetBandwidthCap). v must carry a server;
// capMHz must be positive, finite and at least the allocated share.
func (nw *Network) SetComputeCap(v graph.NodeID, capMHz float64) error {
	if !nw.IsServer(v) {
		return &NotServerError{Node: v}
	}
	if math.IsNaN(capMHz) || math.IsInf(capMHz, 0) || capMHz <= 0 {
		return fmt.Errorf("sdn: invalid computing capacity %v for server %d", capMHz, v)
	}
	allocated := nw.srvCap[v] - nw.srvFree[v]
	if capMHz < allocated-1e-6 {
		return fmt.Errorf("%w: server %d holds %.1f MHz, new capacity %.1f MHz",
			ErrCapacityBelowAllocation, v, allocated, capMHz)
	}
	nw.srvCap[v] = capMHz
	nw.srvFree[v] = math.Max(capMHz-allocated, 0)
	nw.markServerChanged(v)
	nw.bumpMutation()
	return nil
}
