package sdn

// Mutation batching. MutationVersion exists so planners can cache
// residual-derived structures (re-priced work graphs, shortest-path
// trees) and invalidate them exactly when the residuals move. When the
// admission engine commits an epoch of requests — a batch validated
// and allocated back to back on the writer — bumping the version once
// per allocation would invalidate those caches several times for what
// is, to every outside observer, a single residual transition: no
// reader can see the intermediate states, because the writer holds the
// network for the whole batch. BeginMutationBatch/EndMutationBatch
// make that transition explicit: mutations inside a batch mark the
// network dirty, and the version moves once when the outermost batch
// ends.
//
// Batching is a single-goroutine affair (the sdn mutators already
// are): the caller that opened the batch must close it before any
// other goroutine may observe the network. Batches nest; only the
// outermost End bumps. Clones taken outside a batch are unaffected;
// cloning mid-batch is a caller bug (the clone would alias a version
// that still identifies the pre-batch residuals).

// BeginMutationBatch opens a mutation batch: residual mutations until
// the matching EndMutationBatch mark the network dirty instead of
// bumping MutationVersion. Batches nest.
func (nw *Network) BeginMutationBatch() { nw.batchDepth++ }

// EndMutationBatch closes the innermost open batch. Closing the
// outermost batch bumps MutationVersion once if any mutation ran
// inside it, and not at all for an empty batch. EndMutationBatch
// without an open batch is a no-op.
func (nw *Network) EndMutationBatch() {
	if nw.batchDepth == 0 {
		return
	}
	nw.batchDepth--
	if nw.batchDepth == 0 && nw.batchDirty {
		nw.batchDirty = false
		nw.mutVer++
		nw.flushResidualChanges()
	}
}

// InMutationBatch reports whether a mutation batch is open.
func (nw *Network) InMutationBatch() bool { return nw.batchDepth > 0 }

// bumpMutation advances MutationVersion, or defers the bump to the
// enclosing batch's end. Every residual mutator calls it exactly once
// per successful state change.
func (nw *Network) bumpMutation() {
	if nw.batchDepth > 0 {
		nw.batchDirty = true
		return
	}
	nw.mutVer++
	nw.flushResidualChanges()
}
