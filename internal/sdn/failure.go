package sdn

import (
	"fmt"
	"sort"

	"nfvmcast/internal/graph"
)

// Link- and server-failure injection. Failed resources keep their
// residual bookkeeping (sessions still hold their allocations, so a
// later Release stays balanced) but are excluded from admission:
// algorithms must treat a down link as unusable and a down server as
// unable to host new VMs. Used by the failure-recovery tests and the
// re-planning workflow (fail → Release affected sessions → re-admit).

// ErrLinkDown is returned when allocating on a failed link.
var ErrLinkDown = fmt.Errorf("sdn: link is down")

// ErrServerDown is returned when allocating on a failed server.
var ErrServerDown = fmt.Errorf("sdn: server is down")

// SetLinkUp marks link e as up (true) or failed (false).
func (nw *Network) SetLinkUp(e graph.EdgeID, up bool) error {
	if e < 0 || e >= len(nw.linkFree) {
		return fmt.Errorf("sdn: edge %d out of range (m=%d)", e, len(nw.linkFree))
	}
	if nw.linkDown == nil {
		nw.linkDown = make(map[graph.EdgeID]bool)
	}
	if up {
		delete(nw.linkDown, e)
	} else {
		nw.linkDown[e] = true
	}
	nw.structVer++
	nw.markLinkChanged(e)
	nw.bumpMutation()
	nw.recordResourceEvent(LinkResource, e, up)
	return nil
}

// LinkUp reports whether link e is operational.
func (nw *Network) LinkUp(e graph.EdgeID) bool {
	return !nw.linkDown[e]
}

// SetServerUp marks the server at v as up (true) or failed (false).
func (nw *Network) SetServerUp(v graph.NodeID, up bool) error {
	if !nw.IsServer(v) {
		return &NotServerError{Node: v}
	}
	if nw.srvDown == nil {
		nw.srvDown = make(map[graph.NodeID]bool)
	}
	if up {
		delete(nw.srvDown, v)
	} else {
		nw.srvDown[v] = true
	}
	nw.structVer++
	nw.markServerChanged(v)
	nw.bumpMutation()
	nw.recordResourceEvent(ServerResource, v, up)
	return nil
}

// ServerUp reports whether the server at v is operational (false also
// for non-server switches).
func (nw *Network) ServerUp(v graph.NodeID) bool {
	return nw.IsServer(v) && !nw.srvDown[v]
}

// DownLinks returns the failed links, sorted ascending.
func (nw *Network) DownLinks() []graph.EdgeID {
	out := make([]graph.EdgeID, 0, len(nw.linkDown))
	for e := range nw.linkDown {
		out = append(out, e)
	}
	sort.Ints(out)
	return out
}

// AffectedBy reports whether an allocation touches any failed
// resource — used to find the sessions that must be re-planned after
// a failure.
func (nw *Network) AffectedBy(a Allocation) bool {
	for e := range a.Links {
		if !nw.LinkUp(e) {
			return true
		}
	}
	for v := range a.Servers {
		if nw.IsServer(v) && !nw.ServerUp(v) {
			return true
		}
	}
	return false
}
