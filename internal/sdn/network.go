// Package sdn models the software-defined network substrate: a
// switch/link graph in which a subset of switches carries NFV servers,
// per-link bandwidth and per-server computing capacities with residual
// tracking, atomic allocation/release of request resources, and a
// controller that compiles pseudo-multicast trees into per-switch
// forwarding rules and can replay packets over them.
package sdn

import (
	"fmt"
	"math/rand"
	"sort"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/topology"
)

// Config holds the resource parameterisation of the paper's
// evaluation (§VI.A).
type Config struct {
	// BandwidthCapRangeMbps is the uniform range of link capacities
	// B_e; the paper uses [1000, 10000] Mbps.
	BandwidthCapRangeMbps [2]float64
	// ComputeCapRangeMHz is the uniform range of server capacities
	// C_v; the paper uses [4000, 12000] MHz.
	ComputeCapRangeMHz [2]float64
	// LinkUnitCost is the uniform range of c_e, the operational cost
	// of one Mbps on a link.
	LinkUnitCost [2]float64
	// ServerUnitCost is the uniform range of c_v, the operational
	// cost of one MHz on a server.
	ServerUnitCost [2]float64
}

// DefaultConfig returns the paper's resource ranges with unit costs
// calibrated so computing and bandwidth costs are commensurate (see
// DESIGN.md §5).
func DefaultConfig() Config {
	return Config{
		BandwidthCapRangeMbps: [2]float64{1000, 10000},
		ComputeCapRangeMHz:    [2]float64{4000, 12000},
		LinkUnitCost:          [2]float64{0.5, 2.0},
		ServerUnitCost:        [2]float64{0.1, 0.5},
	}
}

func (c Config) validate() error {
	ranges := [][2]float64{
		c.BandwidthCapRangeMbps, c.ComputeCapRangeMHz, c.LinkUnitCost, c.ServerUnitCost,
	}
	for _, r := range ranges {
		if r[0] <= 0 || r[1] < r[0] {
			return fmt.Errorf("sdn: invalid config range %v", r)
		}
	}
	return nil
}

// Network is a capacitated SDN: the topology graph, the server-
// attached switch subset V_S, capacities, residuals and unit costs.
//
// Thread safety: all read accessors (Graph, Servers, capacities,
// residuals, unit costs, failure state) are pure lookups with no
// internal caching, so any number of goroutines may read one Network
// concurrently — core.ApproMulti's parallel candidate evaluation and
// concurrent solves over a shared network depend on this. Mutators
// (Allocate, Release, Restore, the failure injectors) are NOT safe to
// run concurrently with readers or each other; callers that interleave
// solving and allocation must serialise the mutations externally.
type Network struct {
	name    string
	g       *graph.Graph
	servers []graph.NodeID
	isSrv   []bool

	linkCap  []float64 // B_e, indexed by edge ID
	linkFree []float64 // residual bandwidth
	linkCost []float64 // c_e

	srvCap  map[graph.NodeID]float64 // C_v
	srvFree map[graph.NodeID]float64 // residual computing
	srvCost map[graph.NodeID]float64 // c_v

	linkDown map[graph.EdgeID]bool // failed links (see failure.go)
	srvDown  map[graph.NodeID]bool // failed servers

	structVer uint64 // bumped by failure injection (see StructureVersion)
	mutVer    uint64 // bumped by every residual mutation (see MutationVersion)

	// Open-mutation-batch state (see batch.go). Not cloned: a clone
	// starts outside any batch.
	batchDepth int
	batchDirty bool

	// Residual-change journal (see changes.go): the per-epoch change
	// ring plus the accumulator the mutators mark into before the
	// version bump flushes it. The accumulator is not cloned (cloning
	// mid-batch is a caller bug, see batch.go); the ring is copied so a
	// snapshot answers ResidualChangesSince for its own history.
	log        *residualLog
	dirtyLinks []int32
	dirtySrvs  []int32
	dirtyFull  bool

	// pending buffers failure/restore notifications until the owning
	// goroutine drains them (see events.go). Clones start empty.
	pending []ResourceEvent
}

// NewNetwork builds a network over topo with the given config, drawing
// capacities, unit costs and server locations from rng. Deterministic
// for a fixed rng state.
func NewNetwork(topo *topology.Topology, cfg Config, rng *rand.Rand) (*Network, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	return NewNetworkWithServers(topo, cfg, topo.PickServers(rng), rng)
}

// NewNetworkWithServers is NewNetwork with an explicit server node
// set (used when reproducing fixed placements such as GÉANT's).
func NewNetworkWithServers(
	topo *topology.Topology, cfg Config, servers []graph.NodeID, rng *rand.Rand,
) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := topo.Graph
	n := g.NumNodes()
	if len(servers) == 0 {
		return nil, fmt.Errorf("sdn: network %q needs at least one server", topo.Name)
	}
	isSrv := make([]bool, n)
	srvs := make([]graph.NodeID, 0, len(servers))
	for _, v := range servers {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("sdn: %w: server %d with n=%d", graph.ErrNodeOutOfRange, v, n)
		}
		if isSrv[v] {
			continue
		}
		isSrv[v] = true
		srvs = append(srvs, v)
	}
	sort.Ints(srvs)

	uniform := func(r [2]float64) float64 { return r[0] + rng.Float64()*(r[1]-r[0]) }
	m := g.NumEdges()
	nw := &Network{
		name:     topo.Name,
		g:        g.Clone(),
		servers:  srvs,
		isSrv:    isSrv,
		linkCap:  make([]float64, m),
		linkFree: make([]float64, m),
		linkCost: make([]float64, m),
		srvCap:   make(map[graph.NodeID]float64, len(srvs)),
		srvFree:  make(map[graph.NodeID]float64, len(srvs)),
		srvCost:  make(map[graph.NodeID]float64, len(srvs)),
	}
	for e := 0; e < m; e++ {
		nw.linkCap[e] = uniform(cfg.BandwidthCapRangeMbps)
		nw.linkFree[e] = nw.linkCap[e]
		nw.linkCost[e] = uniform(cfg.LinkUnitCost)
	}
	for _, v := range srvs {
		nw.srvCap[v] = uniform(cfg.ComputeCapRangeMHz)
		nw.srvFree[v] = nw.srvCap[v]
		nw.srvCost[v] = uniform(cfg.ServerUnitCost)
	}
	return nw, nil
}

// Name returns the underlying topology name.
func (nw *Network) Name() string { return nw.name }

// Graph returns the network's link graph. Callers must not mutate it;
// algorithms that need different weights clone it.
func (nw *Network) Graph() *graph.Graph { return nw.g }

// NumNodes reports |V|.
func (nw *Network) NumNodes() int { return nw.g.NumNodes() }

// NumEdges reports |E|.
func (nw *Network) NumEdges() int { return nw.g.NumEdges() }

// Servers returns a copy of the server-attached switch set V_S,
// sorted ascending.
func (nw *Network) Servers() []graph.NodeID {
	out := make([]graph.NodeID, len(nw.servers))
	copy(out, nw.servers)
	return out
}

// IsServer reports whether switch v has an attached server.
func (nw *Network) IsServer(v graph.NodeID) bool {
	return v >= 0 && v < len(nw.isSrv) && nw.isSrv[v]
}

// BandwidthCap returns B_e.
func (nw *Network) BandwidthCap(e graph.EdgeID) float64 { return nw.linkCap[e] }

// ResidualBandwidth returns the unallocated bandwidth of link e.
func (nw *Network) ResidualBandwidth(e graph.EdgeID) float64 { return nw.linkFree[e] }

// LinkUnitCost returns c_e, the cost of one Mbps on link e.
func (nw *Network) LinkUnitCost(e graph.EdgeID) float64 { return nw.linkCost[e] }

// ComputeCap returns C_v, or 0 when v has no server.
func (nw *Network) ComputeCap(v graph.NodeID) float64 { return nw.srvCap[v] }

// ResidualCompute returns the unallocated computing capacity at v, or
// 0 when v has no server.
func (nw *Network) ResidualCompute(v graph.NodeID) float64 { return nw.srvFree[v] }

// ServerUnitCost returns c_v, the cost of one MHz at server v.
func (nw *Network) ServerUnitCost(v graph.NodeID) float64 { return nw.srvCost[v] }

// LinkUtilization returns 1 - residual/capacity for link e.
func (nw *Network) LinkUtilization(e graph.EdgeID) float64 {
	return 1 - nw.linkFree[e]/nw.linkCap[e]
}

// ServerUtilization returns 1 - residual/capacity for server v.
func (nw *Network) ServerUtilization(v graph.NodeID) float64 {
	if !nw.IsServer(v) {
		return 0
	}
	return 1 - nw.srvFree[v]/nw.srvCap[v]
}

// StructureVersion is a counter of structural change: it starts at 0
// and increments whenever failure injection (SetLinkUp, SetServerUp)
// alters which links and servers are usable. Allocation and release
// only move residuals and do not bump it. Clones inherit the version,
// so algorithms that cache structure-dependent state (the pristine
// work graph and shortest-path trees of SPStaticPlanner) can key their
// caches on it and share them across residual snapshots of one
// network.
func (nw *Network) StructureVersion() uint64 { return nw.structVer }

// MutationVersion is a counter of residual change: it starts at 0 and
// increments on every successful Allocate, Release, Restore and
// failure-injection call. Together with StructureVersion it identifies
// a point-in-time residual state of one logical network, so planners
// can cache residual-derived structures (the re-priced work graph and
// its shortest-path trees) and invalidate them exactly when the
// residuals move. Clones inherit the version: a read-only clone at the
// same (structure, mutation) pair is residual-identical to its origin.
func (nw *Network) MutationVersion() uint64 { return nw.mutVer }

// Clone returns an independent deep copy of the network including
// residual state.
func (nw *Network) Clone() *Network {
	cp := &Network{
		name:     nw.name,
		g:        nw.g.Clone(),
		servers:  append([]graph.NodeID(nil), nw.servers...),
		isSrv:    append([]bool(nil), nw.isSrv...),
		linkCap:  append([]float64(nil), nw.linkCap...),
		linkFree: append([]float64(nil), nw.linkFree...),
		linkCost: append([]float64(nil), nw.linkCost...),
		srvCap:   make(map[graph.NodeID]float64, len(nw.srvCap)),
		srvFree:  make(map[graph.NodeID]float64, len(nw.srvFree)),
		srvCost:  make(map[graph.NodeID]float64, len(nw.srvCost)),

		structVer: nw.structVer,
		mutVer:    nw.mutVer,
	}
	if nw.log != nil {
		cp.log = &residualLog{}
		*cp.log = *nw.log
	}
	for k, v := range nw.srvCap {
		cp.srvCap[k] = v
	}
	for k, v := range nw.srvFree {
		cp.srvFree[k] = v
	}
	for k, v := range nw.srvCost {
		cp.srvCost[k] = v
	}
	if len(nw.linkDown) > 0 {
		cp.linkDown = make(map[graph.EdgeID]bool, len(nw.linkDown))
		for k, v := range nw.linkDown {
			cp.linkDown[k] = v
		}
	}
	if len(nw.srvDown) > 0 {
		cp.srvDown = make(map[graph.NodeID]bool, len(nw.srvDown))
		for k, v := range nw.srvDown {
			cp.srvDown[k] = v
		}
	}
	return cp
}

// CloneInto overwrites dst with a deep copy of nw, reusing dst's
// storage (graph adjacency, residual vectors, maps, journal ring)
// where shapes allow. Afterwards dst is equivalent to what Clone
// returns: fully independent, outside any mutation batch, with no
// pending events. The admission engine's snapshot loop keeps one
// destination per planning slot, so steady-state snapshots stop
// allocating. dst must not alias nw and must not be concurrently read.
func (nw *Network) CloneInto(dst *Network) {
	dst.name = nw.name
	if dst.g == nil {
		dst.g = graph.New(0)
	}
	nw.g.CopyInto(dst.g)
	dst.servers = append(dst.servers[:0], nw.servers...)
	dst.isSrv = append(dst.isSrv[:0], nw.isSrv...)
	dst.linkCap = append(dst.linkCap[:0], nw.linkCap...)
	dst.linkFree = append(dst.linkFree[:0], nw.linkFree...)
	dst.linkCost = append(dst.linkCost[:0], nw.linkCost...)
	if dst.srvCap == nil {
		dst.srvCap = make(map[graph.NodeID]float64, len(nw.srvCap))
		dst.srvFree = make(map[graph.NodeID]float64, len(nw.srvFree))
		dst.srvCost = make(map[graph.NodeID]float64, len(nw.srvCost))
	} else {
		clear(dst.srvCap)
		clear(dst.srvFree)
		clear(dst.srvCost)
	}
	for k, v := range nw.srvCap {
		dst.srvCap[k] = v
	}
	for k, v := range nw.srvFree {
		dst.srvFree[k] = v
	}
	for k, v := range nw.srvCost {
		dst.srvCost[k] = v
	}
	clear(dst.linkDown)
	for k, v := range nw.linkDown {
		if dst.linkDown == nil {
			dst.linkDown = make(map[graph.EdgeID]bool, len(nw.linkDown))
		}
		dst.linkDown[k] = v
	}
	clear(dst.srvDown)
	for k, v := range nw.srvDown {
		if dst.srvDown == nil {
			dst.srvDown = make(map[graph.NodeID]bool, len(nw.srvDown))
		}
		dst.srvDown[k] = v
	}
	dst.structVer = nw.structVer
	dst.mutVer = nw.mutVer
	dst.batchDepth = 0
	dst.batchDirty = false
	if nw.log != nil {
		if dst.log == nil {
			dst.log = &residualLog{}
		}
		*dst.log = *nw.log
	} else {
		dst.log = nil
	}
	dst.dirtyLinks = dst.dirtyLinks[:0]
	dst.dirtySrvs = dst.dirtySrvs[:0]
	dst.dirtyFull = false
	dst.pending = dst.pending[:0]
}

// Snapshot captures the residual state of a network for later Restore.
type Snapshot struct {
	linkFree []float64
	srvFree  map[graph.NodeID]float64
}

// RawSnapshot builds a Snapshot from explicit residual vectors — the
// deserialisation path of durable snapshots (internal/wal). Residuals
// are history-dependent floats (each allocate/release moves them by one
// addition, and float addition is order-dependent), so a recovery that
// re-derived them from capacities minus live allocations could drift in
// the last bits; restoring the recorded vectors verbatim keeps a
// recovered network bit-identical to the one that was snapshotted.
func RawSnapshot(linkFree []float64, srvFree map[graph.NodeID]float64) *Snapshot {
	s := &Snapshot{
		linkFree: append([]float64(nil), linkFree...),
		srvFree:  make(map[graph.NodeID]float64, len(srvFree)),
	}
	for k, v := range srvFree {
		s.srvFree[k] = v
	}
	return s
}

// Snapshot returns a copy of the current residual state.
func (nw *Network) Snapshot() *Snapshot {
	s := &Snapshot{
		linkFree: append([]float64(nil), nw.linkFree...),
		srvFree:  make(map[graph.NodeID]float64, len(nw.srvFree)),
	}
	for k, v := range nw.srvFree {
		s.srvFree[k] = v
	}
	return s
}

// Restore rewinds residual state to a snapshot taken from this
// network.
func (nw *Network) Restore(s *Snapshot) error {
	if len(s.linkFree) != len(nw.linkFree) {
		return fmt.Errorf("sdn: snapshot of %d links applied to %d links",
			len(s.linkFree), len(nw.linkFree))
	}
	copy(nw.linkFree, s.linkFree)
	for k := range nw.srvFree {
		v, ok := s.srvFree[k]
		if !ok {
			return fmt.Errorf("sdn: snapshot missing server %d", k)
		}
		nw.srvFree[k] = v
	}
	nw.markAllChanged()
	nw.bumpMutation()
	return nil
}
