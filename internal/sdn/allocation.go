package sdn

import (
	"fmt"

	"nfvmcast/internal/graph"
)

// Allocation is the resource bundle one admitted request occupies:
// bandwidth per link (Mbps; already multiplied by the number of
// traversals for pseudo-tree back-tracking) and computing per server
// (MHz).
type Allocation struct {
	Links   map[graph.EdgeID]float64
	Servers map[graph.NodeID]float64
}

// InsufficientBandwidthError reports a link without enough residual
// bandwidth for an allocation.
type InsufficientBandwidthError struct {
	Edge     graph.EdgeID
	Need     float64
	Residual float64
}

func (e *InsufficientBandwidthError) Error() string {
	return fmt.Sprintf("sdn: link %d: need %.1f Mbps, residual %.1f Mbps",
		e.Edge, e.Need, e.Residual)
}

// InsufficientComputeError reports a server without enough residual
// computing capacity for an allocation.
type InsufficientComputeError struct {
	Node     graph.NodeID
	Need     float64
	Residual float64
}

func (e *InsufficientComputeError) Error() string {
	return fmt.Sprintf("sdn: server %d: need %.1f MHz, residual %.1f MHz",
		e.Node, e.Need, e.Residual)
}

// NotServerError reports an allocation against a switch without an
// attached server.
type NotServerError struct{ Node graph.NodeID }

func (e *NotServerError) Error() string {
	return fmt.Sprintf("sdn: node %d has no attached server", e.Node)
}

// CanAllocate reports whether a fits in the current residual
// capacities, returning the first violation found (deterministically:
// lowest edge/node ID first).
func (nw *Network) CanAllocate(a Allocation) error {
	for _, e := range sortedEdgeKeys(a.Links) {
		need := a.Links[e]
		if e < 0 || e >= len(nw.linkFree) {
			return fmt.Errorf("sdn: edge %d out of range (m=%d)", e, len(nw.linkFree))
		}
		if need < 0 {
			return fmt.Errorf("sdn: negative bandwidth %v on edge %d", need, e)
		}
		if !nw.LinkUp(e) {
			return fmt.Errorf("%w: %d", ErrLinkDown, e)
		}
		if need > nw.linkFree[e] {
			return &InsufficientBandwidthError{Edge: e, Need: need, Residual: nw.linkFree[e]}
		}
	}
	for _, v := range sortedNodeKeys(a.Servers) {
		need := a.Servers[v]
		if !nw.IsServer(v) {
			return &NotServerError{Node: v}
		}
		if need < 0 {
			return fmt.Errorf("sdn: negative computing %v on server %d", need, v)
		}
		if !nw.ServerUp(v) {
			return fmt.Errorf("%w: %d", ErrServerDown, v)
		}
		if need > nw.srvFree[v] {
			return &InsufficientComputeError{Node: v, Need: need, Residual: nw.srvFree[v]}
		}
	}
	return nil
}

// Allocate atomically reserves a: either every link and server in the
// allocation is charged, or (on any violation) nothing is and the
// violation is returned.
func (nw *Network) Allocate(a Allocation) error {
	if err := nw.CanAllocate(a); err != nil {
		return err
	}
	for e, need := range a.Links {
		nw.linkFree[e] -= need
		nw.markLinkChanged(e)
	}
	for v, need := range a.Servers {
		nw.srvFree[v] -= need
		nw.markServerChanged(v)
	}
	nw.bumpMutation()
	return nil
}

// Release returns a previously-allocated bundle to the residual pools.
// Releasing more than was allocated is a programming error and is
// rejected (residuals never exceed capacity).
func (nw *Network) Release(a Allocation) error {
	for _, e := range sortedEdgeKeys(a.Links) {
		amt := a.Links[e]
		if e < 0 || e >= len(nw.linkFree) {
			return fmt.Errorf("sdn: edge %d out of range (m=%d)", e, len(nw.linkFree))
		}
		if amt < 0 || nw.linkFree[e]+amt > nw.linkCap[e]+1e-6 {
			return fmt.Errorf("sdn: release of %v Mbps overflows link %d (free %v, cap %v)",
				amt, e, nw.linkFree[e], nw.linkCap[e])
		}
	}
	for _, v := range sortedNodeKeys(a.Servers) {
		amt := a.Servers[v]
		if !nw.IsServer(v) {
			return &NotServerError{Node: v}
		}
		if amt < 0 || nw.srvFree[v]+amt > nw.srvCap[v]+1e-6 {
			return fmt.Errorf("sdn: release of %v MHz overflows server %d (free %v, cap %v)",
				amt, v, nw.srvFree[v], nw.srvCap[v])
		}
	}
	for e, amt := range a.Links {
		nw.linkFree[e] += amt
		if nw.linkFree[e] > nw.linkCap[e] {
			nw.linkFree[e] = nw.linkCap[e]
		}
		nw.markLinkChanged(e)
	}
	for v, amt := range a.Servers {
		nw.srvFree[v] += amt
		if nw.srvFree[v] > nw.srvCap[v] {
			nw.srvFree[v] = nw.srvCap[v]
		}
		nw.markServerChanged(v)
	}
	nw.bumpMutation()
	return nil
}

func sortedEdgeKeys(m map[graph.EdgeID]float64) []graph.EdgeID {
	out := make([]graph.EdgeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortInts(out)
	return out
}

func sortedNodeKeys(m map[graph.NodeID]float64) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortInts(out)
	return out
}

func sortInts(s []int) {
	// Insertion sort: the allocation maps are tiny (tree-sized).
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
