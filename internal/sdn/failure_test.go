package sdn

import (
	"errors"
	"testing"

	"nfvmcast/internal/graph"
)

func TestLinkFailureBlocksAllocation(t *testing.T) {
	nw := testNet(t, 30, 5)
	if !nw.LinkUp(0) {
		t.Fatal("fresh link should be up")
	}
	if err := nw.SetLinkUp(0, false); err != nil {
		t.Fatal(err)
	}
	if nw.LinkUp(0) {
		t.Fatal("link still up after failure")
	}
	err := nw.Allocate(Allocation{Links: map[graph.EdgeID]float64{0: 10}})
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("allocate on down link = %v, want ErrLinkDown", err)
	}
	if err := nw.SetLinkUp(0, true); err != nil {
		t.Fatal(err)
	}
	if err := nw.Allocate(Allocation{Links: map[graph.EdgeID]float64{0: 10}}); err != nil {
		t.Fatalf("allocate after repair: %v", err)
	}
	if err := nw.SetLinkUp(9999, false); err == nil {
		t.Fatal("out-of-range link accepted")
	}
}

func TestServerFailureBlocksAllocation(t *testing.T) {
	nw := testNet(t, 30, 5)
	v := nw.Servers()[0]
	if !nw.ServerUp(v) {
		t.Fatal("fresh server should be up")
	}
	if err := nw.SetServerUp(v, false); err != nil {
		t.Fatal(err)
	}
	err := nw.Allocate(Allocation{Servers: map[graph.NodeID]float64{v: 10}})
	if !errors.Is(err, ErrServerDown) {
		t.Fatalf("allocate on down server = %v, want ErrServerDown", err)
	}
	if err := nw.SetServerUp(v, true); err != nil {
		t.Fatal(err)
	}
	if err := nw.Allocate(Allocation{Servers: map[graph.NodeID]float64{v: 10}}); err != nil {
		t.Fatalf("allocate after repair: %v", err)
	}
	// Non-server node cannot be failed.
	nonServer := graph.NodeID(-1)
	for u := 0; u < nw.NumNodes(); u++ {
		if !nw.IsServer(u) {
			nonServer = u
			break
		}
	}
	if err := nw.SetServerUp(nonServer, false); err == nil {
		t.Fatal("failing a non-server accepted")
	}
	if nw.ServerUp(nonServer) {
		t.Fatal("non-server reported as up server")
	}
}

func TestDownLinksAndAffectedBy(t *testing.T) {
	nw := testNet(t, 30, 5)
	if got := nw.DownLinks(); len(got) != 0 {
		t.Fatalf("fresh network has down links: %v", got)
	}
	if err := nw.SetLinkUp(3, false); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLinkUp(1, false); err != nil {
		t.Fatal(err)
	}
	got := nw.DownLinks()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("DownLinks = %v, want [1 3]", got)
	}
	v := nw.Servers()[0]
	alloc := Allocation{
		Links:   map[graph.EdgeID]float64{0: 5, 3: 5},
		Servers: map[graph.NodeID]float64{v: 5},
	}
	if !nw.AffectedBy(alloc) {
		t.Fatal("allocation over down link not reported as affected")
	}
	clean := Allocation{Links: map[graph.EdgeID]float64{0: 5}}
	if nw.AffectedBy(clean) {
		t.Fatal("clean allocation reported as affected")
	}
	if err := nw.SetServerUp(v, false); err != nil {
		t.Fatal(err)
	}
	if !nw.AffectedBy(Allocation{Servers: map[graph.NodeID]float64{v: 1}}) {
		t.Fatal("allocation on down server not reported as affected")
	}
}

func TestCloneCarriesFailureState(t *testing.T) {
	nw := testNet(t, 30, 5)
	if err := nw.SetLinkUp(2, false); err != nil {
		t.Fatal(err)
	}
	v := nw.Servers()[0]
	if err := nw.SetServerUp(v, false); err != nil {
		t.Fatal(err)
	}
	cp := nw.Clone()
	if cp.LinkUp(2) || cp.ServerUp(v) {
		t.Fatal("clone lost failure state")
	}
	// Repairing the clone must not repair the original.
	if err := cp.SetLinkUp(2, true); err != nil {
		t.Fatal(err)
	}
	if nw.LinkUp(2) {
		t.Fatal("clone repair leaked to original")
	}
}
