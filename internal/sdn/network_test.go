package sdn

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/topology"
)

func testNet(t testing.TB, n int, seed int64) *Network {
	t.Helper()
	topo, err := topology.WaxmanDegree(n, 4, 0.14, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	nw, err := NewNetwork(topo, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNewNetworkRanges(t *testing.T) {
	nw := testNet(t, 50, 3)
	cfg := DefaultConfig()
	for e := 0; e < nw.NumEdges(); e++ {
		if c := nw.BandwidthCap(e); c < cfg.BandwidthCapRangeMbps[0] || c > cfg.BandwidthCapRangeMbps[1] {
			t.Fatalf("link %d capacity %v outside range", e, c)
		}
		if nw.ResidualBandwidth(e) != nw.BandwidthCap(e) {
			t.Fatalf("link %d not initially free", e)
		}
		if c := nw.LinkUnitCost(e); c < cfg.LinkUnitCost[0] || c > cfg.LinkUnitCost[1] {
			t.Fatalf("link %d unit cost %v outside range", e, c)
		}
		if nw.LinkUtilization(e) != 0 {
			t.Fatalf("link %d initial utilisation not 0", e)
		}
	}
	servers := nw.Servers()
	if len(servers) != 5 {
		t.Fatalf("servers = %d, want 5 (10%% of 50)", len(servers))
	}
	for _, v := range servers {
		if !nw.IsServer(v) {
			t.Fatalf("IsServer(%d) false for listed server", v)
		}
		if c := nw.ComputeCap(v); c < cfg.ComputeCapRangeMHz[0] || c > cfg.ComputeCapRangeMHz[1] {
			t.Fatalf("server %d capacity %v outside range", v, c)
		}
		if nw.ResidualCompute(v) != nw.ComputeCap(v) {
			t.Fatalf("server %d not initially free", v)
		}
		if nw.ServerUtilization(v) != 0 {
			t.Fatalf("server %d initial utilisation not 0", v)
		}
	}
	if nw.IsServer(-1) || nw.IsServer(nw.NumNodes()) {
		t.Fatal("IsServer out of range should be false")
	}
}

func TestNewNetworkWithServersValidation(t *testing.T) {
	topo := topology.GEANT()
	rng := rand.New(rand.NewSource(1))
	if _, err := NewNetworkWithServers(topo, DefaultConfig(), nil, rng); err == nil {
		t.Fatal("empty server set accepted")
	}
	if _, err := NewNetworkWithServers(topo, DefaultConfig(), []graph.NodeID{99}, rng); err == nil {
		t.Fatal("out-of-range server accepted")
	}
	// Duplicate servers collapse.
	nw, err := NewNetworkWithServers(topo, DefaultConfig(), []graph.NodeID{3, 3, 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(nw.Servers()); got != 2 {
		t.Fatalf("servers = %d, want 2 after dedupe", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.LinkUnitCost = [2]float64{2, 1}
	topo := topology.GEANT()
	rng := rand.New(rand.NewSource(1))
	if _, err := NewNetwork(topo, bad, rng); err == nil {
		t.Fatal("inverted cost range accepted")
	}
	bad = DefaultConfig()
	bad.BandwidthCapRangeMbps = [2]float64{0, 10}
	if _, err := NewNetwork(topo, bad, rng); err == nil {
		t.Fatal("zero capacity floor accepted")
	}
}

func TestAllocateReleaseRoundtrip(t *testing.T) {
	nw := testNet(t, 30, 5)
	v := nw.Servers()[0]
	alloc := Allocation{
		Links:   map[graph.EdgeID]float64{0: 100, 1: 250},
		Servers: map[graph.NodeID]float64{v: 500},
	}
	if err := nw.Allocate(alloc); err != nil {
		t.Fatal(err)
	}
	if got := nw.ResidualBandwidth(0); got != nw.BandwidthCap(0)-100 {
		t.Fatalf("link 0 residual = %v", got)
	}
	if got := nw.ResidualCompute(v); got != nw.ComputeCap(v)-500 {
		t.Fatalf("server residual = %v", got)
	}
	if nw.LinkUtilization(0) <= 0 || nw.ServerUtilization(v) <= 0 {
		t.Fatal("utilisation should be positive after allocation")
	}
	if err := nw.Release(alloc); err != nil {
		t.Fatal(err)
	}
	if nw.ResidualBandwidth(0) != nw.BandwidthCap(0) {
		t.Fatal("release did not restore link 0")
	}
	if nw.ResidualCompute(v) != nw.ComputeCap(v) {
		t.Fatal("release did not restore server")
	}
}

func TestAllocateAtomicOnFailure(t *testing.T) {
	nw := testNet(t, 30, 5)
	v := nw.Servers()[0]
	alloc := Allocation{
		Links:   map[graph.EdgeID]float64{0: 10},
		Servers: map[graph.NodeID]float64{v: nw.ComputeCap(v) + 1},
	}
	err := nw.Allocate(alloc)
	var insuff *InsufficientComputeError
	if !errors.As(err, &insuff) {
		t.Fatalf("err = %v, want InsufficientComputeError", err)
	}
	if insuff.Node != v {
		t.Fatalf("error names node %d, want %d", insuff.Node, v)
	}
	// The link part must not have been charged.
	if nw.ResidualBandwidth(0) != nw.BandwidthCap(0) {
		t.Fatal("failed allocation charged a link")
	}
}

func TestAllocateErrors(t *testing.T) {
	nw := testNet(t, 30, 5)
	over := nw.BandwidthCap(0) + 1
	err := nw.Allocate(Allocation{Links: map[graph.EdgeID]float64{0: over}})
	var bw *InsufficientBandwidthError
	if !errors.As(err, &bw) {
		t.Fatalf("err = %v, want InsufficientBandwidthError", err)
	}
	if bw.Error() == "" {
		t.Fatal("empty error message")
	}
	// Non-server node.
	nonServer := graph.NodeID(-1)
	for v := 0; v < nw.NumNodes(); v++ {
		if !nw.IsServer(v) {
			nonServer = v
			break
		}
	}
	err = nw.Allocate(Allocation{Servers: map[graph.NodeID]float64{nonServer: 1}})
	var ns *NotServerError
	if !errors.As(err, &ns) {
		t.Fatalf("err = %v, want NotServerError", err)
	}
	// Negative amounts.
	if err := nw.Allocate(Allocation{Links: map[graph.EdgeID]float64{0: -5}}); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
	// Edge out of range.
	if err := nw.Allocate(Allocation{Links: map[graph.EdgeID]float64{9999: 5}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestReleaseOverflowRejected(t *testing.T) {
	nw := testNet(t, 30, 5)
	if err := nw.Release(Allocation{Links: map[graph.EdgeID]float64{0: 10}}); err == nil {
		t.Fatal("release beyond capacity accepted")
	}
	v := nw.Servers()[0]
	if err := nw.Release(Allocation{Servers: map[graph.NodeID]float64{v: 1}}); err == nil {
		t.Fatal("server release beyond capacity accepted")
	}
}

func TestSnapshotRestore(t *testing.T) {
	nw := testNet(t, 30, 5)
	v := nw.Servers()[0]
	snap := nw.Snapshot()
	if err := nw.Allocate(Allocation{
		Links:   map[graph.EdgeID]float64{0: 100},
		Servers: map[graph.NodeID]float64{v: 100},
	}); err != nil {
		t.Fatal(err)
	}
	if err := nw.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if nw.ResidualBandwidth(0) != nw.BandwidthCap(0) {
		t.Fatal("restore did not rewind link")
	}
	if nw.ResidualCompute(v) != nw.ComputeCap(v) {
		t.Fatal("restore did not rewind server")
	}
	// Restoring a mismatched snapshot errors.
	other := testNet(t, 40, 6)
	if err := other.Restore(snap); err == nil {
		t.Fatal("cross-network restore accepted")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	nw := testNet(t, 30, 5)
	cp := nw.Clone()
	if err := cp.Allocate(Allocation{Links: map[graph.EdgeID]float64{0: 50}}); err != nil {
		t.Fatal(err)
	}
	if nw.ResidualBandwidth(0) != nw.BandwidthCap(0) {
		t.Fatal("clone allocation affected original")
	}
	if cp.Name() != nw.Name() || cp.NumNodes() != nw.NumNodes() {
		t.Fatal("clone lost identity")
	}
}

func TestNetworkDeterminism(t *testing.T) {
	a := testNet(t, 30, 9)
	b := testNet(t, 30, 9)
	for e := 0; e < a.NumEdges(); e++ {
		if a.BandwidthCap(e) != b.BandwidthCap(e) || a.LinkUnitCost(e) != b.LinkUnitCost(e) {
			t.Fatalf("link %d differs between equal-seed networks", e)
		}
	}
	as, bs := a.Servers(), b.Servers()
	for i := range as {
		if as[i] != bs[i] {
			t.Fatal("server sets differ between equal-seed networks")
		}
	}
}

func TestPropertyAllocationRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo, err := topology.WaxmanDegree(10+rng.Intn(40), 4, 0.14, seed)
		if err != nil {
			return false
		}
		nw, err := NewNetwork(topo, DefaultConfig(), rng)
		if err != nil {
			return false
		}
		// Random feasible allocation.
		alloc := Allocation{
			Links:   make(map[graph.EdgeID]float64),
			Servers: make(map[graph.NodeID]float64),
		}
		for e := 0; e < nw.NumEdges(); e++ {
			if rng.Intn(3) == 0 {
				alloc.Links[e] = rng.Float64() * nw.ResidualBandwidth(e)
			}
		}
		for _, v := range nw.Servers() {
			if rng.Intn(2) == 0 {
				alloc.Servers[v] = rng.Float64() * nw.ResidualCompute(v)
			}
		}
		if err := nw.Allocate(alloc); err != nil {
			return false
		}
		if err := nw.Release(alloc); err != nil {
			return false
		}
		// Floating-point: (cap-x)+x may differ from cap by an ulp.
		const tol = 1e-6
		for e := 0; e < nw.NumEdges(); e++ {
			if d := nw.ResidualBandwidth(e) - nw.BandwidthCap(e); d < -tol || d > tol {
				return false
			}
		}
		for _, v := range nw.Servers() {
			if d := nw.ResidualCompute(v) - nw.ComputeCap(v); d < -tol || d > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
