package sdn

import (
	"errors"
	"fmt"
	"sort"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
)

// The controller compiles admitted pseudo-multicast trees into
// per-switch forwarding rules (the SDN data plane the paper assumes)
// and can replay packets over the installed rules, which gives an
// end-to-end check that a computed tree really delivers processed
// traffic to every destination.

// Match is the rule key: SDN switches match a request's traffic and
// whether it has already traversed the service-chain VM (e.g. via a
// tag/VLAN bit set by the VM, as in SIMPLE [19]).
type Match struct {
	RequestID int
	Processed bool
}

// ActionKind enumerates forwarding actions.
type ActionKind int

// Forwarding actions a rule may carry.
const (
	// ActionForward sends a copy of the packet over an incident link.
	ActionForward ActionKind = iota + 1
	// ActionProcess hands the packet to the local service-chain VM,
	// which re-injects it with Processed=true. Valid only at switches
	// with attached servers.
	ActionProcess
	// ActionDeliver hands the packet to a locally-attached receiver.
	ActionDeliver
)

// Action is one entry of a rule's action set.
type Action struct {
	Kind ActionKind
	// Edge and NextNode are set for ActionForward.
	Edge     graph.EdgeID
	NextNode graph.NodeID
}

// FlowTable is the rule set of one switch.
type FlowTable struct {
	rules map[Match][]Action
}

func newFlowTable() *FlowTable { return &FlowTable{rules: make(map[Match][]Action)} }

// Actions returns the action set for a match (nil when absent).
func (ft *FlowTable) Actions(m Match) []Action {
	out := make([]Action, len(ft.rules[m]))
	copy(out, ft.rules[m])
	return out
}

// NumRules reports the number of (match, action-set) entries.
func (ft *FlowTable) NumRules() int { return len(ft.rules) }

func (ft *FlowTable) add(m Match, a Action) {
	for _, existing := range ft.rules[m] {
		if existing == a {
			return
		}
	}
	ft.rules[m] = append(ft.rules[m], a)
}

func (ft *FlowTable) drop(reqID int) {
	delete(ft.rules, Match{RequestID: reqID, Processed: false})
	delete(ft.rules, Match{RequestID: reqID, Processed: true})
}

// Controller owns the flow tables of every switch in a network.
type Controller struct {
	nw        *Network
	tables    []*FlowTable
	installed map[int]*multicast.PseudoTree
	// ruleLimit caps rules per switch (0 = unlimited); SDN forwarding
	// tables (TCAM) are a scarce resource ([2], [10] in the paper).
	ruleLimit int
}

// NewController returns a controller with empty flow tables for nw.
func NewController(nw *Network) *Controller {
	tables := make([]*FlowTable, nw.NumNodes())
	for i := range tables {
		tables[i] = newFlowTable()
	}
	return &Controller{nw: nw, tables: tables, installed: make(map[int]*multicast.PseudoTree)}
}

// NewControllerWithRuleLimit returns a controller whose switches hold
// at most maxRulesPerSwitch (match, action-set) entries each; Install
// fails with ErrTableFull (and changes nothing) when a tree would
// overflow a table.
func NewControllerWithRuleLimit(nw *Network, maxRulesPerSwitch int) (*Controller, error) {
	if maxRulesPerSwitch < 1 {
		return nil, fmt.Errorf("sdn: rule limit %d must be positive", maxRulesPerSwitch)
	}
	c := NewController(nw)
	c.ruleLimit = maxRulesPerSwitch
	return c, nil
}

// Errors reported by the controller.
var (
	// ErrAlreadyInstalled means rules for the request exist.
	ErrAlreadyInstalled = errors.New("sdn: request already installed")
	// ErrNotInstalled means no rules exist for the request.
	ErrNotInstalled = errors.New("sdn: request not installed")
	// ErrForwardingLoop means packet replay exceeded the hop budget.
	ErrForwardingLoop = errors.New("sdn: forwarding loop detected")
	// ErrTableFull means a switch's flow table cannot hold the rules
	// a tree needs (rule-limited controllers only).
	ErrTableFull = errors.New("sdn: flow table full")
)

// Install compiles the pseudo-multicast tree of req into forwarding
// rules: one forward action per directed hop, a process action at
// every serving switch, and a deliver action at every destination.
// With a rule limit set, Install is atomic: either every switch fits
// the new rules or none is changed.
func (c *Controller) Install(req *multicast.Request, tree *multicast.PseudoTree) error {
	if _, ok := c.installed[req.ID]; ok {
		return fmt.Errorf("%w: request %d", ErrAlreadyInstalled, req.ID)
	}
	// Validate endpoints and servers before mutating anything.
	for _, h := range tree.Hops() {
		if h.From < 0 || h.From >= len(c.tables) || h.To < 0 || h.To >= len(c.tables) {
			return fmt.Errorf("sdn: %w: hop %d->%d", graph.ErrNodeOutOfRange, h.From, h.To)
		}
	}
	for _, s := range tree.Servers {
		if !c.nw.IsServer(s) {
			return &NotServerError{Node: s}
		}
	}
	if c.ruleLimit > 0 {
		if err := c.checkRuleBudget(req, tree); err != nil {
			return err
		}
	}
	for _, h := range tree.Hops() {
		c.tables[h.From].add(
			Match{RequestID: req.ID, Processed: h.Processed},
			Action{Kind: ActionForward, Edge: h.Edge, NextNode: h.To},
		)
	}
	for _, s := range tree.Servers {
		c.tables[s].add(Match{RequestID: req.ID, Processed: false}, Action{Kind: ActionProcess})
	}
	for _, d := range tree.Destinations {
		c.tables[d].add(Match{RequestID: req.ID, Processed: true}, Action{Kind: ActionDeliver})
	}
	c.installed[req.ID] = tree
	return nil
}

// checkRuleBudget counts the new (match, action-set) entries the tree
// adds per switch and rejects the install when any table would exceed
// the limit. A rule is new when the switch has no entry yet for the
// (request, stage) match.
func (c *Controller) checkRuleBudget(req *multicast.Request, tree *multicast.PseudoTree) error {
	newMatches := make(map[graph.NodeID]map[Match]struct{})
	record := func(v graph.NodeID, m Match) {
		if _, exists := c.tables[v].rules[m]; exists {
			return
		}
		if newMatches[v] == nil {
			newMatches[v] = make(map[Match]struct{})
		}
		newMatches[v][m] = struct{}{}
	}
	for _, h := range tree.Hops() {
		record(h.From, Match{RequestID: req.ID, Processed: h.Processed})
	}
	for _, s := range tree.Servers {
		record(s, Match{RequestID: req.ID, Processed: false})
	}
	for _, d := range tree.Destinations {
		record(d, Match{RequestID: req.ID, Processed: true})
	}
	for v, ms := range newMatches {
		if c.tables[v].NumRules()+len(ms) > c.ruleLimit {
			return fmt.Errorf("%w: switch %d needs %d rules over its %d-rule table",
				ErrTableFull, v, c.tables[v].NumRules()+len(ms), c.ruleLimit)
		}
	}
	return nil
}

// Uninstall removes every rule belonging to the request.
func (c *Controller) Uninstall(reqID int) error {
	if _, ok := c.installed[reqID]; !ok {
		return fmt.Errorf("%w: request %d", ErrNotInstalled, reqID)
	}
	for _, ft := range c.tables {
		ft.drop(reqID)
	}
	delete(c.installed, reqID)
	return nil
}

// Installed reports whether rules exist for the request.
func (c *Controller) Installed(reqID int) bool {
	_, ok := c.installed[reqID]
	return ok
}

// TotalRules reports the number of rules across all switches.
func (c *Controller) TotalRules() int {
	var total int
	for _, ft := range c.tables {
		total += ft.NumRules()
	}
	return total
}

// Table returns the flow table of switch v.
func (c *Controller) Table(v graph.NodeID) *FlowTable { return c.tables[v] }

// Delivery is the result of replaying one packet over installed rules.
type Delivery struct {
	// Delivered lists destinations that received a processed packet,
	// sorted ascending.
	Delivered []graph.NodeID
	// HopCount is the number of directed link traversals performed.
	HopCount int
}

// InjectPacket replays a packet of the request from its source over
// the installed flow tables and reports which destinations received a
// processed copy. It errors if the rules loop.
func (c *Controller) InjectPacket(reqID int) (*Delivery, error) {
	tree, ok := c.installed[reqID]
	if !ok {
		return nil, fmt.Errorf("%w: request %d", ErrNotInstalled, reqID)
	}
	type state struct {
		node      graph.NodeID
		processed bool
	}
	visited := make(map[state]struct{})
	delivered := make(map[graph.NodeID]struct{})
	queue := []state{{node: tree.Source, processed: false}}
	visited[queue[0]] = struct{}{}
	hops := 0
	budget := 4 * (c.nw.NumEdges() + 1) // >= max distinct directed hops
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, a := range c.tables[cur.node].Actions(Match{RequestID: reqID, Processed: cur.processed}) {
			switch a.Kind {
			case ActionForward:
				hops++
				if hops > budget {
					return nil, fmt.Errorf("%w: request %d", ErrForwardingLoop, reqID)
				}
				next := state{node: a.NextNode, processed: cur.processed}
				if _, seen := visited[next]; !seen {
					visited[next] = struct{}{}
					queue = append(queue, next)
				}
			case ActionProcess:
				next := state{node: cur.node, processed: true}
				if _, seen := visited[next]; !seen {
					visited[next] = struct{}{}
					queue = append(queue, next)
				}
			case ActionDeliver:
				if cur.processed {
					delivered[cur.node] = struct{}{}
				}
			}
		}
	}
	out := &Delivery{HopCount: hops}
	for d := range delivered {
		out.Delivered = append(out.Delivered, d)
	}
	sort.Ints(out.Delivered)
	return out, nil
}

// VerifyDelivery replays a packet and errors unless every destination
// of the request received processed traffic.
func (c *Controller) VerifyDelivery(reqID int) error {
	tree, ok := c.installed[reqID]
	if !ok {
		return fmt.Errorf("%w: request %d", ErrNotInstalled, reqID)
	}
	del, err := c.InjectPacket(reqID)
	if err != nil {
		return err
	}
	got := make(map[graph.NodeID]struct{}, len(del.Delivered))
	for _, d := range del.Delivered {
		got[d] = struct{}{}
	}
	for _, d := range tree.Destinations {
		if _, ok := got[d]; !ok {
			return fmt.Errorf("%w: destination %d (request %d)",
				multicast.ErrUndelivered, d, reqID)
		}
	}
	return nil
}
