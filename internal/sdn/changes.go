package sdn

import "nfvmcast/internal/graph"

// Residual-change journal. Planner caches patch residual-derived
// structures (re-priced work graphs, shortest-path trees) instead of
// rebuilding them, and the patch needs to know which links and servers
// a mutation epoch actually touched. Every MutationVersion bump records
// one journal entry listing the link and server IDs whose residual
// state moved in that epoch (a batch accumulates its members' marks
// into a single entry, matching the one version bump the batch
// performs). Consumers ask for the union of changes across a version
// window with ResidualChangesSince; a window that reaches beyond the
// journal's bounded history, or that contains a whole-network
// transition (Restore, an unrecognised mutator), answers ok=false and
// the consumer falls back to a full comparison scan.
//
// The journal is a fixed-capacity ring owned by one network: no entry
// is ever shared with another Network, so the writer may overwrite
// evicted slots freely. Clone copies the ring; CloneInto reuses the
// destination's ring storage, keeping the engine's snapshot path
// allocation-free in steady state.

const (
	// residualLogEntries bounds how many mutation epochs the journal
	// retains. Commit/depart cycles move two epochs per session, so 64
	// entries cover the re-plan and short-gap patch windows the caches
	// exercise; longer gaps fall back to a full-vector comparison.
	residualLogEntries = 64
	// residualLogIDs bounds the total changed-ID storage across all
	// retained entries. A pseudo-multicast tree touches tens of links,
	// so 4096 IDs hold a full window of tree-sized epochs.
	residualLogIDs = 4096
)

// residualLogEntry is one mutation epoch's change record. Link IDs
// occupy ids[start : start+nLinks] and server IDs the nSrv slots after
// them (both modulo the ring capacity). full marks an epoch whose
// change set was not tracked (Restore, unrecognised mutators): every
// residual may have moved.
type residualLogEntry struct {
	ver    uint64
	full   bool
	start  int
	nLinks int32
	nSrv   int32
}

// residualLog is the fixed-capacity journal ring.
type residualLog struct {
	entries [residualLogEntries]residualLogEntry
	head    int // index of the oldest entry
	count   int
	idsUsed int // live ID slots across all entries
	idsNext int // next write position in ids
	ids     [residualLogIDs]int32
}

// entryAt returns the i-th oldest entry (0 <= i < count).
func (l *residualLog) entryAt(i int) *residualLogEntry {
	return &l.entries[(l.head+i)%residualLogEntries]
}

// evictOldest drops the oldest entry, releasing its ID slots.
func (l *residualLog) evictOldest() {
	e := l.entryAt(0)
	l.idsUsed -= int(e.nLinks + e.nSrv)
	l.head = (l.head + 1) % residualLogEntries
	l.count--
}

// append records one epoch. A change set too large for the ring is
// recorded as a full entry — consumers treat it like an untracked
// epoch.
func (l *residualLog) append(ver uint64, full bool, links, servers []int32) {
	need := len(links) + len(servers)
	if need > residualLogIDs {
		full, need = true, 0
	}
	if full {
		links, servers, need = nil, nil, 0
	}
	for l.count > 0 && (l.count == residualLogEntries || l.idsUsed+need > residualLogIDs) {
		l.evictOldest()
	}
	e := &l.entries[(l.head+l.count)%residualLogEntries]
	*e = residualLogEntry{
		ver: ver, full: full, start: l.idsNext,
		nLinks: int32(len(links)), nSrv: int32(len(servers)),
	}
	for _, id := range links {
		l.ids[l.idsNext] = id
		l.idsNext = (l.idsNext + 1) % residualLogIDs
	}
	for _, id := range servers {
		l.ids[l.idsNext] = id
		l.idsNext = (l.idsNext + 1) % residualLogIDs
	}
	l.idsUsed += need
	l.count++
}

// markLinkChanged records link e in the current epoch's change set,
// deduplicating against earlier marks (mutation batches touch
// tree-sized sets, so the linear scan is cheap).
func (nw *Network) markLinkChanged(e graph.EdgeID) {
	if nw.dirtyFull {
		return
	}
	id := int32(e)
	for _, d := range nw.dirtyLinks {
		if d == id {
			return
		}
	}
	nw.dirtyLinks = append(nw.dirtyLinks, id)
}

// markServerChanged records server v in the current epoch's change set.
func (nw *Network) markServerChanged(v graph.NodeID) {
	if nw.dirtyFull {
		return
	}
	id := int32(v)
	for _, d := range nw.dirtySrvs {
		if d == id {
			return
		}
	}
	nw.dirtySrvs = append(nw.dirtySrvs, id)
}

// markAllChanged records the current epoch as a whole-network
// transition (Restore rewinds every residual at once).
func (nw *Network) markAllChanged() {
	nw.dirtyFull = true
	nw.dirtyLinks = nw.dirtyLinks[:0]
	nw.dirtySrvs = nw.dirtySrvs[:0]
}

// flushResidualChanges appends the accumulated change set as the entry
// for the just-bumped MutationVersion and resets the accumulator. A
// bump with no recorded marks comes from a mutator the journal does
// not know about and is recorded as full — conservatively correct.
func (nw *Network) flushResidualChanges() {
	if nw.log == nil {
		nw.log = &residualLog{}
	}
	full := nw.dirtyFull || (len(nw.dirtyLinks) == 0 && len(nw.dirtySrvs) == 0)
	nw.log.append(nw.mutVer, full, nw.dirtyLinks, nw.dirtySrvs)
	nw.dirtyFull = false
	nw.dirtyLinks = nw.dirtyLinks[:0]
	nw.dirtySrvs = nw.dirtySrvs[:0]
}

// ResidualChangesSince reports which links and servers changed
// residual state in the version window (from, MutationVersion()]. The
// changed link IDs are appended to links and server IDs to servers
// (both may carry prior content and should usually be passed with
// length 0; IDs may repeat across epochs — callers deduplicate). The
// returned ok is false when the window reaches beyond the journal's
// retained history or contains a whole-network transition; callers
// must then treat every residual as potentially changed. from equal to
// the current version is the empty window: ok with nothing appended.
func (nw *Network) ResidualChangesSince(
	from uint64, links, servers []int32,
) (outLinks, outServers []int32, ok bool) {
	if from == nw.mutVer {
		return links, servers, true
	}
	if from > nw.mutVer || nw.log == nil {
		return links, servers, false
	}
	l := nw.log
	// Locate the entry for version from+1. Entries hold consecutive
	// versions (every bump appends exactly one), so index arithmetic
	// against the newest entry finds it.
	if l.count == 0 {
		return links, servers, false
	}
	newest := l.entryAt(l.count - 1).ver
	if newest != nw.mutVer {
		// A foreign history (restored ring, future mutators): refuse.
		return links, servers, false
	}
	span := nw.mutVer - from
	if span > uint64(l.count) {
		return links, servers, false
	}
	for i := l.count - int(span); i < l.count; i++ {
		e := l.entryAt(i)
		if e.full {
			return links, servers, false
		}
		at := e.start
		for k := int32(0); k < e.nLinks; k++ {
			links = append(links, l.ids[at])
			at = (at + 1) % residualLogIDs
		}
		for k := int32(0); k < e.nSrv; k++ {
			servers = append(servers, l.ids[at])
			at = (at + 1) % residualLogIDs
		}
	}
	return links, servers, true
}

// VisitServers calls fn for every server-attached switch in ascending
// order, without allocating (Servers copies). If fn returns false,
// iteration stops early.
func (nw *Network) VisitServers(fn func(v graph.NodeID) bool) {
	for _, v := range nw.servers {
		if !fn(v) {
			return
		}
	}
}
