package sdn

import (
	"errors"
	"testing"

	"nfvmcast/internal/graph"
)

// Shrink-below-allocated regression tests: a resize that would cut
// into the share live sessions already hold must fail with the typed
// ErrCapacityBelowAllocation and leave the resource untouched — no
// silent clamping, no partial state change.

func TestSetBandwidthCapShrinkBelowAllocated(t *testing.T) {
	nw := testNet(t, 50, 7)
	e := graph.EdgeID(0)
	a := Allocation{Links: map[graph.EdgeID]float64{e: 100}}
	if err := nw.Allocate(a); err != nil {
		t.Fatalf("Allocate: %v", err)
	}

	capBefore, freeBefore := nw.BandwidthCap(e), nw.ResidualBandwidth(e)
	verBefore := nw.MutationVersion()
	err := nw.SetBandwidthCap(e, 50) // allocated share is 100 Mbps
	if err == nil {
		t.Fatalf("SetBandwidthCap below allocation accepted (cap now %v)", nw.BandwidthCap(e))
	}
	if !errors.Is(err, ErrCapacityBelowAllocation) {
		t.Fatalf("error %v, want errors.Is(..., ErrCapacityBelowAllocation)", err)
	}
	if nw.BandwidthCap(e) != capBefore || nw.ResidualBandwidth(e) != freeBefore {
		t.Fatalf("rejected resize changed link state: cap %v->%v, free %v->%v",
			capBefore, nw.BandwidthCap(e), freeBefore, nw.ResidualBandwidth(e))
	}
	if nw.MutationVersion() != verBefore {
		t.Fatalf("rejected resize bumped MutationVersion %d -> %d", verBefore, nw.MutationVersion())
	}

	// Exactly the allocated share (within tolerance) is allowed and
	// pins the residual at zero.
	if err := nw.SetBandwidthCap(e, 100); err != nil {
		t.Fatalf("SetBandwidthCap to exactly the allocated share: %v", err)
	}
	if got := nw.ResidualBandwidth(e); got != 0 {
		t.Fatalf("residual after shrink-to-allocated = %v, want 0", got)
	}
}

func TestSetComputeCapShrinkBelowAllocated(t *testing.T) {
	nw := testNet(t, 50, 7)
	v := nw.Servers()[0]
	a := Allocation{Servers: map[graph.NodeID]float64{v: 500}}
	if err := nw.Allocate(a); err != nil {
		t.Fatalf("Allocate: %v", err)
	}

	capBefore, freeBefore := nw.ComputeCap(v), nw.ResidualCompute(v)
	verBefore := nw.MutationVersion()
	err := nw.SetComputeCap(v, 250) // allocated share is 500 MHz
	if err == nil {
		t.Fatalf("SetComputeCap below allocation accepted (cap now %v)", nw.ComputeCap(v))
	}
	if !errors.Is(err, ErrCapacityBelowAllocation) {
		t.Fatalf("error %v, want errors.Is(..., ErrCapacityBelowAllocation)", err)
	}
	if nw.ComputeCap(v) != capBefore || nw.ResidualCompute(v) != freeBefore {
		t.Fatalf("rejected resize changed server state: cap %v->%v, free %v->%v",
			capBefore, nw.ComputeCap(v), freeBefore, nw.ResidualCompute(v))
	}
	if nw.MutationVersion() != verBefore {
		t.Fatalf("rejected resize bumped MutationVersion %d -> %d", verBefore, nw.MutationVersion())
	}

	if err := nw.SetComputeCap(v, 500); err != nil {
		t.Fatalf("SetComputeCap to exactly the allocated share: %v", err)
	}
	if got := nw.ResidualCompute(v); got != 0 {
		t.Fatalf("residual after shrink-to-allocated = %v, want 0", got)
	}
}

func TestResizeRejectsInvalidCapacities(t *testing.T) {
	nw := testNet(t, 50, 7)
	v := nw.Servers()[0]
	for _, bad := range []float64{0, -1} {
		if err := nw.SetBandwidthCap(0, bad); err == nil {
			t.Fatalf("SetBandwidthCap(%v) accepted", bad)
		}
		if err := nw.SetComputeCap(v, bad); err == nil {
			t.Fatalf("SetComputeCap(%v) accepted", bad)
		}
	}
	if err := nw.SetBandwidthCap(-1, 100); err == nil {
		t.Fatal("SetBandwidthCap on out-of-range edge accepted")
	}
	if err := nw.SetComputeCap(0, 100); !errors.As(err, new(*NotServerError)) {
		// Node 0 may coincidentally be a server on some seeds; only
		// assert when it is not.
		if !nw.IsServer(0) {
			t.Fatalf("SetComputeCap on non-server: %v, want NotServerError", err)
		}
	}
}
