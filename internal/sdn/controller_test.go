package sdn

import (
	"errors"
	"math/rand"
	"testing"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/nfv"
	"nfvmcast/internal/topology"
)

// lineNetwork builds 0-1-2-3-4 with a server at node 2.
func lineNetwork(t *testing.T) *Network {
	t.Helper()
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	topo := &topology.Topology{Name: "line5", Graph: g, Servers: 1}
	rng := rand.New(rand.NewSource(2))
	nw, err := NewNetworkWithServers(topo, DefaultConfig(), []graph.NodeID{2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// lineTree builds the canonical pseudo tree on lineNetwork: source 0,
// destinations {1,4}, server 2 with back-tracking to 1.
func lineTree(nw *Network) (*multicast.Request, *multicast.PseudoTree) {
	req := &multicast.Request{
		ID:            7,
		Source:        0,
		Destinations:  []graph.NodeID{1, 4},
		BandwidthMbps: 100,
		Chain:         nfv.MustChain(nfv.NAT, nfv.Firewall),
	}
	g := nw.Graph()
	e01, _ := g.EdgeBetween(0, 1)
	e12, _ := g.EdgeBetween(1, 2)
	e23, _ := g.EdgeBetween(2, 3)
	e34, _ := g.EdgeBetween(3, 4)
	tr := multicast.NewPseudoTree(0, req.Destinations, []graph.NodeID{2})
	tr.AddHop(multicast.Hop{From: 0, To: 1, Edge: e01, Processed: false})
	tr.AddHop(multicast.Hop{From: 1, To: 2, Edge: e12, Processed: false})
	tr.AddHop(multicast.Hop{From: 2, To: 1, Edge: e12, Processed: true})
	tr.AddHop(multicast.Hop{From: 2, To: 3, Edge: e23, Processed: true})
	tr.AddHop(multicast.Hop{From: 3, To: 4, Edge: e34, Processed: true})
	return req, tr
}

func TestControllerInstallAndDeliver(t *testing.T) {
	nw := lineNetwork(t)
	c := NewController(nw)
	req, tr := lineTree(nw)
	if err := c.Install(req, tr); err != nil {
		t.Fatal(err)
	}
	if !c.Installed(req.ID) {
		t.Fatal("Installed() false after install")
	}
	if c.TotalRules() == 0 {
		t.Fatal("no rules installed")
	}
	del, err := c.InjectPacket(req.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(del.Delivered) != 2 || del.Delivered[0] != 1 || del.Delivered[1] != 4 {
		t.Fatalf("delivered = %v, want [1 4]", del.Delivered)
	}
	if del.HopCount != 5 {
		t.Fatalf("hop count = %d, want 5", del.HopCount)
	}
	if err := c.VerifyDelivery(req.ID); err != nil {
		t.Fatal(err)
	}
}

func TestControllerDoubleInstall(t *testing.T) {
	nw := lineNetwork(t)
	c := NewController(nw)
	req, tr := lineTree(nw)
	if err := c.Install(req, tr); err != nil {
		t.Fatal(err)
	}
	if err := c.Install(req, tr); !errors.Is(err, ErrAlreadyInstalled) {
		t.Fatalf("second install = %v, want ErrAlreadyInstalled", err)
	}
}

func TestControllerUninstall(t *testing.T) {
	nw := lineNetwork(t)
	c := NewController(nw)
	req, tr := lineTree(nw)
	if err := c.Install(req, tr); err != nil {
		t.Fatal(err)
	}
	if err := c.Uninstall(req.ID); err != nil {
		t.Fatal(err)
	}
	if c.Installed(req.ID) {
		t.Fatal("Installed() true after uninstall")
	}
	if c.TotalRules() != 0 {
		t.Fatalf("rules remain after uninstall: %d", c.TotalRules())
	}
	if err := c.Uninstall(req.ID); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("second uninstall = %v, want ErrNotInstalled", err)
	}
	if _, err := c.InjectPacket(req.ID); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("inject after uninstall = %v, want ErrNotInstalled", err)
	}
}

func TestControllerRejectsNonServerProcessing(t *testing.T) {
	nw := lineNetwork(t)
	c := NewController(nw)
	req, _ := lineTree(nw)
	bad := multicast.NewPseudoTree(0, req.Destinations, []graph.NodeID{3}) // 3 has no server
	e01, _ := nw.Graph().EdgeBetween(0, 1)
	bad.AddHop(multicast.Hop{From: 0, To: 1, Edge: e01, Processed: false})
	var ns *NotServerError
	if err := c.Install(req, bad); !errors.As(err, &ns) {
		t.Fatalf("install with non-server processing = %v, want NotServerError", err)
	}
}

func TestControllerVerifyDetectsMissingDestination(t *testing.T) {
	nw := lineNetwork(t)
	c := NewController(nw)
	req, _ := lineTree(nw)
	// Tree missing the branch to destination 4.
	tr := multicast.NewPseudoTree(0, req.Destinations, []graph.NodeID{2})
	g := nw.Graph()
	e01, _ := g.EdgeBetween(0, 1)
	e12, _ := g.EdgeBetween(1, 2)
	tr.AddHop(multicast.Hop{From: 0, To: 1, Edge: e01, Processed: false})
	tr.AddHop(multicast.Hop{From: 1, To: 2, Edge: e12, Processed: false})
	tr.AddHop(multicast.Hop{From: 2, To: 1, Edge: e12, Processed: true})
	if err := c.Install(req, tr); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyDelivery(req.ID); !errors.Is(err, multicast.ErrUndelivered) {
		t.Fatalf("verify = %v, want ErrUndelivered", err)
	}
}

func TestControllerMultipleRequestsIsolated(t *testing.T) {
	nw := lineNetwork(t)
	c := NewController(nw)
	req1, tr1 := lineTree(nw)
	req2 := req1.Clone()
	req2.ID = 8
	// Request 2: same shape, rebuilt (IDs in matches differ).
	_, tr2 := lineTree(nw)
	if err := c.Install(req1, tr1); err != nil {
		t.Fatal(err)
	}
	if err := c.Install(req2, tr2); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyDelivery(req1.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyDelivery(req2.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Uninstall(req1.ID); err != nil {
		t.Fatal(err)
	}
	// Request 2 must survive request 1's uninstall.
	if err := c.VerifyDelivery(req2.ID); err != nil {
		t.Fatal(err)
	}
}

func TestFlowTableActionDedup(t *testing.T) {
	ft := newFlowTable()
	m := Match{RequestID: 1, Processed: false}
	a := Action{Kind: ActionForward, Edge: 3, NextNode: 2}
	ft.add(m, a)
	ft.add(m, a)
	if got := len(ft.Actions(m)); got != 1 {
		t.Fatalf("actions = %d, want 1 after dedupe", got)
	}
	if ft.NumRules() != 1 {
		t.Fatalf("rules = %d, want 1", ft.NumRules())
	}
}

func TestControllerTableAccess(t *testing.T) {
	nw := lineNetwork(t)
	c := NewController(nw)
	req, tr := lineTree(nw)
	if err := c.Install(req, tr); err != nil {
		t.Fatal(err)
	}
	// Node 2 (the server) must hold a process rule for unprocessed
	// traffic of this request.
	acts := c.Table(2).Actions(Match{RequestID: req.ID, Processed: false})
	found := false
	for _, a := range acts {
		if a.Kind == ActionProcess {
			found = true
		}
	}
	if !found {
		t.Fatal("server switch lacks a process action")
	}
	// Destinations hold deliver rules for processed traffic.
	for _, d := range tr.Destinations {
		acts := c.Table(d).Actions(Match{RequestID: req.ID, Processed: true})
		found := false
		for _, a := range acts {
			if a.Kind == ActionDeliver {
				found = true
			}
		}
		if !found {
			t.Fatalf("destination %d lacks a deliver action", d)
		}
	}
}

func TestControllerRuleLimit(t *testing.T) {
	nw := lineNetwork(t)
	c, err := NewControllerWithRuleLimit(nw, 2)
	if err != nil {
		t.Fatal(err)
	}
	req1, tr1 := lineTree(nw)
	if err := c.Install(req1, tr1); err != nil {
		t.Fatal(err)
	}
	// Node 2 (the server) already holds 2 rules (unprocessed:
	// process+forward collapse into one match with two actions, plus
	// the processed forward match). A second identical session needs
	// 2 more rules there and must be rejected atomically.
	req2 := req1.Clone()
	req2.ID = 99
	_, tr2 := lineTree(nw)
	// Rebuild tr2 under request 99's identity: the tree itself is
	// request-agnostic, matches are keyed at install time.
	before := c.TotalRules()
	err = c.Install(req2, tr2)
	if !errors.Is(err, ErrTableFull) {
		t.Fatalf("overflow install = %v, want ErrTableFull", err)
	}
	if c.TotalRules() != before {
		t.Fatal("failed install mutated tables")
	}
	if c.Installed(req2.ID) {
		t.Fatal("failed install registered the request")
	}
	// After uninstalling the first session the second fits.
	if err := c.Uninstall(req1.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Install(req2, tr2); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyDelivery(req2.ID); err != nil {
		t.Fatal(err)
	}
}

func TestControllerRuleLimitValidation(t *testing.T) {
	nw := lineNetwork(t)
	if _, err := NewControllerWithRuleLimit(nw, 0); err == nil {
		t.Fatal("zero rule limit accepted")
	}
}
