package nfv

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFunctionString(t *testing.T) {
	tests := []struct {
		f    Function
		want string
	}{
		{Firewall, "Firewall"},
		{Proxy, "Proxy"},
		{NAT, "NAT"},
		{IDS, "IDS"},
		{LoadBalancer, "LoadBalancer"},
		{Function(99), "Function(99)"},
	}
	for _, tt := range tests {
		if got := tt.f.String(); got != tt.want {
			t.Fatalf("String(%d) = %q, want %q", int(tt.f), got, tt.want)
		}
	}
}

func TestFunctionValid(t *testing.T) {
	for _, f := range AllFunctions() {
		if !f.Valid() {
			t.Fatalf("%v should be valid", f)
		}
	}
	if Function(0).Valid() || Function(6).Valid() {
		t.Fatal("out-of-range functions should be invalid")
	}
}

func TestAllFunctionsCount(t *testing.T) {
	if got := len(AllFunctions()); got != 5 {
		t.Fatalf("AllFunctions() = %d entries, want 5 (paper §VI.A)", got)
	}
}

func TestDemandScalesLinearly(t *testing.T) {
	for _, f := range AllFunctions() {
		base := f.DemandMHz(ReferenceRateMbps)
		if base <= 0 {
			t.Fatalf("%v base demand = %v, want > 0", f, base)
		}
		if got := f.DemandMHz(2 * ReferenceRateMbps); math.Abs(got-2*base) > 1e-9 {
			t.Fatalf("%v demand at 2x rate = %v, want %v", f, got, 2*base)
		}
		if got := f.DemandMHz(0); got != 0 {
			t.Fatalf("%v demand at 0 rate = %v, want 0", f, got)
		}
		if got := f.DemandMHz(-5); got != 0 {
			t.Fatalf("%v demand at negative rate = %v, want 0", f, got)
		}
	}
	if got := Function(42).DemandMHz(100); got != 0 {
		t.Fatalf("unknown function demand = %v, want 0", got)
	}
}

func TestNewChain(t *testing.T) {
	c, err := NewChain(NAT, Firewall, IDS)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if c.At(0) != NAT || c.At(2) != IDS {
		t.Fatalf("chain order wrong: %v", c.Functions())
	}
	if c.Empty() {
		t.Fatal("chain should not be empty")
	}
	want := "<NAT, Firewall, IDS>"
	if got := c.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestNewChainErrors(t *testing.T) {
	if _, err := NewChain(); !errors.Is(err, ErrEmptyChain) {
		t.Fatalf("empty chain error = %v, want ErrEmptyChain", err)
	}
	if _, err := NewChain(Function(77)); err == nil {
		t.Fatal("invalid function accepted")
	}
}

func TestMustChainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustChain with no functions should panic")
		}
	}()
	MustChain()
}

func TestChainImmutability(t *testing.T) {
	funcs := []Function{NAT, Firewall}
	c, err := NewChain(funcs...)
	if err != nil {
		t.Fatal(err)
	}
	funcs[0] = IDS
	if c.At(0) != NAT {
		t.Fatal("chain mutated through constructor argument")
	}
	got := c.Functions()
	got[0] = IDS
	if c.At(0) != NAT {
		t.Fatal("chain mutated through Functions() result")
	}
}

func TestChainDemandIsSum(t *testing.T) {
	c := MustChain(NAT, Firewall)
	rate := 150.0
	want := NAT.DemandMHz(rate) + Firewall.DemandMHz(rate)
	if got := c.DemandMHz(rate); math.Abs(got-want) > 1e-9 {
		t.Fatalf("chain demand = %v, want %v", got, want)
	}
}

func TestChainEqual(t *testing.T) {
	a := MustChain(NAT, IDS)
	b := MustChain(NAT, IDS)
	c := MustChain(IDS, NAT)
	d := MustChain(NAT)
	if !a.Equal(b) {
		t.Fatal("identical chains not equal")
	}
	if a.Equal(c) {
		t.Fatal("order must matter")
	}
	if a.Equal(d) {
		t.Fatal("length must matter")
	}
}

func TestEmptyChainString(t *testing.T) {
	var c Chain
	if got := c.String(); got != "<>" {
		t.Fatalf("empty chain String = %q, want <>", got)
	}
	if !c.Empty() {
		t.Fatal("zero chain should be empty")
	}
	if c.DemandMHz(100) != 0 {
		t.Fatal("zero chain demand should be 0")
	}
}

func TestRandomChain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		c, err := RandomChain(rng, 1, 3)
		if err != nil {
			t.Fatal(err)
		}
		if c.Len() < 1 || c.Len() > 3 {
			t.Fatalf("chain length %d outside [1,3]", c.Len())
		}
		seen := make(map[Function]bool)
		for _, f := range c.Functions() {
			if !f.Valid() {
				t.Fatalf("invalid function %v in random chain", f)
			}
			if seen[f] {
				t.Fatalf("duplicate function %v in random chain %v", f, c)
			}
			seen[f] = true
		}
	}
}

func TestRandomChainClampsAndValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// minLen < 1 clamps to 1; maxLen > 5 clamps to 5.
	c, err := RandomChain(rng, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() < 1 || c.Len() > 5 {
		t.Fatalf("clamped chain length %d outside [1,5]", c.Len())
	}
	if _, err := RandomChain(rng, 4, 2); err == nil {
		t.Fatal("min > max accepted")
	}
}

func TestPropertyChainStringRoundtrips(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := RandomChain(rng, 1, 5)
		if err != nil {
			return false
		}
		s := c.String()
		if !strings.HasPrefix(s, "<") || !strings.HasSuffix(s, ">") {
			return false
		}
		// Each function name appears exactly once.
		for _, fn := range c.Functions() {
			if strings.Count(s, fn.String()) < 1 {
				return false
			}
		}
		return c.DemandMHz(100) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
