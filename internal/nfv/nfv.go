// Package nfv models virtualised network functions and service chains
// as used by NFV-enabled multicast requests: the five middlebox types
// considered in the paper's evaluation (Firewall, Proxy, NAT, IDS and
// Load Balancer), their computing demands, and ordered service chains
// that are consolidated onto a single VM per hosting server.
package nfv

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
)

// Function identifies one virtualised network function type.
type Function int

// The five network-function types from the paper's evaluation (§VI.A).
const (
	Firewall Function = iota + 1
	Proxy
	NAT
	IDS
	LoadBalancer
)

// AllFunctions lists every supported network function type.
func AllFunctions() []Function {
	return []Function{Firewall, Proxy, NAT, IDS, LoadBalancer}
}

// String implements fmt.Stringer.
func (f Function) String() string {
	switch f {
	case Firewall:
		return "Firewall"
	case Proxy:
		return "Proxy"
	case NAT:
		return "NAT"
	case IDS:
		return "IDS"
	case LoadBalancer:
		return "LoadBalancer"
	default:
		return fmt.Sprintf("Function(%d)", int(f))
	}
}

// Valid reports whether f is one of the defined function types.
func (f Function) Valid() bool { return f >= Firewall && f <= LoadBalancer }

// ParseFunction maps a function name (case-insensitive; "LB" is
// accepted for LoadBalancer) back to its type — the inverse of String,
// shared by the CLI flag parsers and the wire/WAL codecs.
func ParseFunction(name string) (Function, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "firewall":
		return Firewall, nil
	case "proxy":
		return Proxy, nil
	case "nat":
		return NAT, nil
	case "ids":
		return IDS, nil
	case "loadbalancer", "lb":
		return LoadBalancer, nil
	default:
		return 0, fmt.Errorf("nfv: unknown function %q", name)
	}
}

// baseDemandMHz is the computing demand of one function instance at the
// reference traffic rate, in MHz. The paper cites ClickOS-era
// measurements ([7], [17]) without reprinting the numbers; these values
// are at the magnitudes those systems report (see DESIGN.md §5) and
// scale linearly with the request bandwidth.
var baseDemandMHz = map[Function]float64{
	Firewall:     40,
	Proxy:        60,
	NAT:          20,
	IDS:          80,
	LoadBalancer: 30,
}

// ReferenceRateMbps is the traffic rate at which baseDemandMHz applies.
const ReferenceRateMbps = 100.0

// DemandMHz returns the computing demand in MHz of one instance of f
// processing traffic at rateMbps.
func (f Function) DemandMHz(rateMbps float64) float64 {
	base, ok := baseDemandMHz[f]
	if !ok {
		return 0
	}
	if rateMbps < 0 {
		rateMbps = 0
	}
	return base * rateMbps / ReferenceRateMbps
}

// ErrEmptyChain is returned when a service chain has no functions.
var ErrEmptyChain = errors.New("nfv: empty service chain")

// Chain is an ordered service chain SC_k: every packet of the request
// must traverse the functions in this order before reaching any
// destination. Chains are immutable after construction.
type Chain struct {
	funcs []Function
}

// NewChain builds a service chain from the given ordered functions.
func NewChain(funcs ...Function) (Chain, error) {
	if len(funcs) == 0 {
		return Chain{}, ErrEmptyChain
	}
	for _, f := range funcs {
		if !f.Valid() {
			return Chain{}, fmt.Errorf("nfv: invalid function %d in chain", int(f))
		}
	}
	cp := make([]Function, len(funcs))
	copy(cp, funcs)
	return Chain{funcs: cp}, nil
}

// MustChain is NewChain for statically-known chains; it panics on error.
func MustChain(funcs ...Function) Chain {
	c, err := NewChain(funcs...)
	if err != nil {
		panic(err)
	}
	return c
}

// Functions returns a copy of the chain's ordered function list.
func (c Chain) Functions() []Function {
	out := make([]Function, len(c.funcs))
	copy(out, c.funcs)
	return out
}

// Len reports the number of functions in the chain.
func (c Chain) Len() int { return len(c.funcs) }

// At returns the i-th function of the chain.
func (c Chain) At(i int) Function { return c.funcs[i] }

// Empty reports whether the chain holds no functions.
func (c Chain) Empty() bool { return len(c.funcs) == 0 }

// DemandMHz returns the consolidated computing demand C_v(SC_k) of the
// whole chain at traffic rate rateMbps: the chain's functions run in a
// single VM, so the demand is the sum over the chain.
func (c Chain) DemandMHz(rateMbps float64) float64 {
	var sum float64
	for _, f := range c.funcs {
		sum += f.DemandMHz(rateMbps)
	}
	return sum
}

// String renders the chain as "<NAT, Firewall, IDS>".
func (c Chain) String() string {
	if len(c.funcs) == 0 {
		return "<>"
	}
	parts := make([]string, len(c.funcs))
	for i, f := range c.funcs {
		parts[i] = f.String()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// Equal reports whether two chains contain the same functions in the
// same order.
func (c Chain) Equal(other Chain) bool {
	if len(c.funcs) != len(other.funcs) {
		return false
	}
	for i, f := range c.funcs {
		if other.funcs[i] != f {
			return false
		}
	}
	return true
}

// RandomChain draws a service chain of random length in [minLen,
// maxLen] with distinct functions chosen uniformly from the five types,
// using rng. It mirrors the paper's workload in which each request
// carries a chain drawn from the five middlebox types.
func RandomChain(rng *rand.Rand, minLen, maxLen int) (Chain, error) {
	all := AllFunctions()
	if minLen < 1 {
		minLen = 1
	}
	if maxLen > len(all) {
		maxLen = len(all)
	}
	if minLen > maxLen {
		return Chain{}, fmt.Errorf("nfv: invalid chain length range [%d,%d]", minLen, maxLen)
	}
	length := minLen + rng.Intn(maxLen-minLen+1)
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return NewChain(all[:length]...)
}
