// Package viz renders topologies and pseudo-multicast trees as
// Graphviz DOT for inspection and documentation: switches, servers,
// sources, destinations and the two traffic stages (unprocessed vs
// processed) are styled distinctly, so `dot -Tsvg` produces a readable
// picture of any solution.
package viz

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/topology"
)

// nodeName resolves a display label.
func nodeName(names []string, v graph.NodeID) string {
	if v >= 0 && v < len(names) && names[v] != "" {
		return names[v]
	}
	return fmt.Sprintf("v%d", v)
}

// quote escapes a DOT identifier.
func quote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}

// WriteTopologyDOT renders a topology as an undirected DOT graph.
// Server switches (the first topo.Servers nodes of servers, when
// provided) are drawn as filled boxes.
func WriteTopologyDOT(w io.Writer, topo *topology.Topology, servers []graph.NodeID) error {
	if topo == nil || topo.Graph == nil {
		return fmt.Errorf("viz: nil topology")
	}
	isServer := make(map[graph.NodeID]bool, len(servers))
	for _, v := range servers {
		isServer[v] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", quote(topo.Name))
	b.WriteString("  layout=neato;\n  overlap=false;\n  node [shape=circle, fontsize=10];\n")
	for v := 0; v < topo.Graph.NumNodes(); v++ {
		attrs := ""
		if isServer[v] {
			attrs = ` [shape=box, style=filled, fillcolor=lightblue]`
		}
		fmt.Fprintf(&b, "  %s%s;\n", quote(nodeName(topo.NodeNames, v)), attrs)
	}
	for _, e := range topo.Graph.Edges() {
		fmt.Fprintf(&b, "  %s -- %s [label=\"%.2g\"];\n",
			quote(nodeName(topo.NodeNames, e.U)), quote(nodeName(topo.NodeNames, e.V)), e.W)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteTreeDOT renders a pseudo-multicast tree as a directed DOT
// graph over the host network: unprocessed hops are dashed, processed
// hops solid; the source is a house, servers are filled boxes,
// destinations are double circles.
func WriteTreeDOT(
	w io.Writer, nw *sdn.Network, names []string, tree *multicast.PseudoTree,
) error {
	if nw == nil || tree == nil {
		return fmt.Errorf("viz: nil network or tree")
	}
	var b strings.Builder
	b.WriteString("digraph pseudomulticast {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=circle, fontsize=10];\n")

	role := make(map[graph.NodeID]string)
	for _, v := range tree.UsedNodes() {
		role[v] = "switch"
	}
	for _, d := range tree.Destinations {
		role[d] = "destination"
	}
	for _, s := range tree.Servers {
		role[s] = "server"
	}
	role[tree.Source] = "source"

	nodes := make([]graph.NodeID, 0, len(role))
	for v := range role {
		nodes = append(nodes, v)
	}
	sort.Ints(nodes)
	for _, v := range nodes {
		var attrs string
		switch role[v] {
		case "source":
			attrs = ` [shape=house, style=filled, fillcolor=palegreen]`
		case "server":
			attrs = ` [shape=box, style=filled, fillcolor=lightblue]`
		case "destination":
			attrs = ` [shape=doublecircle]`
		}
		fmt.Fprintf(&b, "  %s%s;\n", quote(nodeName(names, v)), attrs)
	}

	hops := tree.Hops()
	sort.Slice(hops, func(i, j int) bool {
		if hops[i].Processed != hops[j].Processed {
			return !hops[i].Processed
		}
		if hops[i].From != hops[j].From {
			return hops[i].From < hops[j].From
		}
		return hops[i].To < hops[j].To
	})
	for _, h := range hops {
		style := "dashed, color=gray40"
		if h.Processed {
			style = "solid, color=blue"
		}
		fmt.Fprintf(&b, "  %s -> %s [style=\"%s\"];\n",
			quote(nodeName(names, h.From)), quote(nodeName(names, h.To)), style)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
