package viz

import (
	"math/rand"
	"strings"
	"testing"

	"nfvmcast/internal/core"
	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/nfv"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/topology"
)

func TestWriteTopologyDOT(t *testing.T) {
	topo := topology.GEANT()
	var b strings.Builder
	if err := WriteTopologyDOT(&b, topo, []graph.NodeID{17, 25}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`graph "GEANT" {`,
		`"London" [shape=box`,
		`"Paris" [shape=box`,
		`"Amsterdam" -- "London"`,
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out[:400])
		}
	}
	if err := WriteTopologyDOT(&b, nil, nil); err == nil {
		t.Fatal("nil topology accepted")
	}
}

func TestWriteTreeDOT(t *testing.T) {
	topo, err := topology.WaxmanDegree(30, 4, 0.14, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	nw, err := sdn.NewNetwork(topo, sdn.DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	req := &multicast.Request{
		ID:            1,
		Source:        0,
		Destinations:  []graph.NodeID{5, 9},
		BandwidthMbps: 100,
		Chain:         nfv.MustChain(nfv.NAT),
	}
	sol, err := core.ApproMulti(nw, req, core.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteTreeDOT(&b, nw, nil, sol.Tree); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph pseudomulticast {",
		`"v0" [shape=house`, // the source
		"doublecircle",      // destinations
		"shape=box",         // server
		"->",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree DOT missing %q:\n%s", want, out)
		}
	}
	// Both stages appear.
	if !strings.Contains(out, "dashed") || !strings.Contains(out, "solid") {
		t.Fatalf("tree DOT missing stage styling:\n%s", out)
	}
	if err := WriteTreeDOT(&b, nil, nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
}

func TestQuoteEscapes(t *testing.T) {
	if got := quote(`a"b`); got != `"a\"b"` {
		t.Fatalf("quote = %s", got)
	}
}

func TestNodeNameFallback(t *testing.T) {
	if got := nodeName(nil, 3); got != "v3" {
		t.Fatalf("nodeName = %q, want v3", got)
	}
	if got := nodeName([]string{"x"}, 0); got != "x" {
		t.Fatalf("nodeName = %q, want x", got)
	}
	if got := nodeName([]string{""}, 0); got != "v0" {
		t.Fatalf("nodeName = %q, want v0 (empty label)", got)
	}
}
