package sim

import (
	"strings"
	"testing"
)

// quickConfig keeps test runs fast while still exercising every
// driver end to end.
func quickConfig() Config {
	return Config{
		Requests:     8,
		Seed:         42,
		K:            2,
		NetworkSizes: []int{30, 50},
		DestRatios:   []float64{0.1, 0.2},
	}
}

// checkFigure validates the structural invariants of a rendered
// figure: non-empty axes, aligned series, positive values where
// required.
func checkFigure(t *testing.T, f Figure, wantSeries int, positive bool) {
	t.Helper()
	if f.ID == "" || f.Title == "" {
		t.Fatalf("figure missing identity: %+v", f)
	}
	if len(f.X) == 0 {
		t.Fatalf("%s: empty x axis", f.ID)
	}
	if len(f.Series) != wantSeries {
		t.Fatalf("%s: %d series, want %d", f.ID, len(f.Series), wantSeries)
	}
	for _, s := range f.Series {
		if len(s.Y) != len(f.X) {
			t.Fatalf("%s/%s: %d points for %d x values", f.ID, s.Label, len(s.Y), len(f.X))
		}
		if positive {
			for i, y := range s.Y {
				if y <= 0 {
					t.Fatalf("%s/%s: non-positive value %v at x=%v", f.ID, s.Label, y, f.X[i])
				}
			}
		}
	}
	r := f.Render()
	if !strings.Contains(r, f.ID) {
		t.Fatalf("%s: render missing figure ID:\n%s", f.ID, r)
	}
	for _, s := range f.Series {
		if !strings.Contains(r, s.Label) {
			t.Fatalf("%s: render missing series %q", f.ID, s.Label)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := quickConfig()
	if err := good.validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Requests = 0
	if err := bad.validate(); err == nil {
		t.Fatal("requests=0 accepted")
	}
	bad = good
	bad.K = 0
	if err := bad.validate(); err == nil {
		t.Fatal("K=0 accepted")
	}
	bad = good
	bad.NetworkSizes = nil
	if err := bad.validate(); err == nil {
		t.Fatal("empty sizes accepted")
	}
}

func TestNetworkFor(t *testing.T) {
	for _, name := range []string{"waxman", "geant", "as1755", "as4755"} {
		nw, err := networkFor(name, 40, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if nw.NumNodes() < 2 || len(nw.Servers()) < 1 {
			t.Fatalf("%s: degenerate network", name)
		}
	}
	if _, err := networkFor("nope", 40, 1); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestFig5Structure(t *testing.T) {
	figs, err := Fig5(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 2 ratios -> 2 cost panels + 2 time panels.
	if len(figs) != 4 {
		t.Fatalf("fig5 panels = %d, want 4", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f, 3, true)
	}
	// Appro_Multi (series 0) never costs more than Alg_One_Server
	// (series 1) on the cost panels.
	for _, f := range figs[:2] {
		for i := range f.X {
			if f.Series[0].Y[i] > f.Series[1].Y[i]+1e-6 {
				t.Fatalf("%s: Appro_Multi %v > One_Server %v at x=%v",
					f.ID, f.Series[0].Y[i], f.Series[1].Y[i], f.X[i])
			}
		}
	}
}

func TestFig6Structure(t *testing.T) {
	figs, err := Fig6(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 6 {
		t.Fatalf("fig6 panels = %d, want 6 (3 topologies x cost+time)", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f, 3, true)
	}
}

func TestFig7Structure(t *testing.T) {
	figs, err := Fig7(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("fig7 panels = %d, want 2", len(figs))
	}
	checkFigure(t, figs[0], 2, true)
	checkFigure(t, figs[1], 2, true)
}

func TestFig8Structure(t *testing.T) {
	cfg := quickConfig()
	cfg.Requests = 40
	figs, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 {
		t.Fatalf("fig8 panels = %d, want 1", len(figs))
	}
	checkFigure(t, figs[0], 3, true)
	for _, s := range figs[0].Series {
		for i, y := range s.Y {
			if y > float64(cfg.Requests) {
				t.Fatalf("%s admitted %v > offered %d at x=%v",
					s.Label, y, cfg.Requests, figs[0].X[i])
			}
		}
	}
}

func TestFig9Structure(t *testing.T) {
	cfg := quickConfig()
	cfg.Requests = 100
	figs, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("fig9 panels = %d, want 2", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f, 3, true)
		// Admission counts are non-decreasing in arrivals.
		for _, s := range f.Series {
			for i := 1; i < len(s.Y); i++ {
				if s.Y[i] < s.Y[i-1] {
					t.Fatalf("%s/%s: admitted count decreased", f.ID, s.Label)
				}
			}
		}
	}
}

func TestAblationKStructure(t *testing.T) {
	figs, err := AblationK(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, figs[0], 3, true)
	if len(figs[0].X) != 2 { // K = 1..2 under quickConfig
		t.Fatalf("ablation K points = %d, want 2", len(figs[0].X))
	}
}

func TestAblationEvaluatorStructure(t *testing.T) {
	figs, err := AblationEvaluator(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, figs[0], 2, true)
}

func TestAblationCostModelStructure(t *testing.T) {
	cfg := quickConfig()
	cfg.Requests = 20
	figs, err := AblationCostModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, figs[0], 3, true)
}

func TestRunExperimentDispatch(t *testing.T) {
	if _, err := RunExperiment("nope", quickConfig()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	cfg := quickConfig()
	figs, err := RunExperiment("ablation-evaluator", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) == 0 {
		t.Fatal("no figures returned")
	}
	// Every listed experiment must have a non-empty description.
	for _, e := range Experiments {
		if e.Name == "" || e.Desc == "" || e.Run == nil {
			t.Fatalf("bad experiment entry %+v", e)
		}
	}
}

func TestFigureDeterminism(t *testing.T) {
	cfg := quickConfig()
	a, err := Fig8(Config{
		Requests: 20, Seed: cfg.Seed, K: 1,
		NetworkSizes: []int{30}, DestRatios: []float64{0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig8(Config{
		Requests: 20, Seed: cfg.Seed, K: 1,
		NetworkSizes: []int{30}, DestRatios: []float64{0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for si := range a[0].Series {
		for i := range a[0].Series[si].Y {
			if a[0].Series[si].Y[i] != b[0].Series[si].Y[i] {
				t.Fatal("equal-seed runs differ")
			}
		}
	}
}

func TestReplicateAggregates(t *testing.T) {
	cfg := Config{
		Requests: 10, Seed: 1, K: 1,
		NetworkSizes: []int{30}, DestRatios: []float64{0.1},
	}
	figs, err := Replicate("fig8", cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 {
		t.Fatalf("panels = %d, want 1", len(figs))
	}
	for _, s := range figs[0].Series {
		if len(s.YErr) != len(s.Y) {
			t.Fatalf("%s: YErr missing", s.Label)
		}
		for i, e := range s.YErr {
			if e < 0 {
				t.Fatalf("%s: negative CI at %d", s.Label, i)
			}
		}
	}
	// Rendering shows the ± form.
	if r := figs[0].Render(); !strings.Contains(r, "±") {
		t.Fatalf("render lacks ± markers:\n%s", r)
	}
}

func TestReplicateSingleRepPassthrough(t *testing.T) {
	cfg := Config{
		Requests: 5, Seed: 1, K: 1,
		NetworkSizes: []int{30}, DestRatios: []float64{0.1},
	}
	a, err := Replicate("ablation-evaluator", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunExperiment("ablation-evaluator", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Series[0].Y[0] != b[0].Series[0].Y[0] {
		t.Fatal("single repetition differs from direct run")
	}
	if _, err := Replicate("fig8", cfg, 0); err == nil {
		t.Fatal("0 repetitions accepted")
	}
}

func TestExtStretchStructure(t *testing.T) {
	figs, err := ExtStretch(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, figs[0], 3, true)
	for _, s := range figs[0].Series {
		for i, y := range s.Y {
			if y < 1-1e-9 {
				t.Fatalf("%s: stretch %v < 1 at x=%v", s.Label, y, figs[0].X[i])
			}
		}
	}
}

func TestExtChurnStructure(t *testing.T) {
	cfg := quickConfig()
	cfg.Requests = 30
	figs, err := ExtChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, figs[0], 3, true)
}

func TestExtErlangStructure(t *testing.T) {
	cfg := quickConfig()
	cfg.Requests = 15
	figs, err := ExtErlang(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, figs[0], 3, true)
	for _, s := range figs[0].Series {
		for i, y := range s.Y {
			if y > 1+1e-9 {
				t.Fatalf("%s: acceptance ratio %v > 1 at x=%v", s.Label, y, figs[0].X[i])
			}
		}
	}
}

func TestExtOnlineKStructure(t *testing.T) {
	cfg := quickConfig()
	cfg.Requests = 30
	figs, err := ExtOnlineK(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, figs[0], 2, true)
	if len(figs[0].X) != cfg.K {
		t.Fatalf("K points = %d, want %d", len(figs[0].X), cfg.K)
	}
}

func TestExtReoptimizeStructure(t *testing.T) {
	cfg := quickConfig()
	cfg.Requests = 40
	figs, err := ExtReoptimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, figs[0], 3, false)
	before, after := figs[0].Series[0], figs[0].Series[1]
	for i := range before.Y {
		if after.Y[i] > before.Y[i]+1e-6 {
			t.Fatalf("policy %v: cost rose after reoptimize", figs[0].X[i])
		}
	}
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.K != 3 || cfg.Requests < 1 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}

func TestSameShapeMismatches(t *testing.T) {
	base := []Figure{{
		ID: "A", X: []float64{1}, Series: []Series{{Label: "s", Y: []float64{1}}},
	}}
	cases := [][]Figure{
		{},
		{{ID: "B", X: []float64{1}, Series: []Series{{Label: "s", Y: []float64{1}}}}},
		{{ID: "A", X: []float64{1, 2}, Series: []Series{{Label: "s", Y: []float64{1}}}}},
		{{ID: "A", X: []float64{1}, Series: nil}},
		{{ID: "A", X: []float64{1}, Series: []Series{{Label: "t", Y: []float64{1}}}}},
		{{ID: "A", X: []float64{1}, Series: []Series{{Label: "s", Y: []float64{1, 2}}}}},
	}
	for i, c := range cases {
		if err := sameShape(base, c); err == nil {
			t.Fatalf("case %d: mismatch accepted", i)
		}
	}
	if err := sameShape(base, base); err != nil {
		t.Fatal(err)
	}
}

func TestExtOptGapStructure(t *testing.T) {
	cfg := quickConfig()
	cfg.Requests = 4
	figs, err := ExtOptGap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, figs[0], 4, true)
	// All ratios respect the theory bounds: KMB <= 2, Appro_Multi <= 2.
	for _, s := range figs[0].Series {
		for i, y := range s.Y {
			if y < 1-1e-9 {
				t.Fatalf("%s: ratio %v < 1 at x=%v", s.Label, y, figs[0].X[i])
			}
			if y > 2+1e-9 {
				t.Fatalf("%s: ratio %v exceeds the 2x bound at x=%v", s.Label, y, figs[0].X[i])
			}
		}
	}
}
