package sim

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"nfvmcast/internal/core"
	"nfvmcast/internal/engine"
	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	recov "nfvmcast/internal/recover"
	"nfvmcast/internal/sdn"
)

// The failure campaign behind ExtRecover and BENCH_recover.json: on
// GÉANT, admit an Online_CP workload, then repeatedly fail the most
// utilised non-bridge link, let the engine's recovery subsystem repair
// or shed the affected sessions inside Update, and restore the link.
// Two policies run the identical schedule: the default repair-first
// policy (γ = 1.5) and the γ = 0 baseline that forces every session
// through the full planner — the ablation isolating what local repair
// buys.

const recoveryRounds = 5

// recoveryPolicies are the campaign's two arms.
var recoveryPolicies = []struct {
	Label string
	Pol   recov.Policy
}{
	{"repair γ=1.5", recov.DefaultPolicy()},
	{"replan only (γ=0)", recov.Policy{Gamma: 0, RetryBudget: 2}},
}

// recoveryRound is one failure round's outcome under one policy.
type recoveryRound struct {
	Affected         int     `json:"affected"`
	Local            int     `json:"repaired_local"`
	Replanned        int     `json:"repaired_replan"`
	Shed             int     `json:"shed"`
	LiveAfter        int     `json:"live_after"`
	PerSessionMicros float64 `json:"recovery_us_per_session"`
}

// recoveryArm aggregates one policy's campaign.
type recoveryArm struct {
	Label             string          `json:"name"`
	Gamma             float64         `json:"gamma"`
	AdmittedStart     int             `json:"sessions_at_start"`
	Rounds            []recoveryRound `json:"rounds"`
	Affected          int             `json:"affected_total"`
	Repaired          int             `json:"repaired_total"`
	Shed              int             `json:"shed_total"`
	RepairSuccessRate float64         `json:"repair_success_rate"`
	PerSessionMicros  float64         `json:"recovery_us_per_session"`
}

// hottestRepairableLink returns the most utilised up-link that is not
// a bridge of the topology, or -1 when no such link carries load.
func hottestRepairableLink(nw *sdn.Network) graph.EdgeID {
	isBridge := make(map[graph.EdgeID]bool)
	for _, e := range graph.Bridges(nw.Graph()) {
		isBridge[e] = true
	}
	var hot graph.EdgeID = -1
	var hotUtil float64
	for e := 0; e < nw.NumEdges(); e++ {
		if u := nw.LinkUtilization(e); nw.LinkUp(e) && u > hotUtil && !isBridge[e] {
			hot, hotUtil = e, u
		}
	}
	return hot
}

// runRecoveryArm drives the fixed failure schedule under one policy.
func runRecoveryArm(cfg Config, label string, pol recov.Policy) (*recoveryArm, error) {
	nw, err := networkFor("geant", 0, cfg.Seed)
	if err != nil {
		return nil, err
	}
	p, err := plannerFor("Online_CP", nw)
	if err != nil {
		return nil, err
	}
	o := engineOptions(cfg, p.Name())
	o.Recovery = &pol
	eng := engine.New(nw, p, o)
	defer eng.Close()

	gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.OnlineGeneratorConfig(), cfg.Seed+13)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Requests; i++ {
		req, gerr := gen.Next()
		if gerr != nil {
			return nil, gerr
		}
		_, _ = eng.Admit(req)
	}

	arm := &recoveryArm{Label: label, Gamma: pol.Gamma, AdmittedStart: eng.LiveCount()}
	var totalDur time.Duration
	for r := 0; r < recoveryRounds; r++ {
		hot := hottestRepairableLink(nw)
		if hot == -1 {
			break
		}
		if err := eng.Update(func(n *sdn.Network) error { return n.SetLinkUp(hot, false) }); err != nil {
			return nil, err
		}
		rep := eng.LastRecovery()
		if rep == nil {
			return nil, fmt.Errorf("sim: recovery did not run in round %d", r)
		}
		round := recoveryRound{
			Affected:  len(rep.Outcomes),
			Local:     rep.Local,
			Replanned: rep.Replanned,
			Shed:      rep.Shed,
			LiveAfter: eng.LiveCount(),
		}
		if round.Affected > 0 {
			round.PerSessionMicros = float64(rep.Duration.Microseconds()) / float64(round.Affected)
		}
		arm.Rounds = append(arm.Rounds, round)
		arm.Affected += round.Affected
		arm.Repaired += rep.Repaired()
		arm.Shed += rep.Shed
		totalDur += rep.Duration
		if err := eng.Update(func(n *sdn.Network) error { return n.SetLinkUp(hot, true) }); err != nil {
			return nil, err
		}
	}
	if arm.Affected > 0 {
		arm.RepairSuccessRate = float64(arm.Repaired) / float64(arm.Affected)
		arm.PerSessionMicros = float64(totalDur.Microseconds()) / float64(arm.Affected)
	}
	return arm, nil
}

// ExtRecover is an extension experiment beyond the paper: the failure
// campaign above, reported as figures — surviving sessions after each
// failure round and mean recovery latency per affected session, for
// the repair-first policy against the forced-replan baseline.
func ExtRecover(cfg Config) ([]Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	survived := Figure{
		ID:     "ExtRecover",
		Title:  "sessions surviving link-failure rounds on GÉANT (Online_CP)",
		XLabel: "failure round",
		YLabel: "live sessions",
	}
	latency := Figure{
		ID:     "ExtRecoverLatency",
		Title:  "recovery latency per affected session on GÉANT",
		XLabel: "failure round",
		YLabel: "µs per session",
	}
	arms := make([]*recoveryArm, len(recoveryPolicies))
	if err := forEachIndex(len(recoveryPolicies), func(i int) error {
		arm, aerr := runRecoveryArm(cfg, recoveryPolicies[i].Label, recoveryPolicies[i].Pol)
		arms[i] = arm
		return aerr
	}); err != nil {
		return nil, err
	}
	for r := 0; r < len(arms[0].Rounds); r++ {
		survived.X = append(survived.X, float64(r+1))
		latency.X = append(latency.X, float64(r+1))
	}
	for _, arm := range arms {
		s := Series{Label: arm.Label}
		l := Series{Label: arm.Label}
		for _, round := range arm.Rounds {
			s.Y = append(s.Y, float64(round.LiveAfter))
			l.Y = append(l.Y, round.PerSessionMicros)
		}
		survived.Series = append(survived.Series, s)
		latency.Series = append(latency.Series, l)
	}
	return []Figure{survived, latency}, nil
}

// recoveryTiming is the paired micro-probe behind the headline bench
// number: for every session hit by the first failure, time a local
// re-route and a full re-plan on the identical released state.
type recoveryTiming struct {
	Sessions     int     `json:"sessions"`
	LocalNsOp    int64   `json:"local_repair_ns_per_session"`
	ReplanNsOp   int64   `json:"full_replan_ns_per_session"`
	SpeedupLocal float64 `json:"speedup_local_vs_replan"`
}

// runRecoveryTiming measures RepairReroute against the full planner
// path, paired per session over the campaign's failure schedule: each
// damaged session's allocation is released, both paths plan on the
// identical residual state, and the repair is rebound so later
// sessions see a consistent network.
func runRecoveryTiming(cfg Config) (*recoveryTiming, error) {
	nw, err := networkFor("geant", 0, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cp, err := core.NewOnlineCP(nw, core.DefaultCostModel(nw.NumNodes()))
	if err != nil {
		return nil, err
	}
	gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.OnlineGeneratorConfig(), cfg.Seed+13)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Requests; i++ {
		req, gerr := gen.Next()
		if gerr != nil {
			return nil, gerr
		}
		_, _ = cp.Admit(req)
	}

	arena := core.NewPlanArena()
	tm := &recoveryTiming{}
	var localNs, replanNs int64
	for r := 0; r < recoveryRounds; r++ {
		hot := hottestRepairableLink(nw)
		if hot == -1 {
			break
		}
		if err := nw.SetLinkUp(hot, false); err != nil {
			return nil, err
		}
		for _, id := range cp.AffectedLive() {
			sol, ok := cp.LiveSolution(id)
			if !ok || len(sol.Servers) != 1 {
				continue
			}
			if err := cp.ReleaseLive(id); err != nil {
				return nil, err
			}
			t0 := time.Now()
			rsol, rerr := core.RepairReroute(nw, sol.Request, sol.Servers[0], arena)
			t1 := time.Now()
			psol, perr := cp.PlanOnWith(nw, sol.Request, arena)
			t2 := time.Now()
			// A session contributes a paired sample when the local
			// re-route succeeded (so its timing reflects a full repair,
			// not an early infeasibility exit). The re-plan attempt is
			// timed whether or not it was admitted: a rejection still
			// pays the whole candidate-server sweep, which is the cost
			// being compared.
			if rerr == nil {
				tm.Sessions++
				localNs += t1.Sub(t0).Nanoseconds()
				replanNs += t2.Sub(t1).Nanoseconds()
			}
			// Rebind a replacement so later sessions see consistent
			// state; a replacement whose allocation no longer fits (a
			// sibling repair took the capacity) drops the session, as
			// an exhausted retry ladder would.
			switch {
			case rerr == nil && cp.Rebind(id, rsol) == nil:
			case perr == nil && cp.Rebind(id, psol) == nil:
			default:
				_ = cp.DropLive(id)
			}
		}
		if err := nw.SetLinkUp(hot, true); err != nil {
			return nil, err
		}
	}
	if tm.Sessions == 0 {
		return nil, fmt.Errorf("sim: failure campaign produced no paired repair/replan sample")
	}
	tm.LocalNsOp = localNs / int64(tm.Sessions)
	tm.ReplanNsOp = replanNs / int64(tm.Sessions)
	tm.SpeedupLocal = float64(replanNs) / float64(localNs)
	return tm, nil
}

// recoveryBench is the BENCH_recover.json document, following the
// repo's unified BENCH_*.json schema (same top-level keys as
// BENCH_plan.json): results is a flat list of named entries, each
// with ns_per_op plus free-form numeric metrics.
type recoveryBench struct {
	Benchmark   string `json:"benchmark"`
	Workload    string `json:"workload"`
	Command     string `json:"command"`
	Date        string `json:"date"`
	Environment struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		Note       string `json:"note"`
	} `json:"environment"`
	Results          []any  `json:"results"`
	CorrectnessGates string `json:"correctness_gates"`
	Mechanism        string `json:"mechanism"`
}

// recoveryTimingEntry is one arm of the paired repair/replan probe as
// a unified-schema results entry.
type recoveryTimingEntry struct {
	Name     string  `json:"name"`
	NsPerOp  int64   `json:"ns_per_op"`
	Sessions int     `json:"sessions"`
	Speedup  float64 `json:"speedup_local_vs_replan,omitempty"`
}

// recoveryArmEntry wraps one campaign arm with the schema's required
// ns_per_op (the arm's mean recovery time per affected session); the
// arm's own "name" field serves as the entry name.
type recoveryArmEntry struct {
	NsPerOp int64 `json:"ns_per_op"`
	recoveryArm
}

// WriteRecoveryBench runs the recovery campaign plus the paired
// repair-vs-replan timing probe and writes results/BENCH_recover.json
// (under dir), returning the written path.
func WriteRecoveryBench(dir string, cfg Config) (string, error) {
	if err := cfg.validate(); err != nil {
		return "", err
	}
	tm, err := runRecoveryTiming(cfg)
	if err != nil {
		return "", err
	}
	doc := &recoveryBench{
		Benchmark: "RecoveryCampaign + paired RepairReroute/PlanOnWith probe",
		Workload: fmt.Sprintf(
			"GÉANT, Online_CP, %d arrivals (seed %d); %d rounds of failing the most utilised non-bridge link, recovering inside engine.Update, restoring; arms: repair-first γ=1.5 vs forced re-plan γ=0; timing probe pairs one local re-route and one full re-plan per affected session on the identical released state",
			cfg.Requests, cfg.Seed, recoveryRounds),
		Command: "nfvsim -experiment ext-recover -json results/",
		Date:    time.Now().Format("2006-01-02"),
	}
	doc.Environment.GOOS = runtime.GOOS
	doc.Environment.GOARCH = runtime.GOARCH
	doc.Environment.GOMAXPROCS = runtime.GOMAXPROCS(0)
	doc.Environment.Note = "wall-clock timings; repair_success_rate and mode counts are deterministic per seed, latencies vary per machine"
	doc.Results = append(doc.Results,
		recoveryTimingEntry{Name: "probe/local_repair", NsPerOp: tm.LocalNsOp, Sessions: tm.Sessions},
		recoveryTimingEntry{Name: "probe/full_replan", NsPerOp: tm.ReplanNsOp, Sessions: tm.Sessions,
			Speedup: tm.SpeedupLocal})
	for _, pc := range recoveryPolicies {
		arm, aerr := runRecoveryArm(cfg, pc.Label, pc.Pol)
		if aerr != nil {
			return "", aerr
		}
		doc.Results = append(doc.Results, recoveryArmEntry{
			NsPerOp:     int64(arm.PerSessionMicros * 1e3),
			recoveryArm: *arm,
		})
	}
	doc.CorrectnessGates = "TestRecoveryDeterminismOracle (fingerprints byte-identical across engine workers 1/4/8), TestRecoveryRepairCostBound (γ acceptance), TestZeroGammaForcesReplan (baseline arm), recover/engine suites under -race"
	doc.Mechanism = "local repair pins the VM placement and rebuilds one Steiner tree over {s_k, v} ∪ D_k (one KMB run, |D|+2 Dijkstras); a full re-plan sweeps every candidate server through the exponential-cost planner, which is why the pinned path wins"

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_recover.json")
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
