package sim

import (
	"fmt"

	"nfvmcast/internal/core"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// ExtReoptimize is an extension experiment beyond the paper: after a
// monitoring period of online admissions, a Reoptimize maintenance
// pass re-places the admitted sessions with Appro_Multi_Cap on the
// residual network. The figure reports, per admission policy, the
// total operational cost before and after the pass — quantifying how
// much admission-order myopia costs and how much of it batch
// re-placement recovers.
func ExtReoptimize(cfg Config) ([]Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.NetworkSizes[len(cfg.NetworkSizes)/2]
	policies := []string{"Online_CP", "SP", "SP_Static"}
	fig := Figure{
		ID: "ExtReoptimize",
		Title: fmt.Sprintf(
			"total session cost before/after re-optimisation (n = %d, %d arrivals)",
			n, cfg.Requests),
		XLabel: "policy(0=CP,1=SP,2=SPstatic)",
		YLabel: "total operational cost / % saved",
	}
	before := Series{Label: "before"}
	after := Series{Label: "after"}
	savedPct := Series{Label: "% saved"}
	for pi, policy := range policies {
		eng, err := newChurnEngine(cfg, policy, "waxman", n, cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		defer eng.Close()
		gen, err := multicast.NewGenerator(n, multicast.OnlineGeneratorConfig(), cfg.Seed+61)
		if err != nil {
			return nil, err
		}
		var sessions []*core.Solution
		for i := 0; i < cfg.Requests; i++ {
			req, gerr := gen.Next()
			if gerr != nil {
				return nil, gerr
			}
			if sol, aerr := eng.Admit(req); aerr == nil {
				sessions = append(sessions, sol)
			} else if !core.IsRejection(aerr) {
				return nil, aerr
			}
		}
		if len(sessions) == 0 {
			return nil, fmt.Errorf("sim: reoptimize fixture admitted nothing for %s", policy)
		}
		// The maintenance pass mutates the network wholesale, so it runs
		// on the engine's writer goroutine; the new placements are then
		// recorded so later departures release the right allocations.
		var (
			reopt []*core.Solution
			saved float64
		)
		err = eng.Update(func(nw *sdn.Network) error {
			var uerr error
			reopt, _, saved, uerr = core.Reoptimize(nw, sessions, core.Options{K: cfg.K})
			return uerr
		})
		if err != nil {
			return nil, err
		}
		for _, sol := range reopt {
			if rerr := eng.Replace(sol.Request.ID, sol); rerr != nil {
				return nil, rerr
			}
		}
		var pre, post float64
		for i := range sessions {
			pre += sessions[i].OperationalCost
			post += reopt[i].OperationalCost
		}
		fig.X = append(fig.X, float64(pi))
		before.Y = append(before.Y, pre)
		after.Y = append(after.Y, post)
		savedPct.Y = append(savedPct.Y, 100*saved/pre)
	}
	fig.Series = []Series{before, after, savedPct}
	return []Figure{fig}, nil
}
