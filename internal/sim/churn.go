package sim

import (
	"fmt"

	"nfvmcast/internal/core"
	"nfvmcast/internal/engine"
	"nfvmcast/internal/multicast"
)

// newChurnEngine builds a policy's engine over a fresh network for the
// departure-driven experiments. The caller owns the engine and must
// Close it.
func newChurnEngine(cfg Config, name, topoName string, n int, seed int64) (*engine.Engine, error) {
	nw, err := networkFor(topoName, n, seed)
	if err != nil {
		return nil, err
	}
	return newEngine(name, nw, cfg)
}

// ExtChurn is an extension experiment beyond the paper: sessions have
// finite lifetimes (each departs a fixed number of arrivals after
// admission), and the metric is the steady-state number of concurrent
// live sessions each policy sustains. It shows the online algorithms
// operating as long-running systems rather than over one monitoring
// period.
func ExtChurn(cfg Config) ([]Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.NetworkSizes[len(cfg.NetworkSizes)/2]
	arrivals := 6 * cfg.Requests
	lifetime := cfg.Requests / 2
	if lifetime < 10 {
		lifetime = 10
	}
	checkEvery := arrivals / 8
	if checkEvery < 1 {
		checkEvery = 1
	}
	fig := Figure{
		ID: "ExtChurn",
		Title: fmt.Sprintf(
			"live sessions under churn (n = %d, lifetime = %d arrivals)", n, lifetime),
		XLabel: "arrivals",
		YLabel: "concurrent live sessions",
	}
	for x := checkEvery; x <= arrivals; x += checkEvery {
		fig.X = append(fig.X, float64(x))
	}
	for _, name := range onlineSeries {
		adm, err := newChurnEngine(cfg, name, "waxman", n, cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		defer adm.Close()
		gen, err := multicast.NewGenerator(n, multicast.OnlineGeneratorConfig(), cfg.Seed+13)
		if err != nil {
			return nil, err
		}
		type liveEntry struct {
			id       int
			departAt int
		}
		var live []liveEntry
		s := Series{Label: name}
		for i := 1; i <= arrivals; i++ {
			keep := live[:0]
			for _, le := range live {
				if le.departAt <= i {
					if _, derr := adm.Depart(le.id); derr != nil {
						return nil, derr
					}
				} else {
					keep = append(keep, le)
				}
			}
			live = keep
			req, gerr := gen.Next()
			if gerr != nil {
				return nil, gerr
			}
			if _, aerr := adm.Admit(req); aerr == nil {
				live = append(live, liveEntry{id: req.ID, departAt: i + lifetime})
			} else if !core.IsRejection(aerr) {
				return nil, aerr
			}
			if i%checkEvery == 0 {
				s.Y = append(s.Y, float64(adm.LiveCount()))
			}
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}, nil
}
