package sim

import (
	"fmt"

	"nfvmcast/internal/core"
	"nfvmcast/internal/multicast"
)

// ExtStretch is an extension experiment beyond the paper: the latency
// price of NFV steering. For each algorithm it reports the average
// *stretch* — worst-destination delivery hops (including the service
// chain detour and pseudo-multicast back-tracking) divided by the
// plain shortest-path distance — across network sizes.
func ExtStretch(cfg Config) ([]Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	fig := Figure{
		ID:     "ExtStretch",
		Title:  "latency stretch of NFV steering vs network size",
		XLabel: "n",
		YLabel: "avg worst-destination stretch",
	}
	type point map[string]float64
	points := make([]point, len(cfg.NetworkSizes))
	err := forEachIndex(len(points), func(pi int) error {
		n := cfg.NetworkSizes[pi]
		nw, err := networkFor("waxman", n, cfg.Seed+int64(n))
		if err != nil {
			return err
		}
		gen, err := multicast.NewGenerator(nw.NumNodes(),
			multicast.DefaultGeneratorConfig(), cfg.Seed+int64(n)+3)
		if err != nil {
			return err
		}
		sums := map[string]float64{}
		counts := map[string]int{}
		for i := 0; i < cfg.Requests; i++ {
			req, gerr := gen.Next()
			if gerr != nil {
				return gerr
			}
			for _, alg := range offlineAlgorithms {
				var sol *core.Solution
				var aerr error
				switch alg {
				case "Appro_Multi":
					sol, aerr = core.ApproMulti(nw, req, core.Options{K: cfg.K, Workers: cfg.Workers})
				case "Alg_One_Server":
					sol, aerr = core.AlgOneServer(nw, req, false)
				case "One_Server_Nearest":
					sol, aerr = core.AlgOneServerNearest(nw, req, false)
				}
				if aerr != nil {
					continue
				}
				stretch, serr := sol.Tree.Stretch(nw.Graph())
				if serr != nil {
					return serr
				}
				sums[alg] += stretch
				counts[alg]++
			}
		}
		p := point{}
		for _, alg := range offlineAlgorithms {
			if counts[alg] == 0 {
				return fmt.Errorf("sim: stretch point n=%d solved nothing for %s", n, alg)
			}
			p[alg] = sums[alg] / float64(counts[alg])
		}
		points[pi] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, n := range cfg.NetworkSizes {
		fig.X = append(fig.X, float64(n))
	}
	for _, alg := range offlineAlgorithms {
		s := Series{Label: alg}
		for pi := range cfg.NetworkSizes {
			s.Y = append(s.Y, points[pi][alg])
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}, nil
}
