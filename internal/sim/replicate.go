package sim

import (
	"fmt"

	"nfvmcast/internal/stats"
)

// Replicate runs a named experiment reps times with consecutive seeds
// and aggregates the series point-wise: Y becomes the mean across
// repetitions and YErr the 95% confidence half-width. All repetitions
// must produce structurally identical figures (same panels, x-axes
// and series), which the per-experiment drivers guarantee for a fixed
// Config shape.
func Replicate(name string, cfg Config, reps int) ([]Figure, error) {
	if reps < 1 {
		return nil, fmt.Errorf("sim: need at least 1 repetition, got %d", reps)
	}
	if reps == 1 {
		return RunExperiment(name, cfg)
	}
	runs := make([][]Figure, reps)
	err := forEachIndex(reps, func(r int) error {
		c := cfg
		c.Seed = cfg.Seed + int64(r)*1000003 // spread seeds far apart
		figs, rerr := RunExperiment(name, c)
		if rerr != nil {
			return fmt.Errorf("repetition %d: %w", r, rerr)
		}
		runs[r] = figs
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeRuns(runs)
}

// mergeRuns aggregates structurally identical figure sets.
func mergeRuns(runs [][]Figure) ([]Figure, error) {
	base := runs[0]
	for r, figs := range runs[1:] {
		if err := sameShape(base, figs); err != nil {
			return nil, fmt.Errorf("sim: repetition %d: %w", r+1, err)
		}
	}
	out := make([]Figure, len(base))
	for fi := range base {
		f := base[fi]
		merged := Figure{
			ID:     f.ID,
			Title:  f.Title,
			XLabel: f.XLabel,
			X:      append([]float64(nil), f.X...),
			YLabel: f.YLabel,
		}
		for si := range f.Series {
			s := Series{
				Label: f.Series[si].Label,
				Y:     make([]float64, len(f.X)),
				YErr:  make([]float64, len(f.X)),
			}
			for i := range f.X {
				sample := make([]float64, 0, len(runs))
				for _, figs := range runs {
					sample = append(sample, figs[fi].Series[si].Y[i])
				}
				summary, err := stats.Summarize(sample)
				if err != nil {
					return nil, err
				}
				s.Y[i] = summary.Mean
				s.YErr[i] = stats.CI95HalfWidth(summary)
			}
			merged.Series = append(merged.Series, s)
		}
		out[fi] = merged
	}
	return out, nil
}

// sameShape verifies two figure sets are point-wise comparable.
func sameShape(a, b []Figure) error {
	if len(a) != len(b) {
		return fmt.Errorf("figure count %d != %d", len(b), len(a))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return fmt.Errorf("figure %d: ID %q != %q", i, b[i].ID, a[i].ID)
		}
		if len(a[i].X) != len(b[i].X) {
			return fmt.Errorf("%s: x-axis length %d != %d", a[i].ID, len(b[i].X), len(a[i].X))
		}
		if len(a[i].Series) != len(b[i].Series) {
			return fmt.Errorf("%s: series count %d != %d", a[i].ID, len(b[i].Series), len(a[i].Series))
		}
		for si := range a[i].Series {
			if a[i].Series[si].Label != b[i].Series[si].Label {
				return fmt.Errorf("%s: series %d label %q != %q",
					a[i].ID, si, b[i].Series[si].Label, a[i].Series[si].Label)
			}
			if len(a[i].Series[si].Y) != len(b[i].Series[si].Y) {
				return fmt.Errorf("%s/%s: point count differs", a[i].ID, a[i].Series[si].Label)
			}
		}
	}
	return nil
}
