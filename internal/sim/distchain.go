package sim

import (
	"fmt"

	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// distChainSeries are the series of the distributed-chain extension
// figure: the paper's consolidated Online_CP against the registry's
// Dist_CP (chain split across up to SplitLimit servers) and Reconf_CP
// (Online_CP plus drift-triggered migration of admitted trees).
var distChainSeries = []string{"Online_CP", "Dist_CP", "Reconf_CP"}

// distChainRun feeds an identical arrival sequence to one policy's
// engine and returns the cumulative admitted count after every
// request. Every tick arrivals it drives a no-op Update — a
// maintenance heartbeat that gives reconfiguring planners (Reconf_CP)
// their migration pass. The heartbeat runs for every series, not just
// the reconfiguring one, so the comparison stays fair.
func distChainRun(cfg Config, name, topoName string, n, requests, tick int, seed int64) ([]int, error) {
	nw, err := networkFor(topoName, n, seed)
	if err != nil {
		return nil, err
	}
	eng, err := newEngine(name, nw, cfg)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.OnlineGeneratorConfig(), seed+13)
	if err != nil {
		return nil, err
	}
	counts := make([]int, requests)
	for i := 0; i < requests; i++ {
		req, gerr := gen.Next()
		if gerr != nil {
			return nil, gerr
		}
		// Rejections are part of the protocol, not errors of the run.
		_, _ = eng.Admit(req)
		if tick > 0 && (i+1)%tick == 0 {
			if uerr := eng.Update(func(*sdn.Network) error { return nil }); uerr != nil {
				return nil, uerr
			}
		}
		counts[i] = eng.AdmittedCount()
	}
	return counts, nil
}

// ExtDistChain is an extension experiment beyond the paper: admitted
// requests over a monitoring period for consolidated Online_CP versus
// the distributed-chain Dist_CP and the reconfiguring Reconf_CP, on
// (a) a capacity-tight GÉANT arm — three times the usual monitoring
// period on 40 switches, so consolidated placement exhausts
// single-server compute headroom and splitting the chain is the only
// way to keep admitting — and (b) a mid-size random network at the
// standard load, where the policies should roughly tie. The paper
// leaves distributed placement as an open problem (§VII); this figure
// quantifies what the relaxation buys.
func ExtDistChain(cfg Config) ([]Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.NetworkSizes[len(cfg.NetworkSizes)/2]
	arms := []struct {
		label    string
		topo     string
		n        int
		requests int
	}{
		{"GEANT (capacity-tight)", "geant", 0, 3 * cfg.Requests},
		{fmt.Sprintf("waxman n=%d", n), "waxman", n, cfg.Requests},
	}
	var figs []Figure
	for ai, arm := range arms {
		checkEvery := 50
		if arm.requests < checkEvery {
			checkEvery = arm.requests/6 + 1
		}
		fig := Figure{
			ID:     fmt.Sprintf("ExtDistChain(%c)", 'a'+ai),
			Title:  fmt.Sprintf("admitted requests vs arrivals, %s", arm.label),
			XLabel: "requests",
			YLabel: "admitted requests",
		}
		for x := checkEvery; x <= arm.requests; x += checkEvery {
			fig.X = append(fig.X, float64(x))
		}
		for _, name := range distChainSeries {
			counts, err := distChainRun(cfg, name, arm.topo, arm.n, arm.requests, checkEvery, cfg.Seed+int64(ai))
			if err != nil {
				return nil, err
			}
			s := Series{Label: name}
			for x := checkEvery; x <= arm.requests; x += checkEvery {
				s.Y = append(s.Y, float64(counts[x-1]))
			}
			fig.Series = append(fig.Series, s)
		}
		figs = append(figs, fig)
	}
	return figs, nil
}
