// Package sim is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§VI): workload generation,
// per-figure parameter sweeps, metric collection (operational cost,
// running time, admitted requests) and plain-text rendering of the
// resulting series.
//
// Figure index (see DESIGN.md §3):
//
//	Fig5 — Appro_Multi vs Alg_One_Server on random networks
//	       (cost and running time vs network size, one panel per
//	       destination ratio)
//	Fig6 — the same algorithms on GÉANT and AS1755 vs the ratio
//	Fig7 — Appro_Multi_Cap under resource capacity constraints
//	Fig8 — Online_CP vs SP: admitted requests vs network size
//	Fig9 — Online_CP vs SP on GÉANT / AS1755 vs number of requests
//	AblationK, AblationEvaluator, AblationCostModel — design-choice
//	       sweeps from DESIGN.md §4
//	ExtChurn, ExtErlang, ExtOnlineK, ExtReoptimize, ExtStretch,
//	ExtOptGap — extension experiments beyond the paper (DESIGN.md §3)
//
// Replicate runs any experiment across several seeds and aggregates
// mean ± 95% CI per point.
package sim

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"nfvmcast/internal/engine"
	"nfvmcast/internal/obs"
	"nfvmcast/internal/parallel"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/topology"
)

// forEachIndex runs fn(0..n-1) concurrently, bounded by GOMAXPROCS
// workers (the shared internal/parallel pool), and returns the first
// error (by index order). Sweep points are independent — each builds
// its own seeded network and workload — so parallel execution leaves
// results bit-identical to sequential runs.
func forEachIndex(n int, fn func(i int) error) error {
	return parallel.ForEachIndex(parallel.Degree(-1), n, fn)
}

// Config controls an experiment run.
type Config struct {
	// Requests is the number of requests averaged per measurement
	// point (the paper uses 1000 offline and 300 online; the defaults
	// here are sized so a full run completes in minutes).
	Requests int
	// Seed drives all randomness; runs are reproducible per seed.
	Seed int64
	// K is the server budget for Appro_Multi (paper default 3).
	K int
	// NetworkSizes are the random-network sizes swept by Figs. 5, 7
	// and 8.
	NetworkSizes []int
	// DestRatios are the D_max/|V| panels of Fig. 5 and the x-axis of
	// Fig. 6.
	DestRatios []float64
	// Workers is passed through to core.Options.Workers for every
	// Appro_Multi solve. The default 0 keeps the per-solve evaluation
	// sequential, which is right for the harness: forEachIndex already
	// saturates the CPUs across sweep points, and nesting a per-CPU
	// pool inside each solve would only oversubscribe. Set it > 1 (or
	// negative for per-CPU) when measuring single solves.
	Workers int
	// EngineWorkers is the planning concurrency of the admission
	// engine the online drivers (Figs. 8-9, churn, Erlang, online-K,
	// Fig. 7's sequential admission) run through. The default 0 keeps
	// every engine in sequential mode, whose decisions are
	// byte-identical to the pre-engine admitters (the determinism
	// oracle in internal/engine pins this) — so published figures do
	// not change. Like Workers, raise it only when measuring a single
	// run: the harness already saturates the CPUs across sweep points.
	EngineWorkers int
	// Metrics, when non-nil, is the observability registry every
	// admission engine of the run attaches to: per-policy lifecycle
	// counters and reason-labelled rejection counts accumulate across
	// all sweep points of the experiment (instruments are
	// concurrency-safe, so the parallel harness needs no extra
	// coordination). nil — the default — keeps the drivers
	// uninstrumented. Write the accumulated state out with
	// WriteMetricsSummary.
	Metrics *obs.Registry
}

// DefaultConfig returns the evaluation's parameters with request
// counts sized for an interactive run.
func DefaultConfig() Config {
	return Config{
		Requests:     100,
		Seed:         42,
		K:            3,
		NetworkSizes: []int{50, 100, 150, 200, 250},
		DestRatios:   []float64{0.05, 0.10, 0.15, 0.20},
	}
}

func (c Config) validate() error {
	if c.Requests < 1 {
		return fmt.Errorf("sim: need at least 1 request per point, got %d", c.Requests)
	}
	if c.K < 1 {
		return fmt.Errorf("sim: need K >= 1, got %d", c.K)
	}
	if len(c.NetworkSizes) == 0 || len(c.DestRatios) == 0 {
		return fmt.Errorf("sim: empty sweep axes")
	}
	return nil
}

// Series is one labelled curve of a figure. YErr, when non-nil, holds
// the 95% confidence half-width per point (set by Replicate).
type Series struct {
	Label string    `json:"label"`
	Y     []float64 `json:"y"`
	YErr  []float64 `json:"yErr,omitempty"`
}

// Figure is a reproduced figure panel: an x-axis plus one or more
// series over it.
type Figure struct {
	ID     string    `json:"id"`
	Title  string    `json:"title"`
	XLabel string    `json:"xLabel"`
	X      []float64 `json:"x"`
	YLabel string    `json:"yLabel"`
	Series []Series  `json:"series"`
}

// Render formats the figure as an aligned text table.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-10s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %22s", s.Label)
	}
	fmt.Fprintf(&b, "    [%s]\n", f.YLabel)
	for i, x := range f.X {
		fmt.Fprintf(&b, "%-10.4g", x)
		for _, s := range f.Series {
			switch {
			case i >= len(s.Y):
				fmt.Fprintf(&b, "  %22s", "-")
			case i < len(s.YErr):
				fmt.Fprintf(&b, "  %22s", fmt.Sprintf("%.2f±%.2f", s.Y[i], s.YErr[i]))
			default:
				fmt.Fprintf(&b, "  %22.2f", s.Y[i])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// engineOptions returns the admission-engine options a driver should
// run a policy with under cfg: the configured planning concurrency
// plus, when cfg.Metrics is set, a policy-labelled observability
// binding. Engines of the same policy across sweep points share the
// registry's instruments, so counters aggregate per policy over the
// whole run.
func engineOptions(cfg Config, policy string) engine.Options {
	o := engine.Options{Workers: cfg.EngineWorkers}
	if cfg.Metrics != nil {
		o.Obs = obs.NewAdmissionObs(cfg.Metrics, policy, obs.AdmissionObsOptions{})
	}
	return o
}

// WriteMetricsSummary writes the run's accumulated metrics registry as
// one JSON document named metrics-<experiment>.json under dir
// (creating dir if needed) and returns the written path.
func WriteMetricsSummary(dir, experiment string, reg *obs.Registry) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "metrics-"+experiment+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	werr := reg.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", fmt.Errorf("sim: write metrics summary %s: %w", path, werr)
	}
	return path, nil
}

// networkFor builds the evaluation network for a named topology:
// "waxman" (with the given size), "geant", "as1755" or "as4755".
// Random networks use the GT-ITM-style degree-targeted Waxman model.
func networkFor(name string, n int, seed int64) (*sdn.Network, error) {
	var (
		topo *topology.Topology
		err  error
	)
	switch name {
	case "waxman":
		topo, err = topology.WaxmanDegree(n, topology.DefaultAvgDegree, 0.14, seed)
	case "geant":
		topo = topology.GEANT()
	case "as1755":
		topo = topology.AS1755()
	case "as4755":
		topo = topology.AS4755()
	case "fattree":
		// Arity chosen so node count is near n: k=8 gives 80 switches.
		topo, err = topology.FatTree(8, seed)
	default:
		return nil, fmt.Errorf("sim: unknown topology %q", name)
	}
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	return sdn.NewNetwork(topo, sdn.DefaultConfig(), rng)
}
