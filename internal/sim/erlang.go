package sim

import (
	"container/heap"
	"fmt"

	"nfvmcast/internal/core"
	"nfvmcast/internal/multicast"
)

// ExtErlang is an extension experiment beyond the paper: a classic
// loss-system curve. Sessions arrive as a Poisson process and hold
// resources for exponential durations; the figure plots the
// steady-state acceptance ratio of each admission policy against the
// offered load (in Erlangs). The event loop interleaves arrivals and
// departures in timestamp order.
func ExtErlang(cfg Config) ([]Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.NetworkSizes[len(cfg.NetworkSizes)/2]
	arrivals := 4 * cfg.Requests
	loads := []float64{10, 20, 40, 80, 160}
	fig := Figure{
		ID: "ExtErlang",
		Title: fmt.Sprintf(
			"acceptance ratio vs offered load (n = %d, %d Poisson arrivals)", n, arrivals),
		XLabel: "Erlangs",
		X:      loads,
		YLabel: "accepted fraction",
	}
	type cell struct{ ratio float64 }
	results := make([]cell, len(loads)*len(onlineSeries))
	err := forEachIndex(len(results), func(i int) error {
		li, ai := i/len(onlineSeries), i%len(onlineSeries)
		ratio, rerr := erlangRun(cfg, onlineSeries[ai], n, loads[li], arrivals, cfg.Seed+int64(li))
		if rerr != nil {
			return rerr
		}
		results[i] = cell{ratio: ratio}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ai, name := range onlineSeries {
		s := Series{Label: name}
		for li := range loads {
			s.Y = append(s.Y, results[li*len(onlineSeries)+ai].ratio)
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}, nil
}

// departure is a scheduled session end.
type departure struct {
	at    float64
	reqID int
}

// departureQueue is a min-heap on departure time.
type departureQueue []departure

func (q departureQueue) Len() int            { return len(q) }
func (q departureQueue) Less(i, j int) bool  { return q[i].at < q[j].at }
func (q departureQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *departureQueue) Push(x interface{}) { *q = append(*q, x.(departure)) }
func (q *departureQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// erlangRun simulates one policy at one offered load and returns the
// acceptance ratio. The mean holding time is fixed at 1 hour, so the
// arrival rate equals the offered load.
func erlangRun(cfg Config, policy string, n int, erlangs float64, arrivals int, seed int64) (float64, error) {
	ca, err := newChurnEngine(cfg, policy, "waxman", n, seed)
	if err != nil {
		return 0, err
	}
	defer ca.Close()
	gen, err := multicast.NewPoissonGenerator(n, multicast.OnlineGeneratorConfig(),
		multicast.PoissonConfig{ArrivalsPerHour: erlangs, MeanHoldingHours: 1}, seed+29)
	if err != nil {
		return 0, err
	}
	var pending departureQueue
	heap.Init(&pending)
	accepted := 0
	for i := 0; i < arrivals; i++ {
		tr, gerr := gen.Next()
		if gerr != nil {
			return 0, gerr
		}
		// Process departures due before this arrival.
		for pending.Len() > 0 && pending[0].at <= tr.ArrivalHours {
			d := heap.Pop(&pending).(departure)
			if _, derr := ca.Depart(d.reqID); derr != nil {
				return 0, derr
			}
		}
		if _, aerr := ca.Admit(tr.Request); aerr == nil {
			accepted++
			heap.Push(&pending, departure{at: tr.DepartureHours, reqID: tr.ID})
		} else if !core.IsRejection(aerr) {
			return 0, aerr
		}
	}
	return float64(accepted) / float64(arrivals), nil
}
