package sim

import (
	"fmt"

	"nfvmcast/internal/core"
	"nfvmcast/internal/engine"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// onlineSeries are the figure series in display order: the paper's
// Online_CP, the SP heuristic as described (residual pruning +
// re-routing), and the static-routes SP whose behaviour matches the
// paper's reported SP numbers (see EXPERIMENTS.md).
var onlineSeries = []string{"Online_CP", "SP", "SP_Static"}

// plannerFor builds the pure planning policy behind an online series
// label, resolved from the planner registry.
func plannerFor(name string, nw *sdn.Network) (core.Planner, error) {
	p, err := core.NewPlanner(name, core.PlannerOptions{Nodes: nw.NumNodes()})
	if err != nil {
		return nil, fmt.Errorf("sim: unknown online algorithm %q", name)
	}
	return p, nil
}

// newEngine builds the admission engine every online driver runs
// through. cfg.EngineWorkers <= 1 (the harness default) selects
// sequential mode, which reproduces the direct admitters
// decision-for-decision; the harness already parallelises across sweep
// points, so per-engine concurrency is only worth enabling when
// measuring a single run. When cfg.Metrics is set the engine reports
// into it under the planner's policy label. Callers own the engine and
// must Close it.
func newEngine(name string, nw *sdn.Network, cfg Config) (*engine.Engine, error) {
	p, err := plannerFor(name, nw)
	if err != nil {
		return nil, err
	}
	return engine.New(nw, p, engineOptions(cfg, p.Name())), nil
}

// onlineRun feeds an identical request sequence to one policy's engine
// over its own copy of the network and returns the admitted count after
// every request.
func onlineRun(cfg Config, name, topoName string, n, requests int, seed int64) ([]int, error) {
	nw, err := networkFor(topoName, n, seed)
	if err != nil {
		return nil, err
	}
	eng, err := newEngine(name, nw, cfg)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.OnlineGeneratorConfig(), seed+13)
	if err != nil {
		return nil, err
	}
	counts := make([]int, requests)
	for i := 0; i < requests; i++ {
		req, gerr := gen.Next()
		if gerr != nil {
			return nil, gerr
		}
		// Rejections are part of the protocol, not errors of the run.
		_, _ = eng.Admit(req)
		counts[i] = eng.AdmittedCount()
	}
	return counts, nil
}

// Fig8 reproduces Figure 8: the number of requests admitted by
// Online_CP and the SP baselines over a monitoring period of
// cfg.Requests arrivals (paper: 300), for each random-network size.
func Fig8(cfg Config) ([]Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	fig := Figure{
		ID:     "Fig8(a)",
		Title:  fmt.Sprintf("admitted requests after %d arrivals vs network size", cfg.Requests),
		XLabel: "n",
		YLabel: "admitted requests",
	}
	// Every (size, algorithm) run is independent; execute in parallel.
	finals := make([]float64, len(cfg.NetworkSizes)*len(onlineSeries))
	err := forEachIndex(len(finals), func(i int) error {
		ni, ai := i/len(onlineSeries), i%len(onlineSeries)
		n := cfg.NetworkSizes[ni]
		counts, rerr := onlineRun(cfg, onlineSeries[ai], "waxman", n, cfg.Requests, cfg.Seed+int64(n))
		if rerr != nil {
			return rerr
		}
		finals[i] = float64(counts[len(counts)-1])
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, n := range cfg.NetworkSizes {
		fig.X = append(fig.X, float64(n))
	}
	for ai, name := range onlineSeries {
		s := Series{Label: name}
		for ni := range cfg.NetworkSizes {
			s.Y = append(s.Y, finals[ni*len(onlineSeries)+ai])
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}, nil
}

// Fig9 reproduces Figure 9: admitted requests vs the number of
// arrivals (50..cfg.Requests) in GÉANT (panel a) and AS1755 (panel b).
func Fig9(cfg Config) ([]Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Checkpoint every 50 arrivals as in the paper's x-axis, adapting
	// for short smoke runs.
	checkEvery := 50
	if cfg.Requests < checkEvery {
		checkEvery = cfg.Requests/6 + 1
	}
	topos := []struct{ id, name string }{
		{"geant", "GEANT"},
		{"as1755", "AS1755"},
	}
	var figs []Figure
	for ti, tp := range topos {
		fig := Figure{
			ID:     fmt.Sprintf("Fig9(%c)", 'a'+ti),
			Title:  fmt.Sprintf("admitted requests vs arrivals in %s", tp.name),
			XLabel: "requests",
			YLabel: "admitted requests",
		}
		for x := checkEvery; x <= cfg.Requests; x += checkEvery {
			fig.X = append(fig.X, float64(x))
		}
		for _, name := range onlineSeries {
			counts, err := onlineRun(cfg, name, tp.id, 0, cfg.Requests, cfg.Seed+int64(ti))
			if err != nil {
				return nil, err
			}
			s := Series{Label: name}
			for x := checkEvery; x <= cfg.Requests; x += checkEvery {
				s.Y = append(s.Y, float64(counts[x-1]))
			}
			fig.Series = append(fig.Series, s)
		}
		figs = append(figs, fig)
	}
	return figs, nil
}
