package sim

import (
	"fmt"

	"nfvmcast/internal/core"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// onlineAdmitter abstracts the three online algorithms compared by
// Figs. 8-9.
type onlineAdmitter interface {
	Admit(*multicast.Request) (*core.Solution, error)
	AdmittedCount() int
}

// onlineSeries are the figure series in display order: the paper's
// Online_CP, the SP heuristic as described (residual pruning +
// re-routing), and the static-routes SP whose behaviour matches the
// paper's reported SP numbers (see EXPERIMENTS.md).
var onlineSeries = []string{"Online_CP", "SP", "SP_Static"}

func newAdmitter(name string, nw *sdn.Network) (onlineAdmitter, error) {
	switch name {
	case "Online_CP":
		return core.NewOnlineCP(nw, core.DefaultCostModel(nw.NumNodes()))
	case "SP":
		return core.NewOnlineSP(nw), nil
	case "SP_Static":
		return core.NewOnlineSPStatic(nw), nil
	default:
		return nil, fmt.Errorf("sim: unknown online algorithm %q", name)
	}
}

// onlineRun feeds an identical request sequence to one admitter over
// its own copy of the network and returns the admitted count after
// every request.
func onlineRun(name, topoName string, n int, requests int, seed int64) ([]int, error) {
	nw, err := networkFor(topoName, n, seed)
	if err != nil {
		return nil, err
	}
	adm, err := newAdmitter(name, nw)
	if err != nil {
		return nil, err
	}
	gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.OnlineGeneratorConfig(), seed+13)
	if err != nil {
		return nil, err
	}
	counts := make([]int, requests)
	for i := 0; i < requests; i++ {
		req, gerr := gen.Next()
		if gerr != nil {
			return nil, gerr
		}
		// Rejections are part of the protocol, not errors of the run.
		_, _ = adm.Admit(req)
		counts[i] = adm.AdmittedCount()
	}
	return counts, nil
}

// Fig8 reproduces Figure 8: the number of requests admitted by
// Online_CP and the SP baselines over a monitoring period of
// cfg.Requests arrivals (paper: 300), for each random-network size.
func Fig8(cfg Config) ([]Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	fig := Figure{
		ID:     "Fig8(a)",
		Title:  fmt.Sprintf("admitted requests after %d arrivals vs network size", cfg.Requests),
		XLabel: "n",
		YLabel: "admitted requests",
	}
	// Every (size, algorithm) run is independent; execute in parallel.
	finals := make([]float64, len(cfg.NetworkSizes)*len(onlineSeries))
	err := forEachIndex(len(finals), func(i int) error {
		ni, ai := i/len(onlineSeries), i%len(onlineSeries)
		n := cfg.NetworkSizes[ni]
		counts, rerr := onlineRun(onlineSeries[ai], "waxman", n, cfg.Requests, cfg.Seed+int64(n))
		if rerr != nil {
			return rerr
		}
		finals[i] = float64(counts[len(counts)-1])
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, n := range cfg.NetworkSizes {
		fig.X = append(fig.X, float64(n))
	}
	for ai, name := range onlineSeries {
		s := Series{Label: name}
		for ni := range cfg.NetworkSizes {
			s.Y = append(s.Y, finals[ni*len(onlineSeries)+ai])
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}, nil
}

// Fig9 reproduces Figure 9: admitted requests vs the number of
// arrivals (50..cfg.Requests) in GÉANT (panel a) and AS1755 (panel b).
func Fig9(cfg Config) ([]Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Checkpoint every 50 arrivals as in the paper's x-axis, adapting
	// for short smoke runs.
	checkEvery := 50
	if cfg.Requests < checkEvery {
		checkEvery = cfg.Requests/6 + 1
	}
	topos := []struct{ id, name string }{
		{"geant", "GEANT"},
		{"as1755", "AS1755"},
	}
	var figs []Figure
	for ti, tp := range topos {
		fig := Figure{
			ID:     fmt.Sprintf("Fig9(%c)", 'a'+ti),
			Title:  fmt.Sprintf("admitted requests vs arrivals in %s", tp.name),
			XLabel: "requests",
			YLabel: "admitted requests",
		}
		for x := checkEvery; x <= cfg.Requests; x += checkEvery {
			fig.X = append(fig.X, float64(x))
		}
		for _, name := range onlineSeries {
			counts, err := onlineRun(name, tp.id, 0, cfg.Requests, cfg.Seed+int64(ti))
			if err != nil {
				return nil, err
			}
			s := Series{Label: name}
			for x := checkEvery; x <= cfg.Requests; x += checkEvery {
				s.Y = append(s.Y, float64(counts[x-1]))
			}
			fig.Series = append(fig.Series, s)
		}
		figs = append(figs, fig)
	}
	return figs, nil
}
