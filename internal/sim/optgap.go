package sim

import (
	"fmt"
	"math/rand"

	"nfvmcast/internal/core"
	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/nfv"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/topology"
)

// ExtOptGap is an extension experiment beyond the paper: the measured
// optimality gap of the approximations on instances small enough for
// exact solutions. Per destination-count point it reports the average
// and worst ratio of the KMB Steiner tree to the exact Dreyfus–Wagner
// optimum (theory bound: 2(1−1/ℓ)), plus Appro_Multi's implementation
// cost against the exact optimal auxiliary tree over all server
// subsets (theory bound: 2, feeding the paper's 2K result).
func ExtOptGap(cfg Config) ([]Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	const (
		netSize = 18
		servers = 3
		k       = 2
	)
	destCounts := []int{2, 3, 4, 5}
	fig := Figure{
		ID: "ExtOptGap",
		Title: fmt.Sprintf(
			"measured optimality gaps on exact-solvable instances (n = %d, %d per point)",
			netSize, cfg.Requests),
		XLabel: "destinations",
		YLabel: "ratio to exact optimum",
	}
	kmbAvg := Series{Label: "KMB avg"}
	kmbMax := Series{Label: "KMB worst"}
	amAvg := Series{Label: "Appro_Multi avg"}
	amMax := Series{Label: "Appro_Multi worst"}
	for _, nd := range destCounts {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(nd)))
		var (
			kmbSum, kmbWorst float64
			amSum, amWorst   float64
			samples          int
		)
		for i := 0; i < cfg.Requests; i++ {
			topo, err := topology.WaxmanDegree(netSize, 3, 0.2, cfg.Seed+int64(1000*nd+i))
			if err != nil {
				return nil, err
			}
			topo.Servers = servers
			nw, err := sdn.NewNetwork(topo, sdn.DefaultConfig(), rng)
			if err != nil {
				return nil, err
			}
			perm := rng.Perm(netSize)
			dests := make([]graph.NodeID, nd)
			copy(dests, perm[1:1+nd])
			chain, err := nfv.RandomChain(rng, 1, 3)
			if err != nil {
				return nil, err
			}
			req := &multicast.Request{
				ID: 1, Source: perm[0], Destinations: dests,
				BandwidthMbps: 50 + rng.Float64()*150, Chain: chain,
			}

			// KMB vs exact on the plain Steiner instance
			// (terminals: source + destinations, cost-weighted).
			wg := nw.Graph().Clone()
			for e := 0; e < wg.NumEdges(); e++ {
				if err := wg.SetWeight(e, nw.LinkUnitCost(e)*req.BandwidthMbps); err != nil {
					return nil, err
				}
			}
			terminals := append([]graph.NodeID{req.Source}, dests...)
			exact, err := graph.SteinerExact(wg, terminals)
			if err != nil || exact.Weight <= 0 {
				continue
			}
			kmb, err := graph.SteinerKMB(wg, terminals)
			if err != nil {
				continue
			}
			r := kmb.Weight / exact.Weight
			kmbSum += r
			if r > kmbWorst {
				kmbWorst = r
			}

			// Appro_Multi vs the exact auxiliary optimum.
			optAux, ok := exactAuxOptimum(nw, req, k)
			if !ok || optAux <= 0 {
				continue
			}
			sol, err := core.ApproMulti(nw, req, core.Options{K: k, Workers: cfg.Workers})
			if err != nil {
				continue
			}
			ra := sol.OperationalCost / optAux
			amSum += ra
			if ra > amWorst {
				amWorst = ra
			}
			samples++
		}
		if samples == 0 {
			return nil, fmt.Errorf("sim: optgap point nd=%d collected no samples", nd)
		}
		fig.X = append(fig.X, float64(nd))
		kmbAvg.Y = append(kmbAvg.Y, kmbSum/float64(samples))
		kmbMax.Y = append(kmbMax.Y, kmbWorst)
		amAvg.Y = append(amAvg.Y, amSum/float64(samples))
		amMax.Y = append(amMax.Y, amWorst)
	}
	fig.Series = []Series{kmbAvg, kmbMax, amAvg, amMax}
	return []Figure{fig}, nil
}

// exactAuxOptimum computes the minimum exact auxiliary tree weight
// over all server subsets of size <= k (the quantity Theorem 1 bounds
// by K times the optimal pseudo-multicast tree).
func exactAuxOptimum(nw *sdn.Network, req *multicast.Request, k int) (float64, bool) {
	hg := nw.Graph()
	wg := hg.Clone()
	for e := 0; e < wg.NumEdges(); e++ {
		if err := wg.SetWeight(e, nw.LinkUnitCost(e)*req.BandwidthMbps); err != nil {
			return 0, false
		}
	}
	spSrc, err := graph.Dijkstra(wg, req.Source)
	if err != nil {
		return 0, false
	}
	demand := req.ComputeDemandMHz()
	var servers []graph.NodeID
	omega := make(map[graph.NodeID]float64)
	for _, v := range nw.Servers() {
		if spSrc.Reachable(v) {
			servers = append(servers, v)
			omega[v] = spSrc.Dist[v] + nw.ServerUnitCost(v)*demand
		}
	}
	if len(servers) == 0 {
		return 0, false
	}
	best := graph.Infinity
	found := false
	var visit func(start int, subset []graph.NodeID)
	visit = func(start int, subset []graph.NodeID) {
		if len(subset) > 0 {
			aux := wg.Clone()
			virtual := aux.AddNode()
			for _, v := range subset {
				aux.MustAddEdge(virtual, v, omega[v])
			}
			terminals := append([]graph.NodeID{virtual}, req.Destinations...)
			if opt, oerr := graph.SteinerExactWeight(aux, terminals); oerr == nil && opt < best {
				best, found = opt, true
			}
		}
		if len(subset) == k {
			return
		}
		for i := start; i < len(servers); i++ {
			visit(i+1, append(subset, servers[i]))
		}
	}
	visit(0, nil)
	return best, found
}
