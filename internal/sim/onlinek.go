package sim

import (
	"fmt"

	"nfvmcast/internal/core"
	"nfvmcast/internal/engine"
	"nfvmcast/internal/multicast"
)

// ExtOnlineK is an extension experiment beyond the paper: online
// admission with the service chain replicated on up to K servers (the
// paper analyses only K = 1). For each K it feeds the identical
// arrival sequence to OnlineCPK on its own network replica and plots
// admitted requests plus the average servers used per admission.
func ExtOnlineK(cfg Config) ([]Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.NetworkSizes[len(cfg.NetworkSizes)/2]
	arrivals := cfg.Requests
	fig := Figure{
		ID: "ExtOnlineK",
		Title: fmt.Sprintf(
			"online admission vs server budget K (n = %d, %d arrivals)", n, arrivals),
		XLabel: "K",
		YLabel: "admitted / avg servers",
	}
	admittedS := Series{Label: "admitted requests"}
	serversS := Series{Label: "avg servers used"}
	maxK := cfg.K
	if maxK < 2 {
		maxK = 2
	}
	type cell struct {
		admitted   int
		avgServers float64
	}
	cells := make([]cell, maxK)
	err := forEachIndex(maxK, func(ki int) error {
		k := ki + 1
		nw, nerr := networkFor("waxman", n, cfg.Seed+int64(n))
		if nerr != nil {
			return nerr
		}
		p, perr := core.NewCPKPlanner(core.DefaultCostModel(n), k)
		if perr != nil {
			return perr
		}
		adm := engine.New(nw, p, engineOptions(cfg, p.Name()))
		defer adm.Close()
		gen, gerr := multicast.NewGenerator(n, multicast.OnlineGeneratorConfig(), cfg.Seed+51)
		if gerr != nil {
			return gerr
		}
		var servers int
		for i := 0; i < arrivals; i++ {
			req, rerr := gen.Next()
			if rerr != nil {
				return rerr
			}
			if sol, err := adm.Admit(req); err == nil {
				servers += len(sol.Servers)
			} else if !core.IsRejection(err) {
				return err
			}
		}
		c := cell{admitted: adm.AdmittedCount()}
		if c.admitted > 0 {
			c.avgServers = float64(servers) / float64(c.admitted)
		}
		cells[ki] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ki, c := range cells {
		fig.X = append(fig.X, float64(ki+1))
		admittedS.Y = append(admittedS.Y, float64(c.admitted))
		serversS.Y = append(serversS.Y, c.avgServers)
	}
	fig.Series = []Series{admittedS, serversS}
	return []Figure{fig}, nil
}
