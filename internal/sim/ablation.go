package sim

import (
	"fmt"
	"time"

	"nfvmcast/internal/core"
	"nfvmcast/internal/multicast"
)

// AblationK sweeps the server budget K of Appro_Multi on one network
// size, quantifying the cost/time trade-off behind the paper's choice
// of K = 3 (DESIGN.md §4).
func AblationK(cfg Config) ([]Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.NetworkSizes[len(cfg.NetworkSizes)/2]
	nw, err := networkFor("waxman", n, cfg.Seed+int64(n))
	if err != nil {
		return nil, err
	}
	fig := Figure{
		ID:     "AblationK",
		Title:  fmt.Sprintf("Appro_Multi cost and time vs server budget K (n = %d)", n),
		XLabel: "K",
		YLabel: "avg cost / avg ms",
	}
	costS := Series{Label: "operational cost"}
	timeS := Series{Label: "running time (ms)"}
	srvS := Series{Label: "avg servers used"}
	for k := 1; k <= cfg.K; k++ {
		gen, gerr := multicast.NewGenerator(nw.NumNodes(),
			multicast.DefaultGeneratorConfig(), cfg.Seed+99)
		if gerr != nil {
			return nil, gerr
		}
		var cost, ms, servers float64
		solved := 0
		for i := 0; i < cfg.Requests; i++ {
			req, rerr := gen.Next()
			if rerr != nil {
				return nil, rerr
			}
			start := time.Now()
			sol, aerr := core.ApproMulti(nw, req, core.Options{K: k, Workers: cfg.Workers})
			if aerr != nil {
				continue
			}
			ms += float64(time.Since(start).Microseconds()) / 1000.0
			cost += sol.OperationalCost
			servers += float64(len(sol.Servers))
			solved++
		}
		if solved == 0 {
			return nil, fmt.Errorf("sim: ablation K=%d solved nothing", k)
		}
		fig.X = append(fig.X, float64(k))
		costS.Y = append(costS.Y, cost/float64(solved))
		timeS.Y = append(timeS.Y, ms/float64(solved))
		srvS.Y = append(srvS.Y, servers/float64(solved))
	}
	fig.Series = []Series{costS, timeS, srvS}
	return []Figure{fig}, nil
}

// AblationEvaluator compares the default closure-based subset
// evaluator against the paper-literal explicit auxiliary-graph
// construction: equal-quality trees, very different running time
// (DESIGN.md §4).
func AblationEvaluator(cfg Config) ([]Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.NetworkSizes[0]
	nw, err := networkFor("waxman", n, cfg.Seed+int64(n))
	if err != nil {
		return nil, err
	}
	fig := Figure{
		ID:     "AblationEvaluator",
		Title:  fmt.Sprintf("closure evaluator vs explicit auxiliary graphs (n = %d, K = 2)", n),
		XLabel: "variant(0=closure,1=explicit)",
		YLabel: "avg cost / avg ms",
	}
	costS := Series{Label: "operational cost"}
	timeS := Series{Label: "running time (ms)"}
	for vi, explicitAux := range []bool{false, true} {
		gen, gerr := multicast.NewGenerator(nw.NumNodes(),
			multicast.DefaultGeneratorConfig(), cfg.Seed+7)
		if gerr != nil {
			return nil, gerr
		}
		var cost, ms float64
		solved := 0
		for i := 0; i < cfg.Requests; i++ {
			req, rerr := gen.Next()
			if rerr != nil {
				return nil, rerr
			}
			start := time.Now()
			sol, aerr := core.ApproMulti(nw, req,
				core.Options{K: 2, ExplicitAuxiliary: explicitAux, Workers: cfg.Workers})
			if aerr != nil {
				continue
			}
			ms += float64(time.Since(start).Microseconds()) / 1000.0
			cost += sol.OperationalCost
			solved++
		}
		if solved == 0 {
			return nil, fmt.Errorf("sim: evaluator ablation solved nothing")
		}
		fig.X = append(fig.X, float64(vi))
		costS.Y = append(costS.Y, cost/float64(solved))
		timeS.Y = append(timeS.Y, ms/float64(solved))
	}
	fig.Series = []Series{costS, timeS}
	return []Figure{fig}, nil
}

// AblationCostModel isolates the effect of the exponential cost model
// (paper §V.A's argument against linear costs): Online_CP vs the
// load-oblivious SP variants on one network under sustained load.
func AblationCostModel(cfg Config) ([]Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.NetworkSizes[len(cfg.NetworkSizes)/2]
	fig := Figure{
		ID: "AblationCostModel",
		Title: fmt.Sprintf(
			"admission under sustained load (n = %d, %d requests)", n, 3*cfg.Requests),
		XLabel: "requests",
		YLabel: "admitted requests",
	}
	requests := 3 * cfg.Requests
	checkEvery := requests / 6
	if checkEvery < 1 {
		checkEvery = 1
	}
	for x := checkEvery; x <= requests; x += checkEvery {
		fig.X = append(fig.X, float64(x))
	}
	for _, name := range onlineSeries {
		counts, err := onlineRun(cfg, name, "waxman", n, requests, cfg.Seed+5)
		if err != nil {
			return nil, err
		}
		s := Series{Label: name}
		for x := checkEvery; x <= requests; x += checkEvery {
			s.Y = append(s.Y, float64(counts[x-1]))
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}, nil
}

// Experiments maps experiment names to their drivers, in the order the
// CLI lists them.
var Experiments = []struct {
	Name string
	Desc string
	Run  func(Config) ([]Figure, error)
}{
	{"fig5", "Appro_Multi vs one-server baselines on random networks (cost & time)", Fig5},
	{"fig6", "the same algorithms on GEANT and AS1755", Fig6},
	{"fig7", "Appro_Multi_Cap under capacity constraints", Fig7},
	{"fig8", "Online_CP vs SP admissions vs network size", Fig8},
	{"fig9", "Online_CP vs SP admissions vs arrivals (GEANT, AS1755)", Fig9},
	{"ablation-k", "Appro_Multi cost/time vs server budget K", AblationK},
	{"ablation-evaluator", "closure evaluator vs explicit auxiliary graphs", AblationEvaluator},
	{"ablation-costmodel", "exponential vs load-oblivious admission under load", AblationCostModel},
	{"ext-churn", "extension: steady-state sessions under arrival/departure churn", ExtChurn},
	{"ext-stretch", "extension: latency stretch of NFV steering per algorithm", ExtStretch},
	{"ext-erlang", "extension: acceptance ratio vs offered load (Poisson/loss system)", ExtErlang},
	{"ext-onlinek", "extension: online admission with K-server chains (open problem)", ExtOnlineK},
	{"ext-reoptimize", "extension: batch re-placement of admitted sessions", ExtReoptimize},
	{"ext-optgap", "extension: measured optimality gaps vs exact solutions", ExtOptGap},
	{"ext-recover", "extension: self-healing recovery after link failures (repair vs replan)", ExtRecover},
	{"ext-distchain", "extension: distributed chain placement & live reconfiguration (open problem)", ExtDistChain},
}

// RunExperiment runs one named experiment.
func RunExperiment(name string, cfg Config) ([]Figure, error) {
	for _, e := range Experiments {
		if e.Name == name {
			return e.Run(cfg)
		}
	}
	return nil, fmt.Errorf("sim: unknown experiment %q", name)
}
