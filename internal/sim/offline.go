package sim

import (
	"errors"
	"fmt"
	"time"

	"nfvmcast/internal/core"
	"nfvmcast/internal/engine"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// offlineAlgorithms are the series of Figs. 5-6, in display order.
var offlineAlgorithms = []string{"Appro_Multi", "Alg_One_Server", "One_Server_Nearest"}

// offlinePoint measures the average operational cost and per-request
// running time (milliseconds) of the offline algorithms at one sweep
// point: requests drawn with the given destination ratio, solved
// independently on an uncapacitated network (paper §VI.B).
func offlinePoint(
	nw *sdn.Network, ratio float64, requests, k, workers int, seed int64,
) (cost, timeMS map[string]float64, err error) {
	cfg := multicast.DefaultGeneratorConfig()
	cfg.DestRatio = ratio
	gen, err := multicast.NewGenerator(nw.NumNodes(), cfg, seed)
	if err != nil {
		return nil, nil, err
	}
	cost = make(map[string]float64, len(offlineAlgorithms))
	timeMS = make(map[string]float64, len(offlineAlgorithms))
	solved := 0
	for i := 0; i < requests; i++ {
		req, gerr := gen.Next()
		if gerr != nil {
			return nil, nil, gerr
		}
		type outcome struct {
			sol *core.Solution
			dur time.Duration
		}
		results := make(map[string]outcome, len(offlineAlgorithms))
		failed := false
		for _, alg := range offlineAlgorithms {
			start := time.Now()
			var sol *core.Solution
			var aerr error
			switch alg {
			case "Appro_Multi":
				sol, aerr = core.ApproMulti(nw, req, core.Options{K: k, Workers: workers})
			case "Alg_One_Server":
				sol, aerr = core.AlgOneServer(nw, req, false)
			case "One_Server_Nearest":
				sol, aerr = core.AlgOneServerNearest(nw, req, false)
			}
			if aerr != nil {
				// Skip this request for all algorithms so averages
				// stay comparable; only reachability failures are
				// expected here.
				if errors.Is(aerr, core.ErrUnreachable) ||
					errors.Is(aerr, core.ErrNoFeasibleServer) {
					failed = true
					break
				}
				return nil, nil, fmt.Errorf("%s: %w", alg, aerr)
			}
			results[alg] = outcome{sol: sol, dur: time.Since(start)}
		}
		if failed {
			continue
		}
		solved++
		for alg, r := range results {
			cost[alg] += r.sol.OperationalCost
			timeMS[alg] += float64(r.dur.Microseconds()) / 1000.0
		}
	}
	if solved == 0 {
		return nil, nil, fmt.Errorf("sim: no request solvable at this point")
	}
	for _, alg := range offlineAlgorithms {
		cost[alg] /= float64(solved)
		timeMS[alg] /= float64(solved)
	}
	return cost, timeMS, nil
}

// Fig5 reproduces Figure 5: operational cost (panels a-c) and running
// time (panels d-f) of Appro_Multi vs the one-server baselines on
// random networks of 50-250 switches, one panel per destination ratio
// (the first three ratios of cfg.DestRatios).
func Fig5(cfg Config) ([]Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ratios := cfg.DestRatios
	if len(ratios) > 3 {
		ratios = ratios[:3]
	}
	// All (ratio, size) points are independent; run them in parallel.
	type point struct {
		cost, timeMS map[string]float64
	}
	sizes := cfg.NetworkSizes
	points := make([]point, len(ratios)*len(sizes))
	err := forEachIndex(len(points), func(i int) error {
		ri, ni := i/len(sizes), i%len(sizes)
		n := sizes[ni]
		nw, nerr := networkFor("waxman", n, cfg.Seed+int64(n))
		if nerr != nil {
			return nerr
		}
		cost, timeMS, perr := offlinePoint(nw, ratios[ri], cfg.Requests, cfg.K, cfg.Workers,
			cfg.Seed+int64(1000*ri+n))
		if perr != nil {
			return perr
		}
		points[i] = point{cost: cost, timeMS: timeMS}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var figs []Figure
	costFigs := make([]Figure, len(ratios))
	timeFigs := make([]Figure, len(ratios))
	for ri, ratio := range ratios {
		costFigs[ri] = Figure{
			ID:     fmt.Sprintf("Fig5(%c)", 'a'+ri),
			Title:  fmt.Sprintf("operational cost vs network size (Dmax/|V| = %.2f)", ratio),
			XLabel: "n",
			YLabel: "avg operational cost",
		}
		timeFigs[ri] = Figure{
			ID:     fmt.Sprintf("Fig5(%c)", 'd'+ri),
			Title:  fmt.Sprintf("running time vs network size (Dmax/|V| = %.2f)", ratio),
			XLabel: "n",
			YLabel: "avg running time (ms)",
		}
		costSeries := make(map[string]*Series, len(offlineAlgorithms))
		timeSeries := make(map[string]*Series, len(offlineAlgorithms))
		for _, alg := range offlineAlgorithms {
			costSeries[alg] = &Series{Label: alg}
			timeSeries[alg] = &Series{Label: alg}
		}
		for ni, n := range sizes {
			p := points[ri*len(sizes)+ni]
			costFigs[ri].X = append(costFigs[ri].X, float64(n))
			timeFigs[ri].X = append(timeFigs[ri].X, float64(n))
			for _, alg := range offlineAlgorithms {
				costSeries[alg].Y = append(costSeries[alg].Y, p.cost[alg])
				timeSeries[alg].Y = append(timeSeries[alg].Y, p.timeMS[alg])
			}
		}
		for _, alg := range offlineAlgorithms {
			costFigs[ri].Series = append(costFigs[ri].Series, *costSeries[alg])
			timeFigs[ri].Series = append(timeFigs[ri].Series, *timeSeries[alg])
		}
	}
	figs = append(figs, costFigs...)
	figs = append(figs, timeFigs...)
	return figs, nil
}

// Fig6 reproduces Figure 6: operational cost and running time of the
// same algorithms on the real topologies GÉANT and AS1755, sweeping
// the destination ratio.
func Fig6(cfg Config) ([]Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	topos := []struct{ id, name string }{
		{"geant", "GEANT"},
		{"as1755", "AS1755"},
		{"as4755", "AS4755"},
	}
	var costFigs, timeFigs []Figure
	for ti, tp := range topos {
		nw, err := networkFor(tp.id, 0, cfg.Seed)
		if err != nil {
			return nil, err
		}
		costFig := Figure{
			ID:     fmt.Sprintf("Fig6(%c)", 'a'+ti),
			Title:  fmt.Sprintf("operational cost vs Dmax/|V| in %s", tp.name),
			XLabel: "Dmax/|V|",
			YLabel: "avg operational cost",
		}
		timeFig := Figure{
			ID:     fmt.Sprintf("Fig6(%c)", 'a'+len(topos)+ti),
			Title:  fmt.Sprintf("running time vs Dmax/|V| in %s", tp.name),
			XLabel: "Dmax/|V|",
			YLabel: "avg running time (ms)",
		}
		costSeries := make(map[string]*Series, len(offlineAlgorithms))
		timeSeries := make(map[string]*Series, len(offlineAlgorithms))
		for _, alg := range offlineAlgorithms {
			costSeries[alg] = &Series{Label: alg}
			timeSeries[alg] = &Series{Label: alg}
		}
		for ri, ratio := range cfg.DestRatios {
			cost, timeMS, err := offlinePoint(nw, ratio, cfg.Requests, cfg.K, cfg.Workers,
				cfg.Seed+int64(100*ti+ri))
			if err != nil {
				return nil, err
			}
			costFig.X = append(costFig.X, ratio)
			timeFig.X = append(timeFig.X, ratio)
			for _, alg := range offlineAlgorithms {
				costSeries[alg].Y = append(costSeries[alg].Y, cost[alg])
				timeSeries[alg].Y = append(timeSeries[alg].Y, timeMS[alg])
			}
		}
		for _, alg := range offlineAlgorithms {
			costFig.Series = append(costFig.Series, *costSeries[alg])
			timeFig.Series = append(timeFig.Series, *timeSeries[alg])
		}
		costFigs = append(costFigs, costFig)
		timeFigs = append(timeFigs, timeFig)
	}
	// The paper's layout: cost panels first, then running times.
	return append(costFigs, timeFigs...), nil
}

// Fig7 reproduces Figure 7: the operational cost and running time of
// Appro_Multi_Cap under computing and bandwidth capacity constraints,
// with Dmax/|V| = 0.2, admitting a stream of requests per network
// size. The uncapacitated Appro_Multi average over the same workload
// is included for the Fig.7-vs-Fig.5(c) comparison the paper makes.
func Fig7(cfg Config) ([]Figure, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	const ratio = 0.2
	costFig := Figure{
		ID:     "Fig7(a)",
		Title:  "operational cost of Appro_Multi_Cap vs network size (Dmax/|V| = 0.20)",
		XLabel: "n",
		YLabel: "avg operational cost",
	}
	timeFig := Figure{
		ID:     "Fig7(b)",
		Title:  "running time of Appro_Multi_Cap vs network size (Dmax/|V| = 0.20)",
		XLabel: "n",
		YLabel: "avg running time (ms)",
	}
	capSeries := Series{Label: "Appro_Multi_Cap"}
	uncapSeries := Series{Label: "Appro_Multi (uncap)"}
	capTime := Series{Label: "Appro_Multi_Cap"}
	admitted := Series{Label: "admitted (of requests)"}
	type point struct {
		capCost, uncapCost, capMS float64
		capCount                  int
	}
	points := make([]point, len(cfg.NetworkSizes))
	err := forEachIndex(len(points), func(pi int) error {
		n := cfg.NetworkSizes[pi]
		nw, err := networkFor("waxman", n, cfg.Seed+int64(n))
		if err != nil {
			return err
		}
		gcfg := multicast.DefaultGeneratorConfig()
		gcfg.DestRatio = ratio
		gen, err := multicast.NewGenerator(nw.NumNodes(), gcfg, cfg.Seed+int64(n)+7)
		if err != nil {
			return err
		}
		// The capacitated stream is sequential admission — solve on the
		// residual network, then allocate — which is exactly the engine's
		// plan/commit lifecycle with Appro_Multi_Cap as the planner.
		eng := engine.New(nw,
			core.NewApproCapPlanner(core.Options{K: cfg.K, Workers: cfg.Workers}),
			engineOptions(cfg, "Appro_Multi_Cap"))
		defer eng.Close()
		var (
			capCost, uncapCost, capMS float64
			capCount, uncapCount      int
		)
		for i := 0; i < cfg.Requests; i++ {
			req, gerr := gen.Next()
			if gerr != nil {
				return gerr
			}
			// Uncapacitated reference solve: a read-only pass over the
			// same network, safe while no engine operation is in flight.
			if sol, aerr := core.ApproMulti(nw, req, core.Options{K: cfg.K, Workers: cfg.Workers}); aerr == nil {
				uncapCost += sol.OperationalCost
				uncapCount++
			}
			start := time.Now()
			sol, aerr := eng.Admit(req)
			dur := time.Since(start)
			if aerr != nil {
				continue // infeasible under residual capacities: skip
			}
			capCost += sol.OperationalCost
			capMS += float64(dur.Microseconds()) / 1000.0
			capCount++
		}
		if capCount == 0 || uncapCount == 0 {
			return fmt.Errorf("sim: fig7 point n=%d admitted nothing", n)
		}
		points[pi] = point{
			capCost:   capCost / float64(capCount),
			uncapCost: uncapCost / float64(uncapCount),
			capMS:     capMS / float64(capCount),
			capCount:  capCount,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, n := range cfg.NetworkSizes {
		costFig.X = append(costFig.X, float64(n))
		timeFig.X = append(timeFig.X, float64(n))
		capSeries.Y = append(capSeries.Y, points[pi].capCost)
		uncapSeries.Y = append(uncapSeries.Y, points[pi].uncapCost)
		capTime.Y = append(capTime.Y, points[pi].capMS)
		admitted.Y = append(admitted.Y, float64(points[pi].capCount))
	}
	costFig.Series = []Series{capSeries, uncapSeries}
	timeFig.Series = []Series{capTime, admitted}
	return []Figure{costFig, timeFig}, nil
}
