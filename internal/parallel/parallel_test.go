package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDegree(t *testing.T) {
	tests := []struct{ in, want int }{
		{0, 1},
		{1, 1},
		{7, 7},
		{-1, runtime.GOMAXPROCS(0)},
		{-99, runtime.GOMAXPROCS(0)},
	}
	for _, tt := range tests {
		if got := Degree(tt.in); got != tt.want {
			t.Fatalf("Degree(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestForEachIndexVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 16} {
		const n = 100
		counts := make([]int32, n)
		err := ForEachIndex(workers, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachIndexZeroItems(t *testing.T) {
	called := false
	if err := ForEachIndex(4, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called with n=0")
	}
}

func TestForEachIndexBoundsConcurrency(t *testing.T) {
	const workers, n = 3, 64
	var inFlight, peak int32
	err := ForEachIndex(workers, n, func(i int) error {
		cur := atomic.AddInt32(&inFlight, 1)
		for {
			old := atomic.LoadInt32(&peak)
			if cur <= old || atomic.CompareAndSwapInt32(&peak, old, cur) {
				break
			}
		}
		atomic.AddInt32(&inFlight, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt32(&peak); p > workers {
		t.Fatalf("observed %d concurrent calls, bound is %d", p, workers)
	}
}

func TestForEachIndexFirstErrorByIndexOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 4} {
		ran := make([]bool, 10)
		err := ForEachIndex(workers, 10, func(i int) error {
			ran[i] = true
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Fatalf("workers=%d: err = %v, want first-by-index %v", workers, err, errA)
		}
		// Every index still runs so per-slot side effects are complete.
		for i, r := range ran {
			if !r {
				t.Fatalf("workers=%d: index %d skipped after failure", workers, i)
			}
		}
	}
}
