// Package parallel provides the bounded worker-pool primitives shared
// by the algorithm core (candidate evaluation in Appro_Multi) and the
// experiment harness (sweep-point fan-out in internal/sim).
//
// The helpers here are deliberately tiny: callers keep per-slot state
// in slices indexed by the loop variable, so no synchronisation beyond
// the pool's own WaitGroup is ever needed and results are independent
// of scheduling order.
package parallel

import (
	"runtime"
	"sync"
)

// Degree normalises a worker-count knob: n >= 1 is used verbatim,
// n == 0 requests sequential execution (degree 1), and n < 0 requests
// one worker per available CPU (runtime.GOMAXPROCS).
func Degree(n int) int {
	switch {
	case n < 0:
		return runtime.GOMAXPROCS(0)
	case n == 0:
		return 1
	default:
		return n
	}
}

// ForEachIndex runs fn(0..n-1) concurrently, bounded by workers
// goroutines, and returns the first error in index order. Every index
// runs even when an earlier one fails, so per-slot side effects (slot
// i of a results slice) are complete on return. workers <= 1 (after
// clamping to n) runs everything on the calling goroutine.
func ForEachIndex(workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	sem := make(chan struct{}, workers)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
