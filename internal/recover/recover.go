// Package recover implements self-healing failure recovery for the
// admission engine. After failure injection marks links or servers
// down, a recovery pass walks every admitted session whose
// pseudo-multicast tree touches a failed resource (in ascending
// request-ID order, which makes outcomes deterministic), releases its
// allocation, and tries to re-host it:
//
//  1. Local repair — re-route the tree with the VM placement pinned
//     (core.RepairReroute, one Steiner construction). Accepted when the
//     replacement's operational cost stays within Policy.Gamma times
//     the original tree's cost.
//  2. Full re-plan — the engine's normal planner path on the residual
//     network, free to move the VM, retried under a bounded budget
//     with exponential backoff when committing the replacement fails.
//  3. Shed — when neither can be hosted, the session is dropped
//     deterministically: its entry leaves the live table (resources
//     were already released) and its outcome carries ErrDegraded.
//
// A Recoverer only mutates state through the core.Admitter handed to
// it, and must run wherever that admitter's single-caller rule is
// honoured — inside the engine that is the writer goroutine.
package recover

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"nfvmcast/internal/core"
	"nfvmcast/internal/obs"
)

// ErrDegraded marks a session recovery had to shed: the failure left
// no residual capacity able to host it, so it was dropped rather than
// repaired. Inspect with errors.Is.
var ErrDegraded = errors.New("recover: session shed, no residual capacity to re-host")

// Mode names how a recovery pass resolved one session.
type Mode string

// The recovery outcomes. ModeLocal and ModeReplan reuse the
// observability layer's repair-mode labels so events, counters and
// reports agree on vocabulary.
const (
	ModeLocal  Mode = obs.RepairModeLocal
	ModeReplan Mode = obs.RepairModeReplan
	ModeShed   Mode = "shed"
)

// Policy tunes the repair-vs-replan trade-off.
type Policy struct {
	// Gamma is the local-repair acceptance factor: a re-routed tree is
	// kept only when its operational cost is at most Gamma times the
	// damaged tree's. Gamma <= 0 disables local repair entirely (every
	// session goes straight to re-plan — the baseline the recovery
	// benchmark compares against); 1.0 accepts only repairs at original
	// cost or better.
	Gamma float64
	// RetryBudget bounds how many additional re-plan attempts follow a
	// failed commit of a replacement tree before the session is shed.
	// Each attempt plans against the then-current residuals.
	RetryBudget int
	// Backoff is the sleep before the first re-plan retry, doubling per
	// subsequent retry. 0 retries immediately — the right setting on
	// the engine's writer goroutine for simulated failures, where
	// residuals can only change through the recovery pass itself.
	Backoff time.Duration
}

// DefaultPolicy returns the recovery defaults: local repairs accepted
// up to 1.5x the original cost, two re-plan retries, no backoff.
func DefaultPolicy() Policy {
	return Policy{Gamma: 1.5, RetryBudget: 2, Backoff: 0}
}

// Outcome records how one affected session was resolved.
type Outcome struct {
	// RequestID identifies the session.
	RequestID int
	// Mode is how the session was resolved (local, replan, shed).
	Mode Mode
	// OldCost is the operational cost of the damaged tree, NewCost the
	// replacement's (0 when shed).
	OldCost, NewCost float64
	// Attempts counts plan attempts for this session (the local-repair
	// try plus each re-plan).
	Attempts int
	// Solution is the replacement realisation (nil when shed) — what a
	// controller reinstalls as flow rules.
	Solution *core.Solution
	// Err is the terminal error of a shed session; errors.Is(Err,
	// ErrDegraded) holds. nil for repaired sessions.
	Err error
}

// Report summarises one recovery pass.
type Report struct {
	// Outcomes holds one entry per affected session, in ascending
	// request-ID order.
	Outcomes []Outcome
	// Local, Replanned and Shed count outcomes by mode.
	Local, Replanned, Shed int
	// Duration is the wall-clock time of the pass (excluded from
	// Fingerprint so timing never perturbs determinism checks).
	Duration time.Duration
}

// Repaired reports how many sessions were re-hosted.
func (r *Report) Repaired() int { return r.Local + r.Replanned }

// Degraded returns the request IDs of shed sessions, in ascending
// order.
func (r *Report) Degraded() []int {
	var ids []int
	for _, o := range r.Outcomes {
		if o.Mode == ModeShed {
			ids = append(ids, o.RequestID)
		}
	}
	return ids
}

// Fingerprint serialises the pass's deterministic content — every
// outcome's ID, mode, costs and attempt count, but no durations — so
// the determinism oracle can compare recovery byte-for-byte across
// engine worker counts.
func (r *Report) Fingerprint() string {
	var b strings.Builder
	for _, o := range r.Outcomes {
		b.WriteString("req=")
		b.WriteString(strconv.Itoa(o.RequestID))
		b.WriteString(" mode=")
		b.WriteString(string(o.Mode))
		b.WriteString(" old=")
		b.WriteString(strconv.FormatFloat(o.OldCost, 'g', -1, 64))
		b.WriteString(" new=")
		b.WriteString(strconv.FormatFloat(o.NewCost, 'g', -1, 64))
		b.WriteString(" attempts=")
		b.WriteString(strconv.Itoa(o.Attempts))
		b.WriteByte('\n')
	}
	return b.String()
}

// Recoverer drives recovery passes over one admitter.
type Recoverer struct {
	adm *core.Admitter
	obs *obs.AdmissionObs // nil-safe
	pol Policy
}

// New returns a recoverer repairing adm's live sessions under pol,
// reporting through o (nil disables instrumentation).
func New(adm *core.Admitter, o *obs.AdmissionObs, pol Policy) *Recoverer {
	if pol.RetryBudget < 0 {
		pol.RetryBudget = 0
	}
	return &Recoverer{adm: adm, obs: o, pol: pol}
}

// Policy returns the recoverer's policy.
func (r *Recoverer) Policy() Policy { return r.pol }

// Recover runs one pass: it repairs or sheds every live session whose
// allocation touches a failed resource and returns the per-session
// outcomes. ctx is checked between sessions — once a session's
// resources are released its repair runs to completion, so
// cancellation never leaves a session half-recovered; sessions not yet
// reached stay damaged but live, and a later pass picks them up. arena
// supplies planning scratch (nil allocates fresh).
func (r *Recoverer) Recover(ctx context.Context, arena *core.PlanArena) (*Report, error) {
	start := time.Now()
	rep := &Report{}
	for _, id := range r.adm.AffectedLive() {
		if err := ctx.Err(); err != nil {
			rep.Duration = time.Since(start)
			return rep, fmt.Errorf("recover: pass canceled: %w", err)
		}
		sol, ok := r.adm.LiveSolution(id)
		if !ok {
			continue
		}
		r.obs.RepairAttempted(id)
		if err := r.adm.ReleaseLive(id); err != nil {
			// Release of a recorded allocation cannot fail on a
			// well-formed network; treat it as unhostable rather than
			// leak the session into an inconsistent state.
			rep.Outcomes = append(rep.Outcomes, r.shed(id, 0, sol.OperationalCost, err))
			rep.Shed++
			continue
		}
		out := r.recoverOne(id, sol, arena)
		switch out.Mode {
		case ModeLocal:
			rep.Local++
		case ModeReplan:
			rep.Replanned++
		default:
			rep.Shed++
		}
		rep.Outcomes = append(rep.Outcomes, out)
	}
	rep.Duration = time.Since(start)
	r.obs.RecoveryPass(rep.Duration.Seconds())
	return rep, nil
}

// recoverOne re-hosts one session whose allocation has already been
// released: local repair first, then the re-plan/retry ladder, then
// shed.
func (r *Recoverer) recoverOne(id int, old *core.Solution, arena *core.PlanArena) Outcome {
	nw := r.adm.Network()
	req := old.Request
	attempts := 0

	// Step 1: local repair — only single-server placements can keep
	// their VM pinned, and only when the policy admits repairs at all.
	if r.pol.Gamma > 0 && len(old.Servers) == 1 {
		attempts++
		rsol, err := core.RepairReroute(nw, req, old.Servers[0], arena)
		if err == nil && rsol.OperationalCost <= r.pol.Gamma*old.OperationalCost {
			if berr := r.adm.Rebind(id, rsol); berr == nil {
				r.obs.Repaired(id, obs.RepairModeLocal, rsol.OperationalCost)
				return Outcome{
					RequestID: id, Mode: ModeLocal,
					OldCost: old.OperationalCost, NewCost: rsol.OperationalCost,
					Attempts: attempts, Solution: rsol,
				}
			}
		}
	}

	// Step 2: full re-plan through the normal planner path, with
	// bounded retry + exponential backoff when the replacement cannot
	// be committed (each retry plans against the then-current
	// residuals).
	backoff := r.pol.Backoff
	var lastErr error
	for try := 0; try <= r.pol.RetryBudget; try++ {
		if try > 0 && backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		attempts++
		psol, err := r.adm.PlanOnWith(nw, req, arena)
		if err != nil {
			lastErr = err
			break // the planner's refusal is deterministic here: shed
		}
		if berr := r.adm.Rebind(id, psol); berr != nil {
			lastErr = berr
			continue
		}
		r.obs.Repaired(id, obs.RepairModeReplan, psol.OperationalCost)
		return Outcome{
			RequestID: id, Mode: ModeReplan,
			OldCost: old.OperationalCost, NewCost: psol.OperationalCost,
			Attempts: attempts, Solution: psol,
		}
	}
	return r.shed(id, attempts, old.OperationalCost, lastErr)
}

// shed drops a session whose resources were already released and
// builds its outcome.
func (r *Recoverer) shed(id, attempts int, oldCost float64, cause error) Outcome {
	_ = r.adm.DropLive(id)
	err := ErrDegraded
	if cause != nil {
		err = fmt.Errorf("%w: %w", ErrDegraded, cause)
	}
	r.obs.SessionShed(id, core.RejectReason(cause))
	return Outcome{
		RequestID: id, Mode: ModeShed,
		OldCost: oldCost, Attempts: attempts, Err: err,
	}
}
