package recover

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"nfvmcast/internal/core"
	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/topology"
)

// harness builds a deterministic Waxman network with an Online_CP
// admitter carrying a handful of live sessions, and returns the edge
// of the busiest live allocation so tests can fail something that is
// guaranteed to affect a session.
type harness struct {
	nw  *sdn.Network
	adm *core.Admitter
}

func newHarness(t *testing.T, n int, seed int64, sessions int) *harness {
	t.Helper()
	topo, err := topology.WaxmanDegree(n, topology.DefaultAvgDegree, 0.14, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	nw, err := sdn.NewNetwork(topo, sdn.DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := core.NewOnlineCP(nw, core.DefaultCostModel(nw.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.OnlineGeneratorConfig(), seed+2)
	if err != nil {
		t.Fatal(err)
	}
	for cp.LiveCount() < sessions {
		req, gerr := gen.Next()
		if gerr != nil {
			t.Fatal(gerr)
		}
		_, _ = cp.Admit(req)
	}
	return &harness{nw: nw, adm: cp.Admitter}
}

// failBusyLink marks the most utilised non-bridge link down and
// returns it.
func (h *harness) failBusyLink(t *testing.T) graph.EdgeID {
	t.Helper()
	isBridge := make(map[graph.EdgeID]bool)
	for _, e := range graph.Bridges(h.nw.Graph()) {
		isBridge[e] = true
	}
	var hot graph.EdgeID = -1
	var hotUtil float64
	for e := 0; e < h.nw.NumEdges(); e++ {
		if u := h.nw.LinkUtilization(e); u > hotUtil && !isBridge[e] {
			hot, hotUtil = e, u
		}
	}
	if hot == -1 {
		t.Fatal("no non-bridge link carries load")
	}
	if err := h.nw.SetLinkUp(hot, false); err != nil {
		t.Fatal(err)
	}
	return hot
}

func TestRecoverRepairsAffectedSessions(t *testing.T) {
	h := newHarness(t, 60, 7, 25)
	h.failBusyLink(t)

	before := h.adm.LiveCount()
	affected := h.adm.AffectedLive()
	if len(affected) == 0 {
		t.Fatal("failure affected no session")
	}
	pol := DefaultPolicy()
	rep, err := New(h.adm, nil, pol).Recover(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != len(affected) {
		t.Fatalf("outcomes %d, affected %d", len(rep.Outcomes), len(affected))
	}
	if rep.Local+rep.Replanned+rep.Shed != len(rep.Outcomes) {
		t.Fatal("mode counters do not partition the outcomes")
	}
	if h.adm.LiveCount() != before-rep.Shed {
		t.Fatalf("live %d, want %d - %d shed", h.adm.LiveCount(), before, rep.Shed)
	}
	// Nothing may remain on the failed resource, and every repaired
	// session must respect the γ acceptance bound when local.
	if left := h.adm.AffectedLive(); len(left) != 0 {
		t.Fatalf("sessions still on failed resources after recovery: %v", left)
	}
	for i, out := range rep.Outcomes {
		if i > 0 && out.RequestID <= rep.Outcomes[i-1].RequestID {
			t.Fatal("outcomes not in ascending request-ID order")
		}
		switch out.Mode {
		case ModeLocal:
			if out.NewCost > pol.Gamma*out.OldCost {
				t.Errorf("session %d: local repair %.2f > γ×%.2f", out.RequestID, out.NewCost, out.OldCost)
			}
			if out.Solution == nil || out.Err != nil {
				t.Errorf("session %d: repaired outcome malformed", out.RequestID)
			}
		case ModeShed:
			if !errors.Is(out.Err, ErrDegraded) || out.Solution != nil {
				t.Errorf("session %d: shed outcome malformed: %v", out.RequestID, out.Err)
			}
		}
	}
}

// TestZeroGammaForcesReplan pins the benchmark baseline: Gamma <= 0
// disables local repair, so every repaired session goes through the
// full planner.
func TestZeroGammaForcesReplan(t *testing.T) {
	h := newHarness(t, 60, 7, 25)
	h.failBusyLink(t)
	rep, err := New(h.adm, nil, Policy{Gamma: 0, RetryBudget: 1}).Recover(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Local != 0 {
		t.Fatalf("γ=0 produced %d local repairs", rep.Local)
	}
	if rep.Replanned == 0 {
		t.Fatal("γ=0 re-planned nothing; scenario too weak")
	}
	for _, out := range rep.Outcomes {
		if out.Mode == ModeLocal {
			t.Fatalf("session %d repaired locally under γ=0", out.RequestID)
		}
	}
}

// TestFingerprintDeterminism runs the identical scenario twice and
// requires byte-identical reports.
func TestFingerprintDeterminism(t *testing.T) {
	run := func() string {
		h := newHarness(t, 60, 11, 25)
		h.failBusyLink(t)
		rep, err := New(h.adm, nil, DefaultPolicy()).Recover(context.Background(), core.NewPlanArena())
		if err != nil {
			t.Fatal(err)
		}
		return rep.Fingerprint()
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("empty fingerprint; scenario too weak")
	}
	if a != b {
		t.Fatalf("identical scenarios diverged:\n--- first\n%s--- second\n%s", a, b)
	}
}

// TestShedWhenUnhostable drops every server: nothing can host the
// chains, so every affected session must shed with ErrDegraded.
func TestShedWhenUnhostable(t *testing.T) {
	h := newHarness(t, 60, 7, 25)
	for _, v := range h.nw.Servers() {
		if err := h.nw.SetServerUp(v, false); err != nil {
			t.Fatal(err)
		}
	}
	affected := h.adm.AffectedLive()
	if len(affected) != h.adm.LiveCount() {
		t.Fatalf("server wipe affected %d of %d sessions", len(affected), h.adm.LiveCount())
	}
	rep, err := New(h.adm, nil, DefaultPolicy()).Recover(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed != len(affected) || rep.Repaired() != 0 {
		t.Fatalf("shed %d repaired %d, want %d / 0", rep.Shed, rep.Repaired(), len(affected))
	}
	if h.adm.LiveCount() != 0 {
		t.Fatalf("live %d after shedding everything", h.adm.LiveCount())
	}
	if got := rep.Degraded(); len(got) != len(affected) {
		t.Fatalf("Degraded lists %d ids, want %d", len(got), len(affected))
	}
}

// TestRecoverCanceledBetweenSessions checks the cancellation contract:
// a context canceled before the pass touches anything repairs nothing
// and leaves every damaged session live for a later pass.
func TestRecoverCanceledBetweenSessions(t *testing.T) {
	h := newHarness(t, 60, 7, 25)
	h.failBusyLink(t)
	affected := h.adm.AffectedLive()
	before := h.adm.LiveCount()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := New(h.adm, nil, DefaultPolicy()).Recover(ctx, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled pass returned %v", err)
	}
	if len(rep.Outcomes) != 0 {
		t.Fatalf("canceled pass produced %d outcomes", len(rep.Outcomes))
	}
	if h.adm.LiveCount() != before {
		t.Fatal("canceled pass changed the live table")
	}
	if got := h.adm.AffectedLive(); len(got) != len(affected) {
		t.Fatal("canceled pass changed the affected set")
	}
	// The interrupted pass can be finished later.
	rep, err = New(h.adm, nil, DefaultPolicy()).Recover(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != len(affected) {
		t.Fatalf("follow-up pass handled %d of %d sessions", len(rep.Outcomes), len(affected))
	}
}
