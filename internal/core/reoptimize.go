package core

import (
	"fmt"

	"nfvmcast/internal/sdn"
)

// Reoptimize is a maintenance pass over admitted sessions (an
// extension beyond the paper): online admission decisions degrade as
// the network fills, so operators periodically re-place long-lived
// sessions. For each session in turn the pass releases its resources,
// re-solves it with Appro_Multi_Cap on the residual network, and
// keeps the new plan only when it is strictly cheaper; otherwise the
// original allocation is restored (always possible — releasing first
// only frees capacity). The network is left consistent after every
// step, so the pass can run concurrently with admission stops between
// requests.
//
// It returns the (possibly replaced) sessions in the same order, the
// number improved, and the total operational cost saved.
//
// When the sessions are managed by an online admitter (OnlineCP and
// friends), inform it of each replacement via its Replace method so a
// later Depart releases the new allocation, not the stale one.
func Reoptimize(
	nw *sdn.Network, sessions []*Solution, opts Options,
) (out []*Solution, improved int, saved float64, err error) {
	opts.Capacitated = true
	out = make([]*Solution, len(sessions))
	copy(out, sessions)
	for i, sol := range out {
		if sol == nil || sol.Request == nil || sol.Tree == nil {
			return nil, 0, 0, fmt.Errorf("core: reoptimize: session %d is incomplete", i)
		}
		oldAlloc := AllocationFor(sol.Request, sol.Tree)
		if err := nw.Release(oldAlloc); err != nil {
			return nil, 0, 0, fmt.Errorf("core: reoptimize session %d: release: %w",
				sol.Request.ID, err)
		}
		restore := func() error {
			if aerr := nw.Allocate(oldAlloc); aerr != nil {
				return fmt.Errorf("core: reoptimize session %d: restore: %w",
					sol.Request.ID, aerr)
			}
			return nil
		}
		fresh, serr := ApproMulti(nw, sol.Request, opts)
		if serr != nil || fresh.OperationalCost >= sol.OperationalCost-1e-9 {
			if rerr := restore(); rerr != nil {
				return nil, 0, 0, rerr
			}
			continue
		}
		if aerr := nw.Allocate(AllocationFor(sol.Request, fresh.Tree)); aerr != nil {
			// The aggregated per-link demand of the new tree did not
			// fit (back-tracking doubling); keep the old plan.
			if rerr := restore(); rerr != nil {
				return nil, 0, 0, rerr
			}
			continue
		}
		saved += sol.OperationalCost - fresh.OperationalCost
		improved++
		out[i] = fresh
	}
	return out, improved, saved, nil
}
