package core

import (
	"math/rand"
	"testing"

	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/topology"
)

// BenchmarkCPPlan measures the pure Online_CP planning cost — the
// engine's hot path (results/BENCH_engine.json shows planning dominates
// the writer by >100x) — on the Fig. 8 workload: Waxman n=100, a
// partially loaded network (64 admitted sessions), and a 64-request
// pool cycled without committing, so every iteration is one
// CPPlanner.Plan against fixed residuals. The recorded baseline lives
// in results/BENCH_plan.json; regenerate it with
//
//	go test ./internal/core/ -run '^$' -bench BenchmarkCPPlan -benchtime 2s
func BenchmarkCPPlan(b *testing.B) {
	topo, err := topology.WaxmanDegree(100, topology.DefaultAvgDegree, 0.14, 42)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := sdn.NewNetwork(topo, sdn.DefaultConfig(), rand.New(rand.NewSource(42)))
	if err != nil {
		b.Fatal(err)
	}
	gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.OnlineGeneratorConfig(), 55)
	if err != nil {
		b.Fatal(err)
	}
	warm, err := gen.Batch(64)
	if err != nil {
		b.Fatal(err)
	}
	adm, err := NewOnlineCP(nw, DefaultCostModel(nw.NumNodes()))
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range warm {
		if _, aerr := adm.Admit(r); aerr != nil && !IsRejection(aerr) {
			b.Fatal(aerr)
		}
	}
	pool, err := gen.Batch(64)
	if err != nil {
		b.Fatal(err)
	}
	planner, err := NewCPPlanner(DefaultCostModel(nw.NumNodes()))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, perr := planner.Plan(nw, pool[i%len(pool)]); perr != nil && !IsRejection(perr) {
			b.Fatal(perr)
		}
	}
}
