package core

import (
	"errors"
	"fmt"
	"sort"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/obs"
	"nfvmcast/internal/sdn"
)

// Errors shared by the algorithms.
var (
	// ErrNoFeasibleServer means no server (combination) can host the
	// request's service chain under the current constraints.
	ErrNoFeasibleServer = errors.New("core: no feasible server for service chain")
	// ErrUnreachable means the source, a destination, or every
	// candidate server is cut off in the (residual) network.
	ErrUnreachable = errors.New("core: endpoints unreachable in (residual) network")
	// ErrRejected is returned by online algorithms when the admission
	// policy rejects a request.
	ErrRejected = errors.New("core: request rejected")
	// ErrDelayBound is returned when Options.MaxDeliveryHops excludes
	// every candidate tree.
	ErrDelayBound = errors.New("core: delay bound excludes every tree")
	// ErrComputeExhausted means no server has enough residual
	// computing capacity for the request's chain.
	ErrComputeExhausted = errors.New("core: no server with enough free computing")
	// ErrThresholdExceeded means the exponential-weight admission
	// thresholds (σ_v, σ_e) exclude every candidate server and tree.
	ErrThresholdExceeded = errors.New("core: admission thresholds exclude every tree")
	// ErrCommitConflict means a plan valid on its residual snapshot
	// was invalidated by concurrent commits and the re-plan budget is
	// exhausted (the engine's optimistic-concurrency give-up path).
	ErrCommitConflict = errors.New("core: commit conflict exhausted re-plan")
)

// RejectReason maps a rejection error chain onto the canonical reason
// labels of the observability layer (obs.Reason*): which constraint
// turned the request away. Commit conflicts are checked first — their
// chains also carry the underlying allocation violation. Returns "" for
// nil and obs.ReasonOther for unclassified rejections.
func RejectReason(err error) string {
	if err == nil {
		return ""
	}
	var (
		bwErr  *sdn.InsufficientBandwidthError
		cmpErr *sdn.InsufficientComputeError
	)
	switch {
	case errors.Is(err, ErrCommitConflict):
		return obs.ReasonCommitConflict
	case errors.Is(err, ErrComputeExhausted):
		return obs.ReasonCompute
	case errors.Is(err, ErrThresholdExceeded):
		return obs.ReasonThreshold
	case errors.Is(err, ErrDelayBound):
		return obs.ReasonDelayBound
	case errors.Is(err, ErrUnreachable), errors.Is(err, ErrNoFeasibleServer):
		return obs.ReasonUnreachable
	case errors.Is(err, sdn.ErrLinkDown), errors.Is(err, sdn.ErrServerDown):
		return obs.ReasonResourceDown
	case errors.As(err, &bwErr):
		return obs.ReasonBandwidth
	case errors.As(err, &cmpErr):
		return obs.ReasonCompute
	default:
		return obs.ReasonOther
	}
}

// Solution is an algorithm's answer for one request: the routing
// graph, which servers host the chain, and its costs.
type Solution struct {
	// Request is the solved request.
	Request *multicast.Request
	// Tree is the pseudo-multicast tree realising the request.
	Tree *multicast.PseudoTree
	// Servers are the switches whose servers run the chain VM.
	Servers []graph.NodeID
	// OperationalCost is the pay-as-you-go cost of the realised tree:
	// sum over links of traversals*b_k*c_e plus sum over used servers
	// of C_v(SC_k)*c_v. This is what the paper's offline figures plot.
	OperationalCost float64
	// SelectionCost is the objective value the algorithm minimised
	// when picking this solution (the auxiliary-tree cost c(T_k^i) for
	// Appro_Multi, the exponential cost for Online_CP, hop count for
	// SP). Comparable only within one algorithm.
	SelectionCost float64
}

// OperationalCost prices a pseudo-multicast tree on a network using
// the linear pay-as-you-go model of the offline problem (paper §III.C
// Case 1): every distinct directed traversal of a link is charged
// b_k*c_e and every serving node is charged C_v(SC_k)*c_v.
func OperationalCost(nw *sdn.Network, req *multicast.Request, tree *multicast.PseudoTree) float64 {
	// Sum in sorted edge order: float addition is order-dependent, and
	// map-ordered sums would make near-tie candidate selection (and
	// thus whole experiment runs) non-deterministic.
	loads := tree.LinkLoads()
	edges := make([]graph.EdgeID, 0, len(loads))
	for e := range loads {
		edges = append(edges, e)
	}
	sort.Ints(edges)
	var cost float64
	for _, e := range edges {
		cost += float64(loads[e]) * req.BandwidthMbps * nw.LinkUnitCost(e)
	}
	demand := req.ComputeDemandMHz()
	for i, v := range tree.Servers {
		d := demand
		if tree.ServerDemands != nil {
			d = tree.ServerDemands[i]
		}
		cost += d * nw.ServerUnitCost(v)
	}
	return cost
}

// AllocationFor converts a pseudo-multicast tree into the resource
// bundle it occupies: b_k per distinct directed traversal per link,
// and C_v(SC_k) at every serving node.
func AllocationFor(req *multicast.Request, tree *multicast.PseudoTree) sdn.Allocation {
	links := make(map[graph.EdgeID]float64)
	for e, uses := range tree.LinkLoads() {
		links[e] = float64(uses) * req.BandwidthMbps
	}
	servers := make(map[graph.NodeID]float64, len(tree.Servers))
	demand := req.ComputeDemandMHz()
	for i, v := range tree.Servers {
		if tree.ServerDemands != nil {
			// Distributed placement: each host carries its own segment.
			servers[v] += tree.ServerDemands[i]
		} else {
			servers[v] = demand
		}
	}
	return sdn.Allocation{Links: links, Servers: servers}
}

// validateInput checks a request against a network before solving.
func validateInput(nw *sdn.Network, req *multicast.Request) error {
	if err := req.Validate(nw.NumNodes()); err != nil {
		return err
	}
	if len(nw.Servers()) == 0 {
		return fmt.Errorf("%w: network has no servers", ErrNoFeasibleServer)
	}
	return nil
}
