package core

import (
	"context"
	"errors"
	"fmt"

	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// Context-aware planning. Planning is the expensive half of admission
// (one Steiner construction per candidate server, one subset sweep for
// Appro_Multi), so it is the natural cancellation point: a planner that
// implements ContextPlanner checks the context between candidate
// evaluations and aborts with the context's error. Cancellation is not
// an admission decision — a canceled plan satisfies neither IsRejection
// nor any rejection sentinel, and the admitter does not count it.

// ContextPlanner is implemented by planners whose candidate loop can be
// canceled mid-plan. PlanContext(ctx, nw, req, arena) must return
// exactly what PlanWith(nw, req, arena) would when ctx is never
// canceled; once ctx is done it returns an error wrapping ctx.Err()
// between candidate evaluations (already-started Steiner constructions
// run to completion — cancellation is checked at candidate
// granularity).
type ContextPlanner interface {
	Planner
	PlanContext(ctx context.Context, nw *sdn.Network, req *multicast.Request, arena *PlanArena) (*Solution, error)
}

// canceled wraps a context error so callers can both recognise the
// cancellation (errors.Is context.Canceled / DeadlineExceeded) and see
// where planning stopped.
func canceled(err error) error {
	return fmt.Errorf("core: planning canceled: %w", err)
}

// IsCanceled reports whether err stems from context cancellation or
// deadline expiry rather than an admission decision.
func IsCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// PlanOnContext is PlanOnWith with cancellation: when the planner
// implements ContextPlanner the context aborts planning between
// candidate evaluations; other planners only honour a context that is
// already done on entry. Cancellation is not counted as a plan failure
// event beyond the plans counter.
func (a *Admitter) PlanOnContext(
	ctx context.Context, view *sdn.Network, req *multicast.Request, arena *PlanArena,
) (*Solution, error) {
	if err := ctx.Err(); err != nil {
		return nil, canceled(err)
	}
	start := a.obs.Now()
	// Provably-doomed requests (see FastRejecter) skip the work graph
	// and Steiner machinery entirely; the error is exactly what the
	// full plan would have returned.
	if err := a.fastReject(view, req); err != nil {
		a.obs.PlanDone(start, req.ID, nil, 0, err)
		return nil, err
	}
	var sol *Solution
	var err error
	switch p := a.planner.(type) {
	case ContextPlanner:
		sol, err = p.PlanContext(ctx, view, req, arena)
	case ArenaPlanner:
		if arena != nil {
			sol, err = p.PlanWith(view, req, arena)
		} else {
			sol, err = a.planner.Plan(view, req)
		}
	default:
		sol, err = a.planner.Plan(view, req)
	}
	if err != nil {
		a.obs.PlanDone(start, req.ID, nil, 0, err)
		return nil, err
	}
	a.obs.PlanDone(start, req.ID, sol.Servers, sol.OperationalCost, nil)
	return sol, nil
}

// AdmitContext is AdmitWith with cancellation. A canceled plan leaves
// the network untouched, is not counted as a rejection, and returns an
// error for which IsCanceled holds (and IsRejection does not).
func (a *Admitter) AdmitContext(
	ctx context.Context, req *multicast.Request, arena *PlanArena,
) (*Solution, error) {
	sol, err := a.PlanOnContext(ctx, a.nw, req, arena)
	if err != nil {
		if IsCanceled(err) {
			return nil, err
		}
		a.countRejection(req, err)
		return nil, err
	}
	sol, err = a.Commit(req, sol)
	if err != nil {
		// Planners only propose trees that fit the residual view; a
		// commit failure here means per-link aggregation of
		// back-tracking traffic exceeded a residual, so reject.
		err = fmt.Errorf("%w: %w", ErrRejected, err)
		a.countRejection(req, err)
		return nil, err
	}
	return sol, nil
}

// ApproMultiContext is ApproMulti with cancellation: the candidate
// subset sweep checks ctx between subset evaluations and aborts with an
// error wrapping ctx.Err(). Results are identical to ApproMulti when
// ctx is never canceled.
func ApproMultiContext(
	ctx context.Context, nw *sdn.Network, req *multicast.Request, opts Options,
) (*Solution, error) {
	opts.ctx = ctx
	return ApproMulti(nw, req, opts)
}
