package core

import (
	"context"
	"fmt"

	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// Planner is the pure planning half of an admission algorithm: given a
// network view and a request it proposes a solution (or an
// ErrRejected-wrapped refusal) without touching residual state. The
// view may be the live network or an independent snapshot of it —
// planners must work against either, which is what lets the admission
// engine fan planning out across goroutines while a single writer owns
// the real network.
//
// Implementations must be safe for concurrent Plan calls as long as
// every call gets its own view or a view no goroutine mutates; any
// internal memoisation (see SPStaticPlanner) must be internally
// synchronised.
type Planner interface {
	// Name identifies the algorithm (for diagnostics and series labels).
	Name() string
	// Plan proposes a solution for req against the residual state of
	// nw, read-only. A policy refusal satisfies IsRejection.
	Plan(nw *sdn.Network, req *multicast.Request) (*Solution, error)
}

// ArenaPlanner is implemented by planners whose Plan can run on
// caller-owned scratch memory (see PlanArena). Callers that plan in a
// loop — the admission engine's worker slots, benchmark drivers — keep
// one arena per goroutine and avoid re-growing planner scratch on
// every request. PlanWith(nw, req, arena) must return exactly what
// Plan(nw, req) would; a nil arena is equivalent to Plan.
type ArenaPlanner interface {
	Planner
	PlanWith(nw *sdn.Network, req *multicast.Request, arena *PlanArena) (*Solution, error)
}

// ApproCapPlanner adapts the offline Appro_Multi_Cap algorithm to the
// Planner interface, turning the Fig. 7 sequential-admission loop
// (solve capacitated, then allocate) into the same plan/commit
// lifecycle the online algorithms use. Options.Capacitated is forced
// on: planning against residual capacities is what makes the plan
// commit-table.
type ApproCapPlanner struct {
	opts Options
}

// NewApproCapPlanner returns an Appro_Multi_Cap planner with the given
// options (K, Workers, ...); Capacitated is forced to true.
func NewApproCapPlanner(opts Options) *ApproCapPlanner {
	opts.Capacitated = true
	return &ApproCapPlanner{opts: opts}
}

// Name identifies the algorithm.
func (p *ApproCapPlanner) Name() string { return "Appro_Multi_Cap" }

// Plan solves req with Appro_Multi_Cap on the residual network.
// Infeasibility is an admission refusal here (the sequential-admission
// reading of the offline algorithm), so errors satisfy IsRejection
// while still matching the original sentinel via errors.Is.
func (p *ApproCapPlanner) Plan(nw *sdn.Network, req *multicast.Request) (*Solution, error) {
	return p.PlanContext(context.Background(), nw, req, nil)
}

// PlanContext is Plan with cancellation between candidate server
// subsets (the arena is ignored: Appro_Multi keeps its own per-worker
// scratch). A canceled plan is not a rejection: the error wraps
// ctx.Err(), not ErrRejected.
func (p *ApproCapPlanner) PlanContext(
	ctx context.Context, nw *sdn.Network, req *multicast.Request, _ *PlanArena,
) (*Solution, error) {
	sol, err := ApproMultiContext(ctx, nw, req, p.opts)
	if err != nil {
		if IsCanceled(err) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %w", ErrRejected, err)
	}
	return sol, nil
}
