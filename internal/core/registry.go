package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Planner registry: one table mapping policy names to constructors, so
// the CLIs, the scenario harness, the sim drivers and the daemon all
// resolve admission policies from the same place instead of each
// maintaining its own switch. Built-in policies register in init below;
// external packages may add their own through RegisterPlanner (before
// any concurrent use — registration is for program start-up).

// ErrUnknownPlanner is returned by NewPlanner for a name no PlannerSpec
// was registered under.
var ErrUnknownPlanner = errors.New("core: unknown planner")

// PlannerOptions carries every knob a registered constructor may need.
// Constructors read only the fields they understand and fall back to
// the evaluation defaults for zero values, so a caller that only knows
// the network size can build any policy with PlannerOptions{Nodes: n}.
type PlannerOptions struct {
	// Nodes sizes the default exponential cost model (α = β = 2n,
	// σ_v = σ_e = n − 1) when Model is nil. Required by the online
	// policies unless Model is set.
	Nodes int
	// Model overrides the cost model of the Online_CP family.
	Model *CostModel
	// K is Online_CPK's server budget (default 2) and, through Solve,
	// Appro_Multi_Cap's subset bound.
	K int
	// SplitLimit bounds how many servers Dist_CP may split one
	// request's chain across (default DefaultSplitLimit).
	SplitLimit int
	// Hysteresis is Reconf_CP's migration threshold β: a live session
	// migrates only when its current exponential price is at least β
	// times the re-planned tree's selection cost (default
	// DefaultReconfHysteresis).
	Hysteresis float64
	// MaxMigrations bounds how many sessions one Reconf_CP pass may
	// migrate (default DefaultReconfMigrations).
	MaxMigrations int
	// Solve configures Appro_Multi_Cap (zero value: DefaultOptions).
	Solve Options
}

// model resolves the effective cost model.
func (o PlannerOptions) model() CostModel {
	if o.Model != nil {
		return *o.Model
	}
	return DefaultCostModel(o.Nodes)
}

// PlannerSpec describes one registered admission policy.
type PlannerSpec struct {
	// Name is the policy's registry key (e.g. "Online_CP"); it must
	// match what the constructed planner's Name() reports.
	Name string
	// Description is the one-line summary the CLIs print in their
	// policy tables.
	Description string
	// New constructs a fresh planner instance. Planners are stateful
	// (work-graph caches, memoised routes), so every engine, shard and
	// sweep point needs its own instance.
	New func(PlannerOptions) (Planner, error)
}

var (
	plannerMu  sync.RWMutex
	plannerTab = make(map[string]PlannerSpec)
)

// RegisterPlanner adds a policy to the registry. It panics on an empty
// name, a nil constructor, or a duplicate registration — all programmer
// errors at start-up, not runtime conditions.
func RegisterPlanner(spec PlannerSpec) {
	if spec.Name == "" {
		panic("core: RegisterPlanner with empty name")
	}
	if spec.New == nil {
		panic(fmt.Sprintf("core: RegisterPlanner(%q) with nil constructor", spec.Name))
	}
	plannerMu.Lock()
	defer plannerMu.Unlock()
	if _, dup := plannerTab[spec.Name]; dup {
		panic(fmt.Sprintf("core: RegisterPlanner(%q) called twice", spec.Name))
	}
	plannerTab[spec.Name] = spec
}

// Planners returns every registered policy, sorted by name.
func Planners() []PlannerSpec {
	plannerMu.RLock()
	defer plannerMu.RUnlock()
	out := make([]PlannerSpec, 0, len(plannerTab))
	for _, spec := range plannerTab {
		out = append(out, spec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupPlanner returns the spec registered under name.
func LookupPlanner(name string) (PlannerSpec, bool) {
	plannerMu.RLock()
	defer plannerMu.RUnlock()
	spec, ok := plannerTab[name]
	return spec, ok
}

// NewPlanner constructs a fresh planner of the named policy, or an
// error wrapping ErrUnknownPlanner listing what is registered.
func NewPlanner(name string, opts PlannerOptions) (Planner, error) {
	spec, ok := LookupPlanner(name)
	if !ok {
		names := make([]string, 0, len(plannerTab))
		for _, s := range Planners() {
			names = append(names, s.Name)
		}
		return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownPlanner, name, names)
	}
	return spec.New(opts)
}

// The built-in policies. Descriptions feed the CLI policy tables, so
// keep them one line each.
func init() {
	RegisterPlanner(PlannerSpec{
		Name:        "Online_CP",
		Description: "paper's online admission: exponential costs, consolidated chain on one server",
		New:         func(o PlannerOptions) (Planner, error) { return NewCPPlanner(o.model()) },
	})
	RegisterPlanner(PlannerSpec{
		Name:        "SP",
		Description: "adaptive shortest-path baseline over residual capacities",
		New:         func(o PlannerOptions) (Planner, error) { return NewSPPlanner(), nil },
	})
	RegisterPlanner(PlannerSpec{
		Name:        "SP_Static",
		Description: "congestion-oblivious shortest-path baseline on static routes",
		New:         func(o PlannerOptions) (Planner, error) { return NewSPStaticPlanner(), nil },
	})
	RegisterPlanner(PlannerSpec{
		Name:        "Online_CPK",
		Description: "online admission with up to K replicated chain VMs (open-problem extension)",
		New: func(o PlannerOptions) (Planner, error) {
			k := o.K
			if k < 1 {
				k = 2
			}
			return NewCPKPlanner(o.model(), k)
		},
	})
	RegisterPlanner(PlannerSpec{
		Name:        "Appro_Multi_Cap",
		Description: "offline 2K-approximation run per arrival on the residual network",
		New: func(o PlannerOptions) (Planner, error) {
			opts := o.Solve
			if opts.K < 1 {
				opts = DefaultOptions()
				if o.K >= 1 {
					opts.K = o.K
				}
			}
			return NewApproCapPlanner(opts), nil
		},
	})
	RegisterPlanner(PlannerSpec{
		Name:        "Dist_CP",
		Description: "distributed chain placement: split the chain across up to SplitLimit servers",
		New: func(o PlannerOptions) (Planner, error) {
			limit := o.SplitLimit
			if limit < 1 {
				limit = DefaultSplitLimit
			}
			return NewDistCPPlanner(o.model(), limit)
		},
	})
	RegisterPlanner(PlannerSpec{
		Name:        "Reconf_CP",
		Description: "Online_CP plus drift-triggered migration of admitted trees on Update",
		New: func(o PlannerOptions) (Planner, error) {
			beta := o.Hysteresis
			if beta <= 0 {
				beta = DefaultReconfHysteresis
			}
			limit := o.MaxMigrations
			if limit < 1 {
				limit = DefaultReconfMigrations
			}
			return NewReconfPlanner(o.model(), beta, limit)
		},
	})
}
