package core

import (
	"fmt"
	"sort"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// Local repair: after a link or server failure severs an admitted
// session's pseudo-multicast tree, RepairReroute re-routes the whole
// session with its server placement pinned. With the VM already placed
// that is a single Steiner construction over {s_k, v} ∪ D_k on the
// residual network — one KMB run instead of the one-per-candidate
// sweep a full re-plan costs — so a recovery pass over many sessions
// stays fast. The recovery driver (internal/recover) accepts the
// result only when its operational cost stays within γ× the original
// tree's; otherwise it falls back to the full planner path.

// RepairReroute plans a replacement tree for req with the serving node
// pinned to server (the placement of the damaged session). It plans on
// the capacitated residual view — the caller must have released the
// damaged session's allocation first, or the session's own leftovers
// will be double-counted against it. Only single-server placements can
// be re-routed locally; multi-server sessions take the re-plan path.
// The returned solution is not yet allocated.
//
// Infeasibility comes back as the usual sentinels (ErrComputeExhausted,
// ErrUnreachable, sdn.ErrServerDown) without an ErrRejected wrap: a
// failed local repair is a fallback trigger, not an admission decision.
func RepairReroute(
	nw *sdn.Network, req *multicast.Request, server graph.NodeID, arena *PlanArena,
) (*Solution, error) {
	if arena == nil {
		arena = NewPlanArena()
	}
	if err := validateInput(nw, req); err != nil {
		return nil, err
	}
	if !nw.ServerUp(server) {
		return nil, fmt.Errorf("%w: pinned server %d", sdn.ErrServerDown, server)
	}
	if nw.ResidualCompute(server) < req.ComputeDemandMHz() {
		return nil, fmt.Errorf("%w: pinned server %d", ErrComputeExhausted, server)
	}

	// Residual view priced by the operational cost the repair should
	// keep low: b_k·c_e per link, the same objective Appro_Multi
	// minimises per candidate.
	w := buildWorkGraph(nw, req, true, func(e graph.EdgeID) float64 {
		return nw.LinkUnitCost(e) * req.BandwidthMbps
	})

	arena.terms = append(arena.terms[:0], req.Source, server)
	arena.terms = append(arena.terms, req.Destinations...)
	arena.sps = arena.sps[:0]
	for _, t := range arena.terms {
		sp := new(graph.ShortestPaths)
		if err := arena.ws.DijkstraInto(w.g, t, sp); err != nil {
			return nil, err
		}
		arena.sps = append(arena.sps, sp)
	}
	st, err := graph.SteinerKMBWithSPs(w.g, arena.terms, arena.sps, &arena.steiner)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	tree, _, err := realizeSingleServer(w, req, server, st, arena, func(e graph.EdgeID) float64 {
		return nw.LinkUnitCost(e) * req.BandwidthMbps
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	return &Solution{
		Request:         req,
		Tree:            tree,
		Servers:         []graph.NodeID{server},
		OperationalCost: OperationalCost(nw, req, tree),
		SelectionCost:   st.Weight,
	}, nil
}

// The Admitter hooks of the recovery workflow. Recovery runs on the
// engine's writer goroutine, which owns the Admitter, so these follow
// the same single-caller rule as the rest of the type.

// AffectedLive returns the IDs of live sessions whose allocation
// touches a failed resource, sorted ascending — the deterministic
// repair order of a recovery pass.
func (a *Admitter) AffectedLive() []int {
	var ids []int
	for id, alloc := range a.lives.byID {
		if a.nw.AffectedBy(alloc) {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// LiveSolution returns the solution currently realising a live
// session, or false when the ID is not admitted.
func (a *Admitter) LiveSolution(reqID int) (*Solution, bool) {
	sol, ok := a.lives.solBy[reqID]
	return sol, ok
}

// ReleaseLive returns a live session's resources to the pool while
// keeping the session recorded — the first step of a repair, so the
// replacement tree plans against residuals that include the freed
// capacity. The caller must follow up with Rebind (repair succeeded)
// or DropLive (session shed); a Depart in between would double-release.
func (a *Admitter) ReleaseLive(reqID int) error {
	alloc, ok := a.lives.byID[reqID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownRequest, reqID)
	}
	return a.nw.Release(alloc)
}

// Rebind commits a repaired solution for a live session whose previous
// allocation was returned by ReleaseLive: it allocates the new tree on
// the network and re-records the session so a later Depart releases
// the replacement bundle. The admission counters do not move — the
// session was already admitted.
func (a *Admitter) Rebind(reqID int, sol *Solution) error {
	if _, ok := a.lives.byID[reqID]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownRequest, reqID)
	}
	if sol == nil || sol.Request == nil || sol.Tree == nil {
		return fmt.Errorf("core: rebind %d with incomplete solution", reqID)
	}
	alloc := AllocationFor(sol.Request, sol.Tree)
	if err := a.nw.Allocate(alloc); err != nil {
		return err
	}
	a.lives.byID[reqID] = alloc
	a.lives.solBy[reqID] = sol
	return nil
}

// DropLive removes a session from the live table without releasing
// resources — the shed path, where ReleaseLive already returned them
// and no replacement could be hosted. The departure counters do not
// move; the observability layer records the shed separately.
func (a *Admitter) DropLive(reqID int) error {
	if _, ok := a.lives.byID[reqID]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownRequest, reqID)
	}
	delete(a.lives.byID, reqID)
	delete(a.lives.solBy, reqID)
	return nil
}
