package core

import (
	"context"
	"errors"
	"testing"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/sdn"
)

// TestRepairReroutePinnedServer: a local repair keeps the damaged
// session's server, avoids every down link, and reaches all
// destinations with a valid service-chained tree.
func TestRepairReroutePinnedServer(t *testing.T) {
	nw := testNetwork(t, 50, 3)
	req := testRequest(t, nw, 5)
	sol, err := ApproMulti(nw, req, Options{K: 1, Capacitated: true})
	if err != nil {
		t.Fatal(err)
	}
	server := sol.Servers[0]

	// Fail one tree link that is not a bridge; the repair must route
	// around it with the same server.
	var failed graph.EdgeID = -1
	isBridge := make(map[graph.EdgeID]bool)
	for _, e := range graph.Bridges(nw.Graph()) {
		isBridge[e] = true
	}
	for e := range AllocationFor(req, sol.Tree).Links {
		if !isBridge[e] {
			failed = e
			break
		}
	}
	if failed == -1 {
		t.Skip("every tree link is a bridge on this draw")
	}
	if err := nw.SetLinkUp(failed, false); err != nil {
		t.Fatal(err)
	}

	rsol, err := RepairReroute(nw, req, server, nil)
	if err != nil {
		t.Fatalf("RepairReroute: %v", err)
	}
	if len(rsol.Servers) != 1 || rsol.Servers[0] != server {
		t.Fatalf("repair moved the server: %v, want [%d]", rsol.Servers, server)
	}
	if _, used := AllocationFor(req, rsol.Tree).Links[failed]; used {
		t.Fatal("repaired tree still crosses the failed link")
	}
	// Packet replay proves the repaired tree still delivers
	// service-chained traffic to every destination.
	if err := nw.Allocate(AllocationFor(req, rsol.Tree)); err != nil {
		t.Fatalf("allocate repair: %v", err)
	}
	ctrl := sdn.NewController(nw)
	if err := ctrl.Install(req, rsol.Tree); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.VerifyDelivery(req.ID); err != nil {
		t.Fatalf("repaired tree fails delivery: %v", err)
	}
}

// TestRepairRerouteSentinels: infeasible repairs surface the plain
// capacity sentinels without an ErrRejected wrap, so the recovery
// driver can treat them as fallback triggers.
func TestRepairRerouteSentinels(t *testing.T) {
	nw := testNetwork(t, 50, 3)
	req := testRequest(t, nw, 5)
	server := nw.Servers()[0]

	if err := nw.SetServerUp(server, false); err != nil {
		t.Fatal(err)
	}
	_, err := RepairReroute(nw, req, server, nil)
	if !errors.Is(err, sdn.ErrServerDown) {
		t.Fatalf("down pinned server: %v, want ErrServerDown", err)
	}
	if errors.Is(err, ErrRejected) {
		t.Fatal("repair infeasibility must not carry ErrRejected")
	}
}

// TestApproMultiContextCanceled: a canceled context aborts the subset
// sweep with an error satisfying IsCanceled, not a rejection.
func TestApproMultiContextCanceled(t *testing.T) {
	nw := testNetwork(t, 50, 3)
	req := testRequest(t, nw, 5)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ApproMultiContext(ctx, nw, req, Options{K: 2})
	if !IsCanceled(err) {
		t.Fatalf("canceled solve returned %v, want IsCanceled", err)
	}

	// A live context is byte-identical to the context-free entry point.
	a, err := ApproMultiContext(context.Background(), nw, req, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ApproMulti(nw, req, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.OperationalCost != b.OperationalCost || len(a.Servers) != len(b.Servers) {
		t.Fatalf("context entry point diverged: %v/%v vs %v/%v",
			a.OperationalCost, a.Servers, b.OperationalCost, b.Servers)
	}
}

// TestCPPlannerPlanContextCanceled mirrors the check for the online
// planner path used by the engine.
func TestCPPlannerPlanContextCanceled(t *testing.T) {
	nw := testNetwork(t, 50, 3)
	req := testRequest(t, nw, 5)
	cp, err := NewOnlineCP(nw, DefaultCostModel(nw.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	p := cp.Planner().(*CPPlanner)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.PlanContext(ctx, nw, req, nil); !IsCanceled(err) {
		t.Fatalf("canceled plan returned %v, want IsCanceled", err)
	}

	live, err := p.PlanContext(context.Background(), nw, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := p.Plan(nw, req)
	if err != nil {
		t.Fatal(err)
	}
	if live.OperationalCost != plain.OperationalCost {
		t.Fatalf("PlanContext cost %v != Plan cost %v", live.OperationalCost, plain.OperationalCost)
	}
}
