package core

import (
	"errors"
	"testing"

	"nfvmcast/internal/multicast"
)

func TestDepartReleasesResources(t *testing.T) {
	nw := testNetwork(t, 40, 5)
	cp, err := NewOnlineCP(nw, DefaultCostModel(nw.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	req := testRequest(t, nw, 9)
	sol, err := cp.Admit(req)
	if err != nil {
		t.Fatal(err)
	}
	if cp.LiveCount() != 1 {
		t.Fatalf("LiveCount = %d, want 1", cp.LiveCount())
	}
	got, err := cp.Depart(req.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got != sol {
		t.Fatal("Depart returned a different solution")
	}
	if cp.LiveCount() != 0 {
		t.Fatalf("LiveCount = %d after departure, want 0", cp.LiveCount())
	}
	const tol = 1e-6
	for e := 0; e < nw.NumEdges(); e++ {
		if d := nw.ResidualBandwidth(e) - nw.BandwidthCap(e); d < -tol || d > tol {
			t.Fatalf("link %d not restored after departure", e)
		}
	}
	for _, v := range nw.Servers() {
		if d := nw.ResidualCompute(v) - nw.ComputeCap(v); d < -tol || d > tol {
			t.Fatalf("server %d not restored after departure", v)
		}
	}
	// Second departure of the same request fails.
	if _, err := cp.Depart(req.ID); !errors.Is(err, ErrUnknownRequest) {
		t.Fatalf("double departure = %v, want ErrUnknownRequest", err)
	}
}

func TestDepartUnknownRequest(t *testing.T) {
	nw := testNetwork(t, 30, 6)
	cp, err := NewOnlineCP(nw, DefaultCostModel(nw.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Depart(42); !errors.Is(err, ErrUnknownRequest) {
		t.Fatalf("unknown departure = %v, want ErrUnknownRequest", err)
	}
	sp := NewOnlineSP(nw)
	if _, err := sp.Depart(42); !errors.Is(err, ErrUnknownRequest) {
		t.Fatalf("SP unknown departure = %v, want ErrUnknownRequest", err)
	}
	st := NewOnlineSPStatic(nw)
	if _, err := st.Depart(42); !errors.Is(err, ErrUnknownRequest) {
		t.Fatalf("SPStatic unknown departure = %v, want ErrUnknownRequest", err)
	}
}

// TestChurnSteadyState runs a long arrival/departure churn and checks
// the system reaches a steady state where capacity invariants hold
// and admission keeps succeeding (departures free enough room).
func TestChurnSteadyState(t *testing.T) {
	nw := testNetwork(t, 50, 12)
	cp, err := NewOnlineCP(nw, DefaultCostModel(nw.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.OnlineGeneratorConfig(), 21)
	if err != nil {
		t.Fatal(err)
	}
	const lifetime = 30 // each admitted session departs 30 arrivals later
	type liveEntry struct {
		id       int
		departAt int
	}
	var live []liveEntry
	lateAdmits := 0
	for i := 0; i < 600; i++ {
		// Departures due now.
		keep := live[:0]
		for _, le := range live {
			if le.departAt <= i {
				if _, err := cp.Depart(le.id); err != nil {
					t.Fatalf("arrival %d: depart %d: %v", i, le.id, err)
				}
			} else {
				keep = append(keep, le)
			}
		}
		live = keep
		req, gerr := gen.Next()
		if gerr != nil {
			t.Fatal(gerr)
		}
		if _, aerr := cp.Admit(req); aerr == nil {
			live = append(live, liveEntry{id: req.ID, departAt: i + lifetime})
			if i >= 400 {
				lateAdmits++
			}
		} else if !IsRejection(aerr) {
			t.Fatalf("arrival %d: %v", i, aerr)
		}
		if cp.LiveCount() != len(live) {
			t.Fatalf("arrival %d: LiveCount %d != tracked %d", i, cp.LiveCount(), len(live))
		}
	}
	if lateAdmits == 0 {
		t.Fatal("no admissions in steady state; departures not freeing capacity")
	}
	for e := 0; e < nw.NumEdges(); e++ {
		if r := nw.ResidualBandwidth(e); r < -1e-6 || r > nw.BandwidthCap(e)+1e-6 {
			t.Fatalf("link %d residual %v out of bounds", e, r)
		}
	}
}

func TestReplaceSwapsRecordedAllocation(t *testing.T) {
	nw := testNetwork(t, 50, 33)
	cp, err := NewOnlineCP(nw, DefaultCostModel(nw.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	req := testRequest(t, nw, 34)
	if _, err := cp.Admit(req); err != nil {
		t.Fatal(err)
	}
	sessions := cp.Admitted()
	reopt, _, _, err := Reoptimize(nw, sessions, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Replace(req.ID, reopt[0]); err != nil {
		t.Fatal(err)
	}
	// Departure after replacement must restore pristine residuals.
	if _, err := cp.Depart(req.ID); err != nil {
		t.Fatal(err)
	}
	const tol = 1e-4
	for e := 0; e < nw.NumEdges(); e++ {
		if d := nw.ResidualBandwidth(e) - nw.BandwidthCap(e); d < -tol || d > tol {
			t.Fatalf("link %d not pristine after replace+depart", e)
		}
	}
	// Error paths.
	if err := cp.Replace(999, reopt[0]); err == nil {
		t.Fatal("replace of unknown session accepted")
	}
	if _, err := cp.Admit(testRequest(t, nw, 35)); err != nil {
		t.Fatal(err)
	}
	id := cp.Admitted()[1].Request.ID
	if err := cp.Replace(id, nil); err == nil {
		t.Fatal("nil replacement accepted")
	}
}
