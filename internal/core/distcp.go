package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// Distributed chain placement (ROADMAP item 5). The paper consolidates
// each request's whole service chain into one VM on one server;
// DistCPPlanner relaxes that: the chain's VNF sequence may be split
// into up to SplitLimit contiguous segments, each hosted on its own
// server, with the unprocessed stream steered through the segment hosts
// in chain order before fanning out to the destinations. Segment hosts
// are chosen under the same exponential resource-cost model and
// admission thresholds as Online_CP, so the competitive-analysis
// machinery (thresholds (a) and (b), absolute exponential selection
// costs) carries over per segment. The payoff is feasibility under
// compute pressure: a chain no single server can host may still fit as
// two half-chains on two servers.
//
// Enumeration is deterministic: segment counts ascend, compositions of
// the chain into segments are generated in lexicographic order, and
// server tuples are explored in ascending node-ID order per position —
// with the strict `cost < best` comparison this realises the
// (cost, enumeration-index) tie-break the determinism oracles pin.

// DefaultSplitLimit is the evaluation's segment budget: two segments
// already covers the "chain too big for any one server" failure mode
// while keeping the tuple sweep near Online_CP's candidate loop cost.
const DefaultSplitLimit = 2

// DistCPPlanner is the distributed-chain online planner. Like
// CPPlanner it serves one logical network plus read-only clones, and
// memoizes residual work graphs across Plan calls.
type DistCPPlanner struct {
	model  CostModel
	split  int
	cache  workGraphCache
	arenas sync.Pool // *PlanArena for arena-less Plan calls
}

// NewDistCPPlanner returns a distributed-chain planner that may split a
// request's chain across up to splitLimit servers.
func NewDistCPPlanner(model CostModel, splitLimit int) (*DistCPPlanner, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if splitLimit < 1 {
		return nil, fmt.Errorf("core: split limit must be >= 1, got %d", splitLimit)
	}
	p := &DistCPPlanner{model: model, split: splitLimit}
	// Identical residual-view recipe to CPPlanner: capacitated link
	// filtering by the request's bandwidth, marginal exponential
	// pricing. The work-graph cache is therefore shared across residual
	// epochs exactly as Online_CP's is (hits, re-keys, patches).
	p.cache.capacitated = true
	p.cache.weight = func(nw *sdn.Network, req *multicast.Request, e graph.EdgeID) float64 {
		utilAfter := 1 - (nw.ResidualBandwidth(e)-req.BandwidthMbps)/nw.BandwidthCap(e)
		return math.Pow(p.model.Beta, utilAfter) - 1
	}
	return p, nil
}

// Name identifies the algorithm.
func (p *DistCPPlanner) Name() string { return "Dist_CP" }

// SplitLimit reports the planner's segment budget.
func (p *DistCPPlanner) SplitLimit() int { return p.split }

// Plan computes the cheapest feasible distributed pseudo-multicast tree
// for req under the exponential weights and the admission thresholds.
func (p *DistCPPlanner) Plan(nw *sdn.Network, req *multicast.Request) (*Solution, error) {
	return p.PlanContext(context.Background(), nw, req, nil)
}

// PlanWith is Plan with a caller-owned scratch arena.
func (p *DistCPPlanner) PlanWith(nw *sdn.Network, req *multicast.Request, arena *PlanArena) (*Solution, error) {
	return p.PlanContext(context.Background(), nw, req, arena)
}

// minSegmentDemand is the smallest compute demand any single segment of
// any admissible split can impose: the full chain when no split is
// possible, otherwise the cheapest single function (a composition may
// always isolate one function into its own segment).
func (p *DistCPPlanner) minSegmentDemand(req *multicast.Request) float64 {
	funcs := req.Chain.Functions()
	if len(funcs) <= 1 || p.split == 1 {
		return req.ComputeDemandMHz()
	}
	minD := math.Inf(1)
	for _, f := range funcs {
		if d := f.DemandMHz(req.BandwidthMbps); d < minD {
			minD = d
		}
	}
	return minD
}

// FastReject reports the cheap provable rejections of Dist_CP: input
// validation, compute exhaustion (no up server can host even the
// smallest possible segment, so no split fits anywhere), and the whole
// candidate pool pricing over σ_v (every segment position would be
// skipped by threshold (a)). Each mirrors the exact error PlanContext
// would produce; anything subtler returns nil and defers to the full
// plan.
func (p *DistCPPlanner) FastReject(view *sdn.Network, req *multicast.Request) error {
	if err := validateInput(view, req); err != nil {
		return fmt.Errorf("%w: %v", ErrRejected, err)
	}
	minSeg := p.minSegmentDemand(req)
	anyEligible, anyUnderThreshold := false, false
	view.VisitServers(func(v graph.NodeID) bool {
		if !view.ServerUp(v) || view.ResidualCompute(v) < minSeg {
			return true
		}
		anyEligible = true
		if p.model.ServerWeight(view, v) < p.model.SigmaV {
			anyUnderThreshold = true
			return false // a full plan is required to decide
		}
		return true
	})
	if !anyEligible {
		return fmt.Errorf("%w: %w: no split fits %0.f MHz",
			ErrRejected, ErrComputeExhausted, req.ComputeDemandMHz())
	}
	if !anyUnderThreshold {
		return fmt.Errorf("%w: %w: no admissible split/tree",
			ErrRejected, ErrThresholdExceeded)
	}
	return nil
}

// distFinal memoizes the processed fan-out for one terminal server: the
// Steiner tree over {v} ∪ D_k (edge IDs are copied out of the arena
// scratch), its absolute link cost, and whether threshold (b) admits
// every tree link. One request shares terminals across every candidate
// tuple ending at v, so the tree is computed once per plan.
type distFinal struct {
	ok    bool
	edges []graph.EdgeID // work-graph-local edge IDs
	cT    float64
}

// distHop memoizes one inter-segment steering hop from → to: the
// absolute exponential cost of the shortest residual path, and whether
// threshold (b) admits every path link.
type distHop struct {
	ok   bool
	cost float64
}

type distHopKey struct{ from, to graph.NodeID }

// PlanContext is PlanWith with cancellation, checked between candidate
// segment counts and before each Steiner construction.
func (p *DistCPPlanner) PlanContext(
	ctx context.Context, nw *sdn.Network, req *multicast.Request, arena *PlanArena,
) (*Solution, error) {
	if arena == nil {
		pooled, _ := p.arenas.Get().(*PlanArena)
		if pooled == nil {
			pooled = NewPlanArena()
		}
		defer p.arenas.Put(pooled)
		arena = pooled
	}
	if err := validateInput(nw, req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	w, spc := p.cache.acquire(nw, req)

	// Candidate pool: up servers that can host at least the smallest
	// possible segment. The cached work graph's server list filters by
	// the *full* chain demand, which is exactly the consolidation
	// assumption this planner relaxes — so eligibility is re-derived
	// here (ascending node-ID order via VisitServers) and re-checked
	// per position against the segment's own demand.
	minSeg := p.minSegmentDemand(req)
	var pool []graph.NodeID
	nw.VisitServers(func(v graph.NodeID) bool {
		if nw.ServerUp(v) && nw.ResidualCompute(v) >= minSeg {
			pool = append(pool, v)
		}
		return true
	})
	if len(pool) == 0 {
		return nil, fmt.Errorf("%w: %w: no split fits %0.f MHz",
			ErrRejected, ErrComputeExhausted, req.ComputeDemandMHz())
	}

	// Destination-rooted Dijkstras are shared by every candidate
	// terminal server's Steiner construction.
	arena.dstSPs = arena.dstSPs[:0]
	for _, d := range req.Destinations {
		spD, derr := spc.fromWith(d, &arena.ws)
		if derr != nil {
			return nil, derr
		}
		arena.dstSPs = append(arena.dstSPs, spD)
	}

	funcs := req.Chain.Functions()
	maxM := p.split
	if len(funcs) > 0 && maxM > len(funcs) {
		maxM = len(funcs)
	}
	if len(funcs) == 0 {
		maxM = 1
	}
	demands := make([]float64, len(funcs))
	for i, f := range funcs {
		demands[i] = f.DemandMHz(req.BandwidthMbps)
	}

	s := &distSearch{
		p: p, nw: nw, w: w, spc: spc, req: req, arena: arena,
		pool:   pool,
		finals: make(map[graph.NodeID]distFinal, len(pool)),
		hops:   make(map[distHopKey]distHop),
		best:   graph.Infinity,
	}

	// Segment counts ascend; compositions of the chain into m positive
	// parts are lexicographic in the part sizes; tuples are explored
	// position-by-position over the ascending pool. The first strict
	// improvement wins ties.
	segd := make([]float64, 0, maxM)
	servers := make([]graph.NodeID, 0, maxM)
	for m := 1; m <= maxM; m++ {
		if cerr := ctx.Err(); cerr != nil {
			return nil, canceled(cerr)
		}
		if err := forEachComposition(len(funcs), m, func(parts []int) error {
			segd = segd[:0]
			idx := 0
			for _, size := range parts {
				var d float64
				for j := 0; j < size; j++ {
					d += demands[idx]
					idx++
				}
				segd = append(segd, d)
			}
			if len(funcs) == 0 { // empty chain: one zero-demand segment
				segd = append(segd, 0)
			}
			return s.assign(ctx, segd, servers[:0], req.Source, 0)
		}); err != nil {
			return nil, err
		}
	}

	if s.bestTree == nil {
		return nil, fmt.Errorf("%w: %w: no admissible split/tree",
			ErrRejected, ErrThresholdExceeded)
	}
	return &Solution{
		Request:         req,
		Tree:            s.bestTree,
		Servers:         s.bestServers,
		OperationalCost: OperationalCost(nw, req, s.bestTree),
		SelectionCost:   s.best,
	}, nil
}

// distSearch carries one PlanContext invocation's state through the
// tuple sweep.
type distSearch struct {
	p     *DistCPPlanner
	nw    *sdn.Network
	w     *workGraph
	spc   *spCache
	req   *multicast.Request
	arena *PlanArena

	pool   []graph.NodeID
	finals map[graph.NodeID]distFinal
	hops   map[distHopKey]distHop

	best        float64
	bestTree    *multicast.PseudoTree
	bestServers []graph.NodeID
	bestDemands []float64
}

// assign extends a partial server tuple at segment position i with
// every admissible candidate, accumulating the exact selection cost
// (steering paths + server costs) and recursing. acc is the partial
// cost through position i-1; pruning on acc >= best is sound because
// every remaining term is non-negative, and it cannot change the
// winner under the strict `sel < best` comparison.
func (s *distSearch) assign(ctx context.Context, segd []float64, chosen []graph.NodeID, prev graph.NodeID, acc float64) error {
	i := len(chosen)
	last := i == len(segd)-1
	for _, v := range s.pool {
		if tupleContains(chosen, v) {
			continue // segments live on distinct servers
		}
		if s.nw.ResidualCompute(v) < segd[i] {
			continue
		}
		// Threshold (a) per segment host (Algorithm 2, step 7).
		if s.p.model.ServerWeight(s.nw, v) >= s.p.model.SigmaV {
			continue
		}
		hop := s.hopTo(prev, v)
		if !hop.ok {
			continue
		}
		c := acc + hop.cost + s.p.model.ServerCost(s.nw, v)
		if c >= s.best {
			continue
		}
		if !last {
			if err := s.assign(ctx, segd, append(chosen, v), v, c); err != nil {
				return err
			}
			continue
		}
		if cerr := ctx.Err(); cerr != nil {
			return canceled(cerr)
		}
		fin := s.finalFor(v)
		if !fin.ok {
			continue
		}
		sel := c + fin.cT
		if sel >= s.best {
			continue
		}
		tuple := append(chosen, v)
		tree, err := s.realize(tuple, segd, fin)
		if err != nil {
			continue
		}
		s.best = sel
		s.bestTree = tree
		s.bestServers = append([]graph.NodeID(nil), tuple...)
		s.bestDemands = append([]float64(nil), segd...)
	}
	return nil
}

// hopTo resolves the steering hop from → to: shortest residual path
// cost in absolute exponential link costs, with threshold (b) applied
// per path link. from == to is a zero-cost no-op (the next segment
// shares the previous host's switch — excluded by distinctness for
// servers, but the source may coincide with the first host).
func (s *distSearch) hopTo(from, to graph.NodeID) distHop {
	if from == to {
		return distHop{ok: true}
	}
	key := distHopKey{from: from, to: to}
	if h, ok := s.hops[key]; ok {
		return h
	}
	h := distHop{}
	sp, err := s.spc.fromWith(from, &s.arena.ws)
	if err == nil && sp.Reachable(to) {
		h.ok = true
		sp.VisitPathEdges(to, func(e graph.EdgeID) bool {
			he := s.w.hostEdge(e)
			if s.p.model.LinkWeight(s.nw, he) >= s.p.model.SigmaE {
				h.ok = false
				return false
			}
			h.cost += s.p.model.LinkCost(s.nw, he)
			return true
		})
	}
	s.hops[key] = h
	return h
}

// finalFor resolves the processed fan-out for terminal server v: the
// Steiner tree over {v} ∪ D_k on the residual work graph, threshold (b)
// per tree link, and its absolute link cost.
func (s *distSearch) finalFor(v graph.NodeID) distFinal {
	if fin, ok := s.finals[v]; ok {
		return fin
	}
	fin := distFinal{}
	spV, err := s.spc.fromWith(v, &s.arena.ws)
	if err == nil {
		s.arena.terms = append(s.arena.terms[:0], v)
		s.arena.terms = append(s.arena.terms, s.req.Destinations...)
		s.arena.sps = append(s.arena.sps[:0], spV)
		s.arena.sps = append(s.arena.sps, s.arena.dstSPs...)
		st, serr := graph.SteinerKMBWithSPs(s.w.g, s.arena.terms, s.arena.sps, &s.arena.steiner)
		if serr == nil {
			fin.ok = true
			for _, e := range st.EdgeIDs {
				if s.p.model.LinkWeight(s.nw, s.w.hostEdge(e)) >= s.p.model.SigmaE {
					fin.ok = false
					break
				}
				fin.cT += s.p.model.LinkCost(s.nw, s.w.hostEdge(e))
			}
			if fin.ok {
				fin.edges = append([]graph.EdgeID(nil), st.EdgeIDs...)
			}
		}
	}
	s.finals[v] = fin
	return fin
}

// realize materialises one tuple's pseudo tree: the unprocessed stream
// chains shortest residual paths source → v_1 → … → v_m through the
// segment hosts in chain order, and the processed stream fans out from
// the terminal host v_m along its Steiner tree. Per-segment compute
// demands ride on the tree (PseudoTree.ServerDemands), so allocation
// and pricing charge each host its own segment, not the whole chain.
func (s *distSearch) realize(tuple []graph.NodeID, segd []float64, fin distFinal) (*multicast.PseudoTree, error) {
	tree := multicast.NewPseudoTree(s.req.Source, s.req.Destinations, tuple)
	tree.ServerDemands = append([]float64(nil), segd...)
	prev := s.req.Source
	for _, v := range tuple {
		if v == prev {
			continue
		}
		sp, err := s.spc.fromWith(prev, &s.arena.ws)
		if err != nil {
			return nil, err
		}
		nodes, edges, ok := sp.PathTo(v)
		if !ok {
			return nil, fmt.Errorf("%w: segment host %d", ErrUnreachable, v)
		}
		if err := s.w.addHostPath(tree, nodes, edges, false); err != nil {
			return nil, err
		}
		prev = v
	}
	vm := tuple[len(tuple)-1]
	rt, err := graph.NewRootedTree(s.w.g, fin.edges, vm)
	if err != nil {
		return nil, err
	}
	for _, d := range s.req.Destinations {
		nodes, edges, perr := rt.PathBetween(vm, d)
		if perr != nil {
			return nil, perr
		}
		if err := s.w.addHostPath(tree, nodes, edges, true); err != nil {
			return nil, err
		}
	}
	return tree, nil
}

// tupleContains reports whether v was already chosen (tuples are tiny —
// a linear scan beats any set).
func tupleContains(chosen []graph.NodeID, v graph.NodeID) bool {
	for _, c := range chosen {
		if c == v {
			return true
		}
	}
	return false
}

// forEachComposition enumerates the compositions of n into m positive
// parts in lexicographic order of the part sizes, calling fn with a
// reused slice. n == 0 (empty chain) yields one empty composition.
func forEachComposition(n, m int, fn func(parts []int) error) error {
	if n == 0 {
		return fn(nil)
	}
	parts := make([]int, m)
	var rec func(pos, left int) error
	rec = func(pos, left int) error {
		if pos == m-1 {
			parts[pos] = left
			return fn(parts)
		}
		// Leave at least one function for each remaining segment.
		for size := 1; size <= left-(m-1-pos); size++ {
			parts[pos] = size
			if err := rec(pos+1, left-size); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, n)
}
