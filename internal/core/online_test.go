package core

import (
	"math"
	"testing"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/nfv"
	"nfvmcast/internal/sdn"
)

func TestDefaultCostModel(t *testing.T) {
	m := DefaultCostModel(100)
	if m.Alpha != 200 || m.Beta != 200 {
		t.Fatalf("alpha/beta = %v/%v, want 200/200", m.Alpha, m.Beta)
	}
	if m.SigmaV != 99 || m.SigmaE != 99 {
		t.Fatalf("sigma = %v/%v, want 99/99", m.SigmaV, m.SigmaE)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelValidate(t *testing.T) {
	bad := []CostModel{
		{Alpha: 1, Beta: 2, SigmaV: 1, SigmaE: 1},
		{Alpha: 2, Beta: 0.5, SigmaV: 1, SigmaE: 1},
		{Alpha: 2, Beta: 2, SigmaV: 0, SigmaE: 1},
		{Alpha: 2, Beta: 2, SigmaV: 1, SigmaE: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("case %d: invalid model accepted: %+v", i, m)
		}
	}
}

func TestCostModelWeightsGrowWithUtilisation(t *testing.T) {
	nw := testNetwork(t, 30, 3)
	m := DefaultCostModel(nw.NumNodes())
	e := graph.EdgeID(0)
	w0 := m.LinkWeight(nw, e)
	if math.Abs(w0) > 1e-12 {
		t.Fatalf("idle link weight = %v, want 0", w0)
	}
	// Allocate half the capacity: weight must be sqrt(beta)-1.
	half := nw.BandwidthCap(e) / 2
	if err := nw.Allocate(sdn.Allocation{Links: map[graph.EdgeID]float64{e: half}}); err != nil {
		t.Fatal(err)
	}
	w1 := m.LinkWeight(nw, e)
	want := math.Sqrt(m.Beta) - 1
	if math.Abs(w1-want) > 1e-9 {
		t.Fatalf("half-utilised weight = %v, want %v", w1, want)
	}
	if m.LinkCost(nw, e) <= 0 {
		t.Fatal("half-utilised link cost should be positive")
	}
	v := nw.Servers()[0]
	if w := m.ServerWeight(nw, v); math.Abs(w) > 1e-12 {
		t.Fatalf("idle server weight = %v, want 0", w)
	}
}

func TestOnlineCPAdmitsAndAllocates(t *testing.T) {
	nw := testNetwork(t, 40, 5)
	cp, err := NewOnlineCP(nw, DefaultCostModel(nw.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.DefaultGeneratorConfig(), 9)
	if err != nil {
		t.Fatal(err)
	}
	before := nw.Snapshot()
	req, err := gen.Next()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := cp.Admit(req)
	if err != nil {
		t.Fatalf("first request rejected on an empty network: %v", err)
	}
	if err := sol.Tree.CheckDelivery(nw.Graph()); err != nil {
		t.Fatal(err)
	}
	if len(sol.Servers) != 1 {
		t.Fatalf("Online_CP used %d servers, want 1 (K=1)", len(sol.Servers))
	}
	if cp.AdmittedCount() != 1 || cp.RejectedCount() != 0 {
		t.Fatalf("counters = (%d,%d), want (1,0)", cp.AdmittedCount(), cp.RejectedCount())
	}
	// Resources actually allocated.
	changed := false
	for e := 0; e < nw.NumEdges(); e++ {
		if nw.ResidualBandwidth(e) < nw.BandwidthCap(e) {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("admission did not allocate any bandwidth")
	}
	// Restoring the snapshot undoes it (sanity of test fixture).
	if err := nw.Restore(before); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineCPRejectionLeavesNetworkUntouched(t *testing.T) {
	nw := testNetwork(t, 30, 6)
	cp, err := NewOnlineCP(nw, DefaultCostModel(nw.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	// Saturate all servers so every request must be rejected.
	servers := make(map[graph.NodeID]float64)
	for _, v := range nw.Servers() {
		servers[v] = nw.ResidualCompute(v)
	}
	if err := nw.Allocate(sdn.Allocation{Servers: servers}); err != nil {
		t.Fatal(err)
	}
	snap := nw.Snapshot()
	req := testRequest(t, nw, 10)
	if _, err := cp.Admit(req); !IsRejection(err) {
		t.Fatalf("Admit on saturated servers = %v, want rejection", err)
	}
	// Residuals unchanged after rejection.
	for e := 0; e < nw.NumEdges(); e++ {
		if nw.ResidualBandwidth(e) != nw.BandwidthCap(e) {
			t.Fatalf("link %d residual changed by a rejected request", e)
		}
	}
	_ = snap
	if cp.AdmittedCount() != 0 || cp.RejectedCount() != 1 {
		t.Fatalf("counters = (%d,%d), want (0,1)", cp.AdmittedCount(), cp.RejectedCount())
	}
}

func TestOnlineCPSequenceInvariants(t *testing.T) {
	nw := testNetwork(t, 50, 12)
	cp, err := NewOnlineCP(nw, DefaultCostModel(nw.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.DefaultGeneratorConfig(), 13)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		req, err := gen.Next()
		if err != nil {
			t.Fatal(err)
		}
		sol, aerr := cp.Admit(req)
		if aerr != nil {
			if !IsRejection(aerr) {
				t.Fatalf("request %d: unexpected error %v", i, aerr)
			}
			continue
		}
		if derr := sol.Tree.CheckDelivery(nw.Graph()); derr != nil {
			t.Fatalf("request %d: %v", i, derr)
		}
	}
	if cp.AdmittedCount() == 0 {
		t.Fatal("nothing admitted in 150 requests")
	}
	if cp.AdmittedCount()+cp.RejectedCount() != 150 {
		t.Fatalf("counters don't add up: %d + %d != 150",
			cp.AdmittedCount(), cp.RejectedCount())
	}
	// Capacity invariants after the full sequence.
	for e := 0; e < nw.NumEdges(); e++ {
		if r := nw.ResidualBandwidth(e); r < -1e-9 || r > nw.BandwidthCap(e)+1e-9 {
			t.Fatalf("link %d residual %v outside [0, %v]", e, r, nw.BandwidthCap(e))
		}
	}
	for _, v := range nw.Servers() {
		if r := nw.ResidualCompute(v); r < -1e-9 || r > nw.ComputeCap(v)+1e-9 {
			t.Fatalf("server %d residual %v outside [0, %v]", v, r, nw.ComputeCap(v))
		}
	}
	if len(cp.Admitted()) != cp.AdmittedCount() {
		t.Fatal("Admitted() length mismatch")
	}
}

func TestOnlineSPSequence(t *testing.T) {
	nw := testNetwork(t, 50, 12)
	sp := NewOnlineSP(nw)
	gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.DefaultGeneratorConfig(), 13)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		req, err := gen.Next()
		if err != nil {
			t.Fatal(err)
		}
		sol, aerr := sp.Admit(req)
		if aerr != nil {
			if !IsRejection(aerr) {
				t.Fatalf("request %d: unexpected error %v", i, aerr)
			}
			continue
		}
		if derr := sol.Tree.CheckDelivery(nw.Graph()); derr != nil {
			t.Fatalf("request %d: %v", i, derr)
		}
		if len(sol.Servers) != 1 {
			t.Fatalf("SP used %d servers", len(sol.Servers))
		}
	}
	if sp.AdmittedCount() == 0 {
		t.Fatal("SP admitted nothing")
	}
	if sp.AdmittedCount()+sp.RejectedCount() != 150 {
		t.Fatal("SP counters don't add up")
	}
	if len(sp.Admitted()) != sp.AdmittedCount() {
		t.Fatal("Admitted() length mismatch")
	}
}

// TestOnlineCPBeatsSPOnThroughput reproduces the paper's headline
// online result (Figs. 8-9): under sustained load the exponential
// cost model admits at least as many requests as the utilisation-
// oblivious SP heuristic.
func TestOnlineCPBeatsSPOnThroughput(t *testing.T) {
	nwCP := testNetwork(t, 50, 21)
	nwSP := testNetwork(t, 50, 21) // identical replica
	cp, err := NewOnlineCP(nwCP, DefaultCostModel(nwCP.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	sp := NewOnlineSP(nwSP)
	genCP, _ := multicast.NewGenerator(nwCP.NumNodes(), multicast.DefaultGeneratorConfig(), 33)
	genSP, _ := multicast.NewGenerator(nwSP.NumNodes(), multicast.DefaultGeneratorConfig(), 33)
	for i := 0; i < 300; i++ {
		rq, _ := genCP.Next()
		_, _ = cp.Admit(rq)
		rq2, _ := genSP.Next()
		_, _ = sp.Admit(rq2)
	}
	if cp.AdmittedCount() < sp.AdmittedCount() {
		t.Fatalf("Online_CP admitted %d < SP %d", cp.AdmittedCount(), sp.AdmittedCount())
	}
	t.Logf("Online_CP admitted %d, SP admitted %d", cp.AdmittedCount(), sp.AdmittedCount())
}

func TestOnlineCPBadModel(t *testing.T) {
	nw := testNetwork(t, 20, 2)
	if _, err := NewOnlineCP(nw, CostModel{Alpha: 0.5, Beta: 2, SigmaE: 1, SigmaV: 1}); err == nil {
		t.Fatal("invalid cost model accepted")
	}
}

func TestAllocationForBacktracking(t *testing.T) {
	// Hand-built pseudo tree with a double-traversed link.
	g := graph.New(3)
	e01 := g.MustAddEdge(0, 1, 1)
	e12 := g.MustAddEdge(1, 2, 1)
	tree := multicast.NewPseudoTree(0, []graph.NodeID{1}, []graph.NodeID{2})
	tree.AddHop(multicast.Hop{From: 0, To: 1, Edge: e01, Processed: false})
	tree.AddHop(multicast.Hop{From: 1, To: 2, Edge: e12, Processed: false})
	tree.AddHop(multicast.Hop{From: 2, To: 1, Edge: e12, Processed: true})
	req := &multicast.Request{ID: 1, Source: 0, Destinations: []graph.NodeID{1},
		BandwidthMbps: 50, Chain: nfv.MustChain(nfv.IDS, nfv.Firewall)}
	alloc := AllocationFor(req, tree)
	if alloc.Links[e01] != 50 {
		t.Fatalf("link 0-1 allocation = %v, want 50", alloc.Links[e01])
	}
	if alloc.Links[e12] != 100 {
		t.Fatalf("link 1-2 allocation = %v, want 100 (double traversal)", alloc.Links[e12])
	}
	if alloc.Servers[2] != req.ComputeDemandMHz() {
		t.Fatalf("server allocation = %v, want %v", alloc.Servers[2], req.ComputeDemandMHz())
	}
}

func TestOnlineSPStaticSequence(t *testing.T) {
	nw := testNetwork(t, 50, 16)
	st := NewOnlineSPStatic(nw)
	gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.OnlineGeneratorConfig(), 17)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		req, gerr := gen.Next()
		if gerr != nil {
			t.Fatal(gerr)
		}
		sol, aerr := st.Admit(req)
		if aerr != nil {
			if !IsRejection(aerr) {
				t.Fatalf("request %d: %v", i, aerr)
			}
			continue
		}
		if derr := sol.Tree.CheckDelivery(nw.Graph()); derr != nil {
			t.Fatalf("request %d: %v", i, derr)
		}
	}
	if st.AdmittedCount() == 0 {
		t.Fatal("static SP admitted nothing")
	}
	if st.AdmittedCount()+st.RejectedCount() != 120 {
		t.Fatal("counters don't add up")
	}
	if len(st.Admitted()) != st.AdmittedCount() {
		t.Fatal("Admitted() mismatch")
	}
	if st.LiveCount() != st.AdmittedCount() {
		t.Fatal("LiveCount mismatch")
	}
	// Departures work on the static variant too.
	first := st.Admitted()[0]
	if _, err := st.Depart(first.Request.ID); err != nil {
		t.Fatal(err)
	}
	if st.LiveCount() != st.AdmittedCount()-1 {
		t.Fatal("LiveCount after departure")
	}
	// SP variant LiveCount as well.
	sp := NewOnlineSP(testNetwork(t, 30, 18))
	if sp.LiveCount() != 0 {
		t.Fatal("fresh SP LiveCount != 0")
	}
}
