package core

import (
	"sync"

	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// workGraphKey identifies one residual work-graph construction: the
// network's structural and residual epochs plus the request parameters
// the construction depends on (link filtering and pricing use the
// request's bandwidth, server filtering its compute demand — nothing
// else about the request enters buildWorkGraph).
//
// Like SPStaticPlanner's memoisation, the key assumes a planner serves
// one logical network plus read-only clones of it: clones inherit both
// versions, and sdn.Network bumps MutationVersion on every residual
// mutation, so equal keys imply identical residual state on that
// network family. The node/edge counts guard against gross mismatches
// when a planner is (incorrectly) pointed at an unrelated network.
type workGraphKey struct {
	structVer uint64
	mutVer    uint64
	nodes     int
	edges     int
	bandwidth float64
	demand    float64
}

func makeWorkGraphKey(nw *sdn.Network, req *multicast.Request) workGraphKey {
	return workGraphKey{
		structVer: nw.StructureVersion(),
		mutVer:    nw.MutationVersion(),
		nodes:     nw.NumNodes(),
		edges:     nw.NumEdges(),
		bandwidth: req.BandwidthMbps,
		demand:    req.ComputeDemandMHz(),
	}
}

// wgEntry pairs a cached work graph with the shortest-path cache over
// it; both are immutable/concurrency-safe, so entries may be shared by
// any number of planner goroutines.
type wgEntry struct {
	key workGraphKey
	w   *workGraph
	sp  *spCache
}

// workGraphCache memoizes residual work graphs (and their
// shortest-path caches) across Plan calls. Admission plans cluster
// around few distinct keys — the engine snapshots one mutation epoch
// for every concurrently-planning request, and replans revisit the
// epoch that invalidated them — so a small LRU captures nearly every
// repeat while old epochs age out. Sharing the spCache is the larger
// win: a hit resumes with every previously-computed Dijkstra tree of
// that residual state.
//
// Safe for concurrent use. Misses are built outside the lock; two
// goroutines may duplicate a build, but buildWorkGraph is
// deterministic, so whichever insert wins is correct.
type workGraphCache struct {
	mu      sync.Mutex
	entries []wgEntry // most recently used first
}

// workGraphCacheSize bounds the LRU: enough for the engine's default
// worker fan-out to keep every in-flight epoch resident.
const workGraphCacheSize = 8

// get returns the cached entry for key, promoting it to most recently
// used.
func (c *workGraphCache) get(key workGraphKey) (*workGraph, *spCache, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.entries {
		if c.entries[i].key == key {
			e := c.entries[i]
			copy(c.entries[1:i+1], c.entries[:i])
			c.entries[0] = e
			return e.w, e.sp, true
		}
	}
	return nil, nil, false
}

// put inserts an entry at the front, evicting the least recently used
// beyond the cache size. An entry already present (a racing build) is
// left in place — both builds are identical.
func (c *workGraphCache) put(key workGraphKey, w *workGraph, sp *spCache) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.entries {
		if c.entries[i].key == key {
			return
		}
	}
	if len(c.entries) < workGraphCacheSize {
		c.entries = append(c.entries, wgEntry{})
	}
	copy(c.entries[1:], c.entries)
	c.entries[0] = wgEntry{key: key, w: w, sp: sp}
}
