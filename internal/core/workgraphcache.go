package core

import (
	"sync"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// workGraphKey identifies one residual work-graph construction: the
// network's structural and residual epochs plus the request parameters
// the construction depends on (link filtering and pricing use the
// request's bandwidth, server filtering its compute demand — nothing
// else about the request enters buildWorkGraph).
//
// Like SPStaticPlanner's memoisation, the key assumes a planner serves
// one logical network plus read-only clones of it: clones inherit both
// versions, and sdn.Network bumps MutationVersion on every residual
// mutation, so equal keys imply identical residual state on that
// network family. The node/edge counts guard against gross mismatches
// when a planner is (incorrectly) pointed at an unrelated network.
type workGraphKey struct {
	structVer uint64
	mutVer    uint64
	nodes     int
	edges     int
	bandwidth float64
	demand    float64
}

func makeWorkGraphKey(nw *sdn.Network, req *multicast.Request) workGraphKey {
	return workGraphKey{
		structVer: nw.StructureVersion(),
		mutVer:    nw.MutationVersion(),
		nodes:     nw.NumNodes(),
		edges:     nw.NumEdges(),
		bandwidth: req.BandwidthMbps,
		demand:    req.ComputeDemandMHz(),
	}
}

// sameFamily reports whether two keys differ only in their residual
// epoch — the precondition for patching one key's entry into the
// other's: equal structVer means identical topology and up/down state,
// and equal request parameters mean identical filtering and pricing
// formulas, so any divergence between the two views is confined to
// residual values the journal (or a value sweep) can enumerate.
func (k workGraphKey) sameFamily(o workGraphKey) bool {
	return k.structVer == o.structVer && k.nodes == o.nodes && k.edges == o.edges &&
		k.bandwidth == o.bandwidth && k.demand == o.demand
}

// residualSnap records the residual values an entry's work graph was
// built from, so a later epoch can be verified value-by-value: a link
// whose (free, cap) pair round-tripped back to these exact bits prices
// to the exact same weight and needs no patch at all. Float residuals
// round-trip bit-exactly through most allocate/release cycles, which
// turns the bulk of epoch transitions into pure re-keys.
type residualSnap struct {
	linkFree []float64
	linkCap  []float64
	srvIDs   []graph.NodeID // sorted; position-aligned with srvFree
	srvFree  []float64
}

func captureResidualSnap(nw *sdn.Network) *residualSnap {
	m := nw.NumEdges()
	s := &residualSnap{
		linkFree: make([]float64, m),
		linkCap:  make([]float64, m),
	}
	for e := 0; e < m; e++ {
		s.linkFree[e] = nw.ResidualBandwidth(e)
		s.linkCap[e] = nw.BandwidthCap(e)
	}
	nw.VisitServers(func(v graph.NodeID) bool {
		s.srvIDs = append(s.srvIDs, v)
		s.srvFree = append(s.srvFree, nw.ResidualCompute(v))
		return true
	})
	return s
}

// serverIndex locates v's position in the sorted srvIDs, or -1.
func (s *residualSnap) serverIndex(v graph.NodeID) int {
	lo, hi := 0, len(s.srvIDs)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.srvIDs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.srvIDs) && s.srvIDs[lo] == v {
		return lo
	}
	return -1
}

// wgEntry pairs a cached work graph with the shortest-path cache over
// it; both are immutable/concurrency-safe, so entries may be shared by
// any number of planner goroutines. snap is the residual state the
// entry was built against; entries inserted through the legacy put
// (tests) carry no snapshot and are served for exact hits only.
type wgEntry struct {
	key  workGraphKey
	w    *workGraph
	sp   *spCache
	snap *residualSnap
}

// wgCall is one in-flight build other goroutines wait on instead of
// duplicating it.
type wgCall struct {
	done chan struct{}
	w    *workGraph
	sp   *spCache
}

// workGraphCache memoizes residual work graphs (and their
// shortest-path caches) across Plan calls, maintained incrementally:
//
//   - An exact (structVer, mutVer, params) hit returns the shared entry.
//   - A miss whose key differs from a cached entry's only by mutation
//     epoch is built by *patching* that base entry. The residual-change
//     journal (sdn.ResidualChangesSince) narrows the candidate set; each
//     candidate is value-verified against the base's residual snapshot.
//     Verified-unchanged epochs re-key the base entry as-is (zero new
//     state — the common case, since residual floats round-trip through
//     allocate/release cycles bit-exactly). A handful of re-priced
//     links clone only the weight array and dynamically repair the
//     cached shortest-path trees (graph.RepairInto). Membership flips
//     or damage beyond a quarter of the graph rebuild from scratch.
//   - Concurrent misses on one key are single-flighted.
//
// Patching preserves bit-identity with a cold build: unchanged edges
// keep weights computed from bit-identical (free, cap) inputs, changed
// edges are re-priced with the same formula a cold build would use,
// and repaired trees are bit-identical to fresh Dijkstra runs whenever
// shortest paths are unique (ties are measure-zero under the planners'
// continuous weight distributions — see graph.RepairInto).
type workGraphCache struct {
	// capacitated and weight fix the build recipe so patches re-price
	// edges exactly as buildWorkGraph would. Set once at planner
	// construction, before any concurrent use.
	capacitated bool
	weight      func(nw *sdn.Network, req *multicast.Request, e graph.EdgeID) float64

	mu       sync.Mutex
	entries  []wgEntry // most recently used first
	inflight map[workGraphKey]*wgCall

	// Transition counters (under mu) — test and tuning instrumentation.
	hits    uint64 // exact key hits
	rekeys  uint64 // verified-unchanged aliases of a base entry
	patches uint64 // weight-patched / server-patched derivations
	builds  uint64 // cold buildWorkGraph runs
}

// workGraphCacheSize bounds the LRU. Entries are cheap to retain
// (re-keyed epochs alias their base's graph and trees), and the engine
// benchmarks cycle through hundreds of distinct request parameter
// pairs, each its own key family — size the cache to keep a full
// request pool resident.
const workGraphCacheSize = 512

// wgMaxChangedFrac bounds patching: when more than this fraction of
// the work graph's edges changed residual class, a cold rebuild is
// cheaper than patch + repair.
const wgMaxChangedFrac = 0.25

// get returns the cached entry for key, promoting it to most recently
// used.
func (c *workGraphCache) get(key workGraphKey) (*workGraph, *spCache, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.lookup(key); ok {
		return e.w, e.sp, true
	}
	return nil, nil, false
}

// lookup finds key and promotes it to the MRU front. Caller holds mu.
func (c *workGraphCache) lookup(key workGraphKey) (wgEntry, bool) {
	for i := range c.entries {
		if c.entries[i].key == key {
			e := c.entries[i]
			copy(c.entries[1:i+1], c.entries[:i])
			c.entries[0] = e
			return e, true
		}
	}
	return wgEntry{}, false
}

// put inserts an entry at the front, evicting the least recently used
// beyond the cache size. An entry already present (a racing build) is
// left in place — both builds are identical.
func (c *workGraphCache) put(key workGraphKey, w *workGraph, sp *spCache) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert(wgEntry{key: key, w: w, sp: sp})
}

// insert is put's locked core, shared with acquire.
func (c *workGraphCache) insert(e wgEntry) {
	for i := range c.entries {
		if c.entries[i].key == e.key {
			return
		}
	}
	if len(c.entries) < workGraphCacheSize {
		c.entries = append(c.entries, wgEntry{})
	}
	copy(c.entries[1:], c.entries)
	c.entries[0] = e
}

// stats returns the transition counters.
func (c *workGraphCache) stats() (hits, rekeys, patches, builds uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.rekeys, c.patches, c.builds
}

// acquire returns the work graph and shortest-path cache for (nw, req),
// from cache, by incremental patch of a same-family entry, or by cold
// build — whichever the residual delta admits. Concurrent misses on
// one key share a single construction.
func (c *workGraphCache) acquire(nw *sdn.Network, req *multicast.Request) (*workGraph, *spCache) {
	key := makeWorkGraphKey(nw, req)
	c.mu.Lock()
	if e, ok := c.lookup(key); ok {
		c.hits++
		c.mu.Unlock()
		return e.w, e.sp
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-call.done
		return call.w, call.sp
	}
	call := &wgCall{done: make(chan struct{})}
	if c.inflight == nil {
		c.inflight = make(map[workGraphKey]*wgCall)
	}
	c.inflight[key] = call
	// Pick the most recently used same-family entry as patch base.
	var base wgEntry
	haveBase := false
	for i := range c.entries {
		e := &c.entries[i]
		if e.snap != nil && e.key.sameFamily(key) {
			base, haveBase = *e, true
			break
		}
	}
	c.mu.Unlock()

	var (
		w    *workGraph
		sp   *spCache
		snap *residualSnap
		kind int // 0 rekey, 1 patch, 2 build
	)
	if haveBase {
		w, sp, snap, kind = c.derive(nw, req, key, base)
	} else {
		kind = 2
	}
	if w == nil {
		w = buildWorkGraph(nw, req, c.capacitated, func(e graph.EdgeID) float64 {
			return c.weight(nw, req, e)
		})
		sp = newSPCache(w.g)
		snap = captureResidualSnap(nw)
		kind = 2
	}

	c.mu.Lock()
	c.insert(wgEntry{key: key, w: w, sp: sp, snap: snap})
	switch kind {
	case 0:
		c.rekeys++
	case 1:
		c.patches++
	default:
		c.builds++
	}
	delete(c.inflight, key)
	c.mu.Unlock()
	call.w, call.sp = w, sp
	close(call.done)
	return w, sp
}

// patchScratch pools the transient state of one derive call.
type patchScratch struct {
	links, srvs  []int32
	gen          uint32
	edgeStamp    []uint32
	srvStamp     []uint32
	changedLocal []graph.EdgeID
	changedW     []float64
	ws           graph.DijkstraWorkspace
	roots        spRootScratch
}

var patchPool = sync.Pool{New: func() any { return new(patchScratch) }}

func (ps *patchScratch) ensure(m, nsrv int) {
	if cap(ps.edgeStamp) < m {
		ps.edgeStamp = make([]uint32, m)
	} else {
		ps.edgeStamp = ps.edgeStamp[:m]
	}
	if cap(ps.srvStamp) < nsrv {
		ps.srvStamp = make([]uint32, nsrv)
	} else {
		ps.srvStamp = ps.srvStamp[:nsrv]
	}
	ps.gen++
	if ps.gen == 0 {
		clear(ps.edgeStamp)
		clear(ps.srvStamp)
		ps.gen = 1
	}
}

// derive attempts to produce key's entry from base by value-verified
// patching. It returns w == nil when the delta demands a cold rebuild
// (membership flips, damage above wgMaxChangedFrac, or a repair
// failure).
func (c *workGraphCache) derive(
	nw *sdn.Network, req *multicast.Request, key workGraphKey, base wgEntry,
) (w *workGraph, sp *spCache, snap *residualSnap, kind int) {
	ps := patchPool.Get().(*patchScratch)
	defer patchPool.Put(ps)
	m := key.edges
	ps.ensure(m, len(base.snap.srvIDs))
	ps.changedLocal = ps.changedLocal[:0]
	ps.changedW = ps.changedW[:0]

	// Candidate changed IDs: the residual journal when the window is
	// retained, otherwise every link and server (a full value sweep is
	// still O(m) float compares — far below a rebuild's pricing cost).
	links, srvs, tracked := nw.ResidualChangesSince(base.key.mutVer, ps.links[:0], ps.srvs[:0])
	ps.links, ps.srvs = links[:0], srvs[:0]

	// Verify candidate links against the base snapshot.
	verifyEdge := func(e graph.EdgeID) bool {
		if ps.edgeStamp[e] == ps.gen {
			return true
		}
		ps.edgeStamp[e] = ps.gen
		free, capMbps := nw.ResidualBandwidth(e), nw.BandwidthCap(e)
		if free == base.snap.linkFree[e] && capMbps == base.snap.linkCap[e] {
			return true // bit-exact round-trip: same membership, same price
		}
		member := !c.capacitated || free >= key.bandwidth
		local := base.w.fromHost[e]
		if (local >= 0) != member {
			return false // residual class flipped: graph shape changes
		}
		if member {
			ps.changedLocal = append(ps.changedLocal, graph.EdgeID(local))
			ps.changedW = append(ps.changedW, c.weight(nw, req, e))
		}
		return true
	}
	if tracked {
		for _, e := range links {
			if e < 0 || int(e) >= m {
				return nil, nil, nil, 0
			}
			if !verifyEdge(graph.EdgeID(e)) {
				return nil, nil, nil, 0
			}
		}
	} else {
		for e := 0; e < m; e++ {
			if !verifyEdge(e) {
				return nil, nil, nil, 0
			}
		}
	}
	if len(ps.changedLocal) > int(wgMaxChangedFrac*float64(base.w.g.NumEdges())) {
		return nil, nil, nil, 0 // damage too broad: rebuild
	}

	// Verify candidate servers. Membership flips rebuild only the
	// eligible-server list — server state never enters the graph.
	srvChanged, srvFlip := false, false
	verifySrv := func(v graph.NodeID) bool {
		i := base.snap.serverIndex(v)
		if i < 0 {
			return false // unknown server: snapshot is stale, rebuild
		}
		if ps.srvStamp[i] == ps.gen {
			return true
		}
		ps.srvStamp[i] = ps.gen
		free := nw.ResidualCompute(v)
		baseFree := base.snap.srvFree[i]
		if free == baseFree {
			return true
		}
		srvChanged = true
		if c.capacitated && (free >= key.demand) != (baseFree >= key.demand) {
			srvFlip = true
		}
		return true
	}
	if tracked {
		for _, v := range srvs {
			if !verifySrv(graph.NodeID(v)) {
				return nil, nil, nil, 0
			}
		}
	} else {
		ok := true
		nw.VisitServers(func(v graph.NodeID) bool {
			ok = verifySrv(v)
			return ok
		})
		if !ok {
			return nil, nil, nil, 0
		}
	}

	if len(ps.changedLocal) == 0 && !srvChanged {
		// Verified bit-identical residual view: alias the base entry
		// under the new key, sharing graph, trees and snapshot.
		return base.w, base.sp, base.snap, 0
	}

	servers := base.w.servers
	if srvFlip {
		servers = make([]graph.NodeID, 0, len(base.w.servers))
		demand := key.demand
		nw.VisitServers(func(v graph.NodeID) bool {
			if nw.ServerUp(v) && nw.ResidualCompute(v) >= demand {
				servers = append(servers, v)
			}
			return true
		})
	}

	if len(ps.changedLocal) == 0 {
		// Only server residuals moved: the graph and every cached tree
		// stay exactly valid — share them, refresh the snapshot.
		nw2 := &workGraph{g: base.w.g, toHost: base.w.toHost, fromHost: base.w.fromHost, servers: servers}
		return nw2, base.sp, captureResidualSnap(nw), 1
	}

	// Re-price the changed edges on a weight-only clone and repair the
	// cached shortest-path trees through the change set.
	newG := base.w.g.WeightClone()
	for i, local := range ps.changedLocal {
		if err := newG.SetWeight(local, ps.changedW[i]); err != nil {
			return nil, nil, nil, 0
		}
	}
	maxDamage := key.nodes / 4
	newSP, err := base.sp.repairedClone(newG, ps.changedLocal, maxDamage, &ps.ws, &ps.roots)
	if err != nil {
		return nil, nil, nil, 0
	}
	nw2 := &workGraph{g: newG, toHost: base.w.toHost, fromHost: base.w.fromHost, servers: servers}
	return nw2, newSP, captureResidualSnap(nw), 1
}
