package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// OnlineCP implements Algorithm 2 (Online_CP): online admission of
// NFV-enabled multicast requests with K = 1 under the exponential cost
// model, with competitive ratio O(log |V|). Construct one per request
// sequence and feed arrivals to Admit; admitted requests' resources
// are allocated on the network immediately. It pairs the pure
// CPPlanner with the shared Admitter commit machinery.
type OnlineCP struct {
	*Admitter
}

// NewOnlineCP returns an admitter over nw with the given cost model.
func NewOnlineCP(nw *sdn.Network, model CostModel) (*OnlineCP, error) {
	p, err := NewCPPlanner(model)
	if err != nil {
		return nil, err
	}
	return &OnlineCP{Admitter: NewAdmitter(nw, p)}, nil
}

// CPPlanner is the pure planning half of Online_CP: the cheapest
// feasible pseudo-multicast tree for a request under the exponential
// weights and the admission thresholds, with no side effects on the
// network view it plans against.
//
// A planner instance serves one logical network and its read-only
// clones (the same constraint SPStaticPlanner documents): it memoizes
// residual work graphs keyed on the network's structure and mutation
// versions, which identify a residual state only within one network
// family.
type CPPlanner struct {
	model  CostModel
	cache  workGraphCache
	arenas sync.Pool // *PlanArena for arena-less Plan calls
}

// NewCPPlanner returns an Online_CP planner with the given cost model.
func NewCPPlanner(model CostModel) (*CPPlanner, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	p := &CPPlanner{model: model}
	// Residual view of the network. Steiner-tree construction prices
	// each link with the request's marginal exponential cost — the
	// weight increase its own b_k causes. On an idle network the
	// paper's w_e(k) is 0 on every link, which would leave tree
	// selection indifferent between short and long trees; the
	// marginal form ≈ (b_k/B_e)·ln β at low load steers requests
	// onto short, high-capacity trees and converges to w_e(k) as
	// links fill. Admission thresholds still use the paper's
	// pre-allocation weights. The recipe lives on the cache so
	// incremental patches re-price edges exactly as a cold build
	// would.
	p.cache.capacitated = true
	p.cache.weight = func(nw *sdn.Network, req *multicast.Request, e graph.EdgeID) float64 {
		utilAfter := 1 - (nw.ResidualBandwidth(e)-req.BandwidthMbps)/nw.BandwidthCap(e)
		return math.Pow(p.model.Beta, utilAfter) - 1
	}
	return p, nil
}

// Name identifies the algorithm.
func (p *CPPlanner) Name() string { return "Online_CP" }

// view returns the residual work graph and shortest-path cache for
// (nw, req) — cached, incrementally patched from a neighbouring
// residual epoch, or cold-built, whichever the delta admits (see
// workGraphCache).
func (p *CPPlanner) view(nw *sdn.Network, req *multicast.Request) (*workGraph, *spCache) {
	return p.cache.acquire(nw, req)
}

// Plan computes the cheapest feasible pseudo-multicast tree for req
// under the exponential weights and the admission thresholds.
func (p *CPPlanner) Plan(nw *sdn.Network, req *multicast.Request) (*Solution, error) {
	return p.PlanContext(context.Background(), nw, req, nil)
}

// PlanWith is Plan with a caller-owned scratch arena (see PlanArena);
// the engine hands each planner worker its own so concurrent plans
// never share scratch. The result is identical to Plan.
func (p *CPPlanner) PlanWith(nw *sdn.Network, req *multicast.Request, arena *PlanArena) (*Solution, error) {
	return p.PlanContext(context.Background(), nw, req, arena)
}

// PlanContext is PlanWith with cancellation: ctx is checked between
// candidate servers, so a canceled plan aborts after at most one more
// Steiner construction. Results are identical to PlanWith whenever ctx
// stays live.
func (p *CPPlanner) PlanContext(
	ctx context.Context, nw *sdn.Network, req *multicast.Request, arena *PlanArena,
) (*Solution, error) {
	if arena == nil {
		pooled, _ := p.arenas.Get().(*PlanArena)
		if pooled == nil {
			pooled = NewPlanArena()
		}
		defer p.arenas.Put(pooled)
		arena = pooled
	}
	if err := validateInput(nw, req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	w, spc := p.view(nw, req)
	if len(w.servers) == 0 {
		return nil, fmt.Errorf("%w: %w: %0.f MHz demanded",
			ErrRejected, ErrComputeExhausted, req.ComputeDemandMHz())
	}

	// KMB needs one shortest-path tree per terminal, and every
	// candidate server shares the terminals {s_k} ∪ D_k — so the
	// source- and destination-rooted Dijkstras run once per request
	// (through the epoch cache: once per residual state) instead of
	// once per candidate, and each candidate only adds its own root.
	spSrc, err := spc.fromWith(req.Source, &arena.ws)
	if err != nil {
		return nil, err
	}
	arena.dstSPs = arena.dstSPs[:0]
	dMax := 0.0 // farthest destination from the source
	for _, d := range req.Destinations {
		spD, derr := spc.fromWith(d, &arena.ws)
		if derr != nil {
			return nil, derr
		}
		arena.dstSPs = append(arena.dstSPs, spD)
		if dd := spSrc.Dist[d]; dd > dMax {
			dMax = dd
		}
	}

	var (
		bestSelection = graph.Infinity
		bestTree      *multicast.PseudoTree
		bestServer    = graph.NodeID(-1)
	)
	for _, v := range w.servers {
		if cerr := ctx.Err(); cerr != nil {
			return nil, canceled(cerr)
		}
		// Threshold (a): overloaded servers are not considered
		// (Algorithm 2, step 7).
		if p.model.ServerWeight(nw, v) >= p.model.SigmaV {
			continue
		}
		// Admissible pre-KMB bound: any Steiner tree over
		// {s_k, v} ∪ D_k contains a path s_k→v and a path to the
		// farthest destination, so its cost is at least
		// max(dist(s,v), max_d dist(s,d)); adding the server cost
		// lower-bounds the selection cost before running KMB at all.
		// A pruned candidate satisfies sel >= lower0 >= bestSelection
		// and would lose the strict `sel < bestSelection` comparison,
		// so the chosen server and tree are bit-identical with or
		// without the pruning (spSrc.Dist[v] = Infinity reproduces the
		// KMB-unreachable `continue`).
		if lower0 := maxf(spSrc.Dist[v], dMax) + p.model.ServerCost(nw, v); lower0 >= bestSelection {
			continue
		}
		spV, verr := spc.fromWith(v, &arena.ws)
		if verr != nil {
			continue
		}
		arena.terms = append(arena.terms[:0], req.Source, v)
		arena.terms = append(arena.terms, req.Destinations...)
		arena.sps = append(arena.sps[:0], spSrc, spV)
		arena.sps = append(arena.sps, arena.dstSPs...)
		st, err := graph.SteinerKMBWithSPs(w.g, arena.terms, arena.sps, &arena.steiner)
		if err != nil {
			continue // this server is cut off in the residual network
		}
		// Threshold (b): reject trees over overloaded links
		// (Algorithm 2, step 9). We apply the threshold per link:
		// admission requires w_e(k) < σ_e on every tree link, the
		// bound Lemma 1 needs, and a rejection still implies
		// Σ_e w_e(k) >= σ_e as Lemma 2 requires. (Summing over the
		// tree instead would cap average link utilisation near
		// log_β(σ_e/|T|), rejecting most requests long before the
		// network fills.)
		overloaded := false
		for _, e := range st.EdgeIDs {
			if p.model.LinkWeight(nw, w.hostEdge(e)) >= p.model.SigmaE {
				overloaded = true
				break
			}
		}
		if overloaded {
			continue
		}
		// Selection cost (Algorithm 2, step 12):
		// cost(k) = c(T) + c_v(SC_k) + c(p_{v,u}) in absolute
		// exponential costs. The back-tracking term c(p_{v,u}) is a sum
		// of non-negative link costs, so c(T) + c_v(SC_k) lower-bounds
		// the selection cost — candidates that cannot beat the incumbent
		// skip pseudo-tree realization entirely. A skipped candidate's
		// true cost satisfies sel >= lower >= bestSelection, so it would
		// have lost the strict `sel < bestSelection` comparison anyway:
		// the chosen server and tree are bit-identical with or without
		// the pruning.
		var cT float64
		for _, e := range st.EdgeIDs {
			cT += p.model.LinkCost(nw, w.hostEdge(e))
		}
		lower := cT + p.model.ServerCost(nw, v)
		if lower >= bestSelection {
			continue
		}
		tree, retCost, err := p.realize(nw, w, req, v, st, arena)
		if err != nil {
			continue
		}
		sel := lower + retCost
		if sel < bestSelection {
			bestSelection, bestTree, bestServer = sel, tree, v
		}
	}
	if bestTree == nil {
		return nil, fmt.Errorf("%w: %w: no admissible server/tree",
			ErrRejected, ErrThresholdExceeded)
	}
	return &Solution{
		Request:         req,
		Tree:            bestTree,
		Servers:         []graph.NodeID{bestServer},
		OperationalCost: OperationalCost(nw, req, bestTree),
		SelectionCost:   bestSelection,
	}, nil
}

// realize turns a Steiner tree over {s_k, v} ∪ D_k into the pseudo
// tree of paper §V.B, pricing the back-tracking path with the model's
// absolute exponential link cost.
func (p *CPPlanner) realize(
	nw *sdn.Network, w *workGraph, req *multicast.Request, v graph.NodeID, st *graph.SteinerTree,
	arena *PlanArena,
) (*multicast.PseudoTree, float64, error) {
	return realizeSingleServer(w, req, v, st, arena, func(e graph.EdgeID) float64 {
		return p.model.LinkCost(nw, e)
	})
}

// realizeSingleServer turns a Steiner tree over {s_k, v} ∪ D_k into the
// pseudo tree of paper §V.B: unprocessed traffic follows the tree path
// s_k→v; processed traffic serves v's subtree directly and back-tracks
// from v to u = LCA(v, d_1, ..., d_m) for the remaining destinations.
// It returns the tree plus the cost of the back-tracking path c(p_{v,u})
// priced by linkCost over host edge IDs — Online_CP prices it with the
// exponential model, the repair planner with the operational unit cost.
// Shared by CPPlanner.PlanContext and RepairReroute so a repaired tree
// has exactly the structure a fresh plan would produce.
func realizeSingleServer(
	w *workGraph, req *multicast.Request, v graph.NodeID, st *graph.SteinerTree,
	arena *PlanArena, linkCost func(e graph.EdgeID) float64,
) (*multicast.PseudoTree, float64, error) {
	rt, err := graph.NewRootedTree(w.g, st.EdgeIDs, req.Source)
	if err != nil {
		return nil, 0, err
	}
	arena.lcaArgs = append(arena.lcaArgs[:0], v)
	arena.lcaArgs = append(arena.lcaArgs, req.Destinations...)
	u, err := rt.LCAAll(arena.lcaArgs...)
	if err != nil {
		return nil, 0, err
	}

	tree := multicast.NewPseudoTree(req.Source, req.Destinations, []graph.NodeID{v})

	// Unprocessed: source down the tree to the server.
	nodes, edges, err := rt.PathBetween(req.Source, v)
	if err != nil {
		return nil, 0, err
	}
	if err := w.addHostPath(tree, nodes, edges, false); err != nil {
		return nil, 0, err
	}

	// Processed: back-track v → u, then fan out u → d and v → d.
	var retCost float64
	nodes, edges, err = rt.PathBetween(v, u)
	if err != nil {
		return nil, 0, err
	}
	if err := w.addHostPath(tree, nodes, edges, true); err != nil {
		return nil, 0, err
	}
	for _, e := range edges {
		retCost += linkCost(w.hostEdge(e))
	}
	for _, d := range req.Destinations {
		start := u
		if onPath, perr := rt.LCA(v, d); perr == nil && onPath == v {
			start = v // d lies in v's subtree: serve it directly
		}
		nodes, edges, err = rt.PathBetween(start, d)
		if err != nil {
			return nil, 0, err
		}
		if err := w.addHostPath(tree, nodes, edges, true); err != nil {
			return nil, 0, err
		}
	}
	return tree, retCost, nil
}

// IsRejection reports whether err represents an admission-policy
// rejection (as opposed to an input error).
func IsRejection(err error) bool { return errors.Is(err, ErrRejected) }

// maxf is math.Max without the NaN/signed-zero ceremony — distances
// here are non-negative and never NaN.
func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
