package core

import (
	"fmt"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// AlgOneServer implements the evaluation baseline of Zhang et al.
// ([22] in the paper): the service chain runs on exactly one server.
// For every candidate server v it routes the traffic from the source
// to v over a shortest path and builds a multicast tree from v to the
// destinations by expanding the MST of the destination metric closure
// (the KMB construction over terminals {v} ∪ D_k), keeping the
// cheapest (server, tree) combination. It never uses more than one
// server and never lets the tree structure influence the
// source-to-server route — the joint optimisation Appro_Multi adds.
func AlgOneServer(nw *sdn.Network, req *multicast.Request, capacitated bool) (*Solution, error) {
	if err := validateInput(nw, req); err != nil {
		return nil, err
	}
	w := buildWorkGraph(nw, req, capacitated, func(e graph.EdgeID) float64 {
		return nw.LinkUnitCost(e) * req.BandwidthMbps
	})
	if len(w.servers) == 0 {
		return nil, ErrNoFeasibleServer
	}
	spSrc, err := graph.Dijkstra(w.g, req.Source)
	if err != nil {
		return nil, err
	}
	spSrv := make(map[graph.NodeID]*graph.ShortestPaths)
	var reachSrv []graph.NodeID
	for _, v := range w.servers {
		if !spSrc.Reachable(v) {
			continue
		}
		sp, derr := graph.Dijkstra(w.g, v)
		if derr != nil {
			return nil, derr
		}
		spSrv[v] = sp
		reachSrv = append(reachSrv, v)
	}
	if len(reachSrv) == 0 {
		return nil, fmt.Errorf("%w: no server reachable from source %d", ErrUnreachable, req.Source)
	}
	ev, err := newClosureEvaluator(w, req, spSrv, nil, nil)
	if err != nil {
		return nil, err
	}

	demand := req.ComputeDemandMHz()
	var (
		bestCost = graph.Infinity
		bestSel  float64
		bestTree *multicast.PseudoTree
		scratch  evalScratch
	)
	for _, v := range reachSrv {
		realEdges, treeCost, rerr := ev.steinerRooted(v, &scratch)
		if rerr != nil {
			continue
		}
		tree, derr := decompose(w, req, spSrc, []graph.NodeID{v}, realEdges, &scratch)
		if derr != nil {
			continue
		}
		sel := spSrc.Dist[v] + nw.ServerUnitCost(v)*demand + treeCost
		if cost := OperationalCost(nw, req, tree); cost < bestCost {
			bestCost, bestSel, bestTree = cost, sel, tree
		}
	}
	if bestTree == nil {
		return nil, fmt.Errorf("%w: no server can reach source and all destinations",
			ErrUnreachable)
	}
	return &Solution{
		Request:         req,
		Tree:            bestTree,
		Servers:         bestTree.Servers,
		OperationalCost: bestCost,
		SelectionCost:   bestSel,
	}, nil
}

// AlgOneServerNearest is the literal two-stage reading of the [22]
// baseline ("first routes the traffic of r_k to a server, and then
// finds an MST..."): stage one commits to the server with the
// cheapest source route, ignoring both its computing price and the
// destinations; stage two builds the KMB tree from that server. It is
// strictly weaker than AlgOneServer and shows what the joint
// computing/bandwidth trade-off of Appro_Multi buys.
func AlgOneServerNearest(nw *sdn.Network, req *multicast.Request, capacitated bool) (*Solution, error) {
	if err := validateInput(nw, req); err != nil {
		return nil, err
	}
	w := buildWorkGraph(nw, req, capacitated, func(e graph.EdgeID) float64 {
		return nw.LinkUnitCost(e) * req.BandwidthMbps
	})
	if len(w.servers) == 0 {
		return nil, ErrNoFeasibleServer
	}
	spSrc, err := graph.Dijkstra(w.g, req.Source)
	if err != nil {
		return nil, err
	}
	nearest, nearestDist := graph.NodeID(-1), graph.Infinity
	for _, v := range w.servers {
		if d := spSrc.Dist[v]; d < nearestDist {
			nearest, nearestDist = v, d
		}
	}
	if nearest == -1 {
		return nil, fmt.Errorf("%w: no server reachable from source %d", ErrUnreachable, req.Source)
	}
	spV, err := graph.Dijkstra(w.g, nearest)
	if err != nil {
		return nil, err
	}
	ev, err := newClosureEvaluator(w, req, map[graph.NodeID]*graph.ShortestPaths{nearest: spV}, nil, nil)
	if err != nil {
		return nil, err
	}
	var scratch evalScratch
	realEdges, treeCost, err := ev.steinerRooted(nearest, &scratch)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	tree, err := decompose(w, req, spSrc, []graph.NodeID{nearest}, realEdges, &scratch)
	if err != nil {
		return nil, err
	}
	return &Solution{
		Request:         req,
		Tree:            tree,
		Servers:         tree.Servers,
		OperationalCost: OperationalCost(nw, req, tree),
		SelectionCost:   nearestDist + nw.ServerUnitCost(nearest)*req.ComputeDemandMHz() + treeCost,
	}, nil
}
