package core

import (
	"context"

	"nfvmcast/internal/multicast"
	"nfvmcast/internal/obs"
	"nfvmcast/internal/sdn"
)

// Admitter is the shared commit half of online admission: it binds a
// Planner to the network it admits onto and owns the whole admit/
// depart lifecycle — plan, allocate, record the live session, count
// the decision. OnlineCP, OnlineSP, OnlineSPStatic and OnlineCPK are
// thin wrappers that pair it with their planner; the admission engine
// (internal/engine) drives the same machinery with planning moved onto
// snapshots.
//
// An Admitter is not safe for concurrent use: exactly one goroutine
// may call its methods at a time (the engine's single writer, or a
// plain sequential driver). The exception is PlanOn, which only
// touches the planner and the (concurrency-safe) observability hooks,
// so the engine may call it from planner goroutines.
type Admitter struct {
	nw      *sdn.Network
	planner Planner
	lives   *liveTable
	obs     *obs.AdmissionObs // nil-safe hooks; nil = observability off

	admitted []*Solution
	rejected int
}

// NewAdmitter returns an admitter committing planner's proposals onto
// nw.
func NewAdmitter(nw *sdn.Network, planner Planner) *Admitter {
	return &Admitter{nw: nw, planner: planner, lives: newLiveTable(nw)}
}

// Observe attaches observability hooks: per-policy accept/reject
// counters (with canonical reasons), the live-session gauge, sampled
// latencies and the admission-event stream. Attach before the first
// Admit; a nil AdmissionObs (or never calling Observe) disables
// instrumentation at the cost of one nil check per hook.
func (a *Admitter) Observe(o *obs.AdmissionObs) { a.obs = o }

// Network returns the network this admitter allocates on.
func (a *Admitter) Network() *sdn.Network { return a.nw }

// Planner returns the planning half of the algorithm.
func (a *Admitter) Planner() Planner { return a.planner }

// PlanOn runs the planner for req against view (the live network or a
// residual snapshot) with instrumentation: the plan counter, sampled
// planner latency, and an AdmitPlanned event on success. It does not
// count rejections — the caller decides whether a failed plan is final
// (CountRejection) or re-planned.
func (a *Admitter) PlanOn(view *sdn.Network, req *multicast.Request) (*Solution, error) {
	return a.PlanOnWith(view, req, nil)
}

// PlanOnWith is PlanOn with a caller-owned scratch arena, forwarded to
// the planner when it implements ArenaPlanner (and ignored otherwise).
// The engine keeps one arena per planner slot so concurrent plans
// reuse scratch without sharing it.
func (a *Admitter) PlanOnWith(view *sdn.Network, req *multicast.Request, arena *PlanArena) (*Solution, error) {
	return a.PlanOnContext(context.Background(), view, req, arena)
}

// Admit decides request req: on admission it returns the realised
// solution (already allocated on the network); on rejection it
// returns ErrRejected (wrapped with the reason) and leaves the network
// untouched.
func (a *Admitter) Admit(req *multicast.Request) (*Solution, error) {
	return a.AdmitWith(req, nil)
}

// AdmitWith is Admit with a caller-owned scratch arena for the plan
// step (see PlanOnWith). Decisions are identical to Admit.
func (a *Admitter) AdmitWith(req *multicast.Request, arena *PlanArena) (*Solution, error) {
	return a.AdmitContext(context.Background(), req, arena)
}

// Commit validates a planned solution against the network's current
// residuals by allocating it; on success the session is recorded live.
// It does not count a failure as a rejection — callers that re-plan on
// commit conflicts (the engine's optimistic-concurrency path) decide
// that via CountRejection.
func (a *Admitter) Commit(req *multicast.Request, sol *Solution) (*Solution, error) {
	start := a.obs.Now()
	alloc := AllocationFor(req, sol.Tree)
	if err := a.nw.Allocate(alloc); err != nil {
		return nil, err
	}
	a.lives.record(req, sol, alloc)
	a.admitted = append(a.admitted, sol)
	a.obs.CommitDone(start, req.ID, sol.Servers, sol.OperationalCost)
	return sol, nil
}

// CountRejection records a rejection of req decided outside Admit (the
// engine's snapshot-planning path, where plan and commit are separate
// steps). err is classified into a canonical reason (RejectReason) for
// the per-reason counters and the Rejected event.
func (a *Admitter) CountRejection(req *multicast.Request, err error) {
	a.countRejection(req, err)
}

func (a *Admitter) countRejection(req *multicast.Request, err error) {
	a.rejected++
	a.obs.RejectedReason(req.ID, RejectReason(err))
}

// Depart releases the resources of an admitted request (the session
// ended). It returns the solution that had realised the request so
// callers can also uninstall its flow rules.
func (a *Admitter) Depart(reqID int) (*Solution, error) {
	sol, err := a.lives.depart(reqID)
	if err != nil {
		return nil, err
	}
	a.obs.DepartDone(reqID)
	return sol, nil
}

// Restore re-installs a previously-committed session without
// planning: sol's resource bundle is allocated and the session
// recorded live, exactly as Commit left it. It is the replay primitive
// of the write-ahead log (internal/wal) — recovery rebuilds the live
// table from logged solutions instead of re-running planners, so a
// replayed engine is byte-identical to the pre-crash one regardless of
// planner or policy. Restore deliberately skips the observability
// hooks: replay reconstructs state, not history, and must not inflate
// the lifecycle counters or re-emit admission events.
func (a *Admitter) Restore(req *multicast.Request, sol *Solution) error {
	alloc := AllocationFor(req, sol.Tree)
	if err := a.nw.Allocate(alloc); err != nil {
		return err
	}
	a.lives.record(req, sol, alloc)
	a.admitted = append(a.admitted, sol)
	return nil
}

// RestoreReplace is the replay form of a repair or re-optimisation
// outcome: the live session reqID releases its current bundle and is
// re-recorded as realised by sol (allocated fresh). On an allocation
// failure the original bundle is re-installed, so the table never ends
// up half-swapped.
func (a *Admitter) RestoreReplace(reqID int, sol *Solution) error {
	old, err := a.lives.depart(reqID)
	if err != nil {
		return err
	}
	alloc := AllocationFor(sol.Request, sol.Tree)
	if err := a.nw.Allocate(alloc); err != nil {
		oldAlloc := AllocationFor(old.Request, old.Tree)
		if rerr := a.nw.Allocate(oldAlloc); rerr == nil {
			a.lives.record(old.Request, old, oldAlloc)
		}
		return err
	}
	a.lives.record(sol.Request, sol, alloc)
	return nil
}

// RestoreDrop is the replay form of a departure or shed: the live
// session's bundle is released and the session forgotten, without the
// observability hooks (see Restore).
func (a *Admitter) RestoreDrop(reqID int) error {
	_, err := a.lives.depart(reqID)
	return err
}

// Replace records that an admitted request is now realised by sol
// (its ID must match a live session) — used after Reoptimize, which
// re-places sessions directly on the network. A later Depart then
// releases the new allocation.
func (a *Admitter) Replace(reqID int, sol *Solution) error {
	return a.lives.replace(reqID, sol)
}

// LiveCount reports how many admitted requests currently hold
// resources.
func (a *Admitter) LiveCount() int { return a.lives.live() }

// Lives returns the solutions currently holding resources, in
// ascending request-ID order. Unlike Admitted it excludes departed and
// shed sessions, so recomputing every returned tree's allocation must
// exactly account for capacity minus residual on every link and server
// — the conservation invariant the scenario harness and the engine
// fuzz targets check continuously.
func (a *Admitter) Lives() []*Solution { return a.lives.solutions() }

// Admitted returns the solutions admitted so far (shared slice copy).
func (a *Admitter) Admitted() []*Solution {
	out := make([]*Solution, len(a.admitted))
	copy(out, a.admitted)
	return out
}

// AdmittedCount reports |S(k)|.
func (a *Admitter) AdmittedCount() int { return len(a.admitted) }

// RejectedCount reports how many requests were rejected.
func (a *Admitter) RejectedCount() int { return a.rejected }
