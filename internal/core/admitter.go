package core

import (
	"fmt"

	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// Admitter is the shared commit half of online admission: it binds a
// Planner to the network it admits onto and owns the whole admit/
// depart lifecycle — plan, allocate, record the live session, count
// the decision. OnlineCP, OnlineSP, OnlineSPStatic and OnlineCPK are
// thin wrappers that pair it with their planner; the admission engine
// (internal/engine) drives the same machinery with planning moved onto
// snapshots.
//
// An Admitter is not safe for concurrent use: exactly one goroutine
// may call its methods at a time (the engine's single writer, or a
// plain sequential driver).
type Admitter struct {
	nw      *sdn.Network
	planner Planner
	lives   *liveTable

	admitted []*Solution
	rejected int
}

// NewAdmitter returns an admitter committing planner's proposals onto
// nw.
func NewAdmitter(nw *sdn.Network, planner Planner) *Admitter {
	return &Admitter{nw: nw, planner: planner, lives: newLiveTable(nw)}
}

// Network returns the network this admitter allocates on.
func (a *Admitter) Network() *sdn.Network { return a.nw }

// Planner returns the planning half of the algorithm.
func (a *Admitter) Planner() Planner { return a.planner }

// Admit decides request req: on admission it returns the realised
// solution (already allocated on the network); on rejection it
// returns ErrRejected (wrapped with the reason) and leaves the network
// untouched.
func (a *Admitter) Admit(req *multicast.Request) (*Solution, error) {
	sol, err := a.planner.Plan(a.nw, req)
	if err != nil {
		a.rejected++
		return nil, err
	}
	sol, err = a.Commit(req, sol)
	if err != nil {
		// Planners only propose trees that fit the residual view; a
		// commit failure here means per-link aggregation of
		// back-tracking traffic exceeded a residual, so reject.
		a.rejected++
		return nil, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	return sol, nil
}

// Commit validates a planned solution against the network's current
// residuals by allocating it; on success the session is recorded live.
// It does not count a failure as a rejection — callers that re-plan on
// commit conflicts (the engine's optimistic-concurrency path) decide
// that via CountRejection.
func (a *Admitter) Commit(req *multicast.Request, sol *Solution) (*Solution, error) {
	alloc := AllocationFor(req, sol.Tree)
	if err := a.nw.Allocate(alloc); err != nil {
		return nil, err
	}
	a.lives.record(req, sol, alloc)
	a.admitted = append(a.admitted, sol)
	return sol, nil
}

// CountRejection records a rejection decided outside Admit (the
// engine's snapshot-planning path, where plan and commit are separate
// steps).
func (a *Admitter) CountRejection() { a.rejected++ }

// Depart releases the resources of an admitted request (the session
// ended). It returns the solution that had realised the request so
// callers can also uninstall its flow rules.
func (a *Admitter) Depart(reqID int) (*Solution, error) {
	return a.lives.depart(reqID)
}

// Replace records that an admitted request is now realised by sol
// (its ID must match a live session) — used after Reoptimize, which
// re-places sessions directly on the network. A later Depart then
// releases the new allocation.
func (a *Admitter) Replace(reqID int, sol *Solution) error {
	return a.lives.replace(reqID, sol)
}

// LiveCount reports how many admitted requests currently hold
// resources.
func (a *Admitter) LiveCount() int { return a.lives.live() }

// Admitted returns the solutions admitted so far (shared slice copy).
func (a *Admitter) Admitted() []*Solution {
	out := make([]*Solution, len(a.admitted))
	copy(out, a.admitted)
	return out
}

// AdmittedCount reports |S(k)|.
func (a *Admitter) AdmittedCount() int { return len(a.admitted) }

// RejectedCount reports how many requests were rejected.
func (a *Admitter) RejectedCount() int { return a.rejected }
