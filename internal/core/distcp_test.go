package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/nfv"
	"nfvmcast/internal/sdn"
)

// lenientModel prices resources exponentially but never trips the
// admission thresholds — isolating feasibility mechanics from
// threshold (a)/(b) rejections in the split tests below.
func lenientModel() CostModel {
	return CostModel{Alpha: 1.5, Beta: 1.5, SigmaV: 1e9, SigmaE: 1e9}
}

func TestDistCPAdmitsAndDelivers(t *testing.T) {
	nw := testNetwork(t, 40, 7)
	p, err := NewDistCPPlanner(DefaultCostModel(nw.NumNodes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	admitted := 0
	for seed := int64(0); seed < 10; seed++ {
		req := testRequest(t, nw, 300+seed)
		sol, perr := p.Plan(nw, req)
		if perr != nil {
			if !IsRejection(perr) {
				t.Fatalf("seed %d: %v", seed, perr)
			}
			continue
		}
		admitted++
		if derr := sol.Tree.CheckDelivery(nw.Graph()); derr != nil {
			t.Fatalf("seed %d: delivery: %v", seed, derr)
		}
		if len(sol.Servers) < 1 || len(sol.Servers) > 2 {
			t.Fatalf("seed %d: %d servers, split limit 2", seed, len(sol.Servers))
		}
		if sol.SelectionCost < 0 || sol.OperationalCost < 0 {
			t.Fatalf("seed %d: negative cost (%v, %v)", seed, sol.SelectionCost, sol.OperationalCost)
		}
		// Per-segment demands must partition the chain's full demand and
		// align position-for-position with the server tuple.
		if sol.Tree.ServerDemands != nil {
			if len(sol.Tree.ServerDemands) != len(sol.Servers) {
				t.Fatalf("seed %d: %d demands for %d servers",
					seed, len(sol.Tree.ServerDemands), len(sol.Servers))
			}
			var sum float64
			for _, d := range sol.Tree.ServerDemands {
				sum += d
			}
			if diff := sum - req.ComputeDemandMHz(); diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("seed %d: segment demands sum %v != chain demand %v",
					seed, sum, req.ComputeDemandMHz())
			}
		}
		// The plan must be committable as-is on the residual network.
		if aerr := nw.CanAllocate(AllocationFor(req, sol.Tree)); aerr != nil {
			t.Fatalf("seed %d: plan not allocatable: %v", seed, aerr)
		}
	}
	if admitted == 0 {
		t.Fatal("fixture admitted nothing; tighten the seeds")
	}
}

// TestDistCPSplitBeatsConsolidation drains every server below the full
// chain demand but above each single-segment demand: consolidated
// Online_CP must reject on compute exhaustion while Dist_CP still
// admits by splitting the chain across two hosts.
func TestDistCPSplitBeatsConsolidation(t *testing.T) {
	nw := testNetwork(t, 40, 7)
	req := &multicast.Request{
		ID: 1, Source: 0, Destinations: []graph.NodeID{5, 9, 21},
		BandwidthMbps: 100,
		Chain:         nfv.MustChain(nfv.NAT, nfv.Firewall),
	}
	funcs := req.Chain.Functions()
	maxSeg := 0.0
	for _, f := range funcs {
		if d := f.DemandMHz(req.BandwidthMbps); d > maxSeg {
			maxSeg = d
		}
	}
	full := req.ComputeDemandMHz()
	if maxSeg+1 >= full {
		t.Fatalf("fixture chain cannot demonstrate a split win (maxSeg %v, full %v)", maxSeg, full)
	}
	// Leave exactly maxSeg+1 MHz on every server.
	for _, v := range nw.Servers() {
		if drain := nw.ResidualCompute(v) - (maxSeg + 1); drain > 0 {
			if err := nw.Allocate(sdn.Allocation{Servers: map[graph.NodeID]float64{v: drain}}); err != nil {
				t.Fatalf("drain server %d: %v", v, err)
			}
		}
	}

	cp, err := NewCPPlanner(lenientModel())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Plan(nw, req); !errors.Is(err, ErrComputeExhausted) {
		t.Fatalf("consolidated plan err = %v, want ErrComputeExhausted", err)
	}

	dist, err := NewDistCPPlanner(lenientModel(), 2)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := dist.Plan(nw, req)
	if err != nil {
		t.Fatalf("distributed plan: %v", err)
	}
	if len(sol.Servers) != 2 {
		t.Fatalf("servers = %v, want a 2-way split", sol.Servers)
	}
	if derr := sol.Tree.CheckDelivery(nw.Graph()); derr != nil {
		t.Fatalf("delivery: %v", derr)
	}
	if aerr := nw.Allocate(AllocationFor(req, sol.Tree)); aerr != nil {
		t.Fatalf("allocate split plan: %v", aerr)
	}
}

// TestDistCPDeterministic pins the (cost, enumeration-index) tie-break:
// two fresh planners over clone networks must produce byte-identical
// solutions for an identical request stream, including after partial
// allocation drift.
func TestDistCPDeterministic(t *testing.T) {
	nwA := testNetwork(t, 40, 11)
	nwB := nwA.Clone()
	mk := func() *DistCPPlanner {
		p, err := NewDistCPPlanner(DefaultCostModel(nwA.NumNodes()), 3)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	pA, pB := mk(), mk()
	for seed := int64(0); seed < 12; seed++ {
		req := testRequest(t, nwA, 500+seed)
		solA, errA := pA.Plan(nwA, req)
		solB, errB := pB.Plan(nwB, req)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("seed %d: decision diverged: %v vs %v", seed, errA, errB)
		}
		if errA != nil {
			if errA.Error() != errB.Error() {
				t.Fatalf("seed %d: rejection text diverged: %q vs %q", seed, errA, errB)
			}
			continue
		}
		if !reflect.DeepEqual(solA.Servers, solB.Servers) ||
			solA.SelectionCost != solB.SelectionCost ||
			!reflect.DeepEqual(solA.Tree.Hops(), solB.Tree.Hops()) ||
			!reflect.DeepEqual(solA.Tree.ServerDemands, solB.Tree.ServerDemands) {
			t.Fatalf("seed %d: solutions diverged", seed)
		}
		// Commit on both so later plans see identical residual drift.
		if err := nwA.Allocate(AllocationFor(req, solA.Tree)); err != nil {
			t.Fatal(err)
		}
		if err := nwB.Allocate(AllocationFor(req, solB.Tree)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDistCPFastRejectMatchesPlan drives the planner into each cheap
// rejection and asserts FastReject's error text is byte-identical to
// the full plan's — the FastRejecter contract the engine relies on —
// and that FastReject stays silent when the full plan admits.
func TestDistCPFastRejectMatchesPlan(t *testing.T) {
	nw := testNetwork(t, 30, 3)
	p, err := NewDistCPPlanner(DefaultCostModel(nw.NumNodes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string, req *multicast.Request) {
		t.Helper()
		fast := p.FastReject(nw, req)
		_, full := p.Plan(nw, req)
		if fast == nil {
			if full != nil && !errors.Is(full, ErrRejected) {
				t.Fatalf("%s: full plan failed hard: %v", label, full)
			}
			return
		}
		if full == nil {
			t.Fatalf("%s: FastReject %q but the full plan admitted", label, fast)
		}
		if fast.Error() != full.Error() {
			t.Fatalf("%s: FastReject %q != full plan %q", label, fast, full)
		}
	}

	check("admissible", testRequest(t, nw, 42))
	check("bad input", &multicast.Request{ID: 2, Source: -1, Destinations: []graph.NodeID{1}, BandwidthMbps: 10, Chain: nfv.MustChain(nfv.NAT)})

	// Compute exhaustion: drain every server to (almost) nothing.
	drained := nw.Clone()
	for _, v := range drained.Servers() {
		if r := drained.ResidualCompute(v) - 0.5; r > 0 {
			if err := drained.Allocate(sdn.Allocation{Servers: map[graph.NodeID]float64{v: r}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	req := testRequest(t, nw, 42)
	fast := p.FastReject(drained, req)
	_, full := p.Plan(drained, req)
	if fast == nil || full == nil || fast.Error() != full.Error() {
		t.Fatalf("exhausted: FastReject %v, full plan %v — must both reject identically", fast, full)
	}
	if !errors.Is(full, ErrComputeExhausted) {
		t.Fatalf("exhausted: %v, want ErrComputeExhausted", full)
	}
}

// TestDistCPSplitLimitOne degenerates to consolidated placement: every
// solution uses exactly one server and matches CPPlanner's admission
// decision (the trees may differ in shape, never in feasibility).
func TestDistCPSplitLimitOne(t *testing.T) {
	nw := testNetwork(t, 40, 9)
	dist, err := NewDistCPPlanner(DefaultCostModel(nw.NumNodes()), 1)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 8; seed++ {
		req := testRequest(t, nw, 700+seed)
		sol, perr := dist.Plan(nw, req)
		if perr != nil {
			if !IsRejection(perr) {
				t.Fatalf("seed %d: %v", seed, perr)
			}
			continue
		}
		if len(sol.Servers) != 1 {
			t.Fatalf("seed %d: servers = %v, want exactly one at split limit 1", seed, sol.Servers)
		}
	}
}

func TestNewDistCPPlannerValidation(t *testing.T) {
	if _, err := NewDistCPPlanner(CostModel{}, 2); err == nil {
		t.Fatal("invalid model accepted")
	}
	if _, err := NewDistCPPlanner(DefaultCostModel(40), 0); err == nil {
		t.Fatal("split limit 0 accepted")
	}
}

// TestForEachComposition pins the lexicographic enumeration order the
// determinism tie-break depends on.
func TestForEachComposition(t *testing.T) {
	var got []string
	err := forEachComposition(4, 2, func(parts []int) error {
		got = append(got, fmt.Sprint(parts))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"[1 3]", "[2 2]", "[3 1]"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("compositions(4,2) = %v, want %v", got, want)
	}
	n := 0
	if err := forEachComposition(0, 1, func(parts []int) error {
		if len(parts) != 0 {
			t.Fatalf("empty chain composition = %v", parts)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("empty chain yielded %d compositions, want 1", n)
	}
}
