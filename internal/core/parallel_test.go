package core

// Determinism oracle and -race stress tests for the parallel candidate
// evaluation in ApproMulti: parallel runs must return byte-identical
// solutions to sequential ones, and one read-only sdn.Network must
// support any number of concurrent solves (the documented thread-safety
// contract of Network and workGraph).

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/topology"
)

// oracleNetwork builds one of the determinism-grid topologies.
func oracleNetwork(t testing.TB, name string, seed int64) *sdn.Network {
	t.Helper()
	var (
		topo *topology.Topology
		err  error
	)
	switch name {
	case "geant":
		topo = topology.GEANT()
	case "fattree":
		topo, err = topology.FatTree(4, seed)
	case "waxman":
		topo, err = topology.WaxmanDegree(40, topology.DefaultAvgDegree, 0.14, seed)
	default:
		t.Fatalf("unknown oracle topology %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	nw, err := sdn.NewNetwork(topo, sdn.DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// assertSolutionsIdentical fails unless a and b agree on costs, server
// set and the exact hop sequence (byte-identical trees).
func assertSolutionsIdentical(t *testing.T, label string, ref, got *Solution) {
	t.Helper()
	if got.OperationalCost != ref.OperationalCost {
		t.Fatalf("%s: operational cost %v != %v", label, got.OperationalCost, ref.OperationalCost)
	}
	if got.SelectionCost != ref.SelectionCost {
		t.Fatalf("%s: selection cost %v != %v", label, got.SelectionCost, ref.SelectionCost)
	}
	if len(got.Servers) != len(ref.Servers) {
		t.Fatalf("%s: server set %v != %v", label, got.Servers, ref.Servers)
	}
	for i := range ref.Servers {
		if got.Servers[i] != ref.Servers[i] {
			t.Fatalf("%s: server set %v != %v", label, got.Servers, ref.Servers)
		}
	}
	refHops, gotHops := ref.Tree.Hops(), got.Tree.Hops()
	if len(gotHops) != len(refHops) {
		t.Fatalf("%s: hop count %d != %d", label, len(gotHops), len(refHops))
	}
	for i := range refHops {
		if gotHops[i] != refHops[i] {
			t.Fatalf("%s: hop %d is %+v, want %+v", label, i, gotHops[i], refHops[i])
		}
	}
}

// TestApproMultiParallelMatchesSequential is the determinism oracle:
// across a grid of topologies (GÉANT, fat-tree, Waxman seeds) × K ∈
// {1,2,3}, ApproMulti with Workers > 1 must return identical costs,
// server set and hop sequence to Workers = 1. The tie-break rule —
// lowest (implementation cost, candidate enumeration index) — is what
// makes this exact rather than approximate.
func TestApproMultiParallelMatchesSequential(t *testing.T) {
	grid := []struct {
		topo string
		seed int64
	}{
		{"geant", 5},
		{"fattree", 8},
		{"waxman", 3},
		{"waxman", 17},
	}
	workerCounts := []int{2, 3, 8, -1}
	for _, cell := range grid {
		nw := oracleNetwork(t, cell.topo, cell.seed)
		for k := 1; k <= 3; k++ {
			for reqSeed := int64(0); reqSeed < 3; reqSeed++ {
				req := testRequest(t, nw, 900+37*cell.seed+reqSeed)
				ref, refErr := ApproMulti(nw, req, Options{K: k, Workers: 1})
				for _, workers := range workerCounts {
					label := fmt.Sprintf("%s/seed=%d/K=%d/req=%d/workers=%d",
						cell.topo, cell.seed, k, reqSeed, workers)
					got, err := ApproMulti(nw, req, Options{K: k, Workers: workers})
					if (err == nil) != (refErr == nil) {
						t.Fatalf("%s: err = %v, sequential err = %v", label, err, refErr)
					}
					if refErr != nil {
						continue
					}
					assertSolutionsIdentical(t, label, ref, got)
				}
			}
		}
	}
}

// TestApproMultiParallelMatchesSequentialExplicit runs the oracle over
// the paper-literal explicit-auxiliary evaluator, which clones the work
// graph per candidate and so exercises a different allocation pattern
// under the pool.
func TestApproMultiParallelMatchesSequentialExplicit(t *testing.T) {
	nw := oracleNetwork(t, "waxman", 11)
	for reqSeed := int64(0); reqSeed < 3; reqSeed++ {
		req := testRequest(t, nw, 700+reqSeed)
		ref, err := ApproMulti(nw, req, Options{K: 2, ExplicitAuxiliary: true, Workers: 1})
		if err != nil {
			t.Fatalf("req %d: %v", reqSeed, err)
		}
		got, err := ApproMulti(nw, req, Options{K: 2, ExplicitAuxiliary: true, Workers: 4})
		if err != nil {
			t.Fatalf("req %d: %v", reqSeed, err)
		}
		assertSolutionsIdentical(t, fmt.Sprintf("explicit/req=%d", reqSeed), ref, got)
	}
}

// TestApproMultiParallelDelayBound checks that the delay-violation flag
// folds correctly into the parallel reduction: a feasible bound returns
// the sequential solution, an impossible bound returns ErrDelayBound
// from every worker count.
func TestApproMultiParallelDelayBound(t *testing.T) {
	nw := oracleNetwork(t, "waxman", 13)
	req := testRequest(t, nw, 31)
	free, err := ApproMulti(nw, req, Options{K: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	depth, err := free.Tree.MaxDeliveryDepth(nw.Graph())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ApproMulti(nw, req, Options{K: 2, MaxDeliveryHops: depth, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := ApproMulti(nw, req, Options{K: 2, MaxDeliveryHops: depth, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertSolutionsIdentical(t, fmt.Sprintf("bounded/workers=%d", workers), ref, got)
		if _, err := ApproMulti(nw, req, Options{K: 2, MaxDeliveryHops: 1, Workers: workers}); !errors.Is(err, ErrDelayBound) {
			t.Fatalf("workers=%d: impossible bound err = %v, want ErrDelayBound", workers, err)
		}
	}
}

// TestApproMultiConcurrentSolvesSharedNetwork is the -race stress test
// pinning the documented thread-safety contract of sdn.Network and
// workGraph: many goroutines solving different requests (each itself
// running a multi-worker evaluation) against one shared, unmutated
// network must neither race nor diverge from the precomputed
// sequential solutions.
func TestApproMultiConcurrentSolvesSharedNetwork(t *testing.T) {
	nw := testNetwork(t, 40, 21)
	const goroutines = 8
	reqs := make([]*multicast.Request, goroutines)
	refs := make([]*Solution, goroutines)
	for i := range reqs {
		reqs[i] = testRequest(t, nw, 400+int64(i))
		ref, err := ApproMulti(nw, reqs[i], Options{K: 3, Workers: 1})
		if err != nil {
			t.Fatalf("reference %d: %v", i, err)
		}
		refs[i] = ref
	}
	var wg sync.WaitGroup
	failures := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for trial := 0; trial < 4; trial++ {
				sol, err := ApproMulti(nw, reqs[i], Options{K: 3, Workers: 2})
				if err != nil {
					failures[i] = fmt.Errorf("goroutine %d trial %d: %w", i, trial, err)
					return
				}
				if sol.OperationalCost != refs[i].OperationalCost ||
					sol.SelectionCost != refs[i].SelectionCost {
					failures[i] = fmt.Errorf("goroutine %d trial %d: cost (%v, %v) != (%v, %v)",
						i, trial, sol.OperationalCost, sol.SelectionCost,
						refs[i].OperationalCost, refs[i].SelectionCost)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range failures {
		if err != nil {
			t.Fatal(err)
		}
	}
}
