package core

// Fuzz coverage for the subset enumerator the parallel candidate
// evaluation is built on: collectCandidates assumes forEachSubset
// visits every subset of size <= k exactly once in a fixed order
// (sizes ascending, lexicographic within a size) and honours the
// early-stop return, so those properties are fuzzed here against
// independent oracles.

import (
	"fmt"
	"testing"

	"nfvmcast/internal/graph"
)

// fuzzItems derives a distinct, non-contiguous item list so index
// mix-ups cannot masquerade as values.
func fuzzItems(n int) []graph.NodeID {
	items := make([]graph.NodeID, n)
	for i := range items {
		items[i] = graph.NodeID(3*i + 5)
	}
	return items
}

func subsetKey(s []graph.NodeID) string { return fmt.Sprint(s) }

func FuzzForEachSubset(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint16(0))
	f.Add(uint8(0), uint8(3), uint16(1))
	f.Add(uint8(7), uint8(7), uint16(5))
	f.Add(uint8(10), uint8(1), uint16(2))
	f.Add(uint8(9), uint8(200), uint16(40))
	f.Fuzz(func(t *testing.T, nRaw, kRaw uint8, stopRaw uint16) {
		n := int(nRaw % 12)  // keep C(n, k) enumerable
		k := int(kRaw % 14)  // deliberately allowed to exceed n
		items := fuzzItems(n)

		seen := make(map[string]int)
		var order [][]graph.NodeID
		forEachSubset(items, k, func(s []graph.NodeID) bool {
			cp := append([]graph.NodeID(nil), s...)
			seen[subsetKey(cp)]++
			order = append(order, cp)
			return true
		})

		// Every visited subset is non-empty, within the size bound,
		// strictly increasing (so: distinct elements drawn from items
		// in their original order), and visited exactly once.
		pos := make(map[graph.NodeID]int, n)
		for i, v := range items {
			pos[v] = i
		}
		for key, count := range seen {
			if count != 1 {
				t.Fatalf("n=%d k=%d: subset %s visited %d times", n, k, key, count)
			}
		}
		for _, s := range order {
			if len(s) == 0 || (k >= 0 && len(s) > k) {
				t.Fatalf("n=%d k=%d: subset %v has invalid size", n, k, s)
			}
			for i := 1; i < len(s); i++ {
				if pos[s[i-1]] >= pos[s[i]] {
					t.Fatalf("n=%d k=%d: subset %v not in item order", n, k, s)
				}
			}
		}

		// Exactly-once over the whole space: the count matches the
		// closed-form oracle, so nothing was skipped either.
		want := 0
		if k >= 1 {
			want = countSubsets(n, k)
		}
		if len(seen) != want {
			t.Fatalf("n=%d k=%d: enumerated %d distinct subsets, want %d", n, k, len(seen), want)
		}

		// Deterministic order: sizes ascending, lexicographic by item
		// position within a size. The parallel tie-break indexes into
		// this exact order, so it is part of the contract.
		for i := 1; i < len(order); i++ {
			a, b := order[i-1], order[i]
			if len(a) > len(b) {
				t.Fatalf("n=%d k=%d: size decreased from %v to %v", n, k, a, b)
			}
			if len(a) == len(b) && !lexBefore(a, b, pos) {
				t.Fatalf("n=%d k=%d: %v emitted before %v", n, k, a, b)
			}
		}

		// Early stop: returning false after `limit` visits ends the
		// enumeration immediately.
		if want > 0 {
			limit := int(stopRaw)%want + 1
			visits := 0
			forEachSubset(items, k, func([]graph.NodeID) bool {
				visits++
				return visits < limit
			})
			if visits != limit {
				t.Fatalf("n=%d k=%d: early stop at %d visited %d subsets", n, k, limit, visits)
			}
		}
	})
}

// lexBefore reports whether a precedes b lexicographically by item
// position (equal-length slices, a != b assumed distinct).
func lexBefore(a, b []graph.NodeID, pos map[graph.NodeID]int) bool {
	for i := range a {
		if pos[a[i]] != pos[b[i]] {
			return pos[a[i]] < pos[b[i]]
		}
	}
	return false
}
