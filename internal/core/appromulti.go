package core

import (
	"context"
	"fmt"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/parallel"
	"nfvmcast/internal/sdn"
)

// Options configures ApproMulti.
type Options struct {
	// K is the maximum number of servers used to implement the
	// service chain (the paper's constant K >= 1; default 3 as in the
	// evaluation).
	K int
	// Capacitated runs the Appro_Multi_Cap variant: the algorithm
	// works on the residual network, keeping only links with at least
	// b_k available bandwidth and servers with enough free computing
	// capacity (paper §IV.C).
	Capacitated bool
	// ExplicitAuxiliary switches to the paper-literal construction
	// that materialises the auxiliary graph G_k^i per server subset
	// (including the zero-cost source-to-server edge rule) and runs
	// the generic KMB routine on it. Slower by a factor of ~|D_k|;
	// used for cross-checking the default closure-based evaluation.
	ExplicitAuxiliary bool
	// MaxDeliveryHops, when positive, adds an end-to-end delay
	// constraint (an extension beyond the paper, cf. its reference
	// [13]): candidate trees whose worst-destination delivery depth —
	// hops from the source through the service chain, including
	// back-tracking — exceeds the bound are discarded. When no
	// candidate satisfies the bound, ApproMulti returns
	// ErrDelayBound.
	MaxDeliveryHops int
	// Workers bounds the number of goroutines evaluating candidate
	// server subsets concurrently. 0 and 1 evaluate on the calling
	// goroutine (the safe default inside callers that already fan out
	// at a higher level, such as internal/sim); negative values use
	// one worker per CPU. The solution is byte-identical for every
	// setting: candidates are merged under a deterministic
	// (implementation cost, enumeration index) rule, so a parallel run
	// returns exactly the sequential solution (see DESIGN.md §8).
	Workers int

	// ctx, when non-nil, cancels the candidate sweep between subset
	// evaluations (set through ApproMultiContext; a nil ctx disables
	// the per-candidate check entirely).
	ctx context.Context
}

// DefaultOptions returns the evaluation defaults (K = 3).
func DefaultOptions() Options { return Options{K: 3} }

// disableSubsetPruning turns the candidate lower-bound pruning off —
// test instrumentation for asserting pruned and unpruned sweeps return
// byte-identical solutions.
var disableSubsetPruning bool

// ApproMulti implements Algorithm 1 (Appro_Multi) and its capacitated
// variant (Appro_Multi_Cap): it returns a minimum-cost pseudo-multicast
// tree over all server subsets of size at most K, with approximation
// ratio 2K. The returned solution is not yet allocated; use
// AllocationFor + Network.Allocate to commit it.
func ApproMulti(nw *sdn.Network, req *multicast.Request, opts Options) (*Solution, error) {
	if opts.K < 1 {
		return nil, fmt.Errorf("core: invalid K=%d (need K >= 1)", opts.K)
	}
	if err := validateInput(nw, req); err != nil {
		return nil, err
	}
	w := buildWorkGraph(nw, req, opts.Capacitated, func(e graph.EdgeID) float64 {
		return nw.LinkUnitCost(e) * req.BandwidthMbps
	})
	if len(w.servers) == 0 {
		return nil, ErrNoFeasibleServer
	}

	// One Dijkstra workspace (heap arena) serves every per-request
	// shortest-path tree; the trees themselves own their arrays.
	var ws graph.DijkstraWorkspace
	spSrc := new(graph.ShortestPaths)
	if err := ws.DijkstraInto(w.g, req.Source, spSrc); err != nil {
		return nil, err
	}
	var reachSrv []graph.NodeID
	for _, v := range w.servers {
		if spSrc.Reachable(v) {
			reachSrv = append(reachSrv, v)
		}
	}
	if len(reachSrv) == 0 {
		return nil, fmt.Errorf("%w: no server reachable from source %d", ErrUnreachable, req.Source)
	}
	for _, d := range req.Destinations {
		if !spSrc.Reachable(d) {
			return nil, fmt.Errorf("%w: destination %d", ErrUnreachable, d)
		}
	}

	demand := req.ComputeDemandMHz()
	omega := make(map[graph.NodeID]float64, len(reachSrv))
	spSrv := make(map[graph.NodeID]*graph.ShortestPaths, len(reachSrv))
	for _, v := range reachSrv {
		omega[v] = spSrc.Dist[v] + nw.ServerUnitCost(v)*demand
		sp := new(graph.ShortestPaths)
		if derr := ws.DijkstraInto(w.g, v, sp); derr != nil {
			return nil, derr
		}
		spSrv[v] = sp
	}

	// Evaluate every candidate by the implementation cost of its
	// decomposed pseudo-multicast tree. The auxiliary Steiner tree
	// cost c(T_k^i) (which the 2K analysis bounds) prices each
	// source-to-server path separately, but the realised routing
	// shares common prefixes of those paths, so the implementation
	// cost is the faithful objective from the problem statement
	// (§III.C: minimise the implementation cost). SelectionCost keeps
	// the winning subset's auxiliary value for the theory-facing
	// bound.
	ev, err := newClosureEvaluator(w, req, spSrv, nil, &ws)
	if err != nil {
		return nil, err
	}
	best, sawDelayViolation, err := evaluateCandidates(
		nw, w, req, spSrc, omega, ev, opts, collectCandidates(reachSrv, opts.K))
	if err != nil {
		return nil, err
	}
	if best.tree == nil {
		if sawDelayViolation {
			return nil, fmt.Errorf("%w: no tree within %d hops", ErrDelayBound, opts.MaxDeliveryHops)
		}
		return nil, ErrUnreachable
	}
	return &Solution{
		Request:         req,
		Tree:            best.tree,
		Servers:         best.tree.Servers,
		OperationalCost: best.op,
		SelectionCost:   best.aux,
	}, nil
}

// candidate is one point of Appro_Multi's search space: a server
// subset evaluated through the virtual-source construction, or a
// single server evaluated through the rooted construction (route to
// the server first, then distribute over a KMB tree rooted there).
// Rooted candidates are valid pseudo-multicast trees — taking the
// minimum preserves the 2K bound — and cover the cases where the
// virtual-source closure's ω-offset steers KMB to a worse topology.
type candidate struct {
	servers []graph.NodeID
	rooted  bool
}

// collectCandidates materialises the candidate stream in its
// deterministic evaluation order: every subset of size <= k in
// forEachSubset order (sizes ascending, lexicographic within a size),
// then one rooted candidate per reachable server. The index in the
// returned slice is the tie-break between equal-cost candidates, so
// this order is load-bearing for reproducibility.
func collectCandidates(reachSrv []graph.NodeID, k int) []candidate {
	cands := make([]candidate, 0, countSubsets(len(reachSrv), k)+len(reachSrv))
	forEachSubset(reachSrv, k, func(subset []graph.NodeID) bool {
		cands = append(cands, candidate{servers: append([]graph.NodeID(nil), subset...)})
		return true
	})
	for _, v := range reachSrv {
		cands = append(cands, candidate{servers: []graph.NodeID{v}, rooted: true})
	}
	return cands
}

// bestCandidate is one reduction slot of the candidate evaluation: the
// cheapest tree seen so far plus the enumeration index it came from.
type bestCandidate struct {
	op, aux float64
	tree    *multicast.PseudoTree
	idx     int
}

// evaluateCandidates scores every candidate and reduces them to the
// minimum-implementation-cost tree.
//
// Concurrency model: each worker owns a strided share of the candidate
// indices (idx ≡ worker mod W) and a private bestCandidate slot, so
// cheap size-1 subsets and expensive size-K subsets interleave evenly
// across workers and no candidate is ever touched by two goroutines.
// All shared inputs — the network, the work graph, the precomputed
// Dijkstra trees and the closure evaluator — are read-only after
// construction (see the closureEvaluator and sdn.Network docs), so
// workers need no locking. The final merge picks the lowest
// (implementation cost, enumeration index) pair; because a sequential
// scan keeps the first strict improvement, that rule reproduces the
// Workers=1 result exactly, making parallel runs byte-identical to
// sequential ones. The delay-violation flags fold into the same
// race-free per-worker slots.
func evaluateCandidates(
	nw *sdn.Network,
	w *workGraph,
	req *multicast.Request,
	spSrc *graph.ShortestPaths,
	omega map[graph.NodeID]float64,
	ev *closureEvaluator,
	opts Options,
	cands []candidate,
) (best bestCandidate, sawDelayViolation bool, err error) {
	workers := parallel.Degree(opts.Workers)
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers < 1 {
		workers = 1
	}
	locals := make([]bestCandidate, workers)
	sawDelay := make([]bool, workers)
	// Per-worker scratch arenas: candidate evaluation reuses one
	// allocation set per goroutine instead of rebuilding closures,
	// pruning graphs and adjacency maps for each of the O(|V_S|^K)
	// candidates.
	scratches := make([]evalScratch, workers)
	for i := range locals {
		locals[i] = bestCandidate{op: graph.Infinity, idx: -1}
	}
	demand := req.ComputeDemandMHz()
	eval := func(idx int, local *bestCandidate, delayed *bool, s *evalScratch) {
		c := cands[idx]
		// Branch-and-bound: an admissible lower bound on any tree this
		// candidate can realise, priced directly in operational terms
		// (the work graph's weights ARE unit cost × bandwidth). The
		// realised tree contains a source→server path for some v ∈ S
		// (≥ the cheapest), uses at least one server of S (≥ the
		// cheapest placement), and reaches every destination from some
		// v ∈ S over processed edges (≥ the worst destination's best
		// connection). A pruned candidate therefore satisfies
		// op >= lb >= local.op and would lose the strict `op < local.op`
		// comparison below — the surviving tree, cost and enumeration
		// index are byte-identical with pruning on or off. Pruning only
		// engages once the worker holds an incumbent tree, so the
		// delay-violation flag (which is only consulted when no tree
		// exists at all) is unaffected.
		if local.tree != nil && !disableSubsetPruning {
			minSrc, minUnit := graph.Infinity, graph.Infinity
			for _, v := range c.servers {
				if d := spSrc.Dist[v]; d < minSrc {
					minSrc = d
				}
				if u := nw.ServerUnitCost(v); u < minUnit {
					minUnit = u
				}
			}
			var procLB float64
			for _, d := range req.Destinations {
				best := graph.Infinity
				for _, v := range c.servers {
					if dd := ev.spSrv[v].Dist[d]; dd < best {
						best = dd
					}
				}
				if best > procLB {
					procLB = best
				}
			}
			if lb := minSrc + demand*minUnit + procLB; lb >= local.op {
				return
			}
		}
		var (
			servers   []graph.NodeID
			realEdges []graph.EdgeID
			auxCost   float64
			cerr      error
		)
		switch {
		case c.rooted:
			var treeCost float64
			realEdges, treeCost, cerr = ev.steinerRooted(c.servers[0], s)
			servers, auxCost = c.servers, omega[c.servers[0]]+treeCost
		case opts.ExplicitAuxiliary:
			servers, realEdges, auxCost, cerr = buildSubsetTreeExplicitCost(w, req, c.servers, omega)
		default:
			servers, realEdges, auxCost, cerr = ev.steiner(c.servers, omega, s)
		}
		if cerr != nil {
			return // infeasible candidate, e.g. a destination unreachable through it
		}
		tree, derr := decompose(w, req, spSrc, servers, realEdges, s)
		if derr != nil {
			return
		}
		if opts.MaxDeliveryHops > 0 {
			depth, merr := tree.MaxDeliveryDepth(nw.Graph())
			if merr != nil {
				return
			}
			if depth > opts.MaxDeliveryHops {
				*delayed = true
				return
			}
		}
		// Strict < plus increasing idx per worker keeps the
		// lowest-index minimum in each slot.
		if op := OperationalCost(nw, req, tree); op < local.op {
			*local = bestCandidate{op: op, aux: auxCost, tree: tree, idx: idx}
		}
	}
	// eval never fails (infeasible candidates are skipped); the only
	// error out of the pool is cancellation between candidates.
	perr := parallel.ForEachIndex(workers, workers, func(wi int) error {
		for idx := wi; idx < len(cands); idx += workers {
			if opts.ctx != nil {
				if cerr := opts.ctx.Err(); cerr != nil {
					return canceled(cerr)
				}
			}
			eval(idx, &locals[wi], &sawDelay[wi], &scratches[wi])
		}
		return nil
	})
	if perr != nil {
		return bestCandidate{}, false, perr
	}
	best = bestCandidate{op: graph.Infinity, idx: -1}
	for i := range locals {
		sawDelayViolation = sawDelayViolation || sawDelay[i]
		lb := locals[i]
		if lb.tree == nil {
			continue
		}
		if lb.op < best.op || (lb.op == best.op && lb.idx < best.idx) {
			best = lb
		}
	}
	return best, sawDelayViolation, nil
}

// decompose converts an auxiliary Steiner tree — given as the used
// virtual servers plus the surviving real (work-local) edges — into a
// pseudo-multicast tree: one unprocessed shortest path from the source
// to each used server, and the processed distribution component rooted
// at each server (paper §III.B's G_T construction). s supplies the
// adjacency/visited scratch (stamp-invalidated per call).
func decompose(
	w *workGraph,
	req *multicast.Request,
	spSrc *graph.ShortestPaths,
	servers []graph.NodeID,
	realEdges []graph.EdgeID,
	s *evalScratch,
) (*multicast.PseudoTree, error) {
	tree := multicast.NewPseudoTree(req.Source, req.Destinations, servers)

	// Unprocessed stream: source to every used server.
	for _, v := range servers {
		nodes, edges, ok := spSrc.PathTo(v)
		if !ok {
			return nil, fmt.Errorf("%w: server %d", ErrUnreachable, v)
		}
		if err := w.addHostPath(tree, nodes, edges, false); err != nil {
			return nil, err
		}
	}

	// Processed stream: orient each server's component of the real
	// edge forest away from the server. Removing the virtual source
	// splits the auxiliary tree into one component per used server.
	s.ensure(w.g.NumNodes(), w.g.NumEdges())
	gen := s.nextGen()
	adjAt := func(v graph.NodeID) []graph.Neighbor {
		if s.adjGen[v] != gen {
			return nil
		}
		return s.adj[v]
	}
	for _, le := range realEdges {
		e := w.g.Edge(le)
		for _, v := range [2]graph.NodeID{e.U, e.V} {
			if s.adjGen[v] != gen {
				s.adjGen[v] = gen
				s.adj[v] = s.adj[v][:0]
			}
		}
		s.adj[e.U] = append(s.adj[e.U], graph.Neighbor{Node: e.V, EdgeID: le})
		s.adj[e.V] = append(s.adj[e.V], graph.Neighbor{Node: e.U, EdgeID: le})
	}
	visited := func(v graph.NodeID) bool { return s.visGen[v] == gen }
	visit := func(v graph.NodeID) { s.visGen[v] = gen }
	s.stack = s.stack[:0]
	for _, v := range servers {
		if visited(v) {
			return nil, fmt.Errorf("core: internal: servers %v share a tree component", servers)
		}
		visit(v)
		s.stack = append(s.stack, v)
		for len(s.stack) > 0 {
			u := s.stack[len(s.stack)-1]
			s.stack = s.stack[:len(s.stack)-1]
			for _, nb := range adjAt(u) {
				if visited(nb.Node) {
					continue
				}
				visit(nb.Node)
				tree.AddHop(multicast.Hop{
					From: u, To: nb.Node, Edge: w.hostEdge(nb.EdgeID), Processed: true,
				})
				s.stack = append(s.stack, nb.Node)
			}
		}
	}
	for _, d := range req.Destinations {
		if !visited(d) {
			return nil, fmt.Errorf("core: internal: destination %d outside every server component", d)
		}
	}
	return tree, nil
}
