package core

import (
	"fmt"
	"sort"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
)

// closureEvaluator scores server subsets for Appro_Multi without
// materialising the auxiliary graph G_k^i: distances between real
// nodes are subset-independent, so one Dijkstra per destination and
// per server (done once per request) lets every subset be evaluated
// through the KMB metric closure in O(|D_k|^2 + |D_k|*|subset|).
//
// Thread safety: a closureEvaluator is read-only after
// newClosureEvaluator returns. steiner and steinerRooted keep all
// mutable state in the caller's evalScratch and only read the
// precomputed ShortestPaths, so one evaluator may be shared by any
// number of goroutines as long as each brings its own scratch — this
// is what Appro_Multi's parallel candidate evaluation relies on, and
// the -race stress tests in parallel_test.go pin it down.
type closureEvaluator struct {
	w     *workGraph
	req   *multicast.Request
	spSrv map[graph.NodeID]*graph.ShortestPaths
	spDst []*graph.ShortestPaths // parallel to req.Destinations
}

// newClosureEvaluator precomputes the per-destination shortest-path
// trees. spc, when non-nil, supplies/memoizes them (the online
// planners share one cache per residual epoch); ws, when non-nil,
// provides the heap arena for cache misses.
func newClosureEvaluator(
	w *workGraph, req *multicast.Request, spSrv map[graph.NodeID]*graph.ShortestPaths,
	spc *spCache, ws *graph.DijkstraWorkspace,
) (*closureEvaluator, error) {
	ev := &closureEvaluator{
		w:     w,
		req:   req,
		spSrv: spSrv,
		spDst: make([]*graph.ShortestPaths, len(req.Destinations)),
	}
	for i, d := range req.Destinations {
		var sp *graph.ShortestPaths
		var err error
		switch {
		case spc != nil:
			sp, err = spc.fromWith(d, ws)
		case ws != nil:
			sp = new(graph.ShortestPaths)
			err = ws.DijkstraInto(w.g, d, sp)
		default:
			sp, err = graph.Dijkstra(w.g, d)
		}
		if err != nil {
			return nil, err
		}
		ev.spDst[i] = sp
	}
	return ev, nil
}

// closureMST computes the MST of the metric closure over the terminals
// {virtual source} ∪ D_k for the given subset: closure node 0 is the
// virtual source, node j+1 is destination j. It returns the closure
// MST edges plus, per destination, the cheapest entry server realising
// the virtual-source distance (all scratch-backed, valid until the
// next call with s). ok is false when some destination cannot be
// reached through any subset server.
func (ev *closureEvaluator) closureMST(
	subset []graph.NodeID, omega map[graph.NodeID]float64, s *evalScratch,
) (mst *graph.MST, closure *graph.Graph, entry []graph.NodeID, ok bool) {
	m := len(ev.req.Destinations)
	s.closure.Reset(m + 1)
	s.entry = s.entry[:0]
	for j, d := range ev.req.Destinations {
		best := graph.Infinity
		bestV := graph.NodeID(-1)
		for _, v := range subset {
			if dist := ev.spSrv[v].Dist[d]; dist < graph.Infinity {
				if c := omega[v] + dist; c < best {
					best, bestV = c, v
				}
			}
		}
		if bestV == -1 {
			return nil, nil, nil, false
		}
		s.entry = append(s.entry, bestV)
		s.closure.MustAddEdge(0, j+1, best)
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			d := ev.spDst[i].Dist[ev.req.Destinations[j]]
			if d < graph.Infinity {
				s.closure.MustAddEdge(i+1, j+1, d)
			}
		}
	}
	if err := s.mst.Prim(&s.closure, &s.closureMST); err != nil {
		return nil, nil, nil, false
	}
	return &s.closureMST, &s.closure, s.entry, true
}

// expand converts a closure MST into the union of work-graph edges and
// used virtual servers (KMB step 3). The returned slices are
// scratch-backed, deduplicated and unsorted (refine sorts them).
func (ev *closureEvaluator) expand(
	mst *graph.MST, closure *graph.Graph, entry []graph.NodeID, s *evalScratch,
) (union []graph.EdgeID, virt []graph.NodeID, err error) {
	gen := s.nextGen()
	s.union = s.union[:0]
	s.virt = s.virt[:0]
	addEdge := func(e graph.EdgeID) bool {
		if s.edgeGen[e] != gen {
			s.edgeGen[e] = gen
			s.union = append(s.union, e)
		}
		return true
	}
	dests := ev.req.Destinations
	for _, cid := range mst.EdgeIDs {
		ce := closure.Edge(cid)
		a, b := ce.U, ce.V
		if a > b {
			a, b = b, a
		}
		if a == 0 {
			// Virtual source to destination b-1 through its entry server.
			v := entry[b-1]
			if s.nodeGen[v] != gen {
				s.nodeGen[v] = gen
				s.virt = append(s.virt, v)
			}
			if !ev.spSrv[v].VisitPathEdges(dests[b-1], addEdge) {
				return nil, nil, fmt.Errorf("%w: server %d to destination %d",
					ErrUnreachable, v, dests[b-1])
			}
			continue
		}
		if !ev.spDst[a-1].VisitPathEdges(dests[b-1], addEdge) {
			return nil, nil, fmt.Errorf("%w: destinations %d and %d",
				ErrUnreachable, dests[a-1], dests[b-1])
		}
	}
	return s.union, s.virt, nil
}

// refine runs KMB steps 4-5 on the expansion: MST of the union
// subgraph (with the virtual source attached through its used virtual
// edges), then iterative pruning of non-terminal leaves. It returns
// the surviving virtual servers, the surviving real work-graph edges
// (both scratch-backed; PseudoTree construction copies what it keeps),
// and the total auxiliary cost. union and virt are sorted in place.
// When virt is empty, extraTerminals must anchor the tree instead of
// the virtual source (the rooted variant used for single-server
// candidates).
func (ev *closureEvaluator) refine(
	union []graph.EdgeID,
	virt []graph.NodeID,
	omega map[graph.NodeID]float64,
	s *evalScratch,
	extraTerminals ...graph.NodeID,
) (servers []graph.NodeID, realEdges []graph.EdgeID, cost float64, err error) {
	w := ev.w
	n := w.g.NumNodes()
	virtualNode := n // the auxiliary virtual source s'_k

	// Deterministic iteration order.
	sort.Ints(union)
	sort.Ints(virt)

	// Pruning graph over n+1 nodes holding only the union edges;
	// payload maps pruning edge -> (real work edge | virtual server).
	tg := &s.tg
	tg.Reset(n + 1)
	s.payloads = s.payloads[:0]
	for _, e := range union {
		he := w.g.Edge(e)
		tg.MustAddEdge(he.U, he.V, he.W)
		s.payloads = append(s.payloads, refinePayload{real: e, virtual: -1})
	}
	for _, v := range virt {
		tg.MustAddEdge(virtualNode, v, omega[v])
		s.payloads = append(s.payloads, refinePayload{virtual: v})
	}

	// Spanning forest of the union: the terminal component is a tree,
	// isolated nodes contribute nothing, so ErrDisconnected is
	// expected and benign here.
	if ferr := s.mst.Kruskal(tg, &s.forest); ferr != nil && ferr != graph.ErrDisconnected {
		return nil, nil, 0, ferr
	}

	// Prune non-terminal leaves (terminals: virtual source when
	// present, the destinations, and any extra anchors). The dense
	// per-node arrays cover all n+1 pruning-graph nodes; leaf removal
	// is confluent, so visiting candidates in node order reproduces the
	// same surviving edge set as any other order.
	nt := n + 1
	if cap(s.isTerm) < nt {
		s.isTerm = make([]bool, nt)
		s.deg = make([]int32, nt)
	}
	isTerm := s.isTerm[:nt]
	deg := s.deg[:nt]
	for i := 0; i < nt; i++ {
		isTerm[i] = false
		deg[i] = 0
	}
	if len(virt) > 0 {
		isTerm[virtualNode] = true
	}
	for _, d := range ev.req.Destinations {
		isTerm[d] = true
	}
	for _, v := range extraTerminals {
		isTerm[v] = true
	}
	if cap(s.incident) < nt {
		grown := make([][]int32, nt)
		copy(grown, s.incident[:cap(s.incident)])
		s.incident = grown
	} else {
		s.incident = s.incident[:nt]
	}
	incident := s.incident
	for i := 0; i < nt; i++ {
		incident[i] = incident[i][:0]
	}
	if cap(s.alive) < len(s.payloads) {
		s.alive = make([]bool, len(s.payloads))
	}
	alive := s.alive[:len(s.payloads)]
	for i := range alive {
		alive[i] = false
	}
	for _, id := range s.forest.EdgeIDs {
		alive[id] = true
		e := tg.Edge(id)
		deg[e.U]++
		deg[e.V]++
		incident[e.U] = append(incident[e.U], int32(id))
		incident[e.V] = append(incident[e.V], int32(id))
	}
	s.queue = s.queue[:0]
	for v := 0; v < nt; v++ {
		if deg[v] == 1 && !isTerm[v] {
			s.queue = append(s.queue, v)
		}
	}
	for len(s.queue) > 0 {
		v := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		for _, id := range incident[v] {
			if !alive[id] {
				continue
			}
			alive[id] = false
			e := tg.Edge(int(id))
			other := e.U
			if other == v {
				other = e.V
			}
			deg[v]--
			deg[other]--
			if deg[other] == 1 && !isTerm[other] {
				s.queue = append(s.queue, other)
			}
		}
	}

	// Surviving edges in ascending pruning-edge order — the same sorted
	// order the cost accumulation has always used, keeping float sums
	// bit-deterministic.
	s.servers = s.servers[:0]
	s.realEdges = s.realEdges[:0]
	for id, ok := range alive {
		if !ok {
			continue
		}
		cost += tg.Weight(id)
		p := s.payloads[id]
		if p.virtual >= 0 {
			s.servers = append(s.servers, p.virtual)
		} else {
			s.realEdges = append(s.realEdges, p.real)
		}
	}
	if len(virt) > 0 && len(s.servers) == 0 {
		return nil, nil, 0, fmt.Errorf("core: internal: pruned tree lost every server")
	}
	return s.servers, s.realEdges, cost, nil
}

// steinerRooted builds a KMB tree over {root} ∪ D_k from the
// precomputed per-server and per-destination Dijkstras. It realises
// the single-server "rooted" candidate (route to the server first,
// then distribute), which is always in the solution space of the
// problem and complements the virtual-source construction whose
// closure offsets all source-side distances by ω.
func (ev *closureEvaluator) steinerRooted(
	root graph.NodeID, s *evalScratch,
) (realEdges []graph.EdgeID, cost float64, err error) {
	spRoot, ok := ev.spSrv[root]
	if !ok {
		return nil, 0, fmt.Errorf("%w: server %d has no precomputed paths", ErrUnreachable, root)
	}
	s.ensure(ev.w.g.NumNodes(), ev.w.g.NumEdges())
	m := len(ev.req.Destinations)
	s.closure.Reset(m + 1)
	for j, d := range ev.req.Destinations {
		dist := spRoot.Dist[d]
		if dist >= graph.Infinity {
			return nil, 0, fmt.Errorf("%w: destination %d from server %d", ErrUnreachable, d, root)
		}
		s.closure.MustAddEdge(0, j+1, dist)
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			d := ev.spDst[i].Dist[ev.req.Destinations[j]]
			if d < graph.Infinity {
				s.closure.MustAddEdge(i+1, j+1, d)
			}
		}
	}
	if err := s.mst.Prim(&s.closure, &s.closureMST); err != nil {
		return nil, 0, err
	}
	gen := s.nextGen()
	s.union = s.union[:0]
	addEdge := func(e graph.EdgeID) bool {
		if s.edgeGen[e] != gen {
			s.edgeGen[e] = gen
			s.union = append(s.union, e)
		}
		return true
	}
	for _, cid := range s.closureMST.EdgeIDs {
		ce := s.closure.Edge(cid)
		a, b := ce.U, ce.V
		if a > b {
			a, b = b, a
		}
		var pok bool
		if a == 0 {
			pok = spRoot.VisitPathEdges(ev.req.Destinations[b-1], addEdge)
		} else {
			pok = ev.spDst[a-1].VisitPathEdges(ev.req.Destinations[b-1], addEdge)
		}
		if !pok {
			return nil, 0, ErrUnreachable
		}
	}
	_, realEdges, cost, err = ev.refine(s.union, nil, nil, s, root)
	return realEdges, cost, err
}

// steiner runs the full KMB pipeline for one server subset and
// returns the used servers, the surviving real work-graph edges
// (scratch-backed), and the auxiliary Steiner tree cost c(T_k^i).
func (ev *closureEvaluator) steiner(
	subset []graph.NodeID, omega map[graph.NodeID]float64, s *evalScratch,
) (servers []graph.NodeID, realEdges []graph.EdgeID, auxCost float64, err error) {
	s.ensure(ev.w.g.NumNodes(), ev.w.g.NumEdges())
	mst, closure, entry, ok := ev.closureMST(subset, omega, s)
	if !ok {
		return nil, nil, 0, ErrUnreachable
	}
	union, virt, err := ev.expand(mst, closure, entry, s)
	if err != nil {
		return nil, nil, 0, err
	}
	return ev.refine(union, virt, omega, s)
}
