package core

import (
	"fmt"
	"sort"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
)

// closureEvaluator scores server subsets for Appro_Multi without
// materialising the auxiliary graph G_k^i: distances between real
// nodes are subset-independent, so one Dijkstra per destination and
// per server (done once per request) lets every subset be evaluated
// through the KMB metric closure in O(|D_k|^2 + |D_k|*|subset|).
//
// Thread safety: a closureEvaluator is read-only after
// newClosureEvaluator returns. steiner and steinerRooted build all
// mutable state (closure graphs, MSTs, union maps, the pruning temp
// graph) locally per call and only read the precomputed ShortestPaths,
// so one evaluator may be shared by any number of goroutines — this is
// what Appro_Multi's parallel candidate evaluation relies on, and the
// -race stress tests in parallel_test.go pin it down.
type closureEvaluator struct {
	w     *workGraph
	req   *multicast.Request
	spSrv map[graph.NodeID]*graph.ShortestPaths
	spDst []*graph.ShortestPaths // parallel to req.Destinations
}

func newClosureEvaluator(
	w *workGraph, req *multicast.Request, spSrv map[graph.NodeID]*graph.ShortestPaths,
) (*closureEvaluator, error) {
	ev := &closureEvaluator{
		w:     w,
		req:   req,
		spSrv: spSrv,
		spDst: make([]*graph.ShortestPaths, len(req.Destinations)),
	}
	for i, d := range req.Destinations {
		sp, err := graph.Dijkstra(w.g, d)
		if err != nil {
			return nil, err
		}
		ev.spDst[i] = sp
	}
	return ev, nil
}

// closureMST computes the MST of the metric closure over the terminals
// {virtual source} ∪ D_k for the given subset: closure node 0 is the
// virtual source, node j+1 is destination j. It returns the closure
// MST edges plus, per destination, the cheapest entry server realising
// the virtual-source distance. ok is false when some destination
// cannot be reached through any subset server.
func (ev *closureEvaluator) closureMST(
	subset []graph.NodeID, omega map[graph.NodeID]float64,
) (mst *graph.MST, closure *graph.Graph, entry []graph.NodeID, ok bool) {
	m := len(ev.req.Destinations)
	closure = graph.New(m + 1)
	entry = make([]graph.NodeID, m)
	for j, d := range ev.req.Destinations {
		best := graph.Infinity
		bestV := graph.NodeID(-1)
		for _, v := range subset {
			if dist := ev.spSrv[v].Dist[d]; dist < graph.Infinity {
				if c := omega[v] + dist; c < best {
					best, bestV = c, v
				}
			}
		}
		if bestV == -1 {
			return nil, nil, nil, false
		}
		entry[j] = bestV
		closure.MustAddEdge(0, j+1, best)
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			d := ev.spDst[i].Dist[ev.req.Destinations[j]]
			if d < graph.Infinity {
				closure.MustAddEdge(i+1, j+1, d)
			}
		}
	}
	t, err := graph.PrimMST(closure)
	if err != nil {
		return nil, nil, nil, false
	}
	return t, closure, entry, true
}

// expand converts a closure MST into the union of work-graph edges and
// used virtual servers (KMB step 3).
func (ev *closureEvaluator) expand(
	mst *graph.MST, closure *graph.Graph, entry []graph.NodeID,
) (union map[graph.EdgeID]struct{}, virt map[graph.NodeID]struct{}, err error) {
	union = make(map[graph.EdgeID]struct{})
	virt = make(map[graph.NodeID]struct{})
	dests := ev.req.Destinations
	for _, cid := range mst.EdgeIDs {
		ce := closure.Edge(cid)
		a, b := ce.U, ce.V
		if a > b {
			a, b = b, a
		}
		if a == 0 {
			// Virtual source to destination b-1 through its entry server.
			v := entry[b-1]
			virt[v] = struct{}{}
			_, edges, ok := ev.spSrv[v].PathTo(dests[b-1])
			if !ok {
				return nil, nil, fmt.Errorf("%w: server %d to destination %d",
					ErrUnreachable, v, dests[b-1])
			}
			for _, e := range edges {
				union[e] = struct{}{}
			}
			continue
		}
		_, edges, ok := ev.spDst[a-1].PathTo(dests[b-1])
		if !ok {
			return nil, nil, fmt.Errorf("%w: destinations %d and %d",
				ErrUnreachable, dests[a-1], dests[b-1])
		}
		for _, e := range edges {
			union[e] = struct{}{}
		}
	}
	return union, virt, nil
}

// refine runs KMB steps 4-5 on the expansion: MST of the union
// subgraph (with the virtual source attached through its used virtual
// edges), then iterative pruning of non-terminal leaves. It returns
// the surviving virtual servers, the surviving real work-graph edges,
// and the total auxiliary cost. When virt is empty, extraTerminals
// must anchor the tree instead of the virtual source (the rooted
// variant used for single-server candidates).
func (ev *closureEvaluator) refine(
	union map[graph.EdgeID]struct{},
	virt map[graph.NodeID]struct{},
	omega map[graph.NodeID]float64,
	extraTerminals ...graph.NodeID,
) (servers []graph.NodeID, realEdges []graph.EdgeID, cost float64, err error) {
	w := ev.w
	n := w.g.NumNodes()
	virtualNode := n // the auxiliary virtual source s'_k

	// Deterministic iteration order.
	unionList := make([]graph.EdgeID, 0, len(union))
	for e := range union {
		unionList = append(unionList, e)
	}
	sort.Ints(unionList)
	virtList := make([]graph.NodeID, 0, len(virt))
	for v := range virt {
		virtList = append(virtList, v)
	}
	sort.Ints(virtList)

	// Temp graph over n+1 nodes holding only the union edges; payload
	// maps temp edge -> (real work edge | virtual server).
	type payload struct {
		real    graph.EdgeID
		virtual graph.NodeID // -1 when real
	}
	tg := graph.New(n + 1)
	payloads := make([]payload, 0, len(unionList)+len(virtList))
	for _, e := range unionList {
		he := w.g.Edge(e)
		tg.MustAddEdge(he.U, he.V, he.W)
		payloads = append(payloads, payload{real: e, virtual: -1})
	}
	for _, v := range virtList {
		tg.MustAddEdge(virtualNode, v, omega[v])
		payloads = append(payloads, payload{virtual: v})
	}

	// Spanning forest of the union: the terminal component is a tree,
	// isolated nodes contribute nothing, so ErrDisconnected is
	// expected and benign here.
	forest, ferr := graph.KruskalMST(tg)
	if ferr != nil && ferr != graph.ErrDisconnected {
		return nil, nil, 0, ferr
	}

	// Prune non-terminal leaves (terminals: virtual source when
	// present, the destinations, and any extra anchors).
	isTerm := make(map[graph.NodeID]struct{}, len(ev.req.Destinations)+2)
	if len(virtList) > 0 {
		isTerm[virtualNode] = struct{}{}
	}
	for _, d := range ev.req.Destinations {
		isTerm[d] = struct{}{}
	}
	for _, v := range extraTerminals {
		isTerm[v] = struct{}{}
	}
	deg := make(map[graph.NodeID]int)
	alive := make(map[graph.EdgeID]bool, len(forest.EdgeIDs))
	incident := make(map[graph.NodeID][]graph.EdgeID)
	for _, id := range forest.EdgeIDs {
		alive[id] = true
		e := tg.Edge(id)
		deg[e.U]++
		deg[e.V]++
		incident[e.U] = append(incident[e.U], id)
		incident[e.V] = append(incident[e.V], id)
	}
	var queue []graph.NodeID
	for v, d := range deg {
		if d == 1 {
			if _, ok := isTerm[v]; !ok {
				queue = append(queue, v)
			}
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, id := range incident[v] {
			if !alive[id] {
				continue
			}
			alive[id] = false
			e := tg.Edge(id)
			other := e.U
			if other == v {
				other = e.V
			}
			deg[v]--
			deg[other]--
			if deg[other] == 1 {
				if _, ok := isTerm[other]; !ok {
					queue = append(queue, other)
				}
			}
		}
	}

	aliveIDs := make([]graph.EdgeID, 0, len(alive))
	for id, ok := range alive {
		if ok {
			aliveIDs = append(aliveIDs, id)
		}
	}
	sort.Ints(aliveIDs)
	for _, id := range aliveIDs {
		cost += tg.Weight(id)
		p := payloads[id]
		if p.virtual >= 0 {
			servers = append(servers, p.virtual)
		} else {
			realEdges = append(realEdges, p.real)
		}
	}
	if len(virtList) > 0 && len(servers) == 0 {
		return nil, nil, 0, fmt.Errorf("core: internal: pruned tree lost every server")
	}
	return servers, realEdges, cost, nil
}

// steinerRooted builds a KMB tree over {root} ∪ D_k from the
// precomputed per-server and per-destination Dijkstras. It realises
// the single-server "rooted" candidate (route to the server first,
// then distribute), which is always in the solution space of the
// problem and complements the virtual-source construction whose
// closure offsets all source-side distances by ω.
func (ev *closureEvaluator) steinerRooted(
	root graph.NodeID,
) (realEdges []graph.EdgeID, cost float64, err error) {
	spRoot, ok := ev.spSrv[root]
	if !ok {
		return nil, 0, fmt.Errorf("%w: server %d has no precomputed paths", ErrUnreachable, root)
	}
	m := len(ev.req.Destinations)
	closure := graph.New(m + 1)
	for j, d := range ev.req.Destinations {
		dist := spRoot.Dist[d]
		if dist >= graph.Infinity {
			return nil, 0, fmt.Errorf("%w: destination %d from server %d", ErrUnreachable, d, root)
		}
		closure.MustAddEdge(0, j+1, dist)
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			d := ev.spDst[i].Dist[ev.req.Destinations[j]]
			if d < graph.Infinity {
				closure.MustAddEdge(i+1, j+1, d)
			}
		}
	}
	mst, err := graph.PrimMST(closure)
	if err != nil {
		return nil, 0, err
	}
	union := make(map[graph.EdgeID]struct{})
	for _, cid := range mst.EdgeIDs {
		ce := closure.Edge(cid)
		a, b := ce.U, ce.V
		if a > b {
			a, b = b, a
		}
		var pathEdges []graph.EdgeID
		var pok bool
		if a == 0 {
			_, pathEdges, pok = spRoot.PathTo(ev.req.Destinations[b-1])
		} else {
			_, pathEdges, pok = ev.spDst[a-1].PathTo(ev.req.Destinations[b-1])
		}
		if !pok {
			return nil, 0, ErrUnreachable
		}
		for _, e := range pathEdges {
			union[e] = struct{}{}
		}
	}
	_, realEdges, cost, err = ev.refine(union, nil, nil, root)
	return realEdges, cost, err
}

// steiner runs the full KMB pipeline for one server subset and
// returns the used servers, the surviving real work-graph edges, and
// the auxiliary Steiner tree cost c(T_k^i).
func (ev *closureEvaluator) steiner(
	subset []graph.NodeID, omega map[graph.NodeID]float64,
) (servers []graph.NodeID, realEdges []graph.EdgeID, auxCost float64, err error) {
	mst, closure, entry, ok := ev.closureMST(subset, omega)
	if !ok {
		return nil, nil, 0, ErrUnreachable
	}
	union, virt, err := ev.expand(mst, closure, entry)
	if err != nil {
		return nil, nil, 0, err
	}
	return ev.refine(union, virt, omega)
}
