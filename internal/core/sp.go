package core

import (
	"fmt"
	"sync"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// OnlineSP is the evaluation's online baseline heuristic SP (paper
// §VI.A): it removes links and servers without enough available
// resources, assigns every remaining link the same unit weight, and
// for each candidate server v picks a shortest path s_k→v plus the
// single-source shortest-path tree rooted at v spanning the
// destinations, keeping the minimum-cost combination. Unlike
// Online_CP it ignores resource utilisation, so it piles load onto
// already-busy links.
type OnlineSP struct {
	*Admitter
}

// NewOnlineSP returns an SP admitter over nw.
func NewOnlineSP(nw *sdn.Network) *OnlineSP {
	return &OnlineSP{Admitter: NewAdmitter(nw, NewSPPlanner())}
}

// SPPlanner is the pure planning half of the adaptive SP baseline.
type SPPlanner struct{}

// NewSPPlanner returns an adaptive-SP planner.
func NewSPPlanner() *SPPlanner { return &SPPlanner{} }

// Name identifies the algorithm.
func (p *SPPlanner) Name() string { return "SP" }

// Plan proposes the cheapest shortest-path combination on the residual
// network with uniform link weights.
func (p *SPPlanner) Plan(nw *sdn.Network, req *multicast.Request) (*Solution, error) {
	if err := validateInput(nw, req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	// Residual network with uniform link weights. The work graph is
	// request-specific (residual pruning), so the SP-tree cache lives
	// for this plan only — it still dedupes the source tree when the
	// source doubles as a candidate server.
	w := buildWorkGraph(nw, req, true, func(graph.EdgeID) float64 { return 1 })
	if len(w.servers) == 0 {
		return nil, fmt.Errorf("%w: %w", ErrRejected, ErrComputeExhausted)
	}
	sol, err := planSP(nw, req, w, newSPCache(w.g), nil)
	if err != nil {
		return nil, err
	}
	return sol, nil
}

// planSP is the shortest-path server selection shared by the adaptive
// and static SP planners: pick the server minimising (distance from
// the source) + (hop count of the SP tree restricted to destination
// paths), then realise the pseudo tree from the cached SP trees.
// eligible, when non-nil, filters candidate servers beyond the work
// graph's own pruning.
func planSP(
	nw *sdn.Network, req *multicast.Request, w *workGraph, sp *spCache,
	eligible func(graph.NodeID) bool,
) (*Solution, error) {
	spSrc, err := sp.from(req.Source)
	if err != nil {
		return nil, err
	}
	var (
		bestCost   = graph.Infinity
		bestServer = graph.NodeID(-1)
		bestSP     *graph.ShortestPaths
	)
	for _, v := range w.servers {
		if !spSrc.Reachable(v) {
			continue
		}
		if eligible != nil && !eligible(v) {
			continue
		}
		spV, derr := sp.from(v)
		if derr != nil {
			return nil, derr
		}
		cost := spSrc.Dist[v]
		feasible := true
		// Union of shortest paths v→d: hop count of the SP tree
		// restricted to destination paths.
		counted := make(map[graph.EdgeID]struct{})
		for _, d := range req.Destinations {
			if !spV.Reachable(d) {
				feasible = false
				break
			}
			_, edges, _ := spV.PathTo(d)
			for _, e := range edges {
				if _, ok := counted[e]; !ok {
					counted[e] = struct{}{}
					cost++
				}
			}
		}
		if !feasible {
			continue
		}
		if cost < bestCost {
			bestCost, bestServer, bestSP = cost, v, spV
		}
	}
	if bestServer == -1 {
		return nil, fmt.Errorf("%w: %w: no server reaches source and all destinations",
			ErrRejected, ErrUnreachable)
	}

	tree := multicast.NewPseudoTree(req.Source, req.Destinations, []graph.NodeID{bestServer})
	nodes, edges, ok := spSrc.PathTo(bestServer)
	if !ok {
		return nil, fmt.Errorf("%w: server %d", ErrUnreachable, bestServer)
	}
	if err := w.addHostPath(tree, nodes, edges, false); err != nil {
		return nil, err
	}
	for _, d := range req.Destinations {
		nodes, edges, ok = bestSP.PathTo(d)
		if !ok {
			return nil, fmt.Errorf("%w: destination %d", ErrUnreachable, d)
		}
		if err := w.addHostPath(tree, nodes, edges, true); err != nil {
			return nil, err
		}
	}
	return &Solution{
		Request:         req,
		Tree:            tree,
		Servers:         []graph.NodeID{bestServer},
		OperationalCost: OperationalCost(nw, req, tree),
		SelectionCost:   bestCost,
	}, nil
}

// OnlineSPStatic is a congestion-oblivious variant of SP that models
// static shortest-path multicast routing (fixed routes, as in plain
// IP multicast over static routing tables): trees are always computed
// on the pristine topology with uniform weights, and a request whose
// fixed tree no longer fits the residual capacities is rejected — no
// re-routing around loaded links. It quantifies how much of
// Online_CP's advantage comes from load awareness: against this
// baseline the admission gap of the paper's Figs. 8-9 opens fully.
type OnlineSPStatic struct {
	*Admitter
}

// NewOnlineSPStatic returns a static-routes SP admitter over nw.
func NewOnlineSPStatic(nw *sdn.Network) *OnlineSPStatic {
	return &OnlineSPStatic{Admitter: NewAdmitter(nw, NewSPStaticPlanner())}
}

// SPStaticPlanner is the pure planning half of the static-routes SP
// baseline. Because its work graph is the pristine topology with
// uniform weights — independent of residual load and of the request —
// the planner memoizes that graph and its shortest-path trees across
// Plan calls, keyed on the network's StructureVersion; only failure
// injection (which changes the usable topology) invalidates the cache.
// Residual snapshots (engine views) share one logical topology with
// the live network, so the cache also carries across them.
//
// A planner instance serves one logical network and its clones; do not
// share it across unrelated networks.
type SPStaticPlanner struct {
	mu      sync.Mutex
	nodes   int
	edges   int
	version uint64
	w       *workGraph
	sp      *spCache
}

// NewSPStaticPlanner returns a static-routes SP planner.
func NewSPStaticPlanner() *SPStaticPlanner { return &SPStaticPlanner{} }

// Name identifies the algorithm.
func (p *SPStaticPlanner) Name() string { return "SP_Static" }

// view returns the memoized pristine work graph and SP-tree cache,
// rebuilding both when the network's usable structure changed.
func (p *SPStaticPlanner) view(nw *sdn.Network, req *multicast.Request) (*workGraph, *spCache) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.w == nil || p.nodes != nw.NumNodes() || p.edges != nw.NumEdges() ||
		p.version != nw.StructureVersion() {
		// Pristine topology with uniform weights: no residual
		// filtering, so the view is identical for every request at
		// this structure version.
		p.w = buildWorkGraph(nw, req, false, func(graph.EdgeID) float64 { return 1 })
		p.sp = newSPCache(p.w.g)
		p.nodes, p.edges, p.version = nw.NumNodes(), nw.NumEdges(), nw.StructureVersion()
	}
	return p.w, p.sp
}

// Plan proposes the fixed shortest-path tree for req on the pristine
// topology; the commit step decides whether it still fits the residual
// capacities. Static routing still will not place the VM on a server
// that cannot host it.
func (p *SPStaticPlanner) Plan(nw *sdn.Network, req *multicast.Request) (*Solution, error) {
	if err := validateInput(nw, req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	w, sp := p.view(nw, req)
	demand := req.ComputeDemandMHz()
	sol, err := planSP(nw, req, w, sp, func(v graph.NodeID) bool {
		return nw.ResidualCompute(v) >= demand
	})
	if err != nil {
		if IsRejection(err) {
			return nil, fmt.Errorf("%w: no feasible server on static routes", err)
		}
		return nil, err
	}
	return sol, nil
}
