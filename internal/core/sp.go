package core

import (
	"fmt"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// OnlineSP is the evaluation's online baseline heuristic SP (paper
// §VI.A): it removes links and servers without enough available
// resources, assigns every remaining link the same unit weight, and
// for each candidate server v picks a shortest path s_k→v plus the
// single-source shortest-path tree rooted at v spanning the
// destinations, keeping the minimum-cost combination. Unlike
// Online_CP it ignores resource utilisation, so it piles load onto
// already-busy links.
type OnlineSP struct {
	nw       *sdn.Network
	lives    *liveTable
	admitted []*Solution
	rejected int
}

// NewOnlineSP returns an SP admitter over nw.
func NewOnlineSP(nw *sdn.Network) *OnlineSP {
	return &OnlineSP{nw: nw, lives: newLiveTable(nw)}
}

// Admit decides request r, allocating resources on admission and
// returning ErrRejected otherwise.
func (o *OnlineSP) Admit(req *multicast.Request) (*Solution, error) {
	sol, err := o.plan(req)
	if err != nil {
		o.rejected++
		return nil, err
	}
	alloc := AllocationFor(req, sol.Tree)
	if err := o.nw.Allocate(alloc); err != nil {
		o.rejected++
		return nil, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	o.lives.record(req, sol, alloc)
	o.admitted = append(o.admitted, sol)
	return sol, nil
}

func (o *OnlineSP) plan(req *multicast.Request) (*Solution, error) {
	nw := o.nw
	if err := validateInput(nw, req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	// Residual network with uniform link weights.
	w := buildWorkGraph(nw, req, true, func(graph.EdgeID) float64 { return 1 })
	if len(w.servers) == 0 {
		return nil, fmt.Errorf("%w: no server with enough free computing", ErrRejected)
	}
	spSrc, err := graph.Dijkstra(w.g, req.Source)
	if err != nil {
		return nil, err
	}

	var (
		bestCost   = graph.Infinity
		bestServer = graph.NodeID(-1)
		bestSP     *graph.ShortestPaths
	)
	for _, v := range w.servers {
		if !spSrc.Reachable(v) {
			continue
		}
		spV, derr := graph.Dijkstra(w.g, v)
		if derr != nil {
			return nil, derr
		}
		cost := spSrc.Dist[v]
		feasible := true
		// Union of shortest paths v→d: hop count of the SP tree
		// restricted to destination paths.
		counted := make(map[graph.EdgeID]struct{})
		for _, d := range req.Destinations {
			if !spV.Reachable(d) {
				feasible = false
				break
			}
			_, edges, _ := spV.PathTo(d)
			for _, e := range edges {
				if _, ok := counted[e]; !ok {
					counted[e] = struct{}{}
					cost++
				}
			}
		}
		if !feasible {
			continue
		}
		if cost < bestCost {
			bestCost, bestServer, bestSP = cost, v, spV
		}
	}
	if bestServer == -1 {
		return nil, fmt.Errorf("%w: no server reaches source and all destinations", ErrRejected)
	}

	tree := multicast.NewPseudoTree(req.Source, req.Destinations, []graph.NodeID{bestServer})
	nodes, edges, ok := spSrc.PathTo(bestServer)
	if !ok {
		return nil, fmt.Errorf("%w: server %d", ErrUnreachable, bestServer)
	}
	if err := w.addHostPath(tree, nodes, edges, false); err != nil {
		return nil, err
	}
	for _, d := range req.Destinations {
		nodes, edges, ok = bestSP.PathTo(d)
		if !ok {
			return nil, fmt.Errorf("%w: destination %d", ErrUnreachable, d)
		}
		if err := w.addHostPath(tree, nodes, edges, true); err != nil {
			return nil, err
		}
	}
	return &Solution{
		Request:         req,
		Tree:            tree,
		Servers:         []graph.NodeID{bestServer},
		OperationalCost: OperationalCost(nw, req, tree),
		SelectionCost:   bestCost,
	}, nil
}

// Admitted returns the solutions admitted so far.
func (o *OnlineSP) Admitted() []*Solution {
	out := make([]*Solution, len(o.admitted))
	copy(out, o.admitted)
	return out
}

// AdmittedCount reports the number of admitted requests.
func (o *OnlineSP) AdmittedCount() int { return len(o.admitted) }

// RejectedCount reports how many requests were rejected.
func (o *OnlineSP) RejectedCount() int { return o.rejected }

// OnlineSPStatic is a congestion-oblivious variant of SP that models
// static shortest-path multicast routing (fixed routes, as in plain
// IP multicast over static routing tables): trees are always computed
// on the pristine topology with uniform weights, and a request whose
// fixed tree no longer fits the residual capacities is rejected — no
// re-routing around loaded links. It quantifies how much of
// Online_CP's advantage comes from load awareness: against this
// baseline the admission gap of the paper's Figs. 8-9 opens fully.
type OnlineSPStatic struct {
	nw       *sdn.Network
	lives    *liveTable
	admitted []*Solution
	rejected int
}

// NewOnlineSPStatic returns a static-routes SP admitter over nw.
func NewOnlineSPStatic(nw *sdn.Network) *OnlineSPStatic {
	return &OnlineSPStatic{nw: nw, lives: newLiveTable(nw)}
}

// Admit decides request r: the fixed shortest-path tree either fits
// the residual network and is allocated, or the request is rejected.
func (o *OnlineSPStatic) Admit(req *multicast.Request) (*Solution, error) {
	sol, err := o.plan(req)
	if err != nil {
		o.rejected++
		return nil, err
	}
	alloc := AllocationFor(req, sol.Tree)
	if err := o.nw.Allocate(alloc); err != nil {
		o.rejected++
		return nil, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	o.lives.record(req, sol, alloc)
	o.admitted = append(o.admitted, sol)
	return sol, nil
}

func (o *OnlineSPStatic) plan(req *multicast.Request) (*Solution, error) {
	nw := o.nw
	if err := validateInput(nw, req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	// Pristine topology with uniform weights: no residual filtering.
	w := buildWorkGraph(nw, req, false, func(graph.EdgeID) float64 { return 1 })
	spSrc, err := graph.Dijkstra(w.g, req.Source)
	if err != nil {
		return nil, err
	}
	demand := req.ComputeDemandMHz()
	var (
		bestCost   = graph.Infinity
		bestServer = graph.NodeID(-1)
		bestSP     *graph.ShortestPaths
	)
	for _, v := range w.servers {
		if !spSrc.Reachable(v) {
			continue
		}
		// Static routing still will not place the VM on a server that
		// cannot host it.
		if nw.ResidualCompute(v) < demand {
			continue
		}
		spV, derr := graph.Dijkstra(w.g, v)
		if derr != nil {
			return nil, derr
		}
		cost := spSrc.Dist[v]
		counted := make(map[graph.EdgeID]struct{})
		feasible := true
		for _, d := range req.Destinations {
			if !spV.Reachable(d) {
				feasible = false
				break
			}
			_, edges, _ := spV.PathTo(d)
			for _, e := range edges {
				if _, ok := counted[e]; !ok {
					counted[e] = struct{}{}
					cost++
				}
			}
		}
		if !feasible {
			continue
		}
		if cost < bestCost {
			bestCost, bestServer, bestSP = cost, v, spV
		}
	}
	if bestServer == -1 {
		return nil, fmt.Errorf("%w: no feasible server on static routes", ErrRejected)
	}
	tree := multicast.NewPseudoTree(req.Source, req.Destinations, []graph.NodeID{bestServer})
	nodes, edges, ok := spSrc.PathTo(bestServer)
	if !ok {
		return nil, fmt.Errorf("%w: server %d", ErrUnreachable, bestServer)
	}
	if err := w.addHostPath(tree, nodes, edges, false); err != nil {
		return nil, err
	}
	for _, d := range req.Destinations {
		nodes, edges, ok = bestSP.PathTo(d)
		if !ok {
			return nil, fmt.Errorf("%w: destination %d", ErrUnreachable, d)
		}
		if err := w.addHostPath(tree, nodes, edges, true); err != nil {
			return nil, err
		}
	}
	return &Solution{
		Request:         req,
		Tree:            tree,
		Servers:         []graph.NodeID{bestServer},
		OperationalCost: OperationalCost(nw, req, tree),
		SelectionCost:   bestCost,
	}, nil
}

// Admitted returns the solutions admitted so far.
func (o *OnlineSPStatic) Admitted() []*Solution {
	out := make([]*Solution, len(o.admitted))
	copy(out, o.admitted)
	return out
}

// AdmittedCount reports the number of admitted requests.
func (o *OnlineSPStatic) AdmittedCount() int { return len(o.admitted) }

// RejectedCount reports how many requests were rejected.
func (o *OnlineSPStatic) RejectedCount() int { return o.rejected }
