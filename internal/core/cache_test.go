package core

// Tests for the plan-path caches: the per-root shortest-path cache
// under concurrent mixed hit/miss access, and the work-graph cache's
// key invalidation on residual mutations.

import (
	"sync"
	"testing"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/sdn"
)

func TestSPCacheConcurrentMixedHitMiss(t *testing.T) {
	nw := testNetwork(t, 60, 41)
	g := nw.Graph()
	spc := newSPCache(g)

	// Reference trees computed fresh, single-threaded.
	want := make([]*graph.ShortestPaths, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		sp, err := graph.Dijkstra(g, v)
		if err != nil {
			t.Fatal(err)
		}
		want[v] = sp
	}

	// Pre-warm a few roots so goroutines mix hits with misses, then
	// hammer overlapping root sets from many goroutines, half of them
	// using a private Dijkstra workspace.
	for v := 0; v < 5; v++ {
		if _, err := spc.from(graph.NodeID(v)); err != nil {
			t.Fatal(err)
		}
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			var ws graph.DijkstraWorkspace
			for rep := 0; rep < 3; rep++ {
				for v := 0; v < g.NumNodes(); v++ {
					root := graph.NodeID((v + wi*7) % g.NumNodes())
					var sp *graph.ShortestPaths
					var err error
					if wi%2 == 0 {
						sp, err = spc.fromWith(root, &ws)
					} else {
						sp, err = spc.from(root)
					}
					if err != nil {
						errs[wi] = err
						return
					}
					if sp.Source != root || sp.Dist[root] != 0 {
						t.Errorf("worker %d: bad tree for root %d", wi, root)
						return
					}
					for u := range sp.Dist {
						if sp.Dist[u] != want[root].Dist[u] {
							t.Errorf("worker %d root %d: Dist[%d]=%v want %v",
								wi, root, u, sp.Dist[u], want[root].Dist[u])
							return
						}
					}
				}
			}
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestWorkGraphKeyTracksResidualMutations(t *testing.T) {
	nw := testNetwork(t, 30, 42)
	req := testRequest(t, nw, 43)
	base := makeWorkGraphKey(nw, req)

	if got := makeWorkGraphKey(nw, req); got != base {
		t.Fatal("key not stable without mutations")
	}

	// Allocate invalidates.
	alloc := sdn.Allocation{Links: map[graph.EdgeID]float64{0: 1}}
	if err := nw.Allocate(alloc); err != nil {
		t.Fatal(err)
	}
	afterAlloc := makeWorkGraphKey(nw, req)
	if afterAlloc == base {
		t.Fatal("key unchanged after Allocate")
	}

	// Release invalidates (does not revert to the pre-allocation key).
	if err := nw.Release(alloc); err != nil {
		t.Fatal(err)
	}
	afterRelease := makeWorkGraphKey(nw, req)
	if afterRelease == base || afterRelease == afterAlloc {
		t.Fatal("key unchanged after Release")
	}

	// Restore invalidates even when the restored residuals equal the
	// current ones.
	snap := nw.Snapshot()
	if err := nw.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := makeWorkGraphKey(nw, req); got == afterRelease {
		t.Fatal("key unchanged after Restore")
	}

	// Failure injection invalidates (structural + residual epoch).
	pre := makeWorkGraphKey(nw, req)
	nw.SetLinkUp(0, false)
	if got := makeWorkGraphKey(nw, req); got == pre {
		t.Fatal("key unchanged after SetLinkUp")
	}

	// Clones inherit the epochs: planning against a snapshot clone hits
	// the same cache entry as the network it was cloned from.
	if got := makeWorkGraphKey(nw.Clone(), req); got != makeWorkGraphKey(nw, req) {
		t.Fatal("clone does not share its parent's key")
	}

	// Different request parameters miss even at the same epoch.
	req2 := *req
	req2.BandwidthMbps++
	if got := makeWorkGraphKey(nw, &req2); got == makeWorkGraphKey(nw, req) {
		t.Fatal("key ignores request bandwidth")
	}
}

func TestWorkGraphCacheHitAfterMutationMiss(t *testing.T) {
	nw := testNetwork(t, 30, 44)
	req := testRequest(t, nw, 45)

	var c workGraphCache
	k1 := makeWorkGraphKey(nw, req)
	w1 := buildWorkGraph(nw, req, true, func(graph.EdgeID) float64 { return 1 })
	c.put(k1, w1, newSPCache(w1.g))
	if got, _, ok := c.get(k1); !ok || got != w1 {
		t.Fatal("fresh entry not returned")
	}

	if err := nw.Allocate(sdn.Allocation{Links: map[graph.EdgeID]float64{0: 1}}); err != nil {
		t.Fatal(err)
	}
	k2 := makeWorkGraphKey(nw, req)
	if _, _, ok := c.get(k2); ok {
		t.Fatal("stale entry served for post-mutation key")
	}
	w2 := buildWorkGraph(nw, req, true, func(graph.EdgeID) float64 { return 1 })
	c.put(k2, w2, newSPCache(w2.g))
	if got, _, ok := c.get(k2); !ok || got != w2 {
		t.Fatal("post-mutation entry not returned")
	}
	// The old epoch stays retrievable until evicted.
	if got, _, ok := c.get(k1); !ok || got != w1 {
		t.Fatal("previous epoch evicted prematurely")
	}
}
