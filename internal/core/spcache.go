package core

import (
	"sync"

	"nfvmcast/internal/graph"
)

// spCache memoizes single-source shortest-path trees per root over one
// immutable work graph, so evaluation paths that revisit a root (the
// source doubling as a candidate server, engine re-plans, and the
// static planner's cross-request reuse) share one Dijkstra instead of
// recomputing it. graph.ShortestPaths is immutable after construction,
// so cached trees may be shared freely.
//
// The cache is safe for concurrent use. A miss computes outside the
// lock: two goroutines may duplicate a Dijkstra, but both results are
// identical (Dijkstra is deterministic on a fixed graph), so whichever
// store wins is correct.
type spCache struct {
	g *graph.Graph

	mu     sync.Mutex
	byRoot map[graph.NodeID]*graph.ShortestPaths
}

func newSPCache(g *graph.Graph) *spCache {
	return &spCache{g: g, byRoot: make(map[graph.NodeID]*graph.ShortestPaths)}
}

// from returns the shortest-path tree rooted at v, computing and
// memoizing it on first use.
func (c *spCache) from(v graph.NodeID) (*graph.ShortestPaths, error) {
	return c.fromWith(v, nil)
}

// fromWith is from with an optional caller-owned Dijkstra workspace
// (heap arena) for the miss path. The computed tree itself owns its
// arrays, so cached trees stay immutable and shareable regardless of
// which workspace produced them.
func (c *spCache) fromWith(v graph.NodeID, ws *graph.DijkstraWorkspace) (*graph.ShortestPaths, error) {
	c.mu.Lock()
	sp, ok := c.byRoot[v]
	c.mu.Unlock()
	if ok {
		return sp, nil
	}
	var err error
	if ws != nil {
		sp = new(graph.ShortestPaths)
		err = ws.DijkstraInto(c.g, v, sp)
	} else {
		sp, err = graph.Dijkstra(c.g, v)
	}
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.byRoot[v] = sp
	c.mu.Unlock()
	return sp, nil
}
