package core

import (
	"sync"

	"nfvmcast/internal/graph"
)

// spCache memoizes single-source shortest-path trees per root over one
// immutable work graph, so evaluation paths that revisit a root (the
// source doubling as a candidate server, engine re-plans, and the
// static planner's cross-request reuse) share one Dijkstra instead of
// recomputing it. graph.ShortestPaths is immutable after construction,
// so cached trees may be shared freely.
//
// The cache is safe for concurrent use. Misses are single-flighted:
// concurrent requests for the same root block on one computation
// instead of duplicating it — Dijkstra over the work graph is the
// dominant cost of a plan, so a duplicated build wastes exactly the
// work the cache exists to save.
type spCache struct {
	g *graph.Graph

	mu       sync.Mutex
	byRoot   map[graph.NodeID]*graph.ShortestPaths
	inflight map[graph.NodeID]*spCall
	builds   uint64 // cold Dijkstra runs (not repairs, not hits)
}

// spCall is one in-flight Dijkstra build another goroutine may wait on.
type spCall struct {
	done chan struct{}
	sp   *graph.ShortestPaths
	err  error
}

func newSPCache(g *graph.Graph) *spCache {
	return &spCache{g: g, byRoot: make(map[graph.NodeID]*graph.ShortestPaths)}
}

// from returns the shortest-path tree rooted at v, computing and
// memoizing it on first use.
func (c *spCache) from(v graph.NodeID) (*graph.ShortestPaths, error) {
	return c.fromWith(v, nil)
}

// fromWith is from with an optional caller-owned Dijkstra workspace
// (heap arena) for the miss path. The computed tree itself owns its
// arrays, so cached trees stay immutable and shareable regardless of
// which workspace produced them.
func (c *spCache) fromWith(v graph.NodeID, ws *graph.DijkstraWorkspace) (*graph.ShortestPaths, error) {
	c.mu.Lock()
	if sp, ok := c.byRoot[v]; ok {
		c.mu.Unlock()
		return sp, nil
	}
	if call, ok := c.inflight[v]; ok {
		c.mu.Unlock()
		<-call.done
		return call.sp, call.err
	}
	call := &spCall{done: make(chan struct{})}
	if c.inflight == nil {
		c.inflight = make(map[graph.NodeID]*spCall)
	}
	c.inflight[v] = call
	c.mu.Unlock()

	var sp *graph.ShortestPaths
	var err error
	if ws != nil {
		sp = new(graph.ShortestPaths)
		err = ws.DijkstraInto(c.g, v, sp)
	} else {
		sp, err = graph.Dijkstra(c.g, v)
	}

	c.mu.Lock()
	if err == nil {
		c.byRoot[v] = sp
		c.builds++
	}
	delete(c.inflight, v)
	c.mu.Unlock()
	call.sp, call.err = sp, err
	close(call.done)
	if err != nil {
		return nil, err
	}
	return sp, nil
}

// buildCount reports how many cold Dijkstra builds the cache has run —
// test instrumentation for the single-flight guarantee.
func (c *spCache) buildCount() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.builds
}

// repairedClone derives a new cache over newG — the same graph
// structure with new weights on exactly the changed local edges — by
// dynamically repairing every tree cached here instead of recomputing
// it from scratch (see graph.RepairInto; repairs whose damage region
// exceeds maxDamage nodes fall back to a full Dijkstra internally).
// The receiver is left untouched and stays valid for its own graph.
func (c *spCache) repairedClone(
	newG *graph.Graph, changed []graph.EdgeID, maxDamage int,
	ws *graph.DijkstraWorkspace, scratch *spRootScratch,
) (*spCache, error) {
	c.mu.Lock()
	scratch.roots = scratch.roots[:0]
	scratch.sps = scratch.sps[:0]
	for root, sp := range c.byRoot {
		scratch.roots = append(scratch.roots, root)
		scratch.sps = append(scratch.sps, sp)
	}
	c.mu.Unlock()

	nc := newSPCache(newG)
	for i, root := range scratch.roots {
		sp := new(graph.ShortestPaths)
		if _, err := ws.RepairInto(newG, scratch.sps[i], changed, maxDamage, sp); err != nil {
			return nil, err
		}
		nc.byRoot[root] = sp
	}
	return nc, nil
}

// spRootScratch carries repairedClone's root snapshot between pooled
// uses so the patch path does not allocate it per call.
type spRootScratch struct {
	roots []graph.NodeID
	sps   []*graph.ShortestPaths
}
