// Package core implements the paper's contribution: the Appro_Multi
// 2K-approximation for NFV-enabled multicasting (with and without
// resource capacity constraints), the Online_CP online admission
// algorithm with its exponential cost model, and the evaluation
// baselines Alg_One_Server (Zhang et al.) and SP.
//
// All algorithms operate on an sdn.Network and produce
// multicast.PseudoTree routing graphs plus sdn.Allocation resource
// bundles, so the results can be installed on the SDN controller and
// verified by packet replay.
//
// Performance note: Appro_Multi enumerates every server subset of
// size <= K. The default implementation precomputes one Dijkstra per
// terminal and per server on the request-weighted graph and evaluates
// each subset through the metric closure (the KMB construction), so a
// subset costs O(|D_k|^2) rather than |D_k| fresh Dijkstras. An
// explicit auxiliary-graph implementation (paper-literal, including
// the zero-cost source-to-server edge rule) is available through
// Options.ExplicitAuxiliary and is cross-checked against the fast
// path in the test suite; see DESIGN.md §4.
package core
