package core

import (
	"fmt"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// Fast rejection. Planning a doomed request costs the same Steiner
// sweep as planning an admissible one; under load, a meaningful share
// of arrivals is doomed for reasons visible in O(|servers|) — no
// server has the residual compute, or every server already prices over
// the admission threshold. FastRejecter lets a planner surface those
// decisions before the admitter pays for a work graph, shortest-path
// trees, or Steiner constructions.
//
// The contract is strict: FastReject may return a non-nil error only
// when the planner's full Plan* path would provably return the *exact
// same* error for this (view, request) pair — same sentinel chain,
// same message. A nil return promises nothing. This keeps decision
// sequences byte-identical with and without the fast path, which the
// determinism oracles assert.
type FastRejecter interface {
	FastReject(view *sdn.Network, req *multicast.Request) error
}

// fastReject consults the planner's FastRejecter (when implemented)
// with the plan timer already running, so an instrumented rejection is
// indistinguishable from a planned one apart from its latency.
func (a *Admitter) fastReject(view *sdn.Network, req *multicast.Request) error {
	fr, ok := a.planner.(FastRejecter)
	if !ok {
		return nil
	}
	return fr.FastReject(view, req)
}

// FastReject reports the cheap provable rejections of Online_CP: input
// validation, compute exhaustion (no up server holds the demand — the
// capacitated work graph would have no servers), and the whole server
// set pricing over σ_v (every candidate is skipped by threshold (a),
// so the plan ends at "no admissible server/tree"). Each mirrors the
// exact error PlanContext would produce; anything subtler returns nil
// and defers to the full plan.
func (p *CPPlanner) FastReject(view *sdn.Network, req *multicast.Request) error {
	if err := validateInput(view, req); err != nil {
		return fmt.Errorf("%w: %v", ErrRejected, err)
	}
	demand := req.ComputeDemandMHz()
	anyEligible, anyUnderThreshold := false, false
	view.VisitServers(func(v graph.NodeID) bool {
		if !view.ServerUp(v) || view.ResidualCompute(v) < demand {
			return true
		}
		anyEligible = true
		if p.model.ServerWeight(view, v) < p.model.SigmaV {
			anyUnderThreshold = true
			return false // a full plan is required to decide
		}
		return true
	})
	if !anyEligible {
		return fmt.Errorf("%w: %w: %0.f MHz demanded",
			ErrRejected, ErrComputeExhausted, demand)
	}
	if !anyUnderThreshold {
		return fmt.Errorf("%w: %w: no admissible server/tree",
			ErrRejected, ErrThresholdExceeded)
	}
	return nil
}

// FastReject is Online_CPK's counterpart; its full path words the same
// decisions differently, so the mirrored errors differ from
// CPPlanner's.
func (p *CPKPlanner) FastReject(view *sdn.Network, req *multicast.Request) error {
	if err := validateInput(view, req); err != nil {
		return fmt.Errorf("%w: %v", ErrRejected, err)
	}
	demand := req.ComputeDemandMHz()
	anyEligible, anyUnderThreshold := false, false
	view.VisitServers(func(v graph.NodeID) bool {
		if !view.ServerUp(v) || view.ResidualCompute(v) < demand {
			return true
		}
		anyEligible = true
		if p.model.ServerWeight(view, v) < p.model.SigmaV {
			anyUnderThreshold = true
			return false
		}
		return true
	})
	if !anyEligible {
		return fmt.Errorf("%w: %w", ErrRejected, ErrComputeExhausted)
	}
	if !anyUnderThreshold {
		return fmt.Errorf("%w: %w: every server over threshold or cut off",
			ErrRejected, ErrThresholdExceeded)
	}
	return nil
}
