package core

import (
	"testing"

	"nfvmcast/internal/multicast"
)

func TestOnlineCPKValidation(t *testing.T) {
	nw := testNetwork(t, 30, 2)
	if _, err := NewOnlineCPK(nw, DefaultCostModel(nw.NumNodes()), 0); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := NewOnlineCPK(nw, CostModel{Alpha: 0.5}, 2); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestOnlineCPKSequenceInvariants(t *testing.T) {
	nw := testNetwork(t, 50, 14)
	ok2, err := NewOnlineCPK(nw, DefaultCostModel(nw.NumNodes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.OnlineGeneratorConfig(), 15)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		req, gerr := gen.Next()
		if gerr != nil {
			t.Fatal(gerr)
		}
		sol, aerr := ok2.Admit(req)
		if aerr != nil {
			if !IsRejection(aerr) {
				t.Fatalf("request %d: %v", i, aerr)
			}
			continue
		}
		if len(sol.Servers) < 1 || len(sol.Servers) > 2 {
			t.Fatalf("request %d used %d servers, want 1..2", i, len(sol.Servers))
		}
		if derr := sol.Tree.CheckDelivery(nw.Graph()); derr != nil {
			t.Fatalf("request %d: %v", i, derr)
		}
	}
	if ok2.AdmittedCount() == 0 {
		t.Fatal("nothing admitted")
	}
	if ok2.AdmittedCount()+ok2.RejectedCount() != 120 {
		t.Fatal("counters don't add up")
	}
	if ok2.LiveCount() != ok2.AdmittedCount() {
		t.Fatal("live count mismatch without departures")
	}
	if len(ok2.Admitted()) != ok2.AdmittedCount() {
		t.Fatal("Admitted() length mismatch")
	}
	for e := 0; e < nw.NumEdges(); e++ {
		if r := nw.ResidualBandwidth(e); r < -1e-9 || r > nw.BandwidthCap(e)+1e-9 {
			t.Fatalf("link %d residual %v out of bounds", e, r)
		}
	}
	// Departures drain cleanly.
	first := ok2.Admitted()[0]
	if _, err := ok2.Depart(first.Request.ID); err != nil {
		t.Fatal(err)
	}
	if ok2.LiveCount() != ok2.AdmittedCount()-1 {
		t.Fatal("departure did not decrement live count")
	}
}

// TestOnlineCPKAtLeastCompetitiveWithK1 compares throughput across K
// on identical replicas: more placement freedom should not admit
// dramatically fewer requests (it may admit slightly fewer because
// multi-server trees consume computing on every replica).
func TestOnlineCPKAtLeastCompetitiveWithK1(t *testing.T) {
	counts := make(map[int]int)
	for _, k := range []int{1, 2} {
		nw := testNetwork(t, 50, 26)
		adm, err := NewOnlineCPK(nw, DefaultCostModel(nw.NumNodes()), k)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.OnlineGeneratorConfig(), 27)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			req, gerr := gen.Next()
			if gerr != nil {
				t.Fatal(gerr)
			}
			_, _ = adm.Admit(req)
		}
		counts[k] = adm.AdmittedCount()
	}
	t.Logf("admitted: K=1 %d, K=2 %d", counts[1], counts[2])
	if counts[2] < counts[1]*8/10 {
		t.Fatalf("K=2 admitted %d, far below K=1's %d", counts[2], counts[1])
	}
}
