package core

import (
	"nfvmcast/internal/graph"
)

// PlanArena owns the per-plan scratch memory of the online planners:
// the Dijkstra workspace and Steiner scratch of the per-candidate KMB
// runs, the hoisted terminal and LCA argument slices, and the closure
// evaluator's per-candidate buffers. One arena serves one Plan call at
// a time; the admission engine keeps one per planner worker so
// concurrent planners never share scratch, and arena-less Plan calls
// draw from a pool. The zero value is ready to use.
//
// Arenas only relocate transient state — every planner result is
// identical with or without one.
type PlanArena struct {
	ws      graph.DijkstraWorkspace
	steiner graph.SteinerScratch
	eval    evalScratch

	terms   []graph.NodeID
	sps     []*graph.ShortestPaths
	dstSPs  []*graph.ShortestPaths
	lcaArgs []graph.NodeID
}

// NewPlanArena returns an empty arena. Arenas grow to workload size on
// first use and are reused across requests.
func NewPlanArena() *PlanArena { return &PlanArena{} }

// refinePayload maps a pruning-graph edge back to what it represents:
// a real work-graph edge, or the virtual edge of an auxiliary server.
type refinePayload struct {
	real    graph.EdgeID
	virtual graph.NodeID // -1 when real
}

// evalScratch is the per-candidate scratch of the closure evaluator
// and the tree decomposition: metric closures, MST workspaces, the
// stamped expansion-union buffers, the pruning graph of KMB steps 4-5
// and the component-orientation state of decompose. Appro_Multi's
// candidate evaluation hands each worker goroutine its own instance;
// the online planners keep one inside their PlanArena. The zero value
// is ready to use.
type evalScratch struct {
	closure    graph.Graph // metric closure over {virtual source} ∪ D_k
	closureMST graph.MST
	mst        graph.MSTWorkspace

	entry []graph.NodeID // per-destination cheapest entry server

	gen     uint32   // stamp generation for the union/visited sets
	edgeGen []uint32 // work-graph edge -> generation last added to union
	nodeGen []uint32 // work-graph node -> generation last marked
	union   []graph.EdgeID
	virt    []graph.NodeID

	tg        graph.Graph // pruning graph over n+1 nodes (KMB steps 4-5)
	payloads  []refinePayload
	forest    graph.MST
	isTerm    []bool
	deg       []int32
	incident  [][]int32
	alive     []bool
	queue     []graph.NodeID
	servers   []graph.NodeID
	realEdges []graph.EdgeID

	adj    [][]graph.Neighbor // decompose: component adjacency
	adjGen []uint32           // decompose: node -> generation adj was truncated
	visGen []uint32           // decompose: node -> generation visited
	stack  []graph.NodeID
}

// ensure sizes the stamp arrays for a work graph with n nodes and m
// edges; fresh arrays are zero-stamped and never match a live
// generation.
func (s *evalScratch) ensure(n, m int) {
	if cap(s.nodeGen) < n {
		s.nodeGen = make([]uint32, n)
		s.adjGen = make([]uint32, n)
		s.visGen = make([]uint32, n)
	} else {
		s.nodeGen = s.nodeGen[:n]
		s.adjGen = s.adjGen[:n]
		s.visGen = s.visGen[:n]
	}
	if cap(s.adj) < n {
		grown := make([][]graph.Neighbor, n)
		copy(grown, s.adj[:cap(s.adj)])
		s.adj = grown
	} else {
		s.adj = s.adj[:n]
	}
	if cap(s.edgeGen) < m {
		s.edgeGen = make([]uint32, m)
	} else {
		s.edgeGen = s.edgeGen[:m]
	}
}

// nextGen advances the stamp generation, invalidating every stamped
// set in O(1); on uint32 wrap the stamp arrays are cleared so stale
// stamps cannot alias a live generation.
func (s *evalScratch) nextGen() uint32 {
	s.gen++
	if s.gen == 0 {
		for i := range s.edgeGen {
			s.edgeGen[i] = 0
		}
		for i := range s.nodeGen {
			s.nodeGen[i] = 0
		}
		for i := range s.adjGen {
			s.adjGen[i] = 0
		}
		for i := range s.visGen {
			s.visGen[i] = 0
		}
		s.gen = 1
	}
	return s.gen
}
