package core

import (
	"errors"
	"sort"
	"strings"
	"testing"
)

// TestPlannersTableSortedAndComplete pins the registry's contents: the
// built-in policies are all present, every row carries a description
// and constructor, and the listing is name-sorted (the order every
// policy table in the CLIs renders).
func TestPlannersTableSortedAndComplete(t *testing.T) {
	specs := Planners()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
		if s.Description == "" {
			t.Errorf("planner %q has no description", s.Name)
		}
		if s.New == nil {
			t.Errorf("planner %q has no constructor", s.Name)
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Planners() not sorted: %v", names)
	}
	for _, want := range []string{
		"Online_CP", "SP", "SP_Static", "Online_CPK",
		"Appro_Multi_Cap", "Dist_CP", "Reconf_CP",
	} {
		if _, ok := LookupPlanner(want); !ok {
			t.Errorf("built-in planner %q missing from registry", want)
		}
	}
}

// TestNewPlannerConstructsEveryRegisteredPolicy constructs every
// registry row with defaulted options and checks the planner reports
// its registered name — the property the obs policy labels and the
// figure series rely on.
func TestNewPlannerConstructsEveryRegisteredPolicy(t *testing.T) {
	for _, spec := range Planners() {
		p, err := NewPlanner(spec.Name, PlannerOptions{Nodes: 40})
		if err != nil {
			t.Fatalf("NewPlanner(%q): %v", spec.Name, err)
		}
		if p.Name() != spec.Name {
			t.Errorf("NewPlanner(%q).Name() = %q", spec.Name, p.Name())
		}
	}
}

// TestNewPlannerUnknownName pins the typed error and its message shape
// (the registered-names list helps operators fix manifests).
func TestNewPlannerUnknownName(t *testing.T) {
	_, err := NewPlanner("Bogus_CP", PlannerOptions{Nodes: 40})
	if !errors.Is(err, ErrUnknownPlanner) {
		t.Fatalf("err = %v, want ErrUnknownPlanner", err)
	}
	if !strings.Contains(err.Error(), `"Bogus_CP"`) || !strings.Contains(err.Error(), "Online_CP") {
		t.Fatalf("error %q should name the miss and list registered planners", err)
	}
}

// TestRegisterPlannerMisusePanics pins the fail-fast contract for
// registration bugs: empty names, nil constructors and duplicate
// registrations are programmer errors caught at init time, not
// runtime lookups.
func TestRegisterPlannerMisusePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() {
		RegisterPlanner(PlannerSpec{Name: "", Description: "x", New: func(PlannerOptions) (Planner, error) { return nil, nil }})
	})
	mustPanic("nil constructor", func() {
		RegisterPlanner(PlannerSpec{Name: "X_CP", Description: "x"})
	})
	mustPanic("duplicate", func() {
		RegisterPlanner(PlannerSpec{Name: "Online_CP", Description: "x", New: func(PlannerOptions) (Planner, error) { return nil, nil }})
	})
}

// TestPlannersReturnsACopy mutating the returned slice must not
// corrupt the registry.
func TestPlannersReturnsACopy(t *testing.T) {
	a := Planners()
	a[0].Name = "mutated"
	if b := Planners(); b[0].Name == "mutated" {
		t.Fatal("Planners() exposes the registry's backing array")
	}
}
