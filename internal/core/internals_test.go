package core

// Unit tests for the package internals: the work-graph view, the
// closure evaluator, and the explicit auxiliary construction.

import (
	"math"
	"testing"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/nfv"
	"nfvmcast/internal/sdn"
)

func TestBuildWorkGraphFiltersResiduals(t *testing.T) {
	nw := testNetwork(t, 30, 4)
	req := testRequest(t, nw, 5)
	full := buildWorkGraph(nw, req, false, func(graph.EdgeID) float64 { return 1 })
	if full.g.NumEdges() != nw.NumEdges() {
		t.Fatalf("uncapacitated view has %d edges, want %d", full.g.NumEdges(), nw.NumEdges())
	}
	if len(full.servers) != len(nw.Servers()) {
		t.Fatalf("uncapacitated view has %d servers, want %d",
			len(full.servers), len(nw.Servers()))
	}
	// Drain edge 0 and a server, then rebuild capacitated.
	if err := nw.Allocate(sdn.Allocation{
		Links: map[graph.EdgeID]float64{0: nw.ResidualBandwidth(0)},
	}); err != nil {
		t.Fatal(err)
	}
	v := nw.Servers()[0]
	if err := nw.Allocate(sdn.Allocation{
		Servers: map[graph.NodeID]float64{v: nw.ResidualCompute(v)},
	}); err != nil {
		t.Fatal(err)
	}
	capped := buildWorkGraph(nw, req, true, func(graph.EdgeID) float64 { return 1 })
	if capped.g.NumEdges() != nw.NumEdges()-1 {
		t.Fatalf("capacitated view has %d edges, want %d", capped.g.NumEdges(), nw.NumEdges()-1)
	}
	for _, s := range capped.servers {
		if s == v {
			t.Fatal("drained server still eligible")
		}
	}
	// hostEdge mapping must skip the drained edge consistently.
	for le := 0; le < capped.g.NumEdges(); le++ {
		he := capped.hostEdge(le)
		if he == 0 {
			t.Fatal("drained edge appears in mapping")
		}
		a := capped.g.Edge(le)
		b := nw.Graph().Edge(he)
		if a.U != b.U || a.V != b.V {
			t.Fatalf("edge mapping mismatch: local %d {%d,%d} vs host %d {%d,%d}",
				le, a.U, a.V, he, b.U, b.V)
		}
	}
}

func TestWorkGraphAddHostPathTranslates(t *testing.T) {
	nw := testNetwork(t, 20, 6)
	req := testRequest(t, nw, 7)
	w := buildWorkGraph(nw, req, false, func(graph.EdgeID) float64 { return 1 })
	sp, err := graph.Dijkstra(w.g, req.Source)
	if err != nil {
		t.Fatal(err)
	}
	d := req.Destinations[0]
	nodes, edges, ok := sp.PathTo(d)
	if !ok {
		t.Fatal("destination unreachable in connected network")
	}
	tree := multicast.NewPseudoTree(req.Source, req.Destinations, []graph.NodeID{d})
	if err := w.addHostPath(tree, nodes, edges, false); err != nil {
		t.Fatal(err)
	}
	// Every stored hop must reference a genuine host edge joining its
	// endpoints.
	for _, h := range tree.Hops() {
		he := nw.Graph().Edge(h.Edge)
		if !((he.U == h.From && he.V == h.To) || (he.V == h.From && he.U == h.To)) {
			t.Fatalf("hop %+v does not match host edge {%d,%d}", h, he.U, he.V)
		}
	}
}

func TestClosureSteinerMatchesGenericKMBOnSingleton(t *testing.T) {
	// For a singleton subset, the closure evaluator's auxiliary tree
	// must weigh the same as generic KMB on the explicit auxiliary
	// graph without the zero-cost rule.
	nw := testNetwork(t, 25, 8)
	req := testRequest(t, nw, 9)
	w := buildWorkGraph(nw, req, false, func(e graph.EdgeID) float64 {
		return nw.LinkUnitCost(e) * req.BandwidthMbps
	})
	spSrc, err := graph.Dijkstra(w.g, req.Source)
	if err != nil {
		t.Fatal(err)
	}
	demand := req.ComputeDemandMHz()
	for _, v := range w.servers {
		if !spSrc.Reachable(v) {
			continue
		}
		spV, derr := graph.Dijkstra(w.g, v)
		if derr != nil {
			t.Fatal(derr)
		}
		omega := map[graph.NodeID]float64{
			v: spSrc.Dist[v] + nw.ServerUnitCost(v)*demand,
		}
		ev, eerr := newClosureEvaluator(w, req,
			map[graph.NodeID]*graph.ShortestPaths{v: spV}, nil, nil)
		if eerr != nil {
			t.Fatal(eerr)
		}
		_, _, gotCost, serr := ev.steiner([]graph.NodeID{v}, omega, new(evalScratch))
		if serr != nil {
			t.Fatal(serr)
		}
		// Reference: explicit aux graph without the zero-cost rule.
		aux := w.g.Clone()
		virtual := aux.AddNode()
		aux.MustAddEdge(virtual, v, omega[v])
		terminals := append([]graph.NodeID{virtual}, req.Destinations...)
		ref, kerr := graph.SteinerKMB(aux, terminals)
		if kerr != nil {
			t.Fatal(kerr)
		}
		if math.Abs(gotCost-ref.Weight) > 1e-6 {
			t.Fatalf("server %d: closure cost %v != explicit KMB %v", v, gotCost, ref.Weight)
		}
	}
}

func TestDecomposeRejectsForeignDestination(t *testing.T) {
	// decompose must detect a destination outside every server
	// component (internal-consistency guard).
	nw := testNetwork(t, 20, 10)
	req := &multicast.Request{
		ID:            1,
		Source:        0,
		Destinations:  []graph.NodeID{1, 2},
		BandwidthMbps: 50,
		Chain:         nfv.MustChain(nfv.NAT),
	}
	w := buildWorkGraph(nw, req, false, func(graph.EdgeID) float64 { return 1 })
	spSrc, err := graph.Dijkstra(w.g, req.Source)
	if err != nil {
		t.Fatal(err)
	}
	v := nw.Servers()[0]
	if !spSrc.Reachable(v) {
		t.Skip("server unreachable in this fixture")
	}
	// Empty component: no real edges at all, so destinations cannot be
	// covered (unless they coincide with the server).
	if req.Destinations[0] == v || req.Destinations[1] == v {
		t.Skip("destination coincides with server in this fixture")
	}
	if _, err := decompose(w, req, spSrc, []graph.NodeID{v}, nil, new(evalScratch)); err == nil {
		t.Fatal("foreign destination accepted")
	}
}

func TestValidateInputErrors(t *testing.T) {
	nw := testNetwork(t, 20, 11)
	bad := &multicast.Request{ID: 1, Source: 99, Destinations: []graph.NodeID{1},
		BandwidthMbps: 10, Chain: nfv.MustChain(nfv.NAT)}
	if err := validateInput(nw, bad); err == nil {
		t.Fatal("bad source accepted")
	}
	good := testRequest(t, nw, 12)
	if err := validateInput(nw, good); err != nil {
		t.Fatal(err)
	}
}

func TestSolutionSelectionCostExposed(t *testing.T) {
	nw := testNetwork(t, 30, 13)
	req := testRequest(t, nw, 14)
	sol, err := ApproMulti(nw, req, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.SelectionCost <= 0 {
		t.Fatalf("selection cost %v", sol.SelectionCost)
	}
	// The implementation cost never exceeds the auxiliary objective of
	// the chosen candidate (shared source-path prefixes only help).
	if sol.OperationalCost > sol.SelectionCost+1e-6 {
		t.Fatalf("operational %v exceeds auxiliary %v",
			sol.OperationalCost, sol.SelectionCost)
	}
}
