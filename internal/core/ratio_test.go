package core

// Empirical verification of the paper's approximation guarantees on
// small instances, using the exact Dreyfus–Wagner Steiner solver as
// the optimum oracle.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/nfv"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/topology"
)

// smallInstance builds a network small enough for exact optima: n
// switches, exactly 3 servers, and a request with at most 4
// destinations.
func smallInstance(seed int64) (*sdn.Network, *multicast.Request, error) {
	rng := rand.New(rand.NewSource(seed))
	n := 12 + rng.Intn(10)
	topo, err := topology.WaxmanDegree(n, 3, 0.2, seed)
	if err != nil {
		return nil, nil, err
	}
	topo.Servers = 3
	nw, err := sdn.NewNetwork(topo, sdn.DefaultConfig(), rng)
	if err != nil {
		return nil, nil, err
	}
	perm := rng.Perm(n)
	nd := 1 + rng.Intn(4)
	dests := make([]graph.NodeID, nd)
	copy(dests, perm[1:1+nd])
	chain, err := nfv.RandomChain(rng, 1, 3)
	if err != nil {
		return nil, nil, err
	}
	req := &multicast.Request{
		ID:            1,
		Source:        perm[0],
		Destinations:  dests,
		BandwidthMbps: 50 + rng.Float64()*150,
		Chain:         chain,
	}
	return nw, req, nil
}

// exactAuxOptimum computes, by exhaustive subset enumeration plus the
// exact Steiner solver on the explicit auxiliary graph, the minimum
// auxiliary tree cost min_i c(T_k^{OPT,i}) over all server subsets of
// size <= k.
func exactAuxOptimum(nw *sdn.Network, req *multicast.Request, k int) (float64, bool) {
	w := buildWorkGraph(nw, req, false, func(e graph.EdgeID) float64 {
		return nw.LinkUnitCost(e) * req.BandwidthMbps
	})
	spSrc, err := graph.Dijkstra(w.g, req.Source)
	if err != nil {
		return 0, false
	}
	demand := req.ComputeDemandMHz()
	omega := make(map[graph.NodeID]float64)
	var servers []graph.NodeID
	for _, v := range w.servers {
		if spSrc.Reachable(v) {
			omega[v] = spSrc.Dist[v] + nw.ServerUnitCost(v)*demand
			servers = append(servers, v)
		}
	}
	if len(servers) == 0 {
		return 0, false
	}
	best := graph.Infinity
	found := false
	forEachSubset(servers, k, func(subset []graph.NodeID) bool {
		// Build the auxiliary graph WITHOUT the zero-cost source-edge
		// rule: the oracle must price edges exactly as the closure
		// evaluator under test does (the rule is a paper-literal
		// optimisation the default evaluator documents as omitted;
		// with it the optimum can drop below the evaluator's own
		// formulation and the 2x check would compare apples to
		// oranges).
		aux := w.g.Clone()
		virtualNode := aux.AddNode()
		for _, v := range subset {
			aux.MustAddEdge(virtualNode, v, omega[v])
		}
		terminals := append([]graph.NodeID{virtualNode}, req.Destinations...)
		opt, err := graph.SteinerExactWeight(aux, terminals)
		if err == nil && opt < best {
			best, found = opt, true
		}
		return true
	})
	return best, found
}

// TestPropertyApproMultiWithinBound verifies the chain of guarantees
// behind Theorem 1 on random small instances: the implementation cost
// of the returned pseudo-multicast tree is at most twice the exact
// optimal auxiliary tree cost over all subsets (which in turn is at
// most K times the optimal pseudo-multicast tree cost, giving the
// paper's 2K ratio).
func TestPropertyApproMultiWithinBound(t *testing.T) {
	const k = 2
	f := func(seed int64) bool {
		nw, req, err := smallInstance(seed)
		if err != nil {
			return false
		}
		opt, ok := exactAuxOptimum(nw, req, k)
		if !ok {
			return false
		}
		sol, err := ApproMulti(nw, req, Options{K: k})
		if err != nil {
			return false
		}
		// Operational cost <= selected candidate's auxiliary cost
		// <= 2 * exact auxiliary optimum.
		return sol.OperationalCost <= 2*opt+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestApproMultiMatchesExactOnEasyInstance pins the behaviour on a
// hand-built instance where the optimum is obvious: a path
// source - server - destination must cost the two links plus the VM.
func TestApproMultiMatchesExactOnEasyInstance(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	topo := &topology.Topology{Name: "path3", Graph: g, Servers: 1}
	rng := rand.New(rand.NewSource(4))
	nw, err := sdn.NewNetworkWithServers(topo, sdn.DefaultConfig(), []graph.NodeID{1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	req := &multicast.Request{
		ID:            1,
		Source:        0,
		Destinations:  []graph.NodeID{2},
		BandwidthMbps: 100,
		Chain:         nfv.MustChain(nfv.Firewall),
	}
	sol, err := ApproMulti(nw, req, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := req.BandwidthMbps*(nw.LinkUnitCost(0)+nw.LinkUnitCost(1)) +
		req.ComputeDemandMHz()*nw.ServerUnitCost(1)
	if math.Abs(sol.OperationalCost-want) > 1e-9 {
		t.Fatalf("cost = %v, want exact optimum %v", sol.OperationalCost, want)
	}
}

// TestPropertyOnlineCPWithinFourTimesOptimal verifies inequality (3)
// of the paper's §V.B: the realised pseudo-multicast tree's
// normalised weight (plus the server weight) is within 4x of the
// optimal Steiner tree through the chosen server under the same link
// weights, even on a partially loaded network.
func TestPropertyOnlineCPWithinFourTimesOptimal(t *testing.T) {
	f := func(seed int64) bool {
		nw, req, err := smallInstance(seed)
		if err != nil {
			return false
		}
		// Pre-load the network with a few admissions so weights are
		// non-trivial.
		model := DefaultCostModel(nw.NumNodes())
		cp, err := NewOnlineCP(nw, model)
		if err != nil {
			return false
		}
		gen, err := multicast.NewGenerator(nw.NumNodes(),
			multicast.OnlineGeneratorConfig(), seed+3)
		if err != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			r, gerr := gen.Next()
			if gerr != nil {
				return false
			}
			_, _ = cp.Admit(r)
		}
		sol, err := cp.Planner().Plan(nw, req)
		if err != nil {
			return true // rejection is allowed; nothing to verify
		}
		v := sol.Servers[0]
		// Rebuild the marginal-weight graph plan() used.
		w := buildWorkGraph(nw, req, true, func(e graph.EdgeID) float64 {
			utilAfter := 1 - (nw.ResidualBandwidth(e)-req.BandwidthMbps)/nw.BandwidthCap(e)
			return math.Pow(model.Beta, utilAfter) - 1
		})
		terminals := append([]graph.NodeID{req.Source, v}, req.Destinations...)
		opt, oerr := graph.SteinerExactWeight(w.g, terminals)
		if oerr != nil {
			return true // residual graph may disconnect the oracle
		}
		// Weight of the realised tree under the same metric, counting
		// each directed traversal (back-tracked links count twice).
		hostWeight := make(map[graph.EdgeID]float64, w.g.NumEdges())
		for le := 0; le < w.g.NumEdges(); le++ {
			hostWeight[w.hostEdge(le)] = w.g.Weight(le)
		}
		var treeWeight float64
		for e, uses := range sol.Tree.LinkLoads() {
			treeWeight += float64(uses) * hostWeight[e]
		}
		wv := model.ServerWeight(nw, v)
		return treeWeight+wv <= 4*(opt+wv)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
