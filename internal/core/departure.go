package core

import (
	"fmt"
	"sort"

	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// Departure support: multicast sessions end (conferences finish,
// streams stop) and their resources return to the pool. The paper
// models a fixed monitoring period without departures; this extension
// makes the online admitters usable as long-running systems. The
// shared Admitter (the commit layer every online algorithm and the
// engine run through) tracks live allocations by request ID in a
// liveTable, and its Depart releases them atomically — so departures
// and re-optimisation behave uniformly across planners instead of each
// admitter carrying its own bookkeeping.

// ErrUnknownRequest is returned when departing a request that is not
// currently admitted.
var ErrUnknownRequest = fmt.Errorf("core: request not admitted")

// liveTable tracks admitted requests' allocations for departure. It is
// owned by the Admitter; nothing else mutates it.
type liveTable struct {
	nw    *sdn.Network
	byID  map[int]sdn.Allocation
	solBy map[int]*Solution
}

func newLiveTable(nw *sdn.Network) *liveTable {
	return &liveTable{
		nw:    nw,
		byID:  make(map[int]sdn.Allocation),
		solBy: make(map[int]*Solution),
	}
}

func (l *liveTable) record(req *multicast.Request, sol *Solution, alloc sdn.Allocation) {
	l.byID[req.ID] = alloc
	l.solBy[req.ID] = sol
}

func (l *liveTable) depart(reqID int) (*Solution, error) {
	alloc, ok := l.byID[reqID]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownRequest, reqID)
	}
	if err := l.nw.Release(alloc); err != nil {
		return nil, err
	}
	sol := l.solBy[reqID]
	delete(l.byID, reqID)
	delete(l.solBy, reqID)
	return sol, nil
}

func (l *liveTable) live() int { return len(l.byID) }

// solutions returns the live sessions' realisations in ascending
// request-ID order — the deterministic view consistency oracles (the
// scenario harness, the engine fuzz targets) compare against residual
// capacities.
func (l *liveTable) solutions() []*Solution {
	ids := make([]int, 0, len(l.solBy))
	for id := range l.solBy {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*Solution, len(ids))
	for i, id := range ids {
		out[i] = l.solBy[id]
	}
	return out
}

// replace swaps the recorded solution and allocation of an admitted
// request after an external re-placement (Reoptimize) has already
// adjusted the network's residuals, so a later departure releases the
// correct bundle.
func (l *liveTable) replace(reqID int, sol *Solution) error {
	if _, ok := l.byID[reqID]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownRequest, reqID)
	}
	if sol == nil || sol.Request == nil || sol.Tree == nil {
		return fmt.Errorf("core: replace %d with incomplete solution", reqID)
	}
	l.byID[reqID] = AllocationFor(sol.Request, sol.Tree)
	l.solBy[reqID] = sol
	return nil
}
