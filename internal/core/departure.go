package core

import (
	"fmt"

	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// Departure support: multicast sessions end (conferences finish,
// streams stop) and their resources return to the pool. The paper
// models a fixed monitoring period without departures; this extension
// makes the online admitters usable as long-running systems. Each
// admitter tracks its live allocations by request ID and Depart
// releases them atomically.

// ErrUnknownRequest is returned when departing a request that is not
// currently admitted.
var ErrUnknownRequest = fmt.Errorf("core: request not admitted")

// liveTable tracks admitted requests' allocations for departure.
type liveTable struct {
	nw    *sdn.Network
	byID  map[int]sdn.Allocation
	solBy map[int]*Solution
}

func newLiveTable(nw *sdn.Network) *liveTable {
	return &liveTable{
		nw:    nw,
		byID:  make(map[int]sdn.Allocation),
		solBy: make(map[int]*Solution),
	}
}

func (l *liveTable) record(req *multicast.Request, sol *Solution, alloc sdn.Allocation) {
	l.byID[req.ID] = alloc
	l.solBy[req.ID] = sol
}

func (l *liveTable) depart(reqID int) (*Solution, error) {
	alloc, ok := l.byID[reqID]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownRequest, reqID)
	}
	if err := l.nw.Release(alloc); err != nil {
		return nil, err
	}
	sol := l.solBy[reqID]
	delete(l.byID, reqID)
	delete(l.solBy, reqID)
	return sol, nil
}

func (l *liveTable) live() int { return len(l.byID) }

// replace swaps the recorded solution and allocation of an admitted
// request after an external re-placement (Reoptimize) has already
// adjusted the network's residuals, so a later departure releases the
// correct bundle.
func (l *liveTable) replace(reqID int, sol *Solution) error {
	if _, ok := l.byID[reqID]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownRequest, reqID)
	}
	if sol == nil || sol.Request == nil || sol.Tree == nil {
		return fmt.Errorf("core: replace %d with incomplete solution", reqID)
	}
	l.byID[reqID] = AllocationFor(sol.Request, sol.Tree)
	l.solBy[reqID] = sol
	return nil
}

// Depart releases the resources of an admitted request (the session
// ended). It returns the solution that had realised the request so
// callers can also uninstall its flow rules.
func (o *OnlineCP) Depart(reqID int) (*Solution, error) {
	if o.lives == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownRequest, reqID)
	}
	return o.lives.depart(reqID)
}

// Replace records that an admitted request is now realised by sol
// (its ID must match a live session) — used after Reoptimize, which
// re-places sessions directly on the network. A later Depart then
// releases the new allocation.
func (o *OnlineCP) Replace(reqID int, sol *Solution) error {
	if o.lives == nil {
		return fmt.Errorf("%w: %d", ErrUnknownRequest, reqID)
	}
	return o.lives.replace(reqID, sol)
}

// LiveCount reports how many admitted requests currently hold
// resources.
func (o *OnlineCP) LiveCount() int {
	if o.lives == nil {
		return 0
	}
	return o.lives.live()
}

// Depart releases the resources of an admitted request.
func (o *OnlineSP) Depart(reqID int) (*Solution, error) {
	if o.lives == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownRequest, reqID)
	}
	return o.lives.depart(reqID)
}

// Replace records a re-placed solution for a live session (see
// OnlineCP.Replace).
func (o *OnlineSP) Replace(reqID int, sol *Solution) error {
	if o.lives == nil {
		return fmt.Errorf("%w: %d", ErrUnknownRequest, reqID)
	}
	return o.lives.replace(reqID, sol)
}

// LiveCount reports how many admitted requests currently hold
// resources.
func (o *OnlineSP) LiveCount() int {
	if o.lives == nil {
		return 0
	}
	return o.lives.live()
}

// Depart releases the resources of an admitted request.
func (o *OnlineSPStatic) Depart(reqID int) (*Solution, error) {
	if o.lives == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownRequest, reqID)
	}
	return o.lives.depart(reqID)
}

// Replace records a re-placed solution for a live session (see
// OnlineCP.Replace).
func (o *OnlineSPStatic) Replace(reqID int, sol *Solution) error {
	if o.lives == nil {
		return fmt.Errorf("%w: %d", ErrUnknownRequest, reqID)
	}
	return o.lives.replace(reqID, sol)
}

// LiveCount reports how many admitted requests currently hold
// resources.
func (o *OnlineSPStatic) LiveCount() int {
	if o.lives == nil {
		return 0
	}
	return o.lives.live()
}
