package core

import (
	"testing"

	"nfvmcast/internal/multicast"
)

// admitWithSP loads a network through the SP heuristic (deliberately
// suboptimal placements) and returns the admitted sessions.
func admitWithSP(t *testing.T, nwSeed, wlSeed int64, count int) (
	sessions []*Solution, nw interface {
		NumEdges() int
		ResidualBandwidth(int) float64
		BandwidthCap(int) float64
	},
) {
	t.Helper()
	network := testNetwork(t, 60, nwSeed)
	sp := NewOnlineSP(network)
	gen, err := multicast.NewGenerator(network.NumNodes(), multicast.OnlineGeneratorConfig(), wlSeed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < count; i++ {
		req, gerr := gen.Next()
		if gerr != nil {
			t.Fatal(gerr)
		}
		if sol, aerr := sp.Admit(req); aerr == nil {
			sessions = append(sessions, sol)
		}
	}
	if len(sessions) < 10 {
		t.Fatalf("fixture admitted only %d sessions", len(sessions))
	}
	reopt, improved, saved, err := Reoptimize(network, sessions, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	// SP trees (hop-count shortest paths, no Steiner optimisation)
	// leave room; the pass must find at least one improvement.
	if improved == 0 || saved <= 0 {
		t.Fatalf("reoptimize improved %d sessions, saved %v", improved, saved)
	}
	var before, after float64
	for i := range sessions {
		before += sessions[i].OperationalCost
		after += reopt[i].OperationalCost
		if reopt[i].OperationalCost > sessions[i].OperationalCost+1e-9 {
			t.Fatalf("session %d got worse: %v -> %v",
				sessions[i].Request.ID, sessions[i].OperationalCost, reopt[i].OperationalCost)
		}
		if derr := reopt[i].Tree.CheckDelivery(network.Graph()); derr != nil {
			t.Fatalf("session %d invalid after reoptimize: %v", sessions[i].Request.ID, derr)
		}
	}
	if after > before {
		t.Fatalf("total cost rose: %v -> %v", before, after)
	}
	t.Logf("reoptimize: %d/%d improved, %.1f saved (%.1f%%)",
		improved, len(sessions), saved, 100*saved/before)

	// Capacity invariants after the pass.
	for e := 0; e < network.NumEdges(); e++ {
		if r := network.ResidualBandwidth(e); r < -1e-6 || r > network.BandwidthCap(e)+1e-6 {
			t.Fatalf("link %d residual %v out of bounds after reoptimize", e, r)
		}
	}
	return sessions, network
}

func TestReoptimizeImprovesSPPlacements(t *testing.T) {
	admitWithSP(t, 8, 9, 80)
}

func TestReoptimizeIdempotentOnOptimal(t *testing.T) {
	nw := testNetwork(t, 40, 21)
	var sessions []*Solution
	gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.OnlineGeneratorConfig(), 22)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		req, gerr := gen.Next()
		if gerr != nil {
			t.Fatal(gerr)
		}
		sol, aerr := ApproMulti(nw, req, Options{K: 2, Capacitated: true})
		if aerr != nil {
			continue
		}
		if err := nw.Allocate(AllocationFor(req, sol.Tree)); err != nil {
			continue
		}
		sessions = append(sessions, sol)
	}
	// Sessions planned by ApproMulti on an emptier network may still
	// improve slightly after others depart, but a second pass over
	// the SAME state must be a no-op.
	first, _, _, err := Reoptimize(nw, sessions, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	second, improved, saved, err := Reoptimize(nw, first, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if improved != 0 || saved != 0 {
		t.Fatalf("second pass improved %d (saved %v); want converged", improved, saved)
	}
	for i := range first {
		if second[i] != first[i] {
			t.Fatalf("second pass replaced session %d", i)
		}
	}
}

func TestReoptimizeRejectsBrokenInput(t *testing.T) {
	nw := testNetwork(t, 30, 2)
	if _, _, _, err := Reoptimize(nw, []*Solution{nil}, Options{K: 1}); err == nil {
		t.Fatal("nil session accepted")
	}
	if _, _, _, err := Reoptimize(nw, []*Solution{{}}, Options{K: 1}); err == nil {
		t.Fatal("empty session accepted")
	}
}
