package core

import (
	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// workGraph is a (possibly filtered) re-weighted view of the network
// graph an algorithm runs on. Its edge IDs are local; toHost maps them
// back to network edge IDs for pricing and allocation.
//
// Thread safety: a workGraph is immutable after buildWorkGraph
// returns (explicit-auxiliary evaluation clones g before mutating),
// so it may be read from any number of goroutines concurrently.
type workGraph struct {
	g        *graph.Graph
	toHost   []graph.EdgeID
	fromHost []int32        // host edge → local edge, -1 when filtered out
	servers  []graph.NodeID // eligible servers in this view
}

// hostEdge maps a local edge ID back to the network's edge ID.
func (w *workGraph) hostEdge(local graph.EdgeID) graph.EdgeID { return w.toHost[local] }

// buildWorkGraph constructs the algorithm's working view of nw for
// req. When capacitated is true it keeps only links with residual
// bandwidth >= b_k and servers with residual computing >= C_v(SC_k)
// (the Appro_Multi_Cap / online residual-network construction);
// otherwise it keeps everything. weight prices a network edge for the
// algorithm's objective.
func buildWorkGraph(
	nw *sdn.Network,
	req *multicast.Request,
	capacitated bool,
	weight func(host graph.EdgeID) float64,
) *workGraph {
	hg := nw.Graph()
	n := hg.NumNodes()
	g := graph.New(n)
	var toHost []graph.EdgeID
	fromHost := make([]int32, hg.NumEdges())
	for e := 0; e < hg.NumEdges(); e++ {
		fromHost[e] = -1
		if !nw.LinkUp(e) {
			continue // failed links are physically unusable
		}
		if capacitated && nw.ResidualBandwidth(e) < req.BandwidthMbps {
			continue
		}
		he := hg.Edge(e)
		fromHost[e] = int32(g.MustAddEdge(he.U, he.V, weight(e)))
		toHost = append(toHost, e)
	}
	demand := req.ComputeDemandMHz()
	var servers []graph.NodeID
	for _, v := range nw.Servers() {
		if !nw.ServerUp(v) {
			continue // failed servers cannot host new VMs
		}
		if capacitated && nw.ResidualCompute(v) < demand {
			continue
		}
		servers = append(servers, v)
	}
	return &workGraph{g: g, toHost: toHost, fromHost: fromHost, servers: servers}
}

// hostPath converts a local (nodes, edges) path to host edge IDs.
func (w *workGraph) hostPath(edges []graph.EdgeID) []graph.EdgeID {
	out := make([]graph.EdgeID, len(edges))
	for i, e := range edges {
		out[i] = w.toHost[e]
	}
	return out
}

// addHostPath appends a directed walk (local IDs) to a pseudo tree,
// translating edges to host IDs.
func (w *workGraph) addHostPath(
	t *multicast.PseudoTree, nodes []graph.NodeID, edges []graph.EdgeID, processed bool,
) error {
	return t.AddPath(nodes, w.hostPath(edges), processed)
}
