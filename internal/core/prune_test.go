package core

// Byte-identity oracles for the planning fast paths: subset
// branch-and-bound pruning in Appro_Multi and the admitter's
// fast-reject must be invisible in outputs — identical trees, costs
// and error messages to the unpruned/full paths.

import (
	"math"
	"math/rand"
	"testing"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/topology"
)

// sameSolution asserts two solutions are byte-identical in everything
// the engine journals: tree hops, servers, and both costs (compared as
// float bits).
func sameSolution(t *testing.T, got, want *Solution, label string) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: nil mismatch: got %v, want %v", label, got, want)
	}
	if got == nil {
		return
	}
	if math.Float64bits(got.OperationalCost) != math.Float64bits(want.OperationalCost) {
		t.Fatalf("%s: operational cost %v != %v", label, got.OperationalCost, want.OperationalCost)
	}
	if math.Float64bits(got.SelectionCost) != math.Float64bits(want.SelectionCost) {
		t.Fatalf("%s: selection cost %v != %v", label, got.SelectionCost, want.SelectionCost)
	}
	if len(got.Servers) != len(want.Servers) {
		t.Fatalf("%s: servers %v != %v", label, got.Servers, want.Servers)
	}
	for i := range got.Servers {
		if got.Servers[i] != want.Servers[i] {
			t.Fatalf("%s: servers %v != %v", label, got.Servers, want.Servers)
		}
	}
	gh, wh := got.Tree.Hops(), want.Tree.Hops()
	if len(gh) != len(wh) {
		t.Fatalf("%s: hop count %d != %d", label, len(gh), len(wh))
	}
	for i := range gh {
		if gh[i] != wh[i] {
			t.Fatalf("%s: hop %d: %+v != %+v", label, i, gh[i], wh[i])
		}
	}
}

// TestApproMultiPruningByteIdentical runs the subset sweep with and
// without branch-and-bound pruning over a spread of topologies, K
// values and worker counts, demanding identical solutions (or
// identical errors).
func TestApproMultiPruningByteIdentical(t *testing.T) {
	if disableSubsetPruning {
		t.Fatal("pruning globally disabled")
	}
	nets := []*sdn.Network{testNetwork(t, 40, 3), geantNetwork(t, 5)}
	for ni, nw := range nets {
		for seed := int64(0); seed < 8; seed++ {
			req := testRequest(t, nw, 300+seed)
			for _, k := range []int{1, 2, 3} {
				for _, workers := range []int{1, 4} {
					opts := Options{K: k, Capacitated: true, Workers: workers}
					pruned, perr := ApproMulti(nw, req, opts)
					disableSubsetPruning = true
					plain, serr := ApproMulti(nw, req, opts)
					disableSubsetPruning = false
					if (perr == nil) != (serr == nil) {
						t.Fatalf("net %d seed %d K=%d w=%d: err mismatch: %v vs %v",
							ni, seed, k, workers, perr, serr)
					}
					if perr != nil {
						if perr.Error() != serr.Error() {
							t.Fatalf("net %d seed %d: error text %q != %q", ni, seed, perr, serr)
						}
						continue
					}
					sameSolution(t, pruned, plain, "pruned vs plain")
				}
			}
		}
	}
}

// TestApproMultiPruningDelayBound checks the pruning does not disturb
// the delay-violation classification: with a hop bound tight enough to
// reject everything, pruned and unpruned sweeps must both report
// ErrDelayBound with identical text.
func TestApproMultiPruningDelayBound(t *testing.T) {
	nw := testNetwork(t, 40, 5)
	req := testRequest(t, nw, 11)
	opts := Options{K: 2, MaxDeliveryHops: 1}
	_, perr := ApproMulti(nw, req, opts)
	disableSubsetPruning = true
	_, serr := ApproMulti(nw, req, opts)
	disableSubsetPruning = false
	if (perr == nil) != (serr == nil) {
		t.Fatalf("err mismatch: %v vs %v", perr, serr)
	}
	if perr != nil && perr.Error() != serr.Error() {
		t.Fatalf("error text %q != %q", perr, serr)
	}
}

func geantNetwork(t testing.TB, seed int64) *sdn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nw, err := sdn.NewNetwork(topology.GEANT(), sdn.DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestFastRejectMatchesFullPlan drives both online planners to every
// cheap-rejection state and asserts FastReject's error text equals the
// full plan's, and that FastReject stays silent whenever the full plan
// admits.
func TestFastRejectMatchesFullPlan(t *testing.T) {
	for _, mode := range []string{"cp", "cpk"} {
		nw := testNetwork(t, 40, 21)
		model := DefaultCostModel(nw.NumNodes())

		plan := func(req *multicast.Request) (*Solution, error) {
			if mode == "cp" {
				p, err := NewCPPlanner(model)
				if err != nil {
					t.Fatal(err)
				}
				return p.Plan(nw, req)
			}
			p, err := NewCPKPlanner(model, 2)
			if err != nil {
				t.Fatal(err)
			}
			return p.Plan(nw, req)
		}
		fast := func(req *multicast.Request) error {
			if mode == "cp" {
				p, err := NewCPPlanner(model)
				if err != nil {
					t.Fatal(err)
				}
				return p.FastReject(nw, req)
			}
			p, err := NewCPKPlanner(model, 2)
			if err != nil {
				t.Fatal(err)
			}
			return p.FastReject(nw, req)
		}

		// Admissible request: FastReject must stay silent.
		req := testRequest(t, nw, 23)
		if _, err := plan(req); err != nil {
			t.Fatalf("%s: fixture request rejected: %v", mode, err)
		}
		if err := fast(req); err != nil {
			t.Fatalf("%s: FastReject fired on admissible request: %v", mode, err)
		}

		// Compute exhaustion: drain every server.
		for _, v := range nw.Servers() {
			if free := nw.ResidualCompute(v); free > 0 {
				if err := nw.Allocate(sdn.Allocation{
					Servers: map[graph.NodeID]float64{v: free},
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		_, perr := plan(req)
		ferr := fast(req)
		if perr == nil || ferr == nil {
			t.Fatalf("%s: exhausted network admitted: plan=%v fast=%v", mode, perr, ferr)
		}
		if perr.Error() != ferr.Error() {
			t.Fatalf("%s: exhaustion text: plan %q, fast %q", mode, perr, ferr)
		}

		// Threshold: enough free compute to host, but every server
		// priced over a near-zero σ_v (half load makes each server's
		// exponential weight strictly positive).
		for _, v := range nw.Servers() {
			if err := nw.Release(sdn.Allocation{
				Servers: map[graph.NodeID]float64{v: nw.ComputeCap(v) / 2},
			}); err != nil {
				t.Fatal(err)
			}
		}
		tight := model
		tight.SigmaV = 1e-12
		var tp interface {
			Plan(*sdn.Network, *multicast.Request) (*Solution, error)
			FastReject(*sdn.Network, *multicast.Request) error
		}
		var err error
		if mode == "cp" {
			tp, err = NewCPPlanner(tight)
		} else {
			tp, err = NewCPKPlanner(tight, 2)
		}
		if err != nil {
			t.Fatal(err)
		}
		_, perr = tp.Plan(nw, req)
		ferr = tp.FastReject(nw, req)
		if perr == nil || ferr == nil {
			t.Fatalf("%s: zero threshold admitted: plan=%v fast=%v", mode, perr, ferr)
		}
		if perr.Error() != ferr.Error() {
			t.Fatalf("%s: threshold text: plan %q, fast %q", mode, perr, ferr)
		}
	}
}
