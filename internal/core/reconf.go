package core

import (
	"sort"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// Online tree reconfiguration. Online_CP prices a tree once, at
// admission; as later arrivals load the network, an admitted session's
// links and servers drift up the exponential cost curve while cheaper
// placements may have opened elsewhere (departures, recoveries).
// ReconfPlanner is Online_CP plus a bounded migration pass: each engine
// Update re-prices every live session under the current exponential
// weights, ranks sessions by drift (current price minus admission-time
// selection cost), and migrates the worst-drifted trees — but only when
// the projected saving clears a hysteresis factor β, so near-ties never
// thrash. Migrations reuse the repair machinery (release → re-plan →
// rebind) and journal as replacements, so durability and crash recovery
// need no new record type.

// Reconfiguration defaults: β close enough to 1 that genuine drift
// migrates, far enough that re-plan noise does not; a small per-pass
// budget keeps Update latency bounded.
const (
	DefaultReconfHysteresis = 1.2
	DefaultReconfMigrations = 4
)

// ReconfOutcome records one migrated session of a reconfiguration pass.
type ReconfOutcome struct {
	// ReqID is the migrated session.
	ReqID int
	// Solution is the new realisation now live on the network.
	Solution *Solution
	// OldPrice is the released tree's exponential price at pass time;
	// NewCost is the replacement's selection cost. OldPrice >= β·NewCost
	// by the hysteresis rule.
	OldPrice, NewCost float64
}

// Reconfigurer is implemented by planners that support a post-admission
// migration pass. The engine invokes Reconfigure on its writer
// goroutine after every successful Update mutation, with exclusive
// ownership of the admitter; implementations must keep the pass
// deterministic (stable session order, no map-order dependence) so
// worker counts cannot change outcomes.
type Reconfigurer interface {
	Planner
	Reconfigure(a *Admitter, arena *PlanArena) []ReconfOutcome
}

// ReconfPlanner wraps CPPlanner with the drift-triggered migration
// pass. Planning (and fast rejection) is exactly Online_CP's — only the
// reconfiguration behaviour and the policy name differ.
type ReconfPlanner struct {
	*CPPlanner
	beta  float64
	limit int
}

// NewReconfPlanner returns a reconfiguring Online_CP planner. beta is
// the migration hysteresis (a session migrates only when its current
// exponential price is at least beta times the re-planned tree's
// selection cost; values <= 1 migrate on any strict improvement), and
// limit bounds migrations per pass.
func NewReconfPlanner(model CostModel, beta float64, limit int) (*ReconfPlanner, error) {
	inner, err := NewCPPlanner(model)
	if err != nil {
		return nil, err
	}
	if beta <= 0 {
		beta = DefaultReconfHysteresis
	}
	if limit < 1 {
		limit = DefaultReconfMigrations
	}
	return &ReconfPlanner{CPPlanner: inner, beta: beta, limit: limit}, nil
}

// Name identifies the algorithm.
func (p *ReconfPlanner) Name() string { return "Reconf_CP" }

// priceTree prices an existing realisation under the current
// exponential weights: every distinct directed link traversal at the
// link's absolute cost, every serving node at the server's. Summed in
// sorted edge order — float addition is order-dependent and the drift
// ranking must be deterministic.
func (p *ReconfPlanner) priceTree(nw *sdn.Network, tree *multicast.PseudoTree) float64 {
	loads := tree.LinkLoads()
	edges := make([]graph.EdgeID, 0, len(loads))
	for e := range loads {
		edges = append(edges, e)
	}
	sort.Ints(edges)
	var price float64
	for _, e := range edges {
		price += float64(loads[e]) * p.model.LinkWeight(nw, e) * nw.BandwidthCap(e)
	}
	for _, v := range tree.Servers {
		price += p.model.ServerCost(nw, v)
	}
	return price
}

// Reconfigure runs one migration pass over the admitter's live
// sessions (engine writer goroutine only). Sessions are ranked by
// drift — current exponential price minus admission-time selection
// cost — worst first (ties broken by ascending request ID), and at most
// the planner's migration budget are attempted. Each attempt releases
// the session, re-plans it with the wrapped Online_CP on the freed
// residual view, and keeps the replacement only when the hysteresis
// rule oldPrice >= β·newCost holds; otherwise the original tree is
// re-bound unchanged. A failed re-plan always restores the original.
func (p *ReconfPlanner) Reconfigure(a *Admitter, arena *PlanArena) []ReconfOutcome {
	if arena == nil {
		arena = NewPlanArena()
	}
	nw := a.Network()
	type cand struct {
		id    int
		drift float64
	}
	var cands []cand
	for _, sol := range a.Lives() { // ascending request ID
		drift := p.priceTree(nw, sol.Tree) - sol.SelectionCost
		if drift > 0 {
			cands = append(cands, cand{id: sol.Request.ID, drift: drift})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].drift != cands[j].drift {
			return cands[i].drift > cands[j].drift
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > p.limit {
		cands = cands[:p.limit]
	}

	var outcomes []ReconfOutcome
	for _, c := range cands {
		sol, ok := a.LiveSolution(c.id)
		if !ok {
			continue
		}
		if err := a.ReleaseLive(c.id); err != nil {
			continue
		}
		// Price the released tree on the same residual view the re-plan
		// sees, so the hysteresis comparison is apples-to-apples.
		oldPrice := p.priceTree(nw, sol.Tree)
		fresh, err := p.CPPlanner.PlanWith(nw, sol.Request, arena)
		if err != nil || oldPrice < p.beta*fresh.SelectionCost {
			// Not worth migrating (or no longer plannable): restore the
			// original allocation, which must fit — it was just freed.
			_ = a.Rebind(c.id, sol)
			continue
		}
		if err := a.Rebind(c.id, fresh); err != nil {
			_ = a.Rebind(c.id, sol)
			continue
		}
		outcomes = append(outcomes, ReconfOutcome{
			ReqID:    c.id,
			Solution: fresh,
			OldPrice: oldPrice,
			NewCost:  fresh.SelectionCost,
		})
	}
	return outcomes
}
