package core

import (
	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
)

// The explicit variant materialises the paper's auxiliary graph G_k^i
// per server subset: the work graph plus a virtual source s'_k wired
// to every subset server with weight ω(v) = dist(s_k,v) + server cost,
// and — the paper-literal detail — direct edges (s_k, v) for subset
// servers re-weighted to zero (Algorithm 1, step 5). It then runs the
// generic KMB routine. Slower than the closure evaluator; kept for
// cross-validation and the ablation benchmark.

// buildAuxiliary constructs G_k^i for one subset and returns it with
// the virtual source's node ID. Edge IDs [0, m) of the auxiliary graph
// coincide with the work graph's local edge IDs; IDs >= m are virtual.
func buildAuxiliary(
	w *workGraph, req *multicast.Request, subset []graph.NodeID, omega map[graph.NodeID]float64,
) (aux *graph.Graph, virtualNode graph.NodeID) {
	aux = w.g.Clone()
	virtualNode = aux.AddNode()
	for _, v := range subset {
		aux.MustAddEdge(virtualNode, v, omega[v])
		// Zero-cost rule: a direct source-server link is free in G_k^i
		// because the virtual edge already prices reaching v.
		if id, ok := aux.EdgeBetween(req.Source, v); ok {
			// SetWeight cannot fail: id is valid and the weight is 0.
			_ = aux.SetWeight(id, 0)
		}
	}
	return aux, virtualNode
}

// splitAuxiliaryTree separates a Steiner tree in G_k^i into the used
// virtual servers and the surviving real (work-local) edges.
func splitAuxiliaryTree(
	w *workGraph, aux *graph.Graph, virtualNode graph.NodeID, tree *graph.SteinerTree,
) (servers []graph.NodeID, realEdges []graph.EdgeID) {
	realBudget := w.g.NumEdges()
	for _, id := range tree.EdgeIDs {
		if id < realBudget {
			realEdges = append(realEdges, id)
			continue
		}
		e := aux.Edge(id)
		v := e.U
		if v == virtualNode {
			v = e.V
		}
		servers = append(servers, v)
	}
	return servers, realEdges
}

// buildSubsetTreeExplicitCost evaluates one subset with the explicit
// construction, returning the used servers, surviving real edges and
// the auxiliary tree cost.
func buildSubsetTreeExplicitCost(
	w *workGraph, req *multicast.Request, subset []graph.NodeID, omega map[graph.NodeID]float64,
) (servers []graph.NodeID, realEdges []graph.EdgeID, auxCost float64, err error) {
	aux, virtualNode := buildAuxiliary(w, req, subset, omega)
	terminals := append([]graph.NodeID{virtualNode}, req.Destinations...)
	tree, err := graph.SteinerKMB(aux, terminals)
	if err != nil {
		return nil, nil, 0, err
	}
	servers, realEdges = splitAuxiliaryTree(w, aux, virtualNode, tree)
	if len(servers) == 0 {
		return nil, nil, 0, ErrNoFeasibleServer
	}
	return servers, realEdges, tree.Weight, nil
}
