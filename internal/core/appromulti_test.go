package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/nfv"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/topology"
)

// testNetwork builds a deterministic sparse Waxman network for tests.
func testNetwork(t testing.TB, n int, seed int64) *sdn.Network {
	t.Helper()
	topo, err := topology.WaxmanDegree(n, topology.DefaultAvgDegree, 0.14, seed)
	if err != nil {
		t.Fatalf("waxman(%d): %v", n, err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	nw, err := sdn.NewNetwork(topo, sdn.DefaultConfig(), rng)
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	return nw
}

// testRequest draws a deterministic request over nw.
func testRequest(t testing.TB, nw *sdn.Network, seed int64) *multicast.Request {
	t.Helper()
	gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.DefaultGeneratorConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	req, err := gen.Next()
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func TestApproMultiProducesValidTree(t *testing.T) {
	nw := testNetwork(t, 40, 7)
	for seed := int64(0); seed < 10; seed++ {
		req := testRequest(t, nw, 100+seed)
		sol, err := ApproMulti(nw, req, DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := sol.Tree.CheckDelivery(nw.Graph()); err != nil {
			t.Fatalf("seed %d: delivery: %v", seed, err)
		}
		if sol.OperationalCost <= 0 {
			t.Fatalf("seed %d: operational cost %v", seed, sol.OperationalCost)
		}
		if len(sol.Servers) < 1 || len(sol.Servers) > 3 {
			t.Fatalf("seed %d: %d servers used, want 1..3", seed, len(sol.Servers))
		}
		for _, v := range sol.Servers {
			if !nw.IsServer(v) {
				t.Fatalf("seed %d: non-server node %d used as server", seed, v)
			}
		}
	}
}

func TestApproMultiInvalidK(t *testing.T) {
	nw := testNetwork(t, 20, 1)
	req := testRequest(t, nw, 2)
	if _, err := ApproMulti(nw, req, Options{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestApproMultiInvalidRequest(t *testing.T) {
	nw := testNetwork(t, 20, 1)
	req := &multicast.Request{
		ID:            1,
		Source:        0,
		Destinations:  nil, // invalid
		BandwidthMbps: 100,
		Chain:         nfv.MustChain(nfv.Firewall),
	}
	if _, err := ApproMulti(nw, req, DefaultOptions()); err == nil {
		t.Fatal("empty destination set accepted")
	}
}

// TestApproMultiNeverWorseThanOneServer: the single-server rooted
// candidates Alg_One_Server evaluates are all inside Appro_Multi's
// search space, so Appro_Multi's implementation cost is at most
// Alg_One_Server's on every instance.
func TestApproMultiNeverWorseThanOneServer(t *testing.T) {
	nw := testNetwork(t, 50, 11)
	for seed := int64(0); seed < 20; seed++ {
		req := testRequest(t, nw, 300+seed)
		multi, err := ApproMulti(nw, req, Options{K: 3})
		if err != nil {
			t.Fatalf("appro seed %d: %v", seed, err)
		}
		one, err := AlgOneServer(nw, req, false)
		if err != nil {
			t.Fatalf("oneserver seed %d: %v", seed, err)
		}
		if multi.OperationalCost > one.OperationalCost+1e-6 {
			t.Fatalf("seed %d: Appro_Multi cost %v exceeds Alg_One_Server %v",
				seed, multi.OperationalCost, one.OperationalCost)
		}
		near, err := AlgOneServerNearest(nw, req, false)
		if err != nil {
			t.Fatalf("nearest seed %d: %v", seed, err)
		}
		if one.OperationalCost > near.OperationalCost+1e-6 {
			t.Fatalf("seed %d: Alg_One_Server cost %v exceeds nearest-server variant %v",
				seed, one.OperationalCost, near.OperationalCost)
		}
	}
}

func TestApproMultiK1MatchesOneServerShape(t *testing.T) {
	nw := testNetwork(t, 30, 3)
	req := testRequest(t, nw, 5)
	sol, err := ApproMulti(nw, req, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Servers) != 1 {
		t.Fatalf("K=1 used %d servers", len(sol.Servers))
	}
}

// TestApproMultiClosureMatchesExplicit cross-checks the fast closure
// evaluator against the paper-literal auxiliary-graph construction on
// small instances: both are KMB-based 2K-approximations, and on
// instances where the zero-cost source edge rule does not fire they
// must agree on the selection cost up to tie-breaking (we allow a
// small relative tolerance for equal-cost tree choices).
func TestApproMultiClosureMatchesExplicit(t *testing.T) {
	for netSeed := int64(0); netSeed < 5; netSeed++ {
		nw := testNetwork(t, 25, 40+netSeed)
		for reqSeed := int64(0); reqSeed < 4; reqSeed++ {
			req := testRequest(t, nw, 500+10*netSeed+reqSeed)
			fast, ferr := ApproMulti(nw, req, Options{K: 2})
			slow, serr := ApproMulti(nw, req, Options{K: 2, ExplicitAuxiliary: true})
			if (ferr == nil) != (serr == nil) {
				t.Fatalf("net %d req %d: feasibility mismatch: fast=%v explicit=%v",
					netSeed, reqSeed, ferr, serr)
			}
			if ferr != nil {
				continue
			}
			// The explicit variant's zero-cost rule can only lower its
			// auxiliary cost; otherwise both evaluate the same KMB
			// trees over the same subsets.
			if slow.SelectionCost > fast.SelectionCost*1.05+1e-9 {
				t.Fatalf("net %d req %d: explicit cost %v much worse than closure cost %v",
					netSeed, reqSeed, slow.SelectionCost, fast.SelectionCost)
			}
			if err := slow.Tree.CheckDelivery(nw.Graph()); err != nil {
				t.Fatalf("net %d req %d: explicit delivery: %v", netSeed, reqSeed, err)
			}
		}
	}
}

func TestApproMultiCapRespectsResiduals(t *testing.T) {
	nw := testNetwork(t, 40, 9)
	// Admit requests until rejection, allocating each; residuals must
	// never go negative and every admitted tree must fit.
	gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.DefaultGeneratorConfig(), 77)
	if err != nil {
		t.Fatal(err)
	}
	admitted := 0
	for i := 0; i < 200; i++ {
		req, err := gen.Next()
		if err != nil {
			t.Fatal(err)
		}
		sol, err := ApproMulti(nw, req, Options{K: 3, Capacitated: true})
		if err != nil {
			if errors.Is(err, ErrNoFeasibleServer) || errors.Is(err, ErrUnreachable) {
				continue // expected once resources tighten
			}
			t.Fatalf("request %d: %v", i, err)
		}
		alloc := AllocationFor(req, sol.Tree)
		if err := nw.Allocate(alloc); err != nil {
			// The capacitated variant guarantees per-link b_k fits,
			// but pseudo-tree back-tracking can demand 2*b_k on a
			// link with residual in [b_k, 2b_k); treat as rejection.
			continue
		}
		admitted++
	}
	if admitted == 0 {
		t.Fatal("no requests admitted at all")
	}
	for e := 0; e < nw.NumEdges(); e++ {
		if nw.ResidualBandwidth(e) < -1e-9 {
			t.Fatalf("link %d residual negative: %v", e, nw.ResidualBandwidth(e))
		}
	}
	for _, v := range nw.Servers() {
		if nw.ResidualCompute(v) < -1e-9 {
			t.Fatalf("server %d residual negative: %v", v, nw.ResidualCompute(v))
		}
	}
}

func TestApproMultiCapRejectsWhenSaturated(t *testing.T) {
	topo, err := topology.Waxman(20, topology.DefaultWaxman(), 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	nw, err := sdn.NewNetwork(topo, sdn.DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate every server.
	servers := make(map[graph.NodeID]float64)
	for _, v := range nw.Servers() {
		servers[v] = nw.ResidualCompute(v)
	}
	if err := nw.Allocate(sdn.Allocation{Servers: servers}); err != nil {
		t.Fatal(err)
	}
	req := testRequest(t, nw, 1)
	if _, err := ApproMulti(nw, req, Options{K: 2, Capacitated: true}); !errors.Is(err, ErrNoFeasibleServer) {
		t.Fatalf("saturated servers: err = %v, want ErrNoFeasibleServer", err)
	}
}

func TestOperationalCostCountsBacktracking(t *testing.T) {
	// Path: src(0) - a(1) - server(2). Destination a(1).
	// Traffic must go 0->1->2 unprocessed and back 2->1 processed:
	// link (1,2) is charged twice.
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	topo := &topology.Topology{Name: "line", Graph: g, Servers: 1}
	rng := rand.New(rand.NewSource(1))
	nw, err := sdn.NewNetworkWithServers(topo, sdn.DefaultConfig(), []graph.NodeID{2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	req := &multicast.Request{
		ID:            1,
		Source:        0,
		Destinations:  []graph.NodeID{1},
		BandwidthMbps: 100,
		Chain:         nfv.MustChain(nfv.Firewall),
	}
	sol, err := ApproMulti(nw, req, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Tree.CheckDelivery(nw.Graph()); err != nil {
		t.Fatal(err)
	}
	loads := sol.Tree.LinkLoads()
	e12, ok := nw.Graph().EdgeBetween(1, 2)
	if !ok {
		t.Fatal("missing edge (1,2)")
	}
	if loads[e12] != 2 {
		t.Fatalf("link (1,2) load = %d, want 2 (forward + backtrack)", loads[e12])
	}
	wantCost := 1*req.BandwidthMbps*nw.LinkUnitCost(0) + // 0-1 once
		2*req.BandwidthMbps*nw.LinkUnitCost(e12) + // 1-2 twice
		req.ComputeDemandMHz()*nw.ServerUnitCost(2)
	if math.Abs(sol.OperationalCost-wantCost) > 1e-6 {
		t.Fatalf("operational cost = %v, want %v", sol.OperationalCost, wantCost)
	}
}

// TestPropertyApproMultiDelivery fuzzes networks and requests and
// checks the central invariant: every produced tree delivers processed
// traffic to all destinations and uses only genuine servers.
func TestPropertyApproMultiDelivery(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 15 + rng.Intn(30)
		topo, err := topology.Waxman(n, topology.DefaultWaxman(), seed)
		if err != nil {
			return false
		}
		nw, err := sdn.NewNetwork(topo, sdn.DefaultConfig(), rng)
		if err != nil {
			return false
		}
		gen, err := multicast.NewGenerator(n, multicast.DefaultGeneratorConfig(), seed+1)
		if err != nil {
			return false
		}
		req, err := gen.Next()
		if err != nil {
			return false
		}
		k := 1 + rng.Intn(3)
		sol, err := ApproMulti(nw, req, Options{K: k})
		if err != nil {
			return false
		}
		if len(sol.Servers) > k {
			return false
		}
		for _, v := range sol.Servers {
			if !nw.IsServer(v) {
				return false
			}
		}
		return sol.Tree.CheckDelivery(nw.Graph()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCountSubsets(t *testing.T) {
	tests := []struct {
		n, k, want int
	}{
		{3, 1, 3},
		{3, 2, 6},
		{3, 3, 7},
		{5, 2, 15},
		{2, 5, 3}, // k clamped to n
	}
	for _, tt := range tests {
		if got := countSubsets(tt.n, tt.k); got != tt.want {
			t.Fatalf("countSubsets(%d,%d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestForEachSubsetEnumeratesAll(t *testing.T) {
	items := []graph.NodeID{10, 20, 30, 40}
	seen := make(map[string]bool)
	forEachSubset(items, 2, func(s []graph.NodeID) bool {
		key := ""
		for _, v := range s {
			key += string(rune('a' + v/10))
		}
		if seen[key] {
			t.Fatalf("duplicate subset %v", s)
		}
		seen[key] = true
		return true
	})
	if len(seen) != countSubsets(4, 2) {
		t.Fatalf("enumerated %d subsets, want %d", len(seen), countSubsets(4, 2))
	}
}

func TestForEachSubsetEarlyStop(t *testing.T) {
	items := []graph.NodeID{1, 2, 3}
	count := 0
	forEachSubset(items, 3, func([]graph.NodeID) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d subsets, want 2", count)
	}
}

func TestBinomial(t *testing.T) {
	tests := []struct{ n, k, want int }{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {4, 7, 0}, {4, -1, 0},
	}
	for _, tt := range tests {
		if got := binomial(tt.n, tt.k); got != tt.want {
			t.Fatalf("binomial(%d,%d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
}

// TestApproMultiDeterministic guards against map-iteration
// non-determinism: repeated solves of the same instance must produce
// bit-identical costs and hop sets.
func TestApproMultiDeterministic(t *testing.T) {
	nw := testNetwork(t, 60, 23)
	req := testRequest(t, nw, 6)
	ref, err := ApproMulti(nw, req, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	refHops := ref.Tree.Hops()
	for trial := 0; trial < 5; trial++ {
		sol, err := ApproMulti(nw, req, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if sol.OperationalCost != ref.OperationalCost {
			t.Fatalf("trial %d: cost %v != %v", trial, sol.OperationalCost, ref.OperationalCost)
		}
		hops := sol.Tree.Hops()
		if len(hops) != len(refHops) {
			t.Fatalf("trial %d: hop count %d != %d", trial, len(hops), len(refHops))
		}
		seen := make(map[multicast.Hop]bool, len(refHops))
		for _, h := range refHops {
			seen[h] = true
		}
		for _, h := range hops {
			if !seen[h] {
				t.Fatalf("trial %d: unexpected hop %+v", trial, h)
			}
		}
	}
}

func TestApproMultiDelayBound(t *testing.T) {
	nw := testNetwork(t, 50, 13)
	req := testRequest(t, nw, 3)
	free, err := ApproMulti(nw, req, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	depth, err := free.Tree.MaxDeliveryDepth(nw.Graph())
	if err != nil {
		t.Fatal(err)
	}
	// A bound equal to the unconstrained depth must keep a solution...
	sol, err := ApproMulti(nw, req, Options{K: 2, MaxDeliveryHops: depth})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sol.Tree.MaxDeliveryDepth(nw.Graph())
	if err != nil {
		t.Fatal(err)
	}
	if got > depth {
		t.Fatalf("bounded solve depth %d > bound %d", got, depth)
	}
	// ...and an impossible bound must be reported as such.
	if _, err := ApproMulti(nw, req, Options{K: 2, MaxDeliveryHops: 1}); !errors.Is(err, ErrDelayBound) {
		t.Fatalf("impossible bound = %v, want ErrDelayBound", err)
	}
	// The cost under a binding constraint is never lower.
	if sol.OperationalCost < free.OperationalCost-1e-9 {
		t.Fatal("constrained solve cheaper than unconstrained")
	}
}
