package core

// Incremental-maintenance equivalence oracle. The work-graph cache
// answers a warm planner's view() by patching cached graphs and
// repairing cached shortest-path trees in place (workgraphcache.go);
// the oracle here drives a warm planner through long randomized
// mutate-then-plan histories — allocations, releases, resizes,
// failures, restores, and deliberate threshold-crossing residual
// updates — and demands every answer stay byte-identical to a cold
// planner whose caches are rebuilt from scratch at the same state.

import (
	"math/rand"
	"sync"
	"testing"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// residualMutator applies journal-marked residual mutations to a
// network, keeping a ledger of its own allocations so releases stay
// legal (never exceeding capacity).
type residualMutator struct {
	rng    *rand.Rand
	nw     *sdn.Network
	ledger []sdn.Allocation
}

func (m *residualMutator) randomLink() graph.EdgeID {
	return graph.EdgeID(m.rng.Intn(m.nw.NumEdges()))
}

func (m *residualMutator) randomServer() graph.NodeID {
	servers := m.nw.Servers()
	return servers[m.rng.Intn(len(servers))]
}

// step applies one random mutation. Mutations that turn out to be
// no-ops at the current state (releasing with an empty ledger, draining
// an already-dry link) silently pass — the oracle only needs the
// distribution to visit every journal path often enough.
func (m *residualMutator) step(t *testing.T) {
	t.Helper()
	switch m.rng.Intn(9) {
	case 0, 1: // partial allocation across a few links and a server
		a := sdn.Allocation{
			Links:   map[graph.EdgeID]float64{},
			Servers: map[graph.NodeID]float64{},
		}
		for i := 0; i < 1+m.rng.Intn(3); i++ {
			e := m.randomLink()
			if free := m.nw.ResidualBandwidth(e); m.nw.LinkUp(e) && free > 1 {
				a.Links[e] = free * (0.1 + 0.5*m.rng.Float64())
			}
		}
		if v := m.randomServer(); m.nw.ServerUp(v) && m.nw.ResidualCompute(v) > 1 {
			a.Servers[v] = m.nw.ResidualCompute(v) * 0.25
		}
		if len(a.Links) == 0 && len(a.Servers) == 0 {
			return
		}
		if err := m.nw.Allocate(a); err != nil {
			t.Fatalf("allocate: %v", err)
		}
		m.ledger = append(m.ledger, a)
	case 2: // release an earlier allocation (threshold may flip back)
		if len(m.ledger) == 0 {
			return
		}
		i := m.rng.Intn(len(m.ledger))
		a := m.ledger[i]
		m.ledger = append(m.ledger[:i], m.ledger[i+1:]...)
		if err := m.nw.Release(a); err != nil {
			t.Fatalf("release: %v", err)
		}
	case 3: // threshold-crossing drain: residual drops to ~0 Mbps,
		// below any request's bandwidth demand, so the link's
		// capacitated work-graph membership flips
		e := m.randomLink()
		free := m.nw.ResidualBandwidth(e)
		if !m.nw.LinkUp(e) || free <= 1e-3 {
			return
		}
		a := sdn.Allocation{Links: map[graph.EdgeID]float64{e: free - 1e-3}}
		if err := m.nw.Allocate(a); err != nil {
			t.Fatalf("drain: %v", err)
		}
		m.ledger = append(m.ledger, a)
	case 4: // resize link capacity (never below the allocated share)
		e := m.randomLink()
		allocated := m.nw.BandwidthCap(e) - m.nw.ResidualBandwidth(e)
		if err := m.nw.SetBandwidthCap(e, allocated+1+m.nw.ResidualBandwidth(e)*(0.3+m.rng.Float64())); err != nil {
			t.Fatalf("resize link: %v", err)
		}
	case 5: // resize server capacity
		v := m.randomServer()
		allocated := m.nw.ComputeCap(v) - m.nw.ResidualCompute(v)
		if err := m.nw.SetComputeCap(v, allocated+1+m.nw.ResidualCompute(v)*(0.3+m.rng.Float64())); err != nil {
			t.Fatalf("resize server: %v", err)
		}
	case 6: // toggle a link's failure state, biased towards healthy.
		// Rare: every state toggle moves StructureVersion, which
		// retires the whole cache family, so frequent toggles would
		// leave no incremental derivations to verify.
		if m.rng.Intn(4) != 0 {
			return
		}
		e := m.randomLink()
		up := m.nw.LinkUp(e)
		if err := m.nw.SetLinkUp(e, !up); err != nil {
			t.Fatalf("link state: %v", err)
		}
		if !up || m.rng.Intn(3) > 0 { // restore soon after failing
			if err := m.nw.SetLinkUp(e, true); err != nil {
				t.Fatalf("link restore: %v", err)
			}
		}
	case 7: // toggle a server's failure state (rare — see case 6)
		if m.rng.Intn(4) != 0 {
			return
		}
		v := m.randomServer()
		up := m.nw.ServerUp(v)
		if err := m.nw.SetServerUp(v, !up); err != nil {
			t.Fatalf("server state: %v", err)
		}
		if !up || m.rng.Intn(3) > 0 {
			if err := m.nw.SetServerUp(v, true); err != nil {
				t.Fatalf("server restore: %v", err)
			}
		}
	case 8: // batch: several mutations under one MutationVersion epoch
		m.nw.BeginMutationBatch()
		for i := 0; i < 2; i++ {
			e := m.randomLink()
			if free := m.nw.ResidualBandwidth(e); m.nw.LinkUp(e) && free > 1 {
				a := sdn.Allocation{Links: map[graph.EdgeID]float64{e: free * 0.5}}
				if err := m.nw.Allocate(a); err != nil {
					t.Fatalf("batch allocate: %v", err)
				}
				m.ledger = append(m.ledger, a)
			}
		}
		m.nw.EndMutationBatch()
	}
}

// TestMutateThenPlanEquivalence is the oracle: a warm CP/CPK planner
// whose caches live through a long mutation history must answer every
// plan byte-identically to a cold planner built fresh at the same
// network state — same trees, same costs (as float bits), same error
// text.
func TestMutateThenPlanEquivalence(t *testing.T) {
	type netCase struct {
		name  string
		build func() *sdn.Network
	}
	nets := []netCase{
		{"waxman50", func() *sdn.Network { return testNetwork(t, 50, 9) }},
		{"geant", func() *sdn.Network { return geantNetwork(t, 4) }},
	}
	for _, mode := range []string{"cp", "cpk"} {
		for _, nc := range nets {
			t.Run(mode+"/"+nc.name, func(t *testing.T) {
				nw := nc.build()
				model := DefaultCostModel(nw.NumNodes())
				newPlanner := func() (Planner, *workGraphCache) {
					if mode == "cp" {
						p, err := NewCPPlanner(model)
						if err != nil {
							t.Fatal(err)
						}
						return p, &p.cache
					}
					p, err := NewCPKPlanner(model, 2)
					if err != nil {
						t.Fatal(err)
					}
					return p, &p.cache
				}
				warm, warmCache := newPlanner()
				mut := &residualMutator{rng: rand.New(rand.NewSource(101)), nw: nw}
				gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.OnlineGeneratorConfig(), 33)
				if err != nil {
					t.Fatal(err)
				}
				// A small cycling request pool: the cache families are
				// keyed on (structure, bandwidth, demand), so the same
				// request must recur while its earlier entry is still
				// within the residual journal's history window for a
				// patch or rekey to be attempted at all.
				reqs, err := gen.Batch(6)
				if err != nil {
					t.Fatal(err)
				}
				for step := 0; step < 150; step++ {
					mut.step(t)
					req := reqs[step%len(reqs)]
					cold, _ := newPlanner()
					coldSol, coldErr := cold.Plan(nw, req)
					warmSol, warmErr := warm.Plan(nw, req)
					if (warmErr == nil) != (coldErr == nil) {
						t.Fatalf("step %d: err mismatch: warm %v, cold %v", step, warmErr, coldErr)
					}
					if warmErr != nil {
						if warmErr.Error() != coldErr.Error() {
							t.Fatalf("step %d: error text: warm %q, cold %q", step, warmErr, coldErr)
						}
						continue
					}
					sameSolution(t, warmSol, coldSol, "warm vs cold")
				}
				hits, rekeys, patches, builds := warmCache.stats()
				t.Logf("warm cache: %d hits, %d rekeys, %d patches, %d builds",
					hits, rekeys, patches, builds)
				if rekeys+patches == 0 {
					t.Fatalf("oracle never exercised the incremental path: %d hits, %d builds",
						hits, builds)
				}
			})
		}
	}
}

// TestCacheSingleflightBuildCounts asserts a cold-miss stampede on both
// caches collapses to one build: concurrent planners asking for the
// same (network, request) work graph share a single buildWorkGraph,
// and concurrent root lookups in an spCache share a single Dijkstra.
func TestCacheSingleflightBuildCounts(t *testing.T) {
	nw := testNetwork(t, 50, 9)
	model := DefaultCostModel(nw.NumNodes())
	p, err := NewCPPlanner(model)
	if err != nil {
		t.Fatal(err)
	}
	req := testRequest(t, nw, 5)

	const callers = 16
	gate := make(chan struct{})
	var wg sync.WaitGroup
	var spcs [callers]*spCache
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			w, spc := p.cache.acquire(nw, req)
			if w == nil || spc == nil {
				t.Errorf("caller %d: nil work graph", i)
				return
			}
			spcs[i] = spc
		}(i)
	}
	close(gate)
	wg.Wait()
	if _, _, _, builds := p.cache.stats(); builds != 1 {
		t.Fatalf("work-graph cache built %d times for one key under %d concurrent misses", builds, callers)
	}

	spc := spcs[0]
	for _, other := range spcs[1:] {
		if other != spc {
			t.Fatal("concurrent acquires returned distinct sp caches")
		}
	}
	gate = make(chan struct{})
	var wss [callers]graph.DijkstraWorkspace
	before := spc.buildCount()
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			if _, err := spc.fromWith(0, &wss[i]); err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := spc.buildCount() - before; got != 1 {
		t.Fatalf("sp cache ran %d Dijkstras for one root under %d concurrent misses", got, callers)
	}
}
