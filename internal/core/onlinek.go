package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// OnlineCPK is an extension beyond the paper: online admission with
// service chains replicated on up to K servers. The paper proves its
// competitive ratio only for K = 1 and leaves the general case open;
// OnlineCPK combines Appro_Multi's server-subset search with
// Online_CP's exponential cost model — subsets are evaluated on the
// residual network priced with marginal exponential link weights, and
// the same per-resource admission thresholds apply (every tree link
// must satisfy w_e(k) < σ_e, every used server w_v(k) < σ_v). No
// competitive-ratio claim is made; the harness measures it
// empirically (ext-onlinek).
type OnlineCPK struct {
	*Admitter
}

// NewOnlineCPK returns a K-server online admitter over nw.
func NewOnlineCPK(nw *sdn.Network, model CostModel, k int) (*OnlineCPK, error) {
	p, err := NewCPKPlanner(model, k)
	if err != nil {
		return nil, err
	}
	return &OnlineCPK{Admitter: NewAdmitter(nw, p)}, nil
}

// CPKPlanner is the pure planning half of OnlineCPK. Like CPPlanner it
// memoizes residual work graphs per (structure, mutation, request
// parameter) key, so one instance must serve one logical network and
// its read-only clones.
type CPKPlanner struct {
	model  CostModel
	k      int
	cache  workGraphCache
	arenas sync.Pool // *PlanArena for arena-less Plan calls
}

// NewCPKPlanner returns a K-server online planner.
func NewCPKPlanner(model CostModel, k int) (*CPKPlanner, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("core: invalid K=%d (need K >= 1)", k)
	}
	p := &CPKPlanner{model: model, k: k}
	// Residual network with marginal exponential link weights (the
	// same pricing Online_CP uses for tree construction); the recipe
	// lives on the cache so incremental patches re-price edges exactly
	// as a cold build would.
	p.cache.capacitated = true
	p.cache.weight = func(nw *sdn.Network, req *multicast.Request, e graph.EdgeID) float64 {
		utilAfter := 1 - (nw.ResidualBandwidth(e)-req.BandwidthMbps)/nw.BandwidthCap(e)
		return math.Pow(p.model.Beta, utilAfter) - 1
	}
	return p, nil
}

// Name identifies the algorithm.
func (p *CPKPlanner) Name() string { return "Online_CPK" }

// view returns the residual work graph and shortest-path cache for
// (nw, req) — cached, incrementally patched, or cold-built (see
// workGraphCache).
func (p *CPKPlanner) view(nw *sdn.Network, req *multicast.Request) (*workGraph, *spCache) {
	return p.cache.acquire(nw, req)
}

// Plan proposes the cheapest admissible tree over server subsets of
// size <= K under the exponential cost model's thresholds.
func (p *CPKPlanner) Plan(nw *sdn.Network, req *multicast.Request) (*Solution, error) {
	arena, _ := p.arenas.Get().(*PlanArena)
	if arena == nil {
		arena = NewPlanArena()
	}
	defer p.arenas.Put(arena)
	return p.PlanWith(nw, req, arena)
}

// PlanWith is Plan with a caller-owned scratch arena; results are
// identical to Plan.
func (p *CPKPlanner) PlanWith(nw *sdn.Network, req *multicast.Request, arena *PlanArena) (*Solution, error) {
	if arena == nil {
		return p.Plan(nw, req)
	}
	if err := validateInput(nw, req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	w, spc := p.view(nw, req)
	if len(w.servers) == 0 {
		return nil, fmt.Errorf("%w: %w", ErrRejected, ErrComputeExhausted)
	}
	spSrc, err := spc.fromWith(req.Source, &arena.ws)
	if err != nil {
		return nil, err
	}
	// Threshold (a) per server, plus reachability.
	var candidates []graph.NodeID
	omega := make(map[graph.NodeID]float64)
	spSrv := make(map[graph.NodeID]*graph.ShortestPaths)
	for _, v := range w.servers {
		if !spSrc.Reachable(v) {
			continue
		}
		wv := p.model.ServerWeight(nw, v)
		if wv >= p.model.SigmaV {
			continue
		}
		sp, derr := spc.fromWith(v, &arena.ws)
		if derr != nil {
			return nil, derr
		}
		candidates = append(candidates, v)
		spSrv[v] = sp
		omega[v] = spSrc.Dist[v] + wv
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("%w: %w: every server over threshold or cut off",
			ErrRejected, ErrThresholdExceeded)
	}
	for _, d := range req.Destinations {
		if !spSrc.Reachable(d) {
			return nil, fmt.Errorf("%w: %w: destination %d", ErrRejected, ErrUnreachable, d)
		}
	}
	ev, err := newClosureEvaluator(w, req, spSrv, spc, &arena.ws)
	if err != nil {
		return nil, err
	}

	// Host-edge weight lookup for threshold (b) and selection.
	hostWeight := make(map[graph.EdgeID]float64, w.g.NumEdges())
	for le := 0; le < w.g.NumEdges(); le++ {
		hostWeight[w.hostEdge(le)] = w.g.Weight(le)
	}

	var (
		bestSel  = graph.Infinity
		bestTree *multicast.PseudoTree
	)
	consider := func(servers []graph.NodeID, realEdges []graph.EdgeID) {
		tree, derr := decompose(w, req, spSrc, servers, realEdges, &arena.eval)
		if derr != nil {
			return
		}
		// Threshold (b): every tree link under σ_e (pre-allocation
		// weights, as in Online_CP). Sum in sorted edge order: float
		// addition is order-dependent, and a map-ordered sum would make
		// near-tie subset selection non-deterministic run to run.
		loads := tree.LinkLoads()
		treeEdges := make([]graph.EdgeID, 0, len(loads))
		for e := range loads {
			treeEdges = append(treeEdges, e)
		}
		sort.Ints(treeEdges)
		sel := 0.0
		for _, e := range treeEdges {
			we := p.model.LinkWeight(nw, e)
			if we >= p.model.SigmaE {
				return
			}
			sel += float64(loads[e]) * hostWeight[e]
		}
		for _, v := range servers {
			sel += p.model.ServerWeight(nw, v)
		}
		if sel < bestSel {
			bestSel, bestTree = sel, tree
		}
	}
	forEachSubset(candidates, p.k, func(subset []graph.NodeID) bool {
		if servers, realEdges, _, cerr := ev.steiner(subset, omega, &arena.eval); cerr == nil {
			consider(servers, realEdges)
		}
		return true
	})
	for _, v := range candidates {
		if realEdges, _, rerr := ev.steinerRooted(v, &arena.eval); rerr == nil {
			consider([]graph.NodeID{v}, realEdges)
		}
	}
	if bestTree == nil {
		return nil, fmt.Errorf("%w: %w: no admissible tree", ErrRejected, ErrThresholdExceeded)
	}
	return &Solution{
		Request:         req,
		Tree:            bestTree,
		Servers:         bestTree.Servers,
		OperationalCost: OperationalCost(nw, req, bestTree),
		SelectionCost:   bestSel,
	}, nil
}
