package core

import (
	"fmt"
	"math"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// OnlineCPK is an extension beyond the paper: online admission with
// service chains replicated on up to K servers. The paper proves its
// competitive ratio only for K = 1 and leaves the general case open;
// OnlineCPK combines Appro_Multi's server-subset search with
// Online_CP's exponential cost model — subsets are evaluated on the
// residual network priced with marginal exponential link weights, and
// the same per-resource admission thresholds apply (every tree link
// must satisfy w_e(k) < σ_e, every used server w_v(k) < σ_v). No
// competitive-ratio claim is made; the harness measures it
// empirically (ext-onlinek).
type OnlineCPK struct {
	nw    *sdn.Network
	model CostModel
	k     int
	lives *liveTable

	admitted []*Solution
	rejected int
}

// NewOnlineCPK returns a K-server online admitter over nw.
func NewOnlineCPK(nw *sdn.Network, model CostModel, k int) (*OnlineCPK, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("core: invalid K=%d (need K >= 1)", k)
	}
	return &OnlineCPK{nw: nw, model: model, k: k, lives: newLiveTable(nw)}, nil
}

// Admit decides request r, allocating resources on admission and
// returning ErrRejected otherwise.
func (o *OnlineCPK) Admit(req *multicast.Request) (*Solution, error) {
	sol, err := o.plan(req)
	if err != nil {
		o.rejected++
		return nil, err
	}
	alloc := AllocationFor(req, sol.Tree)
	if err := o.nw.Allocate(alloc); err != nil {
		o.rejected++
		return nil, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	o.lives.record(req, sol, alloc)
	o.admitted = append(o.admitted, sol)
	return sol, nil
}

func (o *OnlineCPK) plan(req *multicast.Request) (*Solution, error) {
	nw := o.nw
	if err := validateInput(nw, req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	// Residual network with marginal exponential link weights (the
	// same pricing Online_CP uses for tree construction).
	w := buildWorkGraph(nw, req, true, func(e graph.EdgeID) float64 {
		utilAfter := 1 - (nw.ResidualBandwidth(e)-req.BandwidthMbps)/nw.BandwidthCap(e)
		return math.Pow(o.model.Beta, utilAfter) - 1
	})
	if len(w.servers) == 0 {
		return nil, fmt.Errorf("%w: no server with enough free computing", ErrRejected)
	}
	spSrc, err := graph.Dijkstra(w.g, req.Source)
	if err != nil {
		return nil, err
	}
	// Threshold (a) per server, plus reachability.
	var candidates []graph.NodeID
	omega := make(map[graph.NodeID]float64)
	spSrv := make(map[graph.NodeID]*graph.ShortestPaths)
	for _, v := range w.servers {
		if !spSrc.Reachable(v) {
			continue
		}
		wv := o.model.ServerWeight(nw, v)
		if wv >= o.model.SigmaV {
			continue
		}
		sp, derr := graph.Dijkstra(w.g, v)
		if derr != nil {
			return nil, derr
		}
		candidates = append(candidates, v)
		spSrv[v] = sp
		omega[v] = spSrc.Dist[v] + wv
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("%w: every server over threshold or cut off", ErrRejected)
	}
	for _, d := range req.Destinations {
		if !spSrc.Reachable(d) {
			return nil, fmt.Errorf("%w: destination %d unreachable", ErrRejected, d)
		}
	}
	ev, err := newClosureEvaluator(w, req, spSrv)
	if err != nil {
		return nil, err
	}

	// Host-edge weight lookup for threshold (b) and selection.
	hostWeight := make(map[graph.EdgeID]float64, w.g.NumEdges())
	for le := 0; le < w.g.NumEdges(); le++ {
		hostWeight[w.hostEdge(le)] = w.g.Weight(le)
	}

	var (
		bestSel  = graph.Infinity
		bestTree *multicast.PseudoTree
	)
	consider := func(servers []graph.NodeID, realEdges []graph.EdgeID) {
		tree, derr := decompose(w, req, spSrc, servers, realEdges)
		if derr != nil {
			return
		}
		// Threshold (b): every tree link under σ_e (pre-allocation
		// weights, as in Online_CP).
		sel := 0.0
		for e, uses := range tree.LinkLoads() {
			we := o.model.LinkWeight(nw, e)
			if we >= o.model.SigmaE {
				return
			}
			sel += float64(uses) * hostWeight[e]
		}
		for _, v := range servers {
			sel += o.model.ServerWeight(nw, v)
		}
		if sel < bestSel {
			bestSel, bestTree = sel, tree
		}
	}
	forEachSubset(candidates, o.k, func(subset []graph.NodeID) bool {
		if servers, realEdges, _, cerr := ev.steiner(subset, omega); cerr == nil {
			consider(servers, realEdges)
		}
		return true
	})
	for _, v := range candidates {
		if realEdges, _, rerr := ev.steinerRooted(v); rerr == nil {
			consider([]graph.NodeID{v}, realEdges)
		}
	}
	if bestTree == nil {
		return nil, fmt.Errorf("%w: no admissible tree within thresholds", ErrRejected)
	}
	return &Solution{
		Request:         req,
		Tree:            bestTree,
		Servers:         bestTree.Servers,
		OperationalCost: OperationalCost(nw, req, bestTree),
		SelectionCost:   bestSel,
	}, nil
}

// Depart releases the resources of an admitted request.
func (o *OnlineCPK) Depart(reqID int) (*Solution, error) {
	if o.lives == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownRequest, reqID)
	}
	return o.lives.depart(reqID)
}

// Replace records a re-placed solution for a live session (see
// OnlineCP.Replace).
func (o *OnlineCPK) Replace(reqID int, sol *Solution) error {
	if o.lives == nil {
		return fmt.Errorf("%w: %d", ErrUnknownRequest, reqID)
	}
	return o.lives.replace(reqID, sol)
}

// LiveCount reports how many admitted requests currently hold
// resources.
func (o *OnlineCPK) LiveCount() int {
	if o.lives == nil {
		return 0
	}
	return o.lives.live()
}

// Admitted returns the solutions admitted so far.
func (o *OnlineCPK) Admitted() []*Solution {
	out := make([]*Solution, len(o.admitted))
	copy(out, o.admitted)
	return out
}

// AdmittedCount reports the number of admitted requests.
func (o *OnlineCPK) AdmittedCount() int { return len(o.admitted) }

// RejectedCount reports how many requests were rejected.
func (o *OnlineCPK) RejectedCount() int { return o.rejected }
