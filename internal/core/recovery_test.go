package core

// Failure-recovery workflow: fail a link carried by an admitted
// session, find affected sessions, depart them, and re-admit on the
// degraded network. Exercises the failure-injection extension end to
// end.

import (
	"testing"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
)

func TestFailureRecoveryWorkflow(t *testing.T) {
	nw := testNetwork(t, 50, 31)
	cp, err := NewOnlineCP(nw, DefaultCostModel(nw.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.OnlineGeneratorConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	// Admit a handful of sessions and remember their allocations.
	type session struct {
		req   *multicast.Request
		alloc map[graph.EdgeID]float64
	}
	var sessions []session
	for len(sessions) < 10 {
		req, gerr := gen.Next()
		if gerr != nil {
			t.Fatal(gerr)
		}
		sol, aerr := cp.Admit(req)
		if aerr != nil {
			continue
		}
		sessions = append(sessions, session{
			req:   req,
			alloc: AllocationFor(req, sol.Tree).Links,
		})
	}

	// Fail one link used by the first session.
	var failed graph.EdgeID = -1
	for e := range sessions[0].alloc {
		failed = e
		break
	}
	if failed == -1 {
		t.Fatal("first session uses no links?")
	}
	if err := nw.SetLinkUp(failed, false); err != nil {
		t.Fatal(err)
	}

	// Identify and depart the affected sessions.
	reAdmit := make([]*multicast.Request, 0, len(sessions))
	for _, s := range sessions {
		if _, down := s.alloc[failed]; !down {
			continue
		}
		if _, derr := cp.Depart(s.req.ID); derr != nil {
			t.Fatalf("depart %d: %v", s.req.ID, derr)
		}
		reAdmit = append(reAdmit, s.req)
	}
	if len(reAdmit) == 0 {
		t.Fatal("no session used the failed link")
	}

	// Re-admit on the degraded network: new trees must avoid the
	// failed link.
	recovered := 0
	for _, req := range reAdmit {
		fresh := req.Clone()
		fresh.ID += 1000 // new session identity
		sol, aerr := cp.Admit(fresh)
		if aerr != nil {
			if IsRejection(aerr) {
				continue // degraded network may genuinely lack room
			}
			t.Fatalf("re-admit %d: %v", fresh.ID, aerr)
		}
		recovered++
		if _, uses := sol.Tree.LinkLoads()[failed]; uses {
			t.Fatalf("re-admitted session %d routed over the failed link", fresh.ID)
		}
		if derr := sol.Tree.CheckDelivery(nw.Graph()); derr != nil {
			t.Fatalf("re-admitted session %d: %v", fresh.ID, derr)
		}
	}
	if recovered == 0 {
		t.Fatal("no affected session could be re-admitted")
	}

	// Repair and confirm the link is usable again.
	if err := nw.SetLinkUp(failed, true); err != nil {
		t.Fatal(err)
	}
	if !nw.LinkUp(failed) {
		t.Fatal("link still down after repair")
	}
}

func TestApproMultiAvoidsFailedServer(t *testing.T) {
	nw := testNetwork(t, 40, 17)
	req := testRequest(t, nw, 4)
	sol, err := ApproMulti(nw, req, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Fail the chosen server; the algorithm must pick another.
	down := sol.Servers[0]
	if err := nw.SetServerUp(down, false); err != nil {
		t.Fatal(err)
	}
	sol2, err := ApproMulti(nw, req, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sol2.Servers {
		if v == down {
			t.Fatalf("failed server %d reused", down)
		}
	}
	if err := sol2.Tree.CheckDelivery(nw.Graph()); err != nil {
		t.Fatal(err)
	}
	if sol2.OperationalCost < sol.OperationalCost-1e-9 {
		t.Fatal("losing a server cannot reduce the optimal cost")
	}
}
