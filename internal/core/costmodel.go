package core

import (
	"fmt"
	"math"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/sdn"
)

// CostModel is the exponential resource-pricing model of paper §V.A:
// the cost of a resource grows exponentially with its utilisation so
// that loaded links and servers repel new requests,
//
//	c_v(k) = C_v (α^{1 − C_v(k)/C_v} − 1)
//	c_e(k) = B_e (β^{1 − B_e(k)/B_e} − 1)
//
// with normalised weights w_v = c_v/C_v and w_e = c_e/B_e used by the
// admission thresholds σ_v and σ_e.
type CostModel struct {
	// Alpha is the computing-cost base (α > 1; the analysis sets 2|V|).
	Alpha float64
	// Beta is the bandwidth-cost base (β > 1; the analysis sets 2|V|).
	Beta float64
	// SigmaV is the server admission threshold σ_v (|V| − 1).
	SigmaV float64
	// SigmaE is the tree-weight admission threshold σ_e (|V| − 1).
	SigmaE float64
}

// DefaultCostModel returns the parameterisation the competitive-ratio
// analysis requires for an n-node network: α = β = 2n and
// σ_v = σ_e = n − 1 (paper §V, Lemma 2 and §VI.A).
func DefaultCostModel(n int) CostModel {
	return CostModel{
		Alpha:  2 * float64(n),
		Beta:   2 * float64(n),
		SigmaV: float64(n - 1),
		SigmaE: float64(n - 1),
	}
}

// Validate checks the model's constants.
func (m CostModel) Validate() error {
	if m.Alpha <= 1 || m.Beta <= 1 {
		return fmt.Errorf("core: cost model needs α, β > 1 (got %v, %v)", m.Alpha, m.Beta)
	}
	if m.SigmaV <= 0 || m.SigmaE <= 0 {
		return fmt.Errorf("core: cost model needs σ_v, σ_e > 0 (got %v, %v)", m.SigmaV, m.SigmaE)
	}
	return nil
}

// LinkWeight returns the normalised bandwidth weight
// w_e(k) = β^{1 − B_e(k)/B_e} − 1 for the link's current residual.
func (m CostModel) LinkWeight(nw *sdn.Network, e graph.EdgeID) float64 {
	util := 1 - nw.ResidualBandwidth(e)/nw.BandwidthCap(e)
	return math.Pow(m.Beta, util) - 1
}

// LinkCost returns the absolute bandwidth cost c_e(k) = B_e * w_e(k).
func (m CostModel) LinkCost(nw *sdn.Network, e graph.EdgeID) float64 {
	return nw.BandwidthCap(e) * m.LinkWeight(nw, e)
}

// ServerWeight returns the normalised computing weight
// w_v(k) = α^{1 − C_v(k)/C_v} − 1 for the server's current residual.
func (m CostModel) ServerWeight(nw *sdn.Network, v graph.NodeID) float64 {
	util := 1 - nw.ResidualCompute(v)/nw.ComputeCap(v)
	return math.Pow(m.Alpha, util) - 1
}

// ServerCost returns the absolute computing cost c_v(k) = C_v * w_v(k).
func (m CostModel) ServerCost(nw *sdn.Network, v graph.NodeID) float64 {
	return nw.ComputeCap(v) * m.ServerWeight(nw, v)
}
