package core

import "nfvmcast/internal/graph"

// forEachSubset enumerates every non-empty subset of items with size
// at most k (the paper's loop over all server combinations, sizes
// 1..K) in deterministic order, calling fn with a reused scratch
// slice. fn must not retain the slice. Enumeration stops early when fn
// returns false.
func forEachSubset(items []graph.NodeID, k int, fn func(subset []graph.NodeID) bool) {
	if k > len(items) {
		k = len(items)
	}
	scratch := make([]graph.NodeID, 0, k)
	for size := 1; size <= k; size++ {
		if !combinations(items, size, scratch, 0, fn) {
			return
		}
	}
}

// combinations recursively emits all size-`size` combinations of
// items[start:] appended to prefix.
func combinations(
	items []graph.NodeID, size int, prefix []graph.NodeID, start int,
	fn func([]graph.NodeID) bool,
) bool {
	if len(prefix) == size {
		return fn(prefix)
	}
	// Not enough items left to finish the combination.
	need := size - len(prefix)
	for i := start; i+need <= len(items); i++ {
		if !combinations(items, size, append(prefix, items[i]), i+1, fn) {
			return false
		}
	}
	return true
}

// countSubsets reports how many subsets forEachSubset will visit.
func countSubsets(n, k int) int {
	if k > n {
		k = n
	}
	total := 0
	for size := 1; size <= k; size++ {
		total += binomial(n, size)
	}
	return total
}

// binomial computes C(n, k) without overflow for the small sizes used
// here.
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1
	for i := 1; i <= k; i++ {
		res = res * (n - k + i) / i
	}
	return res
}
