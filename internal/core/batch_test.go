package core

import (
	"testing"

	"nfvmcast/internal/multicast"
)

// batchAdmitter pairs a CP admitter with planned-but-uncommitted
// solutions for n deterministic requests.
func batchAdmitter(t *testing.T, n int) (*Admitter, []*multicast.Request, []*Solution) {
	t.Helper()
	nw := testNetwork(t, 40, 9)
	cp, err := NewOnlineCP(nw, DefaultCostModel(nw.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]*multicast.Request, 0, n)
	sols := make([]*Solution, 0, n)
	for i := 0; i < n; i++ {
		req := testRequest(t, nw, 300+int64(i))
		req.ID = i
		sol, err := cp.PlanOn(nw, req)
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		reqs = append(reqs, req)
		sols = append(sols, sol)
	}
	return cp.Admitter, reqs, sols
}

func TestCommitBatchOrdersByRequestID(t *testing.T) {
	adm, reqs, sols := batchAdmitter(t, 4)

	// Feed the batch in reverse arrival order; results must come back
	// committed ascending by request ID.
	rr := []*multicast.Request{reqs[3], reqs[1], reqs[2], reqs[0]}
	ss := []*Solution{sols[3], sols[1], sols[2], sols[0]}
	results, err := adm.CommitBatch(rr, ss)
	if err != nil {
		t.Fatalf("CommitBatch: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for pos, r := range results {
		if r.Req.ID != pos {
			t.Fatalf("result %d is request %d, want ascending request-ID order", pos, r.Req.ID)
		}
		if r.Err != nil {
			t.Fatalf("member %d failed: %v", pos, r.Err)
		}
		if rr[r.Index] != r.Req {
			t.Fatalf("result %d Index %d does not point at its request", pos, r.Index)
		}
	}
	if got := adm.AdmittedCount(); got != 4 {
		t.Fatalf("admitted = %d, want 4", got)
	}
	if got := adm.LiveCount(); got != 4 {
		t.Fatalf("live = %d, want 4", got)
	}
}

func TestCommitBatchBumpsMutationVersionOnce(t *testing.T) {
	adm, reqs, sols := batchAdmitter(t, 6)
	before := adm.Network().MutationVersion()
	if _, err := adm.CommitBatch(reqs, sols); err != nil {
		t.Fatalf("CommitBatch: %v", err)
	}
	if got := adm.Network().MutationVersion(); got != before+1 {
		t.Fatalf("MutationVersion moved %d times for one batch, want 1", got-before)
	}
}

func TestCommitBatchPartialFailure(t *testing.T) {
	adm, reqs, sols := batchAdmitter(t, 3)

	// Sabotage the middle member: demand more bandwidth than any link
	// holds so its allocation is rejected during the batch. Requests
	// before and after it must still commit.
	reqs[1].BandwidthMbps = 1e12
	results, err := adm.CommitBatch(reqs, sols)
	if err != nil {
		t.Fatalf("CommitBatch: %v", err)
	}
	var failed, ok int
	for _, r := range results {
		if r.Err != nil {
			failed++
			if r.Req.ID != 1 {
				t.Fatalf("request %d failed, want only request 1", r.Req.ID)
			}
			if r.Sol != nil {
				t.Fatalf("failed member carries a solution")
			}
		} else {
			ok++
		}
	}
	if failed != 1 || ok != 2 {
		t.Fatalf("failed=%d ok=%d, want 1 and 2", failed, ok)
	}
	if got := adm.LiveCount(); got != 2 {
		t.Fatalf("live = %d, want 2", got)
	}
	// A failed member inside the batch must not leak allocations: the
	// lives of the two committed sessions account for everything.
	nw := adm.Network()
	var held float64
	for _, sol := range adm.Lives() {
		for _, amt := range AllocationFor(sol.Request, sol.Tree).Links {
			held += amt
		}
	}
	var missing float64
	for e := 0; e < nw.NumEdges(); e++ {
		missing += nw.BandwidthCap(e) - nw.ResidualBandwidth(e)
	}
	if diff := held - missing; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("allocated bandwidth %v != live sessions' hold %v", missing, held)
	}
}

func TestCommitBatchInputValidation(t *testing.T) {
	adm, reqs, sols := batchAdmitter(t, 2)
	if _, err := adm.CommitBatch(reqs, sols[:1]); err == nil {
		t.Fatal("mismatched slice lengths accepted")
	}
	if _, err := adm.CommitBatch([]*multicast.Request{reqs[0], nil}, sols); err == nil {
		t.Fatal("nil member accepted")
	}
	if res, err := adm.CommitBatch(nil, nil); err != nil || res != nil {
		t.Fatalf("empty batch: res=%v err=%v, want nil/nil", res, err)
	}
}
