package core

import (
	"fmt"
	"sort"

	"nfvmcast/internal/multicast"
)

// Epoch-batched commits. The admission engine collects a window of
// concurrently-planned requests and commits them back to back in one
// epoch: validation still happens per member (a member whose plan no
// longer fits the residuals fails alone), but the ordering is pinned
// to ascending request ID — the arrival order the deterministic
// drivers use — and the network's MutationVersion moves once for the
// whole epoch instead of once per member, so planner caches keyed on
// it see a single residual transition.

// BatchResult reports one member's outcome from CommitBatch, in the
// order the members were committed (ascending request ID).
type BatchResult struct {
	Index int                // position in the caller's reqs slice
	Req   *multicast.Request // the member's request
	Sol   *Solution          // realised solution, nil when Err != nil
	Err   error              // nil on commit, the Commit error otherwise
}

// CommitBatch commits a window of planned solutions in ascending
// request-ID order within one network mutation batch: every member is
// validated against the residuals left by the members before it, and
// MutationVersion is bumped exactly once if any member committed.
// reqs and sols are parallel slices. Failures are per-member — a
// member whose solution no longer fits is reported in its BatchResult
// and the rest of the batch proceeds; CommitBatch itself only errors
// on malformed input. Like Commit, it does not count failures as
// rejections (callers re-plan or CountRejection).
func (a *Admitter) CommitBatch(reqs []*multicast.Request, sols []*Solution) ([]BatchResult, error) {
	if len(reqs) != len(sols) {
		return nil, fmt.Errorf("core: CommitBatch with %d requests but %d solutions", len(reqs), len(sols))
	}
	if len(reqs) == 0 {
		return nil, nil
	}
	results := make([]BatchResult, len(reqs))
	order := make([]int, len(reqs))
	for i := range order {
		if reqs[i] == nil || sols[i] == nil {
			return nil, fmt.Errorf("core: CommitBatch member %d is nil", i)
		}
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		ix, iy := order[x], order[y]
		if reqs[ix].ID != reqs[iy].ID {
			return reqs[ix].ID < reqs[iy].ID
		}
		return ix < iy
	})

	a.nw.BeginMutationBatch()
	for pos, i := range order {
		sol, err := a.Commit(reqs[i], sols[i])
		results[pos] = BatchResult{Index: i, Req: reqs[i], Sol: sol, Err: err}
	}
	a.nw.EndMutationBatch()
	return results, nil
}
