// Package testutil holds the shared timing knobs of the test and
// harness suites. Before it existed, the scenario watchdog and the
// long-running integration/crash tests each hardcoded their own
// 2-minute budget, which flakes on slow CI runners (notably -race
// jobs): the remedy is one deadline source that every consumer reads,
// scaled by one environment knob.
package testutil

import (
	"context"
	"os"
	"strconv"
	"testing"
	"time"
)

// baseWatchdog is the default liveness budget for one engine or
// daemon call. It is a liveness bound, not a performance target: a
// single-writer engine call that takes anywhere near this long is
// wedged, not slow.
const baseWatchdog = 2 * time.Minute

// SlowEnv is the environment variable that scales every test deadline:
// a float multiplier (e.g. NFVMCAST_TEST_SLOW=3 triples the budgets on
// an emulated or heavily-shared CI runner). Unset, empty or
// unparsable values mean 1.
const SlowEnv = "NFVMCAST_TEST_SLOW"

// slowFactor reads SlowEnv, clamped to [1, 100].
func slowFactor() float64 {
	s := os.Getenv(SlowEnv)
	if s == "" {
		return 1
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f < 1 {
		return 1
	}
	if f > 100 {
		return 100
	}
	return f
}

// Watchdog returns the liveness budget for one engine call: the
// 2-minute base scaled by NFVMCAST_TEST_SLOW. The scenario harness and
// the daemon tests share this so CI slowness is tuned in one place.
func Watchdog() time.Duration {
	return time.Duration(float64(baseWatchdog) * slowFactor())
}

// WatchdogFor is Watchdog bounded by the test binary's own -timeout
// deadline (minus a grace period so the watchdog fires first and
// reports *what* wedged, instead of the panic-dump from the test
// runner). It never returns less than 10 seconds.
func WatchdogFor(t testing.TB) time.Duration {
	d := Watchdog()
	type deadliner interface{ Deadline() (time.Time, bool) }
	if td, ok := t.(deadliner); ok {
		if at, has := td.Deadline(); has {
			if remain := time.Until(at) - 10*time.Second; remain < d {
				d = remain
			}
		}
	}
	if d < 10*time.Second {
		d = 10 * time.Second
	}
	return d
}

// Context returns a context bounded by WatchdogFor(t), cancelled
// automatically at test cleanup.
func Context(t testing.TB) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), WatchdogFor(t))
	t.Cleanup(cancel)
	return ctx
}
