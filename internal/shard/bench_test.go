package shard_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"nfvmcast/internal/core"
	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/shard"
	"nfvmcast/internal/topology"
)

// BenchmarkShardThroughput measures end-to-end admission throughput
// (admitted sessions per second over a fixed offered stream) as one
// multi-tenant substrate is split across more shards.
//
// The substrate is fixed across every configuration: benchRegions
// GÉANT replicas ("regions") chained by inter-region links whose
// capacity sits below the smallest request size, so every residual
// work graph prunes the interconnects and planning is region-local —
// per-region tenancy over one operator fleet. Tenants are pinned to
// their region's shard via the router's Assign hook. With S shards
// each engine owns benchRegions/S regions; S=1 is the monolith, one
// engine planning every request against the whole fleet network.
//
// Region substrates use constant capacities and a fixed server
// placement, and each region replays an identical request stream at
// every shard count, so every configuration admits (nearly) the same
// sessions. What changes is the planning bill: the monolith pays per
// request for the whole fleet — residual work-graph construction over
// all regions' links and servers, shortest-path roots for every
// region's candidate servers, and commit epochs that invalidate the
// planner cache fleet-wide — while a shard pays only for its own
// slice. That per-request cost gap, not an admit-count artifact, is
// what the admits/sec scaling reports. The metric feeds the CI
// scaling gate (>= 2.5x at 4 shards vs 1) and results/BENCH_shard.json.
func BenchmarkShardThroughput(b *testing.B) {
	const (
		benchRegions     = 16   // GÉANT replicas in the fleet substrate
		requests         = 6400 // total offered stream (400 per region)
		tenantsPerRegion = 4
		interRegionMbps  = 10 // below min b_k (50): regions stay isolated
	)
	region := topology.GEANT()
	regionNodes := region.Graph.NumNodes()
	// One fixed server placement, replicated per region, so a region's
	// substrate is identical no matter which shard hosts it.
	regionServers := region.PickServers(rand.New(rand.NewSource(7)))

	// Constant capacities (degenerate ranges) for the same reason:
	// range-drawn capacities would depend on a region's edge offset
	// inside its shard's network and differ across shard counts.
	cfg := sdn.Config{
		BandwidthCapRangeMbps: [2]float64{4000, 4000},
		ComputeCapRangeMHz:    [2]float64{8000, 8000},
		LinkUnitCost:          [2]float64{1.0, 1.0},
		ServerUnitCost:        [2]float64{0.3, 0.3},
	}

	// buildShard assembles one shard's network: the union of regions
	// [lo, hi) chained with thin inter-region links.
	buildShard := func(lo, hi int) (*sdn.Network, core.Planner, error) {
		count := hi - lo
		g := graph.New(count * regionNodes)
		for p := 0; p < count; p++ {
			off := graph.NodeID(p * regionNodes)
			for i := 0; i < region.Graph.NumEdges(); i++ {
				e := region.Graph.Edge(graph.EdgeID(i))
				if _, err := g.AddEdge(e.U+off, e.V+off, e.W); err != nil {
					return nil, nil, err
				}
			}
		}
		var chain []graph.EdgeID
		for p := 0; p < count-1; p++ {
			e, err := g.AddEdge(graph.NodeID(p*regionNodes), graph.NodeID((p+1)*regionNodes), 1)
			if err != nil {
				return nil, nil, err
			}
			chain = append(chain, e)
		}
		servers := make([]graph.NodeID, 0, count*len(regionServers))
		for p := 0; p < count; p++ {
			for _, v := range regionServers {
				servers = append(servers, v+graph.NodeID(p*regionNodes))
			}
		}
		topo := &topology.Topology{
			Name:    fmt.Sprintf("geant-regions-%d-%d", lo, hi),
			Graph:   g,
			Servers: len(servers),
		}
		nw, err := sdn.NewNetworkWithServers(topo, cfg, servers, rand.New(rand.NewSource(int64(lo))))
		if err != nil {
			return nil, nil, err
		}
		for _, e := range chain {
			if err := nw.SetBandwidthCap(e, interRegionMbps); err != nil {
				return nil, nil, err
			}
		}
		model := core.DefaultCostModel(nw.NumNodes())
		// σ_e = β^0.4 − 1 marks links overloaded past ~40% utilisation
		// at every network size — the paper's admission-control regime,
		// applied at the same operating point to monolith and shards.
		model.SigmaE = math.Pow(model.Beta, 0.4) - 1
		p, err := core.NewCPPlanner(model)
		return nw, p, err
	}

	// Per-region request streams, identical at every shard count.
	perRegion := requests / benchRegions
	streams := make([][]*multicast.Request, benchRegions)
	for i := range streams {
		gen, err := multicast.NewGenerator(regionNodes, multicast.OnlineGeneratorConfig(), 63+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		streams[i], err = gen.Batch(perRegion)
		if err != nil {
			b.Fatal(err)
		}
	}

	for _, shardCount := range []int{1, 2, 4, 8} {
		regionsPerShard := benchRegions / shardCount
		ids := make([]string, shardCount)
		for s := range ids {
			ids[s] = fmt.Sprintf("s%d", s)
		}
		tenantOf := func(region, j int) string {
			return fmt.Sprintf("region%02d-t%d", region, j%tenantsPerRegion)
		}
		tenantShard := make(map[string]string)
		for i := 0; i < benchRegions; i++ {
			for j := 0; j < tenantsPerRegion; j++ {
				tenantShard[tenantOf(i, j)] = ids[i/regionsPerShard]
			}
		}

		// The offered stream in shard-local coordinates: region i lands
		// at node offset (i mod regions-per-shard)·|region| inside its
		// shard's network. Arrivals interleave round-robin across
		// regions with globally unique ascending IDs.
		type arrival struct {
			tenant string
			req    *multicast.Request
		}
		stream := make([]arrival, 0, perRegion*benchRegions)
		for k := 0; k < perRegion; k++ {
			for i := 0; i < benchRegions; i++ {
				src := streams[i][k]
				off := graph.NodeID((i % regionsPerShard) * regionNodes)
				cp := *src
				cp.ID = len(stream)
				cp.Source = src.Source + off
				cp.Destinations = make([]graph.NodeID, len(src.Destinations))
				for d, v := range src.Destinations {
					cp.Destinations[d] = v + off
				}
				stream = append(stream, arrival{tenant: tenantOf(i, k), req: &cp})
			}
		}

		b.Run(fmt.Sprintf("shards=%d", shardCount), func(b *testing.B) {
			var admitted, offered int
			b.ReportAllocs()
			for it := 0; it < b.N; it++ {
				b.StopTimer()
				r, err := shard.New(shard.Options{
					Shards: ids,
					Build: func(id string) (*sdn.Network, core.Planner, error) {
						var s int
						if _, serr := fmt.Sscanf(id, "s%d", &s); serr != nil {
							return nil, nil, serr
						}
						return buildShard(s*regionsPerShard, (s+1)*regionsPerShard)
					},
					Assign: func(tenant string) string { return tenantShard[tenant] },
				})
				if err != nil {
					b.Fatal(err)
				}
				// Fresh request IDs per iteration: the router pins
				// sessions by ID.
				reqs := make([]*multicast.Request, len(stream))
				for j, a := range stream {
					cp := *a.req
					cp.ID = it*len(stream) + j
					reqs[j] = &cp
				}
				b.StartTimer()
				// Sequential arrival order, as in the paper's online
				// model: request k is decided before k+1 arrives.
				for j, a := range stream {
					if _, aerr := r.Admit(a.tenant, reqs[j]); aerr == nil {
						admitted++
					}
				}
				b.StopTimer()
				offered += len(stream)
				r.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(admitted)/b.Elapsed().Seconds(), "admits/sec")
			b.ReportMetric(float64(admitted)/float64(b.N), "admitted/run")
			b.ReportMetric(float64(offered)/float64(b.N), "offered/run")
		})
	}
}
