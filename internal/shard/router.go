// Package shard routes multi-tenant admission across N independent
// single-writer engines. One engine per shard is the scaling model the
// ROADMAP's production north-star calls for: a tenant's requests,
// departures and maintenance always land on the one engine that owns
// the tenant's slice of substrate, so every engine keeps the
// single-writer determinism and recovery machinery of
// internal/engine unchanged, and shards never contend on each other's
// networks. Tenants are mapped to shards with rendezvous (highest-
// random-weight) hashing over the currently active shards, which makes
// shard sets rebalance-safe: draining a shard re-homes only that
// shard's tenants, every other tenant keeps its engine.
//
// Sessions, however, are pinned: a Release must free resources on the
// shard that admitted the session even if its tenant has been re-homed
// since, so the router keeps a request → owning-shard map and drains
// departures through it rather than through the tenant hash.
//
// Determinism stays shard-local. Each shard appends its admission
// decisions to a transcript hashed incrementally (SHA-256); a
// sequentially-driven router reproduces byte-identical per-shard
// fingerprints at every engine worker count and batch window (the
// oracle test pins workers {1,4,8} × windows {1,16,64}), and Report
// fans the per-shard fingerprints into one merged digest in shard-ID
// order. There is no cross-shard ordering claim — two shards' engines
// interleave freely — which is exactly why the fingerprints are kept
// per shard.
package shard

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"

	"nfvmcast/internal/core"
	"nfvmcast/internal/engine"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/obs"
	recov "nfvmcast/internal/recover"
	"nfvmcast/internal/sdn"
)

// Sentinel errors of the routing layer. Admission rejections from the
// engines pass through unchanged (they satisfy core.IsRejection).
var (
	// ErrNoActiveShards is returned when every shard is draining or
	// stopped and a new admission has nowhere to route.
	ErrNoActiveShards = errors.New("shard: no active shards")
	// ErrUnknownShard is returned for shard IDs the router does not own.
	ErrUnknownShard = errors.New("shard: unknown shard")
	// ErrUnknownSession is returned by Release for request IDs no shard
	// admitted (or that already departed).
	ErrUnknownSession = errors.New("shard: unknown session")
	// ErrShardStopped is returned when an operation targets a stopped
	// shard.
	ErrShardStopped = errors.New("shard: shard is stopped")
	// ErrShardUnavailable is returned when an Assign placement pins a
	// tenant to a shard that is draining or stopped. Pinned tenants
	// cannot re-home (their substrate lives on exactly one shard), so
	// the router refuses rather than silently routing elsewhere.
	ErrShardUnavailable = errors.New("shard: pinned shard unavailable")
	// ErrNotDrained is returned by Stop while the shard still holds
	// live sessions.
	ErrNotDrained = errors.New("shard: shard still holds live sessions")
)

// State is a shard's lifecycle position.
type State int

const (
	// Active shards receive newly-routed tenants.
	Active State = iota
	// Draining shards accept no new admissions — their tenants re-home
	// to the remaining active shards — but still serve departures and
	// maintenance for the sessions they hold.
	Draining
	// Stopped shards have closed their engine.
	Stopped
)

// String names the state for reports and listings.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Draining:
		return "draining"
	case Stopped:
		return "stopped"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Builder constructs one shard's substrate: its network and planner.
// Called once per shard ID at router construction; each shard must get
// its own network (engines never share one).
type Builder func(shardID string) (*sdn.Network, core.Planner, error)

// Options configures a Router.
type Options struct {
	// Shards lists the shard IDs, each owning one engine. IDs must be
	// unique and non-empty; report order is ascending ID.
	Shards []string
	// Build constructs each shard's network and planner.
	Build Builder
	// Workers is each engine's planning concurrency (see
	// engine.Options.Workers).
	Workers int
	// BatchWindow is each engine's commit-epoch window (see
	// engine.Options.BatchWindow).
	BatchWindow int
	// Recovery enables each engine's self-healing ladder.
	Recovery *recov.Policy
	// Registry, when set, registers one AdmissionObs per shard with a
	// shard label, all on this registry.
	Registry *obs.Registry
	// Policy is the policy label for the per-shard instruments
	// (defaults to the planner's Name when empty).
	Policy string
	// Events receives every shard's admission events, each stamped
	// with its shard ID.
	Events obs.Sink
	// SampleLatency enables the per-shard latency histograms.
	SampleLatency bool
	// Journal, when set, attaches one durability journal per shard
	// (engine.Options.Journal): the factory is called once per shard
	// ID at construction, and each shard's engine appends its outcomes
	// to its own write-ahead log (internal/wal keeps one log directory
	// per shard). Returning a nil journal leaves that shard in-memory.
	Journal func(shardID string) (engine.Journal, error)
	// Assign, when set, overrides rendezvous placement: it maps a
	// tenant to the shard ID that must own it (data-locality pinning —
	// the tenant's substrate exists only on that shard). Returning ""
	// falls back to rendezvous hashing for that tenant. Assigned IDs
	// must name a configured shard (ErrUnknownShard otherwise), and the
	// shard must be Active (ErrShardUnavailable otherwise): pinned
	// tenants never re-home on drain. The function must be pure and
	// stable — the router may call it on any routing decision.
	Assign func(tenant string) string
}

// shardState is one shard: its engine, lifecycle position and
// transcript hash. The transcript mutex serialises decision recording;
// engines handle their own concurrency.
type shardState struct {
	id  string
	eng *engine.Engine
	nw  *sdn.Network

	mu       sync.Mutex
	state    State
	digest   hash.Hash
	lines    int
	admitted int
	rejected int
	departed int
}

// record appends one transcript line to the shard's running digest.
func (s *shardState) record(line string) {
	s.digest.Write([]byte(line))
	s.digest.Write([]byte{'\n'})
	s.lines++
}

// Router fans Admit/Release/Apply across the shards by tenant key.
// All methods are safe for concurrent use.
type Router struct {
	mu     sync.RWMutex
	shards map[string]*shardState
	order  []string       // ascending shard IDs
	owner  map[int]string // request ID -> admitting shard
	assign func(tenant string) string
}

// New builds a router with one engine per shard ID.
func New(opts Options) (*Router, error) {
	if len(opts.Shards) == 0 {
		return nil, fmt.Errorf("shard: at least one shard required")
	}
	if opts.Build == nil {
		return nil, fmt.Errorf("shard: Options.Build is required")
	}
	r := &Router{
		shards: make(map[string]*shardState, len(opts.Shards)),
		owner:  make(map[int]string),
		assign: opts.Assign,
	}
	for _, id := range opts.Shards {
		if id == "" {
			return nil, fmt.Errorf("shard: empty shard ID")
		}
		if _, dup := r.shards[id]; dup {
			return nil, fmt.Errorf("shard: duplicate shard ID %q", id)
		}
		nw, planner, err := opts.Build(id)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("shard %q: %w", id, err)
		}
		var aobs *obs.AdmissionObs
		if opts.Registry != nil {
			policy := opts.Policy
			if policy == "" {
				policy = planner.Name()
			}
			aobs = obs.NewAdmissionObs(opts.Registry, policy, obs.AdmissionObsOptions{
				Events:        opts.Events,
				SampleLatency: opts.SampleLatency,
				Shard:         id,
			})
		}
		var journal engine.Journal
		if opts.Journal != nil {
			journal, err = opts.Journal(id)
			if err != nil {
				r.Close()
				return nil, fmt.Errorf("shard %q: journal: %w", id, err)
			}
		}
		eng := engine.New(nw, planner, engine.Options{
			Workers:     opts.Workers,
			Obs:         aobs,
			Recovery:    opts.Recovery,
			BatchWindow: opts.BatchWindow,
			Journal:     journal,
		})
		r.shards[id] = &shardState{id: id, eng: eng, nw: nw, digest: sha256.New()}
		r.order = append(r.order, id)
	}
	sort.Strings(r.order)
	return r, nil
}

// rendezvous scores (tenant, shard) pairs; the active shard with the
// highest score owns the tenant. FNV-1a over "tenant\x00shard" is
// stable across runs and processes.
func rendezvous(tenant, shardID string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(tenant))
	h.Write([]byte{0})
	h.Write([]byte(shardID))
	return h.Sum64()
}

// route picks the owning shard for tenant: the Assign pin when one is
// configured and answers, rendezvous over the active shards otherwise.
// Caller holds at least the read lock.
func (r *Router) route(tenant string) (*shardState, error) {
	if r.assign != nil {
		if id := r.assign(tenant); id != "" {
			s, ok := r.shards[id]
			if !ok {
				return nil, fmt.Errorf("%w: %q (assigned to tenant %q)",
					ErrUnknownShard, id, tenant)
			}
			if s.state != Active {
				return nil, fmt.Errorf("%w: %s is %s (tenant %q)",
					ErrShardUnavailable, id, s.state, tenant)
			}
			return s, nil
		}
	}
	var best *shardState
	var bestScore uint64
	for _, id := range r.order {
		s := r.shards[id]
		if s.state != Active {
			continue
		}
		score := rendezvous(tenant, id)
		// Ties (astronomically unlikely) break to the smaller ID via
		// the sorted iteration order.
		if best == nil || score > bestScore {
			best, bestScore = s, score
		}
	}
	if best == nil {
		return nil, ErrNoActiveShards
	}
	return best, nil
}

// ShardFor reports which shard tenant's new admissions currently route
// to.
func (r *Router) ShardFor(tenant string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, err := r.route(tenant)
	if err != nil {
		return "", err
	}
	return s.id, nil
}

// Admit routes req to tenant's shard and admits it there. On success
// the session is pinned to that shard for its lifetime (Release finds
// it even after a rebalance). Request IDs must be unique across
// tenants — they key the session-owner map.
func (r *Router) Admit(tenant string, req *multicast.Request) (*core.Solution, error) {
	return r.AdmitContext(context.Background(), tenant, req)
}

// AdmitContext is Admit with cancellation (see engine.AdmitContext).
// Canceled admissions record no transcript line and no ownership.
func (r *Router) AdmitContext(ctx context.Context, tenant string, req *multicast.Request) (*core.Solution, error) {
	r.mu.RLock()
	s, err := r.route(tenant)
	r.mu.RUnlock()
	if err != nil {
		return nil, err
	}

	sol, aerr := s.eng.AdmitContext(ctx, req)
	if core.IsCanceled(aerr) {
		return nil, aerr
	}
	if aerr == nil {
		r.mu.Lock()
		r.owner[req.ID] = s.id
		r.mu.Unlock()
	}

	s.mu.Lock()
	if aerr == nil {
		s.admitted++
		s.record(admitLine(tenant, req.ID, sol))
	} else {
		s.rejected++
		s.record(fmt.Sprintf("admit tenant=%s req=%d reject reason=%s",
			tenant, req.ID, core.RejectReason(aerr)))
	}
	s.mu.Unlock()
	return sol, aerr
}

// admitLine renders an admitted decision with exact float formatting,
// so equal decisions produce byte-identical transcripts.
func admitLine(tenant string, reqID int, sol *core.Solution) string {
	srv := make([]string, len(sol.Servers))
	for i, v := range sol.Servers {
		srv[i] = strconv.Itoa(int(v))
	}
	return fmt.Sprintf("admit tenant=%s req=%d ok cost=%s servers=%s",
		tenant, reqID,
		strconv.FormatFloat(sol.OperationalCost, 'g', -1, 64),
		strings.Join(srv, ","))
}

// Release departs the session with reqID on the shard that admitted
// it, regardless of where its tenant routes today.
func (r *Router) Release(reqID int) (*core.Solution, error) {
	r.mu.RLock()
	id, ok := r.owner[reqID]
	s := r.shards[id]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: request %d", ErrUnknownSession, reqID)
	}
	if s.stateLocked() == Stopped {
		// Ownership is kept: the session's resources are gone with the
		// engine, but the caller can still see who owned it.
		return nil, fmt.Errorf("%w: %s (request %d)", ErrShardStopped, id, reqID)
	}
	sol, err := s.eng.Depart(reqID)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	delete(r.owner, reqID)
	r.mu.Unlock()
	s.mu.Lock()
	s.departed++
	s.record(fmt.Sprintf("depart req=%d cost=%s",
		reqID, strconv.FormatFloat(sol.OperationalCost, 'g', -1, 64)))
	s.mu.Unlock()
	return sol, nil
}

// Owner reports which shard admitted reqID ("" for unknown or
// already-released sessions).
func (r *Router) Owner(reqID int) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.owner[reqID]
}

func (s *shardState) stateLocked() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Apply routes a typed mutation batch to tenant's shard (see
// engine.Apply): all-or-nothing against that one shard's network,
// every other shard untouched.
func (r *Router) Apply(tenant string, muts ...engine.Mutation) error {
	r.mu.RLock()
	s, err := r.route(tenant)
	r.mu.RUnlock()
	if err != nil {
		return err
	}
	return s.eng.Apply(muts...)
}

// ApplyShard routes a mutation batch to a shard by ID — maintenance
// that targets substrate rather than a tenant.
func (r *Router) ApplyShard(shardID string, muts ...engine.Mutation) error {
	s, err := r.shard(shardID)
	if err != nil {
		return err
	}
	if s.stateLocked() == Stopped {
		return fmt.Errorf("%w: %s", ErrShardStopped, shardID)
	}
	return s.eng.Apply(muts...)
}

// ApplyAll applies one mutation batch to every non-stopped shard, in
// shard-ID order (fleet-wide maintenance: a region failing in every
// tenant's view). The first error aborts the sweep.
func (r *Router) ApplyAll(muts ...engine.Mutation) error {
	for _, id := range r.ShardIDs() {
		s, err := r.shard(id)
		if err != nil {
			return err
		}
		if s.stateLocked() == Stopped {
			continue
		}
		if err := s.eng.Apply(muts...); err != nil {
			return fmt.Errorf("shard %s: %w", id, err)
		}
	}
	return nil
}

// shard resolves an ID.
func (r *Router) shard(id string) (*shardState, error) {
	r.mu.RLock()
	s, ok := r.shards[id]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownShard, id)
	}
	return s, nil
}

// Engine exposes a shard's engine (read-mostly: scenario invariants,
// tests). Returns nil for unknown IDs.
func (r *Router) Engine(id string) *engine.Engine {
	s, err := r.shard(id)
	if err != nil {
		return nil
	}
	return s.eng
}

// Network exposes a shard's network. Reads are safe while no operation
// is in flight on that shard (the same contract as engine.New).
func (r *Router) Network(id string) *sdn.Network {
	s, err := r.shard(id)
	if err != nil {
		return nil
	}
	return s.nw
}

// AdoptSessions re-pins every session currently live on shard id to
// it in the session-owner map — the boot-recovery hook: after each
// shard's write-ahead log has been replayed into its engine
// (wal.Log.Recover), the router's request→shard ownership is rebuilt
// from the recovered live tables, so Release keeps finding sessions
// admitted before the crash. Returns how many sessions were adopted.
// Request IDs must be unique across shards (the admission-time
// invariant); a duplicate across two adopted shards is an error.
func (r *Router) AdoptSessions(id string) (int, error) {
	s, err := r.shard(id)
	if err != nil {
		return 0, err
	}
	lives := s.eng.Lives()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, sol := range lives {
		if prev, taken := r.owner[sol.Request.ID]; taken && prev != id {
			return 0, fmt.Errorf("shard: request %d recovered live on both %s and %s",
				sol.Request.ID, prev, id)
		}
	}
	for _, sol := range lives {
		r.owner[sol.Request.ID] = id
	}
	return len(lives), nil
}

// ShardIDs returns every shard ID ascending, whatever its state.
func (r *Router) ShardIDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// ShardState reports a shard's lifecycle position.
func (r *Router) ShardState(id string) (State, error) {
	s, err := r.shard(id)
	if err != nil {
		return Stopped, err
	}
	return s.stateLocked(), nil
}

// Drain moves a shard out of the admission rotation: its tenants
// re-home to the remaining active shards on their next admission,
// while its live sessions stay put and still depart through Release.
func (r *Router) Drain(id string) error {
	return r.transition(id, Draining, func(cur State) error {
		if cur == Stopped {
			return fmt.Errorf("%w: %s", ErrShardStopped, id)
		}
		return nil
	})
}

// Activate returns a draining shard to the admission rotation, undoing
// Drain (tenants re-home back on their next admission).
func (r *Router) Activate(id string) error {
	return r.transition(id, Active, func(cur State) error {
		if cur == Stopped {
			return fmt.Errorf("%w: %s", ErrShardStopped, id)
		}
		return nil
	})
}

// Stop closes a drained shard's engine. It refuses while live sessions
// remain (drain first, wait for departures or shed via recovery);
// Close force-stops everything instead.
func (r *Router) Stop(id string) error {
	s, err := r.shard(id)
	if err != nil {
		return err
	}
	if s.stateLocked() == Stopped {
		return nil
	}
	if lives := s.eng.LiveCount(); lives > 0 {
		return fmt.Errorf("%w: %s holds %d", ErrNotDrained, id, lives)
	}
	if err := r.transition(id, Stopped, func(State) error { return nil }); err != nil {
		return err
	}
	s.eng.Close()
	return nil
}

// transition applies a guarded state change.
func (r *Router) transition(id string, to State, guard func(cur State) error) error {
	s, err := r.shard(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := guard(s.state); err != nil {
		return err
	}
	s.state = to
	return nil
}

// Close stops every shard's engine, live sessions or not. Idempotent.
func (r *Router) Close() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, id := range r.order {
		s := r.shards[id]
		s.mu.Lock()
		stopped := s.state == Stopped
		s.state = Stopped
		s.mu.Unlock()
		if !stopped {
			s.eng.Close()
		}
	}
}
