package shard_test

import (
	"errors"
	"hash/fnv"
	"math"
	"math/rand"
	"testing"

	"nfvmcast/internal/core"
	"nfvmcast/internal/engine"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/shard"
	"nfvmcast/internal/topology"
)

// geantBuilder gives every shard its own GÉANT replica with capacities
// seeded from the shard ID, so shard substrates are deterministic per
// ID and independent of shard count.
func geantBuilder() shard.Builder {
	return func(id string) (*sdn.Network, core.Planner, error) {
		h := fnv.New64a()
		h.Write([]byte(id))
		seed := int64(h.Sum64() % (1 << 32))
		nw, err := sdn.NewNetwork(topology.GEANT(), sdn.DefaultConfig(),
			rand.New(rand.NewSource(seed)))
		if err != nil {
			return nil, nil, err
		}
		p, err := core.NewCPPlanner(core.DefaultCostModel(nw.NumNodes()))
		return nw, p, err
	}
}

func testRouter(t *testing.T, shards []string, opts ...func(*shard.Options)) *shard.Router {
	t.Helper()
	o := shard.Options{Shards: shards, Build: geantBuilder()}
	for _, fn := range opts {
		fn(&o)
	}
	r, err := shard.New(o)
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	t.Cleanup(r.Close)
	return r
}

// testRequests draws count deterministic requests over GÉANT with
// globally unique IDs.
func testRequests(t *testing.T, count int, seed int64) []*multicast.Request {
	t.Helper()
	n := topology.GEANT().Graph.NumNodes()
	gen, err := multicast.NewGenerator(n, multicast.OnlineGeneratorConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := gen.Batch(count)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestRouterValidation(t *testing.T) {
	if _, err := shard.New(shard.Options{Build: geantBuilder()}); err == nil {
		t.Fatal("no shards accepted")
	}
	if _, err := shard.New(shard.Options{Shards: []string{"a"}}); err == nil {
		t.Fatal("nil builder accepted")
	}
	if _, err := shard.New(shard.Options{Shards: []string{"a", "a"}, Build: geantBuilder()}); err == nil {
		t.Fatal("duplicate shard ID accepted")
	}
	if _, err := shard.New(shard.Options{Shards: []string{""}, Build: geantBuilder()}); err == nil {
		t.Fatal("empty shard ID accepted")
	}
}

func TestRouterRoutesByTenantConsistently(t *testing.T) {
	r := testRouter(t, []string{"s0", "s1", "s2", "s3"})
	tenants := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}

	homes := make(map[string]string)
	spread := make(map[string]bool)
	for _, tn := range tenants {
		id, err := r.ShardFor(tn)
		if err != nil {
			t.Fatalf("ShardFor(%s): %v", tn, err)
		}
		homes[tn] = id
		spread[id] = true
		// Stable across calls.
		for i := 0; i < 3; i++ {
			again, _ := r.ShardFor(tn)
			if again != id {
				t.Fatalf("ShardFor(%s) flapped %s -> %s", tn, id, again)
			}
		}
	}
	if len(spread) < 2 {
		t.Fatalf("6 tenants all routed to one shard; rendezvous spread broken: %v", homes)
	}

	// Admissions land on the reported home shard.
	reqs := testRequests(t, len(tenants), 5)
	for i, tn := range tenants {
		if _, err := r.Admit(tn, reqs[i]); err != nil {
			t.Fatalf("admit %s: %v", tn, err)
		}
		if owner := r.Owner(reqs[i].ID); owner != homes[tn] {
			t.Fatalf("request %d owned by %s, tenant %s homes on %s",
				reqs[i].ID, owner, tn, homes[tn])
		}
	}
	rep := r.Report()
	if rep.Admitted != len(tenants) || rep.Live != len(tenants) {
		t.Fatalf("report admitted=%d live=%d, want %d/%d",
			rep.Admitted, rep.Live, len(tenants), len(tenants))
	}
}

func TestRouterDrainRehomesOnlyDrainedTenants(t *testing.T) {
	r := testRouter(t, []string{"s0", "s1", "s2", "s3"})
	tenants := []string{"alpha", "bravo", "charlie", "delta", "echo",
		"foxtrot", "golf", "hotel", "india", "juliet"}
	before := make(map[string]string)
	for _, tn := range tenants {
		before[tn], _ = r.ShardFor(tn)
	}

	// Pick a shard that homes at least one tenant and drain it.
	drained := before[tenants[0]]
	if err := r.Drain(drained); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, tn := range tenants {
		after, err := r.ShardFor(tn)
		if err != nil {
			t.Fatalf("ShardFor(%s): %v", tn, err)
		}
		if before[tn] == drained {
			if after == drained {
				t.Fatalf("tenant %s still routes to drained shard %s", tn, drained)
			}
		} else if after != before[tn] {
			t.Fatalf("tenant %s re-homed %s -> %s though its shard was not drained (rendezvous must move only the drained shard's tenants)",
				tn, before[tn], after)
		}
	}

	// Reactivation restores the original homes exactly.
	if err := r.Activate(drained); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	for _, tn := range tenants {
		if after, _ := r.ShardFor(tn); after != before[tn] {
			t.Fatalf("tenant %s home %s != original %s after reactivation", tn, after, before[tn])
		}
	}
}

func TestRouterReleaseFindsSessionAfterRebalance(t *testing.T) {
	r := testRouter(t, []string{"s0", "s1"})
	req := testRequests(t, 1, 9)[0]
	const tenant = "alpha"

	home, _ := r.ShardFor(tenant)
	if _, err := r.Admit(tenant, req); err != nil {
		t.Fatalf("admit: %v", err)
	}
	// Re-home the tenant, then release: the depart must land on the
	// admitting shard, not the tenant's new home.
	if err := r.Drain(home); err != nil {
		t.Fatal(err)
	}
	newHome, _ := r.ShardFor(tenant)
	if newHome == home {
		t.Fatalf("tenant still homes on drained shard")
	}
	sol, err := r.Release(req.ID)
	if err != nil {
		t.Fatalf("Release after rebalance: %v", err)
	}
	if sol == nil {
		t.Fatal("Release returned no solution")
	}
	if eng := r.Engine(home); eng.LiveCount() != 0 {
		t.Fatalf("admitting shard still holds %d sessions", eng.LiveCount())
	}
	if _, err := r.Release(req.ID); !errors.Is(err, shard.ErrUnknownSession) {
		t.Fatalf("double release: %v, want ErrUnknownSession", err)
	}
}

func TestRouterLifecycle(t *testing.T) {
	r := testRouter(t, []string{"s0", "s1"})
	req := testRequests(t, 1, 3)[0]
	const tenant = "alpha"
	home, _ := r.ShardFor(tenant)
	if _, err := r.Admit(tenant, req); err != nil {
		t.Fatal(err)
	}

	// Stop refuses while sessions are live.
	if err := r.Stop(home); !errors.Is(err, shard.ErrNotDrained) {
		t.Fatalf("Stop with live sessions: %v, want ErrNotDrained", err)
	}
	if _, err := r.Release(req.ID); err != nil {
		t.Fatal(err)
	}
	if err := r.Stop(home); err != nil {
		t.Fatalf("Stop after drain: %v", err)
	}
	if st, _ := r.ShardState(home); st != shard.Stopped {
		t.Fatalf("state = %v, want stopped", st)
	}
	// Idempotent; transitions out of stopped are refused.
	if err := r.Stop(home); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
	if err := r.Activate(home); !errors.Is(err, shard.ErrShardStopped) {
		t.Fatalf("Activate stopped shard: %v, want ErrShardStopped", err)
	}

	// Admissions route around the stopped shard.
	req2 := testRequests(t, 2, 4)[1]
	if _, err := r.Admit(tenant, req2); err != nil {
		t.Fatalf("admit after stop: %v", err)
	}
	if owner := r.Owner(req2.ID); owner == home {
		t.Fatalf("admission routed to stopped shard %s", home)
	}

	// Draining everything leaves nowhere to admit.
	for _, id := range r.ShardIDs() {
		if st, _ := r.ShardState(id); st == shard.Active {
			if err := r.Drain(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	req3 := testRequests(t, 3, 4)[2]
	if _, err := r.Admit(tenant, req3); !errors.Is(err, shard.ErrNoActiveShards) {
		t.Fatalf("admit with all shards drained: %v, want ErrNoActiveShards", err)
	}
	if _, err := r.ShardFor(tenant); !errors.Is(err, shard.ErrNoActiveShards) {
		t.Fatalf("ShardFor with all shards drained: %v, want ErrNoActiveShards", err)
	}
}

// networkSignature summarises a shard network's observable state:
// versions plus residual sums — enough that any mutation moves it.
func networkSignature(nw *sdn.Network) [4]float64 {
	var linkSum, srvSum float64
	for e := 0; e < nw.NumEdges(); e++ {
		linkSum += nw.ResidualBandwidth(e)
	}
	for _, v := range nw.Servers() {
		srvSum += nw.ResidualCompute(v)
	}
	return [4]float64{float64(nw.MutationVersion()), float64(nw.StructureVersion()), linkSum, srvSum}
}

// TestRouterCrossShardIsolation pins the tenant-isolation contract the
// fuzz corpus seeds cross-shard batches for: a malformed Apply batch
// routed to tenant A's shard must leave tenant B's shard bit-identical
// — no version bump, no residual drift.
func TestRouterCrossShardIsolation(t *testing.T) {
	r := testRouter(t, []string{"s0", "s1", "s2", "s3"})

	// Find two tenants on different shards.
	tenA, tenB := "alpha", ""
	homeA, _ := r.ShardFor(tenA)
	for _, tn := range []string{"bravo", "charlie", "delta", "echo", "foxtrot"} {
		if h, _ := r.ShardFor(tn); h != homeA {
			tenB, _ = tn, h
			break
		}
	}
	if tenB == "" {
		t.Fatal("all probe tenants routed to one shard")
	}
	homeB, _ := r.ShardFor(tenB)

	// Give B a live session so its state is non-trivial.
	req := testRequests(t, 1, 21)[0]
	if _, err := r.Admit(tenB, req); err != nil {
		t.Fatal(err)
	}
	sigB := networkSignature(r.Network(homeB))

	// A malformed batch for tenant A: second mutation is invalid, so
	// the whole batch must be rejected atomically...
	err := r.Apply(tenA,
		engine.Mutation{Kind: engine.LinkState, ID: 0, Up: false},
		engine.Mutation{Kind: engine.LinkCapacity, ID: 1, Capacity: math.NaN()},
	)
	var malformed *engine.MalformedMutationError
	if !errors.As(err, &malformed) {
		t.Fatalf("malformed batch: %v, want MalformedMutationError", err)
	}
	// ...leaving A unchanged too, but the isolation claim is about B.
	if got := networkSignature(r.Network(homeB)); got != sigB {
		t.Fatalf("tenant B's shard %s drifted under tenant A's malformed batch: %v -> %v",
			homeB, sigB, got)
	}

	// A well-formed batch for A touches only A's shard.
	if err := r.Apply(tenA, engine.Mutation{Kind: engine.LinkState, ID: 0, Up: false}); err != nil {
		t.Fatalf("valid batch: %v", err)
	}
	if got := networkSignature(r.Network(homeB)); got != sigB {
		t.Fatalf("tenant B's shard %s drifted under tenant A's valid batch", homeB)
	}
	if r.Network(homeA).LinkUp(0) {
		t.Fatal("tenant A's mutation did not apply")
	}
}

func TestRouterApplyAll(t *testing.T) {
	r := testRouter(t, []string{"s0", "s1", "s2"})
	if err := r.Stop("s2"); err != nil {
		t.Fatal(err)
	}
	before := map[string]uint64{}
	for _, id := range []string{"s0", "s1"} {
		before[id] = r.Network(id).StructureVersion()
	}
	if err := r.ApplyAll(engine.Mutation{Kind: engine.LinkState, ID: 3, Up: false}); err != nil {
		t.Fatalf("ApplyAll: %v", err)
	}
	for _, id := range []string{"s0", "s1"} {
		if got := r.Network(id).StructureVersion(); got != before[id]+1 {
			t.Fatalf("shard %s structure version %d, want %d", id, got, before[id]+1)
		}
		if r.Network(id).LinkUp(3) {
			t.Fatalf("shard %s link 3 still up", id)
		}
	}
}

func TestRouterUnknownTargets(t *testing.T) {
	r := testRouter(t, []string{"s0"})
	if _, err := r.Release(404); !errors.Is(err, shard.ErrUnknownSession) {
		t.Fatalf("Release(404): %v", err)
	}
	if err := r.Drain("nope"); !errors.Is(err, shard.ErrUnknownShard) {
		t.Fatalf("Drain(nope): %v", err)
	}
	if err := r.ApplyShard("nope"); !errors.Is(err, shard.ErrUnknownShard) {
		t.Fatalf("ApplyShard(nope): %v", err)
	}
	if r.Engine("nope") != nil || r.Network("nope") != nil {
		t.Fatal("accessors returned non-nil for unknown shard")
	}
}

// TestRouterAssignOverride pins the Assign placement hook: assigned
// tenants route to their pinned shard regardless of the rendezvous
// hash, unassigned tenants ("" from the hook) fall back to rendezvous,
// and pins to unknown or non-active shards fail loudly instead of
// silently re-homing.
func TestRouterAssignOverride(t *testing.T) {
	shards := []string{"s0", "s1", "s2"}
	pins := map[string]string{
		"pinned-a": "s2",
		"pinned-b": "s0",
		"bogus":    "nope",
	}
	r := testRouter(t, shards, func(o *shard.Options) {
		o.Assign = func(tenant string) string { return pins[tenant] }
	})

	for tenant, want := range map[string]string{"pinned-a": "s2", "pinned-b": "s0"} {
		got, err := r.ShardFor(tenant)
		if err != nil {
			t.Fatalf("ShardFor(%s): %v", tenant, err)
		}
		if got != want {
			t.Fatalf("ShardFor(%s) = %s, want pinned %s", tenant, got, want)
		}
	}

	// Unpinned tenants agree with a pure-rendezvous router.
	plain := testRouter(t, shards)
	for _, tenant := range []string{"free-1", "free-2", "free-3"} {
		got, err := r.ShardFor(tenant)
		if err != nil {
			t.Fatal(err)
		}
		want, err := plain.ShardFor(tenant)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("unpinned tenant %s routed to %s, rendezvous says %s", tenant, got, want)
		}
	}

	// A pin to an unconfigured shard is an error, not a fallback.
	if _, err := r.ShardFor("bogus"); !errors.Is(err, shard.ErrUnknownShard) {
		t.Fatalf("pin to unknown shard: err = %v, want ErrUnknownShard", err)
	}

	// Draining the pinned shard refuses the tenant instead of re-homing.
	if err := r.Drain("s2"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ShardFor("pinned-a"); !errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatalf("pin to draining shard: err = %v, want ErrShardUnavailable", err)
	}
	reqs := testRequests(t, 1, 909)
	if _, err := r.Admit("pinned-a", reqs[0]); !errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatalf("Admit to draining pinned shard: err = %v, want ErrShardUnavailable", err)
	}
	if err := r.Activate("s2"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Admit("pinned-a", reqs[0]); err != nil {
		t.Fatalf("Admit after reactivating pinned shard: %v", err)
	}
	if got := r.Owner(reqs[0].ID); got != "s2" {
		t.Fatalf("pinned admission owned by %s, want s2", got)
	}
}
