package shard_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"nfvmcast/internal/core"
	"nfvmcast/internal/engine"
	"nfvmcast/internal/sdn"
)

// networkImage captures a network's observable state bit-exactly —
// versions, every link's up/cap/residual, every server's up/cap/
// residual — formatted with %x on the float bits so two images are
// equal only when the states are bit-identical, not merely close.
func networkImage(nw *sdn.Network) string {
	var b strings.Builder
	fmt.Fprintf(&b, "mut=%d struct=%d\n", nw.MutationVersion(), nw.StructureVersion())
	for e := 0; e < nw.NumEdges(); e++ {
		fmt.Fprintf(&b, "e%d up=%t cap=%x free=%x\n",
			e, nw.LinkUp(e), nw.BandwidthCap(e), nw.ResidualBandwidth(e))
	}
	for _, v := range nw.Servers() {
		fmt.Fprintf(&b, "v%d up=%t cap=%x free=%x\n",
			v, nw.ServerUp(v), nw.ComputeCap(v), nw.ResidualCompute(v))
	}
	return b.String()
}

// TestMalformedBatchShardIsolation pins the blast-radius contract the
// router's per-shard ownership exists to provide: a malformed
// maintenance batch aimed at one shard is rejected all-or-nothing by
// that shard's engine AND every other shard's network stays
// bit-identical — tenant B cannot be perturbed by tenant A's bad
// batch, because no code path even reaches B's network.
func TestMalformedBatchShardIsolation(t *testing.T) {
	r := testRouter(t, []string{"s0", "s1", "s2"})

	// Put live sessions on every shard so "untouched" is a statement
	// about allocated state, not empty substrate.
	for i, req := range testRequests(t, 24, 11) {
		if _, err := r.Admit(fmt.Sprintf("tenant-%d", i%6), req); err != nil &&
			!errors.Is(err, core.ErrRejected) {
			t.Fatalf("admit %d: %v", req.ID, err)
		}
	}

	before := make(map[string]string)
	for _, id := range r.ShardIDs() {
		before[id] = networkImage(r.Network(id))
	}

	// The batch mixes valid mutations with a malformed tail — the
	// shape a fleet-maintenance script produces when one entry is
	// corrupt. Validation must reject the whole batch.
	bad := []engine.Mutation{
		{Kind: engine.LinkCapacity, ID: 0, Capacity: 9000},
		{Kind: engine.ServerState, ID: -3},
	}

	var merr *engine.MalformedMutationError
	if err := r.ApplyShard("s1", bad...); !errors.As(err, &merr) {
		t.Fatalf("ApplyShard(s1, malformed) error = %v, want *engine.MalformedMutationError", err)
	}
	for _, id := range r.ShardIDs() {
		if got := networkImage(r.Network(id)); got != before[id] {
			t.Errorf("shard %s network changed after rejected batch targeting s1:\n%s",
				id, firstLineDiff(before[id], got))
		}
	}

	// Tenant-routed path: the same guarantee keyed by tenant.
	if err := r.Apply("tenant-0", bad...); !errors.As(err, &merr) {
		t.Fatalf("Apply(tenant-0, malformed) error = %v, want *engine.MalformedMutationError", err)
	}
	// Fleet-wide path: the sweep aborts at the first shard in ID order
	// and no shard — visited or not — may retain any effect.
	if err := r.ApplyAll(bad...); !errors.As(err, &merr) {
		t.Fatalf("ApplyAll(malformed) error = %v, want *engine.MalformedMutationError", err)
	}
	for _, id := range r.ShardIDs() {
		if got := networkImage(r.Network(id)); got != before[id] {
			t.Errorf("shard %s network changed after rejected tenant/fleet batches:\n%s",
				id, firstLineDiff(before[id], got))
		}
	}

	// Control: the valid prefix alone must apply — proving the images
	// above would have caught a real mutation.
	if err := r.ApplyShard("s1", bad[0]); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	if networkImage(r.Network("s1")) == before["s1"] {
		t.Fatal("control mutation left no trace; the isolation check is not sensitive")
	}
	if got := networkImage(r.Network("s0")); got != before["s0"] {
		t.Errorf("s0 changed when a valid batch targeted s1:\n%s", firstLineDiff(before["s0"], got))
	}
}

// firstLineDiff locates the first diverging line of two images.
func firstLineDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: %q -> %q", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
