package shard_test

import (
	"testing"

	"nfvmcast/internal/multicast"
	"nfvmcast/internal/shard"
)

// TestShardDeterminismOracle pins the tentpole's determinism claim:
// per-shard transcript fingerprints are byte-identical across engine
// worker counts {1, 4, 8} and commit batch windows {1, 16, 64} when
// the router is driven sequentially. The workload mixes admissions
// from eight tenants (landing on four shards) with deterministic
// departures, so the transcripts exercise admits, rejects and departs.
func TestShardDeterminismOracle(t *testing.T) {
	const requests = 120
	shards := []string{"s0", "s1", "s2", "s3"}
	tenants := []string{"alpha", "bravo", "charlie", "delta",
		"echo", "foxtrot", "golf", "hotel"}

	run := func(workers, window int) shard.Report {
		t.Helper()
		r, err := shard.New(shard.Options{
			Shards:      shards,
			Build:       geantBuilder(),
			Workers:     workers,
			BatchWindow: window,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()

		reqs := testRequests(t, requests, 41)
		var admitted []*multicast.Request
		for i, req := range reqs {
			tn := tenants[i%len(tenants)]
			if _, aerr := r.Admit(tn, req); aerr == nil {
				admitted = append(admitted, req)
			}
			// Every fourth event, the oldest live session departs —
			// a deterministic churn pattern independent of decisions
			// made for other tenants' shards.
			if i%4 == 3 && len(admitted) > 0 {
				if _, derr := r.Release(admitted[0].ID); derr != nil {
					t.Fatalf("release %d: %v", admitted[0].ID, derr)
				}
				admitted = admitted[1:]
			}
		}
		return r.Report()
	}

	want := run(1, 1)
	if want.Admitted == 0 || want.Departed == 0 {
		t.Fatalf("degenerate workload: admitted=%d departed=%d", want.Admitted, want.Departed)
	}
	// Decisions must actually spread across shards for the oracle to
	// mean anything.
	touched := 0
	for _, sr := range want.Shards {
		if sr.Lines > 0 {
			touched++
		}
	}
	if touched < 3 {
		t.Fatalf("only %d of %d shards saw traffic", touched, len(shards))
	}

	for _, workers := range []int{1, 4, 8} {
		for _, window := range []int{1, 16, 64} {
			if workers == 1 && window == 1 {
				continue
			}
			got := run(workers, window)
			for i, sr := range got.Shards {
				if sr.Fingerprint != want.Shards[i].Fingerprint {
					t.Errorf("workers=%d window=%d: shard %s fingerprint\n  got  %s\n  want %s (lines %d vs %d)",
						workers, window, sr.ID, sr.Fingerprint, want.Shards[i].Fingerprint,
						sr.Lines, want.Shards[i].Lines)
				}
			}
			if got.Merged != want.Merged {
				t.Errorf("workers=%d window=%d: merged fingerprint diverged", workers, window)
			}
		}
	}
}

// TestShardReportMergedReflectsShardOrder pins the fan-in: Merged is a
// pure function of the per-shard fingerprints in ascending shard-ID
// order, so two identically-driven routers agree and any per-shard
// drift surfaces in Merged.
func TestShardReportMergedReflectsShardOrder(t *testing.T) {
	drive := func() shard.Report {
		r, err := shard.New(shard.Options{
			Shards: []string{"b", "a", "c"},
			Build:  geantBuilder(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		for i, req := range testRequests(t, 12, 77) {
			tn := []string{"t1", "t2", "t3"}[i%3]
			r.Admit(tn, req)
		}
		return r.Report()
	}
	a, b := drive(), drive()
	if a.Merged != b.Merged {
		t.Fatalf("identical drives disagree on Merged:\n  %s\n  %s", a.Merged, b.Merged)
	}
	for i := 1; i < len(a.Shards); i++ {
		if a.Shards[i-1].ID >= a.Shards[i].ID {
			t.Fatalf("report shards not in ascending ID order: %s >= %s",
				a.Shards[i-1].ID, a.Shards[i].ID)
		}
	}
}
