package shard

import (
	"crypto/sha256"
	"fmt"
)

// ShardReport is one shard's view at Report time.
type ShardReport struct {
	// ID is the shard's stable identifier.
	ID string `json:"id"`
	// State is the lifecycle position ("active", "draining",
	// "stopped").
	State string `json:"state"`
	// Admitted/Rejected/Departed count this shard's decisions;
	// Live is its current session count (0 once stopped).
	Admitted int `json:"admitted"`
	Rejected int `json:"rejected"`
	Departed int `json:"departed"`
	Live     int `json:"live"`
	// Lines is the transcript length behind Fingerprint.
	Lines int `json:"lines"`
	// Fingerprint is the SHA-256 hex digest of this shard's decision
	// transcript. Byte-identical across engine worker counts and batch
	// windows when the router is driven sequentially.
	Fingerprint string `json:"fingerprint"`
}

// Report is the deterministic fan-in over every shard.
type Report struct {
	// Shards lists the per-shard reports in ascending shard-ID order.
	Shards []ShardReport `json:"shards"`
	// Merged digests the per-shard fingerprints (in Shards order), so
	// two routers agree on Merged iff they agree on every shard.
	Merged string `json:"merged"`
	// Fleet-wide sums of the per-shard counts.
	Admitted int `json:"admitted"`
	Rejected int `json:"rejected"`
	Departed int `json:"departed"`
	Live     int `json:"live"`
}

// Report snapshots every shard in ascending shard-ID order and merges
// the per-shard transcript fingerprints into one digest. Call it with
// no admissions in flight for a stable snapshot; the per-shard locks
// only make the snapshot internally consistent per shard.
func (r *Router) Report() Report {
	var rep Report
	merged := sha256.New()
	for _, id := range r.ShardIDs() {
		s, err := r.shard(id)
		if err != nil {
			continue
		}
		s.mu.Lock()
		sr := ShardReport{
			ID:          s.id,
			State:       s.state.String(),
			Admitted:    s.admitted,
			Rejected:    s.rejected,
			Departed:    s.departed,
			Lines:       s.lines,
			Fingerprint: fmt.Sprintf("%x", s.digest.Sum(nil)),
		}
		stopped := s.state == Stopped
		s.mu.Unlock()
		if !stopped {
			sr.Live = s.eng.LiveCount()
		}
		fmt.Fprintf(merged, "shard=%s fp=%s\n", sr.ID, sr.Fingerprint)
		rep.Shards = append(rep.Shards, sr)
		rep.Admitted += sr.Admitted
		rep.Rejected += sr.Rejected
		rep.Departed += sr.Departed
		rep.Live += sr.Live
	}
	rep.Merged = fmt.Sprintf("%x", merged.Sum(nil))
	return rep
}
