// Package multicast models NFV-enabled multicast requests
// r_k = (s_k, D_k; b_k, SC_k), the pseudo-multicast trees that realise
// them (routing graphs in which traffic may back-track along tree
// paths after NFV processing), deterministic workload generators, and
// a delivery validator that checks every destination receives traffic
// that traversed the service chain.
package multicast

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/nfv"
)

// Request is one NFV-enabled multicast request r_k.
type Request struct {
	// ID identifies the request within a workload (k in the paper).
	ID int
	// Source is the multicast source s_k.
	Source graph.NodeID
	// Destinations is the terminal set D_k (non-empty, source excluded).
	Destinations []graph.NodeID
	// BandwidthMbps is the demanded bandwidth b_k on every link the
	// request's traffic traverses.
	BandwidthMbps float64
	// Chain is the service chain SC_k every packet must traverse.
	Chain nfv.Chain
}

// Validate checks structural sanity of the request against a network
// of n nodes.
func (r *Request) Validate(n int) error {
	if r.Source < 0 || r.Source >= n {
		return fmt.Errorf("multicast: request %d: %w (source %d, n=%d)",
			r.ID, graph.ErrNodeOutOfRange, r.Source, n)
	}
	if len(r.Destinations) == 0 {
		return fmt.Errorf("multicast: request %d has no destinations", r.ID)
	}
	seen := make(map[graph.NodeID]struct{}, len(r.Destinations))
	for _, d := range r.Destinations {
		if d < 0 || d >= n {
			return fmt.Errorf("multicast: request %d: %w (destination %d, n=%d)",
				r.ID, graph.ErrNodeOutOfRange, d, n)
		}
		if d == r.Source {
			return fmt.Errorf("multicast: request %d: destination equals source %d", r.ID, d)
		}
		if _, dup := seen[d]; dup {
			return fmt.Errorf("multicast: request %d: duplicate destination %d", r.ID, d)
		}
		seen[d] = struct{}{}
	}
	// NaN fails every ordered comparison, so a plain <= 0 check would
	// wave it through and let it poison residual arithmetic downstream.
	if math.IsNaN(r.BandwidthMbps) || math.IsInf(r.BandwidthMbps, 0) || r.BandwidthMbps <= 0 {
		return fmt.Errorf("multicast: request %d: invalid bandwidth %v", r.ID, r.BandwidthMbps)
	}
	if r.Chain.Empty() {
		return fmt.Errorf("multicast: request %d: %w", r.ID, nfv.ErrEmptyChain)
	}
	return nil
}

// ComputeDemandMHz is the consolidated computing demand C_v(SC_k) of
// the request's chain at its bandwidth.
func (r *Request) ComputeDemandMHz() float64 {
	return r.Chain.DemandMHz(r.BandwidthMbps)
}

// Clone returns a deep copy of the request.
func (r *Request) Clone() *Request {
	cp := *r
	cp.Destinations = make([]graph.NodeID, len(r.Destinations))
	copy(cp.Destinations, r.Destinations)
	return &cp
}

// GeneratorConfig drives the random workload of the paper's
// evaluation (§VI.A).
type GeneratorConfig struct {
	// DestRatio is D_max/|V|: the maximum number of destinations per
	// request as a fraction of the network size. The paper sweeps it
	// over [0.05, 0.2].
	DestRatio float64
	// DestRatioRange, when non-zero, overrides DestRatio by drawing
	// the ratio uniformly per request — the paper's default setting
	// ("randomly drawn in the range of [0.05, 0.2]", §VI.A).
	DestRatioRange [2]float64
	// BandwidthRangeMbps is the uniform range of b_k; the paper uses
	// [50, 200] Mbps.
	BandwidthRangeMbps [2]float64
	// ChainLength is the inclusive range of service-chain lengths.
	ChainLength [2]int
}

// DefaultGeneratorConfig returns the paper's default workload
// parameters with DestRatio 0.2 (the offline figures fix the ratio
// per experiment point).
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		DestRatio:          0.2,
		BandwidthRangeMbps: [2]float64{50, 200},
		ChainLength:        [2]int{1, 3},
	}
}

// OnlineGeneratorConfig returns the paper's default online workload:
// the destination ratio is drawn per request from [0.05, 0.2]
// (§VI.A's default setting, used by the Online_CP/SP experiments).
func OnlineGeneratorConfig() GeneratorConfig {
	cfg := DefaultGeneratorConfig()
	cfg.DestRatioRange = [2]float64{0.05, 0.2}
	return cfg
}

// Generator produces deterministic random request sequences over an
// n-node network.
type Generator struct {
	n   int
	cfg GeneratorConfig
	rng *rand.Rand
	num int
}

// NewGenerator returns a generator over n nodes with the given config
// and seed.
func NewGenerator(n int, cfg GeneratorConfig, seed int64) (*Generator, error) {
	if n < 2 {
		return nil, errors.New("multicast: generator needs at least 2 nodes")
	}
	if cfg.DestRatioRange != [2]float64{} {
		if cfg.DestRatioRange[0] <= 0 || cfg.DestRatioRange[1] < cfg.DestRatioRange[0] ||
			cfg.DestRatioRange[1] > 1 {
			return nil, fmt.Errorf("multicast: invalid destination ratio range %v",
				cfg.DestRatioRange)
		}
	} else if cfg.DestRatio <= 0 || cfg.DestRatio > 1 {
		return nil, fmt.Errorf("multicast: invalid destination ratio %v", cfg.DestRatio)
	}
	if cfg.BandwidthRangeMbps[0] <= 0 || cfg.BandwidthRangeMbps[1] < cfg.BandwidthRangeMbps[0] {
		return nil, fmt.Errorf("multicast: invalid bandwidth range %v", cfg.BandwidthRangeMbps)
	}
	if cfg.ChainLength[0] < 1 || cfg.ChainLength[1] < cfg.ChainLength[0] {
		return nil, fmt.Errorf("multicast: invalid chain length range %v", cfg.ChainLength)
	}
	return &Generator{n: n, cfg: cfg, rng: rand.New(rand.NewSource(seed))}, nil
}

// Next draws the next request: source and destinations uniform over
// the switches, destination count uniform in [1, D_max] with
// D_max = max(1, round(DestRatio*n)), bandwidth and chain per config.
func (g *Generator) Next() (*Request, error) {
	ratio := g.cfg.DestRatio
	if r := g.cfg.DestRatioRange; r != [2]float64{} {
		ratio = r[0] + g.rng.Float64()*(r[1]-r[0])
	}
	dmax := int(ratio*float64(g.n) + 0.5)
	if dmax < 1 {
		dmax = 1
	}
	if dmax > g.n-1 {
		dmax = g.n - 1
	}
	nd := 1 + g.rng.Intn(dmax)
	perm := g.rng.Perm(g.n)
	src := perm[0]
	dests := make([]graph.NodeID, nd)
	copy(dests, perm[1:1+nd])
	sort.Ints(dests)
	bw := g.cfg.BandwidthRangeMbps[0] +
		g.rng.Float64()*(g.cfg.BandwidthRangeMbps[1]-g.cfg.BandwidthRangeMbps[0])
	chain, err := nfv.RandomChain(g.rng, g.cfg.ChainLength[0], g.cfg.ChainLength[1])
	if err != nil {
		return nil, err
	}
	g.num++
	return &Request{
		ID:            g.num,
		Source:        src,
		Destinations:  dests,
		BandwidthMbps: bw,
		Chain:         chain,
	}, nil
}

// Batch draws count requests.
func (g *Generator) Batch(count int) ([]*Request, error) {
	out := make([]*Request, 0, count)
	for i := 0; i < count; i++ {
		r, err := g.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
