package multicast

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPoissonConfigValidate(t *testing.T) {
	good := PoissonConfig{ArrivalsPerHour: 10, MeanHoldingHours: 0.5}
	if _, err := NewPoissonGenerator(20, DefaultGeneratorConfig(), good, 1); err != nil {
		t.Fatal(err)
	}
	if got := good.OfferedErlangs(); got != 5 {
		t.Fatalf("offered load = %v, want 5", got)
	}
	for _, bad := range []PoissonConfig{
		{ArrivalsPerHour: 0, MeanHoldingHours: 1},
		{ArrivalsPerHour: 1, MeanHoldingHours: 0},
		{ArrivalsPerHour: -1, MeanHoldingHours: 1},
	} {
		if _, err := NewPoissonGenerator(20, DefaultGeneratorConfig(), bad, 1); err == nil {
			t.Fatalf("bad config accepted: %+v", bad)
		}
	}
}

func TestPoissonArrivalsIncreaseAndHold(t *testing.T) {
	g, err := NewPoissonGenerator(30, DefaultGeneratorConfig(),
		PoissonConfig{ArrivalsPerHour: 20, MeanHoldingHours: 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i := 0; i < 200; i++ {
		tr, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tr.ArrivalHours <= prev {
			t.Fatalf("arrival %d not strictly increasing: %v <= %v",
				i, tr.ArrivalHours, prev)
		}
		if tr.DepartureHours <= tr.ArrivalHours {
			t.Fatalf("arrival %d departs before it arrives", i)
		}
		if tr.HoldingHours() <= 0 {
			t.Fatalf("arrival %d non-positive holding", i)
		}
		if err := tr.Validate(30); err != nil {
			t.Fatalf("arrival %d invalid request: %v", i, err)
		}
		prev = tr.ArrivalHours
	}
	if g.Now() != prev {
		t.Fatalf("Now() = %v, want %v", g.Now(), prev)
	}
}

func TestPoissonRatesApproximatelyCorrect(t *testing.T) {
	const (
		lambda = 50.0
		mean   = 0.25
		count  = 5000
	)
	g, err := NewPoissonGenerator(30, DefaultGeneratorConfig(),
		PoissonConfig{ArrivalsPerHour: lambda, MeanHoldingHours: mean}, 11)
	if err != nil {
		t.Fatal(err)
	}
	var sumHold float64
	for i := 0; i < count; i++ {
		tr, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		sumHold += tr.HoldingHours()
	}
	// Empirical arrival rate within 10% of λ.
	gotRate := count / g.Now()
	if math.Abs(gotRate-lambda)/lambda > 0.1 {
		t.Fatalf("empirical rate %v too far from %v", gotRate, lambda)
	}
	gotMean := sumHold / count
	if math.Abs(gotMean-mean)/mean > 0.1 {
		t.Fatalf("empirical holding mean %v too far from %v", gotMean, mean)
	}
}

func TestPoissonDeterminism(t *testing.T) {
	mk := func() *PoissonGenerator {
		g, err := NewPoissonGenerator(25, DefaultGeneratorConfig(),
			PoissonConfig{ArrivalsPerHour: 5, MeanHoldingHours: 2}, 3)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := mk(), mk()
	for i := 0; i < 50; i++ {
		ta, _ := a.Next()
		tb, _ := b.Next()
		if ta.ArrivalHours != tb.ArrivalHours || ta.DepartureHours != tb.DepartureHours ||
			ta.Source != tb.Source {
			t.Fatalf("arrival %d differs between equal-seed generators", i)
		}
	}
}

func TestPropertyPoissonTimedRequestsValid(t *testing.T) {
	f := func(seed int64) bool {
		g, err := NewPoissonGenerator(40, OnlineGeneratorConfig(),
			PoissonConfig{ArrivalsPerHour: 12, MeanHoldingHours: 0.5}, seed)
		if err != nil {
			return false
		}
		prev := 0.0
		for i := 0; i < 30; i++ {
			tr, err := g.Next()
			if err != nil {
				return false
			}
			if tr.ArrivalHours <= prev || tr.DepartureHours <= tr.ArrivalHours {
				return false
			}
			if tr.Validate(40) != nil {
				return false
			}
			prev = tr.ArrivalHours
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
