package multicast

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/nfv"
)

func validRequest() *Request {
	return &Request{
		ID:            1,
		Source:        0,
		Destinations:  []graph.NodeID{1, 2},
		BandwidthMbps: 100,
		Chain:         nfv.MustChain(nfv.Firewall),
	}
}

func TestRequestValidate(t *testing.T) {
	if err := validRequest().Validate(5); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Request)
	}{
		{"source out of range", func(r *Request) { r.Source = 9 }},
		{"negative source", func(r *Request) { r.Source = -1 }},
		{"no destinations", func(r *Request) { r.Destinations = nil }},
		{"destination out of range", func(r *Request) { r.Destinations = []graph.NodeID{7} }},
		{"destination equals source", func(r *Request) { r.Destinations = []graph.NodeID{0} }},
		{"duplicate destination", func(r *Request) { r.Destinations = []graph.NodeID{1, 1} }},
		{"zero bandwidth", func(r *Request) { r.BandwidthMbps = 0 }},
		{"negative bandwidth", func(r *Request) { r.BandwidthMbps = -5 }},
		{"empty chain", func(r *Request) { r.Chain = nfv.Chain{} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := validRequest()
			tt.mutate(r)
			if err := r.Validate(5); err == nil {
				t.Fatalf("%s accepted", tt.name)
			}
		})
	}
}

func TestRequestComputeDemand(t *testing.T) {
	r := validRequest()
	want := r.Chain.DemandMHz(r.BandwidthMbps)
	if got := r.ComputeDemandMHz(); got != want {
		t.Fatalf("demand = %v, want %v", got, want)
	}
}

func TestRequestClone(t *testing.T) {
	r := validRequest()
	c := r.Clone()
	c.Destinations[0] = 3
	c.Source = 4
	if r.Destinations[0] != 1 || r.Source != 0 {
		t.Fatal("Clone shares state with original")
	}
}

func TestGeneratorValidation(t *testing.T) {
	good := DefaultGeneratorConfig()
	if _, err := NewGenerator(10, good, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewGenerator(1, good, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	bad := good
	bad.DestRatio = 0
	if _, err := NewGenerator(10, bad, 1); err == nil {
		t.Fatal("ratio 0 accepted")
	}
	bad = good
	bad.DestRatio = 1.5
	if _, err := NewGenerator(10, bad, 1); err == nil {
		t.Fatal("ratio > 1 accepted")
	}
	bad = good
	bad.BandwidthRangeMbps = [2]float64{0, 10}
	if _, err := NewGenerator(10, bad, 1); err == nil {
		t.Fatal("zero bandwidth floor accepted")
	}
	bad = good
	bad.BandwidthRangeMbps = [2]float64{100, 50}
	if _, err := NewGenerator(10, bad, 1); err == nil {
		t.Fatal("inverted bandwidth range accepted")
	}
	bad = good
	bad.ChainLength = [2]int{0, 2}
	if _, err := NewGenerator(10, bad, 1); err == nil {
		t.Fatal("chain length 0 accepted")
	}
	bad = good
	bad.DestRatioRange = [2]float64{0.3, 0.1}
	if _, err := NewGenerator(10, bad, 1); err == nil {
		t.Fatal("inverted ratio range accepted")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, err := NewGenerator(30, DefaultGeneratorConfig(), 77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(30, DefaultGeneratorConfig(), 77)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra.Source != rb.Source || ra.BandwidthMbps != rb.BandwidthMbps ||
			len(ra.Destinations) != len(rb.Destinations) || !ra.Chain.Equal(rb.Chain) {
			t.Fatalf("request %d differs between equal-seed generators", i)
		}
	}
}

func TestGeneratorBatch(t *testing.T) {
	g, err := NewGenerator(20, DefaultGeneratorConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := g.Batch(15)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 15 {
		t.Fatalf("batch = %d requests, want 15", len(reqs))
	}
	for i, r := range reqs {
		if r.ID != i+1 {
			t.Fatalf("request %d has ID %d, want sequential", i, r.ID)
		}
	}
}

func TestPropertyGeneratedRequestsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		cfg := DefaultGeneratorConfig()
		if rng.Intn(2) == 0 {
			cfg = OnlineGeneratorConfig()
		}
		g, err := NewGenerator(n, cfg, seed)
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			r, err := g.Next()
			if err != nil {
				return false
			}
			if r.Validate(n) != nil {
				return false
			}
			if r.BandwidthMbps < cfg.BandwidthRangeMbps[0] ||
				r.BandwidthMbps > cfg.BandwidthRangeMbps[1] {
				return false
			}
			dmax := int(0.2*float64(n) + 0.5)
			if dmax < 1 {
				dmax = 1
			}
			if len(r.Destinations) > dmax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
