package multicast

import (
	"fmt"

	"nfvmcast/internal/graph"
)

// Delivery-latency metrics: the number of link traversals a packet
// needs from the source to each destination, including the detour
// through the service chain and any pseudo-multicast back-tracking.
// With per-link propagation delays these hop counts become an
// end-to-end delay proxy; with uniform links they measure path
// stretch.

// DeliveryDepths returns, per destination, the minimum number of
// directed hops a packet traverses from the source (unprocessed)
// until the destination receives it processed. It runs a BFS over the
// layered (node, processed) state graph that CheckDelivery validates.
func (t *PseudoTree) DeliveryDepths(g *graph.Graph) (map[graph.NodeID]int, error) {
	if err := t.CheckDelivery(g); err != nil {
		return nil, err
	}
	isServer := make(map[graph.NodeID]struct{}, len(t.Servers))
	for _, s := range t.Servers {
		isServer[s] = struct{}{}
	}
	type arc struct {
		to        graph.NodeID
		processed bool
	}
	out := make(map[graph.NodeID][]arc)
	for _, h := range t.hops {
		out[h.From] = append(out[h.From], arc{to: h.To, processed: h.Processed})
	}
	type state struct {
		node      graph.NodeID
		processed bool
	}
	dist := map[state]int{{node: t.Source, processed: false}: 0}
	queue := []state{{node: t.Source, processed: false}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		d := dist[cur]
		push := func(next state, cost int) {
			if _, seen := dist[next]; !seen {
				dist[next] = d + cost
				queue = append(queue, next)
			}
		}
		if !cur.processed {
			if _, ok := isServer[cur.node]; ok {
				// VM processing is local to the switch: zero hops.
				push(state{node: cur.node, processed: true}, 0)
			}
		}
		for _, a := range out[cur.node] {
			if a.processed == cur.processed {
				push(state{node: a.to, processed: cur.processed}, 1)
			}
		}
	}
	depths := make(map[graph.NodeID]int, len(t.Destinations))
	for _, dst := range t.Destinations {
		d, ok := dist[state{node: dst, processed: true}]
		if !ok {
			// CheckDelivery above guarantees reachability; this is a
			// programming error.
			return nil, fmt.Errorf("multicast: internal: destination %d lost", dst)
		}
		depths[dst] = d
	}
	return depths, nil
}

// MaxDeliveryDepth returns the worst-case hop count over all
// destinations (the tree's delay proxy).
func (t *PseudoTree) MaxDeliveryDepth(g *graph.Graph) (int, error) {
	depths, err := t.DeliveryDepths(g)
	if err != nil {
		return 0, err
	}
	max := 0
	for _, d := range depths {
		if d > max {
			max = d
		}
	}
	return max, nil
}

// Stretch returns the ratio of the tree's worst-case delivery depth to
// the plain shortest-path hop distance from the source to the farthest
// destination — the latency price of forcing traffic through the
// service chain. Stretch is always >= 1.
func (t *PseudoTree) Stretch(g *graph.Graph) (float64, error) {
	worst, err := t.MaxDeliveryDepth(g)
	if err != nil {
		return 0, err
	}
	// Hop-count shortest paths: unit weights.
	unit := g.Clone()
	for e := 0; e < unit.NumEdges(); e++ {
		if err := unit.SetWeight(e, 1); err != nil {
			return 0, err
		}
	}
	sp, err := graph.Dijkstra(unit, t.Source)
	if err != nil {
		return 0, err
	}
	far := 0.0
	for _, d := range t.Destinations {
		if !sp.Reachable(d) {
			return 0, fmt.Errorf("multicast: destination %d: %w", d, graph.ErrDisconnected)
		}
		if sp.Dist[d] > far {
			far = sp.Dist[d]
		}
	}
	if far == 0 {
		return 1, nil
	}
	return float64(worst) / far, nil
}
