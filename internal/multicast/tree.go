package multicast

import (
	"errors"
	"fmt"

	"nfvmcast/internal/graph"
)

// Hop is one directed traversal of an undirected host link by the
// request's traffic, before (Processed=false) or after
// (Processed=true) NFV processing. A multicast stream traverses each
// directed hop once regardless of how many destinations lie behind it,
// so a PseudoTree stores hops deduplicated.
type Hop struct {
	From, To  graph.NodeID
	Edge      graph.EdgeID
	Processed bool
}

// PseudoTree is the routing graph G_T realising one NFV-enabled
// multicast request: unprocessed traffic flows from the source to the
// serving node(s), is processed by the service-chain VM there, and the
// processed stream fans out to all destinations, possibly
// back-tracking along tree paths (paper §III.B).
type PseudoTree struct {
	Source       graph.NodeID
	Destinations []graph.NodeID
	// Servers are the switch nodes whose attached servers run the
	// consolidated service-chain VM (1 <= len <= K).
	Servers []graph.NodeID
	// ServerDemands, when non-nil, carries each serving node's own
	// compute demand in MHz, position-aligned with Servers. Distributed
	// chain placement (Dist_CP) splits the chain into per-server
	// segments, so each host is charged its segment rather than the
	// whole chain. nil keeps the paper's consolidated model: every
	// serving node is charged the request's full chain demand.
	ServerDemands []float64

	hops    []Hop
	hopSeen map[hopKey]struct{}
}

type hopKey struct {
	from, to  graph.NodeID
	edge      graph.EdgeID
	processed bool
}

// NewPseudoTree returns an empty pseudo-multicast tree for the given
// endpoints.
func NewPseudoTree(source graph.NodeID, dests, servers []graph.NodeID) *PseudoTree {
	d := make([]graph.NodeID, len(dests))
	copy(d, dests)
	s := make([]graph.NodeID, len(servers))
	copy(s, servers)
	return &PseudoTree{
		Source:       source,
		Destinations: d,
		Servers:      s,
		hopSeen:      make(map[hopKey]struct{}),
	}
}

// AddHop records a directed traversal; duplicates are ignored.
func (t *PseudoTree) AddHop(h Hop) {
	k := hopKey{from: h.From, to: h.To, edge: h.Edge, processed: h.Processed}
	if _, ok := t.hopSeen[k]; ok {
		return
	}
	t.hopSeen[k] = struct{}{}
	t.hops = append(t.hops, h)
}

// AddPath records a directed walk along nodes/edges (as produced by
// graph path routines) with the given processed flag.
func (t *PseudoTree) AddPath(nodes []graph.NodeID, edges []graph.EdgeID, processed bool) error {
	if len(nodes) != len(edges)+1 {
		return fmt.Errorf("multicast: path shape mismatch (%d nodes, %d edges)",
			len(nodes), len(edges))
	}
	for i, e := range edges {
		t.AddHop(Hop{From: nodes[i], To: nodes[i+1], Edge: e, Processed: processed})
	}
	return nil
}

// Hops returns a copy of the deduplicated directed hop list.
func (t *PseudoTree) Hops() []Hop {
	out := make([]Hop, len(t.hops))
	copy(out, t.hops)
	return out
}

// NumHops reports the number of distinct directed hops.
func (t *PseudoTree) NumHops() int { return len(t.hops) }

// LinkLoads returns, per host edge, the number of distinct directed
// traversals the tree makes over it. Each traversal consumes the
// request's bandwidth b_k, so a link crossed by both the unprocessed
// and the processed stream is charged twice (the pseudo-multicast
// back-tracking cost of paper §III.B).
func (t *PseudoTree) LinkLoads() map[graph.EdgeID]int {
	loads := make(map[graph.EdgeID]int, len(t.hops))
	for _, h := range t.hops {
		loads[h.Edge]++
	}
	return loads
}

// Errors reported by CheckDelivery.
var (
	// ErrUndelivered means some destination never receives a
	// processed packet.
	ErrUndelivered = errors.New("multicast: destination not reached by processed traffic")
	// ErrNoServer means the tree names no serving node.
	ErrNoServer = errors.New("multicast: pseudo-multicast tree has no server")
)

// CheckDelivery verifies the tree's core invariant by simulating flood
// forwarding over the directed hops: a packet injected unprocessed at
// the source must reach every destination in processed state, where
// the unprocessed→processed transition happens exactly at serving
// nodes. The host graph supplies edge endpoints for hop sanity checks.
func (t *PseudoTree) CheckDelivery(g *graph.Graph) error {
	if len(t.Servers) == 0 {
		return ErrNoServer
	}
	isServer := make(map[graph.NodeID]struct{}, len(t.Servers))
	for _, s := range t.Servers {
		isServer[s] = struct{}{}
	}
	// Sanity: every hop must ride a real edge between its endpoints.
	type arc struct {
		to        graph.NodeID
		processed bool
	}
	out := make(map[graph.NodeID][]arc)
	for _, h := range t.hops {
		e := g.Edge(h.Edge)
		if !((e.U == h.From && e.V == h.To) || (e.V == h.From && e.U == h.To)) {
			return fmt.Errorf("multicast: hop %d->%d does not match edge %d {%d,%d}",
				h.From, h.To, h.Edge, e.U, e.V)
		}
		out[h.From] = append(out[h.From], arc{to: h.To, processed: h.Processed})
	}

	// Layered BFS over (node, processedState).
	type state struct {
		node      graph.NodeID
		processed bool
	}
	start := state{node: t.Source, processed: false}
	visited := map[state]struct{}{start: {}}
	queue := []state{start}
	push := func(s state) {
		if _, ok := visited[s]; !ok {
			visited[s] = struct{}{}
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		// Processing transition at serving nodes.
		if !cur.processed {
			if _, ok := isServer[cur.node]; ok {
				push(state{node: cur.node, processed: true})
			}
		}
		for _, a := range out[cur.node] {
			// A hop carries traffic in the state it was installed for:
			// unprocessed hops extend the unprocessed stream,
			// processed hops the processed stream.
			if a.processed == cur.processed {
				push(state{node: a.to, processed: cur.processed})
			}
		}
	}
	for _, d := range t.Destinations {
		if _, ok := visited[state{node: d, processed: true}]; !ok {
			return fmt.Errorf("%w: destination %d", ErrUndelivered, d)
		}
	}
	return nil
}

// UsedNodes returns every node touched by a hop, plus source, servers
// and destinations.
func (t *PseudoTree) UsedNodes() []graph.NodeID {
	seen := make(map[graph.NodeID]struct{})
	var out []graph.NodeID
	add := func(v graph.NodeID) {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	add(t.Source)
	for _, v := range t.Servers {
		add(v)
	}
	for _, v := range t.Destinations {
		add(v)
	}
	for _, h := range t.hops {
		add(h.From)
		add(h.To)
	}
	return out
}
