package multicast

import (
	"math"
	"testing"

	"nfvmcast/internal/graph"
)

func TestDeliveryDepthsLine(t *testing.T) {
	g, ids := lineHost()
	// Source 0, server 2, destinations {1, 4}: d=1 needs
	// 0->1->2 (2 hops) + process + 2->1 back (1 hop) = 3 hops;
	// d=4 needs 0->1->2 + 2->3->4 = 4 hops.
	tr := NewPseudoTree(0, []graph.NodeID{1, 4}, []graph.NodeID{2})
	tr.AddHop(Hop{From: 0, To: 1, Edge: ids[0], Processed: false})
	tr.AddHop(Hop{From: 1, To: 2, Edge: ids[1], Processed: false})
	tr.AddHop(Hop{From: 2, To: 1, Edge: ids[1], Processed: true})
	tr.AddHop(Hop{From: 2, To: 3, Edge: ids[2], Processed: true})
	tr.AddHop(Hop{From: 3, To: 4, Edge: ids[3], Processed: true})
	depths, err := tr.DeliveryDepths(g)
	if err != nil {
		t.Fatal(err)
	}
	if depths[1] != 3 {
		t.Fatalf("depth[1] = %d, want 3 (back-track counted)", depths[1])
	}
	if depths[4] != 4 {
		t.Fatalf("depth[4] = %d, want 4", depths[4])
	}
	max, err := tr.MaxDeliveryDepth(g)
	if err != nil {
		t.Fatal(err)
	}
	if max != 4 {
		t.Fatalf("max depth = %d, want 4", max)
	}
	// Shortest-path distance to the farthest destination (4) is 4
	// hops, so stretch = 4/4 = 1; destination 1 pays stretch locally
	// but Stretch is defined on the worst case.
	stretch, err := tr.Stretch(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stretch-1) > 1e-9 {
		t.Fatalf("stretch = %v, want 1", stretch)
	}
}

func TestDeliveryDepthsSourceIsServer(t *testing.T) {
	g, ids := lineHost()
	tr := NewPseudoTree(0, []graph.NodeID{1}, []graph.NodeID{0})
	tr.AddHop(Hop{From: 0, To: 1, Edge: ids[0], Processed: true})
	depths, err := tr.DeliveryDepths(g)
	if err != nil {
		t.Fatal(err)
	}
	if depths[1] != 1 {
		t.Fatalf("depth = %d, want 1 (processing is free)", depths[1])
	}
	stretch, err := tr.Stretch(g)
	if err != nil {
		t.Fatal(err)
	}
	if stretch != 1 {
		t.Fatalf("stretch = %v, want 1", stretch)
	}
}

func TestDeliveryDepthsInvalidTree(t *testing.T) {
	g, ids := lineHost()
	tr := NewPseudoTree(0, []graph.NodeID{4}, []graph.NodeID{2})
	tr.AddHop(Hop{From: 0, To: 1, Edge: ids[0], Processed: false})
	if _, err := tr.DeliveryDepths(g); err == nil {
		t.Fatal("undelivered tree accepted")
	}
}

func TestStretchDetour(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 on node 1; server at 2, source 0,
	// destination 3. Direct distance 0->1->3 is 2 hops; route through
	// the server is 0->2 (1 hop), 2->1 (1), 1->3 (1) = 3 hops.
	g := graph.New(4)
	e01 := g.MustAddEdge(0, 1, 1)
	e02 := g.MustAddEdge(0, 2, 1)
	e12 := g.MustAddEdge(1, 2, 1)
	e13 := g.MustAddEdge(1, 3, 1)
	_ = e01
	tr := NewPseudoTree(0, []graph.NodeID{3}, []graph.NodeID{2})
	tr.AddHop(Hop{From: 0, To: 2, Edge: e02, Processed: false})
	tr.AddHop(Hop{From: 2, To: 1, Edge: e12, Processed: true})
	tr.AddHop(Hop{From: 1, To: 3, Edge: e13, Processed: true})
	stretch, err := tr.Stretch(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stretch-1.5) > 1e-9 {
		t.Fatalf("stretch = %v, want 1.5", stretch)
	}
}
