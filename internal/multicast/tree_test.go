package multicast

import (
	"errors"
	"testing"

	"nfvmcast/internal/graph"
)

// lineHost returns host graph 0-1-2-3-4 and its edge IDs.
func lineHost() (*graph.Graph, []graph.EdgeID) {
	g := graph.New(5)
	ids := make([]graph.EdgeID, 4)
	for i := 0; i < 4; i++ {
		ids[i] = g.MustAddEdge(i, i+1, 1)
	}
	return g, ids
}

func TestPseudoTreeDedupesHops(t *testing.T) {
	_, ids := lineHost()
	tr := NewPseudoTree(0, []graph.NodeID{2}, []graph.NodeID{1})
	h := Hop{From: 0, To: 1, Edge: ids[0], Processed: false}
	tr.AddHop(h)
	tr.AddHop(h)
	if tr.NumHops() != 1 {
		t.Fatalf("NumHops = %d, want 1 after duplicate insert", tr.NumHops())
	}
	// Same edge, different direction or processed flag => distinct.
	tr.AddHop(Hop{From: 1, To: 0, Edge: ids[0], Processed: false})
	tr.AddHop(Hop{From: 0, To: 1, Edge: ids[0], Processed: true})
	if tr.NumHops() != 3 {
		t.Fatalf("NumHops = %d, want 3", tr.NumHops())
	}
	if got := tr.LinkLoads()[ids[0]]; got != 3 {
		t.Fatalf("load on edge 0 = %d, want 3", got)
	}
}

func TestPseudoTreeAddPath(t *testing.T) {
	_, ids := lineHost()
	tr := NewPseudoTree(0, []graph.NodeID{2}, []graph.NodeID{1})
	if err := tr.AddPath([]graph.NodeID{0, 1, 2}, ids[:2], false); err != nil {
		t.Fatal(err)
	}
	if tr.NumHops() != 2 {
		t.Fatalf("NumHops = %d, want 2", tr.NumHops())
	}
	if err := tr.AddPath([]graph.NodeID{0, 1}, ids[:2], false); err == nil {
		t.Fatal("mismatched path shape accepted")
	}
}

func TestCheckDeliveryHappyPath(t *testing.T) {
	g, ids := lineHost()
	// Source 0, server 2, destinations {1, 4}: unprocessed 0->1->2,
	// processed back 2->1 and forward 2->3->4.
	tr := NewPseudoTree(0, []graph.NodeID{1, 4}, []graph.NodeID{2})
	tr.AddHop(Hop{From: 0, To: 1, Edge: ids[0], Processed: false})
	tr.AddHop(Hop{From: 1, To: 2, Edge: ids[1], Processed: false})
	tr.AddHop(Hop{From: 2, To: 1, Edge: ids[1], Processed: true})
	tr.AddHop(Hop{From: 2, To: 3, Edge: ids[2], Processed: true})
	tr.AddHop(Hop{From: 3, To: 4, Edge: ids[3], Processed: true})
	if err := tr.CheckDelivery(g); err != nil {
		t.Fatal(err)
	}
	if got := tr.LinkLoads()[ids[1]]; got != 2 {
		t.Fatalf("back-tracked link load = %d, want 2", got)
	}
}

func TestCheckDeliveryFailsWithoutProcessing(t *testing.T) {
	g, ids := lineHost()
	// Destination receives only unprocessed traffic.
	tr := NewPseudoTree(0, []graph.NodeID{1}, []graph.NodeID{4})
	tr.AddHop(Hop{From: 0, To: 1, Edge: ids[0], Processed: false})
	if err := tr.CheckDelivery(g); !errors.Is(err, ErrUndelivered) {
		t.Fatalf("err = %v, want ErrUndelivered", err)
	}
}

func TestCheckDeliveryFailsWhenServerDownstreamOfDest(t *testing.T) {
	g, ids := lineHost()
	// Server at 2 but destination 1 only sees the unprocessed stream
	// passing through: no processed hop back to 1.
	tr := NewPseudoTree(0, []graph.NodeID{1}, []graph.NodeID{2})
	tr.AddHop(Hop{From: 0, To: 1, Edge: ids[0], Processed: false})
	tr.AddHop(Hop{From: 1, To: 2, Edge: ids[1], Processed: false})
	if err := tr.CheckDelivery(g); !errors.Is(err, ErrUndelivered) {
		t.Fatalf("err = %v, want ErrUndelivered", err)
	}
	// Adding the back-track fixes it.
	tr.AddHop(Hop{From: 2, To: 1, Edge: ids[1], Processed: true})
	if err := tr.CheckDelivery(g); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDeliveryNoServer(t *testing.T) {
	g, _ := lineHost()
	tr := NewPseudoTree(0, []graph.NodeID{1}, nil)
	if err := tr.CheckDelivery(g); !errors.Is(err, ErrNoServer) {
		t.Fatalf("err = %v, want ErrNoServer", err)
	}
}

func TestCheckDeliveryRejectsBogusHop(t *testing.T) {
	g, ids := lineHost()
	tr := NewPseudoTree(0, []graph.NodeID{1}, []graph.NodeID{0})
	// Hop claims edge ids[2] (2-3) joins 0 and 1.
	tr.AddHop(Hop{From: 0, To: 1, Edge: ids[2], Processed: true})
	if err := tr.CheckDelivery(g); err == nil {
		t.Fatal("bogus hop accepted")
	}
}

func TestCheckDeliverySourceIsServer(t *testing.T) {
	g, ids := lineHost()
	tr := NewPseudoTree(0, []graph.NodeID{1}, []graph.NodeID{0})
	tr.AddHop(Hop{From: 0, To: 1, Edge: ids[0], Processed: true})
	if err := tr.CheckDelivery(g); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDeliveryDestinationIsServer(t *testing.T) {
	g, ids := lineHost()
	// Destination 2 is itself the serving node.
	tr := NewPseudoTree(0, []graph.NodeID{2}, []graph.NodeID{2})
	tr.AddHop(Hop{From: 0, To: 1, Edge: ids[0], Processed: false})
	tr.AddHop(Hop{From: 1, To: 2, Edge: ids[1], Processed: false})
	if err := tr.CheckDelivery(g); err != nil {
		t.Fatal(err)
	}
}

func TestUsedNodes(t *testing.T) {
	_, ids := lineHost()
	tr := NewPseudoTree(0, []graph.NodeID{3}, []graph.NodeID{2})
	tr.AddHop(Hop{From: 0, To: 1, Edge: ids[0], Processed: false})
	nodes := tr.UsedNodes()
	want := map[graph.NodeID]bool{0: true, 1: true, 2: true, 3: true}
	if len(nodes) != len(want) {
		t.Fatalf("UsedNodes = %v, want %v", nodes, want)
	}
	for _, v := range nodes {
		if !want[v] {
			t.Fatalf("unexpected node %d in %v", v, nodes)
		}
	}
}

func TestHopsReturnsCopy(t *testing.T) {
	_, ids := lineHost()
	tr := NewPseudoTree(0, []graph.NodeID{1}, []graph.NodeID{2})
	tr.AddHop(Hop{From: 0, To: 1, Edge: ids[0], Processed: false})
	hops := tr.Hops()
	hops[0].From = 99
	if tr.Hops()[0].From != 0 {
		t.Fatal("Hops() exposes internal state")
	}
}
