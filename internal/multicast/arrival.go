package multicast

import (
	"fmt"
	"math"
	"math/rand"
)

// Timed workloads: requests arrive as a Poisson process and hold
// their resources for exponentially distributed durations — the
// classic loss-system model (offered load in Erlangs =
// arrival rate × mean holding time). The paper's evaluation uses a
// fixed monitoring period of request counts; this model extends it to
// steady-state acceptance-ratio experiments.

// TimedRequest is a request with an arrival instant and a departure
// instant (both in abstract hours from the start of the run).
type TimedRequest struct {
	*Request
	// ArrivalHours is the arrival time.
	ArrivalHours float64
	// DepartureHours is the instant the session ends and releases its
	// resources (always > ArrivalHours).
	DepartureHours float64
}

// HoldingHours reports the session duration.
func (t *TimedRequest) HoldingHours() float64 { return t.DepartureHours - t.ArrivalHours }

// PoissonConfig parameterises the arrival process.
type PoissonConfig struct {
	// ArrivalsPerHour is the Poisson arrival rate λ.
	ArrivalsPerHour float64
	// MeanHoldingHours is the exponential holding-time mean 1/μ.
	MeanHoldingHours float64
}

// OfferedErlangs reports the offered load λ/μ.
func (c PoissonConfig) OfferedErlangs() float64 {
	return c.ArrivalsPerHour * c.MeanHoldingHours
}

func (c PoissonConfig) validate() error {
	if c.ArrivalsPerHour <= 0 {
		return fmt.Errorf("multicast: arrival rate %v must be positive", c.ArrivalsPerHour)
	}
	if c.MeanHoldingHours <= 0 {
		return fmt.Errorf("multicast: holding time %v must be positive", c.MeanHoldingHours)
	}
	return nil
}

// PoissonGenerator draws timed requests with increasing arrival
// instants. Request contents come from the embedded Generator.
type PoissonGenerator struct {
	inner *Generator
	cfg   PoissonConfig
	rng   *rand.Rand
	now   float64
}

// NewPoissonGenerator returns a timed workload source over n nodes.
// Request contents use gcfg, timing uses pcfg; both are driven from
// the single seed, so runs are reproducible.
func NewPoissonGenerator(
	n int, gcfg GeneratorConfig, pcfg PoissonConfig, seed int64,
) (*PoissonGenerator, error) {
	if err := pcfg.validate(); err != nil {
		return nil, err
	}
	inner, err := NewGenerator(n, gcfg, seed)
	if err != nil {
		return nil, err
	}
	return &PoissonGenerator{
		inner: inner,
		cfg:   pcfg,
		rng:   rand.New(rand.NewSource(seed ^ 0x5ca1ab1e)),
	}, nil
}

// Next draws the next arrival: exponential inter-arrival gap at rate
// λ, exponential holding time with mean 1/μ.
func (g *PoissonGenerator) Next() (*TimedRequest, error) {
	req, err := g.inner.Next()
	if err != nil {
		return nil, err
	}
	g.now += g.exp(1 / g.cfg.ArrivalsPerHour)
	return &TimedRequest{
		Request:        req,
		ArrivalHours:   g.now,
		DepartureHours: g.now + g.exp(g.cfg.MeanHoldingHours),
	}, nil
}

// exp draws an exponential variate with the given mean.
func (g *PoissonGenerator) exp(mean float64) float64 {
	// Inverse CDF; 1-U avoids log(0).
	return -mean * math.Log(1-g.rng.Float64())
}

// Now reports the time of the last generated arrival.
func (g *PoissonGenerator) Now() float64 { return g.now }
