package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestJSONLinesSinkFormat(t *testing.T) {
	var b bytes.Buffer
	s := NewJSONLinesSink(&b)
	s.Emit(Event{Seq: 1, Type: Admitted, Policy: "SP", Request: 7})
	s.Emit(Event{Seq: 2, Type: Departed, Policy: "SP", Request: 7})
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d: %q", len(lines), b.String())
	}
	if want := `{"seq":1,"type":"admitted","policy":"SP","request":7}`; lines[0] != want {
		t.Fatalf("line 1 = %s, want %s", lines[0], want)
	}
	// Zero-valued optional fields must be omitted.
	if strings.Contains(lines[1], "servers") || strings.Contains(lines[1], "cost") ||
		strings.Contains(lines[1], "reason") {
		t.Fatalf("zero fields not omitted: %s", lines[1])
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestJSONLinesSinkStickyError(t *testing.T) {
	s := NewJSONLinesSink(&failWriter{n: 1})
	s.Emit(Event{Seq: 1, Type: Admitted})
	if s.Err() != nil {
		t.Fatalf("first write should succeed: %v", s.Err())
	}
	s.Emit(Event{Seq: 2, Type: Admitted})
	if s.Err() == nil {
		t.Fatal("second write should stick an error")
	}
	err := s.Err()
	s.Emit(Event{Seq: 3, Type: Admitted}) // suppressed, error unchanged
	if !errors.Is(s.Err(), err) {
		t.Fatal("sticky error replaced")
	}
}

func TestRingSinkEviction(t *testing.T) {
	s := NewRingSink(3)
	for i := 1; i <= 5; i++ {
		s.Emit(Event{Seq: uint64(i)})
	}
	if s.Total() != 5 {
		t.Fatalf("Total = %d, want 5", s.Total())
	}
	evs := s.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	for i, want := range []uint64{3, 4, 5} {
		if evs[i].Seq != want {
			t.Fatalf("event %d Seq = %d, want %d (oldest first)", i, evs[i].Seq, want)
		}
	}
}

func TestRingSinkMinimumCapacity(t *testing.T) {
	s := NewRingSink(0)
	s.Emit(Event{Seq: 1})
	s.Emit(Event{Seq: 2})
	evs := s.Events()
	if len(evs) != 1 || evs[0].Seq != 2 {
		t.Fatalf("n<1 must clamp to 1 and keep the newest: %v", evs)
	}
}

func TestMultiSink(t *testing.T) {
	a, b := NewRingSink(4), NewRingSink(4)
	m := MultiSink{a, b}
	m.Emit(Event{Seq: 1, Type: Admitted})
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatalf("fan-out failed: %d/%d", a.Total(), b.Total())
	}
}
