package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenRegistry builds a registry with fixed values covering every
// instrument kind, so the exposition formats are pinned byte-for-byte.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("nfv_admitted_total", "Requests admitted (allocated and live).",
		L("policy", "Online_CP")).Add(42)
	reg.Counter("nfv_rejected_total", "Requests rejected, by canonical reason.",
		L("policy", "Online_CP"), L("reason", ReasonBandwidth)).Add(3)
	reg.Counter("nfv_rejected_total", "Requests rejected, by canonical reason.",
		L("policy", "Online_CP"), L("reason", ReasonThreshold)).Add(1)
	reg.Gauge("nfv_live_sessions", "Admitted sessions currently holding resources.",
		L("policy", "Online_CP")).Set(39)
	reg.Gauge("nfv_link_utilization_max", "Highest link utilisation across the network.").Set(0.875)
	h := reg.Histogram("nfv_plan_seconds", "Planner latency (sampled; empty unless SampleLatency).",
		[]float64{0.001, 0.01, 0.1}, L("policy", "Online_CP"))
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 0.5} {
		h.Observe(v)
	}
	return reg
}

// goldenEvents is a fixed admission-event sequence covering the full
// vocabulary, in the order a concurrent engine could emit it.
func goldenEvents() []Event {
	return []Event{
		{Type: AdmitPlanned, Request: 1, Servers: []int{4}, Cost: 12.5},
		{Type: Admitted, Request: 1, Servers: []int{4}, Cost: 12.5},
		{Type: AdmitPlanned, Request: 2, Servers: []int{4, 9}, Cost: 30},
		{Type: CommitConflict, Request: 2, Reason: ReasonBandwidth},
		{Type: Replanned, Request: 2},
		{Type: AdmitPlanned, Request: 2, Servers: []int{9}, Cost: 31.25},
		{Type: Admitted, Request: 2, Servers: []int{9}, Cost: 31.25},
		{Type: Rejected, Request: 3, Reason: ReasonThreshold},
		{Type: FailureInjected, Reason: "structure version 1 -> 2"},
		{Type: Departed, Request: 1},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\n(run with -update if the change is intended)",
			name, got, want)
	}
}

func TestPrometheusExpositionGolden(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "exposition.golden", b.Bytes())
}

func TestJSONExportGolden(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.json.golden", b.Bytes())
}

func TestEventsJSONLGolden(t *testing.T) {
	var b bytes.Buffer
	sink := NewJSONLinesSink(&b)
	// Route through an AdmissionObs so sequence numbers and the policy
	// label are assigned exactly as in production.
	o := NewAdmissionObs(NewRegistry(), "Online_CP", AdmissionObsOptions{Events: sink})
	for _, ev := range goldenEvents() {
		o.emit(ev)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "events.jsonl.golden", b.Bytes())
}
