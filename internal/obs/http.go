package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves a registry over HTTP:
//
//	/metrics       Prometheus text exposition (version 0.0.4)
//	/metrics.json  the same data as one JSON document
//	/debug/pprof/  net/http/pprof (profiles, heap, goroutines, ...)
//	/healthz       200 ok
//
// registry is called per request so a long-running process can swap
// the live registry (e.g. one per experiment); refresh, when non-nil,
// runs before rendering — the hook that re-collects network gauges
// through the engine's writer. Either callback may be nil.
func Handler(registry func() *Registry, refresh func()) http.Handler {
	mux := http.NewServeMux()
	render := func(w http.ResponseWriter, contentType string, write func(*Registry) error) {
		if refresh != nil {
			refresh()
		}
		var reg *Registry
		if registry != nil {
			reg = registry()
		}
		if reg == nil {
			http.Error(w, "no metrics registry active", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", contentType)
		_ = write(reg)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		render(w, "text/plain; version=0.0.4; charset=utf-8", func(r *Registry) error {
			return r.WritePrometheus(w)
		})
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		render(w, "application/json", func(r *Registry) error {
			return r.WriteJSON(w)
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ListenAndServe binds addr and serves Handler(registry, refresh) in a
// background goroutine. It returns the bound listener address (useful
// with ":0") and a shutdown function. Serve errors after a successful
// bind are dropped: metrics serving must never take the admission
// pipeline down with it.
func ListenAndServe(addr string, registry func() *Registry, refresh func()) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(registry, refresh)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
