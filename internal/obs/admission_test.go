package obs

import (
	"testing"
	"time"
)

// TestNilAdmissionObs pins the nil-receiver contract: every hook is
// callable on a nil *AdmissionObs, which is how uninstrumented engines
// run with zero configuration.
func TestNilAdmissionObs(t *testing.T) {
	var o *AdmissionObs
	if !o.Now().IsZero() {
		t.Fatal("nil Now() must be zero")
	}
	o.PlanDone(time.Time{}, 1, []int{2}, 3, nil)
	o.Replanned(1)
	o.CommitConflict(1, ReasonBandwidth)
	o.CommitDone(time.Time{}, 1, []int{2}, 3)
	o.RejectedReason(1, ReasonThreshold)
	o.DepartDone(1)
	o.CloneDone(time.Time{})
	o.FailureInjected("x")
	o.InflightAdd(1)
	if o.AdmittedCount() != 0 || o.DepartedCount() != 0 || o.LiveSessions() != 0 || o.Policy() != "" {
		t.Fatal("nil accessors must return zero values")
	}
}

func TestAdmissionObsCountersAndEvents(t *testing.T) {
	reg := NewRegistry()
	ring := NewRingSink(32)
	o := NewAdmissionObs(reg, "SP", AdmissionObsOptions{Events: ring})
	if o.Policy() != "SP" {
		t.Fatalf("Policy = %q", o.Policy())
	}

	o.InflightAdd(1)
	o.CloneDone(o.Now())
	o.PlanDone(o.Now(), 1, []int{3}, 10, nil)
	o.CommitDone(o.Now(), 1, []int{3}, 10)
	o.PlanDone(o.Now(), 2, nil, 0, errTest)
	o.RejectedReason(2, ReasonCompute)
	o.CommitConflict(3, ReasonBandwidth)
	o.Replanned(3)
	o.FailureInjected("link 5 down")
	o.DepartDone(1)
	o.InflightAdd(-1)

	cv := reg.CounterValues()
	for series, want := range map[string]uint64{
		`nfv_admitted_total{policy="SP"}`:                    1,
		`nfv_departed_total{policy="SP"}`:                    1,
		`nfv_plans_total{policy="SP"}`:                       2,
		`nfv_replans_total{policy="SP"}`:                     1,
		`nfv_commit_conflicts_total{policy="SP"}`:            1,
		`nfv_snapshot_clones_total{policy="SP"}`:             1,
		`nfv_failures_injected_total{policy="SP"}`:           1,
		`nfv_rejected_total{policy="SP",reason="compute"}`:   1,
		`nfv_rejected_total{policy="SP",reason="bandwidth"}`: 0,
		`nfv_rejected_total{policy="SP",reason="threshold"}`: 0,
		`nfv_rejected_total{policy="SP",reason="other"}`:     0,
	} {
		if cv[series] != want {
			t.Errorf("%s = %d, want %d", series, cv[series], want)
		}
	}
	if o.AdmittedCount() != 1 || o.DepartedCount() != 1 {
		t.Fatalf("accessors: admitted=%d departed=%d", o.AdmittedCount(), o.DepartedCount())
	}
	if o.LiveSessions() != 0 {
		t.Fatalf("live gauge after admit+depart = %v, want 0", o.LiveSessions())
	}
	gv := reg.GaugeValues()
	if gv[`nfv_inflight_admissions{policy="SP"}`] != 0 {
		t.Fatalf("inflight gauge = %v, want 0", gv[`nfv_inflight_admissions{policy="SP"}`])
	}

	// Event stream: failed plans emit nothing; the rest appear in order
	// with policy and strictly increasing sequence numbers.
	wantTypes := []EventType{
		AdmitPlanned, Admitted, Rejected, CommitConflict, Replanned,
		FailureInjected, Departed,
	}
	evs := ring.Events()
	if len(evs) != len(wantTypes) {
		t.Fatalf("got %d events, want %d: %v", len(evs), len(wantTypes), evs)
	}
	for i, ev := range evs {
		if ev.Type != wantTypes[i] {
			t.Fatalf("event %d type %s, want %s", i, ev.Type, wantTypes[i])
		}
		if ev.Policy != "SP" {
			t.Fatalf("event %d policy %q", i, ev.Policy)
		}
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d seq %d, want %d", i, ev.Seq, i+1)
		}
	}
}

func TestRejectedReasonUnknownFallsBackToOther(t *testing.T) {
	reg := NewRegistry()
	ring := NewRingSink(4)
	o := NewAdmissionObs(reg, "SP", AdmissionObsOptions{Events: ring})
	o.RejectedReason(1, "some-novel-reason")
	cv := reg.CounterValues()
	if cv[`nfv_rejected_total{policy="SP",reason="other"}`] != 1 {
		t.Fatalf("unknown reason not folded into other: %v", cv)
	}
	if evs := ring.Events(); len(evs) != 1 || evs[0].Reason != ReasonOther {
		t.Fatalf("event reason not canonicalised: %v", ring.Events())
	}
}

// TestLatencySamplingGate pins the hot-path clock contract: with
// sampling off Now() is zero and no histogram fills; with it on the
// latencies land.
func TestLatencySamplingGate(t *testing.T) {
	reg := NewRegistry()
	off := NewAdmissionObs(reg, "off", AdmissionObsOptions{})
	if !off.Now().IsZero() {
		t.Fatal("Now() must be zero without SampleLatency")
	}
	off.PlanDone(off.Now(), 1, nil, 0, nil)
	off.CommitDone(off.Now(), 1, nil, 0)
	off.CloneDone(off.Now())
	for name, s := range reg.Histograms() {
		if s.Count != 0 {
			t.Fatalf("%s sampled %d values with sampling off", name, s.Count)
		}
	}

	on := NewAdmissionObs(reg, "on", AdmissionObsOptions{SampleLatency: true})
	start := on.Now()
	if start.IsZero() {
		t.Fatal("Now() must be live with SampleLatency")
	}
	on.PlanDone(start, 1, nil, 0, nil)
	on.CommitDone(on.Now(), 1, nil, 0)
	on.CloneDone(on.Now())
	hs := reg.Histograms()
	for _, name := range []string{
		`nfv_plan_seconds{policy="on"}`,
		`nfv_commit_seconds{policy="on"}`,
		`nfv_snapshot_clone_seconds{policy="on"}`,
	} {
		if hs[name].Count != 1 {
			t.Fatalf("%s count = %d, want 1", name, hs[name].Count)
		}
	}
}

var errTest = errType{}

type errType struct{}

func (errType) Error() string { return "test error" }
