package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("nfv_admitted_total", "help", L("policy", "SP")).Add(9)
	refreshed := 0
	srv := httptest.NewServer(Handler(func() *Registry { return reg }, func() { refreshed++ }))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	if !strings.Contains(body, `nfv_admitted_total{policy="SP"} 9`) {
		t.Fatalf("/metrics body:\n%s", body)
	}

	code, body, ctype = get("/metrics.json")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("/metrics.json status %d type %q", code, ctype)
	}
	if !strings.Contains(body, `"nfv_admitted_total"`) {
		t.Fatalf("/metrics.json body:\n%s", body)
	}

	if code, body, _ = get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	if code, _, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if code, _, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}

	// refresh must run once per exposition request (not for pprof).
	if refreshed != 2 {
		t.Fatalf("refresh ran %d times, want 2", refreshed)
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("nil registry: status %d, want 503", resp.StatusCode)
	}
}

func TestListenAndServe(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("g", "help").Set(4)
	addr, stop, err := ListenAndServe("127.0.0.1:0", func() *Registry { return reg }, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "g 4") {
		t.Fatalf("served body:\n%s", body)
	}
	stop()
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still reachable after stop")
	}
}
