package obs

import (
	"sync/atomic"
	"time"
)

// Canonical rejection-reason labels. core.RejectReason maps error
// chains onto these; the engine adds ReasonCommitConflict for plans
// that exhausted their re-plan after optimistic-commit misses.
const (
	ReasonBandwidth      = "bandwidth"
	ReasonCompute        = "compute"
	ReasonThreshold      = "threshold"
	ReasonUnreachable    = "unreachable"
	ReasonDelayBound     = "delay_bound"
	ReasonResourceDown   = "resource_down"
	ReasonCommitConflict = "commit_conflict"
	ReasonOther          = "other"
)

// Repair-mode labels for the nfv_repaired_total counter: a local
// repair re-routes the severed tree around the failure with the
// original placement pinned; a replan ran the full planner path.
const (
	RepairModeLocal  = "local"
	RepairModeReplan = "replan"
)

// AdmissionObs binds the instruments of one admission pipeline (one
// engine or direct admitter): lifecycle counters, the live/in-flight
// gauges, sampled latency histograms, and the event stream. All
// methods are nil-receiver safe so instrumented code calls them
// unconditionally; on the hot path each costs one or two atomic adds
// and — unless latency sampling is enabled — never reads the clock.
//
// One AdmissionObs serves one policy; give concurrent pipelines over
// one Registry distinct policy labels (or share the AdmissionObs — its
// instruments are concurrency-safe).
type AdmissionObs struct {
	policy string
	shard  string
	sink   Sink
	sample bool
	seq    atomic.Uint64

	admitted  *Counter
	rejected  map[string]*Counter
	rejOther  *Counter
	departed  *Counter
	plans     *Counter
	replans   *Counter
	conflicts *Counter
	clones    *Counter
	batches   *Counter
	failures  *Counter
	repairs   *Counter
	repaired  map[string]*Counter
	reconf    *Counter
	shed      *Counter
	live      *Gauge
	inflight  *Gauge

	planLat     *Histogram
	commitLat   *Histogram
	cloneLat    *Histogram
	recoveryLat *Histogram
	batchSize   *Histogram
}

// AdmissionObsOptions configures an AdmissionObs.
type AdmissionObsOptions struct {
	// Events receives the structured admission-event stream; nil
	// disables emission.
	Events Sink
	// SampleLatency enables the plan/commit/snapshot-clone latency
	// histograms. Off by default: latency sampling is the only
	// instrument that reads time.Now() on the hot path.
	SampleLatency bool
	// Shard adds a shard label to every instrument and stamps the
	// Shard field on every emitted event, so the pipelines of a shard
	// router stay attributable on one shared Registry. "" (the
	// default) registers the unsharded series exactly as before.
	Shard string
}

// NewAdmissionObs registers the admission instrument set for one
// policy on reg and returns the bound hooks. Reason-labelled rejection
// counters are pre-registered for every canonical reason so exposition
// output has a stable series set from the first scrape.
func NewAdmissionObs(reg *Registry, policy string, opts AdmissionObsOptions) *AdmissionObs {
	base := []Label{L("policy", policy)}
	if opts.Shard != "" {
		base = append(base, L("shard", opts.Shard))
	}
	with := func(extra Label) []Label {
		return append(append(make([]Label, 0, len(base)+1), base...), extra)
	}
	o := &AdmissionObs{
		policy: policy,
		shard:  opts.Shard,
		sink:   opts.Events,
		sample: opts.SampleLatency,
		admitted: reg.Counter("nfv_admitted_total",
			"Requests admitted (allocated and live).", base...),
		rejected: make(map[string]*Counter),
		departed: reg.Counter("nfv_departed_total",
			"Admitted sessions that departed and released their resources.", base...),
		plans: reg.Counter("nfv_plans_total",
			"Planner invocations (initial plans and re-plans).", base...),
		replans: reg.Counter("nfv_replans_total",
			"Plans recomputed after an optimistic-commit conflict.", base...),
		conflicts: reg.Counter("nfv_commit_conflicts_total",
			"Commit-time validation failures (plan invalidated by a concurrent commit).", base...),
		clones: reg.Counter("nfv_snapshot_clones_total",
			"Residual-network snapshot clones taken for planning.", base...),
		batches: reg.Counter("nfv_commit_batches_total",
			"Commit epochs processed by the writer (each batches >= 1 commit tickets).", base...),
		failures: reg.Counter("nfv_failures_injected_total",
			"Structural changes (link/server failure injection) applied through the engine.", base...),
		repairs: reg.Counter("nfv_repairs_attempted_total",
			"Live sessions a recovery pass tried to repair after a failure.", base...),
		repaired: make(map[string]*Counter),
		reconf: reg.Counter("nfv_reconfigurations_total",
			"Live sessions migrated to a cheaper tree by a reconfiguration pass.", base...),
		shed: reg.Counter("nfv_shed_total",
			"Live sessions dropped by recovery because no residual capacity could host them.", base...),
		live: reg.Gauge("nfv_live_sessions",
			"Admitted sessions currently holding resources.", base...),
		inflight: reg.Gauge("nfv_inflight_admissions",
			"Admit calls currently planning or committing (engine queue depth).", base...),
		planLat: reg.Histogram("nfv_plan_seconds",
			"Planner latency (sampled; empty unless SampleLatency).", nil, base...),
		commitLat: reg.Histogram("nfv_commit_seconds",
			"Commit (allocation + bookkeeping) latency on the writer (sampled).", nil, base...),
		cloneLat: reg.Histogram("nfv_snapshot_clone_seconds",
			"Residual-snapshot clone latency on the writer (sampled).", nil, base...),
		recoveryLat: reg.Histogram("nfv_recovery_seconds",
			"End-to-end latency of one recovery pass (always sampled; recovery is rare).", nil, base...),
		batchSize: reg.Histogram("nfv_commit_batch_size",
			"Commit tickets per epoch batch.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128}, base...),
	}
	for _, mode := range []string{RepairModeLocal, RepairModeReplan} {
		o.repaired[mode] = reg.Counter("nfv_repaired_total",
			"Sessions re-hosted by recovery, by repair mode.", with(L("mode", mode))...)
	}
	for _, reason := range []string{
		ReasonBandwidth, ReasonCompute, ReasonThreshold, ReasonUnreachable,
		ReasonDelayBound, ReasonResourceDown, ReasonCommitConflict, ReasonOther,
	} {
		o.rejected[reason] = reg.Counter("nfv_rejected_total",
			"Requests rejected, by canonical reason.", with(L("reason", reason))...)
	}
	o.rejOther = o.rejected[ReasonOther]
	return o
}

// Shard returns the shard label, "" on a nil or unsharded receiver.
func (o *AdmissionObs) Shard() string {
	if o == nil {
		return ""
	}
	return o.shard
}

// Policy returns the policy label, "" on a nil receiver.
func (o *AdmissionObs) Policy() string {
	if o == nil {
		return ""
	}
	return o.policy
}

// emit assigns the sequence number and forwards ev to the sink.
func (o *AdmissionObs) emit(ev Event) {
	if o.sink == nil {
		return
	}
	ev.Seq = o.seq.Add(1)
	ev.Policy = o.policy
	ev.Shard = o.shard
	o.sink.Emit(ev)
}

// Now returns the wall clock when latency sampling is enabled and the
// zero time otherwise — the guard that keeps time.Now() off the hot
// path by default. Pass the result to the *Done observers.
func (o *AdmissionObs) Now() time.Time {
	if o == nil || !o.sample {
		return time.Time{}
	}
	return time.Now()
}

func observe(h *Histogram, start time.Time) {
	if !start.IsZero() {
		h.Observe(time.Since(start).Seconds())
	}
}

// PlanDone records one planner invocation: the plan counter, the
// sampled latency, and on success an AdmitPlanned event.
func (o *AdmissionObs) PlanDone(start time.Time, reqID int, servers []int, cost float64, err error) {
	if o == nil {
		return
	}
	o.plans.Inc()
	observe(o.planLat, start)
	if err == nil {
		o.emit(Event{Type: AdmitPlanned, Request: reqID, Servers: servers, Cost: cost})
	}
}

// Replanned records a re-plan after an optimistic-commit conflict.
// Call it in addition to PlanDone for the second plan.
func (o *AdmissionObs) Replanned(reqID int) {
	if o == nil {
		return
	}
	o.replans.Inc()
	o.emit(Event{Type: Replanned, Request: reqID})
}

// CommitConflict records one commit-time validation failure.
func (o *AdmissionObs) CommitConflict(reqID int, reason string) {
	if o == nil {
		return
	}
	o.conflicts.Inc()
	o.emit(Event{Type: CommitConflict, Request: reqID, Reason: reason})
}

// CommitDone records a successful commit: the admitted counter, live
// gauge, sampled commit latency, and an Admitted event.
func (o *AdmissionObs) CommitDone(start time.Time, reqID int, servers []int, cost float64) {
	if o == nil {
		return
	}
	o.admitted.Inc()
	o.live.Add(1)
	observe(o.commitLat, start)
	o.emit(Event{Type: Admitted, Request: reqID, Servers: servers, Cost: cost})
}

// RejectedReason counts a rejection under the given canonical reason
// and emits a Rejected event.
func (o *AdmissionObs) RejectedReason(reqID int, reason string) {
	if o == nil {
		return
	}
	c, ok := o.rejected[reason]
	if !ok {
		c = o.rejOther
		reason = ReasonOther
	}
	c.Inc()
	o.emit(Event{Type: Rejected, Request: reqID, Reason: reason})
}

// DepartDone records a session departure.
func (o *AdmissionObs) DepartDone(reqID int) {
	if o == nil {
		return
	}
	o.departed.Inc()
	o.live.Add(-1)
	o.emit(Event{Type: Departed, Request: reqID})
}

// CloneDone records one residual-snapshot clone (count always, latency
// when sampling).
func (o *AdmissionObs) CloneDone(start time.Time) {
	if o == nil {
		return
	}
	o.clones.Inc()
	observe(o.cloneLat, start)
}

// BatchCommitted records one commit epoch processed by the writer:
// the batch counter and the tickets-per-batch histogram. size counts
// every ticket in the epoch, committed or failed.
func (o *AdmissionObs) BatchCommitted(size int) {
	if o == nil {
		return
	}
	o.batches.Inc()
	o.batchSize.Observe(float64(size))
}

// FailureInjected records a structural change applied through the
// engine's Update hatch (the network's StructureVersion moved).
func (o *AdmissionObs) FailureInjected(detail string) {
	if o == nil {
		return
	}
	o.failures.Inc()
	o.emit(Event{Type: FailureInjected, Reason: detail})
}

// RepairAttempted records that a recovery pass is about to repair one
// affected session.
func (o *AdmissionObs) RepairAttempted(reqID int) {
	if o == nil {
		return
	}
	o.repairs.Inc()
	o.emit(Event{Type: RepairAttempted, Request: reqID})
}

// Repaired records a session re-hosted by recovery under the given
// mode (RepairModeLocal or RepairModeReplan) at the new tree's cost.
func (o *AdmissionObs) Repaired(reqID int, mode string, cost float64) {
	if o == nil {
		return
	}
	if c, ok := o.repaired[mode]; ok {
		c.Inc()
	}
	o.emit(Event{Type: Repaired, Request: reqID, Reason: mode, Cost: cost})
}

// Reconfigured records a live session migrated to a cheaper tree by a
// reconfiguration pass, at the new tree's cost.
func (o *AdmissionObs) Reconfigured(reqID int, servers []int, cost float64) {
	if o == nil {
		return
	}
	o.reconf.Inc()
	o.emit(Event{Type: Reconfigured, Request: reqID, Servers: servers, Cost: cost})
}

// ReconfiguredCount returns the reconfiguration counter's value (0 on
// nil).
func (o *AdmissionObs) ReconfiguredCount() uint64 {
	if o == nil {
		return 0
	}
	return o.reconf.Value()
}

// SessionShed records a session recovery had to drop: its resources
// are released and it no longer counts as live.
func (o *AdmissionObs) SessionShed(reqID int, reason string) {
	if o == nil {
		return
	}
	o.shed.Inc()
	o.live.Add(-1)
	o.emit(Event{Type: Shed, Request: reqID, Reason: reason})
}

// RecoveryPass records the end-to-end latency of one recovery pass.
// Unlike the admission latencies this is not gated on SampleLatency:
// recovery is rare and its latency is the headline metric of the
// subsystem.
func (o *AdmissionObs) RecoveryPass(seconds float64) {
	if o == nil {
		return
	}
	o.recoveryLat.Observe(seconds)
}

// InflightAdd moves the in-flight admissions gauge (engine queue
// depth) by delta.
func (o *AdmissionObs) InflightAdd(delta float64) {
	if o == nil {
		return
	}
	o.inflight.Add(delta)
}

// AdmittedCount returns the admitted counter's value (0 on nil).
func (o *AdmissionObs) AdmittedCount() uint64 {
	if o == nil {
		return 0
	}
	return o.admitted.Value()
}

// DepartedCount returns the departed counter's value (0 on nil).
func (o *AdmissionObs) DepartedCount() uint64 {
	if o == nil {
		return 0
	}
	return o.departed.Value()
}

// LiveSessions returns the live-session gauge's value (0 on nil).
func (o *AdmissionObs) LiveSessions() float64 {
	if o == nil {
		return 0
	}
	return o.live.Value()
}

// ShedCount returns the shed counter's value (0 on nil). Together with
// AdmittedCount and DepartedCount it closes the session-conservation
// equation admitted - departed - shed = live that the scenario
// harness checks against the engine's live table.
func (o *AdmissionObs) ShedCount() uint64 {
	if o == nil {
		return 0
	}
	return o.shed.Value()
}
