// Package obs is the observability layer of the admission system: a
// lock-cheap metrics registry (counters, gauges, fixed-bucket latency
// histograms), a structured admission-event stream with pluggable
// sinks, deterministic Prometheus-text and JSON exposition, and an
// HTTP handler that serves both next to net/http/pprof.
//
// Design constraints (DESIGN.md §8): metric updates sit on the
// admission hot path — a counter increment is one atomic add, a gauge
// set one atomic store, and no update ever takes a lock or calls
// time.Now() unless latency sampling was explicitly enabled.
// Registration (Counter/Gauge/Histogram lookup) takes a mutex, so
// instrumented code resolves its instruments once, up front, and holds
// pointers. Exposition output is byte-deterministic for a given set of
// metric values: families sort by name, series by label signature —
// which is what lets golden-file tests pin the formats.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// labelSignature serialises labels into the canonical, sorted
// `{k="v",...}` form used both as the registry key and in exposition.
// Empty labels yield "".
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing metric. All methods are safe
// for concurrent use; Inc and Add are single atomic adds.
type Counter struct {
	v      atomic.Uint64
	labels string // canonical signature, set at registration
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as float64 bits.
// Set is one atomic store; Add is a CAS loop (rarely contended: gauges
// are set from collectors or single-writer code).
type Gauge struct {
	bits   atomic.Uint64
	labels string
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (atomically, via CAS).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultLatencyBuckets are the fixed histogram bounds (seconds) used
// for the engine's plan/commit/clone latencies: 100µs to 2.5s, roughly
// logarithmic. Fixed bounds keep the exposition format byte-stable.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Histogram is a fixed-bucket histogram. Observe is lock-free: one
// atomic add on the bucket plus a CAS loop on the float sum. The
// implicit +Inf bucket catches everything, so the invariant
// sum(bucket counts) == Count() holds at every instant a reader
// observes (each Observe increments exactly one bucket before the
// count, and readers that check consistency snapshot via Snapshot).
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
	labels  string
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds; the final implicit bucket is +Inf
	Counts []uint64  // per-bucket (non-cumulative), len(Bounds)+1
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram state. Taken while writers are active
// it is not guaranteed to be a consistent cut, except that
// sum(Counts) >= Count never fails: the bucket is incremented before
// the count, so every counted observation is already in a bucket.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// family is one named group of series sharing a type and help string.
type family struct {
	name string
	help string
	kind string // "counter" | "gauge" | "histogram"

	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Registry holds metric families and renders them. Registration
// (Counter/Gauge/Histogram) locks; updates on the returned instruments
// never do.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration-independent: kept sorted on render
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help, kind string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:     name,
			help:     help,
			kind:     kind,
			counters: make(map[string]*Counter),
			gauges:   make(map[string]*Gauge),
			hists:    make(map[string]*Histogram),
		}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// Counter returns (registering on first use) the counter series
// name{labels}. Subsequent calls with the same name and labels return
// the same instrument.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "counter")
	c, ok := f.counters[sig]
	if !ok {
		c = &Counter{labels: sig}
		f.counters[sig] = c
	}
	return c
}

// Gauge returns (registering on first use) the gauge series
// name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "gauge")
	g, ok := f.gauges[sig]
	if !ok {
		g = &Gauge{labels: sig}
		f.gauges[sig] = g
	}
	return g
}

// Histogram returns (registering on first use) the histogram series
// name{labels} with the given bucket upper bounds (ascending; nil
// selects DefaultLatencyBuckets). Bounds are fixed at first
// registration of the series.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "histogram")
	h, ok := f.hists[sig]
	if !ok {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
			labels: sig,
		}
		f.hists[sig] = h
	}
	return h
}

// sortedFamilies returns the families sorted by name, and per family
// the sorted series signatures — the deterministic render order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	out := make([]*family, 0, len(names))
	for _, n := range names {
		out = append(out, r.families[n])
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// formatFloat renders a float the way the exposition format expects:
// shortest round-trip representation, "+Inf" for infinity.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Output is byte-deterministic for
// fixed metric values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		switch f.kind {
		case "counter":
			for _, sig := range sortedKeys(f.counters) {
				c := f.counters[sig]
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, sig, c.Value()); err != nil {
					return err
				}
			}
		case "gauge":
			for _, sig := range sortedKeys(f.gauges) {
				g := f.gauges[sig]
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, sig, formatFloat(g.Value())); err != nil {
					return err
				}
			}
		case "histogram":
			for _, sig := range sortedKeys(f.hists) {
				if err := writePrometheusHistogram(w, f.name, sig, f.hists[sig].Snapshot()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// writePrometheusHistogram renders one histogram series: cumulative
// _bucket lines (le=... labels merged into the signature), _sum and
// _count.
func writePrometheusHistogram(w io.Writer, name, sig string, s HistogramSnapshot) error {
	withLE := func(le string) string {
		if sig == "" {
			return `{le="` + le + `"}`
		}
		return sig[:len(sig)-1] + `,le="` + le + `"}`
	}
	var cum uint64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += s.Counts[len(s.Bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, sig, formatFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, sig, s.Count)
	return err
}

// CounterValues returns every counter series as a map from
// "name{labels}" to its value — the comparison form the determinism
// tests use.
func (r *Registry) CounterValues() map[string]uint64 {
	out := make(map[string]uint64)
	for _, f := range r.sortedFamilies() {
		for sig, c := range f.counters {
			out[f.name+sig] = c.Value()
		}
	}
	return out
}

// GaugeValues returns every gauge series as "name{labels}" → value.
func (r *Registry) GaugeValues() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range r.sortedFamilies() {
		for sig, g := range f.gauges {
			out[f.name+sig] = g.Value()
		}
	}
	return out
}

// Histograms returns every histogram series as "name{labels}" →
// snapshot.
func (r *Registry) Histograms() map[string]HistogramSnapshot {
	out := make(map[string]HistogramSnapshot)
	for _, f := range r.sortedFamilies() {
		for sig, h := range f.hists {
			out[f.name+sig] = h.Snapshot()
		}
	}
	return out
}
