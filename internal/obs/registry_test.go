package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestLabelSignature(t *testing.T) {
	if got := labelSignature(nil); got != "" {
		t.Fatalf("empty labels: got %q", got)
	}
	// Key order must not matter: the signature is the canonical sorted
	// form (it doubles as the registry key).
	a := labelSignature([]Label{L("policy", "SP"), L("reason", "bandwidth")})
	b := labelSignature([]Label{L("reason", "bandwidth"), L("policy", "SP")})
	if a != b {
		t.Fatalf("signature depends on label order: %q vs %q", a, b)
	}
	want := `{policy="SP",reason="bandwidth"}`
	if a != want {
		t.Fatalf("signature = %q, want %q", a, want)
	}
}

func TestCounterIdentityAndConcurrency(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("x_total", "help", L("k", "v"))
	c2 := reg.Counter("x_total", "other help ignored", L("k", "v"))
	if c1 != c2 {
		t.Fatal("same name+labels must return the same instrument")
	}
	if c3 := reg.Counter("x_total", "help", L("k", "w")); c3 == c1 {
		t.Fatal("different labels must return a distinct instrument")
	}

	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c1.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c1.Value(); got != goroutines*perG {
		t.Fatalf("lost increments: got %d want %d", got, goroutines*perG)
	}
	c1.Add(5)
	if got := c1.Value(); got != goroutines*perG+5 {
		t.Fatalf("Add: got %d", got)
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("g", "help")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("Set: got %v", g.Value())
	}
	g.Add(-1.5)
	if g.Value() != 1.0 {
		t.Fatalf("Add: got %v", g.Value())
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 4001 {
		t.Fatalf("concurrent Add lost updates: got %v", g.Value())
	}
}

func TestHistogramBucketing(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "help", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// SearchFloat64s: a value equal to a bound lands in that bound's
	// bucket (le semantics: bucket i counts v <= bounds[i]).
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 || s.Sum != 556.5 {
		t.Fatalf("count=%d sum=%v", s.Count, s.Sum)
	}
	if h.Count() != 5 || h.Sum() != 556.5 {
		t.Fatalf("accessors: count=%d sum=%v", h.Count(), h.Sum())
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("sum(buckets)=%d != count=%d", total, s.Count)
	}
}

func TestHistogramDefaultBounds(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "help", nil)
	s := h.Snapshot()
	if len(s.Bounds) != len(DefaultLatencyBuckets) {
		t.Fatalf("nil bounds must select DefaultLatencyBuckets, got %d", len(s.Bounds))
	}
	if len(s.Counts) != len(s.Bounds)+1 {
		t.Fatalf("missing +Inf bucket: %d counts for %d bounds", len(s.Counts), len(s.Bounds))
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as counter then gauge must panic")
		}
	}()
	reg.Gauge("m", "help")
}

func TestValueMaps(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "h", L("p", "A")).Add(3)
	reg.Gauge("g", "h").Set(1.5)
	reg.Histogram("h", "h", []float64{1}).Observe(0.5)

	cv := reg.CounterValues()
	if cv[`c_total{p="A"}`] != 3 {
		t.Fatalf("CounterValues: %v", cv)
	}
	gv := reg.GaugeValues()
	if gv["g"] != 1.5 {
		t.Fatalf("GaugeValues: %v", gv)
	}
	hs := reg.Histograms()
	if s, ok := hs["h"]; !ok || s.Count != 1 {
		t.Fatalf("Histograms: %v", hs)
	}
}

func TestFormatFloat(t *testing.T) {
	if got := formatFloat(math.Inf(1)); got != "+Inf" {
		t.Fatalf("+Inf: got %q", got)
	}
	if got := formatFloat(0.25); got != "0.25" {
		t.Fatalf("0.25: got %q", got)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry()
		// Register in an order that differs from sorted order.
		reg.Gauge("z_gauge", "last family", L("b", "2"))
		reg.Gauge("z_gauge", "last family", L("a", "1"))
		reg.Counter("a_total", "first family").Add(7)
		return reg
	}
	var w1, w2 strings.Builder
	if err := build().WritePrometheus(&w1); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&w2); err != nil {
		t.Fatal(err)
	}
	if w1.String() != w2.String() {
		t.Fatalf("non-deterministic output:\n%s\nvs\n%s", w1.String(), w2.String())
	}
	out := w1.String()
	if !strings.Contains(out, "# TYPE a_total counter") ||
		!strings.Contains(out, "a_total 7") {
		t.Fatalf("missing counter family:\n%s", out)
	}
	if strings.Index(out, "a_total") > strings.Index(out, "z_gauge") {
		t.Fatalf("families not sorted by name:\n%s", out)
	}
	if strings.Index(out, `z_gauge{a="1"}`) > strings.Index(out, `z_gauge{b="2"}`) {
		t.Fatalf("series not sorted by signature:\n%s", out)
	}
}
