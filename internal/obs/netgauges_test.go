package obs

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"nfvmcast/internal/sdn"
	"nfvmcast/internal/topology"
)

func testNetwork(t testing.TB, n int, seed int64) *sdn.Network {
	t.Helper()
	topo, err := topology.WaxmanDegree(n, 4, 0.14, seed)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sdn.NewNetwork(topo, sdn.DefaultConfig(), rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNetworkGaugesFreshNetwork(t *testing.T) {
	nw := testNetwork(t, 30, 7)
	reg := NewRegistry()
	g := NewNetworkGauges(reg, nw, SaturationModel{})
	g.Collect(nw)

	gv := reg.GaugeValues()
	// A fresh network is fully free: every utilisation gauge reads 0.
	for e := 0; e < nw.NumEdges(); e++ {
		name := `nfv_link_utilization{link="` + strconv.Itoa(e) + `"}`
		if v, ok := gv[name]; !ok || v != 0 {
			t.Fatalf("%s = %v, want registered 0", name, v)
		}
	}
	for _, v := range nw.Servers() {
		name := `nfv_server_utilization{server="` + strconv.Itoa(v) + `"}`
		if u, ok := gv[name]; !ok || u != 0 {
			t.Fatalf("%s = %v, want registered 0", name, u)
		}
	}
	for _, agg := range []string{
		"nfv_link_utilization_max", "nfv_link_utilization_mean",
		"nfv_server_utilization_max", "nfv_server_utilization_mean",
		"nfv_links_down", "nfv_servers_down",
	} {
		if gv[agg] != 0 {
			t.Fatalf("%s = %v, want 0", agg, gv[agg])
		}
	}
	// Zero-valued model: no weight-saturation series registered.
	for name := range gv {
		if name == "nfv_link_weight_saturation" || name == "nfv_server_weight_saturation" {
			t.Fatalf("saturation gauge registered despite disabled model")
		}
	}
}

func TestNetworkGaugesSaturation(t *testing.T) {
	nw := testNetwork(t, 30, 7)
	reg := NewRegistry()
	model := SaturationModel{Alpha: 60, Beta: 60, SigmaV: 29, SigmaE: 29}
	g := NewNetworkGauges(reg, nw, model)

	// Consume half of link 0's bandwidth behind the gauges' back, then
	// collect: utilisation and weight saturation must both move.
	half := nw.BandwidthCap(0) / 2
	if err := nw.Allocate(sdn.Allocation{Links: map[int]float64{0: half}}); err != nil {
		t.Fatal(err)
	}
	g.Collect(nw)

	gv := reg.GaugeValues()
	if u := gv[`nfv_link_utilization{link="0"}`]; math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("link 0 utilisation = %v, want 0.5", u)
	}
	wantSat := (math.Pow(model.Beta, 0.5) - 1) / model.SigmaE
	if s := gv[`nfv_link_weight_saturation{link="0"}`]; math.Abs(s-wantSat) > 1e-9 {
		t.Fatalf("link 0 saturation = %v, want %v", s, wantSat)
	}
	if gv["nfv_link_utilization_max"] < 0.5-1e-9 {
		t.Fatalf("max utilisation %v < 0.5", gv["nfv_link_utilization_max"])
	}

	// Release and re-collect: gauges return to zero (the invariant the
	// engine-level departure test leans on).
	if err := nw.Release(sdn.Allocation{Links: map[int]float64{0: half}}); err != nil {
		t.Fatal(err)
	}
	g.Collect(nw)
	gv = reg.GaugeValues()
	if u := gv[`nfv_link_utilization{link="0"}`]; u != 0 {
		t.Fatalf("utilisation after release = %v, want 0", u)
	}
}

func TestNetworkGaugesDownCounts(t *testing.T) {
	nw := testNetwork(t, 30, 7)
	reg := NewRegistry()
	g := NewNetworkGauges(reg, nw, SaturationModel{})
	if err := nw.SetLinkUp(0, false); err != nil {
		t.Fatal(err)
	}
	srv := nw.Servers()[0]
	if err := nw.SetServerUp(srv, false); err != nil {
		t.Fatal(err)
	}
	g.Collect(nw)
	gv := reg.GaugeValues()
	if gv["nfv_links_down"] != 1 || gv["nfv_servers_down"] != 1 {
		t.Fatalf("down counts = %v links, %v servers; want 1, 1",
			gv["nfv_links_down"], gv["nfv_servers_down"])
	}
}
