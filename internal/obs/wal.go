package obs

// WALObs binds the instruments of one write-ahead log (one shard's
// segment chain in internal/wal): append/byte/fsync counters on the
// write side, replay counters on the recovery side, and the
// segment/snapshot bookkeeping. Like AdmissionObs, every method is
// nil-receiver safe so the log calls them unconditionally, and each
// hook costs one or two atomic adds.
type WALObs struct {
	appends     *Counter
	bytes       *Counter
	fsyncs      *Counter
	rotations   *Counter
	snapshots   *Counter
	replayed    *Counter
	replayFalls *Counter
	segments    *Gauge
	lastLSN     *Gauge
}

// NewWALObs registers the WAL instrument set for one shard on reg
// ("" registers the unsharded series).
func NewWALObs(reg *Registry, shard string) *WALObs {
	var base []Label
	if shard != "" {
		base = []Label{L("shard", shard)}
	}
	return &WALObs{
		appends: reg.Counter("nfv_wal_appends_total",
			"Records appended to the write-ahead log.", base...),
		bytes: reg.Counter("nfv_wal_bytes_total",
			"Payload and framing bytes appended to the write-ahead log.", base...),
		fsyncs: reg.Counter("nfv_wal_fsyncs_total",
			"fsync barriers issued before acking operations.", base...),
		rotations: reg.Counter("nfv_wal_segment_rotations_total",
			"Segment files rotated out after reaching the size bound.", base...),
		snapshots: reg.Counter("nfv_wal_snapshots_total",
			"Live-table snapshots written.", base...),
		replayed: reg.Counter("nfv_wal_replayed_records_total",
			"Records replayed during recovery.", base...),
		replayFalls: reg.Counter("nfv_wal_replay_tail_truncations_total",
			"Recoveries that found (and cut) a truncated or corrupt tail.", base...),
		segments: reg.Gauge("nfv_wal_segments",
			"Live segment files in the log directory.", base...),
		lastLSN: reg.Gauge("nfv_wal_last_lsn",
			"LSN of the most recently appended record.", base...),
	}
}

// Appended records one durable append of n framed bytes at lsn.
func (o *WALObs) Appended(lsn uint64, n int) {
	if o == nil {
		return
	}
	o.appends.Inc()
	o.bytes.Add(uint64(n))
	o.lastLSN.Set(float64(lsn))
}

// Fsynced counts one fsync barrier.
func (o *WALObs) Fsynced() {
	if o == nil {
		return
	}
	o.fsyncs.Inc()
}

// Rotated counts one segment rotation; n is the new live segment count.
func (o *WALObs) Rotated(n int) {
	if o == nil {
		return
	}
	o.rotations.Inc()
	o.segments.Set(float64(n))
}

// Snapshotted counts one snapshot write; n is the live segment count
// after garbage collection.
func (o *WALObs) Snapshotted(n int) {
	if o == nil {
		return
	}
	o.snapshots.Inc()
	o.segments.Set(float64(n))
}

// Replayed records a recovery pass: n records replayed, truncatedTail
// whether the tail had to be cut at the last valid record boundary.
func (o *WALObs) Replayed(n int, truncatedTail bool) {
	if o == nil {
		return
	}
	o.replayed.Add(uint64(n))
	if truncatedTail {
		o.replayFalls.Inc()
	}
}
