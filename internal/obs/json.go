package obs

import (
	"encoding/json"
	"io"
)

// JSON export of a registry: the same data as the Prometheus text
// format, as one document. Series are sorted (families by name, series
// by label signature) so the output is byte-deterministic for fixed
// values — the JSON golden test pins this.

type counterJSON struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Value  uint64 `json:"value"`
}

type gaugeJSON struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

type histogramJSON struct {
	Name    string    `json:"name"`
	Labels  string    `json:"labels,omitempty"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
	Sum     float64   `json:"sum"`
	Count   uint64    `json:"count"`
}

type exportJSON struct {
	Counters   []counterJSON   `json:"counters,omitempty"`
	Gauges     []gaugeJSON     `json:"gauges,omitempty"`
	Histograms []histogramJSON `json:"histograms,omitempty"`
}

// WriteJSON renders the registry as one indented JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	var doc exportJSON
	for _, f := range r.sortedFamilies() {
		switch f.kind {
		case "counter":
			for _, sig := range sortedKeys(f.counters) {
				doc.Counters = append(doc.Counters, counterJSON{
					Name: f.name, Labels: sig, Value: f.counters[sig].Value(),
				})
			}
		case "gauge":
			for _, sig := range sortedKeys(f.gauges) {
				doc.Gauges = append(doc.Gauges, gaugeJSON{
					Name: f.name, Labels: sig, Value: f.gauges[sig].Value(),
				})
			}
		case "histogram":
			for _, sig := range sortedKeys(f.hists) {
				s := f.hists[sig].Snapshot()
				doc.Histograms = append(doc.Histograms, histogramJSON{
					Name: f.name, Labels: sig,
					Bounds: s.Bounds, Buckets: s.Counts, Sum: s.Sum, Count: s.Count,
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}
