package obs

import (
	"testing"
)

// TestReconfiguredHook pins the reconfiguration instrumentation: the
// nfv_reconfigurations_total counter, the ReconfiguredCount accessor
// and the "reconfigured" event the migration pass emits per session —
// plus recovery-pass hooks that share the maintenance surface.
func TestReconfiguredHook(t *testing.T) {
	reg := NewRegistry()
	ring := NewRingSink(16)
	o := NewAdmissionObs(reg, "Reconf_CP", AdmissionObsOptions{Events: ring})

	o.Reconfigured(7, []int{2, 5}, 12.5)
	o.Reconfigured(9, []int{3}, 4)
	if got := o.ReconfiguredCount(); got != 2 {
		t.Fatalf("ReconfiguredCount = %d, want 2", got)
	}
	cv := reg.CounterValues()
	if got := cv[`nfv_reconfigurations_total{policy="Reconf_CP"}`]; got != 2 {
		t.Fatalf("nfv_reconfigurations_total = %d, want 2", got)
	}
	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("%d events, want 2", len(evs))
	}
	ev := evs[0]
	if ev.Type != Reconfigured || ev.Request != 7 || ev.Cost != 12.5 ||
		len(ev.Servers) != 2 || ev.Servers[0] != 2 || ev.Servers[1] != 5 {
		t.Fatalf("malformed reconfigured event: %+v", ev)
	}

	// Adjacent maintenance hooks share the lifecycle surface.
	o.RepairAttempted(7)
	o.Repaired(7, RepairModeReplan, 3)
	o.SessionShed(9, "degraded")
	o.BatchCommitted(3)
	o.RecoveryPass(0.25)
	if o.ShedCount() != 1 {
		t.Fatalf("ShedCount = %d, want 1", o.ShedCount())
	}
	if o.Shard() != "" {
		t.Fatalf("Shard = %q on unsharded obs", o.Shard())
	}

	// Nil-receiver contract for the new hooks.
	var nilObs *AdmissionObs
	nilObs.Reconfigured(1, nil, 0)
	nilObs.RepairAttempted(1)
	nilObs.Repaired(1, RepairModeLocal, 0)
	nilObs.SessionShed(1, "x")
	nilObs.BatchCommitted(1)
	nilObs.RecoveryPass(0)
	if nilObs.ReconfiguredCount() != 0 || nilObs.ShedCount() != 0 || nilObs.Shard() != "" {
		t.Fatal("nil accessors must return zero values")
	}
}
