package obs

import (
	"math"
	"strconv"

	"nfvmcast/internal/sdn"
)

// SaturationModel carries the exponential cost-model constants needed
// to gauge how close each resource sits to its admission threshold:
// weight w_e = β^{util} − 1 against σ_e for links and w_v = α^{util} − 1
// against σ_v for servers (paper §V.A; core.CostModel holds the same
// constants). The zero value disables the weight-saturation gauges and
// leaves only the raw utilisation ones.
type SaturationModel struct {
	Alpha  float64 // computing-cost base (α > 1)
	Beta   float64 // bandwidth-cost base (β > 1)
	SigmaV float64 // server admission threshold σ_v
	SigmaE float64 // link admission threshold σ_e
}

// enabled reports whether the model can price saturation.
func (m SaturationModel) enabled() bool {
	return m.Alpha > 1 && m.Beta > 1 && m.SigmaV > 0 && m.SigmaE > 0
}

// NetworkGauges publishes per-link and per-server residual state of
// one sdn.Network into a Registry: utilisation (1 − residual/capacity)
// for every link and server, exponential-weight saturation (w/σ, the
// fraction of the admission threshold consumed) when a SaturationModel
// is set, and aggregate max/mean gauges.
//
// Collect READS the network, so run it where network reads are safe —
// inside Engine.Update, from the engine's exposition refresh, or on a
// quiesced network. Instruments are resolved once at construction;
// Collect itself is allocation-free apart from first-use registration.
type NetworkGauges struct {
	model SaturationModel

	linkUtil []*Gauge
	linkSat  []*Gauge
	srvUtil  map[int]*Gauge
	srvSat   map[int]*Gauge

	linkUtilMax  *Gauge
	linkUtilMean *Gauge
	srvUtilMax   *Gauge
	srvUtilMean  *Gauge
	linksDown    *Gauge
	serversDown  *Gauge
}

// NewNetworkGauges registers gauges for every link and server of nw on
// reg. The network defines the series set (link and server IDs);
// Collect may then be called with nw or any clone of it.
func NewNetworkGauges(reg *Registry, nw *sdn.Network, model SaturationModel) *NetworkGauges {
	g := &NetworkGauges{
		model:    model,
		linkUtil: make([]*Gauge, nw.NumEdges()),
		srvUtil:  make(map[int]*Gauge, len(nw.Servers())),
		linkUtilMax: reg.Gauge("nfv_link_utilization_max",
			"Highest link utilisation across the network."),
		linkUtilMean: reg.Gauge("nfv_link_utilization_mean",
			"Mean link utilisation across the network."),
		srvUtilMax: reg.Gauge("nfv_server_utilization_max",
			"Highest server utilisation across the network."),
		srvUtilMean: reg.Gauge("nfv_server_utilization_mean",
			"Mean server utilisation across the network."),
		linksDown: reg.Gauge("nfv_links_down",
			"Links currently failed (failure injection)."),
		serversDown: reg.Gauge("nfv_servers_down",
			"Servers currently failed (failure injection)."),
	}
	for e := 0; e < nw.NumEdges(); e++ {
		g.linkUtil[e] = reg.Gauge("nfv_link_utilization",
			"Per-link utilisation, 1 - residual/capacity.", L("link", strconv.Itoa(e)))
	}
	for _, v := range nw.Servers() {
		g.srvUtil[v] = reg.Gauge("nfv_server_utilization",
			"Per-server utilisation, 1 - residual/capacity.", L("server", strconv.Itoa(v)))
	}
	if model.enabled() {
		g.linkSat = make([]*Gauge, nw.NumEdges())
		g.srvSat = make(map[int]*Gauge, len(g.srvUtil))
		for e := 0; e < nw.NumEdges(); e++ {
			g.linkSat[e] = reg.Gauge("nfv_link_weight_saturation",
				"Per-link exponential weight over threshold, (beta^util - 1) / sigma_e.",
				L("link", strconv.Itoa(e)))
		}
		for v := range g.srvUtil {
			g.srvSat[v] = reg.Gauge("nfv_server_weight_saturation",
				"Per-server exponential weight over threshold, (alpha^util - 1) / sigma_v.",
				L("server", strconv.Itoa(v)))
		}
	}
	return g
}

// Collect reads nw's residual state into the gauges. nw must have the
// same link/server identity as the network the gauges were built for.
func (g *NetworkGauges) Collect(nw *sdn.Network) {
	var (
		maxU, sumU float64
		down       int
	)
	m := nw.NumEdges()
	if m > len(g.linkUtil) {
		m = len(g.linkUtil)
	}
	for e := 0; e < m; e++ {
		u := nw.LinkUtilization(e)
		g.linkUtil[e].Set(u)
		if g.linkSat != nil {
			g.linkSat[e].Set((math.Pow(g.model.Beta, u) - 1) / g.model.SigmaE)
		}
		if u > maxU {
			maxU = u
		}
		sumU += u
		if !nw.LinkUp(e) {
			down++
		}
	}
	g.linkUtilMax.Set(maxU)
	if m > 0 {
		g.linkUtilMean.Set(sumU / float64(m))
	}
	g.linksDown.Set(float64(down))

	maxU, sumU, down = 0, 0, 0
	count := 0
	for v, gauge := range g.srvUtil {
		u := nw.ServerUtilization(v)
		gauge.Set(u)
		if g.srvSat != nil {
			g.srvSat[v].Set((math.Pow(g.model.Alpha, u) - 1) / g.model.SigmaV)
		}
		if u > maxU {
			maxU = u
		}
		sumU += u
		count++
		if !nw.ServerUp(v) {
			down++
		}
	}
	g.srvUtilMax.Set(maxU)
	if count > 0 {
		g.srvUtilMean.Set(sumU / float64(count))
	}
	g.serversDown.Set(float64(down))
}
