package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// EventType names one step of the admission lifecycle.
type EventType string

// The admission-event vocabulary. A sequentially driven run emits, per
// request, AdmitPlanned followed by Admitted or Rejected; the engine's
// concurrent mode can interleave CommitConflict and Replanned between
// them. Departed closes a session; FailureInjected marks a structural
// change of the network (failure injection through Engine.Update).
// The recovery subsystem (internal/recover) extends the vocabulary:
// after a FailureInjected, each affected session emits RepairAttempted
// followed by Repaired (Reason carries the mode, "local" or "replan")
// or Shed (the session could not be re-hosted and was dropped with
// ErrDegraded).
const (
	AdmitPlanned    EventType = "admit_planned"
	CommitConflict  EventType = "commit_conflict"
	Replanned       EventType = "replanned"
	Admitted        EventType = "admitted"
	Rejected        EventType = "rejected"
	Departed        EventType = "departed"
	FailureInjected EventType = "failure_injected"
	RepairAttempted EventType = "repair_attempted"
	Repaired        EventType = "repaired"
	// Reconfigured records a live session migrated to a cheaper tree by
	// a drift-triggered reconfiguration pass (Reconf_CP) during
	// Engine.Update.
	Reconfigured EventType = "reconfigured"
	Shed         EventType = "shed"
	// MutationApplied records a typed maintenance batch accepted by
	// engine.Apply — the durable form of a failure/resize script step.
	// It appears in the write-ahead log (internal/wal), which reuses
	// this event vocabulary as its record schema, rather than in the
	// live admission stream (which keeps the coarser FailureInjected).
	MutationApplied EventType = "mutation_applied"
)

// Event is one structured admission event. Fields are value types so
// events can outlive the solution objects they describe; zero-valued
// fields are omitted from the JSON encoding, keeping lines compact and
// byte-stable.
type Event struct {
	// Seq is the emission sequence number, assigned by the stream
	// (starting at 1). Strictly increasing; in concurrent runs it
	// reflects emission order, not request arrival order.
	Seq uint64 `json:"seq"`
	// Type is the lifecycle step.
	Type EventType `json:"type"`
	// Policy is the planner name (Online_CP, SP, ...).
	Policy string `json:"policy,omitempty"`
	// Shard names the shard whose pipeline emitted the event, when the
	// admission runs behind a shard router ("" for unsharded engines).
	Shard string `json:"shard,omitempty"`
	// Request is the request ID the event concerns.
	Request int `json:"request,omitempty"`
	// Reason is the canonical rejection reason (Rejected), or a short
	// description of the structural change (FailureInjected).
	Reason string `json:"reason,omitempty"`
	// Servers are the serving nodes (AdmitPlanned, Admitted).
	Servers []int `json:"servers,omitempty"`
	// Cost is the solution's operational cost (AdmitPlanned, Admitted).
	Cost float64 `json:"cost,omitempty"`
}

// Sink consumes events. Implementations must be safe for concurrent
// Emit calls: the engine's planners emit from their own goroutines.
type Sink interface {
	Emit(Event)
}

// JSONLinesSink writes one JSON object per event, newline-terminated —
// the archival format (golden-pinned in testdata/events.jsonl.golden).
type JSONLinesSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLinesSink returns a sink writing JSON lines to w.
func NewJSONLinesSink(w io.Writer) *JSONLinesSink {
	return &JSONLinesSink{w: w}
}

// Emit writes the event as one JSON line. The first write error sticks
// and suppresses further writes (inspect it with Err).
func (s *JSONLinesSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		s.err = err
		return
	}
	b = append(b, '\n')
	_, s.err = s.w.Write(b)
}

// Err returns the first write or encoding error, if any.
func (s *JSONLinesSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// RingSink retains the last N events in memory — the test sink.
type RingSink struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total int
}

// NewRingSink returns a sink retaining the last n events.
func NewRingSink(n int) *RingSink {
	if n < 1 {
		n = 1
	}
	return &RingSink{buf: make([]Event, 0, n)}
}

// Emit records the event, evicting the oldest when full.
func (s *RingSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, ev)
		return
	}
	s.buf[s.next] = ev
	s.next = (s.next + 1) % len(s.buf)
}

// Events returns the retained events, oldest first.
func (s *RingSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Total reports how many events were emitted (including evicted ones).
func (s *RingSink) Total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// MultiSink fans one event out to several sinks in order.
type MultiSink []Sink

// Emit forwards ev to every sink.
func (m MultiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}
