package engine

import (
	"context"
	"errors"
	"testing"

	"nfvmcast/internal/core"
	"nfvmcast/internal/graph"
	"nfvmcast/internal/obs"
	recov "nfvmcast/internal/recover"
	"nfvmcast/internal/sdn"
)

// hottestNonBridgeLink picks the deterministic failure target of the
// recovery tests: the most utilised link whose loss does not partition
// the network.
func hottestNonBridgeLink(t *testing.T, nw *sdn.Network) graph.EdgeID {
	t.Helper()
	isBridge := make(map[graph.EdgeID]bool)
	for _, e := range graph.Bridges(nw.Graph()) {
		isBridge[e] = true
	}
	var hot graph.EdgeID = -1
	var hotUtil float64
	for e := 0; e < nw.NumEdges(); e++ {
		if u := nw.LinkUtilization(e); u > hotUtil && !isBridge[e] {
			hot, hotUtil = e, u
		}
	}
	if hot == -1 {
		t.Fatal("no non-bridge link carries load")
	}
	return hot
}

// busiestServer returns the most utilised server.
func busiestServer(t *testing.T, nw *sdn.Network) graph.NodeID {
	t.Helper()
	var best graph.NodeID = -1
	var bestUtil float64
	for _, v := range nw.Servers() {
		if u := nw.ServerUtilization(v); u > bestUtil {
			best, bestUtil = v, u
		}
	}
	if best == -1 {
		t.Fatal("no server carries load")
	}
	return best
}

// TestRecoveryDeterminismOracle pins the tentpole's determinism claim:
// a fixed failure schedule (hottest non-bridge link down, busiest
// server down, link restored) yields byte-identical recovery outcomes
// — session order, modes, costs, attempt counts — across engine worker
// counts, because recovery always runs sequentially on the writer in
// ascending request-ID order. Live-session and shed counts ride along.
func TestRecoveryDeterminismOracle(t *testing.T) {
	const requests = 80
	seed := int64(11)

	type runResult struct {
		fingerprints []string
		live         int
		admitted     int
		shed         int
	}
	results := make(map[int]runResult)
	for _, workers := range []int{1, 4, 8} {
		nw := testNetwork(t, "geant", seed)
		reqs := requestPool(t, nw.NumNodes(), requests, seed+13)
		pol := recov.DefaultPolicy()
		eng := New(nw, plannerFor(t, "Online_CP", nw), Options{
			Workers:  workers,
			Recovery: &pol,
		})
		for _, req := range reqs {
			_, _ = eng.Admit(req)
		}

		// The failure schedule is computed from the post-admission
		// state, which the admission oracle pins to be identical across
		// worker counts — so every run fails the same resources.
		hot := hottestNonBridgeLink(t, nw)
		srv := busiestServer(t, nw)

		var res runResult
		for _, step := range []func(n *sdn.Network) error{
			func(n *sdn.Network) error { return n.SetLinkUp(hot, false) },
			func(n *sdn.Network) error { return n.SetServerUp(srv, false) },
			func(n *sdn.Network) error { return n.SetLinkUp(hot, true) },
		} {
			if err := eng.Update(step); err != nil {
				t.Fatalf("workers=%d: update: %v", workers, err)
			}
			rep := eng.LastRecovery()
			if rep == nil {
				t.Fatalf("workers=%d: recovery did not run", workers)
			}
			res.fingerprints = append(res.fingerprints, rep.Fingerprint())
			res.shed += rep.Shed
		}
		res.live = eng.LiveCount()
		res.admitted = eng.AdmittedCount()
		eng.Close()
		results[workers] = res
	}

	base := results[1]
	if base.fingerprints[0] == "" {
		t.Fatal("link failure affected no session; schedule too weak to pin determinism")
	}
	for _, workers := range []int{4, 8} {
		got := results[workers]
		for i := range base.fingerprints {
			if got.fingerprints[i] != base.fingerprints[i] {
				t.Errorf("workers=%d step %d: recovery fingerprint diverged\n--- workers=1\n%s--- workers=%d\n%s",
					workers, i, base.fingerprints[i], workers, got.fingerprints[i])
			}
		}
		if got.live != base.live || got.admitted != base.admitted || got.shed != base.shed {
			t.Errorf("workers=%d: live/admitted/shed = %d/%d/%d, want %d/%d/%d",
				workers, got.live, got.admitted, got.shed, base.live, base.admitted, base.shed)
		}
	}
}

// TestRecoveryRepairCostBound checks the γ rule: every local repair's
// new tree costs at most Gamma times the damaged one, and repaired
// sessions stay live (a later Depart releases the replacement bundle
// and the network returns to full capacity).
func TestRecoveryRepairCostBound(t *testing.T) {
	nw := testNetwork(t, "geant", 5)
	pol := recov.Policy{Gamma: 1.25, RetryBudget: 1}
	eng := New(nw, plannerFor(t, "Online_CP", nw), Options{Workers: 1, Recovery: &pol})
	defer eng.Close()

	var admitted []int
	for _, req := range requestPool(t, nw.NumNodes(), 80, 23) {
		if _, err := eng.Admit(req); err == nil {
			admitted = append(admitted, req.ID)
		}
	}
	hot := hottestNonBridgeLink(t, nw)
	if err := eng.Update(func(n *sdn.Network) error { return n.SetLinkUp(hot, false) }); err != nil {
		t.Fatal(err)
	}
	rep := eng.LastRecovery()
	if rep == nil || len(rep.Outcomes) == 0 {
		t.Fatal("failure affected no session")
	}
	for _, out := range rep.Outcomes {
		if out.Mode != recov.ModeLocal {
			continue
		}
		if out.NewCost > pol.Gamma*out.OldCost {
			t.Errorf("session %d: local repair cost %.2f exceeds γ bound %.2f",
				out.RequestID, out.NewCost, pol.Gamma*out.OldCost)
		}
		if out.Solution == nil || len(out.Solution.Servers) != 1 {
			t.Errorf("session %d: local repair must pin the single-server placement", out.RequestID)
		}
	}

	// Repaired sessions depart cleanly; shed ones are already gone.
	shed := make(map[int]bool)
	for _, id := range rep.Degraded() {
		shed[id] = true
	}
	for _, id := range admitted {
		if shed[id] {
			if _, err := eng.Depart(id); !errors.Is(err, core.ErrUnknownRequest) {
				t.Errorf("departing shed session %d: got %v, want ErrUnknownRequest", id, err)
			}
			continue
		}
		if _, err := eng.Depart(id); err != nil {
			t.Errorf("departing session %d after recovery: %v", id, err)
		}
	}
	if n := eng.LiveCount(); n != 0 {
		t.Fatalf("LiveCount = %d after departing everything", n)
	}
	for e := 0; e < nw.NumEdges(); e++ {
		if diff := nw.BandwidthCap(e) - nw.ResidualBandwidth(e); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("link %d: residual %.6f != capacity %.6f after full departure",
				e, nw.ResidualBandwidth(e), nw.BandwidthCap(e))
		}
	}
}

// TestRecoveryShedsWithErrDegraded fails every server: nothing can be
// re-hosted, so recovery must shed every live session deterministically
// with ErrDegraded, and the shed counter must agree.
func TestRecoveryShedsWithErrDegraded(t *testing.T) {
	nw := testNetwork(t, "waxman", 9)
	pol := recov.DefaultPolicy()
	reg := obs.NewRegistry()
	eng := New(nw, plannerFor(t, "Online_CP", nw), Options{
		Workers:  1,
		Recovery: &pol,
		Obs:      obs.NewAdmissionObs(reg, "Online_CP", obs.AdmissionObsOptions{}),
	})
	defer eng.Close()

	for _, req := range requestPool(t, nw.NumNodes(), 40, 31) {
		_, _ = eng.Admit(req)
	}
	before := eng.LiveCount()
	if before == 0 {
		t.Fatal("no session admitted")
	}
	if err := eng.Update(func(n *sdn.Network) error {
		for _, v := range n.Servers() {
			if err := n.SetServerUp(v, false); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	rep := eng.LastRecovery()
	if rep == nil {
		t.Fatal("recovery did not run")
	}
	if rep.Shed != before || rep.Repaired() != 0 {
		t.Fatalf("shed %d / repaired %d, want %d / 0", rep.Shed, rep.Repaired(), before)
	}
	for _, out := range rep.Outcomes {
		if !errors.Is(out.Err, recov.ErrDegraded) {
			t.Errorf("session %d: shed outcome error %v does not match ErrDegraded", out.RequestID, out.Err)
		}
	}
	if n := eng.LiveCount(); n != 0 {
		t.Fatalf("LiveCount = %d after shedding everything", n)
	}
	counters := reg.CounterValues()
	if got := counters[`nfv_shed_total{policy="Online_CP"}`]; got != uint64(before) {
		t.Errorf("nfv_shed_total = %d, want %d", got, before)
	}
	if gauges := reg.GaugeValues(); gauges[`nfv_live_sessions{policy="Online_CP"}`] != 0 {
		t.Errorf("live gauge = %v after shedding everything", gauges[`nfv_live_sessions{policy="Online_CP"}`])
	}
}

// TestAdmitContextCancellation checks the context satellite: a
// canceled Admit leaves the network untouched and is not counted as a
// rejection, in both sequential and concurrent mode.
func TestAdmitContextCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		nw := testNetwork(t, "geant", 13)
		eng := New(nw, plannerFor(t, "Online_CP", nw), Options{Workers: workers})
		reqs := requestPool(t, nw.NumNodes(), 3, 41)

		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := eng.AdmitContext(ctx, reqs[0]); !core.IsCanceled(err) {
			t.Fatalf("workers=%d: canceled admit returned %v, want IsCanceled", workers, err)
		}
		if eng.RejectedCount() != 0 {
			t.Fatalf("workers=%d: canceled admit counted as rejection", workers)
		}
		for e := 0; e < nw.NumEdges(); e++ {
			if nw.ResidualBandwidth(e) != nw.BandwidthCap(e) {
				t.Fatalf("workers=%d: canceled admit moved residuals", workers)
			}
		}
		// A live context admits normally afterwards.
		if _, err := eng.AdmitContext(context.Background(), reqs[1]); err != nil {
			t.Fatalf("workers=%d: live-context admit failed: %v", workers, err)
		}
		eng.Close()
	}
}

// TestUpdateContextCancellation checks that an already-canceled context
// aborts Update before the mutation runs.
func TestUpdateContextCancellation(t *testing.T) {
	nw := testNetwork(t, "geant", 13)
	eng := New(nw, plannerFor(t, "SP", nw), Options{Workers: 1})
	defer eng.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := eng.UpdateContext(ctx, func(n *sdn.Network) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("UpdateContext with canceled ctx: %v", err)
	}
	if ran {
		t.Fatal("canceled UpdateContext still ran the mutation")
	}
}

// TestRecoverNowWithoutPolicy pins the no-recovery contract: engines
// built without a policy report nothing and leave damaged sessions
// alone.
func TestRecoverNowWithoutPolicy(t *testing.T) {
	nw := testNetwork(t, "geant", 13)
	eng := New(nw, plannerFor(t, "SP", nw), Options{Workers: 1})
	defer eng.Close()

	if eng.RecoveryEnabled() {
		t.Fatal("RecoveryEnabled without a policy")
	}
	rep, err := eng.RecoverNow(context.Background())
	if err != nil || rep != nil {
		t.Fatalf("RecoverNow without policy = (%v, %v), want (nil, nil)", rep, err)
	}
	if eng.LastRecovery() != nil {
		t.Fatal("LastRecovery set without a policy")
	}
}
