package engine

import (
	"context"
	"fmt"
	"strings"

	recov "nfvmcast/internal/recover"
	"nfvmcast/internal/sdn"
)

// Recovery integration: when the engine is built with a recovery
// policy (Options.Recovery / WithRecovery), every structural change
// applied through Update triggers a recovery pass on the writer
// goroutine, inline with the update — so by the time Update returns,
// every affected live session is repaired or shed and no concurrent
// Admit ever plans against a half-recovered state. Recovery runs
// sessions in ascending request-ID order and plans sequentially on the
// writer, which makes its outcomes independent of the engine's worker
// count (pinned by the recovery determinism oracle).

// recoverLocked runs one recovery pass. Caller must be on the writer
// goroutine.
func (e *Engine) recoverLocked(ctx context.Context) error {
	if e.rec == nil {
		return nil
	}
	rep, err := e.rec.Recover(ctx, e.recArena)
	e.lastRec = rep
	if len(rep.Outcomes) > 0 {
		// Recovery moved residuals (releases, rebinds); in-flight plans
		// that straddled it must commit as stale.
		e.mutations++
		// Journal what the pass decided, in outcome order: replay applies
		// these records verbatim instead of re-running recovery, so a
		// replayed engine lands on the same repairs/sheds even if the
		// recovery policy or planner later changes.
		if jerr := e.journalAfter(func(j Journal) error {
			for _, o := range rep.Outcomes {
				var aerr error
				if o.Mode == recov.ModeShed {
					aerr = j.Shed(o.RequestID)
				} else {
					aerr = j.Repaired(o.RequestID, o.Solution)
				}
				if aerr != nil {
					return aerr
				}
			}
			return nil
		}); jerr != nil && err == nil {
			err = jerr
		}
	}
	return err
}

// RecoverNow runs a recovery pass on demand — the hook for failures
// injected while recovery was disabled, or for resuming a pass that a
// canceled UpdateContext cut short. It returns the pass's report; ctx
// is checked between sessions. Without a recovery policy it returns
// nil, nil.
func (e *Engine) RecoverNow(ctx context.Context) (*recov.Report, error) {
	var rep *recov.Report
	var err error
	if xerr := e.exec(func() {
		err = e.recoverLocked(ctx)
		rep = e.lastRec
	}); xerr != nil {
		return nil, xerr
	}
	return rep, err
}

// LastRecovery returns the report of the most recent recovery pass
// (nil before the first pass or without a recovery policy). The report
// is immutable once returned.
func (e *Engine) LastRecovery() *recov.Report {
	var rep *recov.Report
	_ = e.exec(func() { rep = e.lastRec })
	return rep
}

// RecoveryEnabled reports whether the engine was built with a recovery
// policy.
func (e *Engine) RecoveryEnabled() bool { return e.rec != nil }

// describeEvents summarises drained resource events for the
// FailureInjected detail, e.g. "link 12 down, server 3 up".
func describeEvents(evs []sdn.ResourceEvent) string {
	if len(evs) == 0 {
		return ""
	}
	var b strings.Builder
	for i, ev := range evs {
		if i > 0 {
			b.WriteString(", ")
		}
		state := "down"
		if ev.Up {
			state = "up"
		}
		fmt.Fprintf(&b, "%s %d %s", ev.Kind, ev.ID, state)
	}
	return b.String()
}
