package engine

// Epoch-batched commits. With Options.BatchWindow > 1 the concurrent
// admission path stops submitting commits as individual writer ops:
// finished plans queue commit tickets, and the writer drains up to one
// window of waiting tickets per loop iteration, committing them in
// ascending request-ID order inside one network mutation batch — the
// residuals move per commit (each member validates against what the
// members before it left), but MutationVersion moves once per epoch,
// so planner caches keyed on it see a single transition per burst
// instead of one per request.
//
// The whole epoch runs inside one writer critical section: no snapshot
// clone, depart or update can interleave with the members of a batch,
// which is what makes the per-epoch version bump safe — a clone can
// only ever observe the pre- or post-epoch residual state, never a
// mid-batch one that would alias the pre-batch (structure, mutation)
// cache key with different residuals.
//
// Determinism: a sequentially-driven engine (one in-flight Admit) has
// at most one waiting ticket, so every epoch has size 1 and decisions
// are byte-identical across batch windows — the shard determinism
// oracle pins this. Under concurrency the window only changes how
// conflicts interleave, never the per-member validation order (always
// ascending request ID within an epoch).

import (
	"fmt"
	"sort"
	"sync"

	"nfvmcast/internal/core"
	"nfvmcast/internal/multicast"
)

// commitTicket is one planned solution waiting for an epoch commit.
// verdict is filled on the writer during the epoch and sent on done
// only after the epoch's journal barrier — acks never precede
// durability (see commitEpoch).
type commitTicket struct {
	req     *multicast.Request
	sol     *core.Solution
	epoch   uint64
	verdict commitVerdict
	done    chan commitVerdict
}

type commitVerdict struct {
	sol   *core.Solution
	stale bool
	err   error
}

// ticketPool recycles commit tickets (and their buffered verdict
// channels) across epochs. The writer's verdict send is its last touch
// of a ticket, so returning the ticket after the receive never races.
var ticketPool = sync.Pool{New: func() any {
	return &commitTicket{done: make(chan commitVerdict, 1)}
}}

// submitCommit queues sol for the next commit epoch and waits for its
// verdict. Only called on the batched concurrent path.
func (e *Engine) submitCommit(req *multicast.Request, sol *core.Solution, epoch uint64) (*core.Solution, bool, error) {
	t := ticketPool.Get().(*commitTicket)
	t.req, t.sol, t.epoch, t.verdict = req, sol, epoch, commitVerdict{}
	select {
	case e.commits <- t:
		// The writer has the ticket and always answers it.
		v := <-t.done
		t.req, t.sol, t.verdict = nil, nil, commitVerdict{}
		ticketPool.Put(t)
		return v.sol, v.stale, v.err
	case <-e.quit:
		t.req, t.sol, t.verdict = nil, nil, commitVerdict{}
		ticketPool.Put(t)
		return nil, false, ErrClosed
	}
}

// commitEpoch runs on the writer: starting from the ticket just
// received, it drains whatever other tickets are already waiting (up
// to the window), orders the epoch by ascending request ID and commits
// every member inside one network mutation batch.
func (e *Engine) commitEpoch(first *commitTicket) {
	batch := append(e.batchScratch[:0], first)
	for len(batch) < e.batchWindow {
		select {
		case t := <-e.commits:
			batch = append(batch, t)
		default:
			goto drained
		}
	}
drained:
	e.batchScratch = batch

	sort.SliceStable(batch, func(i, j int) bool {
		return batch[i].req.ID < batch[j].req.ID
	})
	nw := e.adm.Network()
	nw.BeginMutationBatch()
	for _, t := range batch {
		t.verdict.stale = e.mutations != t.epoch
		t.verdict.sol, t.verdict.err = e.adm.Commit(t.req, t.sol)
		if t.verdict.err == nil {
			e.mutations++
		}
	}
	nw.EndMutationBatch()
	e.journalEpoch(batch)
	for _, t := range batch {
		t.done <- t.verdict
	}
	e.obs.BatchCommitted(len(batch))
}

// journalEpoch makes an epoch's successful commits durable under one
// barrier — the group-commit amortisation: the journal buffers one
// Admitted append per member and fsyncs once for the whole epoch. A
// member whose append failed, and every member after it (append order
// is ack order; a later member may not be durable before an earlier
// hole), is unwound — departed again, its verdict rewritten to
// ErrDurability — as is the whole epoch when the barrier itself fails.
// Verdicts have not been sent yet, so no caller ever holds an ack for
// an operation the log missed.
func (e *Engine) journalEpoch(batch []*commitTicket) {
	if e.journal == nil {
		return
	}
	failedAt := len(batch)
	var jerr error
	for i, t := range batch {
		if t.verdict.err != nil {
			continue
		}
		if jerr = e.journal.Admitted(t.req, t.verdict.sol); jerr != nil {
			failedAt = i
			break
		}
	}
	var berr error
	if failedAt > 0 {
		berr = e.journal.Barrier()
	}
	if failedAt == len(batch) && berr == nil {
		return
	}
	if jerr == nil {
		jerr = berr
	}
	for i, t := range batch {
		if t.verdict.err != nil {
			continue
		}
		if i < failedAt && berr == nil {
			continue
		}
		if _, derr := e.adm.Depart(t.req.ID); derr == nil {
			e.mutations++
		}
		t.verdict = commitVerdict{err: fmt.Errorf("%w: %v", ErrDurability, jerr)}
	}
}
