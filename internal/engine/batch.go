package engine

// Epoch-batched commits. With Options.BatchWindow > 1 the concurrent
// admission path stops submitting commits as individual writer ops:
// finished plans queue commit tickets, and the writer drains up to one
// window of waiting tickets per loop iteration, committing them in
// ascending request-ID order inside one network mutation batch — the
// residuals move per commit (each member validates against what the
// members before it left), but MutationVersion moves once per epoch,
// so planner caches keyed on it see a single transition per burst
// instead of one per request.
//
// The whole epoch runs inside one writer critical section: no snapshot
// clone, depart or update can interleave with the members of a batch,
// which is what makes the per-epoch version bump safe — a clone can
// only ever observe the pre- or post-epoch residual state, never a
// mid-batch one that would alias the pre-batch (structure, mutation)
// cache key with different residuals.
//
// Determinism: a sequentially-driven engine (one in-flight Admit) has
// at most one waiting ticket, so every epoch has size 1 and decisions
// are byte-identical across batch windows — the shard determinism
// oracle pins this. Under concurrency the window only changes how
// conflicts interleave, never the per-member validation order (always
// ascending request ID within an epoch).

import (
	"sort"

	"nfvmcast/internal/core"
	"nfvmcast/internal/multicast"
)

// commitTicket is one planned solution waiting for an epoch commit.
type commitTicket struct {
	req   *multicast.Request
	sol   *core.Solution
	epoch uint64
	done  chan commitVerdict
}

type commitVerdict struct {
	sol   *core.Solution
	stale bool
	err   error
}

// submitCommit queues sol for the next commit epoch and waits for its
// verdict. Only called on the batched concurrent path.
func (e *Engine) submitCommit(req *multicast.Request, sol *core.Solution, epoch uint64) (*core.Solution, bool, error) {
	t := &commitTicket{req: req, sol: sol, epoch: epoch, done: make(chan commitVerdict, 1)}
	select {
	case e.commits <- t:
		// The writer has the ticket and always answers it.
		v := <-t.done
		return v.sol, v.stale, v.err
	case <-e.quit:
		return nil, false, ErrClosed
	}
}

// commitEpoch runs on the writer: starting from the ticket just
// received, it drains whatever other tickets are already waiting (up
// to the window), orders the epoch by ascending request ID and commits
// every member inside one network mutation batch.
func (e *Engine) commitEpoch(first *commitTicket) {
	batch := append(e.batchScratch[:0], first)
	for len(batch) < e.batchWindow {
		select {
		case t := <-e.commits:
			batch = append(batch, t)
		default:
			goto drained
		}
	}
drained:
	e.batchScratch = batch

	sort.SliceStable(batch, func(i, j int) bool {
		return batch[i].req.ID < batch[j].req.ID
	})
	nw := e.adm.Network()
	nw.BeginMutationBatch()
	for _, t := range batch {
		var v commitVerdict
		v.stale = e.mutations != t.epoch
		v.sol, v.err = e.adm.Commit(t.req, t.sol)
		if v.err == nil {
			e.mutations++
		}
		t.done <- v
	}
	nw.EndMutationBatch()
	e.obs.BatchCommitted(len(batch))
}
