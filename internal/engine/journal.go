package engine

import (
	"errors"
	"fmt"

	"nfvmcast/internal/core"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/sdn"
)

// Durable admission. A Journal is the engine's write-ahead hook: every
// state-changing outcome — an admission commit, a departure, a repair
// or shed decided by the recovery ladder, an applied maintenance batch
// — is handed to the journal on the writer goroutine, in exactly the
// order the state changed, *before* the operation acks to its caller.
// That ordering is the whole durability contract: an acked operation
// is in the log, so replaying the log (internal/wal) reconstructs
// precisely the acked state. Rejections and failed operations change
// no state and are not journaled.
//
// Barrier is the group-commit point: append calls may buffer, and the
// engine calls Barrier once per ack boundary (per operation, or per
// commit epoch in batched mode) so one fsync can cover a whole epoch.
//
// A journal error after the in-memory state change is the one place
// the engine cannot keep "acked == logged" on its own: the engine
// unwinds admissions (the commit is departed again and the caller gets
// ErrDurability), but releases and maintenance cannot be un-applied —
// those surface ErrDurability with the state change in place, and the
// caller must treat the journal as failed (a wal.Log makes the failure
// sticky) and restart. Replay then reconstructs the last durable
// prefix, which never includes an operation that was acked as failed.

// ErrDurability marks operations whose state change could not be made
// durable: the journal append or barrier failed. For admissions the
// engine has already unwound the commit; for other operations the
// in-memory change stands and the process should stop taking writes.
var ErrDurability = errors.New("engine: journal write failed")

// Journal receives the engine's state-changing outcomes. Calls arrive
// on the engine's writer goroutine, already serialised; implementations
// need no locking against the engine, only against their own readers.
type Journal interface {
	// Admitted records a committed admission (req realised by sol).
	Admitted(req *multicast.Request, sol *core.Solution) error
	// Departed records a released session.
	Departed(reqID int) error
	// Repaired records a session re-realised by sol (a recovery repair
	// or an explicit Replace after re-optimisation).
	Repaired(reqID int, sol *core.Solution) error
	// Shed records a session dropped by the recovery ladder.
	Shed(reqID int) error
	// MutationsApplied records a validated maintenance batch accepted
	// by Apply.
	MutationsApplied(muts []Mutation) error
	// Barrier makes every record appended so far durable; the engine
	// calls it before acking the operation(s) those records describe.
	Barrier() error
}

// journalCommitted journals one committed admission and barriers it.
// On failure the commit is unwound (departed again) so the acked state
// stays equal to the logged state, and the caller gets ErrDurability.
// Runs on the writer goroutine.
func (e *Engine) journalCommitted(req *multicast.Request, sol *core.Solution) error {
	if e.journal == nil {
		return nil
	}
	jerr := e.journal.Admitted(req, sol)
	if jerr == nil {
		jerr = e.journal.Barrier()
	}
	if jerr == nil {
		return nil
	}
	if _, derr := e.adm.Depart(req.ID); derr == nil {
		e.mutations++
	}
	return fmt.Errorf("%w: %v", ErrDurability, jerr)
}

// journalAfter wraps a journal append + barrier for operations that
// cannot be unwound (departures, replaces, maintenance). Runs on the
// writer goroutine; returns nil without a journal.
func (e *Engine) journalAfter(append func(Journal) error) error {
	if e.journal == nil {
		return nil
	}
	jerr := append(e.journal)
	if jerr == nil {
		jerr = e.journal.Barrier()
	}
	if jerr == nil {
		return nil
	}
	return fmt.Errorf("%w: %v", ErrDurability, jerr)
}

// Replay surface. Recovery (internal/wal) rebuilds an engine from
// logged outcomes instead of re-running planners: Restore installs a
// logged solution verbatim, RestoreReplace/RestoreDrop replay repairs
// and departures, and RestoreApply re-applies maintenance batches with
// the failure-injection side effects (events, automatic recovery,
// journaling) suppressed — the log already contains what recovery
// decided the first time, as repaired/shed records that follow. None
// of the Restore methods touch the journal: replayed records are
// already in the log.

// Restore re-installs a previously-committed session without planning
// (see core.Admitter.Restore). Replay only: restoring a request whose
// ID is already live corrupts the table.
func (e *Engine) Restore(req *multicast.Request, sol *core.Solution) error {
	var err error
	if xerr := e.exec(func() {
		err = e.adm.Restore(req, sol)
		if err == nil {
			e.mutations++
		}
	}); xerr != nil {
		return xerr
	}
	return err
}

// RestoreReplace replays a repair/re-optimisation outcome: session
// reqID swaps to sol's realisation.
func (e *Engine) RestoreReplace(reqID int, sol *core.Solution) error {
	var err error
	if xerr := e.exec(func() {
		err = e.adm.RestoreReplace(reqID, sol)
		if err == nil {
			e.mutations++
		}
	}); xerr != nil {
		return xerr
	}
	return err
}

// RestoreDrop replays a departure or shed: session reqID releases its
// resources and is forgotten.
func (e *Engine) RestoreDrop(reqID int) error {
	var err error
	if xerr := e.exec(func() {
		err = e.adm.RestoreDrop(reqID)
		if err == nil {
			e.mutations++
		}
	}); xerr != nil {
		return xerr
	}
	return err
}

// RestoreApply replays a maintenance batch: the same validate-all-
// then-apply-all semantics as Apply, but without the FailureInjected
// event, the automatic recovery pass, or journaling — replay applies
// the logged recovery outcomes instead of re-deciding them. Resource
// events drained so the next real Update reports only its own changes.
func (e *Engine) RestoreApply(muts ...Mutation) error {
	var err error
	if xerr := e.exec(func() {
		nw := e.adm.Network()
		for i, m := range muts {
			if reason := validateMutation(nw, m); reason != "" {
				err = &MalformedMutationError{Index: i, Mutation: m, Reason: reason}
				return
			}
		}
		for _, m := range muts {
			if aerr := applyMutation(nw, m); aerr != nil {
				err = fmt.Errorf("engine: restore-apply %s: %w", m, aerr)
				return
			}
		}
		nw.DrainResourceEvents()
		e.mutations++
	}); xerr != nil {
		return xerr
	}
	return err
}

// RestoreResiduals overwrites the network's residual vectors with the
// exact values a snapshot recorded (see sdn.RawSnapshot): after the
// live sessions have been Restored, the re-derived residuals can differ
// from the originals in the last float bits (allocate/release history
// is order-dependent addition), so recovery finishes by installing the
// recorded vectors verbatim. Replay only.
func (e *Engine) RestoreResiduals(linkFree []float64, srvFree map[int]float64) error {
	var err error
	if xerr := e.exec(func() {
		err = e.adm.Network().Restore(sdn.RawSnapshot(linkFree, srvFree))
		if err == nil {
			e.mutations++
		}
	}); xerr != nil {
		return xerr
	}
	return err
}

// SnapshotState runs f on the writer goroutine with the network and
// the live table, with no operation in flight — the atomic capture
// point for WAL snapshots and state fingerprints. f must only read;
// the lives slice is shared with the admitter (treat the solutions as
// read-only) and must not be retained past f.
func (e *Engine) SnapshotState(f func(nw *sdn.Network, lives []*core.Solution)) error {
	return e.exec(func() { f(e.adm.Network(), e.adm.Lives()) })
}
