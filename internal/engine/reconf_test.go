package engine

import (
	"testing"

	"nfvmcast/internal/core"
	"nfvmcast/internal/obs"
	"nfvmcast/internal/sdn"
)

// reconfEngine loads a GÉANT engine with enough sessions that early
// admissions drift up the exponential cost curve, returning the engine
// plus its event ring.
func reconfEngine(t *testing.T, beta float64, limit, requests int) (*Engine, *obs.RingSink, *obs.Registry) {
	t.Helper()
	nw := testNetwork(t, "geant", 7)
	p, err := core.NewReconfPlanner(core.DefaultCostModel(nw.NumNodes()), beta, limit)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ring := obs.NewRingSink(4096)
	eng := New(nw, p, Options{
		Workers: 1,
		Obs:     obs.NewAdmissionObs(reg, p.Name(), obs.AdmissionObsOptions{Events: ring}),
	})
	for _, req := range requestPool(t, nw.NumNodes(), requests, 29) {
		_, _ = eng.Admit(req)
	}
	if eng.AdmittedCount() == 0 {
		t.Fatal("fixture admitted nothing")
	}
	return eng, ring, reg
}

// TestEngineReconfiguresDriftedSessions drives the Reconf_CP migration
// pass through a no-op Update on a congested network and checks a
// migration happens, is observed (counter + event stream), and leaves
// the engine's books balanced: live count unchanged, residuals within
// bounds, and further admissions still served.
func TestEngineReconfiguresDriftedSessions(t *testing.T) {
	eng, ring, reg := reconfEngine(t, 1.01, 8, 120)
	defer eng.Close()

	liveBefore := eng.LiveCount()
	if err := eng.Update(func(*sdn.Network) error { return nil }); err != nil {
		t.Fatalf("update: %v", err)
	}
	migrated := eng.obs.ReconfiguredCount()
	if migrated == 0 {
		t.Fatal("congested fixture produced no migrations; loosen the workload")
	}
	if got := eng.LiveCount(); got != liveBefore {
		t.Fatalf("live count changed across reconfiguration: %d -> %d", liveBefore, got)
	}
	counted := uint64(0)
	for series, v := range reg.CounterValues() {
		if len(series) >= len("nfv_reconfigurations_total") &&
			series[:len("nfv_reconfigurations_total")] == "nfv_reconfigurations_total" {
			counted += v
		}
	}
	if counted != migrated {
		t.Fatalf("nfv_reconfigurations_total = %d, hook count %d", counted, migrated)
	}
	events := 0
	for _, ev := range ring.Events() {
		if ev.Type == obs.Reconfigured {
			events++
			if ev.Request == 0 || len(ev.Servers) == 0 || ev.Cost <= 0 {
				t.Fatalf("malformed reconfigured event: %+v", ev)
			}
		}
	}
	if uint64(events) != migrated {
		t.Fatalf("reconfigured events %d != counter %d", events, migrated)
	}
	checkResiduals(t, eng, false)

	// The engine keeps serving after a pass.
	reqs := requestPool(t, 40, 5, 97)
	for _, req := range reqs {
		if _, err := eng.Admit(req); err != nil && !core.IsRejection(err) {
			t.Fatalf("admission after reconfiguration: %v", err)
		}
	}
}

// TestEngineReconfHysteresisBlocksMigration pins the β rule: with an
// unreachable hysteresis threshold the identical workload migrates
// nothing.
func TestEngineReconfHysteresisBlocksMigration(t *testing.T) {
	eng, _, _ := reconfEngine(t, 1e9, 8, 120)
	defer eng.Close()
	if err := eng.Update(func(*sdn.Network) error { return nil }); err != nil {
		t.Fatalf("update: %v", err)
	}
	if n := eng.obs.ReconfiguredCount(); n != 0 {
		t.Fatalf("β=1e9 still migrated %d sessions", n)
	}
}

// TestEngineReconfMigrationBudget pins the per-pass limit: a budget of
// one migrates at most one session per Update no matter how much drift
// accumulated.
func TestEngineReconfMigrationBudget(t *testing.T) {
	eng, _, _ := reconfEngine(t, 1.01, 1, 120)
	defer eng.Close()
	if err := eng.Update(func(*sdn.Network) error { return nil }); err != nil {
		t.Fatalf("update: %v", err)
	}
	if n := eng.obs.ReconfiguredCount(); n > 1 {
		t.Fatalf("budget 1 migrated %d sessions in one pass", n)
	}
}

// TestEngineReconfDeterministicAcrossWorkers reruns the admit+update
// workload at several worker counts; migrated sessions and the
// post-pass total operational cost must be byte-identical (the pass
// runs wholly on the writer, so concurrency cannot reorder it).
func TestEngineReconfDeterministicAcrossWorkers(t *testing.T) {
	type outcome struct {
		migrated uint64
		lives    int
	}
	var ref *outcome
	for _, workers := range []int{1, 4, 8} {
		nw := testNetwork(t, "geant", 7)
		p, err := core.NewReconfPlanner(core.DefaultCostModel(nw.NumNodes()), 1.01, 8)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		eng := New(nw, p, Options{
			Workers: workers,
			Obs:     obs.NewAdmissionObs(reg, p.Name(), obs.AdmissionObsOptions{}),
		})
		for _, req := range requestPool(t, nw.NumNodes(), 120, 29) {
			_, _ = eng.Admit(req)
		}
		if err := eng.Update(func(*sdn.Network) error { return nil }); err != nil {
			t.Fatalf("workers=%d update: %v", workers, err)
		}
		got := outcome{migrated: eng.obs.ReconfiguredCount(), lives: eng.LiveCount()}
		eng.Close()
		if ref == nil {
			r := got
			ref = &r
			continue
		}
		if got != *ref {
			t.Fatalf("workers=%d: outcome %+v != sequential %+v", workers, got, *ref)
		}
	}
}
