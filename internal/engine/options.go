package engine

import (
	"nfvmcast/internal/core"
	"nfvmcast/internal/obs"
	recov "nfvmcast/internal/recover"
	"nfvmcast/internal/sdn"
)

// Functional options — the v1 construction surface. The Options struct
// remains for compatibility, but new call sites should prefer
//
//	eng := engine.NewWith(nw, planner,
//	    engine.WithWorkers(8),
//	    engine.WithMetrics(admObs),
//	    engine.WithRecovery(recov.DefaultPolicy()))
//
// because option functions can grow without breaking callers.

// Option configures an Engine at construction.
type Option func(*Options)

// WithWorkers bounds how many Admit calls may plan concurrently: 0 or
// 1 selects sequential mode (byte-identical to the direct admitters),
// n > 1 allows n concurrent planners on residual snapshots, negative
// requests one planner slot per CPU.
func WithWorkers(n int) Option {
	return func(o *Options) { o.Workers = n }
}

// WithMetrics attaches observability: lifecycle counters, per-reason
// rejection counts, gauges, sampled latencies and the admission-event
// stream. nil disables instrumentation.
func WithMetrics(a *obs.AdmissionObs) Option {
	return func(o *Options) { o.Obs = a }
}

// WithRecovery enables the self-healing subsystem under pol: after
// failure injection through Update, the engine repairs or sheds every
// affected live session before Update returns (see internal/recover).
func WithRecovery(pol recov.Policy) Option {
	return func(o *Options) {
		p := pol
		o.Recovery = &p
	}
}

// WithBatchWindow bounds how many finished plans one commit epoch may
// absorb: the writer drains up to n waiting commits per loop
// iteration, validates them in ascending request-ID order and bumps
// the network's MutationVersion once per epoch. n <= 1 keeps
// per-commit epochs; the window only matters with WithWorkers(> 1),
// and a sequentially-driven engine decides identically at every
// window.
func WithBatchWindow(n int) Option {
	return func(o *Options) { o.BatchWindow = n }
}

// WithJournal makes the engine durable: every state-changing outcome
// is appended to j on the writer goroutine before the operation acks
// (see Journal and internal/wal). nil keeps the engine in-memory.
func WithJournal(j Journal) Option {
	return func(o *Options) { o.Journal = j }
}

// WithRepairCostFactor sets the local-repair acceptance factor γ: a
// re-routed tree is kept only when its operational cost is at most
// gamma times the damaged tree's; gamma <= 0 forces every repair
// through the full re-plan path. It enables recovery with the default
// policy when WithRecovery was not (yet) applied; order relative to
// WithRecovery does not matter as long as it comes after.
func WithRepairCostFactor(gamma float64) Option {
	return func(o *Options) {
		if o.Recovery == nil {
			p := recov.DefaultPolicy()
			o.Recovery = &p
		}
		o.Recovery.Gamma = gamma
	}
}

// NewWith is New with functional options.
func NewWith(nw *sdn.Network, planner core.Planner, options ...Option) *Engine {
	var o Options
	for _, fn := range options {
		fn(&o)
	}
	return New(nw, planner, o)
}
