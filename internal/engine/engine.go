// Package engine provides a single-writer admission engine over a
// capacitated SDN. The engine owns the sdn.Network: every mutation —
// allocation on admit, release on depart, maintenance such as failure
// injection — executes on one writer goroutine, so mutators never race
// readers (the constraint DESIGN.md §8 puts on sdn.Network). Planning,
// the expensive part of admission (Dijkstras + KMB per request), does
// not run on the writer: concurrent Admit calls plan on their own
// goroutines against residual snapshots and only re-enter the writer
// to commit, where the plan is validated against the live residuals
// (optimistic concurrency: a plan invalidated by a concurrent commit
// is re-planned once against fresh residuals, then rejected).
//
// In sequential mode (Options.Workers <= 1) plan and commit execute as
// one atomic step on the writer, so admit/reject decisions, trees and
// costs are byte-identical to driving a core.Admitter — or the
// original per-algorithm admitters — directly; the determinism oracle
// in engine_test.go pins this. A sequentially-driven engine (one
// in-flight Admit at a time) produces the same decisions at any worker
// count, because a snapshot taken with no in-flight commits equals the
// live residual state.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"nfvmcast/internal/core"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/obs"
	"nfvmcast/internal/parallel"
	recov "nfvmcast/internal/recover"
	"nfvmcast/internal/sdn"
)

// ErrClosed is returned by every operation submitted after Close.
var ErrClosed = errors.New("engine: closed")

// ErrNoPlan marks rejections where the planner proposed no admissible
// tree — the request never reached commit. The chain also carries the
// planner's specific refusal (threshold, compute, unreachable, ...),
// and still satisfies core.IsRejection.
var ErrNoPlan = errors.New("engine: planner found no admissible tree")

// ErrCommitConflict marks rejections where a plan valid on its
// residual snapshot was invalidated by concurrent commits and the
// re-plan budget was exhausted. Distinct from ErrNoPlan so callers —
// and the per-reason rejection counters — can tell planner refusals
// from optimistic-concurrency losses.
var ErrCommitConflict = core.ErrCommitConflict

// Options configures an Engine.
type Options struct {
	// Workers bounds how many Admit calls may plan concurrently.
	// 0 or 1 selects sequential mode: plan and commit run as one
	// atomic writer step, reproducing the direct admitters exactly.
	// n > 1 allows n concurrent planners against residual snapshots;
	// negative requests one planner slot per CPU.
	Workers int
	// Obs attaches observability: lifecycle counters and per-reason
	// rejection counts (per policy), queue-depth and live-session
	// gauges, sampled plan/commit/clone latencies, and the structured
	// admission-event stream. nil (the default) disables
	// instrumentation; with sampling off no hot path reads the clock.
	Obs *obs.AdmissionObs
	// Recovery enables the self-healing subsystem: after failure
	// injection through Update moves the network's StructureVersion,
	// the engine automatically repairs or sheds every affected live
	// session under this policy (see internal/recover). nil (the
	// default) leaves damaged sessions alone, preserving the manual
	// fail-release-readmit workflow.
	Recovery *recov.Policy
	// BatchWindow bounds how many finished plans one commit epoch may
	// absorb (see batch.go): the writer drains up to this many waiting
	// commits per loop iteration, validates them in ascending
	// request-ID order and bumps the network's MutationVersion once
	// for the whole epoch. 0 or 1 keeps per-commit epochs (the
	// pre-batching behaviour); the window is ignored in sequential
	// mode, where plan and commit are one atomic step. Decisions of a
	// sequentially-driven engine are byte-identical across windows.
	BatchWindow int
	// Journal, when set, makes the engine durable: every
	// state-changing outcome is appended to the journal on the writer
	// goroutine before the operation acks (see journal.go and
	// internal/wal). nil (the default) keeps the engine in-memory.
	Journal Journal
}

// Engine is a single-writer admission engine: one goroutine owns the
// network and the admission bookkeeping (the shared core.Admitter
// commit layer), while planning fans out across callers. All methods
// are safe for concurrent use.
type Engine struct {
	adm        *core.Admitter
	obs        *obs.AdmissionObs // nil-safe; shared with adm
	sequential bool
	// planSlots both bounds concurrent planners and hands each one a
	// dedicated scratch slot: a worker owns the arena and snapshot
	// network it drew for the whole plan (including a re-plan after a
	// commit conflict), so concurrent planners never share scratch
	// while both get reused across requests — the snapshot is refilled
	// in place with sdn.CloneInto, so steady-state planning stops
	// allocating per-request clones.
	planSlots chan *planSlot

	// opPool recycles writer-op envelopes (see exec) so the hot
	// plan/commit path does not allocate an ack channel per writer
	// round-trip.
	opPool sync.Pool

	// seqArena is the single-writer mode's scratch; only the writer
	// goroutine plans in that mode, so one arena suffices.
	seqArena *core.PlanArena

	// Epoch batching (see batch.go). batchWindow > 1 routes concurrent
	// commits through the ticket channel; batchScratch is the writer's
	// reusable epoch buffer.
	batchWindow  int
	commits      chan *commitTicket
	batchScratch []*commitTicket

	// Recovery state (nil unless Options.Recovery was set). rec and
	// lastRec are touched only on the writer goroutine; recArena is the
	// writer-owned planning scratch of recovery passes.
	rec      *recov.Recoverer
	recArena *core.PlanArena
	lastRec  *recov.Report

	// reconf is non-nil when the planner supports drift-triggered
	// migration of admitted sessions (core.Reconfigurer, e.g.
	// Reconf_CP): after every successful Update mutation the writer
	// runs one migration pass. It shares recArena as writer-owned
	// planning scratch — recovery and reconfiguration never overlap.
	reconf core.Reconfigurer

	// journal receives state-changing outcomes before they ack (nil =
	// durability off). Touched only on the writer goroutine.
	journal Journal

	// mutations counts state changes (commits, departs, replaces,
	// updates) and is touched only on the writer goroutine. A commit
	// failure is a conflict only if it advanced past the plan's
	// snapshot epoch — otherwise the planner overcommitted and the
	// failure is deterministic, so re-planning the unchanged state
	// would be futile and mislabel the rejection.
	mutations uint64

	ops       chan *wop
	quit      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// planSlot is one concurrent planner's reusable scratch: the planning
// arena plus the snapshot destination the writer clones residual state
// into. Solutions never alias the view (trees and server lists are
// value copies), so the view can be overwritten by the slot's next
// request while earlier solutions stay live in the admitted set.
type planSlot struct {
	arena *core.PlanArena
	view  *sdn.Network
}

// wop is a pooled writer operation: the closure to run on the writer
// goroutine and a reusable buffered ack channel. Recycling the
// envelope keeps exec allocation-free apart from the caller's closure.
type wop struct {
	f    func()
	done chan struct{}
}

// New returns an engine owning nw that admits with planner's policy.
// The caller must not mutate nw after handing it over; reads (metrics,
// rendering) remain safe whenever no Admit/Depart/Update is in flight,
// or from inside Update.
func New(nw *sdn.Network, planner core.Planner, opts Options) *Engine {
	workers := parallel.Degree(opts.Workers)
	window := opts.BatchWindow
	if window < 1 {
		window = 1
	}
	e := &Engine{
		adm:         core.NewAdmitter(nw, planner),
		obs:         opts.Obs,
		sequential:  workers <= 1,
		planSlots:   make(chan *planSlot, workers),
		seqArena:    core.NewPlanArena(),
		batchWindow: window,
		journal:     opts.Journal,
		commits:     make(chan *commitTicket),
		ops:         make(chan *wop),
		quit:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	e.opPool.New = func() any { return &wop{done: make(chan struct{}, 1)} }
	for i := 0; i < workers; i++ {
		e.planSlots <- &planSlot{arena: core.NewPlanArena(), view: &sdn.Network{}}
	}
	e.adm.Observe(opts.Obs)
	if opts.Recovery != nil {
		e.rec = recov.New(e.adm, opts.Obs, *opts.Recovery)
		e.recArena = core.NewPlanArena()
	}
	if r, ok := planner.(core.Reconfigurer); ok {
		e.reconf = r
		if e.recArena == nil {
			e.recArena = core.NewPlanArena()
		}
	}
	go e.writer()
	return e
}

// writer is the single goroutine through which every mutation of the
// network and the admission bookkeeping flows.
func (e *Engine) writer() {
	defer close(e.done)
	for {
		select {
		case op := <-e.ops:
			op.f()
			op.done <- struct{}{}
		case t := <-e.commits:
			e.commitEpoch(t)
		case <-e.quit:
			return
		}
	}
}

// Close stops the writer goroutine and waits for it to exit. Admits
// already committed stay allocated; operations submitted after (or
// racing) Close return ErrClosed. Close is idempotent.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.quit) })
	<-e.done
}

// exec runs f on the writer goroutine and waits for it to finish. The
// op envelope is pooled; the writer's ack on the buffered done channel
// is its last touch of the envelope, so recycling after the receive
// never races the writer.
func (e *Engine) exec(f func()) error {
	op := e.opPool.Get().(*wop)
	op.f = f
	select {
	case e.ops <- op:
		<-op.done
		op.f = nil
		e.opPool.Put(op)
		return nil
	case <-e.quit:
		op.f = nil
		e.opPool.Put(op)
		return ErrClosed
	}
}

// Admit decides request req under the engine's admission policy: on
// admission it returns the realised solution (already allocated); on
// rejection it returns an error satisfying core.IsRejection and leaves
// the network untouched. Any number of goroutines may call Admit
// concurrently; with Workers > 1 their planning overlaps.
func (e *Engine) Admit(req *multicast.Request) (*core.Solution, error) {
	return e.AdmitContext(context.Background(), req)
}

// AdmitContext is Admit with cancellation: ctx aborts planning between
// candidate evaluations (when the planner supports it — see
// core.ContextPlanner) and between the plan and re-plan rounds of the
// concurrent path. A canceled admission leaves the network untouched,
// is not counted as a rejection, and returns an error for which
// core.IsCanceled holds; once the plan reaches commit, the commit runs
// to completion regardless of ctx, so a request never ends up
// half-admitted. Decisions are identical to Admit while ctx stays
// live.
func (e *Engine) AdmitContext(ctx context.Context, req *multicast.Request) (*core.Solution, error) {
	e.obs.InflightAdd(1)
	defer e.obs.InflightAdd(-1)

	if e.sequential {
		var sol *core.Solution
		var err error
		if xerr := e.exec(func() {
			sol, err = e.adm.AdmitContext(ctx, req, e.seqArena)
			if err == nil {
				e.mutations++
				if err = e.journalCommitted(req, sol); err != nil {
					sol = nil
				}
			}
		}); xerr != nil {
			return nil, xerr
		}
		return sol, err
	}

	slot := <-e.planSlots
	defer func() { e.planSlots <- slot }()

	// Plan against a residual snapshot, commit against the live state.
	sol, epoch, err := e.planOnSnapshot(ctx, req, slot)
	if err != nil {
		if core.IsCanceled(err) {
			return nil, err
		}
		return nil, e.reject(req, fmt.Errorf("%w: %w", ErrNoPlan, err))
	}
	committed, stale, cerr := e.tryCommit(req, sol, epoch)
	if cerr == nil || errors.Is(cerr, ErrClosed) || errors.Is(cerr, ErrDurability) {
		return committed, cerr
	}
	if !stale {
		// The plan failed against the very residuals it was computed
		// from: the planner overcommitted. Sequential mode surfaces
		// exactly this error, and re-planning unchanged state would
		// reproduce the same plan — reject as the admitter would.
		return nil, e.reject(req, fmt.Errorf("%w: %w", core.ErrRejected, cerr))
	}
	// Optimistic-concurrency miss: a concurrent commit moved the
	// residuals under our plan. Re-plan once against fresh residuals,
	// then give up.
	e.obs.CommitConflict(req.ID, core.RejectReason(cerr))
	e.obs.Replanned(req.ID)
	sol, epoch, err = e.planOnSnapshot(ctx, req, slot)
	if err != nil {
		if core.IsCanceled(err) {
			return nil, err
		}
		return nil, e.reject(req, fmt.Errorf("%w: %w", ErrNoPlan, err))
	}
	committed, stale, cerr = e.tryCommit(req, sol, epoch)
	if cerr == nil || errors.Is(cerr, ErrClosed) || errors.Is(cerr, ErrDurability) {
		return committed, cerr
	}
	if !stale {
		return nil, e.reject(req, fmt.Errorf("%w: %w", core.ErrRejected, cerr))
	}
	e.obs.CommitConflict(req.ID, core.RejectReason(cerr))
	return nil, e.reject(req, fmt.Errorf("%w: %w: %w", core.ErrRejected, ErrCommitConflict, cerr))
}

// planOnSnapshot clones the live residual state into the slot's
// reusable snapshot on the writer and plans against it on the calling
// goroutine, using the slot's scratch arena. It also returns the
// mutation epoch the snapshot was taken at, so the commit can tell a
// concurrent invalidation from a deterministic planner overcommit.
func (e *Engine) planOnSnapshot(ctx context.Context, req *multicast.Request, slot *planSlot) (*core.Solution, uint64, error) {
	var epoch uint64
	if xerr := e.exec(func() {
		start := e.obs.Now()
		e.adm.Network().CloneInto(slot.view)
		epoch = e.mutations
		e.obs.CloneDone(start)
	}); xerr != nil {
		return nil, 0, xerr
	}
	sol, err := e.adm.PlanOnContext(ctx, slot.view, req, slot.arena)
	return sol, epoch, err
}

// tryCommit validates sol against the live residuals on the writer.
// The error is nil on success, ErrClosed, or the allocation violation;
// stale reports whether the live state had moved past the plan's
// snapshot epoch by commit time. With BatchWindow > 1 the commit joins
// the writer's next epoch batch (see batch.go) — same verdicts, with
// MutationVersion amortized across the epoch.
func (e *Engine) tryCommit(req *multicast.Request, sol *core.Solution, epoch uint64) (*core.Solution, bool, error) {
	if e.batchWindow > 1 {
		return e.submitCommit(req, sol, epoch)
	}
	var out *core.Solution
	var stale bool
	var cerr error
	if xerr := e.exec(func() {
		stale = e.mutations != epoch
		out, cerr = e.adm.Commit(req, sol)
		if cerr == nil {
			e.mutations++
			if cerr = e.journalCommitted(req, out); cerr != nil {
				out, stale = nil, false
			}
		}
	}); xerr != nil {
		return nil, false, xerr
	}
	return out, stale, cerr
}

// reject counts the rejection on the writer (classified into a
// canonical reason by the admitter) and returns err for chaining.
// ErrClosed is passed through uncounted.
func (e *Engine) reject(req *multicast.Request, err error) error {
	if errors.Is(err, ErrClosed) {
		return err
	}
	if xerr := e.exec(func() { e.adm.CountRejection(req, err) }); xerr != nil {
		return xerr
	}
	return err
}

// Depart releases the resources of an admitted request (the session
// ended), returning the solution that had realised it so callers can
// also uninstall its flow rules.
func (e *Engine) Depart(reqID int) (*core.Solution, error) {
	var sol *core.Solution
	var err error
	if xerr := e.exec(func() {
		sol, err = e.adm.Depart(reqID)
		if err == nil {
			e.mutations++
			err = e.journalAfter(func(j Journal) error { return j.Departed(reqID) })
		}
	}); xerr != nil {
		return nil, xerr
	}
	return sol, err
}

// Replace records that an admitted request is now realised by sol (see
// core.Admitter.Replace); run the re-placement itself inside Update.
func (e *Engine) Replace(reqID int, sol *core.Solution) error {
	var err error
	if xerr := e.exec(func() {
		err = e.adm.Replace(reqID, sol)
		if err == nil {
			e.mutations++
			err = e.journalAfter(func(j Journal) error { return j.Repaired(reqID, sol) })
		}
	}); xerr != nil {
		return xerr
	}
	return err
}

// Update runs f against the engine's network on the writer goroutine —
// the hatch for maintenance that must not race in-flight commits:
// failure injection, re-optimisation passes, metric snapshots. When f
// alters the network's structure (failure injection bumps
// StructureVersion), a FailureInjected event is emitted and counted,
// and — when the engine was built with a recovery policy — a recovery
// pass repairs or sheds every affected live session before Update
// returns (inspect it with LastRecovery).
func (e *Engine) Update(f func(nw *sdn.Network) error) error {
	return e.UpdateContext(context.Background(), f)
}

// UpdateContext is Update with cancellation. A ctx already done on
// entry aborts before f runs; once f has run, ctx only bounds the
// automatic recovery pass (checked between sessions — see
// recov.Recoverer.Recover), whose cancellation error is returned after
// f's nil. Sessions the canceled pass did not reach stay damaged but
// live; RecoverNow resumes them.
func (e *Engine) UpdateContext(ctx context.Context, f func(nw *sdn.Network) error) error {
	return e.updateContext(ctx, f, nil)
}

// updateContext is the shared writer-side body of Update and Apply.
// jmuts, when non-empty, is the typed description of what f does (Apply
// passes its validated batch); it is journaled as a mutation_applied
// record after f succeeds, before the automatic recovery pass — replay
// re-applies the batch with RestoreApply and then replays recovery's
// own repaired/shed records in log order. A raw Update closure has no
// typed description, so with a journal attached its effects would be
// invisible to replay; such updates are not journaled (documented on
// Apply) and durable deployments must mutate through Apply.
func (e *Engine) updateContext(ctx context.Context, f func(nw *sdn.Network) error, jmuts []Mutation) error {
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("engine: update canceled: %w", cerr)
	}
	var err error
	if xerr := e.exec(func() {
		nw := e.adm.Network()
		before := nw.StructureVersion()
		err = f(nw)
		// f had mutable access; count the epoch conservatively so an
		// in-flight plan straddling this update commits as stale.
		e.mutations++
		if err == nil && len(jmuts) > 0 {
			if jerr := e.journalAfter(func(j Journal) error { return j.MutationsApplied(jmuts) }); jerr != nil {
				err = jerr
			}
		}
		if after := nw.StructureVersion(); after != before {
			detail := fmt.Sprintf("structure version %d -> %d", before, after)
			if s := describeEvents(nw.DrainResourceEvents()); s != "" {
				detail += ": " + s
			}
			e.obs.FailureInjected(detail)
			if rerr := e.recoverLocked(ctx); rerr != nil && err == nil {
				err = rerr
			}
		}
		if err == nil && e.reconf != nil {
			err = e.reconfigureLocked()
		}
	}); xerr != nil {
		return xerr
	}
	return err
}

// Planner returns the engine's planning policy.
func (e *Engine) Planner() core.Planner { return e.adm.Planner() }

// Admitted returns the solutions admitted so far.
func (e *Engine) Admitted() []*core.Solution {
	var out []*core.Solution
	if xerr := e.exec(func() { out = e.adm.Admitted() }); xerr != nil {
		return nil
	}
	return out
}

// AdmittedCount reports the number of admitted requests.
func (e *Engine) AdmittedCount() int {
	var n int
	_ = e.exec(func() { n = e.adm.AdmittedCount() })
	return n
}

// RejectedCount reports how many requests were rejected.
func (e *Engine) RejectedCount() int {
	var n int
	_ = e.exec(func() { n = e.adm.RejectedCount() })
	return n
}

// LiveCount reports how many admitted requests currently hold
// resources.
func (e *Engine) LiveCount() int {
	var n int
	_ = e.exec(func() { n = e.adm.LiveCount() })
	return n
}
