package engine

// Determinism oracle for incremental cache maintenance under live
// maintenance traffic: a sequentially-driven engine must make
// byte-identical decisions at every worker count even when admissions
// interleave with Updates that resize capacities, fail and restore
// links and servers — the mutations that drive the work-graph cache
// through its patch, repair and cold-rebuild paths.

import (
	"testing"

	"nfvmcast/internal/graph"
	"nfvmcast/internal/sdn"
)

// interleavedUpdate applies one deterministic maintenance mutation
// derived from the step index. Every branch computes its target and
// magnitude from the current network state, which is identical across
// worker counts when the preceding decision sequence is, so the
// mutation sequence is too.
func interleavedUpdate(t *testing.T, eng *Engine, step int) {
	t.Helper()
	err := eng.Update(func(nw *sdn.Network) error {
		e := graph.EdgeID((step*13 + 5) % nw.NumEdges())
		switch step % 4 {
		case 0: // shrink the link towards its allocated share —
			// residual-class threshold crossings for in-pool demands
			allocated := nw.BandwidthCap(e) - nw.ResidualBandwidth(e)
			return nw.SetBandwidthCap(e, allocated+0.4*nw.ResidualBandwidth(e)+1)
		case 1: // fail then restore a link: StructureVersion moves,
			// retiring the cache family (cold rebuild path)
			if err := nw.SetLinkUp(e, false); err != nil {
				return err
			}
			return nw.SetLinkUp(e, true)
		case 2: // resize a server's compute
			servers := nw.Servers()
			v := servers[step%len(servers)]
			allocated := nw.ComputeCap(v) - nw.ResidualCompute(v)
			return nw.SetComputeCap(v, allocated+0.75*nw.ResidualCompute(v)+1)
		default: // grow the link back
			allocated := nw.BandwidthCap(e) - nw.ResidualBandwidth(e)
			return nw.SetBandwidthCap(e, allocated+2*nw.ResidualBandwidth(e)+1)
		}
	})
	if err != nil {
		t.Fatalf("update at step %d: %v", step, err)
	}
}

// TestEngineDeterminismWithInterleavedUpdates drives the same
// admit/depart/update schedule at workers 1, 4 and 8 over both
// topologies and demands byte-identical decisions (servers, per-link
// loads, both costs) at every step.
func TestEngineDeterminismWithInterleavedUpdates(t *testing.T) {
	const requests = 90
	for _, topoName := range []string{"geant", "waxman"} {
		for _, alg := range []string{"Online_CP", "Online_CPK"} {
			topoName, alg := topoName, alg
			t.Run(topoName+"/"+alg, func(t *testing.T) {
				seed := int64(11)
				var want []decision
				for wi, workers := range []int{1, 4, 8} {
					nw := testNetwork(t, topoName, seed)
					reqs := requestPool(t, nw.NumNodes(), requests, seed+5)
					eng := New(nw, plannerFor(t, alg, nw), Options{Workers: workers})
					var got []decision
					var live []int
					for i, req := range reqs {
						if i%7 == 3 {
							interleavedUpdate(t, eng, i)
						}
						d := captureDecision(eng.Admit(req))
						got = append(got, d)
						if d.admitted {
							live = append(live, req.ID)
						}
						if i%5 == 4 && len(live) > 0 {
							if _, err := eng.Depart(live[0]); err != nil {
								eng.Close()
								t.Fatalf("workers=%d: depart %d: %v", workers, live[0], err)
							}
							live = live[1:]
						}
					}
					eng.Close()
					if wi == 0 {
						want = got
						continue
					}
					for i := range got {
						if !sameDecision(want[i], got[i]) {
							t.Fatalf("workers=%d request %d: decision diverged (admitted %v vs %v)",
								workers, i, got[i].admitted, want[i].admitted)
						}
					}
				}
			})
		}
	}
}
