package engine

import (
	"errors"
	"math"
	"testing"

	"nfvmcast/internal/core"
	"nfvmcast/internal/multicast"
	recov "nfvmcast/internal/recover"
	"nfvmcast/internal/sdn"
)

// applyFixture builds an engine over GÉANT with a few live sessions so
// capacity-floor validation has allocations to trip over.
func applyFixture(t *testing.T, withRecovery bool) (*Engine, *sdn.Network) {
	t.Helper()
	nw := testNetwork(t, "geant", 7)
	opts := Options{}
	if withRecovery {
		pol := recov.DefaultPolicy()
		opts.Recovery = &pol
	}
	eng := New(nw, plannerFor(t, "Online_CP", nw), opts)
	t.Cleanup(eng.Close)
	gen, err := multicast.NewGenerator(nw.NumNodes(), multicast.OnlineGeneratorConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		req, gerr := gen.Next()
		if gerr != nil {
			t.Fatal(gerr)
		}
		_, _ = eng.Admit(req)
	}
	if len(eng.Lives()) == 0 {
		t.Fatal("fixture admitted nothing")
	}
	return eng, nw
}

// networkState captures the residual state Apply must leave untouched
// on rejection.
func networkState(eng *Engine) (mutVer, structVer uint64, freeSum float64) {
	_ = eng.Update(func(nw *sdn.Network) error {
		mutVer, structVer = nw.MutationVersion(), nw.StructureVersion()
		for e := 0; e < nw.NumEdges(); e++ {
			freeSum += nw.ResidualBandwidth(e)
		}
		return nil
	})
	return
}

func TestApplyRejectsMalformedMutations(t *testing.T) {
	eng, nw := applyFixture(t, false)
	m := nw.NumEdges()

	cases := []struct {
		name string
		mut  Mutation
	}{
		{"link out of range high", Mutation{Kind: LinkState, ID: m + 3}},
		{"link negative", Mutation{Kind: LinkState, ID: -1}},
		{"not a server", Mutation{Kind: ServerState, ID: nonServerNode(nw)}},
		{"negative link capacity", Mutation{Kind: LinkCapacity, ID: 0, Capacity: -5}},
		{"zero link capacity", Mutation{Kind: LinkCapacity, ID: 0, Capacity: 0}},
		{"NaN link capacity", Mutation{Kind: LinkCapacity, ID: 0, Capacity: math.NaN()}},
		{"Inf server capacity", Mutation{Kind: ServerCapacity, ID: nw.Servers()[0], Capacity: math.Inf(1)}},
		{"server capacity on non-server", Mutation{Kind: ServerCapacity, ID: nonServerNode(nw), Capacity: 100}},
		{"unknown kind", Mutation{Kind: MutationKind(42), ID: 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			beforeMut, beforeStruct, beforeFree := networkState(eng)
			err := eng.Apply(tc.mut)
			var merr *MalformedMutationError
			if !errors.As(err, &merr) {
				t.Fatalf("want *MalformedMutationError, got %v", err)
			}
			if merr.Index != 0 {
				t.Errorf("index = %d, want 0", merr.Index)
			}
			afterMut, afterStruct, afterFree := networkState(eng)
			if afterMut != beforeMut || afterStruct != beforeStruct || afterFree != beforeFree {
				t.Errorf("rejected mutation moved network state: mutVer %d->%d structVer %d->%d free %v->%v",
					beforeMut, afterMut, beforeStruct, afterStruct, beforeFree, afterFree)
			}
		})
	}
}

// nonServerNode finds a switch without an attached server.
func nonServerNode(nw *sdn.Network) int {
	for v := 0; v < nw.NumNodes(); v++ {
		if !nw.IsServer(v) {
			return v
		}
	}
	return -1
}

func TestApplyRejectsCapacityBelowAllocation(t *testing.T) {
	eng, _ := applyFixture(t, false)
	// Find a link a live session holds bandwidth on.
	var loaded, allocated = -1, 0.0
	_ = eng.Update(func(nw *sdn.Network) error {
		for e := 0; e < nw.NumEdges(); e++ {
			if a := nw.BandwidthCap(e) - nw.ResidualBandwidth(e); a > allocated {
				loaded, allocated = e, a
			}
		}
		return nil
	})
	if loaded == -1 {
		t.Fatal("no loaded link in fixture")
	}
	err := eng.Apply(Mutation{Kind: LinkCapacity, ID: loaded, Capacity: allocated / 2})
	var merr *MalformedMutationError
	if !errors.As(err, &merr) {
		t.Fatalf("resize below allocation: want *MalformedMutationError, got %v", err)
	}
}

func TestApplyBatchIsAtomic(t *testing.T) {
	eng, nw := applyFixture(t, false)
	// A valid failure followed by a malformed event: neither applies.
	err := eng.Apply(
		Mutation{Kind: LinkState, ID: 0, Up: false},
		Mutation{Kind: LinkState, ID: nw.NumEdges() + 1, Up: false},
	)
	var merr *MalformedMutationError
	if !errors.As(err, &merr) {
		t.Fatalf("want *MalformedMutationError, got %v", err)
	}
	if merr.Index != 1 {
		t.Errorf("index = %d, want 1", merr.Index)
	}
	var up bool
	_ = eng.Update(func(n *sdn.Network) error { up = n.LinkUp(0); return nil })
	if !up {
		t.Error("valid prefix of a rejected batch was applied: link 0 went down")
	}
}

func TestApplyValidBatchTriggersRecovery(t *testing.T) {
	eng, nw := applyFixture(t, true)
	// Fail every link a specific live session uses: recovery must run.
	target := eng.Lives()[0]
	alloc := core.AllocationFor(target.Request, target.Tree)
	muts := make([]Mutation, 0, len(alloc.Links))
	for e := range alloc.Links {
		muts = append(muts, Mutation{Kind: LinkState, ID: e, Up: false})
	}
	if err := eng.Apply(muts...); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	rep := eng.LastRecovery()
	if rep == nil || len(rep.Outcomes) == 0 {
		t.Fatal("failure batch did not trigger a recovery pass")
	}
	// Restore; capacity resizes are residual-only and must not trigger
	// another pass.
	for i := range muts {
		muts[i].Up = true
	}
	if err := eng.Apply(muts...); err != nil {
		t.Fatal(err)
	}
	before := eng.LastRecovery()
	if err := eng.Apply(Mutation{Kind: LinkCapacity, ID: 0, Capacity: nw.BandwidthCap(0) * 2}); err != nil {
		t.Fatal(err)
	}
	if eng.LastRecovery() != before {
		t.Error("pure capacity resize triggered a recovery pass")
	}
}
