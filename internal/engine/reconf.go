package engine

// Reconfiguration integration: when the engine's planner implements
// core.Reconfigurer (Reconf_CP), every successful Update mutation is
// followed by one drift-triggered migration pass on the writer
// goroutine, inline with the update — so by the time Update returns,
// every accepted migration is live, observed and journaled, and no
// concurrent Admit ever plans against a half-migrated state. The pass
// itself ranks sessions deterministically and plans sequentially on the
// writer, which makes its outcomes independent of the worker count.

// reconfigureLocked runs one migration pass. Caller must be on the
// writer goroutine with e.reconf non-nil.
func (e *Engine) reconfigureLocked() error {
	outcomes := e.reconf.Reconfigure(e.adm, e.recArena)
	if len(outcomes) == 0 {
		return nil
	}
	// Migrations moved residuals (releases, rebinds); in-flight plans
	// that straddled them must commit as stale.
	e.mutations++
	for _, o := range outcomes {
		e.obs.Reconfigured(o.ReqID, o.Solution.Servers, o.Solution.OperationalCost)
	}
	// Journal each migration as a replacement — replay rebinds the new
	// tree verbatim instead of re-running the pass, exactly like
	// recovery's repaired records.
	return e.journalAfter(func(j Journal) error {
		for _, o := range outcomes {
			if jerr := j.Repaired(o.ReqID, o.Solution); jerr != nil {
				return jerr
			}
		}
		return nil
	})
}
