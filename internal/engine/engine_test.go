package engine

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"nfvmcast/internal/core"
	"nfvmcast/internal/graph"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/obs"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/topology"
)

// testNetwork builds a fresh, identically-seeded network replica so
// oracle runs see byte-identical capacities and server placement.
func testNetwork(t *testing.T, topoName string, seed int64) *sdn.Network {
	t.Helper()
	var (
		topo *topology.Topology
		err  error
	)
	switch topoName {
	case "geant":
		topo = topology.GEANT()
	case "waxman":
		topo, err = topology.WaxmanDegree(50, topology.DefaultAvgDegree, 0.14, seed)
		if err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown topology %q", topoName)
	}
	nw, err := sdn.NewNetwork(topo, sdn.DefaultConfig(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// plannerFor builds a fresh planner of each policy under test.
func plannerFor(t *testing.T, name string, nw *sdn.Network) core.Planner {
	t.Helper()
	switch name {
	case "Online_CP":
		p, err := core.NewCPPlanner(core.DefaultCostModel(nw.NumNodes()))
		if err != nil {
			t.Fatal(err)
		}
		return p
	case "SP":
		return core.NewSPPlanner()
	case "SP_Static":
		return core.NewSPStaticPlanner()
	case "Online_CPK":
		p, err := core.NewCPKPlanner(core.DefaultCostModel(nw.NumNodes()), 2)
		if err != nil {
			t.Fatal(err)
		}
		return p
	default:
		t.Fatalf("unknown planner %q", name)
		return nil
	}
}

// directAdmitterFor builds the pre-engine admitter for the same policy,
// the oracle the engine must reproduce.
func directAdmitterFor(t *testing.T, name string, nw *sdn.Network) interface {
	Admit(*multicast.Request) (*core.Solution, error)
	AdmittedCount() int
	RejectedCount() int
} {
	t.Helper()
	switch name {
	case "Online_CP":
		a, err := core.NewOnlineCP(nw, core.DefaultCostModel(nw.NumNodes()))
		if err != nil {
			t.Fatal(err)
		}
		return a
	case "SP":
		return core.NewOnlineSP(nw)
	case "SP_Static":
		return core.NewOnlineSPStatic(nw)
	case "Online_CPK":
		a, err := core.NewOnlineCPK(nw, core.DefaultCostModel(nw.NumNodes()), 2)
		if err != nil {
			t.Fatal(err)
		}
		return a
	default:
		t.Fatalf("unknown admitter %q", name)
		return nil
	}
}

// decision is one request's outcome, captured in enough detail that two
// runs agreeing on every decision have produced identical trees.
type decision struct {
	admitted bool
	servers  []graph.NodeID
	loads    map[graph.EdgeID]int
	opCost   float64
	selCost  float64
}

func captureDecision(sol *core.Solution, err error) decision {
	if err != nil {
		return decision{}
	}
	return decision{
		admitted: true,
		servers:  sol.Servers,
		loads:    sol.Tree.LinkLoads(),
		opCost:   sol.OperationalCost,
		selCost:  sol.SelectionCost,
	}
}

func sameDecision(a, b decision) bool {
	if a.admitted != b.admitted {
		return false
	}
	if !a.admitted {
		return true
	}
	if len(a.servers) != len(b.servers) || len(a.loads) != len(b.loads) {
		return false
	}
	for i := range a.servers {
		if a.servers[i] != b.servers[i] {
			return false
		}
	}
	for e, n := range a.loads {
		if b.loads[e] != n {
			return false
		}
	}
	return a.opCost == b.opCost && a.selCost == b.selCost
}

// requestPool pre-generates the fig8/fig9 arrival sequence so every run
// replays the identical workload.
func requestPool(t *testing.T, n, count int, seed int64) []*multicast.Request {
	t.Helper()
	gen, err := multicast.NewGenerator(n, multicast.OnlineGeneratorConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := gen.Batch(count)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// directOraclePolicies are the registry policies with a pre-engine
// direct admitter to compare against; the rest of the registry is
// checked for self-consistency across worker counts (the workers=1 run
// is the reference).
var directOraclePolicies = map[string]bool{
	"Online_CP": true, "SP": true, "SP_Static": true, "Online_CPK": true,
}

// TestEngineDeterminismOracle pins the equivalence claim for every
// policy in the planner registry: the engine in sequential mode — and
// at workers=4 and 8 when driven one request at a time — makes
// byte-identical admit/reject decisions, trees and costs per request,
// across both a real (GÉANT) and a random (Waxman) topology. Policies
// with a pre-engine direct admitter are additionally compared against
// it decision-for-decision. The metrics registry rides along: every
// decision counter (admitted, departed, per-reason rejected) must also
// agree between the worker counts — only mode-dependent machinery
// counters (snapshot clones, plan invocations) may differ.
func TestEngineDeterminismOracle(t *testing.T) {
	const requests = 60
	decisionCounterPrefixes := []string{
		"nfv_admitted_total", "nfv_rejected_total", "nfv_departed_total",
	}
	for _, topoName := range []string{"geant", "waxman"} {
		for _, spec := range core.Planners() {
			alg, topoName := spec.Name, topoName
			t.Run(topoName+"/"+alg, func(t *testing.T) {
				seed := int64(7)
				nwRef := testNetwork(t, topoName, seed)
				reqs := requestPool(t, nwRef.NumNodes(), requests, seed+13)

				var (
					want                       []decision
					wantAdmitted, wantRejected int
					reference                  string
				)
				if directOraclePolicies[alg] {
					direct := directAdmitterFor(t, alg, nwRef)
					want = make([]decision, len(reqs))
					for i, req := range reqs {
						want[i] = captureDecision(direct.Admit(req))
					}
					wantAdmitted, wantRejected = direct.AdmittedCount(), direct.RejectedCount()
					reference = "direct admitter"
				}

				workerCounts := []int{1, 4, 8}
				counters := make(map[int]map[string]uint64)
				for _, workers := range workerCounts {
					nw := testNetwork(t, topoName, seed)
					reg := obs.NewRegistry()
					planner, perr := core.NewPlanner(alg, core.PlannerOptions{Nodes: nw.NumNodes()})
					if perr != nil {
						t.Fatal(perr)
					}
					eng := New(nw, planner, Options{
						Workers: workers,
						Obs:     obs.NewAdmissionObs(reg, alg, obs.AdmissionObsOptions{}),
					})
					got := make([]decision, len(reqs))
					for i, req := range reqs {
						got[i] = captureDecision(eng.Admit(req))
					}
					if want == nil {
						// No direct admitter for this policy: the sequential
						// engine run is the reference the concurrent runs
						// must reproduce.
						want = got
						wantAdmitted, wantRejected = eng.AdmittedCount(), eng.RejectedCount()
						reference = "workers=1 engine"
					} else {
						for i := range reqs {
							if !sameDecision(want[i], got[i]) {
								eng.Close()
								t.Fatalf("workers=%d request %d: engine decision diverged from %s (admitted %v vs %v)",
									workers, i, reference, got[i].admitted, want[i].admitted)
							}
						}
					}
					if eng.AdmittedCount() != wantAdmitted || eng.RejectedCount() != wantRejected {
						eng.Close()
						t.Fatalf("workers=%d: counts diverged: engine %d/%d, %s %d/%d",
							workers, eng.AdmittedCount(), eng.RejectedCount(),
							reference, wantAdmitted, wantRejected)
					}
					if got := eng.obs.AdmittedCount(); got != uint64(wantAdmitted) {
						eng.Close()
						t.Fatalf("workers=%d: admitted counter %d != %s count %d",
							workers, got, reference, wantAdmitted)
					}
					counters[workers] = reg.CounterValues()
					eng.Close()
				}
				for series, v1 := range counters[1] {
					for _, prefix := range decisionCounterPrefixes {
						if !strings.HasPrefix(series, prefix) {
							continue
						}
						for _, workers := range workerCounts[1:] {
							if counters[workers][series] != v1 {
								t.Errorf("decision counter %s: workers=1 %d, workers=%d %d",
									series, v1, workers, counters[workers][series])
							}
						}
					}
				}
			})
		}
	}
}

// TestEngineDepartRestoresResiduals round-trips admissions through
// Depart and checks the network returns to full capacity.
func TestEngineDepartRestoresResiduals(t *testing.T) {
	nw := testNetwork(t, "geant", 3)
	eng := New(nw, core.NewSPPlanner(), Options{Workers: 1})
	defer eng.Close()

	reqs := requestPool(t, nw.NumNodes(), 40, 17)
	var admitted []int
	for _, req := range reqs {
		if _, err := eng.Admit(req); err == nil {
			admitted = append(admitted, req.ID)
		}
	}
	if len(admitted) == 0 {
		t.Fatal("no request admitted; workload too harsh for the test")
	}
	for _, id := range admitted {
		if _, err := eng.Depart(id); err != nil {
			t.Fatalf("depart %d: %v", id, err)
		}
	}
	if n := eng.LiveCount(); n != 0 {
		t.Fatalf("LiveCount = %d after departing everything", n)
	}
	checkResiduals(t, eng, true)
}

// TestEngineClosed verifies post-Close operations fail with ErrClosed
// and that Close is idempotent.
func TestEngineClosed(t *testing.T) {
	nw := testNetwork(t, "geant", 5)
	eng := New(nw, core.NewSPPlanner(), Options{Workers: 2})
	eng.Close()
	eng.Close() // idempotent
	reqs := requestPool(t, nw.NumNodes(), 1, 5)
	if _, err := eng.Admit(reqs[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Admit after Close: err = %v, want ErrClosed", err)
	}
	if _, err := eng.Depart(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Depart after Close: err = %v, want ErrClosed", err)
	}
	if err := eng.Update(func(*sdn.Network) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Update after Close: err = %v, want ErrClosed", err)
	}
}

// checkResiduals asserts every residual lies in [0, capacity]; with
// full=true it additionally requires residual == capacity (an empty
// network), within floating-point tolerance of the release arithmetic.
func checkResiduals(t *testing.T, eng *Engine, full bool) {
	t.Helper()
	const tol = 1e-6
	err := eng.Update(func(nw *sdn.Network) error {
		for e := 0; e < nw.NumEdges(); e++ {
			eid := graph.EdgeID(e)
			res, cap := nw.ResidualBandwidth(eid), nw.BandwidthCap(eid)
			if res < -tol || res > cap+tol {
				t.Errorf("link %d: residual %v outside [0, %v]", e, res, cap)
			}
			if full && math.Abs(res-cap) > tol {
				t.Errorf("link %d: residual %v != capacity %v after full departure", e, res, cap)
			}
		}
		for _, v := range nw.Servers() {
			res, cap := nw.ResidualCompute(v), nw.ComputeCap(v)
			if res < -tol || res > cap+tol {
				t.Errorf("server %d: residual %v outside [0, %v]", v, res, cap)
			}
			if full && math.Abs(res-cap) > tol {
				t.Errorf("server %d: residual %v != capacity %v after full departure", v, res, cap)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEngineConcurrentStress hammers one engine from many goroutines —
// concurrent Admit and Depart with maximum plan parallelism — under
// the race detector in CI, then checks the capacity invariants: no
// residual ever leaves [0, capacity], and departing every live session
// restores the pristine capacities. This exercises the optimistic
// commit-validation path: colliding planners force re-plans and
// commit-time rejections. The metrics registry is attached with
// latency sampling on, and a sampler goroutine scrapes it throughout:
// every counter must be monotonically non-decreasing under concurrent
// writers, and once quiesced each latency histogram must satisfy
// sum(buckets) == count and the counters must reconcile with the
// engine's own bookkeeping.
func TestEngineConcurrentStress(t *testing.T) {
	nw := testNetwork(t, "geant", 11)
	model := core.DefaultCostModel(nw.NumNodes())
	planner, err := core.NewCPPlanner(model)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	eng := New(nw, planner, Options{
		Workers: -1,
		Obs:     obs.NewAdmissionObs(reg, "Online_CP", obs.AdmissionObsOptions{SampleLatency: true}),
	})
	defer eng.Close()

	// Monotonicity sampler: counters may only move up, at any instant,
	// even while planner goroutines and the writer race on them.
	samplerStop := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		last := make(map[string]uint64)
		for {
			for series, v := range reg.CounterValues() {
				if v < last[series] {
					t.Errorf("counter %s went backwards: %d -> %d", series, last[series], v)
				}
				last[series] = v
			}
			select {
			case <-samplerStop:
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
	}()

	const (
		goroutines = 8
		perG       = 25
	)
	reqs := requestPool(t, nw.NumNodes(), goroutines*perG, 29)

	var (
		mu   sync.Mutex
		live []int
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				req := reqs[g*perG+i]
				sol, err := eng.Admit(req)
				if err != nil {
					if !core.IsRejection(err) {
						t.Errorf("admit %d: non-rejection error %v", req.ID, err)
					}
					continue
				}
				if sol == nil {
					t.Errorf("admit %d: nil solution without error", req.ID)
					continue
				}
				// Depart every third admission immediately, from the
				// admitting goroutine, so departures interleave with
				// other goroutines' planning and commits.
				if i%3 == 0 {
					if _, derr := eng.Depart(req.ID); derr != nil {
						t.Errorf("depart %d: %v", req.ID, derr)
					}
					continue
				}
				mu.Lock()
				live = append(live, req.ID)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	if got := eng.LiveCount(); got != len(live) {
		t.Fatalf("LiveCount = %d, want %d", got, len(live))
	}
	if eng.AdmittedCount()+eng.RejectedCount() != len(reqs) {
		t.Fatalf("admitted %d + rejected %d != %d requests",
			eng.AdmittedCount(), eng.RejectedCount(), len(reqs))
	}
	checkResiduals(t, eng, false)

	// Drain the survivors concurrently, too.
	var dwg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		dwg.Add(1)
		go func(g int) {
			defer dwg.Done()
			for i := g; i < len(live); i += goroutines {
				if _, derr := eng.Depart(live[i]); derr != nil {
					t.Errorf("drain depart %d: %v", live[i], derr)
				}
			}
		}(g)
	}
	dwg.Wait()
	if n := eng.LiveCount(); n != 0 {
		t.Fatalf("LiveCount = %d after draining", n)
	}
	checkResiduals(t, eng, true)

	close(samplerStop)
	samplerWG.Wait()

	// Quiesced: the registry must reconcile exactly with the engine's
	// bookkeeping, and every histogram must be internally consistent.
	cv := reg.CounterValues()
	if got := cv[`nfv_admitted_total{policy="Online_CP"}`]; got != uint64(eng.AdmittedCount()) {
		t.Errorf("admitted counter %d != engine count %d", got, eng.AdmittedCount())
	}
	var rejected uint64
	for series, v := range cv {
		if strings.HasPrefix(series, "nfv_rejected_total") {
			rejected += v
		}
	}
	if rejected != uint64(eng.RejectedCount()) {
		t.Errorf("rejected counters sum to %d, engine counted %d", rejected, eng.RejectedCount())
	}
	if got := cv[`nfv_departed_total{policy="Online_CP"}`]; got != uint64(eng.AdmittedCount()) {
		t.Errorf("departed counter %d != admitted %d after draining everything",
			got, eng.AdmittedCount())
	}
	gv := reg.GaugeValues()
	if gv[`nfv_live_sessions{policy="Online_CP"}`] != 0 {
		t.Errorf("live gauge = %v after draining", gv[`nfv_live_sessions{policy="Online_CP"}`])
	}
	if gv[`nfv_inflight_admissions{policy="Online_CP"}`] != 0 {
		t.Errorf("inflight gauge = %v with no Admit in flight", gv[`nfv_inflight_admissions{policy="Online_CP"}`])
	}
	for series, s := range reg.Histograms() {
		var buckets uint64
		for _, c := range s.Counts {
			buckets += c
		}
		if buckets != s.Count {
			t.Errorf("histogram %s: sum(buckets)=%d != count=%d", series, buckets, s.Count)
		}
	}
	if s := reg.Histograms()[`nfv_plan_seconds{policy="Online_CP"}`]; s.Count == 0 {
		t.Error("plan latency histogram empty despite SampleLatency")
	}
}
