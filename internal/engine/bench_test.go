package engine

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"nfvmcast/internal/core"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/obs"
	"nfvmcast/internal/sdn"
	"nfvmcast/internal/topology"
)

// benchEngineThroughput measures admitted-requests-per-second through
// the engine on the Fig. 8 workload (Waxman n=100, online generator
// arrivals) as the worker count scales. Sessions depart as soon as
// they are admitted so the network stays in the sparse regime where
// planning (not rejection) dominates — the throughput the engine
// exists to scale. b.N requests are drawn round-robin from a
// pre-generated pool by concurrent submitters. newObs builds the
// per-run observability (nil disables instrumentation).
func benchEngineThroughput(b *testing.B, newObs func() *obs.AdmissionObs) {
	topo, err := topology.WaxmanDegree(100, topology.DefaultAvgDegree, 0.14, 42)
	if err != nil {
		b.Fatal(err)
	}
	const poolSize = 512
	base, err := sdn.NewNetwork(topo, sdn.DefaultConfig(), rand.New(rand.NewSource(42)))
	if err != nil {
		b.Fatal(err)
	}
	gen, err := multicast.NewGenerator(base.NumNodes(), multicast.OnlineGeneratorConfig(), 55)
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := gen.Batch(poolSize)
	if err != nil {
		b.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			planner, perr := core.NewCPPlanner(core.DefaultCostModel(base.NumNodes()))
			if perr != nil {
				b.Fatal(perr)
			}
			eng := New(base.Clone(), planner, Options{Workers: workers, Obs: newObs()})
			defer eng.Close()

			var next int64
			var admitted int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := atomic.AddInt64(&next, 1) - 1
					req := reqs[i%poolSize]
					// Clone per submission: request IDs must be unique
					// per live session.
					r := *req
					r.ID = int(i) + 1
					if _, aerr := eng.Admit(&r); aerr == nil {
						atomic.AddInt64(&admitted, 1)
						_, _ = eng.Depart(r.ID)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(admitted)/b.Elapsed().Seconds(), "admits/sec")
		})
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	benchEngineThroughput(b, func() *obs.AdmissionObs { return nil })
}

// BenchmarkEngineThroughputObs is the same workload with the metrics
// layer attached (counters and gauges live, latency sampling off — the
// production default), pinning the instrumentation overhead the
// observability layer promises to keep under 3%.
func BenchmarkEngineThroughputObs(b *testing.B) {
	benchEngineThroughput(b, func() *obs.AdmissionObs {
		return obs.NewAdmissionObs(obs.NewRegistry(), "Online_CP", obs.AdmissionObsOptions{})
	})
}

// BenchmarkEngineThroughputObsSampled additionally samples plan/commit/
// clone latencies into histograms — the opt-in mode that reads the
// clock on hot paths.
func BenchmarkEngineThroughputObsSampled(b *testing.B) {
	benchEngineThroughput(b, func() *obs.AdmissionObs {
		return obs.NewAdmissionObs(obs.NewRegistry(), "Online_CP", obs.AdmissionObsOptions{SampleLatency: true})
	})
}
