package engine

import (
	"errors"
	"strings"
	"testing"

	"nfvmcast/internal/core"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/obs"
	"nfvmcast/internal/sdn"
)

// TestEngineMetricsInvariantsAfterDeparture pins the lifecycle
// identities the observability layer promises: once every admitted
// session has departed, admitted == departed, the live gauge reads 0,
// and a network-gauge collection shows every residual-utilisation
// gauge back at 0.
func TestEngineMetricsInvariantsAfterDeparture(t *testing.T) {
	nw := testNetwork(t, "geant", 3)
	reg := obs.NewRegistry()
	o := obs.NewAdmissionObs(reg, "SP", obs.AdmissionObsOptions{})
	gauges := obs.NewNetworkGauges(reg, nw, obs.SaturationModel{})
	eng := New(nw, core.NewSPPlanner(), Options{Workers: 1, Obs: o})
	defer eng.Close()

	reqs := requestPool(t, nw.NumNodes(), 40, 17)
	var admitted []int
	for _, req := range reqs {
		if _, err := eng.Admit(req); err == nil {
			admitted = append(admitted, req.ID)
		}
	}
	if len(admitted) == 0 {
		t.Fatal("no request admitted; workload too harsh for the test")
	}

	// Mid-run sanity: the live gauge tracks the admitter's table and
	// a collection shows load on the network.
	if o.LiveSessions() != float64(len(admitted)) {
		t.Fatalf("live gauge = %v with %d live sessions", o.LiveSessions(), len(admitted))
	}
	if err := eng.Update(func(nw *sdn.Network) error { gauges.Collect(nw); return nil }); err != nil {
		t.Fatal(err)
	}
	if reg.GaugeValues()["nfv_link_utilization_max"] == 0 {
		t.Fatal("no link utilisation after admissions; collection broken")
	}

	for _, id := range admitted {
		if _, err := eng.Depart(id); err != nil {
			t.Fatalf("depart %d: %v", id, err)
		}
	}

	if o.AdmittedCount() != o.DepartedCount() {
		t.Fatalf("admitted %d != departed %d after full departure",
			o.AdmittedCount(), o.DepartedCount())
	}
	if o.AdmittedCount() != uint64(len(admitted)) {
		t.Fatalf("admitted counter %d, want %d", o.AdmittedCount(), len(admitted))
	}
	if o.LiveSessions() != 0 {
		t.Fatalf("live gauge = %v after full departure", o.LiveSessions())
	}
	if err := eng.Update(func(nw *sdn.Network) error { gauges.Collect(nw); return nil }); err != nil {
		t.Fatal(err)
	}
	// Residuals are restored by floating-point subtraction, so allow
	// rounding residue but nothing material.
	for series, v := range reg.GaugeValues() {
		utilisation := strings.HasPrefix(series, "nfv_link_utilization") ||
			strings.HasPrefix(series, "nfv_server_utilization")
		if utilisation && v > 1e-9 {
			t.Errorf("%s = %v after full departure, want ~0", series, v)
		}
	}
}

// TestEngineRejectNoPlan pins the planner-refusal half of the reject
// split: a request no planner can place is rejected with ErrNoPlan (and
// not ErrCommitConflict), still satisfies core.IsRejection, and counts
// under a specific non-conflict reason.
func TestEngineRejectNoPlan(t *testing.T) {
	nw := testNetwork(t, "geant", 5)
	reg := obs.NewRegistry()
	eng := New(nw, core.NewSPPlanner(), Options{
		Workers: 2,
		Obs:     obs.NewAdmissionObs(reg, "SP", obs.AdmissionObsOptions{}),
	})
	defer eng.Close()

	req := requestPool(t, nw.NumNodes(), 1, 5)[0]
	req.BandwidthMbps = 1e12 // no link can carry this
	_, err := eng.Admit(req)
	if err == nil {
		t.Fatal("impossible request admitted")
	}
	if !errors.Is(err, ErrNoPlan) {
		t.Fatalf("err = %v, want ErrNoPlan in the chain", err)
	}
	if errors.Is(err, ErrCommitConflict) {
		t.Fatalf("err = %v must not carry ErrCommitConflict", err)
	}
	if !core.IsRejection(err) {
		t.Fatalf("err = %v must satisfy core.IsRejection", err)
	}
	if reason := core.RejectReason(err); reason == "" || reason == obs.ReasonCommitConflict {
		t.Fatalf("RejectReason = %q, want a specific planner-refusal reason", reason)
	}
	var rejected uint64
	for series, v := range reg.CounterValues() {
		if strings.HasPrefix(series, "nfv_rejected_total") {
			rejected += v
		}
	}
	if rejected != 1 {
		t.Fatalf("rejected counters sum to %d, want 1", rejected)
	}
}

// frozenViewPlanner deterministically reproduces an optimistic-
// concurrency loss with a single in-flight Admit. It plans against a
// pristine snapshot taken at construction instead of the view it is
// handed, so once the live residuals drain its plans fail commit
// validation; and it slips a writer-side mutation (a no-op Update)
// between plan and commit — exactly the interleaving a concurrent
// commit produces — so the failure is classified as a conflict rather
// than a planner overcommit.
type frozenViewPlanner struct {
	inner  core.Planner
	frozen *sdn.Network
	eng    *Engine
}

func (p *frozenViewPlanner) Name() string { return "FrozenView" }

func (p *frozenViewPlanner) Plan(_ *sdn.Network, req *multicast.Request) (*core.Solution, error) {
	if err := p.eng.Update(func(*sdn.Network) error { return nil }); err != nil {
		return nil, err
	}
	return p.inner.Plan(p.frozen, req)
}

// TestEngineRejectCommitConflict pins the optimistic-concurrency half
// of the reject split: a plan that keeps validating against stale
// residuals fails commit, re-plans once, fails again, and surfaces
// ErrCommitConflict — counted under the commit_conflict reason with
// the conflict/re-plan counters moving in lockstep.
func TestEngineRejectCommitConflict(t *testing.T) {
	nw := testNetwork(t, "geant", 7)
	planner := &frozenViewPlanner{inner: core.NewSPPlanner(), frozen: nw.Clone()}
	reg := obs.NewRegistry()
	ring := obs.NewRingSink(8)
	eng := New(nw, planner, Options{
		Workers: 2,
		Obs:     obs.NewAdmissionObs(reg, "FrozenView", obs.AdmissionObsOptions{Events: ring}),
	})
	defer eng.Close()
	planner.eng = eng

	base := requestPool(t, nw.NumNodes(), 1, 7)[0]
	base.BandwidthMbps = 900 // drains the tightest link (caps start at 1000) fast

	var conflictErr error
	for i := 0; i < 200 && conflictErr == nil; i++ {
		req := base.Clone()
		req.ID = 1000 + i
		if _, err := eng.Admit(req); err != nil {
			conflictErr = err
		}
	}
	if conflictErr == nil {
		t.Fatal("frozen-view planner never hit a commit conflict")
	}
	if !errors.Is(conflictErr, ErrCommitConflict) {
		t.Fatalf("err = %v, want ErrCommitConflict in the chain", conflictErr)
	}
	if errors.Is(conflictErr, ErrNoPlan) {
		t.Fatalf("err = %v must not carry ErrNoPlan", conflictErr)
	}
	if !core.IsRejection(conflictErr) {
		t.Fatalf("err = %v must satisfy core.IsRejection", conflictErr)
	}
	if reason := core.RejectReason(conflictErr); reason != obs.ReasonCommitConflict {
		t.Fatalf("RejectReason = %q, want %q", reason, obs.ReasonCommitConflict)
	}

	cv := reg.CounterValues()
	if got := cv[`nfv_rejected_total{policy="FrozenView",reason="commit_conflict"}`]; got != 1 {
		t.Fatalf("commit_conflict rejections = %d, want 1 (all: %v)", got, cv)
	}
	// One exhausted admission = two failed commits and one re-plan.
	if got := cv[`nfv_commit_conflicts_total{policy="FrozenView"}`]; got != 2 {
		t.Fatalf("conflict counter = %d, want 2", got)
	}
	if got := cv[`nfv_replans_total{policy="FrozenView"}`]; got != 1 {
		t.Fatalf("replan counter = %d, want 1", got)
	}

	// The event tail must show the conflict lifecycle in order:
	// conflict, replanned, (planned,) conflict, rejected.
	var types []string
	for _, ev := range ring.Events() {
		types = append(types, string(ev.Type))
	}
	tail := strings.Join(types, ",")
	if !strings.Contains(tail, "commit_conflict,replanned") ||
		!strings.HasSuffix(tail, "commit_conflict,rejected") {
		t.Fatalf("event tail missing conflict lifecycle: %s", tail)
	}
}
