package engine

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"nfvmcast/internal/core"
	"nfvmcast/internal/multicast"
	"nfvmcast/internal/obs"
	"nfvmcast/internal/sdn"
)

// TestEpochBatchAmortizesMutationVersion stages a full commit window:
// eight planned solutions queue while the writer is held inside an
// Update, so when it returns to its loop every ticket is waiting and
// one epoch absorbs them all — committed in ascending request-ID order
// with exactly one MutationVersion bump.
func TestEpochBatchAmortizesMutationVersion(t *testing.T) {
	const n = 8
	nw := testNetwork(t, "geant", 3)
	reg := obs.NewRegistry()
	ring := obs.NewRingSink(256)
	aobs := obs.NewAdmissionObs(reg, "Online_CP", obs.AdmissionObsOptions{Events: ring})
	eng := NewWith(nw, plannerFor(t, "Online_CP", nw),
		WithWorkers(4), WithBatchWindow(16), WithMetrics(aobs))
	defer eng.Close()

	// Plan everything up front against clones of the untouched network
	// (no op is in flight, so reading nw is safe), feeding the tickets
	// shuffled IDs to make the epoch's ordering observable.
	reqs := requestPool(t, nw.NumNodes(), n, 29)
	perm := rand.New(rand.NewSource(1)).Perm(n)
	sols := make([]*core.Solution, n)
	for i, req := range reqs {
		req.ID = perm[i]
		sol, err := eng.adm.PlanOn(nw.Clone(), req)
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		sols[i] = sol
	}

	// Hold the writer so every submitCommit parks on the ticket channel.
	hold := make(chan struct{})
	entered := make(chan struct{})
	var updErr error
	var updWg sync.WaitGroup
	updWg.Add(1)
	go func() {
		defer updWg.Done()
		updErr = eng.Update(func(*sdn.Network) error {
			close(entered)
			<-hold
			return nil
		})
	}()
	<-entered

	verBefore := nw.MutationVersion()
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(req *multicast.Request, sol *core.Solution) {
			defer wg.Done()
			if _, _, err := eng.submitCommit(req, sol, 1); err != nil {
				t.Errorf("commit %d: %v", req.ID, err)
			}
		}(reqs[i], sols[i])
	}
	time.Sleep(100 * time.Millisecond) // let every ticket park
	close(hold)
	wg.Wait()
	updWg.Wait()
	if updErr != nil {
		t.Fatalf("update: %v", updErr)
	}

	if got := eng.AdmittedCount(); got != n {
		t.Fatalf("admitted = %d, want %d", got, n)
	}
	batches := reg.CounterValues()[`nfv_commit_batches_total{policy="Online_CP"}`]
	if batches != 1 {
		t.Fatalf("epochs = %d, want 1 (all tickets were parked)", batches)
	}
	if got := nw.MutationVersion(); got != verBefore+1 {
		t.Fatalf("MutationVersion moved %d times for one epoch, want 1", got-verBefore)
	}
	// Within the epoch, commits ran in ascending request-ID order.
	last := -1
	var admitted int
	for _, ev := range ring.Events() {
		if ev.Type != obs.Admitted {
			continue
		}
		admitted++
		if ev.Request <= last {
			t.Fatalf("epoch committed request %d after %d: not ascending", ev.Request, last)
		}
		last = ev.Request
	}
	if admitted != n {
		t.Fatalf("admitted events = %d, want %d", admitted, n)
	}
	checkEngineConsistency(t, eng, nw)
}

// TestBatchWindowSequentialDriverDecisionsIdentical pins the
// determinism contract: an engine driven one request at a time decides
// byte-identically at every batch window, because each epoch then
// holds exactly one ticket.
func TestBatchWindowSequentialDriverDecisionsIdentical(t *testing.T) {
	const requests = 40
	var want []decision
	for _, window := range []int{1, 16, 64} {
		nw := testNetwork(t, "waxman", 5)
		eng := NewWith(nw, plannerFor(t, "Online_CP", nw),
			WithWorkers(4), WithBatchWindow(window))
		reqs := requestPool(t, nw.NumNodes(), requests, 31)
		got := make([]decision, len(reqs))
		for i, req := range reqs {
			got[i] = captureDecision(eng.Admit(req))
		}
		eng.Close()
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if !sameDecision(want[i], got[i]) {
				t.Fatalf("window %d: request %d decided differently from window 1", window, i)
			}
		}
	}
}

// TestBatchWindowConcurrentStress hammers a batched engine with
// concurrent admits and departs and reconciles the final state; run
// with -race it also proves the ticket path introduces no new races.
func TestBatchWindowConcurrentStress(t *testing.T) {
	nw := testNetwork(t, "geant", 9)
	eng := NewWith(nw, plannerFor(t, "Online_CP", nw),
		WithWorkers(4), WithBatchWindow(16))
	defer eng.Close()

	reqs := requestPool(t, nw.NumNodes(), 120, 17)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var admitted []int
	for _, req := range reqs {
		wg.Add(1)
		go func(req *multicast.Request) {
			defer wg.Done()
			if _, err := eng.Admit(req); err == nil {
				mu.Lock()
				admitted = append(admitted, req.ID)
				mu.Unlock()
			}
		}(req)
	}
	wg.Wait()
	// Depart half of what was admitted, concurrently.
	for i, id := range admitted {
		if i%2 != 0 {
			continue
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if _, err := eng.Depart(id); err != nil {
				t.Errorf("depart %d: %v", id, err)
			}
		}(id)
	}
	wg.Wait()
	checkEngineConsistency(t, eng, nw)
	if got, want := eng.AdmittedCount()+eng.RejectedCount(), len(reqs); got != want {
		t.Fatalf("decisions = %d, want %d", got, want)
	}
}
